#include "dbsynth/connection.h"

#include <set>

#include <gtest/gtest.h>

#include "minidb/sql.h"

namespace dbsynth {
namespace {

using pdgf::Value;

class ConnectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = minidb::ExecuteSql(
        &db_, "CREATE TABLE t (id BIGINT PRIMARY KEY, v INTEGER)");
    ASSERT_TRUE(created.ok());
    minidb::Table* table = db_.GetTable("t");
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(table
                      ->Insert({Value::Int(i + 1),
                                i % 10 == 0 ? Value::Null()
                                            : Value::Int(i % 100)})
                      .ok());
    }
  }

  minidb::Database db_;
};

TEST_F(ConnectionTest, ListsTablesAndSchemas) {
  MiniDbConnection connection(&db_);
  EXPECT_EQ(connection.ListTables(), (std::vector<std::string>{"t"}));
  auto schema = connection.GetTableSchema("t");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->columns.size(), 2u);
  EXPECT_TRUE(schema->columns[0].primary_key);
  EXPECT_FALSE(connection.GetTableSchema("ghost").ok());
}

TEST_F(ConnectionTest, RowAndNullCountsViaSql) {
  MiniDbConnection connection(&db_);
  auto rows = connection.GetRowCount("t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 1000u);
  auto nulls = connection.GetNullCount("t", "v");
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ(*nulls, 100u);
}

TEST_F(ConnectionTest, MinMaxViaSql) {
  MiniDbConnection connection(&db_);
  auto min_max = connection.GetMinMax("t", "v");
  ASSERT_TRUE(min_max.ok());
  EXPECT_EQ(min_max->first.int_value(), 1);
  EXPECT_EQ(min_max->second.int_value(), 99);
}

TEST_F(ConnectionTest, FullSamplingVisitsEveryRow) {
  MiniDbConnection connection(&db_);
  SamplingSpec spec;
  spec.strategy = SamplingSpec::Strategy::kFull;
  int visited = 0;
  ASSERT_TRUE(connection
                  .SampleRows("t", spec,
                              [&visited](const minidb::Row&) { ++visited; })
                  .ok());
  EXPECT_EQ(visited, 1000);
}

TEST_F(ConnectionTest, FirstNSampling) {
  MiniDbConnection connection(&db_);
  SamplingSpec spec;
  spec.strategy = SamplingSpec::Strategy::kFirstN;
  spec.limit = 37;
  std::vector<int64_t> ids;
  ASSERT_TRUE(connection
                  .SampleRows("t", spec,
                              [&ids](const minidb::Row& row) {
                                ids.push_back(row[0].int_value());
                              })
                  .ok());
  ASSERT_EQ(ids.size(), 37u);
  EXPECT_EQ(ids.front(), 1);
  EXPECT_EQ(ids.back(), 37);
}

TEST_F(ConnectionTest, FractionSamplingApproximatesFraction) {
  MiniDbConnection connection(&db_);
  SamplingSpec spec;
  spec.strategy = SamplingSpec::Strategy::kFraction;
  spec.fraction = 0.2;
  int visited = 0;
  ASSERT_TRUE(connection
                  .SampleRows("t", spec,
                              [&visited](const minidb::Row&) { ++visited; })
                  .ok());
  EXPECT_NEAR(visited / 1000.0, 0.2, 0.05);
}

TEST_F(ConnectionTest, FractionSamplingIsDeterministicPerSeed) {
  MiniDbConnection connection(&db_);
  SamplingSpec spec;
  spec.strategy = SamplingSpec::Strategy::kFraction;
  spec.fraction = 0.1;
  auto collect = [&connection, &spec]() {
    std::vector<int64_t> ids;
    EXPECT_TRUE(connection
                    .SampleRows("t", spec,
                                [&ids](const minidb::Row& row) {
                                  ids.push_back(row[0].int_value());
                                })
                    .ok());
    return ids;
  };
  auto first = collect();
  auto second = collect();
  EXPECT_EQ(first, second);
  spec.seed = 43;
  EXPECT_NE(collect(), first);
}

TEST_F(ConnectionTest, ReservoirSamplingExactSizeAndUniform) {
  MiniDbConnection connection(&db_);
  SamplingSpec spec;
  spec.strategy = SamplingSpec::Strategy::kReservoir;
  spec.limit = 100;
  std::set<int64_t> ids;
  ASSERT_TRUE(connection
                  .SampleRows("t", spec,
                              [&ids](const minidb::Row& row) {
                                ids.insert(row[0].int_value());
                              })
                  .ok());
  EXPECT_EQ(ids.size(), 100u);
  // Not just the head: some ids from the tail half must appear.
  int in_tail = 0;
  for (int64_t id : ids) {
    if (id > 500) ++in_tail;
  }
  EXPECT_GT(in_tail, 20);
}

TEST_F(ConnectionTest, ReservoirSmallerTableThanLimit) {
  MiniDbConnection connection(&db_);
  SamplingSpec spec;
  spec.strategy = SamplingSpec::Strategy::kReservoir;
  spec.limit = 5000;
  int visited = 0;
  ASSERT_TRUE(connection
                  .SampleRows("t", spec,
                              [&visited](const minidb::Row&) { ++visited; })
                  .ok());
  EXPECT_EQ(visited, 1000);
}

TEST_F(ConnectionTest, UnknownTableErrors) {
  MiniDbConnection connection(&db_);
  SamplingSpec spec;
  EXPECT_FALSE(
      connection.SampleRows("ghost", spec, [](const minidb::Row&) {}).ok());
  EXPECT_FALSE(connection.GetNullCount("ghost", "v").ok());
}

}  // namespace
}  // namespace dbsynth
