#include "dbsynth/profiler.h"

#include <gtest/gtest.h>

#include "minidb/sql.h"

namespace dbsynth {
namespace {

using pdgf::Value;

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = minidb::ExecuteSqlScript(
        &db_,
        "CREATE TABLE dim (k BIGINT PRIMARY KEY, label VARCHAR(10));"
        "CREATE TABLE fact (id BIGINT PRIMARY KEY,"
        "  k BIGINT REFERENCES dim(k),"
        "  amount DECIMAL(15,2),"
        "  note VARCHAR(100));");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    minidb::Table* dim = db_.GetTable("dim");
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(dim->Insert({Value::Int(i + 1),
                               Value::String(i % 2 == 0 ? "even" : "odd")})
                      .ok());
    }
    minidb::Table* fact = db_.GetTable("fact");
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          fact->Insert({Value::Int(i + 1), Value::Int(i % 5 + 1),
                        i % 4 == 0 ? Value::Null()
                                   : Value::Decimal(100 + i, 2),
                        Value::String("some note text here")})
              .ok());
    }
  }

  minidb::Database db_;
};

TEST_F(ProfilerTest, FullProfileExtractsEverything) {
  MiniDbConnection connection(&db_);
  ExtractionOptions options;
  options.sampling.strategy = SamplingSpec::Strategy::kFull;
  auto profile = ProfileDatabase(&connection, options);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();

  ASSERT_EQ(profile->tables.size(), 2u);
  const TableProfile* fact = profile->FindTable("fact");
  ASSERT_NE(fact, nullptr);
  EXPECT_EQ(fact->row_count, 200u);
  EXPECT_EQ(fact->schema.columns[1].ref_table, "dim");

  // NULL probabilities.
  EXPECT_EQ(fact->columns[2].null_count, 50u);
  EXPECT_NEAR(fact->columns[2].null_probability(), 0.25, 1e-12);
  // Primary keys are NOT NULL: skipped, so null_count stays 0.
  EXPECT_EQ(fact->columns[0].null_count, 0u);

  // Min/max.
  EXPECT_EQ(fact->columns[0].min.int_value(), 1);
  EXPECT_EQ(fact->columns[0].max.int_value(), 200);
  EXPECT_NEAR(fact->columns[2].min.AsDouble(), 1.01, 1e-9);

  // Text sampling.
  const TableProfile* dim = profile->FindTable("dim");
  EXPECT_EQ(dim->columns[1].samples.size(), 5u);
  EXPECT_EQ(dim->columns[1].sample_distinct, 2u);
  EXPECT_NEAR(dim->columns[1].avg_word_count, 1.0, 1e-12);
  EXPECT_EQ(fact->columns[3].max_word_count, 4u);
  EXPECT_NEAR(fact->columns[3].avg_word_count, 4.0, 1e-12);
}

TEST_F(ProfilerTest, TimingsArePerPhase) {
  MiniDbConnection connection(&db_);
  ExtractionOptions options;
  auto profile = ProfileDatabase(&connection, options);
  ASSERT_TRUE(profile.ok());
  const ExtractionTimings& timings = profile->timings;
  EXPECT_GE(timings.schema_seconds, 0.0);
  EXPECT_GT(timings.sizes_seconds, 0.0);
  EXPECT_GT(timings.minmax_seconds, 0.0);
  EXPECT_GT(timings.sampling_seconds, 0.0);
  EXPECT_GE(timings.total(), timings.minmax_seconds);
}

TEST_F(ProfilerTest, PhasesCanBeDisabled) {
  MiniDbConnection connection(&db_);
  ExtractionOptions options;
  options.extract_min_max = false;
  options.extract_null_probabilities = false;
  options.sample_data = false;
  auto profile = ProfileDatabase(&connection, options);
  ASSERT_TRUE(profile.ok());
  const TableProfile* fact = profile->FindTable("fact");
  EXPECT_TRUE(fact->columns[0].min.is_null());
  EXPECT_EQ(fact->columns[2].null_count, 0u);
  EXPECT_TRUE(fact->columns[3].samples.empty());
  EXPECT_DOUBLE_EQ(profile->timings.minmax_seconds, 0.0);
  EXPECT_DOUBLE_EQ(profile->timings.sampling_seconds, 0.0);
  // Schema info is always extracted.
  EXPECT_EQ(profile->tables.size(), 2u);
}

TEST_F(ProfilerTest, SampleLimitBoundsMemory) {
  MiniDbConnection connection(&db_);
  ExtractionOptions options;
  options.sampling.strategy = SamplingSpec::Strategy::kFull;
  options.max_samples_per_column = 10;
  auto profile = ProfileDatabase(&connection, options);
  ASSERT_TRUE(profile.ok());
  const TableProfile* fact = profile->FindTable("fact");
  EXPECT_EQ(fact->columns[3].samples.size(), 10u);
  // Aggregate statistics still cover all sampled rows.
  EXPECT_EQ(fact->columns[3].sampled_rows, 200u);
}

TEST_F(ProfilerTest, FindTableIsCaseInsensitive) {
  MiniDbConnection connection(&db_);
  auto profile = ProfileDatabase(&connection, ExtractionOptions{});
  ASSERT_TRUE(profile.ok());
  EXPECT_NE(profile->FindTable("FACT"), nullptr);
  EXPECT_EQ(profile->FindTable("ghost"), nullptr);
}

}  // namespace
}  // namespace dbsynth
