// End-to-end DBSynth workflow tests on the IMDb-style demo database
// (paper §5: extract a model from a real database, regenerate, compare).

#include "dbsynth/synthesizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "minidb/sql.h"
#include "minidb/stats.h"
#include "workloads/imdb.h"

namespace dbsynth {
namespace {

class SynthesizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(workloads::PopulateImdbDatabase(&source_, /*scale=*/0.25)
                    .ok());
  }

  minidb::Database source_;
};

TEST_F(SynthesizerTest, ReproducesTableSizes) {
  MiniDbConnection connection(&source_);
  minidb::Database target;
  SynthesizeOptions options;
  options.extraction.sampling.strategy = SamplingSpec::Strategy::kFull;
  auto report = SynthesizeDatabase(&connection, &target, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  for (const std::string& name : source_.TableNames()) {
    const minidb::Table* original = source_.GetTable(name);
    const minidb::Table* synthetic = target.GetTable(name);
    ASSERT_NE(synthetic, nullptr) << name;
    EXPECT_EQ(synthetic->row_count(), original->row_count()) << name;
  }
  EXPECT_GT(report->rows_loaded, 0u);
  EXPECT_FALSE(report->decisions.empty());
}

TEST_F(SynthesizerTest, PreservesStatisticalShape) {
  MiniDbConnection connection(&source_);
  minidb::Database target;
  SynthesizeOptions options;
  options.extraction.sampling.strategy = SamplingSpec::Strategy::kFull;
  auto report = SynthesizeDatabase(&connection, &target, options);
  ASSERT_TRUE(report.ok());

  minidb::TableStats original =
      minidb::AnalyzeTable(*source_.GetTable("title"));
  minidb::TableStats synthetic =
      minidb::AnalyzeTable(*target.GetTable("title"));

  // NULL fractions match the extracted probabilities.
  const minidb::ColumnStats* original_year =
      original.FindColumn("production_year");
  const minidb::ColumnStats* synthetic_year =
      synthetic.FindColumn("production_year");
  EXPECT_NEAR(synthetic_year->null_fraction(),
              original_year->null_fraction(), 0.05);
  // Numeric ranges match the extracted min/max.
  EXPECT_GE(synthetic_year->min.AsInt(), original_year->min.AsInt());
  EXPECT_LE(synthetic_year->max.AsInt(), original_year->max.AsInt());
  // Categorical column reproduces the domain.
  const minidb::ColumnStats* synthetic_genre = synthetic.FindColumn("genre");
  const minidb::ColumnStats* original_genre = original.FindColumn("genre");
  EXPECT_LE(synthetic_genre->distinct_count,
            original_genre->distinct_count);
  EXPECT_GE(synthetic_genre->distinct_count,
            original_genre->distinct_count / 2);
}

TEST_F(SynthesizerTest, VerificationQueriesGiveSimilarResults) {
  // The demo's quality check: run the same SQL on original and synthetic
  // data and compare (paper §5).
  MiniDbConnection connection(&source_);
  minidb::Database target;
  SynthesizeOptions options;
  options.extraction.sampling.strategy = SamplingSpec::Strategy::kFull;
  ASSERT_TRUE(SynthesizeDatabase(&connection, &target, options).ok());

  auto count_original = minidb::ExecuteSql(
      &source_, "SELECT COUNT(*) FROM cast_info WHERE role = 'director'");
  auto count_synthetic = minidb::ExecuteSql(
      &target, "SELECT COUNT(*) FROM cast_info WHERE role = 'director'");
  ASSERT_TRUE(count_original.ok());
  ASSERT_TRUE(count_synthetic.ok());
  double original_count = count_original->At(0, "count").AsDouble();
  double synthetic_count = count_synthetic->At(0, "count").AsDouble();
  ASSERT_GT(original_count, 0);
  EXPECT_NEAR(synthetic_count / original_count, 1.0, 0.25);

  auto avg_original =
      minidb::ExecuteSql(&source_, "SELECT AVG(rating) FROM movie_rating");
  auto avg_synthetic =
      minidb::ExecuteSql(&target, "SELECT AVG(rating) FROM movie_rating");
  ASSERT_TRUE(avg_original.ok());
  ASSERT_TRUE(avg_synthetic.ok());
  EXPECT_NEAR(avg_synthetic->At(0, "avg_rating").AsDouble(),
              avg_original->At(0, "avg_rating").AsDouble(), 1.0);
}

TEST_F(SynthesizerTest, ScalesBeyondTheOriginal) {
  MiniDbConnection connection(&source_);
  minidb::Database target;
  SynthesizeOptions options;
  options.scale_factor = 3.0;
  options.extraction.sampling.strategy = SamplingSpec::Strategy::kFirstN;
  options.extraction.sampling.limit = 200;
  auto report = SynthesizeDatabase(&connection, &target, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(target.GetTable("title")->row_count(),
            source_.GetTable("title")->row_count() * 3);
}

TEST_F(SynthesizerTest, SqlLoadPathWorksToo) {
  MiniDbConnection connection(&source_);
  minidb::Database target;
  SynthesizeOptions options;
  options.use_sql_load = true;
  options.extraction.sampling.strategy = SamplingSpec::Strategy::kFirstN;
  options.extraction.sampling.limit = 100;
  // Shrink for speed: SQL load parses every row.
  options.scale_factor = 0.1;
  auto report = SynthesizeDatabase(&connection, &target, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(target.GetTable("title")->row_count(), 0u);
}

TEST_F(SynthesizerTest, GeneratedTextIsPlausible) {
  MiniDbConnection connection(&source_);
  minidb::Database target;
  SynthesizeOptions options;
  options.extraction.sampling.strategy = SamplingSpec::Strategy::kFull;
  ASSERT_TRUE(SynthesizeDatabase(&connection, &target, options).ok());
  // Synthetic plots are word sequences over the original vocabulary, not
  // random characters (the paper's core value-level claim).
  int with_space = 0;
  int non_null = 0;
  target.GetTable("title")->Scan([&](const minidb::Row& row) {
    const pdgf::Value& plot = row[5];
    if (plot.is_null()) return true;
    ++non_null;
    if (plot.string_value().find(' ') != std::string::npos) ++with_space;
    return non_null < 200;
  });
  ASSERT_GT(non_null, 50);
  EXPECT_GT(with_space, non_null * 9 / 10);
}

}  // namespace
}  // namespace dbsynth
