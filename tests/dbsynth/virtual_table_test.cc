// Tests for query execution without data generation (paper §6 future
// work): SELECTs run directly over the generator stream — now through
// the catalog's virtual-table surface — and must agree exactly with the
// same query over a database the data was loaded into.

#include "dbsynth/virtual_table.h"

#include <gtest/gtest.h>

#include "dbsynth/schema_translator.h"
#include "minidb/sql.h"
#include "workloads/tpch.h"

namespace dbsynth {
namespace {

class VirtualTableTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    schema_ = new pdgf::SchemaDef(workloads::BuildTpchSchema());
    auto session =
        pdgf::GenerationSession::Create(schema_, {{"SF", "0.0005"}});
    ASSERT_TRUE(session.ok());
    session_ = session->release();
    database_ = new minidb::Database();
    ASSERT_TRUE(CreateTargetSchema(*schema_, database_).ok());
    ASSERT_TRUE(BulkLoadGeneratedData(*session_, database_).ok());
  }

  static void TearDownTestSuite() {
    delete database_;
    database_ = nullptr;
    delete session_;
    session_ = nullptr;
    delete schema_;
    schema_ = nullptr;
  }

  // Runs `sql` both ways and requires identical result sets.
  static void ExpectSameResults(const std::string& sql) {
    auto materialized = minidb::ExecuteSql(database_, sql);
    auto virtual_result = ExecuteQueryWithoutData(*session_, sql);
    ASSERT_TRUE(materialized.ok()) << sql << ": "
                                   << materialized.status().ToString();
    ASSERT_TRUE(virtual_result.ok()) << sql << ": "
                                     << virtual_result.status().ToString();
    EXPECT_EQ(materialized->columns, virtual_result->columns) << sql;
    ASSERT_EQ(materialized->rows.size(), virtual_result->rows.size()) << sql;
    for (size_t r = 0; r < materialized->rows.size(); ++r) {
      for (size_t c = 0; c < materialized->rows[r].size(); ++c) {
        EXPECT_EQ(materialized->rows[r][c], virtual_result->rows[r][c])
            << sql << " row " << r << " col " << c;
      }
    }
  }

  // A model resolver that only knows the bundled tpch schema, so the
  // tests never touch the filesystem.
  static ModelResolver TpchResolver() {
    return [](const std::string& model) -> pdgf::StatusOr<pdgf::SchemaDef> {
      if (model == "tpch") return workloads::BuildTpchSchema();
      return pdgf::NotFoundError("unknown model '" + model + "'");
    };
  }

  static pdgf::SchemaDef* schema_;
  static pdgf::GenerationSession* session_;
  static minidb::Database* database_;
};

pdgf::SchemaDef* VirtualTableTest::schema_ = nullptr;
pdgf::GenerationSession* VirtualTableTest::session_ = nullptr;
minidb::Database* VirtualTableTest::database_ = nullptr;

TEST_F(VirtualTableTest, CountsMatchMaterializedData) {
  ExpectSameResults("SELECT COUNT(*) FROM lineitem");
  ExpectSameResults("SELECT COUNT(*) FROM orders");
  ExpectSameResults("SELECT COUNT(*) FROM nation");
}

TEST_F(VirtualTableTest, FiltersMatch) {
  ExpectSameResults(
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10");
  ExpectSameResults(
      "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'P'");
  ExpectSameResults(
      "SELECT COUNT(*) FROM lineitem WHERE l_shipdate BETWEEN "
      "DATE '1994-01-01' AND DATE '1994-12-31' AND l_discount > 0.05");
}

TEST_F(VirtualTableTest, AggregatesMatch) {
  ExpectSameResults(
      "SELECT SUM(l_extendedprice), AVG(l_discount), MIN(l_shipdate), "
      "MAX(l_shipdate) FROM lineitem");
  ExpectSameResults("SELECT COUNT(DISTINCT l_shipmode) FROM lineitem");
}

TEST_F(VirtualTableTest, GroupByMatches) {
  ExpectSameResults(
      "SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag");
  ExpectSameResults(
      "SELECT o_orderpriority, COUNT(*) FROM orders "
      "GROUP BY o_orderpriority ORDER BY o_orderpriority");
}

TEST_F(VirtualTableTest, ProjectionOrderLimitMatch) {
  ExpectSameResults(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC LIMIT 10");
  ExpectSameResults("SELECT n_name FROM nation ORDER BY n_name LIMIT 5");
}

TEST_F(VirtualTableTest, PrimaryKeyPredicatesMatch) {
  // These route through KeyRangeToRows — results must be identical to
  // the materialized path anyway, because the pushdown only narrows the
  // scanned window while conditions still run per row.
  ExpectSameResults("SELECT * FROM orders WHERE o_orderkey = 100");
  ExpectSameResults(
      "SELECT COUNT(*), SUM(o_totalprice) FROM orders "
      "WHERE o_orderkey BETWEEN 50 AND 150");
  ExpectSameResults(
      "SELECT o_orderkey FROM orders WHERE o_orderkey >= 700 "
      "ORDER BY o_orderkey");
  ExpectSameResults(
      "SELECT COUNT(*) FROM orders WHERE o_orderkey < 10 "
      "AND o_orderstatus = 'O'");
  // Empty and out-of-range windows.
  ExpectSameResults("SELECT * FROM orders WHERE o_orderkey = 0");
  ExpectSameResults("SELECT * FROM orders WHERE o_orderkey > 1000000");
}

TEST_F(VirtualTableTest, KeyRangeInversionIsExact) {
  // orders: o_orderkey = 1 + row (IdGenerator start 1, step 1).
  GeneratedVirtualTable orders(session_, schema_->FindTableIndex("orders"));
  const uint64_t rows = orders.row_count();
  uint64_t first = 0, last = 0;
  ASSERT_TRUE(orders.KeyRangeToRows(5, 10, &first, &last));
  EXPECT_EQ(first, 4u);
  EXPECT_EQ(last, 10u);
  ASSERT_TRUE(orders.KeyRangeToRows(1, 1, &first, &last));
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, 1u);
  // Clamped to the table; empty when the interval misses it.
  ASSERT_TRUE(orders.KeyRangeToRows(-100, 1000000000, &first, &last));
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, rows);
  ASSERT_TRUE(orders.KeyRangeToRows(10, 5, &first, &last));
  EXPECT_EQ(first, last);
  ASSERT_TRUE(orders.KeyRangeToRows(-10, 0, &first, &last));
  EXPECT_EQ(first, last);

  // region: r_regionkey = row (IdGenerator start 0, step 1).
  GeneratedVirtualTable region(session_, schema_->FindTableIndex("region"));
  ASSERT_TRUE(region.KeyRangeToRows(0, 3, &first, &last));
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, 4u);

  // lineitem has a composite key — no single-column inversion.
  GeneratedVirtualTable lineitem(session_,
                                 schema_->FindTableIndex("lineitem"));
  EXPECT_FALSE(lineitem.KeyRangeToRows(0, 10, &first, &last));
}

TEST_F(VirtualTableTest, CatalogVirtualTablesEndToEnd) {
  minidb::Database db;
  RegisterDbsynthModule(&db, TpchResolver());
  auto created = minidb::ExecuteSql(
      &db,
      "CREATE VIRTUAL TABLE orders_v USING dbsynth(tpch, orders, '0.0005')");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  // SELECT over the virtual table equals the same SELECT over the
  // materialized copy.
  const std::string queries[] = {
      "SELECT COUNT(*) FROM %T",
      "SELECT o_orderkey, o_totalprice FROM %T WHERE o_orderkey "
      "BETWEEN 10 AND 20 ORDER BY o_orderkey",
      "SELECT o_orderpriority, COUNT(*) FROM %T GROUP BY o_orderpriority "
      "ORDER BY o_orderpriority",
  };
  for (const std::string& pattern : queries) {
    std::string virtual_sql = pattern;
    virtual_sql.replace(virtual_sql.find("%T"), 2, "orders_v");
    std::string stored_sql = pattern;
    stored_sql.replace(stored_sql.find("%T"), 2, "orders");
    auto virtual_result = minidb::ExecuteSql(&db, virtual_sql);
    auto stored_result = minidb::ExecuteSql(database_, stored_sql);
    ASSERT_TRUE(virtual_result.ok()) << virtual_result.status().ToString();
    ASSERT_TRUE(stored_result.ok()) << stored_result.status().ToString();
    ASSERT_EQ(virtual_result->rows.size(), stored_result->rows.size())
        << pattern;
    for (size_t r = 0; r < stored_result->rows.size(); ++r) {
      for (size_t c = 0; c < stored_result->rows[r].size(); ++c) {
        EXPECT_EQ(stored_result->rows[r][c], virtual_result->rows[r][c])
            << pattern << " row " << r << " col " << c;
      }
    }
  }

  // The catalog lists it; it is read-only; DROP removes it.
  EXPECT_NE(db.GetVirtualTable("orders_v"), nullptr);
  EXPECT_FALSE(
      minidb::ExecuteSql(&db, "INSERT INTO orders_v VALUES (1)").ok());
  EXPECT_FALSE(
      minidb::ExecuteSql(&db, "DELETE FROM orders_v WHERE o_orderkey = 1")
          .ok());
  ASSERT_TRUE(minidb::ExecuteSql(&db, "DROP TABLE orders_v").ok());
  EXPECT_EQ(db.GetVirtualTable("orders_v"), nullptr);
}

TEST_F(VirtualTableTest, ModuleSharesSessionsAndValidatesArguments) {
  minidb::Database db;
  RegisterDbsynthModule(&db, TpchResolver());
  // Two tables of one (model, sf) share a session; creating the second
  // is instant even though the first already resolved the model.
  ASSERT_TRUE(minidb::ExecuteSql(&db,
                                 "CREATE VIRTUAL TABLE n_v USING "
                                 "dbsynth(tpch, nation, '0.0005')")
                  .ok());
  ASSERT_TRUE(minidb::ExecuteSql(&db,
                                 "CREATE VIRTUAL TABLE r_v USING "
                                 "dbsynth(tpch, region, '0.0005')")
                  .ok());
  auto count = minidb::ExecuteSql(&db, "SELECT COUNT(*) FROM r_v");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->At(0, "count"), pdgf::Value::Int(5));

  // Argument validation: arity, unknown model/table, bad update.
  EXPECT_FALSE(
      minidb::ExecuteSql(&db, "CREATE VIRTUAL TABLE x USING dbsynth(tpch)")
          .ok());
  EXPECT_FALSE(minidb::ExecuteSql(&db,
                                  "CREATE VIRTUAL TABLE x USING "
                                  "dbsynth(ghost, orders)")
                   .ok());
  EXPECT_FALSE(minidb::ExecuteSql(&db,
                                  "CREATE VIRTUAL TABLE x USING "
                                  "dbsynth(tpch, ghost)")
                   .ok());
  EXPECT_FALSE(minidb::ExecuteSql(&db,
                                  "CREATE VIRTUAL TABLE x USING "
                                  "dbsynth(tpch, orders, '0.0005', nope)")
                   .ok());
  // Unknown module name.
  EXPECT_FALSE(minidb::ExecuteSql(
                   &db, "CREATE VIRTUAL TABLE x USING ghostmod(a, b)")
                   .ok());
}

TEST_F(VirtualTableTest, NothingIsMaterialized) {
  // A full scan through the virtual path with memory bounded to one
  // generation batch: run it and observe every row streams through.
  GeneratedVirtualTable table(
      session_, schema_->FindTableIndex("lineitem"));
  EXPECT_EQ(table.row_count(), 3000u);
  uint64_t visited = 0;
  table.ScanRange(0, table.row_count(),
                  [&visited](const minidb::Row& row) {
                    EXPECT_EQ(row.size(), 16u);
                    ++visited;
                    return true;
                  });
  EXPECT_EQ(visited, 3000u);

  // Range scans honor the window and early exit.
  visited = 0;
  table.ScanRange(100, 200, [&visited](const minidb::Row&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 100u);
  visited = 0;
  table.ScanRange(0, table.row_count(), [&visited](const minidb::Row&) {
    return ++visited < 7;
  });
  EXPECT_EQ(visited, 7u);
}

TEST_F(VirtualTableTest, RejectsNonSelectAndUnknownTables) {
  EXPECT_FALSE(
      ExecuteQueryWithoutData(*session_, "DROP TABLE lineitem").ok());
  EXPECT_FALSE(
      ExecuteQueryWithoutData(*session_, "SELECT * FROM ghost").ok());
  EXPECT_FALSE(ExecuteQueryWithoutData(*session_, "not sql").ok());
}

TEST_F(VirtualTableTest, SchemaCarriesTypesAndConstraints) {
  GeneratedVirtualTable table(session_,
                              schema_->FindTableIndex("lineitem"));
  const minidb::TableSchema& schema = table.schema();
  EXPECT_EQ(schema.name, "lineitem");
  EXPECT_EQ(schema.FindColumnDef("l_partkey")->ref_table, "partsupp");
  EXPECT_EQ(schema.FindColumnDef("l_quantity")->type,
            pdgf::DataType::kDecimal);
}

}  // namespace
}  // namespace dbsynth
