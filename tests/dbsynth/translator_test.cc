#include "dbsynth/schema_translator.h"

#include <gtest/gtest.h>

#include "core/generators/generators.h"
#include "minidb/sql.h"
#include "minidb/stats.h"

namespace dbsynth {
namespace {

using pdgf::DataType;
using pdgf::FieldDef;
using pdgf::GeneratorPtr;
using pdgf::SchemaDef;
using pdgf::Status;
using pdgf::TableDef;
using pdgf::Value;

// A model whose child table references its parent; the child is declared
// FIRST to exercise dependency-ordered creation.
SchemaDef MakeModel() {
  SchemaDef schema;
  schema.name = "m";
  schema.seed = 5;

  TableDef child;
  child.name = "child";
  child.size_expression = "50";
  FieldDef fk;
  fk.name = "parent_id";
  fk.type = DataType::kBigInt;
  fk.generator = GeneratorPtr(new pdgf::NullGenerator(
      0.1, GeneratorPtr(new pdgf::DefaultReferenceGenerator("parent", "id"))));
  child.fields.push_back(std::move(fk));
  FieldDef amount;
  amount.name = "amount";
  amount.type = DataType::kDecimal;
  amount.scale = 2;
  amount.size = 15;
  amount.generator = GeneratorPtr(new pdgf::DoubleGenerator(0, 100, 2));
  child.fields.push_back(std::move(amount));
  schema.tables.push_back(std::move(child));

  TableDef parent;
  parent.name = "parent";
  parent.size_expression = "10";
  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.primary = true;
  id.generator = GeneratorPtr(new pdgf::IdGenerator(1, 1));
  parent.fields.push_back(std::move(id));
  schema.tables.push_back(std::move(parent));
  return schema;
}

TEST(TranslatorTest, TableTranslationKeepsConstraints) {
  SchemaDef schema = MakeModel();
  minidb::TableSchema child = TranslateTable(schema, schema.tables[0]);
  ASSERT_EQ(child.columns.size(), 2u);
  // FK detected through the NullGenerator wrapper.
  EXPECT_EQ(child.columns[0].ref_table, "parent");
  EXPECT_EQ(child.columns[0].ref_column, "id");
  EXPECT_EQ(child.columns[1].type, DataType::kDecimal);
  EXPECT_EQ(child.columns[1].scale, 2);

  minidb::TableSchema parent = TranslateTable(schema, schema.tables[1]);
  EXPECT_TRUE(parent.columns[0].primary_key);
  EXPECT_FALSE(parent.columns[0].nullable);
}

TEST(TranslatorTest, DdlScriptIsExecutable) {
  SchemaDef schema = MakeModel();
  std::string ddl = TranslateToSqlDdl(schema);
  EXPECT_NE(ddl.find("CREATE TABLE child"), std::string::npos);
  EXPECT_NE(ddl.find("REFERENCES parent(id)"), std::string::npos);
  // The raw script fails if run as-is (child first), which is why
  // CreateTargetSchema orders by dependencies; verify that path instead.
  minidb::Database target;
  ASSERT_TRUE(CreateTargetSchema(schema, &target).ok());
  EXPECT_NE(target.GetTable("parent"), nullptr);
  EXPECT_NE(target.GetTable("child"), nullptr);
}

TEST(TranslatorTest, ReplaceDropsExistingTables) {
  SchemaDef schema = MakeModel();
  minidb::Database target;
  ASSERT_TRUE(CreateTargetSchema(schema, &target).ok());
  // Second run without replace fails; with replace succeeds.
  EXPECT_FALSE(CreateTargetSchema(schema, &target).ok());
  EXPECT_TRUE(CreateTargetSchema(schema, &target, /*replace=*/true).ok());
}

TEST(TranslatorTest, BulkLoadFillsTargetTables) {
  SchemaDef schema = MakeModel();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  minidb::Database target;
  ASSERT_TRUE(CreateTargetSchema(schema, &target).ok());
  auto loaded = BulkLoadGeneratedData(**session, &target);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 60u);
  EXPECT_EQ(target.GetTable("parent")->row_count(), 10u);
  EXPECT_EQ(target.GetTable("child")->row_count(), 50u);
  // FK values are valid parent ids (or NULL).
  target.GetTable("child")->Scan([](const minidb::Row& row) {
    if (!row[0].is_null()) {
      EXPECT_GE(row[0].int_value(), 1);
      EXPECT_LE(row[0].int_value(), 10);
    }
    return true;
  });
}

TEST(TranslatorTest, SqlLoadMatchesBulkLoad) {
  SchemaDef schema = MakeModel();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());

  minidb::Database bulk_target;
  ASSERT_TRUE(CreateTargetSchema(schema, &bulk_target).ok());
  ASSERT_TRUE(BulkLoadGeneratedData(**session, &bulk_target).ok());

  minidb::Database sql_target;
  ASSERT_TRUE(CreateTargetSchema(schema, &sql_target).ok());
  auto loaded = SqlLoadGeneratedData(**session, &sql_target, /*batch=*/7);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 60u);

  // Both load paths produce identical tables.
  for (const char* name : {"parent", "child"}) {
    const minidb::Table* bulk = bulk_target.GetTable(name);
    const minidb::Table* sql = sql_target.GetTable(name);
    ASSERT_EQ(bulk->row_count(), sql->row_count()) << name;
    for (size_t r = 0; r < bulk->row_count(); ++r) {
      for (size_t c = 0; c < bulk->schema().columns.size(); ++c) {
        EXPECT_EQ(bulk->row(r)[c], sql->row(r)[c])
            << name << " row " << r << " col " << c;
      }
    }
  }
}

TEST(TranslatorTest, BulkLoadRequiresExistingTables) {
  SchemaDef schema = MakeModel();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  minidb::Database empty_target;
  EXPECT_FALSE(BulkLoadGeneratedData(**session, &empty_target).ok());
}

TEST(TranslatorTest, CyclicDependenciesDetected) {
  SchemaDef schema;
  schema.name = "cyc";
  TableDef a;
  a.name = "a";
  a.size_expression = "1";
  FieldDef fa;
  fa.name = "b_ref";
  fa.type = DataType::kBigInt;
  fa.generator = GeneratorPtr(new pdgf::DefaultReferenceGenerator("b", "a_ref"));
  a.fields.push_back(std::move(fa));
  schema.tables.push_back(std::move(a));
  TableDef b;
  b.name = "b";
  b.size_expression = "1";
  FieldDef fb;
  fb.name = "a_ref";
  fb.type = DataType::kBigInt;
  fb.generator = GeneratorPtr(new pdgf::DefaultReferenceGenerator("a", "b_ref"));
  b.fields.push_back(std::move(fb));
  schema.tables.push_back(std::move(b));

  minidb::Database target;
  Status status = CreateTargetSchema(schema, &target);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), pdgf::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dbsynth
