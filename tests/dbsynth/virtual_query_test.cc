// Tests for query execution without data generation (paper §6 future
// work): SELECTs run directly over the generator stream and must agree
// exactly with the same query over a database the data was loaded into.

#include "dbsynth/virtual_query.h"

#include <gtest/gtest.h>

#include "dbsynth/schema_translator.h"
#include "minidb/sql.h"
#include "workloads/tpch.h"

namespace dbsynth {
namespace {

class VirtualQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    schema_ = new pdgf::SchemaDef(workloads::BuildTpchSchema());
    auto session =
        pdgf::GenerationSession::Create(schema_, {{"SF", "0.0005"}});
    ASSERT_TRUE(session.ok());
    session_ = session->release();
    database_ = new minidb::Database();
    ASSERT_TRUE(CreateTargetSchema(*schema_, database_).ok());
    ASSERT_TRUE(BulkLoadGeneratedData(*session_, database_).ok());
  }

  static void TearDownTestSuite() {
    delete database_;
    database_ = nullptr;
    delete session_;
    session_ = nullptr;
    delete schema_;
    schema_ = nullptr;
  }

  // Runs `sql` both ways and requires identical result sets.
  static void ExpectSameResults(const std::string& sql) {
    auto materialized = minidb::ExecuteSql(database_, sql);
    auto virtual_result = ExecuteQueryWithoutData(*session_, sql);
    ASSERT_TRUE(materialized.ok()) << sql << ": "
                                   << materialized.status().ToString();
    ASSERT_TRUE(virtual_result.ok()) << sql << ": "
                                     << virtual_result.status().ToString();
    EXPECT_EQ(materialized->columns, virtual_result->columns) << sql;
    ASSERT_EQ(materialized->rows.size(), virtual_result->rows.size()) << sql;
    for (size_t r = 0; r < materialized->rows.size(); ++r) {
      for (size_t c = 0; c < materialized->rows[r].size(); ++c) {
        EXPECT_EQ(materialized->rows[r][c], virtual_result->rows[r][c])
            << sql << " row " << r << " col " << c;
      }
    }
  }

  static pdgf::SchemaDef* schema_;
  static pdgf::GenerationSession* session_;
  static minidb::Database* database_;
};

pdgf::SchemaDef* VirtualQueryTest::schema_ = nullptr;
pdgf::GenerationSession* VirtualQueryTest::session_ = nullptr;
minidb::Database* VirtualQueryTest::database_ = nullptr;

TEST_F(VirtualQueryTest, CountsMatchMaterializedData) {
  ExpectSameResults("SELECT COUNT(*) FROM lineitem");
  ExpectSameResults("SELECT COUNT(*) FROM orders");
  ExpectSameResults("SELECT COUNT(*) FROM nation");
}

TEST_F(VirtualQueryTest, FiltersMatch) {
  ExpectSameResults(
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10");
  ExpectSameResults(
      "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'P'");
  ExpectSameResults(
      "SELECT COUNT(*) FROM lineitem WHERE l_shipdate BETWEEN "
      "DATE '1994-01-01' AND DATE '1994-12-31' AND l_discount > 0.05");
}

TEST_F(VirtualQueryTest, AggregatesMatch) {
  ExpectSameResults(
      "SELECT SUM(l_extendedprice), AVG(l_discount), MIN(l_shipdate), "
      "MAX(l_shipdate) FROM lineitem");
  ExpectSameResults("SELECT COUNT(DISTINCT l_shipmode) FROM lineitem");
}

TEST_F(VirtualQueryTest, GroupByMatches) {
  ExpectSameResults(
      "SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag");
  ExpectSameResults(
      "SELECT o_orderpriority, COUNT(*) FROM orders "
      "GROUP BY o_orderpriority ORDER BY o_orderpriority");
}

TEST_F(VirtualQueryTest, ProjectionOrderLimitMatch) {
  ExpectSameResults(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC LIMIT 10");
  ExpectSameResults("SELECT n_name FROM nation ORDER BY n_name LIMIT 5");
}

TEST_F(VirtualQueryTest, NothingIsMaterialized) {
  // A full-table aggregate through the virtual path with memory bounded
  // to a single row: just run a large query and observe it completes;
  // the structural guarantee is that GeneratedTableSource holds one Row.
  GeneratedTableSource source(
      session_, schema_->FindTableIndex("lineitem"));
  EXPECT_EQ(source.row_count(), 3000u);
  uint64_t visited = 0;
  source.Scan([&visited](const minidb::Row& row) {
    EXPECT_EQ(row.size(), 16u);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 3000u);
}

TEST_F(VirtualQueryTest, RejectsNonSelectAndUnknownTables) {
  EXPECT_FALSE(
      ExecuteQueryWithoutData(*session_, "DROP TABLE lineitem").ok());
  EXPECT_FALSE(
      ExecuteQueryWithoutData(*session_, "SELECT * FROM ghost").ok());
  EXPECT_FALSE(ExecuteQueryWithoutData(*session_, "not sql").ok());
}

TEST_F(VirtualQueryTest, SchemaCarriesTypesAndConstraints) {
  GeneratedTableSource source(session_,
                              schema_->FindTableIndex("lineitem"));
  const minidb::TableSchema& schema = source.schema();
  EXPECT_EQ(schema.name, "lineitem");
  EXPECT_EQ(schema.FindColumnDef("l_partkey")->ref_table, "partsupp");
  EXPECT_EQ(schema.FindColumnDef("l_quantity")->type,
            pdgf::DataType::kDecimal);
}

}  // namespace
}  // namespace dbsynth
