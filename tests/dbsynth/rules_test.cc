#include "dbsynth/rules.h"

#include <gtest/gtest.h>

namespace dbsynth {
namespace {

struct RuleCase {
  const char* column;
  NameCategory expected;
};

class RulesTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(RulesTest, ClassifiesColumnName) {
  EXPECT_EQ(ClassifyColumnName(GetParam().column), GetParam().expected)
      << GetParam().column << " -> "
      << NameCategoryLabel(ClassifyColumnName(GetParam().column));
}

INSTANTIATE_TEST_SUITE_P(
    KeywordSweep, RulesTest,
    ::testing::Values(
        // The paper's example: "numeric columns with name key or id".
        RuleCase{"l_orderkey", NameCategory::kKey},
        RuleCase{"ps_partkey", NameCategory::kKey},
        RuleCase{"customer_id", NameCategory::kKey},
        RuleCase{"id", NameCategory::kKey},
        RuleCase{"ORDER_NO", NameCategory::kKey},
        RuleCase{"c_customer_sk", NameCategory::kKey},
        RuleCase{"account_number", NameCategory::kKey},
        // Semantic categories.
        RuleCase{"c_name", NameCategory::kName},
        RuleCase{"movie_title", NameCategory::kName},
        RuleCase{"c_address", NameCategory::kAddress},
        RuleCase{"ship_addr", NameCategory::kAddress},
        RuleCase{"street_1", NameCategory::kAddress},
        RuleCase{"home_city", NameCategory::kCity},
        RuleCase{"billing_state", NameCategory::kState},
        RuleCase{"n_nationkey", NameCategory::kKey},  // key beats nation
        RuleCase{"nation", NameCategory::kCountry},
        RuleCase{"country_of_origin", NameCategory::kCountry},
        RuleCase{"zip_code", NameCategory::kZip},
        RuleCase{"postal", NameCategory::kZip},
        RuleCase{"c_phone", NameCategory::kPhone},
        RuleCase{"fax", NameCategory::kPhone},
        RuleCase{"email_address", NameCategory::kEmail},
        RuleCase{"homepage_url", NameCategory::kUrl},
        RuleCase{"website", NameCategory::kUrl},
        RuleCase{"l_comment", NameCategory::kComment},
        RuleCase{"item_description", NameCategory::kComment},
        RuleCase{"review_text", NameCategory::kComment},
        RuleCase{"remarks", NameCategory::kComment},
        RuleCase{"o_orderdate", NameCategory::kDate},
        RuleCase{"ship_dt", NameCategory::kDate},
        RuleCase{"p_retailprice", NameCategory::kPrice},
        RuleCase{"total_amount", NameCategory::kPrice},
        RuleCase{"acct_balance", NameCategory::kPrice},
        RuleCase{"l_quantity", NameCategory::kQuantity},
        RuleCase{"item_qty", NameCategory::kQuantity},
        RuleCase{"click_count", NameCategory::kQuantity},
        RuleCase{"is_active", NameCategory::kFlag},
        RuleCase{"deleted_flag", NameCategory::kFlag},
        // Non-matches.
        RuleCase{"x", NameCategory::kNone},
        RuleCase{"payload", NameCategory::kNone},
        RuleCase{"idea", NameCategory::kNone}));  // no false key match

TEST(RulesTest, LabelsAreStable) {
  EXPECT_STREQ(NameCategoryLabel(NameCategory::kKey), "key");
  EXPECT_STREQ(NameCategoryLabel(NameCategory::kComment), "comment");
  EXPECT_STREQ(NameCategoryLabel(NameCategory::kNone), "none");
}

}  // namespace
}  // namespace dbsynth
