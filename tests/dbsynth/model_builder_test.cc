#include "dbsynth/model_builder.h"

#include <gtest/gtest.h>

#include "core/generators/generators.h"
#include "core/session.h"
#include "dbsynth/connection.h"
#include "minidb/sql.h"
#include "util/files.h"

namespace dbsynth {
namespace {

using pdgf::Value;

// Builds a source database exercising every rule family.
minidb::Database MakeSource() {
  minidb::Database db;
  auto created = minidb::ExecuteSqlScript(
      &db,
      "CREATE TABLE category (cat_id BIGINT PRIMARY KEY, "
      "  label VARCHAR(10) NOT NULL);"
      "CREATE TABLE event (event_id BIGINT PRIMARY KEY,"
      "  cat_id BIGINT REFERENCES category(cat_id),"
      "  score DOUBLE,"
      "  happened DATE,"
      "  comment VARCHAR(200),"
      "  code VARCHAR(16));");
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  minidb::Table* category = db.GetTable("category");
  const char* labels[] = {"red", "green", "blue"};
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(
        category->Insert({Value::Int(i + 1), Value::String(labels[i % 3])})
            .ok());
  }
  minidb::Table* event = db.GetTable("event");
  pdgf::Xorshift64 rng(1);
  for (int i = 0; i < 300; ++i) {
    minidb::Row row;
    row.push_back(Value::Int(i + 1));
    row.push_back(Value::Int(i % 30 + 1));
    row.push_back(i % 10 == 0 ? Value::Null()
                              : Value::Double(10 + (i % 50) * 0.5));
    row.push_back(Value::FromDate(
        pdgf::Date::FromCivil(2010 + i % 5, 1 + i % 12, 1 + i % 28)));
    row.push_back(Value::String(
        "the quick event happened carefully during the busy day"));
    // High-cardinality single-word codes.
    std::string code = "code";
    for (int d = 0; d < 6; ++d) {
      code.push_back(static_cast<char>('a' + rng.NextBounded(26)));
    }
    row.push_back(Value::String(code));
    EXPECT_TRUE(event->Insert(std::move(row)).ok());
  }
  return db;
}

ModelBuildResult BuildFrom(minidb::Database* db,
                           ModelBuildOptions options = {}) {
  MiniDbConnection connection(db);
  ExtractionOptions extraction;
  extraction.sampling.strategy = SamplingSpec::Strategy::kFull;
  auto profile = ProfileDatabase(&connection, extraction);
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  auto model = BuildModel(*profile, options);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(*model);
}

const pdgf::Generator* FieldGenerator(const pdgf::SchemaDef& schema,
                                      const char* table, const char* field) {
  const pdgf::TableDef* t = schema.FindTable(table);
  EXPECT_NE(t, nullptr) << table;
  const pdgf::FieldDef* f = t->FindField(field);
  EXPECT_NE(f, nullptr) << field;
  return f->generator.get();
}

// Unwraps a NullGenerator if present.
const pdgf::Generator* Unwrap(const pdgf::Generator* generator) {
  if (const auto* null_wrapper =
          dynamic_cast<const pdgf::NullGenerator*>(generator)) {
    return null_wrapper->inner();
  }
  return generator;
}

TEST(ModelBuilderTest, ForeignKeysBecomeReferenceGenerators) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  const pdgf::Generator* generator =
      Unwrap(FieldGenerator(result.schema, "event", "cat_id"));
  const auto* reference =
      dynamic_cast<const pdgf::DefaultReferenceGenerator*>(generator);
  ASSERT_NE(reference, nullptr);
  EXPECT_EQ(reference->table(), "category");
  EXPECT_EQ(reference->field(), "cat_id");
}

TEST(ModelBuilderTest, PrimaryKeysBecomeIdGenerators) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  EXPECT_NE(dynamic_cast<const pdgf::IdGenerator*>(
                FieldGenerator(result.schema, "event", "event_id")),
            nullptr);
}

TEST(ModelBuilderTest, CategoricalTextBecomesWeightedDictionary) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  const auto* dict = dynamic_cast<const pdgf::DictListGenerator*>(
      FieldGenerator(result.schema, "category", "label"));
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict->dictionary().size(), 3u);
  EXPECT_GE(dict->dictionary().Find("red"), 0);
}

TEST(ModelBuilderTest, MultiWordTextBecomesMarkov) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  const auto* markov = dynamic_cast<const pdgf::MarkovChainGenerator*>(
      FieldGenerator(result.schema, "event", "comment"));
  ASSERT_NE(markov, nullptr);
  EXPECT_GT(markov->model().word_count(), 5u);
}

TEST(ModelBuilderTest, HighCardinalityTextBecomesRandomString) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  EXPECT_NE(dynamic_cast<const pdgf::RandomStringGenerator*>(
                FieldGenerator(result.schema, "event", "code")),
            nullptr);
}

TEST(ModelBuilderTest, NullableColumnsGetNullWrappers) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  const auto* null_wrapper = dynamic_cast<const pdgf::NullGenerator*>(
      FieldGenerator(result.schema, "event", "score"));
  ASSERT_NE(null_wrapper, nullptr);
  EXPECT_NEAR(null_wrapper->probability(), 0.1, 1e-9);
}

TEST(ModelBuilderTest, DatesUseExtractedBounds) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  const auto* date = dynamic_cast<const pdgf::DateGenerator*>(
      FieldGenerator(result.schema, "event", "happened"));
  ASSERT_NE(date, nullptr);
  EXPECT_EQ(date->min().year(), 2010);
  EXPECT_EQ(date->max().year(), 2014);
}

TEST(ModelBuilderTest, SizesScaleWithProperty) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  // "<table>_size" properties exist with "<rows> * ${SF}" expressions.
  const pdgf::PropertyDef* size =
      result.schema.FindProperty("event_size");
  ASSERT_NE(size, nullptr);
  EXPECT_NE(size->expression.find("300"), std::string::npos);
  EXPECT_NE(size->expression.find("${SF}"), std::string::npos);

  auto session =
      pdgf::GenerationSession::Create(&result.schema, {{"SF", "3"}});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ((*session)->TableRows(
                result.schema.FindTableIndex("event")),
            900u);
}

TEST(ModelBuilderTest, BuiltModelGenerates) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  auto session = pdgf::GenerationSession::Create(&result.schema);
  ASSERT_TRUE(session.ok());
  std::vector<Value> row;
  int event_table = result.schema.FindTableIndex("event");
  (*session)->GenerateRow(event_table, 0, 0, &row);
  ASSERT_EQ(row.size(), 6u);
  EXPECT_EQ(row[0].int_value(), 1);      // id
  EXPECT_GE(row[1].int_value(), 1);      // FK into category
  EXPECT_LE(row[1].int_value(), 30);
  EXPECT_FALSE(row[4].is_null());        // markov comment
}

TEST(ModelBuilderTest, DecisionsExplainEveryColumn) {
  minidb::Database db = MakeSource();
  ModelBuildResult result = BuildFrom(&db);
  // At least one decision per column (NULL wrappers add extras).
  EXPECT_GE(result.decisions.size(), 8u);
  bool saw_reference_reason = false;
  for (const ModelDecision& decision : result.decisions) {
    EXPECT_FALSE(decision.generator.empty());
    EXPECT_FALSE(decision.reason.empty());
    if (decision.generator == "gen_DefaultReferenceGenerator") {
      saw_reference_reason = true;
      EXPECT_NE(decision.reason.find("foreign key"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_reference_reason);
}

TEST(ModelBuilderTest, ArtifactDirPersistsModels) {
  auto dir = pdgf::MakeTempDir("dbsynth_artifacts_");
  ASSERT_TRUE(dir.ok());
  minidb::Database db = MakeSource();
  ModelBuildOptions options;
  options.artifact_dir = pdgf::JoinPath(*dir, "artifacts");
  ModelBuildResult result = BuildFrom(&db, options);
  // Markov model file written (Listing 1's markovSamples.bin naming).
  EXPECT_TRUE(pdgf::PathExists(pdgf::JoinPath(
      options.artifact_dir, "event_comment_markovSamples.bin")));
  EXPECT_TRUE(pdgf::PathExists(
      pdgf::JoinPath(options.artifact_dir, "category_label.dict")));
}

TEST(ModelBuilderTest, WithoutSamplingFallsBackToHeuristics) {
  minidb::Database db = MakeSource();
  MiniDbConnection connection(&db);
  ExtractionOptions extraction;
  extraction.sample_data = false;
  auto profile = ProfileDatabase(&connection, extraction);
  ASSERT_TRUE(profile.ok());
  auto model = BuildModel(*profile, ModelBuildOptions{});
  ASSERT_TRUE(model.ok());
  // "comment" matches the comment keyword -> Markov from builtin corpus.
  EXPECT_NE(dynamic_cast<const pdgf::MarkovChainGenerator*>(
                FieldGenerator(model->schema, "event", "comment")),
            nullptr);
  // "label" has no keyword -> random string fallback.
  EXPECT_NE(dynamic_cast<const pdgf::RandomStringGenerator*>(
                FieldGenerator(model->schema, "category", "label")),
            nullptr);
}

}  // namespace
}  // namespace dbsynth
