#include "dbsynth/query_generator.h"
#include <set>

#include <gtest/gtest.h>

#include "dbsynth/schema_translator.h"
#include "dbsynth/virtual_table.h"
#include "minidb/sql.h"
#include "minidb/sql_parser.h"
#include "workloads/tpch.h"

namespace dbsynth {
namespace {

class QueryGeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    schema_ = new pdgf::SchemaDef(workloads::BuildTpchSchema());
    auto session =
        pdgf::GenerationSession::Create(schema_, {{"SF", "0.0002"}});
    ASSERT_TRUE(session.ok());
    session_ = session->release();
  }

  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
    delete schema_;
    schema_ = nullptr;
  }

  static pdgf::SchemaDef* schema_;
  static pdgf::GenerationSession* session_;
};

pdgf::SchemaDef* QueryGeneratorTest::schema_ = nullptr;
pdgf::GenerationSession* QueryGeneratorTest::session_ = nullptr;

TEST_F(QueryGeneratorTest, DeterministicPerIndexAndSeed) {
  QueryGenerator generator(session_);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(generator.Query(i), generator.Query(i)) << i;
  }
  QueryWorkloadOptions other_seed;
  other_seed.seed = 7;
  QueryGenerator other(session_, other_seed);
  int differing = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    if (generator.Query(i) != other.Query(i)) ++differing;
  }
  EXPECT_GE(differing, 15);
}

TEST_F(QueryGeneratorTest, EveryQueryParses) {
  QueryGenerator generator(session_);
  for (const std::string& sql : generator.Workload(100)) {
    auto parsed = minidb::ParseSql(sql);
    EXPECT_TRUE(parsed.ok()) << sql << "\n"
                             << parsed.status().ToString();
  }
}

TEST_F(QueryGeneratorTest, EveryQueryExecutesWithoutData) {
  // The §7 vision: workload + data from the same model, queries
  // executable without ever materializing the data set.
  QueryGenerator generator(session_);
  int nonempty = 0;
  for (const std::string& sql : generator.Workload(60)) {
    auto result = ExecuteQueryWithoutData(*session_, sql);
    ASSERT_TRUE(result.ok()) << sql << "\n"
                             << result.status().ToString();
    if (!result->rows.empty()) ++nonempty;
  }
  // In-domain constants: most queries actually select something.
  EXPECT_GT(nonempty, 40);
}

TEST_F(QueryGeneratorTest, ResultsMatchMaterializedExecution) {
  minidb::Database database;
  ASSERT_TRUE(CreateTargetSchema(*schema_, &database).ok());
  ASSERT_TRUE(BulkLoadGeneratedData(*session_, &database).ok());
  QueryGenerator generator(session_);
  for (const std::string& sql : generator.Workload(40)) {
    auto materialized = minidb::ExecuteSql(&database, sql);
    auto virtual_result = ExecuteQueryWithoutData(*session_, sql);
    ASSERT_TRUE(materialized.ok()) << sql;
    ASSERT_TRUE(virtual_result.ok()) << sql;
    ASSERT_EQ(materialized->rows.size(), virtual_result->rows.size())
        << sql;
    for (size_t r = 0; r < materialized->rows.size(); ++r) {
      for (size_t c = 0; c < materialized->rows[r].size(); ++c) {
        EXPECT_EQ(materialized->rows[r][c], virtual_result->rows[r][c])
            << sql;
      }
    }
  }
}

TEST_F(QueryGeneratorTest, WorkloadCoversShapes) {
  QueryGenerator generator(session_);
  bool saw_aggregate = false;
  bool saw_group_by = false;
  bool saw_where = false;
  bool saw_limit = false;
  bool saw_between = false;
  for (const std::string& sql : generator.Workload(150)) {
    if (sql.find("COUNT(*)") != std::string::npos) saw_aggregate = true;
    if (sql.find("GROUP BY") != std::string::npos) saw_group_by = true;
    if (sql.find("WHERE") != std::string::npos) saw_where = true;
    if (sql.find("LIMIT") != std::string::npos) saw_limit = true;
    if (sql.find("BETWEEN") != std::string::npos) saw_between = true;
  }
  EXPECT_TRUE(saw_aggregate);
  EXPECT_TRUE(saw_group_by);
  EXPECT_TRUE(saw_where);
  EXPECT_TRUE(saw_limit);
  EXPECT_TRUE(saw_between);
}

TEST_F(QueryGeneratorTest, QueriesTouchMultipleTables) {
  QueryGenerator generator(session_);
  std::set<std::string> tables;
  for (const std::string& sql : generator.Workload(100)) {
    size_t from = sql.find(" FROM ");
    ASSERT_NE(from, std::string::npos) << sql;
    size_t start = from + 6;
    size_t end = sql.find(' ', start);
    tables.insert(sql.substr(start, end == std::string::npos
                                        ? std::string::npos
                                        : end - start));
  }
  EXPECT_GE(tables.size(), 5u);
}

}  // namespace
}  // namespace dbsynth
