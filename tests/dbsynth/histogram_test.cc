// Histogram extraction + histogram-driven generation (paper §3 lists
// histograms among the statistics DBSynth extracts).

#include <map>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/generators/generators.h"
#include "core/session.h"
#include "dbsynth/model_builder.h"
#include "dbsynth/profiler.h"
#include "minidb/sql.h"
#include "util/rng.h"

namespace dbsynth {
namespace {

using pdgf::Value;

// Evaluates a generator directly.
Value Eval(const pdgf::Generator& generator, uint64_t row) {
  pdgf::GeneratorContext context(nullptr, 0, row, 0,
                                 pdgf::DeriveSeed(500, row));
  Value value;
  generator.Generate(&context, &value);
  return value;
}

TEST(HistogramGeneratorTest, ReproducesBucketWeights) {
  // 4 buckets over [0, 100) with weights 1:2:3:4.
  pdgf::HistogramGenerator generator(
      0, 100, {1, 2, 3, 4}, pdgf::HistogramGenerator::Output::kDouble);
  std::map<int, int> bucket_counts;
  const int draws = 20000;
  for (uint64_t row = 0; row < draws; ++row) {
    double v = Eval(generator, row).double_value();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 100.0);
    ++bucket_counts[static_cast<int>(v / 25.0)];
  }
  EXPECT_NEAR(bucket_counts[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(bucket_counts[1] / static_cast<double>(draws), 0.2, 0.015);
  EXPECT_NEAR(bucket_counts[2] / static_cast<double>(draws), 0.3, 0.015);
  EXPECT_NEAR(bucket_counts[3] / static_cast<double>(draws), 0.4, 0.015);
}

TEST(HistogramGeneratorTest, OutputKinds) {
  pdgf::HistogramGenerator longs(0, 50, {1, 1},
                                 pdgf::HistogramGenerator::Output::kLong);
  EXPECT_EQ(Eval(longs, 0).kind(), Value::Kind::kInt);
  pdgf::HistogramGenerator decimals(
      0, 50, {1, 1}, pdgf::HistogramGenerator::Output::kDecimal, 2);
  Value decimal = Eval(decimals, 0);
  EXPECT_EQ(decimal.kind(), Value::Kind::kDecimal);
  EXPECT_EQ(decimal.decimal_scale(), 2);
  pdgf::HistogramGenerator dates(
      8000, 9000, {1, 1}, pdgf::HistogramGenerator::Output::kDate);
  Value date = Eval(dates, 0);
  EXPECT_EQ(date.kind(), Value::Kind::kDate);
  EXPECT_GE(date.date_value().days_since_epoch(), 8000);
}

TEST(HistogramGeneratorTest, DegenerateInputsYieldMin) {
  pdgf::HistogramGenerator empty(5, 5, {},
                                 pdgf::HistogramGenerator::Output::kLong);
  EXPECT_EQ(Eval(empty, 0).int_value(), 5);
  pdgf::HistogramGenerator zero_weights(
      0, 10, {0, 0}, pdgf::HistogramGenerator::Output::kLong);
  EXPECT_EQ(Eval(zero_weights, 0).int_value(), 0);
}

TEST(HistogramGeneratorTest, ConfigRoundTrip) {
  pdgf::SchemaDef schema;
  schema.name = "h";
  schema.seed = 4;
  pdgf::TableDef table;
  table.name = "t";
  table.size_expression = "500";
  pdgf::FieldDef field;
  field.name = "v";
  field.type = pdgf::DataType::kDouble;
  field.generator = pdgf::GeneratorPtr(new pdgf::HistogramGenerator(
      10, 20, {5, 1, 5}, pdgf::HistogramGenerator::Output::kDouble));
  table.fields.push_back(std::move(field));
  schema.tables.push_back(std::move(table));

  std::string xml = pdgf::SchemaToXml(schema);
  EXPECT_NE(xml.find("gen_HistogramGenerator"), std::string::npos);
  auto reparsed = pdgf::LoadSchemaFromXml(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();

  auto s1 = pdgf::GenerationSession::Create(&schema);
  auto s2 = pdgf::GenerationSession::Create(&*reparsed);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  Value v1, v2;
  for (uint64_t row = 0; row < 50; ++row) {
    (*s1)->GenerateField(0, 0, row, 0, &v1);
    (*s2)->GenerateField(0, 0, row, 0, &v2);
    EXPECT_EQ(v1, v2);
  }
}

class HistogramExtractionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = minidb::ExecuteSql(
        &db_, "CREATE TABLE m (id BIGINT PRIMARY KEY, v INTEGER)");
    ASSERT_TRUE(created.ok());
    minidb::Table* table = db_.GetTable("m");
    // Bimodal: values cluster near 10 and near 90.
    pdgf::Xorshift64 rng(3);
    for (int i = 0; i < 2000; ++i) {
      int64_t v = (i % 2 == 0) ? rng.NextInRange(5, 15)
                               : rng.NextInRange(85, 95);
      ASSERT_TRUE(table->Insert({Value::Int(i + 1), Value::Int(v)}).ok());
    }
  }

  minidb::Database db_;
};

TEST_F(HistogramExtractionTest, ConnectionBuildsHistogram) {
  MiniDbConnection connection(&db_);
  auto histogram = connection.GetHistogram("m", "v", 9);
  ASSERT_TRUE(histogram.ok());
  ASSERT_EQ(histogram->buckets.size(), 9u);
  EXPECT_EQ(histogram->total, 2000u);
  // Bimodal: first and last buckets are heavy, the middle empty.
  EXPECT_GT(histogram->Fraction(0), 0.3);
  EXPECT_GT(histogram->Fraction(8), 0.3);
  EXPECT_DOUBLE_EQ(histogram->Fraction(4), 0.0);
  // Non-histogrammable column: empty result, not an error.
  auto id_as_text = connection.GetHistogram("m", "id", 0);
  ASSERT_TRUE(id_as_text.ok());
  EXPECT_TRUE(id_as_text->buckets.empty());
}

TEST_F(HistogramExtractionTest, ModelReproducesBimodalShape) {
  MiniDbConnection connection(&db_);
  ExtractionOptions extraction;
  extraction.extract_histograms = true;
  extraction.histogram_buckets = 9;
  extraction.sample_data = false;
  auto profile = ProfileDatabase(&connection, extraction);
  ASSERT_TRUE(profile.ok());
  EXPECT_GE(profile->timings.histogram_seconds, 0.0);
  const ColumnProfile& v_profile = profile->FindTable("m")->columns[1];
  ASSERT_TRUE(v_profile.has_histogram);

  auto model = BuildModel(*profile, ModelBuildOptions{});
  ASSERT_TRUE(model.ok());
  const pdgf::FieldDef* field =
      model->schema.FindTable("m")->FindField("v");
  ASSERT_NE(field->generator, nullptr);
  EXPECT_EQ(field->generator->ConfigName(), "gen_HistogramGenerator");

  // Regenerate and check the bimodal shape survives.
  auto session = pdgf::GenerationSession::Create(&model->schema);
  ASSERT_TRUE(session.ok());
  int low = 0, mid = 0, high = 0;
  Value value;
  int table = model->schema.FindTableIndex("m");
  int field_index = model->schema.FindTable("m")->FindFieldIndex("v");
  for (uint64_t row = 0; row < 2000; ++row) {
    (*session)->GenerateField(table, field_index, row, 0, &value);
    int64_t v = value.AsInt();
    if (v <= 25) ++low;
    if (v > 40 && v < 60) ++mid;
    if (v >= 75) ++high;
  }
  EXPECT_GT(low, 700);
  EXPECT_GT(high, 700);
  EXPECT_LT(mid, 50);
}

TEST_F(HistogramExtractionTest, WithoutHistogramsFallsBackToUniform) {
  MiniDbConnection connection(&db_);
  ExtractionOptions extraction;  // extract_histograms defaults to false
  extraction.sample_data = false;
  auto profile = ProfileDatabase(&connection, extraction);
  ASSERT_TRUE(profile.ok());
  auto model = BuildModel(*profile, ModelBuildOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->schema.FindTable("m")
                ->FindField("v")
                ->generator->ConfigName(),
            "gen_LongGenerator");
}

}  // namespace
}  // namespace dbsynth
