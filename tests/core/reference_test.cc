#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/generators/generators.h"
#include "core/session.h"

namespace pdgf {
namespace {

// parent(10 rows: pk = 100,102,...,118) <- child(200 rows: fk -> parent.pk)
SchemaDef MakeRefSchema(
    DefaultReferenceGenerator::Distribution distribution =
        DefaultReferenceGenerator::Distribution::kUniform,
    double skew = 0) {
  SchemaDef schema;
  schema.name = "ref";
  schema.seed = 7;

  TableDef parent;
  parent.name = "parent";
  parent.size_expression = "10";
  FieldDef pk;
  pk.name = "pk";
  pk.type = DataType::kBigInt;
  pk.primary = true;
  pk.generator = GeneratorPtr(new IdGenerator(100, 2));
  parent.fields.push_back(std::move(pk));
  schema.tables.push_back(std::move(parent));

  TableDef child;
  child.name = "child";
  child.size_expression = "200";
  FieldDef fk;
  fk.name = "fk";
  fk.type = DataType::kBigInt;
  fk.generator = GeneratorPtr(
      new DefaultReferenceGenerator("parent", "pk", distribution, skew));
  child.fields.push_back(std::move(fk));
  schema.tables.push_back(std::move(child));
  return schema;
}

TEST(ReferenceGeneratorTest, EveryReferenceIsValid) {
  SchemaDef schema = MakeRefSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  // Compute the set of actual parent keys.
  std::set<int64_t> parent_keys;
  Value value;
  for (uint64_t row = 0; row < 10; ++row) {
    (*session)->GenerateField(0, 0, row, 0, &value);
    parent_keys.insert(value.int_value());
  }
  ASSERT_EQ(parent_keys.size(), 10u);
  // Every child FK must recompute to one of them.
  for (uint64_t row = 0; row < 200; ++row) {
    (*session)->GenerateField(1, 0, row, 0, &value);
    EXPECT_TRUE(parent_keys.count(value.int_value()) > 0)
        << "row " << row << " fk " << value.int_value();
  }
}

TEST(ReferenceGeneratorTest, CoversTheParentDomain) {
  SchemaDef schema = MakeRefSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  std::set<int64_t> seen;
  Value value;
  for (uint64_t row = 0; row < 200; ++row) {
    (*session)->GenerateField(1, 0, row, 0, &value);
    seen.insert(value.int_value());
  }
  // 200 uniform draws over 10 keys hit all of them w.h.p.
  EXPECT_EQ(seen.size(), 10u);
}

TEST(ReferenceGeneratorTest, ZipfSkewsTowardsEarlyRows) {
  SchemaDef schema =
      MakeRefSchema(DefaultReferenceGenerator::Distribution::kZipf, 1.0);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  std::map<int64_t, int> counts;
  Value value;
  for (uint64_t row = 0; row < 5000; ++row) {
    (*session)->GenerateField(1, 0, row, 0, &value);
    ++counts[value.int_value()];
  }
  // Key of parent row 0 is 100; row 9 is 118.
  EXPECT_GT(counts[100], counts[118] * 3);
}

TEST(ReferenceGeneratorTest, DeterministicAcrossSessions) {
  SchemaDef schema1 = MakeRefSchema();
  SchemaDef schema2 = MakeRefSchema();
  auto s1 = GenerationSession::Create(&schema1);
  auto s2 = GenerationSession::Create(&schema2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  Value v1, v2;
  for (uint64_t row = 0; row < 50; ++row) {
    (*s1)->GenerateField(1, 0, row, 0, &v1);
    (*s2)->GenerateField(1, 0, row, 0, &v2);
    EXPECT_EQ(v1, v2);
  }
}

TEST(ReferenceGeneratorTest, ScalesWithReferencedTable) {
  // Scaling the parent changes the key domain; references must follow.
  SchemaDef schema = MakeRefSchema();
  schema.tables[0].size_expression = "1000";
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  std::set<int64_t> seen;
  Value value;
  for (uint64_t row = 0; row < 2000; ++row) {
    (*session)->GenerateField(1, 0, row, 0, &value);
    ASSERT_GE(value.int_value(), 100);
    ASSERT_LE(value.int_value(), 100 + 2 * 999);
    seen.insert(value.int_value());
  }
  EXPECT_GT(seen.size(), 500u);
}

TEST(ReferenceGeneratorTest, MissingTargetsYieldNull) {
  SchemaDef schema = MakeRefSchema();
  // Point the FK at a nonexistent table / field.
  schema.tables[1].fields[0].generator =
      GeneratorPtr(new DefaultReferenceGenerator("nope", "pk"));
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  Value value;
  (*session)->GenerateField(1, 0, 0, 0, &value);
  EXPECT_TRUE(value.is_null());

  schema.tables[1].fields[0].generator =
      GeneratorPtr(new DefaultReferenceGenerator("parent", "nope"));
  auto session2 = GenerationSession::Create(&schema);
  ASSERT_TRUE(session2.ok());
  (*session2)->GenerateField(1, 0, 0, 0, &value);
  EXPECT_TRUE(value.is_null());
}

TEST(ReferenceGeneratorTest, ZipfReferencesStayValidAcrossRescaledSessions) {
  // Regression: the Zipf table is keyed by the referenced table's row
  // count. Reusing one schema at a larger scale used to sample rows from
  // the FIRST session's (smaller) domain — or worse, beyond the new
  // domain when shrinking — producing dangling foreign keys.
  SchemaDef schema =
      MakeRefSchema(DefaultReferenceGenerator::Distribution::kZipf, 1.0);
  schema.SetProperty("parent_rows", "10");
  schema.tables[0].size_expression = "${parent_rows}";

  auto small = GenerationSession::Create(&schema);
  ASSERT_TRUE(small.ok());
  Value value;
  // Warm the cache with the 10-row domain.
  for (uint64_t row = 0; row < 50; ++row) {
    (*small)->GenerateField(1, 0, row, 0, &value);
  }

  // Re-resolve the same schema 100x larger: references must cover and
  // respect the new domain [100, 100 + 2*999].
  auto large = GenerationSession::Create(&schema, {{"parent_rows", "1000"}});
  ASSERT_TRUE(large.ok());
  std::set<int64_t> seen;
  for (uint64_t row = 0; row < 3000; ++row) {
    (*large)->GenerateField(1, 0, row, 0, &value);
    ASSERT_GE(value.int_value(), 100);
    ASSERT_LE(value.int_value(), 100 + 2 * 999);
    seen.insert(value.int_value());
  }
  EXPECT_GT(seen.size(), 50u);  // not stuck in the old 10-key domain

  // And shrinking back must not emit keys beyond the small domain.
  auto shrunk = GenerationSession::Create(&schema, {{"parent_rows", "10"}});
  ASSERT_TRUE(shrunk.ok());
  for (uint64_t row = 0; row < 500; ++row) {
    (*shrunk)->GenerateField(1, 0, row, 0, &value);
    ASSERT_GE(value.int_value(), 100);
    ASSERT_LE(value.int_value(), 118);
  }
}

TEST(ReferenceGeneratorTest, ChainedReferencesResolve) {
  // grandchild -> child -> parent: recomputation recurses.
  SchemaDef schema = MakeRefSchema();
  TableDef grandchild;
  grandchild.name = "grandchild";
  grandchild.size_expression = "50";
  FieldDef fk;
  fk.name = "fk2";
  fk.type = DataType::kBigInt;
  fk.generator = GeneratorPtr(new DefaultReferenceGenerator("child", "fk"));
  grandchild.fields.push_back(std::move(fk));
  schema.tables.push_back(std::move(grandchild));

  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  Value value;
  for (uint64_t row = 0; row < 50; ++row) {
    (*session)->GenerateField(2, 0, row, 0, &value);
    // Values chain through child to parent keys: even numbers 100..118.
    EXPECT_GE(value.int_value(), 100);
    EXPECT_LE(value.int_value(), 118);
    EXPECT_EQ(value.int_value() % 2, 0);
  }
}

}  // namespace
}  // namespace pdgf
