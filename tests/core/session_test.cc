#include "core/session.h"

#include <set>

#include <gtest/gtest.h>

#include "core/generators/generators.h"

namespace pdgf {
namespace {

// A small two-table model used across the session tests.
SchemaDef MakeSchema() {
  SchemaDef schema;
  schema.name = "test";
  schema.seed = 42;
  schema.SetProperty("SF", "2");
  schema.SetProperty("base", "100");
  schema.SetProperty("t1_size", "${base} * ${SF}");

  TableDef t1;
  t1.name = "t1";
  t1.size_expression = "${t1_size}";
  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  t1.fields.push_back(std::move(id));
  FieldDef value;
  value.name = "value";
  value.type = DataType::kBigInt;
  value.generator = GeneratorPtr(new LongGenerator(0, 1000000));
  t1.fields.push_back(std::move(value));
  schema.tables.push_back(std::move(t1));

  TableDef t2;
  t2.name = "t2";
  t2.size_expression = "ceil(${t1_size} / 3)";
  FieldDef other;
  other.name = "other";
  other.type = DataType::kBigInt;
  other.generator = GeneratorPtr(new LongGenerator(0, 1000000));
  t2.fields.push_back(std::move(other));
  schema.tables.push_back(std::move(t2));
  return schema;
}

TEST(SessionTest, ResolvesPropertiesInDependencyOrder) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_DOUBLE_EQ(*(*session)->Property("SF"), 2);
  EXPECT_DOUBLE_EQ(*(*session)->Property("t1_size"), 200);
  EXPECT_FALSE((*session)->Property("nope").ok());
}

TEST(SessionTest, PropertyOrderIndependence) {
  // A property referencing one defined later must still resolve.
  SchemaDef schema = MakeSchema();
  schema.properties.clear();
  schema.SetProperty("a", "${b} + 1");
  schema.SetProperty("b", "5");
  schema.tables[0].size_expression = "${a}";
  schema.tables[1].size_expression = "1";
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_DOUBLE_EQ(*(*session)->Property("a"), 6);
}

TEST(SessionTest, DetectsUnresolvableProperties) {
  SchemaDef schema = MakeSchema();
  schema.SetProperty("cyclic", "${cyclic} + 1");
  auto session = GenerationSession::Create(&schema);
  EXPECT_FALSE(session.ok());
}

TEST(SessionTest, OverridesChangeScale) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema, {{"SF", "10"}});
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->TableRows(0), 1000u);
  EXPECT_EQ((*session)->TableRows(1), 334u);  // ceil(1000/3)
}

TEST(SessionTest, OverrideOfUnknownPropertyFails) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema, {{"TYPO", "10"}});
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kNotFound);
}

TEST(SessionTest, NegativeTableSizeRejected) {
  SchemaDef schema = MakeSchema();
  schema.tables[0].size_expression = "-5";
  EXPECT_FALSE(GenerationSession::Create(&schema).ok());
}

TEST(SessionTest, NullSchemaRejected) {
  EXPECT_FALSE(GenerationSession::Create(nullptr).ok());
}

TEST(SessionTest, FieldSeedsDifferAcrossCoordinates) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  std::set<uint64_t> seeds;
  for (int table = 0; table < 2; ++table) {
    int fields = table == 0 ? 2 : 1;
    for (int field = 0; field < fields; ++field) {
      for (uint64_t row = 0; row < 50; ++row) {
        for (uint64_t update = 0; update < 2; ++update) {
          seeds.insert((*session)->FieldSeed(table, field, row, update));
        }
      }
    }
  }
  EXPECT_EQ(seeds.size(), 2u * 2 * 50 + 1 * 50 * 2);
}

TEST(SessionTest, SeedsAreStableAcrossSessions) {
  SchemaDef schema1 = MakeSchema();
  SchemaDef schema2 = MakeSchema();
  auto s1 = GenerationSession::Create(&schema1);
  auto s2 = GenerationSession::Create(&schema2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  for (uint64_t row : {0ULL, 1ULL, 99ULL}) {
    EXPECT_EQ((*s1)->FieldSeed(0, 1, row, 0), (*s2)->FieldSeed(0, 1, row, 0));
  }
}

TEST(SessionTest, ProjectSeedChangesEverything) {
  SchemaDef schema1 = MakeSchema();
  SchemaDef schema2 = MakeSchema();
  schema2.seed = 43;
  auto s1 = GenerationSession::Create(&schema1);
  auto s2 = GenerationSession::Create(&schema2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // The paper: "changing the seed will modify every value of the
  // generated data set" — non-constant generators must diverge.
  int differing = 0;
  Value v1, v2;
  for (uint64_t row = 0; row < 20; ++row) {
    (*s1)->GenerateField(0, 1, row, 0, &v1);
    (*s2)->GenerateField(0, 1, row, 0, &v2);
    if (!(v1 == v2)) ++differing;
  }
  EXPECT_GE(differing, 19);
}

TEST(SessionTest, GenerateRowFillsAllFields) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  std::vector<Value> row;
  (*session)->GenerateRow(0, 7, 0, &row);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].int_value(), 8);  // id = row + 1
  EXPECT_FALSE(row[1].is_null());
}

TEST(SessionTest, GenerationIsPureFunctionOfCoordinates) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  Value a, b;
  // Random access: row 123 then row 5 then row 123 again.
  (*session)->GenerateField(0, 1, 123, 0, &a);
  (*session)->GenerateField(0, 1, 5, 0, &b);
  Value again;
  (*session)->GenerateField(0, 1, 123, 0, &again);
  EXPECT_EQ(a, again);
  EXPECT_NE(a, b);
}

TEST(SessionTest, PreviewReturnsFormattedRows) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  auto rows = (*session)->Preview(0, 5);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0], "1");
  EXPECT_EQ(rows[4][0], "5");
  // Preview never exceeds the table size.
  auto all = (*session)->Preview(1, 100000);
  EXPECT_EQ(all.size(), (*session)->TableRows(1));
}

TEST(SessionTest, EstimateRowBytesPositive) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  EXPECT_GT((*session)->EstimateRowBytes(0), 2.0);
}

}  // namespace
}  // namespace pdgf
