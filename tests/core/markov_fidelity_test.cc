// Statistical-fidelity tests for the Markov text model: generated text
// must reproduce the trained transition distribution (the property that
// makes DBSynth's synthetic comments "realistic", paper §3).

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/text/markov_model.h"
#include "util/strings.h"

namespace pdgf {
namespace {

TEST(MarkovFidelityTest, TransitionFrequenciesReproduceTraining) {
  // Train with exact 3:1 odds: "go left" x3, "go right" x1, repeated so
  // counts are large.
  MarkovModel model;
  for (int i = 0; i < 50; ++i) {
    model.AddSample("go left. go left. go left. go right.");
  }
  model.Finalize();
  ASSERT_NEAR(model.TransitionProbability("go", "left"), 0.75, 1e-12);

  Xorshift64 rng(2024);
  int left = 0;
  int right = 0;
  for (int i = 0; i < 4000; ++i) {
    std::string text = model.Generate(&rng, 2, 2);
    auto words = SplitWhitespace(text);
    ASSERT_EQ(words.size(), 2u);
    EXPECT_EQ(words[0], "go");
    if (words[1] == "left") ++left;
    if (words[1] == "right") ++right;
  }
  EXPECT_EQ(left + right, 4000);
  EXPECT_NEAR(left / 4000.0, 0.75, 0.02);
}

TEST(MarkovFidelityTest, StartStateFrequenciesReproduceTraining) {
  MarkovModel model;
  for (int i = 0; i < 10; ++i) {
    model.AddSample("alpha x. alpha y. alpha z. beta x.");
  }
  model.Finalize();
  Xorshift64 rng(7);
  std::map<std::string, int> starts;
  for (int i = 0; i < 4000; ++i) {
    std::string text = model.Generate(&rng, 1, 1);
    ++starts[text];
  }
  // Starts: alpha 3/4, beta 1/4.
  EXPECT_NEAR(starts["alpha"] / 4000.0, 0.75, 0.02);
  EXPECT_NEAR(starts["beta"] / 4000.0, 0.25, 0.02);
}

TEST(MarkovFidelityTest, ChiSquareOverBigramDistribution) {
  // Every training sentence finishes with the dedicated terminal word
  // "end", so "end" is the only word with end-of-sentence mass: every
  // generated bigram whose first word is not "end" is a pure chain
  // transition and its conditional probability is exactly the trained
  // one. Transition structure:
  //   a -> b (2/3), a -> c (1/3)
  //   b -> a (1/3), b -> end (2/3)
  //   c -> end (1)
  MarkovModel model;
  for (int i = 0; i < 20; ++i) {
    model.AddSample("a b end. a c end. a b a end. b a b end.");
  }
  model.Finalize();
  ASSERT_NEAR(model.TransitionProbability("a", "b"), 3.0 / 5, 1e-12);
  ASSERT_DOUBLE_EQ(model.TransitionProbability("end", "a"), 0.0);

  Xorshift64 rng(99);
  std::map<std::pair<std::string, std::string>, int> observed;
  std::map<std::string, int> first_totals;
  for (int i = 0; i < 3000; ++i) {
    std::string text = model.Generate(&rng, 8, 8);
    auto words = SplitWhitespace(text);
    for (size_t w = 0; w + 1 < words.size(); ++w) {
      if (words[w] == "end") continue;  // restart boundary
      ++observed[{words[w], words[w + 1]}];
      ++first_totals[words[w]];
    }
  }

  double chi2 = 0;
  int cells = 0;
  for (const auto& [bigram, count] : observed) {
    double conditional =
        model.TransitionProbability(bigram.first, bigram.second);
    ASSERT_GT(conditional, 0.0)
        << "unseen bigram generated: " << bigram.first << " -> "
        << bigram.second;
    double expected = first_totals[bigram.first] * conditional;
    if (expected < 20) continue;
    chi2 += (count - expected) * (count - expected) / expected;
    ++cells;
  }
  ASSERT_GT(cells, 3);
  // chi-square with ~5 effective dof; 20 is far beyond the 99.9th
  // percentile, so this only trips on real distribution bugs.
  EXPECT_LT(chi2, 20.0) << "chi2=" << chi2 << " cells=" << cells;
}

TEST(MarkovFidelityTest, LengthDistributionIsUniformOverRange) {
  MarkovModel model;
  model.AddSample("w w w w w w w w.");
  model.Finalize();
  Xorshift64 rng(5);
  std::map<size_t, int> lengths;
  const int draws = 9000;
  for (int i = 0; i < draws; ++i) {
    lengths[SplitWhitespace(model.Generate(&rng, 3, 11)).size()]++;
  }
  // 9 possible lengths, ~1000 each.
  ASSERT_EQ(lengths.size(), 9u);
  for (const auto& [length, count] : lengths) {
    EXPECT_NEAR(count / static_cast<double>(draws), 1.0 / 9, 0.02)
        << length;
  }
}

}  // namespace
}  // namespace pdgf
