// Batch/scalar parity suite (ISSUE 3 tentpole). The batched pipeline —
// RowBatch generation with hoisted seed derivation, AppendBatch
// formatting kernels, column-major digest accumulation — must be
// BIT-identical to the scalar per-row pipeline for every model, batch
// size (including ragged tails), update mode and worker count. These
// tests assert that identity value-by-value, byte-by-byte and
// digest-by-digest.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch.h"
#include "core/engine.h"
#include "core/generators/generators.h"
#include "core/output/formatter.h"
#include "core/session.h"
#include "util/hash.h"
#include "workloads/imdb.h"

namespace pdgf {
namespace {

// A schema exercising every batch-overridden generator plus a meta
// generator (NullGenerator) that runs through the default scalar
// fallback, plus an updatable table for the varying-update cold path.
SchemaDef MakeMixedSchema() {
  SchemaDef schema;
  schema.name = "batch_parity";
  schema.seed = 1234;

  TableDef dim;
  dim.name = "dim";
  dim.size_expression = "97";

  FieldDef dim_id;
  dim_id.name = "id";
  dim_id.type = DataType::kBigInt;
  dim_id.generator = GeneratorPtr(new IdGenerator(1, 1));
  dim.fields.push_back(std::move(dim_id));

  FieldDef dim_price;
  dim_price.name = "price";
  dim_price.type = DataType::kDecimal;
  dim_price.generator = GeneratorPtr(new DoubleGenerator(0.5, 999.75, 2));
  dim.fields.push_back(std::move(dim_price));

  schema.tables.push_back(std::move(dim));

  TableDef fact;
  fact.name = "fact";
  fact.size_expression = "523";  // prime: ragged against every batch size

  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(100, 3));
  fact.fields.push_back(std::move(id));

  FieldDef quantity;
  quantity.name = "quantity";
  quantity.type = DataType::kBigInt;
  quantity.generator = GeneratorPtr(new LongGenerator(1, 50));
  fact.fields.push_back(std::move(quantity));

  FieldDef ratio;
  ratio.name = "ratio";
  ratio.type = DataType::kDouble;
  ratio.generator = GeneratorPtr(new DoubleGenerator(0.0, 1.0, -1));
  fact.fields.push_back(std::move(ratio));

  FieldDef shipped;
  shipped.name = "shipped";
  shipped.type = DataType::kDate;
  shipped.generator = GeneratorPtr(new DateGenerator(
      Date::FromCivil(1992, 1, 1), Date::FromCivil(1998, 12, 31)));
  fact.fields.push_back(std::move(shipped));

  FieldDef mode;
  mode.name = "mode";
  mode.type = DataType::kVarchar;
  {
    auto dictionary = std::make_shared<Dictionary>();
    dictionary->Add("AIR", 4);
    dictionary->Add("RAIL", 3);
    dictionary->Add("SHIP", 2);
    dictionary->Add("TRUCK", 1);
    dictionary->Finalize();
    mode.generator = GeneratorPtr(new DictListGenerator(
        std::move(dictionary), "", DictListGenerator::Method::kCumulative,
        /*skew=*/0));
  }
  fact.fields.push_back(std::move(mode));

  FieldDef bucketed;
  bucketed.name = "bucketed";
  bucketed.type = DataType::kBigInt;
  bucketed.generator = GeneratorPtr(new HistogramGenerator(
      0.0, 1000.0, {1, 5, 2, 8, 4}, HistogramGenerator::Output::kLong));
  fact.fields.push_back(std::move(bucketed));

  FieldDef ref;
  ref.name = "dim_id";
  ref.type = DataType::kBigInt;
  ref.generator = GeneratorPtr(new DefaultReferenceGenerator("dim", "id"));
  fact.fields.push_back(std::move(ref));

  FieldDef comment;
  comment.name = "comment";
  comment.type = DataType::kVarchar;
  // NullGenerator has no batch override: exercises the default scalar
  // fallback (and the null masks) inside a batched column.
  comment.generator = GeneratorPtr(new NullGenerator(
      0.25, GeneratorPtr(new RandomStringGenerator(3, 12))));
  fact.fields.push_back(std::move(comment));

  schema.tables.push_back(std::move(fact));
  return schema;
}

// An updatable schema: mutable fields make the per-row effective-update
// resolution (and the varying-update BatchContext cold path) run.
SchemaDef MakeUpdatableSchema() {
  SchemaDef schema;
  schema.name = "batch_updates";
  schema.seed = 77;

  TableDef table;
  table.name = "accounts";
  table.size_expression = "300";
  table.updates_expression = "5";
  table.update_fraction = 0.3;

  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  id.mutable_across_updates = false;
  table.fields.push_back(std::move(id));

  FieldDef balance;
  balance.name = "balance";
  balance.type = DataType::kBigInt;
  balance.generator = GeneratorPtr(new LongGenerator(0, 1 << 30));
  balance.mutable_across_updates = true;
  table.fields.push_back(std::move(balance));

  FieldDef category;
  category.name = "category";
  category.type = DataType::kBigInt;
  category.generator = GeneratorPtr(new LongGenerator(0, 1 << 30));
  category.mutable_across_updates = false;
  table.fields.push_back(std::move(category));

  schema.tables.push_back(std::move(table));
  return schema;
}

// Asserts GenerateBatch == N x GenerateRow for every row/field of every
// table of `session` at time unit `update`, for the given batch size.
void ExpectBatchMatchesScalar(const GenerationSession& session,
                              uint64_t update, size_t batch_size) {
  const SchemaDef& schema = session.schema();
  RowBatch batch;
  std::vector<uint64_t> rows;
  std::vector<Value> scalar_row;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    const int table_index = static_cast<int>(t);
    const uint64_t table_rows = session.TableRows(table_index);
    for (uint64_t start = 0; start < table_rows;
         start += static_cast<uint64_t>(batch_size)) {
      uint64_t stop = start + static_cast<uint64_t>(batch_size);
      if (stop > table_rows) stop = table_rows;
      rows.clear();
      for (uint64_t r = start; r < stop; ++r) {
        if (update > 0 &&
            !session.RowChangesInUpdate(table_index, r, update)) {
          continue;
        }
        rows.push_back(r);
      }
      if (rows.empty()) continue;
      session.GenerateBatch(table_index, rows.data(), rows.size(), update,
                            &batch);
      ASSERT_EQ(batch.row_count(), rows.size());
      ASSERT_EQ(batch.column_count(), schema.tables[t].fields.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        session.GenerateRow(table_index, rows[i], update, &scalar_row);
        for (size_t f = 0; f < scalar_row.size(); ++f) {
          const Value& batched = batch.column(f).get(i);
          EXPECT_TRUE(batched == scalar_row[f])
              << "table " << schema.tables[t].name << " row " << rows[i]
              << " field " << f << " batch_size " << batch_size
              << " update " << update << ": batch='" << batched.ToText()
              << "' scalar='" << scalar_row[f].ToText() << "'";
          EXPECT_EQ(batched.kind(), scalar_row[f].kind());
          EXPECT_EQ(batch.column(f).is_null(i), scalar_row[f].is_null());
        }
      }
    }
  }
}

TEST(BatchParityTest, MixedSchemaAllBatchSizes) {
  SchemaDef schema = MakeMixedSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // Sizes straddling the 523-row table: singleton batches, odd sizes,
  // a power of two, and one larger than the table (single ragged batch).
  for (size_t batch_size : {1u, 7u, 64u, 523u, 1000u}) {
    ExpectBatchMatchesScalar(**session, /*update=*/0, batch_size);
  }
}

TEST(BatchParityTest, UpdateModeMatchesScalar) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const uint64_t updates = (*session)->TableUpdates(0);
  ASSERT_GE(updates, 2u);
  for (uint64_t update = 0; update <= updates; ++update) {
    ExpectBatchMatchesScalar(**session, update, 37);
  }
}

TEST(BatchParityTest, BundledModelsMatchScalar) {
  // The shipped models run every builtin generator family through the
  // batch path.
  for (const char* model : {"tpch", "ssb", "imdb"}) {
    auto schema = workloads::BuildBundledModel(model);
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    std::map<std::string, std::string> overrides;
    if (std::string(model) != "imdb") overrides["SF"] = "0.002";
    auto session = GenerationSession::Create(&*schema, overrides);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ExpectBatchMatchesScalar(**session, /*update=*/0, 113);
  }
}

TEST(BatchParityTest, SeedHoistingIdentity) {
  SchemaDef schema = MakeMixedSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  // FieldSeed(t, f, row, u) == SeedForRow(HoistedFieldBase(t, f, u), row)
  // — the algebraic identity the whole batch fast path rests on.
  for (int t = 0; t < 2; ++t) {
    const size_t fields = schema.tables[static_cast<size_t>(t)].fields.size();
    for (size_t f = 0; f < fields; ++f) {
      for (uint64_t u : {0ull, 1ull, 3ull}) {
        const uint64_t base =
            (*session)->HoistedFieldBase(t, static_cast<int>(f), u);
        for (uint64_t row : {0ull, 1ull, 17ull, 96ull, 1000000ull}) {
          EXPECT_EQ(GenerationSession::SeedForRow(base, row),
                    (*session)->FieldSeed(t, static_cast<int>(f), row, u));
        }
      }
    }
  }
}

TEST(BatchParityTest, FormatterBatchMatchesRowLoop) {
  SchemaDef schema = MakeMixedSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  const int table_index = 1;
  const TableDef& table = schema.tables[1];
  const uint64_t table_rows = (*session)->TableRows(table_index);
  std::vector<uint64_t> rows(table_rows);
  for (uint64_t r = 0; r < table_rows; ++r) rows[r] = r;
  RowBatch batch;
  (*session)->GenerateBatch(table_index, rows.data(), rows.size(), 0,
                            &batch);

  CsvFormatter csv('|', '"', "NULL");
  std::string batched;
  std::vector<size_t> offsets;
  csv.AppendBatch(table, batch, &batched, &offsets);

  std::string scalar;
  std::vector<Value> row;
  std::vector<size_t> scalar_offsets;
  for (uint64_t r = 0; r < table_rows; ++r) {
    scalar_offsets.push_back(scalar.size());
    (*session)->GenerateRow(table_index, r, 0, &row);
    csv.AppendRow(table, row, &scalar);
  }
  scalar_offsets.push_back(scalar.size());

  EXPECT_EQ(batched, scalar);
  ASSERT_EQ(offsets.size(), scalar_offsets.size());
  EXPECT_EQ(offsets, scalar_offsets);

  // JSON exercises the default AppendBatch fallback.
  JsonFormatter json;
  std::string json_batched;
  json.AppendBatch(table, batch, &json_batched, &offsets);
  std::string json_scalar;
  for (uint64_t r = 0; r < table_rows; ++r) {
    (*session)->GenerateRow(table_index, r, 0, &row);
    json.AppendRow(table, row, &json_scalar);
  }
  EXPECT_EQ(json_batched, json_scalar);
  EXPECT_EQ(offsets.size(), table_rows + 1);
}

TEST(BatchParityTest, DecomposedDigestMatchesAddRow) {
  SchemaDef schema = MakeMixedSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  const int table_index = 1;
  const TableDef& table = schema.tables[1];
  const uint64_t table_rows = (*session)->TableRows(table_index);
  std::vector<uint64_t> rows(table_rows);
  for (uint64_t r = 0; r < table_rows; ++r) rows[r] = r;
  RowBatch batch;
  (*session)->GenerateBatch(table_index, rows.data(), rows.size(), 0,
                            &batch);
  CsvFormatter csv;
  std::string bytes;
  std::vector<size_t> offsets;
  csv.AppendBatch(table, batch, &bytes, &offsets);

  // Batch-style accumulation: row bytes first, then columns column-major.
  TableDigest decomposed;
  const std::string_view view(bytes);
  for (size_t i = 0; i < batch.row_count(); ++i) {
    decomposed.AddRowBytes(batch.row_index(i),
                           view.substr(offsets[i], offsets[i + 1] - offsets[i]));
  }
  for (size_t c = 0; c < batch.column_count(); ++c) {
    for (size_t i = 0; i < batch.row_count(); ++i) {
      decomposed.AddColumnValue(c, batch.column(c).get(i));
    }
  }

  // Scalar AddRow accumulation over the same data.
  TableDigest scalar;
  std::vector<Value> row;
  std::string scalar_bytes;
  for (uint64_t r = 0; r < table_rows; ++r) {
    (*session)->GenerateRow(table_index, r, 0, &row);
    size_t row_start = scalar_bytes.size();
    csv.AppendRow(table, row, &scalar_bytes);
    scalar.AddRow(r, std::string_view(scalar_bytes).substr(row_start), row);
  }

  EXPECT_EQ(decomposed, scalar);
  EXPECT_EQ(decomposed.Hex(), scalar.Hex());
}

// Full-engine parity: the batch pipeline and the legacy scalar pipeline
// must deliver identical bytes and digests for every combination of
// worker count and batch size, including update mode.
TEST(BatchParityTest, EnginePipelinesProduceIdenticalDigests) {
  SchemaDef schema = MakeMixedSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;

  auto run = [&](bool scalar_pipeline, int workers, uint64_t batch_size,
                 uint64_t update) {
    GenerationOptions options;
    options.worker_count = workers;
    options.work_package_rows = 100;
    options.batch_rows = batch_size;
    options.scalar_pipeline = scalar_pipeline;
    options.compute_digests = true;
    options.update = update;
    auto stats = GenerateToNull(**session, formatter, options);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return *stats;
  };

  const GenerationEngine::Stats baseline = run(true, 1, 1024, 0);
  for (int workers : {1, 3}) {
    for (uint64_t batch_size : {1ull, 33ull, 1024ull}) {
      GenerationEngine::Stats batched = run(false, workers, batch_size, 0);
      ASSERT_EQ(batched.table_digests.size(),
                baseline.table_digests.size());
      EXPECT_EQ(batched.rows, baseline.rows);
      EXPECT_EQ(batched.bytes, baseline.bytes);
      for (size_t t = 0; t < baseline.table_digests.size(); ++t) {
        EXPECT_EQ(batched.table_digests[t].Hex(),
                  baseline.table_digests[t].Hex())
            << "workers=" << workers << " batch=" << batch_size
            << " table=" << t;
      }
    }
  }
}

TEST(BatchParityTest, EngineUpdateModeParity) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  for (uint64_t update : {1ull, 4ull}) {
    GenerationOptions scalar_options;
    scalar_options.worker_count = 1;
    scalar_options.work_package_rows = 64;
    scalar_options.scalar_pipeline = true;
    scalar_options.compute_digests = true;
    scalar_options.update = update;
    auto scalar = GenerateToNull(**session, formatter, scalar_options);
    ASSERT_TRUE(scalar.ok());

    GenerationOptions batch_options = scalar_options;
    batch_options.scalar_pipeline = false;
    batch_options.batch_rows = 17;
    batch_options.worker_count = 2;
    auto batched = GenerateToNull(**session, formatter, batch_options);
    ASSERT_TRUE(batched.ok());

    EXPECT_EQ(batched->rows, scalar->rows);
    ASSERT_EQ(batched->table_digests.size(), scalar->table_digests.size());
    for (size_t t = 0; t < scalar->table_digests.size(); ++t) {
      EXPECT_EQ(batched->table_digests[t].Hex(),
                scalar->table_digests[t].Hex())
          << "update=" << update << " table=" << t;
    }
  }
}

TEST(BatchParityTest, GenerateTableToStringMatchesScalarEngine) {
  SchemaDef schema = MakeMixedSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  auto batched = GenerateTableToString(**session, 1, formatter);
  ASSERT_TRUE(batched.ok());

  // Reference rendering: plain scalar loop.
  const TableDef& table = schema.tables[1];
  std::string expected;
  formatter.AppendHeader(table, &expected);
  std::vector<Value> row;
  const uint64_t rows = (*session)->TableRows(1);
  for (uint64_t r = 0; r < rows; ++r) {
    (*session)->GenerateRow(1, r, 0, &row);
    formatter.AppendRow(table, row, &expected);
  }
  formatter.AppendFooter(table, &expected);
  EXPECT_EQ(*batched, expected);
}

}  // namespace
}  // namespace pdgf
