// Tests for the engine observability layer (core/metrics): thread-
// private accumulation, merge-at-join aggregation, phase coverage of
// wall time, trace bounding, and the stable JSON export schema.

#include "core/metrics/metrics.h"

#include <string>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/generators/generators.h"

namespace pdgf {
namespace {

SchemaDef MakeSchema() {
  SchemaDef schema;
  schema.name = "metrics";
  schema.seed = 42;

  TableDef big;
  big.name = "big";
  big.size_expression = "2000";
  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  big.fields.push_back(std::move(id));
  FieldDef payload;
  payload.name = "payload";
  payload.type = DataType::kVarchar;
  payload.generator = GeneratorPtr(new RandomStringGenerator(8, 24));
  big.fields.push_back(std::move(payload));
  schema.tables.push_back(std::move(big));

  TableDef small;
  small.name = "small";
  small.size_expression = "321";
  FieldDef value;
  value.name = "value";
  value.type = DataType::kBigInt;
  value.generator = GeneratorPtr(new LongGenerator(0, 9999));
  small.fields.push_back(std::move(value));
  schema.tables.push_back(std::move(small));
  return schema;
}

GenerationEngine::Stats RunEngine(GenerationOptions options) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  EXPECT_TRUE(session.ok());
  CsvFormatter formatter;
  auto stats = GenerateToNull(**session, formatter, options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return *stats;
}

TEST(MetricsTest, DisabledRunLeavesReportEmpty) {
  GenerationOptions options;
  options.worker_count = 2;
  auto stats = RunEngine(options);
  EXPECT_FALSE(stats.metrics.enabled);
  EXPECT_TRUE(stats.metrics.workers.empty());
  EXPECT_TRUE(stats.metrics.tables.empty());
  EXPECT_TRUE(stats.metrics.trace.empty());
}

TEST(MetricsTest, EnabledRunAggregatesCounters) {
  GenerationOptions options;
  options.worker_count = 4;
  options.work_package_rows = 100;
  options.metrics_enabled = true;
  options.compute_digests = true;
  auto stats = RunEngine(options);
  const MetricsReport& report = stats.metrics;
  ASSERT_TRUE(report.enabled);
  EXPECT_EQ(report.worker_count, 4);
  EXPECT_EQ(report.workers.size(), 4u);
  EXPECT_EQ(report.rows, stats.rows);
  EXPECT_EQ(report.bytes, stats.bytes);
  EXPECT_EQ(report.packages, stats.packages);
  EXPECT_DOUBLE_EQ(report.wall_seconds, stats.seconds);
  EXPECT_GT(report.rows_per_second, 0);

  // Per-table counters: names in schema order, exact row counts, sink
  // byte counts.
  ASSERT_EQ(report.tables.size(), 2u);
  EXPECT_EQ(report.tables[0].name, "big");
  EXPECT_EQ(report.tables[0].rows, 2000u);
  EXPECT_EQ(report.tables[1].name, "small");
  EXPECT_EQ(report.tables[1].rows, 321u);
  EXPECT_GT(report.tables[0].bytes, 0u);
  EXPECT_EQ(report.tables[0].packages, 20u);  // 2000 rows / 100 per pkg

  // Worker rows sum to the total.
  uint64_t worker_rows = 0;
  for (const auto& worker : report.workers) worker_rows += worker.rows;
  EXPECT_EQ(worker_rows, stats.rows);
}

TEST(MetricsTest, PhaseTimingsApproximatelyCoverBusyTime) {
  GenerationOptions options;
  options.worker_count = 1;
  options.work_package_rows = 200;
  options.metrics_enabled = true;
  options.compute_digests = true;
  auto stats = RunEngine(options);
  const MetricsReport& report = stats.metrics;
  ASSERT_TRUE(report.enabled);
  double phase_sum = 0;
  for (int p = 0; p < kPhaseCount; ++p) {
    EXPECT_GE(report.phase_seconds[p], 0.0)
        << PhaseName(static_cast<Phase>(p));
    phase_sum += report.phase_seconds[p];
  }
  EXPECT_GT(phase_sum, 0.0);
  // Single worker: the phases must account for (almost all of, and never
  // much more than) the worker's active time, which itself tracks wall
  // time. Loose bounds keep this robust on loaded CI machines.
  ASSERT_EQ(report.workers.size(), 1u);
  double active = report.workers[0].active_seconds;
  EXPECT_GT(active, 0.0);
  EXPECT_LE(phase_sum, active * 1.25 + 1e-3);
  EXPECT_GE(phase_sum, active * 0.5 - 1e-3);
  // Digesting was on, so some digest time must have been attributed.
  EXPECT_GT(report.phase_seconds[static_cast<int>(Phase::kDigesting)], 0.0);
}

TEST(MetricsTest, TraceEventsAreRecordedAndBounded) {
  GenerationOptions options;
  options.worker_count = 2;
  options.work_package_rows = 100;
  options.metrics_enabled = true;
  options.trace_events = true;
  options.trace_capacity_per_worker = 4;  // force shedding: 24 packages
  auto stats = RunEngine(options);
  const MetricsReport& report = stats.metrics;
  ASSERT_TRUE(report.enabled);
  EXPECT_FALSE(report.trace.empty());
  EXPECT_LE(report.trace.size(), 8u);  // 2 workers x capacity 4
  EXPECT_GT(report.dropped_trace_events, 0u);
  // Merged trace is sorted by start time and tagged with worker ids.
  int64_t last_start = -1;
  for (const TraceEvent& event : report.trace) {
    EXPECT_STREQ(event.name, "package");
    EXPECT_GE(event.worker, 0);
    EXPECT_GE(event.start_nanos, last_start);
    EXPECT_GE(event.duration_nanos, 0);
    last_start = event.start_nanos;
  }
}

TEST(MetricsTest, NoTraceWithoutOptIn) {
  GenerationOptions options;
  options.worker_count = 2;
  options.metrics_enabled = true;
  auto stats = RunEngine(options);
  EXPECT_TRUE(stats.metrics.enabled);
  EXPECT_TRUE(stats.metrics.trace.empty());
  EXPECT_EQ(stats.metrics.dropped_trace_events, 0u);
}

TEST(MetricsTest, JsonExportHasStableSchema) {
  GenerationOptions options;
  options.worker_count = 2;
  options.work_package_rows = 500;
  options.metrics_enabled = true;
  auto stats = RunEngine(options);
  std::string json = stats.metrics.ToJson();
  for (const char* key :
       {"\"schema_version\"", "\"enabled\"", "\"wall_seconds\"", "\"rows\"",
        "\"bytes\"", "\"packages\"", "\"rows_per_second\"",
        "\"megabytes_per_second\"", "\"worker_count\"", "\"phase_seconds\"",
        "\"row_generation\"", "\"formatting\"", "\"digesting\"",
        "\"sink_wait\"", "\"sink_write\"", "\"writer_write\"",
        "\"writer_idle\"", "\"workers\"", "\"tables\"",
        "\"reorder_buffer_high_water\"", "\"reorder_buffer_capacity\"",
        "\"active_seconds\"", "\"writer_threads\"", "\"buffer_pool\"",
        "\"capacity\"", "\"allocations\"", "\"peak_in_flight\"",
        "\"queue_high_water\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Compact form carries the same keys, no newlines.
  std::string compact = stats.metrics.ToJson(false);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  EXPECT_NE(compact.find("\"schema_version\""), std::string::npos);
}

TEST(MetricsTest, WorkerMetricsMergeAndPhaseNames) {
  WorkerMetrics a(2, 2);
  a.AddPhase(Phase::kRowGeneration, 1000);
  a.AddPhase(Phase::kSinkWrite, 500);
  a.AddTablePackage(0, 10, 100);
  a.AddTablePackage(1, 5, 50);
  a.AddTrace("package", 0, 0, 10, 20);
  a.AddTrace("package", 1, 0, 5, 20);
  a.AddTrace("package", 0, 1, 30, 20);  // over capacity -> shed
  a.set_active_nanos(2000);

  WorkerMetrics b(2, 0);
  b.AddPhase(Phase::kRowGeneration, 3000);
  b.AddTablePackage(0, 20, 200);
  b.AddTrace("package", 0, 2, 0, 1);  // capacity 0 -> ignored

  MetricsReport report;
  report.MergeWorker(a);
  report.MergeWorker(b);
  report.wall_seconds = 1.0;
  report.rows = 35;
  report.Finalize();

  EXPECT_EQ(report.worker_count, 2);
  EXPECT_DOUBLE_EQ(
      report.phase_seconds[static_cast<int>(Phase::kRowGeneration)], 4e-6);
  ASSERT_EQ(report.tables.size(), 2u);
  EXPECT_EQ(report.tables[0].rows, 30u);
  EXPECT_EQ(report.tables[1].rows, 5u);
  EXPECT_EQ(report.workers[0].rows, 15u);
  EXPECT_EQ(report.workers[1].rows, 20u);
  ASSERT_EQ(report.trace.size(), 2u);
  EXPECT_EQ(report.dropped_trace_events, 1u);
  // Sorted by start time: the table-1 event (start 5) first.
  EXPECT_EQ(report.trace[0].table_index, 1);
  EXPECT_EQ(report.trace[0].worker, 0);
  EXPECT_EQ(report.rows_per_second, 35.0);
  EXPECT_STREQ(PhaseName(Phase::kSinkWait), "sink_wait");
}

TEST(MetricsTest, MetricsRunStaysDeterministic) {
  // Instrumentation must not perturb generated bytes: digests with and
  // without metrics agree.
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions plain;
  plain.worker_count = 2;
  plain.compute_digests = true;
  auto without = GenerateToNull(**session, formatter, plain);
  ASSERT_TRUE(without.ok());
  GenerationOptions metered = plain;
  metered.metrics_enabled = true;
  metered.trace_events = true;
  auto with = GenerateToNull(**session, formatter, metered);
  ASSERT_TRUE(with.ok());
  ASSERT_EQ(without->table_digests.size(), with->table_digests.size());
  for (size_t t = 0; t < without->table_digests.size(); ++t) {
    EXPECT_TRUE(without->table_digests[t] == with->table_digests[t]);
  }
}

}  // namespace
}  // namespace pdgf
