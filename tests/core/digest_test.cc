#include "util/hash.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/value.h"
#include "core/engine.h"
#include "core/generators/generators.h"

namespace pdgf {
namespace {

std::vector<Value> MakeValues(int64_t a, const std::string& b) {
  std::vector<Value> values;
  values.push_back(Value::Int(a));
  values.push_back(Value::String(b));
  return values;
}

TableDigest DigestOf(const std::vector<uint64_t>& rows) {
  TableDigest digest;
  for (uint64_t r : rows) {
    digest.AddRow(r, "row-" + std::to_string(r),
                  MakeValues(static_cast<int64_t>(r), "payload"));
  }
  return digest;
}

// --- Algebra ----------------------------------------------------------

TEST(TableDigestTest, EmptyDigestIsMergeIdentity) {
  TableDigest digest = DigestOf({0, 1, 2, 3});
  TableDigest empty;

  TableDigest left = digest;
  left.Merge(empty);
  EXPECT_TRUE(left == digest);
  EXPECT_EQ(left.Hex(), digest.Hex());

  TableDigest right = empty;
  right.Merge(digest);
  EXPECT_TRUE(right == digest);
  EXPECT_EQ(right.rows(), digest.rows());
  EXPECT_EQ(right.bytes(), digest.bytes());
}

TEST(TableDigestTest, MergeIsCommutative) {
  TableDigest a = DigestOf({0, 1, 2});
  TableDigest b = DigestOf({3, 4});

  TableDigest ab = a;
  ab.Merge(b);
  TableDigest ba = b;
  ba.Merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.Hex(), ba.Hex());
}

TEST(TableDigestTest, MergeIsAssociative) {
  TableDigest a = DigestOf({0, 1});
  TableDigest b = DigestOf({2});
  TableDigest c = DigestOf({3, 4, 5});

  TableDigest ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);

  TableDigest bc = b;
  bc.Merge(c);
  TableDigest a_bc = a;
  a_bc.Merge(bc);

  EXPECT_TRUE(ab_c == a_bc);
  EXPECT_EQ(ab_c.Hex(), a_bc.Hex());
}

TEST(TableDigestTest, MergedPartitionsEqualSequentialWhole) {
  // However the row range is split into partitions, the merged digest
  // must equal the digest of the whole range added in order. This is the
  // property the engine relies on to make per-worker partials safe.
  TableDigest whole = DigestOf({0, 1, 2, 3, 4, 5, 6, 7});

  TableDigest even = DigestOf({0, 2, 4, 6});
  TableDigest odd = DigestOf({7, 5, 3, 1});  // also out of order
  even.Merge(odd);
  EXPECT_TRUE(even == whole);

  TableDigest head = DigestOf({0, 1, 2});
  TableDigest mid = DigestOf({3});
  TableDigest tail = DigestOf({4, 5, 6, 7});
  tail.Merge(head);
  tail.Merge(mid);
  EXPECT_TRUE(tail == whole);
}

// --- Sensitivity ------------------------------------------------------

TEST(TableDigestTest, SingleFlippedByteChangesDigest) {
  TableDigest a;
  a.AddRow(7, "hello world", MakeValues(7, "x"));
  TableDigest b;
  b.AddRow(7, "hello worle", MakeValues(7, "x"));  // one byte differs
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Hex(), b.Hex());
}

TEST(TableDigestTest, RowIndexIsPartOfTheHash) {
  // Same bytes attributed to a different global row index must diverge —
  // this is what catches row-swap / off-by-one partitioning bugs that an
  // order-insensitive sum of plain row hashes would miss.
  TableDigest a;
  a.AddRow(1, "same bytes", MakeValues(1, "x"));
  TableDigest b;
  b.AddRow(2, "same bytes", MakeValues(1, "x"));
  EXPECT_FALSE(a == b);
}

TEST(TableDigestTest, SwappedRowContentsDiverge) {
  TableDigest a;
  a.AddRow(0, "first", MakeValues(0, "first"));
  a.AddRow(1, "second", MakeValues(1, "second"));
  TableDigest b;
  b.AddRow(0, "second", MakeValues(1, "second"));
  b.AddRow(1, "first", MakeValues(0, "first"));
  EXPECT_FALSE(a == b);
}

TEST(TableDigestTest, ColumnChecksumsDetectColumnLevelDrift) {
  TableDigest a;
  a.AddRow(0, "r", MakeValues(10, "x"));
  TableDigest b;
  b.AddRow(0, "r", MakeValues(11, "x"));
  ASSERT_EQ(a.column_checksums().size(), 2u);
  EXPECT_NE(a.column_checksums()[0], b.column_checksums()[0]);
  EXPECT_EQ(a.column_checksums()[1], b.column_checksums()[1]);
}

TEST(TableDigestTest, ExtraRowChangesDigestAndCounts) {
  TableDigest a = DigestOf({0, 1, 2});
  TableDigest b = DigestOf({0, 1, 2, 3});
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.rows() + 1, b.rows());
}

TEST(Digest128Test, HexRoundTrips) {
  Digest128 digest{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  auto parsed = Digest128::FromHex(digest.Hex());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == digest);
  EXPECT_FALSE(Digest128::FromHex("not hex").ok());
  EXPECT_FALSE(Digest128::FromHex("abcd").ok());  // wrong length
}

TEST(ByteStreamHashTest, ChunkingInvariant) {
  const std::string data =
      "a moderately long byte stream that is split at awkward offsets";
  ByteStreamHash whole;
  whole.Update(data);
  for (size_t split = 1; split < data.size(); split += 7) {
    ByteStreamHash parts;
    parts.Update(std::string_view(data).substr(0, split));
    parts.Update(std::string_view(data).substr(split));
    EXPECT_TRUE(parts.Finish() == whole.Finish()) << "split=" << split;
  }
  ByteStreamHash other;
  other.Update(data.substr(0, data.size() - 1));
  EXPECT_FALSE(other.Finish() == whole.Finish());
}

// --- Engine parity ----------------------------------------------------

// A multi-table model with computed references: "orders" rows reference
// "customer" primary keys through a skewed reference generator, which is
// exactly the kind of cross-table dependency where scheduling bugs would
// surface as digest divergence.
SchemaDef MakeReferenceSchema() {
  SchemaDef schema;
  schema.name = "digest_parity";
  schema.seed = 77;

  TableDef customer;
  customer.name = "customer";
  customer.size_expression = "500";
  FieldDef customer_id;
  customer_id.name = "c_id";
  customer_id.type = DataType::kBigInt;
  customer_id.generator = GeneratorPtr(new IdGenerator(1, 1));
  customer.fields.push_back(std::move(customer_id));
  FieldDef customer_name;
  customer_name.name = "c_name";
  customer_name.type = DataType::kVarchar;
  customer_name.generator = GeneratorPtr(new RandomStringGenerator(6, 14));
  customer.fields.push_back(std::move(customer_name));
  schema.tables.push_back(std::move(customer));

  TableDef orders;
  orders.name = "orders";
  orders.size_expression = "2000";
  FieldDef order_id;
  order_id.name = "o_id";
  order_id.type = DataType::kBigInt;
  order_id.generator = GeneratorPtr(new IdGenerator(1, 1));
  orders.fields.push_back(std::move(order_id));
  FieldDef order_customer;
  order_customer.name = "o_c_id";
  order_customer.type = DataType::kBigInt;
  order_customer.generator = GeneratorPtr(new DefaultReferenceGenerator(
      "customer", "c_id", DefaultReferenceGenerator::Distribution::kZipf,
      0.7));
  orders.fields.push_back(std::move(order_customer));
  FieldDef order_total;
  order_total.name = "o_total";
  order_total.type = DataType::kBigInt;
  order_total.generator = GeneratorPtr(new LongGenerator(1, 100000));
  orders.fields.push_back(std::move(order_total));
  schema.tables.push_back(std::move(orders));
  return schema;
}

std::vector<TableDigest> DigestsFor(const GenerationSession& session,
                                    int workers, uint64_t package_rows,
                                    bool sorted) {
  CsvFormatter formatter;
  GenerationOptions options;
  options.worker_count = workers;
  options.work_package_rows = package_rows;
  options.sorted_output = sorted;
  options.compute_digests = true;
  auto stats = GenerateToNull(session, formatter, options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats->table_digests;
}

TEST(EngineDigestParityTest, DigestsIndependentOfWorkerCount) {
  SchemaDef schema = MakeReferenceSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());

  auto reference = DigestsFor(**session, 1, 1000000, true);
  ASSERT_EQ(reference.size(), 2u);
  EXPECT_EQ(reference[0].rows(), 500u);
  EXPECT_EQ(reference[1].rows(), 2000u);

  for (int workers : {1, 2, 3, 8}) {
    for (uint64_t package_rows : {9ULL, 128ULL, 997ULL}) {
      for (bool sorted : {true, false}) {
        auto digests =
            DigestsFor(**session, workers, package_rows, sorted);
        ASSERT_EQ(digests.size(), reference.size());
        for (size_t t = 0; t < digests.size(); ++t) {
          EXPECT_TRUE(digests[t] == reference[t])
              << "workers=" << workers << " pkg=" << package_rows
              << " sorted=" << sorted << " table=" << t << ": "
              << digests[t].Hex() << " vs " << reference[t].Hex();
        }
      }
    }
  }
}

TEST(EngineDigestParityTest, DifferentSeedsProduceDifferentDigests) {
  SchemaDef schema = MakeReferenceSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  auto reference = DigestsFor(**session, 2, 128, true);

  SchemaDef perturbed = MakeReferenceSchema();
  perturbed.seed ^= 1;
  auto perturbed_session = GenerationSession::Create(&perturbed);
  ASSERT_TRUE(perturbed_session.ok());
  auto digests = DigestsFor(**perturbed_session, 2, 128, true);
  EXPECT_FALSE(digests[0] == reference[0]);
  EXPECT_FALSE(digests[1] == reference[1]);
}

TEST(EngineDigestParityTest, DisabledByDefaultLeavesStatsEmpty) {
  SchemaDef schema = MakeReferenceSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  auto stats = GenerateToNull(**session, formatter, GenerationOptions{});
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->table_digests.empty());
}

}  // namespace
}  // namespace pdgf
