#include "core/text/dictionary.h"

#include <map>

#include <gtest/gtest.h>

#include "core/text/builtin_dictionaries.h"
#include "util/files.h"

namespace pdgf {
namespace {

Dictionary MakeWeighted() {
  Dictionary dictionary;
  dictionary.Add("common", 8.0);
  dictionary.Add("medium", 2.0);
  dictionary.Add("rare", 0.5);
  dictionary.Finalize();
  return dictionary;
}

TEST(DictionaryTest, BasicAccessors) {
  Dictionary dictionary = MakeWeighted();
  EXPECT_EQ(dictionary.size(), 3u);
  EXPECT_EQ(dictionary.value(0), "common");
  EXPECT_DOUBLE_EQ(dictionary.weight(2), 0.5);
  EXPECT_DOUBLE_EQ(dictionary.total_weight(), 10.5);
  EXPECT_EQ(dictionary.Find("rare"), 2);
  EXPECT_EQ(dictionary.Find("absent"), -1);
}

TEST(DictionaryTest, WeightedSamplingMatchesWeights) {
  Dictionary dictionary = MakeWeighted();
  Xorshift64 rng(9);
  std::map<std::string, int> counts;
  const int draws = 21000;
  for (int i = 0; i < draws; ++i) {
    ++counts[dictionary.Sample(&rng)];
  }
  // Expected fractions: 8/10.5, 2/10.5, 0.5/10.5.
  EXPECT_NEAR(counts["common"] / static_cast<double>(draws), 8 / 10.5, 0.02);
  EXPECT_NEAR(counts["medium"] / static_cast<double>(draws), 2 / 10.5, 0.02);
  EXPECT_NEAR(counts["rare"] / static_cast<double>(draws), 0.5 / 10.5, 0.01);
}

TEST(DictionaryTest, AliasSamplingMatchesCumulative) {
  // Both backends must realize the same distribution.
  Dictionary dictionary = MakeWeighted();
  Xorshift64 rng(10);
  std::map<std::string, int> counts;
  const int draws = 21000;
  for (int i = 0; i < draws; ++i) {
    ++counts[dictionary.SampleAlias(&rng)];
  }
  EXPECT_NEAR(counts["common"] / static_cast<double>(draws), 8 / 10.5, 0.02);
  EXPECT_NEAR(counts["rare"] / static_cast<double>(draws), 0.5 / 10.5, 0.01);
}

TEST(DictionaryTest, UniformSamplingIgnoresWeights) {
  Dictionary dictionary = MakeWeighted();
  Xorshift64 rng(11);
  std::map<std::string, int> counts;
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) {
    ++counts[dictionary.SampleUniform(&rng)];
  }
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(draws), 1.0 / 3, 0.02) << value;
  }
}

TEST(DictionaryTest, FromTextParsesWeightsAndComments) {
  auto dictionary = Dictionary::FromText(
      "# a comment\n"
      "alpha\t3\n"
      "beta\n"
      "\n"
      "gamma\t0.5\n");
  ASSERT_TRUE(dictionary.ok()) << dictionary.status().ToString();
  EXPECT_EQ(dictionary->size(), 3u);
  EXPECT_DOUBLE_EQ(dictionary->weight(0), 3.0);
  EXPECT_DOUBLE_EQ(dictionary->weight(1), 1.0);
  EXPECT_DOUBLE_EQ(dictionary->weight(2), 0.5);
}

TEST(DictionaryTest, FromTextRejectsBadWeight) {
  EXPECT_FALSE(Dictionary::FromText("value\tnotanumber\n").ok());
  EXPECT_FALSE(Dictionary::FromText("value\t-1\n").ok());
}

TEST(DictionaryTest, FileRoundTrip) {
  auto dir = MakeTempDir("pdgf_dict_");
  ASSERT_TRUE(dir.ok());
  std::string path = JoinPath(*dir, "test.dict");
  Dictionary original = MakeWeighted();
  ASSERT_TRUE(original.SaveToFile(path).ok());
  auto loaded = Dictionary::FromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->value(i), original.value(i));
    EXPECT_DOUBLE_EQ(loaded->weight(i), original.weight(i));
  }
}

TEST(DictionaryTest, UniformFileOmitsWeights) {
  auto dir = MakeTempDir("pdgf_dict_u_");
  ASSERT_TRUE(dir.ok());
  Dictionary dictionary;
  dictionary.Add("a");
  dictionary.Add("b");
  dictionary.Finalize();
  std::string path = JoinPath(*dir, "uniform.dict");
  ASSERT_TRUE(dictionary.SaveToFile(path).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "a\nb\n");
}

TEST(BuiltinDictionariesTest, KnownNamesResolve) {
  for (const char* name :
       {"first_names", "last_names", "cities", "streets", "countries",
        "nations", "regions", "states", "colors", "ship_modes",
        "market_segments", "order_priorities", "email_domains"}) {
    const Dictionary* dictionary = FindBuiltinDictionary(name);
    ASSERT_NE(dictionary, nullptr) << name;
    EXPECT_GT(dictionary->size(), 0u) << name;
  }
  EXPECT_EQ(FindBuiltinDictionary("no_such_dictionary"), nullptr);
}

TEST(BuiltinDictionariesTest, TpchDictionariesHaveSpecCardinalities) {
  EXPECT_EQ(FindBuiltinDictionary("nations")->size(), 25u);
  EXPECT_EQ(FindBuiltinDictionary("regions")->size(), 5u);
  EXPECT_EQ(FindBuiltinDictionary("market_segments")->size(), 5u);
  EXPECT_EQ(FindBuiltinDictionary("ship_modes")->size(), 7u);
  EXPECT_EQ(FindBuiltinDictionary("order_priorities")->size(), 5u);
  EXPECT_EQ(FindBuiltinDictionary("states")->size(), 50u);
}

TEST(BuiltinDictionariesTest, NamesListIsSortedAndComplete) {
  auto names = BuiltinDictionaryNames();
  EXPECT_GE(names.size(), 20u);
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
  for (const std::string& name : names) {
    EXPECT_NE(FindBuiltinDictionary(name), nullptr) << name;
  }
}

TEST(BuiltinDictionariesTest, CorpusIsSentenceStructured) {
  std::string_view corpus = BuiltinCommentCorpus();
  EXPECT_GT(corpus.size(), 1000u);
  EXPECT_NE(corpus.find(". "), std::string_view::npos);
}

}  // namespace
}  // namespace pdgf
