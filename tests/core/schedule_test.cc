#include "core/schedule.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/generators/generators.h"
#include "core/output/formatter.h"
#include "core/output/sink.h"
#include "core/session.h"

namespace pdgf {
namespace {

// ---------------------------------------------------------------------
// BuildWorkPackages

TEST(SchedulePackagesTest, TableMajorWithPerTableSequences) {
  std::vector<WorkPackage> packages =
      BuildWorkPackages({10, 0, 7}, 4, /*node_count=*/1, /*node_id=*/0);
  // Table 0: [0,4) [4,8) [8,10); table 1 empty; table 2: [0,4) [4,7).
  ASSERT_EQ(packages.size(), 5u);
  EXPECT_EQ(packages[0].table_index, 0);
  EXPECT_EQ(packages[0].begin_row, 0u);
  EXPECT_EQ(packages[0].end_row, 4u);
  EXPECT_EQ(packages[0].sequence, 0u);
  EXPECT_EQ(packages[2].end_row, 10u);
  EXPECT_EQ(packages[2].sequence, 2u);
  EXPECT_EQ(packages[3].table_index, 2);
  EXPECT_EQ(packages[3].sequence, 0u);  // sequences restart per table
  EXPECT_EQ(packages[4].end_row, 7u);
}

TEST(SchedulePackagesTest, NodeSharesPartitionRows) {
  // Across all node ids the packages must cover each table's rows
  // exactly once, in contiguous non-overlapping shares.
  const std::vector<uint64_t> rows = {101, 13};
  const int nodes = 4;
  std::vector<uint64_t> covered(rows.size(), 0);
  for (int node = 0; node < nodes; ++node) {
    for (const WorkPackage& p : BuildWorkPackages(rows, 7, nodes, node)) {
      ASSERT_LT(p.begin_row, p.end_row);
      covered[static_cast<size_t>(p.table_index)] +=
          p.end_row - p.begin_row;
    }
  }
  EXPECT_EQ(covered[0], rows[0]);
  EXPECT_EQ(covered[1], rows[1]);
}

// ---------------------------------------------------------------------
// SchedulerKind parsing

TEST(SchedulerKindTest, ParsesStableNamesAndRoundTrips) {
  auto atomic = ParseSchedulerKind("atomic");
  ASSERT_TRUE(atomic.ok());
  EXPECT_EQ(*atomic, SchedulerKind::kAtomic);
  auto striped = ParseSchedulerKind("striped");
  ASSERT_TRUE(striped.ok());
  EXPECT_EQ(*striped, SchedulerKind::kStriped);
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kAtomic), "atomic");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kStriped), "striped");
}

TEST(SchedulerKindTest, RejectsUnknownNameWithActionableError) {
  auto parsed = ParseSchedulerKind("lifo");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("lifo"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("atomic"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("striped"), std::string::npos);
}

// ---------------------------------------------------------------------
// Exactly-once dispatch

// Drains `scheduler` from `worker_count` threads, each looping Next()
// until it returns false, and records every claimed index.
std::vector<size_t> DrainConcurrently(Scheduler* scheduler,
                                      int worker_count) {
  std::vector<std::vector<size_t>> per_worker(
      static_cast<size_t>(worker_count));
  std::vector<std::thread> threads;
  for (int w = 0; w < worker_count; ++w) {
    threads.emplace_back([scheduler, w, &per_worker] {
      size_t index = 0;
      while (scheduler->Next(w, &index)) {
        per_worker[static_cast<size_t>(w)].push_back(index);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<size_t> all;
  for (const auto& claimed : per_worker) {
    all.insert(all.end(), claimed.begin(), claimed.end());
  }
  return all;
}

void ExpectExactlyOnce(std::vector<size_t> claimed, size_t package_count) {
  ASSERT_EQ(claimed.size(), package_count);
  std::sort(claimed.begin(), claimed.end());
  for (size_t i = 0; i < claimed.size(); ++i) {
    ASSERT_EQ(claimed[i], i) << "index claimed twice or skipped";
  }
}

TEST(SchedulerTest, AtomicSingleWorkerCoversAllInOrder) {
  auto scheduler = MakeScheduler(SchedulerKind::kAtomic, 17, 1);
  size_t index = 0;
  for (size_t expected = 0; expected < 17; ++expected) {
    ASSERT_TRUE(scheduler->Next(0, &index));
    EXPECT_EQ(index, expected);
  }
  EXPECT_FALSE(scheduler->Next(0, &index));
  EXPECT_FALSE(scheduler->Next(0, &index));  // stays exhausted
}

TEST(SchedulerTest, StripedSingleWorkerCoversAll) {
  // One worker must still drain every stripe (its own, then steals).
  auto scheduler = MakeScheduler(SchedulerKind::kStriped, 23, 4);
  size_t index = 0;
  std::vector<size_t> claimed;
  while (scheduler->Next(0, &index)) claimed.push_back(index);
  ExpectExactlyOnce(std::move(claimed), 23);
}

TEST(SchedulerTest, StripedClaimsArePrefixesOfStripes) {
  // The head-steal invariant: at any point the claimed set is a union of
  // stripe prefixes. With 2 workers over 4 stripes of 5, a worker's own
  // consecutive claims must be consecutive indices within one stripe.
  auto scheduler = MakeScheduler(SchedulerKind::kStriped, 20, 4);
  size_t index = 0;
  // Worker 2's home stripe is [10, 15).
  ASSERT_TRUE(scheduler->Next(2, &index));
  EXPECT_EQ(index, 10u);
  ASSERT_TRUE(scheduler->Next(2, &index));
  EXPECT_EQ(index, 11u);
  // Worker 0 claims from its own stripe head, untouched by worker 2.
  ASSERT_TRUE(scheduler->Next(0, &index));
  EXPECT_EQ(index, 0u);
}

TEST(SchedulerTest, BothKindsExactlyOnceUnderContention) {
  // Steal-race coverage: many threads drain a small package list, so
  // stripes exhaust quickly and stealing is the common path. Run under
  // TSan (tools/check.sh tier 3) this also proves data-race freedom.
  for (SchedulerKind kind :
       {SchedulerKind::kAtomic, SchedulerKind::kStriped}) {
    for (int workers : {1, 2, 7}) {
      for (size_t packages : {0u, 1u, 13u, 64u, 257u}) {
        auto scheduler = MakeScheduler(kind, packages, workers);
        ExpectExactlyOnce(DrainConcurrently(scheduler.get(), workers),
                          packages);
      }
    }
  }
}

TEST(SchedulerTest, MoreWorkersThanPackages) {
  // Stripe construction must tolerate empty stripes (workers > packages)
  // and worker ids beyond the stripe count.
  auto scheduler = MakeScheduler(SchedulerKind::kStriped, 3, 16);
  ExpectExactlyOnce(DrainConcurrently(scheduler.get(), 16), 3);
}

// ---------------------------------------------------------------------
// End-to-end parity: scheduler x writer-thread count

SchemaDef MakeParitySchema() {
  SchemaDef schema;
  schema.name = "sched_parity";
  schema.seed = 77;
  TableDef big;
  big.name = "big";
  big.size_expression = "900";
  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  big.fields.push_back(std::move(id));
  FieldDef payload;
  payload.name = "payload";
  payload.type = DataType::kVarchar;
  payload.generator = GeneratorPtr(new RandomStringGenerator(4, 18));
  big.fields.push_back(std::move(payload));
  schema.tables.push_back(std::move(big));
  TableDef small;
  small.name = "small";
  small.size_expression = "41";
  FieldDef value;
  value.name = "value";
  value.type = DataType::kBigInt;
  value.generator = GeneratorPtr(new LongGenerator(0, 999));
  small.fields.push_back(std::move(value));
  schema.tables.push_back(std::move(small));
  return schema;
}

class CaptureSink final : public Sink {
 public:
  explicit CaptureSink(std::string* out) : out_(out) {}
  Status Write(std::string_view data) override {
    out_->append(data);
    return Status::Ok();
  }

 private:
  std::string* out_;
};

std::map<std::string, std::string> RunToMemory(
    const GenerationSession& session, const RowFormatter& formatter,
    GenerationOptions options) {
  std::map<std::string, std::string> outputs;
  SinkFactory factory =
      [&outputs](const TableDef& table) -> StatusOr<std::unique_ptr<Sink>> {
    return std::unique_ptr<Sink>(new CaptureSink(&outputs[table.name]));
  };
  GenerationEngine engine(&session, &formatter, factory, options);
  Status status = engine.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  return outputs;
}

TEST(SchedulerEngineParityTest, SortedBytesIdenticalAcrossPipelines) {
  SchemaDef schema = MakeParitySchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  auto formatter = MakeFormatter("csv");
  ASSERT_TRUE(formatter.ok());

  GenerationOptions baseline_options;
  baseline_options.worker_count = 1;
  baseline_options.work_package_rows = 4096;
  baseline_options.writer_threads = 0;  // inline single-threaded reference
  auto baseline = RunToMemory(**session, **formatter, baseline_options);
  ASSERT_FALSE(baseline["big"].empty());

  for (SchedulerKind kind :
       {SchedulerKind::kAtomic, SchedulerKind::kStriped}) {
    for (int writer_threads : {0, 1, 3}) {
      for (uint64_t package_rows : {97u, 512u}) {
        GenerationOptions options;
        options.worker_count = 4;
        options.work_package_rows = package_rows;
        options.scheduler = kind;
        options.writer_threads = writer_threads;
        auto outputs = RunToMemory(**session, **formatter, options);
        EXPECT_EQ(outputs, baseline)
            << SchedulerKindName(kind) << " writers=" << writer_threads
            << " pkg=" << package_rows;
      }
    }
  }
}

TEST(SchedulerEngineParityTest, DigestsIdenticalUnsorted) {
  // Unsorted mode gives up byte order but never digest equality.
  SchemaDef schema = MakeParitySchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  auto formatter = MakeFormatter("csv");
  ASSERT_TRUE(formatter.ok());

  auto digests_of = [&](SchedulerKind kind, int writer_threads) {
    GenerationOptions options;
    options.worker_count = 4;
    options.work_package_rows = 61;
    options.sorted_output = false;
    options.scheduler = kind;
    options.writer_threads = writer_threads;
    options.compute_digests = true;
    auto stats = GenerateToNull(**session, **formatter, options);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    std::vector<std::string> hex;
    for (const TableDigest& digest : stats->table_digests) {
      hex.push_back(digest.Hex());
    }
    return hex;
  };

  std::vector<std::string> reference =
      digests_of(SchedulerKind::kAtomic, 0);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(digests_of(SchedulerKind::kStriped, 0), reference);
  EXPECT_EQ(digests_of(SchedulerKind::kAtomic, 2), reference);
  EXPECT_EQ(digests_of(SchedulerKind::kStriped, 2), reference);
}

}  // namespace
}  // namespace pdgf
