// SIMD/scalar parity suite (ISSUE 7 tentpole). The vectorized kernels —
// batched seed derivation, the xorshift64* first-draw step, the Lemire
// bounded map, the unit-double conversion, and the AVX2 text-formatting
// kernels — must be BIT-identical to the scalar definitions in
// util/rng.h and std::to_chars at every dispatch level, for every
// ragged length (batch_rows=1, non-lane-multiple tails) and for the
// degenerate no-draw ranges. These tests pin kernel-level, generator-
// level and whole-engine parity across levels, so a dispatch change can
// never change bytes or digests.
//
// Every suite name starts with "Simd" so the TSan tier regex in
// tools/check.sh picks the suite up, and the DBSYNTHPP_SIMD=off rerun
// in the same script exercises the scalar fallback of each kernel.

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"
#include "core/batch.h"
#include "core/engine.h"
#include "core/generators/generators.h"
#include "core/output/formatter.h"
#include "core/session.h"
#include "util/rng.h"
#include "util/simd_rng.h"
#include "workloads/imdb.h"

namespace pdgf {
namespace {

// Mix64(kMix64ZeroPreimage) == 0: the splitmix64 finalizer is a chain of
// bijections each of which maps 0 to 0, so the unique preimage of 0 is
// -golden mod 2^64. Reseeding from it hits the zero-state remap, the one
// branch in the reseed step a random corpus essentially never reaches.
constexpr uint64_t kMix64ZeroPreimage = 0x61c8864680b583ebULL;

constexpr uint64_t kSentinel = 0xdeadbeefdeadbeefULL;

// RAII: force a dispatch level for one scope, restore on exit so test
// order never leaks a forced level into later suites.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::SimdLevel level)
      : previous_(simd::SetSimdLevelForTesting(level)) {}
  ~ScopedSimdLevel() { simd::SetSimdLevelForTesting(previous_); }

  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  simd::SimdLevel previous_;
};

std::vector<simd::SimdLevel> SupportedLevels() {
  std::vector<simd::SimdLevel> levels{simd::SimdLevel::kScalar};
  for (simd::SimdLevel level :
       {simd::SimdLevel::kAvx2, simd::SimdLevel::kNeon}) {
    if (simd::SimdLevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

// Adversarial seed/key corpus: edge words, the Mix64 zero preimage, and
// a pseudo-random fill. 21 entries — enough for every ragged tail shape
// against 4-wide (AVX2) and 2-wide (NEON) lanes.
std::vector<uint64_t> SeedCorpus() {
  std::vector<uint64_t> corpus = {0,
                                  1,
                                  2,
                                  kMix64ZeroPreimage,
                                  0x9e3779b97f4a7c15ULL,
                                  ~0ULL,
                                  1ULL << 63,
                                  (1ULL << 63) - 1};
  Xorshift64 rng(424242);
  while (corpus.size() < 21) corpus.push_back(rng.Next());
  return corpus;
}

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

TEST(SimdKernelTest, DeriveSeedBatchMatchesScalar) {
  const std::vector<uint64_t> keys = SeedCorpus();
  for (uint64_t parent : {0ULL, 77ULL, 0xabcdef0123456789ULL}) {
    for (simd::SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel scoped(level);
      for (size_t n = 0; n <= keys.size(); ++n) {
        std::vector<uint64_t> out(n + 1, kSentinel);
        simd::DeriveSeedBatch(parent, keys.data(), n, out.data());
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(out[i], DeriveSeed(parent, keys[i]))
              << "level=" << static_cast<int>(level) << " n=" << n
              << " i=" << i;
        }
        EXPECT_EQ(out[n], kSentinel) << "kernel wrote past n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, FirstDrawBatchMatchesScalar) {
  const std::vector<uint64_t> seeds = SeedCorpus();
  for (simd::SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    for (size_t n = 0; n <= seeds.size(); ++n) {
      std::vector<uint64_t> draws(n + 1, kSentinel);
      simd::FirstDrawBatch(seeds.data(), n, draws.data());
      for (size_t i = 0; i < n; ++i) {
        Xorshift64 rng(seeds[i]);
        EXPECT_EQ(draws[i], rng.Next())
            << "level=" << static_cast<int>(level) << " n=" << n
            << " seed=" << seeds[i];
      }
      EXPECT_EQ(draws[n], kSentinel);
    }
  }
}

TEST(SimdKernelTest, DrawPairBatchMatchesScalar) {
  const std::vector<uint64_t> seeds = SeedCorpus();
  for (simd::SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    for (size_t n = 0; n <= seeds.size(); ++n) {
      std::vector<uint64_t> first(n + 1, kSentinel);
      std::vector<uint64_t> second(n + 1, kSentinel);
      simd::DrawPairBatch(seeds.data(), n, first.data(), second.data());
      for (size_t i = 0; i < n; ++i) {
        Xorshift64 rng(seeds[i]);
        EXPECT_EQ(first[i], rng.Next());
        EXPECT_EQ(second[i], rng.Next());
      }
      EXPECT_EQ(first[n], kSentinel);
      EXPECT_EQ(second[n], kSentinel);
    }
  }
}

TEST(SimdKernelTest, BoundedFromDrawsMatchesScalar) {
  const std::vector<uint64_t> draws = SeedCorpus();
  const uint64_t bounds[] = {1,       2,          3,
                             50,      1000,       (1ULL << 31) + 1,
                             1ULL << 53, ~0ULL};
  for (uint64_t bound : bounds) {
    for (simd::SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel scoped(level);
      for (size_t n = 0; n <= draws.size(); ++n) {
        std::vector<uint64_t> out(n + 1, kSentinel);
        simd::BoundedFromDraws(draws.data(), bound, n, out.data());
        for (size_t i = 0; i < n; ++i) {
          unsigned __int128 product =
              static_cast<unsigned __int128>(draws[i]) * bound;
          EXPECT_EQ(out[i], static_cast<uint64_t>(product >> 64))
              << "level=" << static_cast<int>(level) << " bound=" << bound;
        }
        EXPECT_EQ(out[n], kSentinel);
      }
    }
  }
}

TEST(SimdKernelTest, UnitDoubleFromDrawsMatchesScalarBitExact) {
  const std::vector<uint64_t> draws = SeedCorpus();
  for (simd::SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    for (size_t n = 0; n <= draws.size(); ++n) {
      std::vector<double> out(n + 1, -1.0);
      simd::UnitDoubleFromDraws(draws.data(), n, out.data());
      for (size_t i = 0; i < n; ++i) {
        const double expected =
            static_cast<double>(draws[i] >> 11) * 0x1.0p-53;
        EXPECT_EQ(Bits(out[i]), Bits(expected))
            << "level=" << static_cast<int>(level) << " draw=" << draws[i];
      }
      EXPECT_EQ(out[n], -1.0);
    }
  }
}

TEST(SimdKernelTest, FirstDrawHitsZeroStateRemap) {
  // The corpus covers it, but pin the remap explicitly: reseeding from
  // the Mix64 zero preimage must produce the same stream as the scalar
  // class, whose state was remapped to the golden-ratio constant.
  Xorshift64 remapped(kMix64ZeroPreimage);
  for (simd::SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    uint64_t seed = kMix64ZeroPreimage;
    uint64_t draw = kSentinel;
    simd::FirstDrawBatch(&seed, 1, &draw);
    Xorshift64 reference(kMix64ZeroPreimage);
    EXPECT_EQ(draw, reference.Next())
        << "level=" << static_cast<int>(level);
  }
  EXPECT_NE(remapped.state(), 0u);
}

// ---------------------------------------------------------------------
// Formatting kernels.

TEST(SimdFormatTest, Uint64TextMatchesToChars) {
  std::vector<uint64_t> corpus = {0, 1, 5, 9, ~0ULL, ~0ULL - 1};
  uint64_t pow10 = 1;
  for (int k = 1; k <= 19; ++k) {
    pow10 *= 10;
    corpus.push_back(pow10 - 1);
    corpus.push_back(pow10);
    corpus.push_back(pow10 + 1);
  }
  Xorshift64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    // Spread draws across all magnitudes, not just 20-digit values.
    corpus.push_back(rng.Next() >> (rng.Next() % 64));
  }
  for (simd::SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    for (uint64_t v : corpus) {
      char expected[24];
      auto res = std::to_chars(expected, expected + sizeof(expected), v);
      char got[24];
      size_t len = simd::FormatUint64Text(v, got);
      ASSERT_EQ(len, static_cast<size_t>(res.ptr - expected))
          << "level=" << static_cast<int>(level) << " v=" << v;
      EXPECT_EQ(std::string_view(got, len),
                std::string_view(expected, len))
          << "level=" << static_cast<int>(level) << " v=" << v;
    }
  }
}

TEST(SimdFormatTest, Int64TextMatchesToChars) {
  std::vector<int64_t> corpus = {0,
                                 1,
                                 -1,
                                 INT64_MAX,
                                 INT64_MIN,
                                 INT64_MIN + 1,
                                 INT64_MAX - 1};
  int64_t pow10 = 1;
  for (int k = 1; k <= 18; ++k) {
    pow10 *= 10;
    for (int64_t delta : {-1, 0, 1}) {
      corpus.push_back(pow10 + delta);
      corpus.push_back(-(pow10 + delta));
    }
  }
  Xorshift64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    corpus.push_back(static_cast<int64_t>(rng.Next() >> (rng.Next() % 64)) *
                     ((i & 1) ? -1 : 1));
  }
  for (simd::SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    for (int64_t v : corpus) {
      char expected[24];
      auto res = std::to_chars(expected, expected + sizeof(expected), v);
      char got[24];
      size_t len = simd::FormatInt64Text(v, got);
      ASSERT_EQ(len, static_cast<size_t>(res.ptr - expected)) << "v=" << v;
      EXPECT_EQ(std::string_view(got, len),
                std::string_view(expected, len))
          << "level=" << static_cast<int>(level) << " v=" << v;
    }
  }
}

TEST(SimdFormatTest, IsoDateTextMatchesPrintf) {
  const int years[] = {0, 1, 9, 99, 100, 999, 1000, 1992, 2026, 9998, 9999};
  const int months[] = {0, 1, 2, 9, 10, 12, 31, 99};
  const int days[] = {0, 1, 9, 10, 28, 30, 31, 99};
  for (simd::SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    for (int y : years) {
      for (int m : months) {
        for (int d : days) {
          char got[16];
          std::memset(got, 0x7f, sizeof(got));
          size_t len = simd::FormatIsoDateText(y, m, d, got);
          if (len == 0) continue;  // fallback path; caller formats itself
          ASSERT_EQ(len, 10u);
          char expected[16];
          std::snprintf(expected, sizeof(expected), "%04d-%02d-%02d", y, m,
                        d);
          EXPECT_EQ(std::string_view(got, 10), std::string_view(expected))
              << "level=" << static_cast<int>(level) << " " << y << "-" << m
              << "-" << d;
          EXPECT_EQ(got[10], 0x7f) << "kernel wrote past 10 bytes";
        }
      }
    }
    // Outside the window the kernel must decline, never truncate.
    char out[16];
    EXPECT_EQ(simd::FormatIsoDateText(-1, 1, 1, out), 0u);
    EXPECT_EQ(simd::FormatIsoDateText(10000, 1, 1, out), 0u);
    EXPECT_EQ(simd::FormatIsoDateText(1992, 100, 1, out), 0u);
    EXPECT_EQ(simd::FormatIsoDateText(1992, 1, -2, out), 0u);
  }
}

TEST(SimdFormatTest, DispatchControls) {
  // Forcing an unsupported level must degrade to scalar, and the
  // reported dispatch name must track the active level.
  ScopedSimdLevel restore(simd::ActiveSimdLevel());
  simd::SetSimdLevelForTesting(simd::SimdLevel::kScalar);
  EXPECT_EQ(std::string(simd::SimdDispatchName()), "scalar");
#if defined(__x86_64__) || defined(_M_X64)
  simd::SetSimdLevelForTesting(simd::SimdLevel::kNeon);
  EXPECT_EQ(simd::ActiveSimdLevel(), simd::SimdLevel::kScalar);
  if (simd::SimdLevelSupported(simd::SimdLevel::kAvx2)) {
    simd::SetSimdLevelForTesting(simd::SimdLevel::kAvx2);
    EXPECT_EQ(std::string(simd::SimdDispatchName()), "avx2");
  }
#endif
}

// ---------------------------------------------------------------------
// Generator- and engine-level parity across dispatch levels.

// Every vectorized generator, plus the degenerate ranges that must not
// consume a draw: a single-value long range, the full int64 range (span
// wraps to 0), and a one-day date window. 523 rows keeps every batch
// size ragged.
SchemaDef MakeSimdSchema() {
  SchemaDef schema;
  schema.name = "simd_parity";
  schema.seed = 99;

  TableDef table;
  table.name = "t";
  table.size_expression = "523";

  auto add = [&table](const char* name, DataType type, Generator* g) {
    FieldDef field;
    field.name = name;
    field.type = type;
    field.generator = GeneratorPtr(g);
    table.fields.push_back(std::move(field));
  };

  add("quantity", DataType::kBigInt, new LongGenerator(1, 50));
  add("negative", DataType::kBigInt, new LongGenerator(-1000, -17));
  add("single", DataType::kBigInt, new LongGenerator(5, 5));
  add("fullrange", DataType::kBigInt,
      new LongGenerator(INT64_MIN, INT64_MAX));
  add("ratio", DataType::kDouble, new DoubleGenerator(0.0, 1.0, -1));
  add("price", DataType::kDecimal, new DoubleGenerator(0.5, 999.75, 2));
  add("shipped", DataType::kDate,
      new DateGenerator(Date::FromCivil(1992, 1, 1),
                        Date::FromCivil(1998, 12, 31)));
  add("fixed_day", DataType::kDate,
      new DateGenerator(Date::FromCivil(2000, 2, 29),
                        Date::FromCivil(2000, 2, 29)));
  add("styled", DataType::kVarchar,
      new DateGenerator(Date::FromCivil(1995, 6, 1),
                        Date::FromCivil(1995, 6, 30), "%d/%m/%Y"));
  add("bucketed", DataType::kBigInt,
      new HistogramGenerator(0.0, 1000.0, {1, 5, 2, 8, 4},
                             HistogramGenerator::Output::kLong));
  add("histo_dec", DataType::kDecimal,
      new HistogramGenerator(-10.0, 10.0, {3, 1, 4, 1, 5, 9},
                             HistogramGenerator::Output::kDecimal, 3));

  schema.tables.push_back(std::move(table));
  return schema;
}

SchemaDef MakeSimdUpdatableSchema() {
  SchemaDef schema;
  schema.name = "simd_updates";
  schema.seed = 31;

  TableDef table;
  table.name = "accounts";
  table.size_expression = "300";
  table.updates_expression = "5";
  table.update_fraction = 0.3;

  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  id.mutable_across_updates = false;
  table.fields.push_back(std::move(id));

  FieldDef balance;
  balance.name = "balance";
  balance.type = DataType::kBigInt;
  balance.generator = GeneratorPtr(new LongGenerator(0, 1 << 30));
  balance.mutable_across_updates = true;
  table.fields.push_back(std::move(balance));

  schema.tables.push_back(std::move(table));
  return schema;
}

// Renders the whole table through GenerateBatch + CsvFormatter at the
// given batch size under the active dispatch level.
std::string RenderTable(const GenerationSession& session, uint64_t update,
                        size_t batch_size) {
  const TableDef& table = session.schema().tables[0];
  const uint64_t table_rows = session.TableRows(0);
  CsvFormatter csv;
  RowBatch batch;
  std::vector<uint64_t> rows;
  std::vector<size_t> offsets;
  std::string out;
  for (uint64_t start = 0; start < table_rows;
       start += static_cast<uint64_t>(batch_size)) {
    uint64_t stop =
        std::min(table_rows, start + static_cast<uint64_t>(batch_size));
    rows.clear();
    for (uint64_t r = start; r < stop; ++r) {
      if (update > 0 && !session.RowChangesInUpdate(0, r, update)) continue;
      rows.push_back(r);
    }
    if (rows.empty()) continue;
    session.GenerateBatch(0, rows.data(), rows.size(), update, &batch);
    csv.AppendBatch(table, batch, &out, &offsets);
  }
  return out;
}

TEST(SimdPipelineTest, GeneratorBatchesIdenticalAcrossLevels) {
  SchemaDef schema = MakeSimdSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // Lane-width boundary sizes (4-wide AVX2, 2-wide NEON) plus the
  // singleton and ragged-prime shapes, plus the 256-row SIMD tile edge.
  for (size_t batch_size : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 255u, 256u, 257u,
                            523u}) {
    ScopedSimdLevel force_scalar(simd::SimdLevel::kScalar);
    const std::string scalar = RenderTable(**session, 0, batch_size);
    for (simd::SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel scoped(level);
      EXPECT_EQ(RenderTable(**session, 0, batch_size), scalar)
          << "level=" << static_cast<int>(level)
          << " batch_size=" << batch_size;
    }
  }
}

TEST(SimdPipelineTest, UpdateLevelsIdenticalAcrossLevels) {
  SchemaDef schema = MakeSimdUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const uint64_t updates = (*session)->TableUpdates(0);
  ASSERT_GE(updates, 2u);
  // Including the max update level: the varying-update seed path
  // bypasses the batched derivation, so parity here proves the split
  // between FillSeeds' fast and cold paths is taken consistently.
  for (uint64_t update = 0; update <= updates; ++update) {
    ScopedSimdLevel force_scalar(simd::SimdLevel::kScalar);
    const std::string scalar = RenderTable(**session, update, 7);
    for (simd::SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel scoped(level);
      EXPECT_EQ(RenderTable(**session, update, 7), scalar)
          << "level=" << static_cast<int>(level) << " update=" << update;
    }
  }
}

TEST(SimdPipelineTest, EngineDigestsIdenticalAcrossLevels) {
  SchemaDef schema = MakeSimdSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;

  auto run = [&]() {
    GenerationOptions options;
    options.worker_count = 2;
    options.work_package_rows = 100;
    options.batch_rows = 33;
    options.compute_digests = true;
    options.metrics_enabled = true;
    auto stats = GenerateToNull(**session, formatter, options);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return *stats;
  };

  ScopedSimdLevel force_scalar(simd::SimdLevel::kScalar);
  const GenerationEngine::Stats baseline = run();
  EXPECT_EQ(baseline.metrics.simd_dispatch, "scalar");
  for (simd::SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    GenerationEngine::Stats stats = run();
    EXPECT_EQ(stats.rows, baseline.rows);
    EXPECT_EQ(stats.bytes, baseline.bytes);
    EXPECT_EQ(stats.metrics.simd_dispatch, simd::SimdDispatchName());
    ASSERT_EQ(stats.table_digests.size(), baseline.table_digests.size());
    for (size_t t = 0; t < baseline.table_digests.size(); ++t) {
      EXPECT_EQ(stats.table_digests[t].Hex(),
                baseline.table_digests[t].Hex())
          << "level=" << static_cast<int>(level) << " table=" << t;
    }
  }
}

TEST(SimdPipelineTest, BundledModelDigestsIdenticalAcrossLevels) {
  // tpch at a tiny scale runs the reference/dictionary/expression
  // generators too — everything the golden digests cover — so equality
  // across levels extends the committed goldens to every dispatch mode.
  auto schema = workloads::BuildBundledModel("tpch");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  std::map<std::string, std::string> overrides{{"SF", "0.002"}};
  auto session = GenerationSession::Create(&*schema, overrides);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  CsvFormatter formatter;

  auto run = [&]() {
    GenerationOptions options;
    options.worker_count = 2;
    options.work_package_rows = 200;
    options.batch_rows = 113;
    options.compute_digests = true;
    auto stats = GenerateToNull(**session, formatter, options);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return *stats;
  };

  ScopedSimdLevel force_scalar(simd::SimdLevel::kScalar);
  const GenerationEngine::Stats baseline = run();
  for (simd::SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    GenerationEngine::Stats stats = run();
    ASSERT_EQ(stats.table_digests.size(), baseline.table_digests.size());
    for (size_t t = 0; t < baseline.table_digests.size(); ++t) {
      EXPECT_EQ(stats.table_digests[t].Hex(),
                baseline.table_digests[t].Hex())
          << "level=" << static_cast<int>(level) << " table=" << t;
    }
  }
}

}  // namespace
}  // namespace pdgf
