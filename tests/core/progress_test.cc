#include "core/progress.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pdgf {
namespace {

TEST(ProgressTest, EmptyTrackerIsComplete) {
  ProgressTracker tracker({}, {});
  auto snapshot = tracker.TakeSnapshot();
  EXPECT_EQ(snapshot.rows_done, 0u);
  EXPECT_DOUBLE_EQ(snapshot.fraction, 1.0);
}

TEST(ProgressTest, AccumulatesPerTable) {
  ProgressTracker tracker({"a", "b"}, {100, 50});
  tracker.Add(0, 30, 300);
  tracker.Add(0, 20, 200);
  tracker.Add(1, 50, 1000);
  auto snapshot = tracker.TakeSnapshot();
  EXPECT_EQ(snapshot.rows_done, 100u);
  EXPECT_EQ(snapshot.rows_total, 150u);
  EXPECT_EQ(snapshot.bytes, 1500u);
  EXPECT_DOUBLE_EQ(snapshot.tables[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.tables[1].fraction, 1.0);
  EXPECT_NEAR(snapshot.fraction, 100.0 / 150.0, 1e-12);
  EXPECT_GT(snapshot.elapsed_seconds, 0.0);
}

TEST(ProgressTest, ConcurrentUpdatesDoNotLoseCounts) {
  ProgressTracker tracker({"t"}, {40000});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < 10000; ++i) {
        tracker.Add(0, 1, 10);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  auto snapshot = tracker.TakeSnapshot();
  EXPECT_EQ(snapshot.rows_done, 40000u);
  EXPECT_EQ(snapshot.bytes, 400000u);
}

TEST(ProgressTest, FormatMentionsTables) {
  ProgressTracker tracker({"lineitem"}, {10});
  tracker.Add(0, 5, 50);
  std::string text = ProgressTracker::Format(tracker.TakeSnapshot());
  EXPECT_NE(text.find("lineitem"), std::string::npos);
  EXPECT_NE(text.find("50.0%"), std::string::npos);
}

}  // namespace
}  // namespace pdgf
