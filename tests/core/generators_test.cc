#include "core/generators/generators.h"

#include <cctype>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/text/builtin_dictionaries.h"
#include "util/strings.h"

namespace pdgf {
namespace {

// Evaluates `generator` at (row, seed-derived-from-row) like the session
// does, without needing a schema.
Value Eval(const Generator& generator, uint64_t row, uint64_t seed = 1000) {
  GeneratorContext context(nullptr, 0, row, 0, DeriveSeed(seed, row));
  Value value;
  generator.Generate(&context, &value);
  return value;
}

TEST(IdGeneratorTest, SequentialFromStart) {
  IdGenerator generator(1, 1);
  EXPECT_EQ(Eval(generator, 0).int_value(), 1);
  EXPECT_EQ(Eval(generator, 41).int_value(), 42);
  IdGenerator offset(100, 5);
  EXPECT_EQ(Eval(offset, 0).int_value(), 100);
  EXPECT_EQ(Eval(offset, 3).int_value(), 115);
  IdGenerator zero_based(0, 1);
  EXPECT_EQ(Eval(zero_based, 7).int_value(), 7);
}

TEST(LongGeneratorTest, StaysInRangeAndCoversIt) {
  LongGenerator generator(-5, 5);
  std::set<int64_t> seen;
  for (uint64_t row = 0; row < 2000; ++row) {
    int64_t v = Eval(generator, row).int_value();
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 11u);  // all values hit
}

TEST(LongGeneratorTest, DeterministicPerRow) {
  LongGenerator generator(0, 1000000);
  EXPECT_EQ(Eval(generator, 7).int_value(), Eval(generator, 7).int_value());
  EXPECT_NE(Eval(generator, 7).int_value(), Eval(generator, 8).int_value());
}

TEST(DoubleGeneratorTest, RawDoubleRange) {
  DoubleGenerator generator(2.5, 3.5);
  for (uint64_t row = 0; row < 500; ++row) {
    Value v = Eval(generator, row);
    ASSERT_EQ(v.kind(), Value::Kind::kDouble);
    ASSERT_GE(v.double_value(), 2.5);
    ASSERT_LT(v.double_value(), 3.5);
  }
}

TEST(DoubleGeneratorTest, PlacesProduceDecimals) {
  DoubleGenerator generator(0, 100, 2);
  for (uint64_t row = 0; row < 100; ++row) {
    Value v = Eval(generator, row);
    ASSERT_EQ(v.kind(), Value::Kind::kDecimal);
    EXPECT_EQ(v.decimal_scale(), 2);
    EXPECT_GE(v.AsDouble(), 0.0);
    EXPECT_LE(v.AsDouble(), 100.0);
    // Exactly 2 fractional digits in the rendering.
    std::string text = v.ToText();
    size_t dot = text.find('.');
    ASSERT_NE(dot, std::string::npos) << text;
    EXPECT_EQ(text.size() - dot - 1, 2u) << text;
  }
}

TEST(DateGeneratorTest, RangeAndLazyValue) {
  Date min = Date::FromCivil(1992, 1, 1);
  Date max = Date::FromCivil(1998, 12, 31);
  DateGenerator generator(min, max);
  for (uint64_t row = 0; row < 300; ++row) {
    Value v = Eval(generator, row);
    ASSERT_EQ(v.kind(), Value::Kind::kDate);
    EXPECT_GE(v.date_value(), min);
    EXPECT_LE(v.date_value(), max);
  }
}

TEST(DateGeneratorTest, EagerFormatting) {
  DateGenerator generator(Date::FromCivil(2014, 11, 30),
                          Date::FromCivil(2014, 11, 30), "%m/%d/%Y");
  Value v = Eval(generator, 0);
  ASSERT_EQ(v.kind(), Value::Kind::kString);
  EXPECT_EQ(v.string_value(), "11/30/2014");
}

TEST(RandomStringGeneratorTest, LengthAndCharset) {
  RandomStringGenerator generator(3, 8, "ab");
  std::set<size_t> lengths;
  for (uint64_t row = 0; row < 500; ++row) {
    Value v = Eval(generator, row);
    const std::string& text = v.string_value();
    ASSERT_GE(text.size(), 3u);
    ASSERT_LE(text.size(), 8u);
    lengths.insert(text.size());
    for (char c : text) {
      ASSERT_TRUE(c == 'a' || c == 'b') << text;
    }
  }
  EXPECT_EQ(lengths.size(), 6u);  // every length occurs
}

TEST(PatternStringGeneratorTest, PatternClasses) {
  PatternStringGenerator generator("##-??*x");
  for (uint64_t row = 0; row < 200; ++row) {
    const std::string text = Eval(generator, row).string_value();
    ASSERT_EQ(text.size(), 7u);
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(text[0])));
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(text[1])));
    EXPECT_EQ(text[2], '-');
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(text[3])));
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(text[4])));
    EXPECT_TRUE(std::islower(static_cast<unsigned char>(text[5])));
    EXPECT_EQ(text[6], 'x');
  }
}

TEST(StaticValueGeneratorTest, CachedAndUncachedAgree) {
  StaticValueGenerator cached(Value::Int(-1234), /*cache=*/true);
  StaticValueGenerator uncached(Value::Int(-1234), /*cache=*/false);
  for (uint64_t row = 0; row < 10; ++row) {
    EXPECT_EQ(Eval(cached, row).int_value(), -1234);
    EXPECT_EQ(Eval(uncached, row).int_value(), -1234);
  }
  StaticValueGenerator text(Value::String("fixed"), /*cache=*/false);
  EXPECT_EQ(Eval(text, 3).string_value(), "fixed");
  StaticValueGenerator null_value(Value::Null(), /*cache=*/false);
  EXPECT_TRUE(Eval(null_value, 0).is_null());
}

TEST(BooleanGeneratorTest, ProbabilityRespected) {
  BooleanGenerator generator(0.25);
  int trues = 0;
  const int rows = 8000;
  for (uint64_t row = 0; row < rows; ++row) {
    if (Eval(generator, row).bool_value()) ++trues;
  }
  EXPECT_NEAR(trues / static_cast<double>(rows), 0.25, 0.02);
}

TEST(DictListGeneratorTest, WeightedFrequencies) {
  auto dictionary = std::make_shared<Dictionary>();
  dictionary->Add("hot", 9);
  dictionary->Add("cold", 1);
  dictionary->Finalize();
  DictListGenerator generator(std::move(dictionary), "",
                              DictListGenerator::Method::kCumulative, 0);
  std::map<std::string, int> counts;
  const int rows = 10000;
  for (uint64_t row = 0; row < rows; ++row) {
    ++counts[Eval(generator, row).string_value()];
  }
  EXPECT_NEAR(counts["hot"] / static_cast<double>(rows), 0.9, 0.02);
}

TEST(DictListGeneratorTest, ByRowMapsDeterministically) {
  const Dictionary* regions = FindBuiltinDictionary("regions");
  DictListGenerator generator(regions, "regions",
                              DictListGenerator::Method::kByRow, 0);
  for (uint64_t row = 0; row < 10; ++row) {
    EXPECT_EQ(Eval(generator, row).string_value(),
              regions->value(row % regions->size()));
  }
}

TEST(DictListGeneratorTest, SkewConcentratesOnHead) {
  auto dictionary = std::make_shared<Dictionary>();
  for (int i = 0; i < 100; ++i) {
    dictionary->Add("entry" + std::to_string(i));
  }
  dictionary->Finalize();
  DictListGenerator generator(std::move(dictionary), "",
                              DictListGenerator::Method::kCumulative, 1.0);
  std::map<std::string, int> counts;
  for (uint64_t row = 0; row < 20000; ++row) {
    ++counts[Eval(generator, row).string_value()];
  }
  EXPECT_GT(counts["entry0"], counts["entry50"] * 3);
}

TEST(DictListGeneratorTest, EmptyDictionaryYieldsNull) {
  auto dictionary = std::make_shared<Dictionary>();
  dictionary->Finalize();
  DictListGenerator generator(std::move(dictionary), "",
                              DictListGenerator::Method::kCumulative, 0);
  EXPECT_TRUE(Eval(generator, 0).is_null());
}

TEST(SemanticGeneratorsTest, NameIsFirstSpaceLast) {
  NameGenerator generator;
  for (uint64_t row = 0; row < 50; ++row) {
    const std::string name = Eval(generator, row).string_value();
    auto words = SplitWhitespace(name);
    ASSERT_EQ(words.size(), 2u) << name;
    EXPECT_GE(FindBuiltinDictionary("first_names")->Find(words[0]), 0);
    EXPECT_GE(FindBuiltinDictionary("last_names")->Find(words[1]), 0);
  }
}

TEST(SemanticGeneratorsTest, EmailShape) {
  EmailGenerator generator;
  for (uint64_t row = 0; row < 50; ++row) {
    const std::string email = Eval(generator, row).string_value();
    size_t at = email.find('@');
    ASSERT_NE(at, std::string::npos) << email;
    EXPECT_NE(email.find('.', 0), std::string::npos);
    EXPECT_GT(at, 2u);
    EXPECT_LT(at, email.size() - 3);
  }
}

TEST(SemanticGeneratorsTest, UrlShape) {
  UrlGenerator generator;
  for (uint64_t row = 0; row < 50; ++row) {
    const std::string url = Eval(generator, row).string_value();
    EXPECT_TRUE(StartsWith(url, "http://www.")) << url;
    EXPECT_NE(url.find('/', 11), std::string::npos) << url;
  }
}

TEST(SemanticGeneratorsTest, AddressHasCityAndState) {
  AddressGenerator generator;
  const std::string address = Eval(generator, 3).string_value();
  // "123 Maple Street, Springfield, NY 10482"
  EXPECT_NE(address.find(", "), std::string::npos) << address;
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(address[0])));
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(address.back())));
}

TEST(NullGeneratorTest, ProbabilityZeroAndOne) {
  NullGenerator never(0.0, GeneratorPtr(new IdGenerator(1, 1)));
  NullGenerator always(1.0, GeneratorPtr(new IdGenerator(1, 1)));
  for (uint64_t row = 0; row < 100; ++row) {
    EXPECT_FALSE(Eval(never, row).is_null());
    EXPECT_TRUE(Eval(always, row).is_null());
  }
}

TEST(NullGeneratorTest, FractionalProbability) {
  NullGenerator generator(0.3, GeneratorPtr(new LongGenerator(0, 9)));
  int nulls = 0;
  const int rows = 10000;
  for (uint64_t row = 0; row < rows; ++row) {
    if (Eval(generator, row).is_null()) ++nulls;
  }
  EXPECT_NEAR(nulls / static_cast<double>(rows), 0.3, 0.02);
}

TEST(NullGeneratorTest, InnerStreamIndependentOfNullDraw) {
  // The wrapped generator runs in a child stream, so for rows where the
  // value is non-NULL it must equal the unwrapped generator evaluated in
  // that same child stream.
  LongGenerator inner_reference(0, 1 << 30);
  NullGenerator wrapped(0.5, GeneratorPtr(new LongGenerator(0, 1 << 30)));
  for (uint64_t row = 0; row < 50; ++row) {
    Value wrapped_value = Eval(wrapped, row);
    if (wrapped_value.is_null()) continue;
    GeneratorContext context(nullptr, 0, row, 0, DeriveSeed(1000, row));
    GeneratorContext child = context.Child(0);
    Value direct;
    inner_reference.Generate(&child, &direct);
    EXPECT_EQ(wrapped_value.int_value(), direct.int_value());
  }
}

TEST(SequentialGeneratorTest, ConcatenatesChildren) {
  std::vector<GeneratorPtr> children;
  children.push_back(GeneratorPtr(new StaticValueGenerator(
      Value::String("A"), true)));
  children.push_back(GeneratorPtr(new IdGenerator(1, 1)));
  SequentialGenerator generator(std::move(children), "-", "[", "]");
  EXPECT_EQ(Eval(generator, 4).string_value(), "[A-5]");
}

TEST(SequentialGeneratorTest, ChildrenUseIndependentStreams) {
  // Two identical Long children must (w.h.p.) produce different values in
  // the same row.
  std::vector<GeneratorPtr> children;
  children.push_back(GeneratorPtr(new LongGenerator(0, 1 << 30)));
  children.push_back(GeneratorPtr(new LongGenerator(0, 1 << 30)));
  SequentialGenerator generator(std::move(children), "|", "", "");
  int equal = 0;
  for (uint64_t row = 0; row < 100; ++row) {
    std::string text = Eval(generator, row).string_value();
    auto parts = Split(text, '|');
    ASSERT_EQ(parts.size(), 2u);
    if (parts[0] == parts[1]) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(ConditionalGeneratorTest, WeightsRespected) {
  std::vector<ConditionalGenerator::Branch> branches;
  branches.push_back({3.0, GeneratorPtr(new StaticValueGenerator(
                               Value::String("often"), true))});
  branches.push_back({1.0, GeneratorPtr(new StaticValueGenerator(
                               Value::String("rarely"), true))});
  ConditionalGenerator generator(std::move(branches));
  std::map<std::string, int> counts;
  const int rows = 8000;
  for (uint64_t row = 0; row < rows; ++row) {
    ++counts[Eval(generator, row).string_value()];
  }
  EXPECT_NEAR(counts["often"] / static_cast<double>(rows), 0.75, 0.02);
}

TEST(ConditionalGeneratorTest, EmptyBranchesYieldNull) {
  ConditionalGenerator generator({});
  EXPECT_TRUE(Eval(generator, 0).is_null());
}

TEST(PaddingGeneratorTest, PadsLeftAndRight) {
  PaddingGenerator left(GeneratorPtr(new IdGenerator(1, 1)), 9, '0', true);
  EXPECT_EQ(Eval(left, 41).string_value(), "000000042");
  PaddingGenerator right(GeneratorPtr(new IdGenerator(1, 1)), 5, '_', false);
  EXPECT_EQ(Eval(right, 41).string_value(), "42___");
  // Longer-than-width values pass through unchanged.
  PaddingGenerator narrow(GeneratorPtr(new IdGenerator(100000, 1)), 3, '0',
                          true);
  EXPECT_EQ(Eval(narrow, 0).string_value(), "100000");
}

TEST(FormulaGeneratorTest, RowVariable) {
  FormulaGenerator generator("floor(${row}/4)+1", {}, true);
  EXPECT_EQ(Eval(generator, 0).int_value(), 1);
  EXPECT_EQ(Eval(generator, 3).int_value(), 1);
  EXPECT_EQ(Eval(generator, 4).int_value(), 2);
  EXPECT_EQ(Eval(generator, 11).int_value(), 3);
}

TEST(FormulaGeneratorTest, ChildVariables) {
  std::vector<GeneratorPtr> children;
  children.push_back(GeneratorPtr(new StaticValueGenerator(
      Value::Int(10), true)));
  children.push_back(GeneratorPtr(new StaticValueGenerator(
      Value::Int(4), true)));
  FormulaGenerator generator("${child0} * ${child1} + ${row}",
                             std::move(children), true);
  EXPECT_EQ(Eval(generator, 2).int_value(), 42);
}

TEST(FormulaGeneratorTest, BadExpressionYieldsNull) {
  FormulaGenerator generator("${unknown_var}", {}, false);
  EXPECT_TRUE(Eval(generator, 0).is_null());
}

TEST(MarkovChainGeneratorTest, FromCorpusGenerates) {
  auto generator = MarkovChainGenerator::FromCorpus(
      "alpha beta gamma. alpha gamma beta.", 2, 6);
  ASSERT_TRUE(generator.ok());
  for (uint64_t row = 0; row < 100; ++row) {
    const std::string text = Eval(**generator, row).string_value();
    size_t words = SplitWhitespace(text).size();
    EXPECT_GE(words, 2u);
    EXPECT_LE(words, 6u);
  }
}

TEST(MarkovChainGeneratorTest, EmptyCorpusRejected) {
  EXPECT_FALSE(MarkovChainGenerator::FromCorpus("", 1, 5).ok());
  EXPECT_FALSE(MarkovChainGenerator::FromCorpus("   \n  ", 1, 5).ok());
}

TEST(ChildContextTest, SiblingsAndDepthsAreIndependent) {
  GeneratorContext context(nullptr, 0, 5, 0, 777);
  GeneratorContext child0 = context.Child(0);
  GeneratorContext child1 = context.Child(1);
  GeneratorContext grandchild = child0.Child(0);
  std::set<uint64_t> seeds = {context.field_seed(), child0.field_seed(),
                              child1.field_seed(), grandchild.field_seed()};
  EXPECT_EQ(seeds.size(), 4u);
  // Coordinates propagate.
  EXPECT_EQ(child0.row(), 5u);
  EXPECT_EQ(grandchild.row(), 5u);
}

}  // namespace
}  // namespace pdgf
