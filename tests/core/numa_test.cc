#include "common/topology.h"

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/generators/generators.h"
#include "core/output/formatter.h"
#include "core/output/sink.h"
#include "core/output/writer.h"
#include "core/schedule.h"
#include "core/session.h"

namespace pdgf {
namespace {

// ---------------------------------------------------------------------
// NumaMode parsing

TEST(NumaModeTest, ParsesStableNamesAndRoundTrips) {
  for (NumaMode mode :
       {NumaMode::kOff, NumaMode::kOn, NumaMode::kInterleave}) {
    auto parsed = ParseNumaMode(NumaModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
}

TEST(NumaModeTest, RejectsUnknownNameWithActionableError) {
  auto parsed = ParseNumaMode("firsttouch");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("firsttouch"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("interleave"), std::string::npos);
}

// ---------------------------------------------------------------------
// Cpulist parsing (the sysfs wire format)

TEST(TopologyTest, ParsesCpuListRangesAndSingles) {
  auto cpus = ParseCpuList("0-3,8,10-11\n");
  ASSERT_TRUE(cpus.ok());
  EXPECT_EQ(*cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  auto empty = ParseCpuList("\n");  // memory-only node
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto single = ParseCpuList("5");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(*single, std::vector<int>{5});
}

TEST(TopologyTest, RejectsMalformedCpuLists) {
  EXPECT_FALSE(ParseCpuList("0-").ok());
  EXPECT_FALSE(ParseCpuList("3-1").ok());  // descending range
  EXPECT_FALSE(ParseCpuList("a,b").ok());
  EXPECT_FALSE(ParseCpuList("1,,2").ok());
}

// ---------------------------------------------------------------------
// Topology: detection fallback and injectable fakes

TEST(TopologyTest, SystemTopologyHasAtLeastOneSchedulableNode) {
  const Topology& topology = Topology::System();
  ASSERT_GE(topology.node_count(), 1);
  EXPECT_GE(topology.cpu_count(), 1);
  for (int n = 0; n < topology.node_count(); ++n) {
    EXPECT_FALSE(topology.node(n).cpus.empty());
  }
  EXPECT_GE(AffinityCpuCount(), 1);
}

TEST(TopologyTest, ForTestBuildsMultiNodeFakeWithoutBinding) {
  Topology fake = Topology::ForTest({{0, 1, 2, 3}, {4, 5, 6, 7}});
  EXPECT_EQ(fake.node_count(), 2);
  EXPECT_EQ(fake.cpu_count(), 8);
  EXPECT_FALSE(fake.single_node());
  EXPECT_FALSE(fake.can_bind());
  // Binding on a fake is a no-op, never an error — multi-node behaviour
  // stays testable on a single-node CI host.
  EXPECT_TRUE(fake.BindCurrentThread(1).ok());
  EXPECT_FALSE(fake.BindCurrentThread(2).ok());  // no such node
}

TEST(TopologyTest, WorkersSplitProportionallyToCpuShare) {
  Topology even = Topology::ForTest({{0, 1, 2, 3}, {4, 5, 6, 7}});
  EXPECT_EQ(even.WorkersPerNode(8), (std::vector<int>{4, 4}));
  EXPECT_EQ(even.WorkersPerNode(4), (std::vector<int>{2, 2}));
  EXPECT_EQ(even.WorkersPerNode(1), (std::vector<int>{0, 1}));

  // 6:2 CPU split — workers follow the share, not an even split.
  Topology skewed = Topology::ForTest({{0, 1, 2, 3, 4, 5}, {6, 7}});
  EXPECT_EQ(skewed.WorkersPerNode(4), (std::vector<int>{3, 1}));
  EXPECT_EQ(skewed.WorkersPerNode(8), (std::vector<int>{6, 2}));

  // Contiguous blocks: workers 0..3 on node 0, 4..7 on node 1.
  for (int w = 0; w < 8; ++w) {
    EXPECT_EQ(even.NodeForWorker(w, 8), w < 4 ? 0 : 1) << "worker " << w;
  }
}

TEST(TopologyTest, DescribeCompressesCpuRuns) {
  Topology fake = Topology::ForTest({{0, 1, 2, 3}, {8, 10, 11}});
  EXPECT_EQ(fake.Describe(), "2 nodes: node0 cpus 0-3 node1 cpus 8,10-11");
}

// ---------------------------------------------------------------------
// PartitionPackagesByNode

TEST(PartitionPackagesTest, ProportionalBoundsCoverExactly) {
  EXPECT_EQ(PartitionPackagesByNode(10, {2, 2}),
            (std::vector<uint64_t>{0, 5, 10}));
  EXPECT_EQ(PartitionPackagesByNode(10, {3, 1}),
            (std::vector<uint64_t>{0, 7, 10}));
  // A node with no workers owns no packages.
  EXPECT_EQ(PartitionPackagesByNode(10, {0, 4}),
            (std::vector<uint64_t>{0, 0, 10}));
  // Degenerate maps put everything on node 0.
  EXPECT_EQ(PartitionPackagesByNode(7, {}), (std::vector<uint64_t>{0, 7}));
  EXPECT_EQ(PartitionPackagesByNode(7, {0, 0}),
            (std::vector<uint64_t>{0, 7, 7}));
}

// ---------------------------------------------------------------------
// NumaScheduler: partitioning, steal order, exactly-once

// Same drain helper discipline as schedule_test.cc.
std::vector<size_t> DrainConcurrently(Scheduler* scheduler,
                                      int worker_count) {
  std::vector<std::vector<size_t>> per_worker(
      static_cast<size_t>(worker_count));
  std::vector<std::thread> threads;
  for (int w = 0; w < worker_count; ++w) {
    threads.emplace_back([scheduler, w, &per_worker] {
      size_t index = 0;
      while (scheduler->Next(w, &index)) {
        per_worker[static_cast<size_t>(w)].push_back(index);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<size_t> all;
  for (const auto& claimed : per_worker) {
    all.insert(all.end(), claimed.begin(), claimed.end());
  }
  return all;
}

void ExpectExactlyOnce(std::vector<size_t> claimed, size_t package_count) {
  ASSERT_EQ(claimed.size(), package_count);
  std::sort(claimed.begin(), claimed.end());
  for (size_t i = 0; i < claimed.size(); ++i) {
    ASSERT_EQ(claimed[i], i) << "index claimed twice or skipped";
  }
}

TEST(NumaSchedulerTest, WorkersClaimFromTheirHomeStripeFirst) {
  // Workers 0,1 on node 0; workers 2,3 on node 1. 20 packages split
  // evenly: node 0 owns [0,10), node 1 owns [10,20).
  auto scheduler =
      MakeScheduler(SchedulerKind::kNuma, 20, 4, {0, 0, 1, 1});
  size_t index = 0;
  ASSERT_TRUE(scheduler->Next(2, &index));
  EXPECT_EQ(index, 10u);  // node 1's stripe head
  ASSERT_TRUE(scheduler->Next(3, &index));
  EXPECT_EQ(index, 11u);
  ASSERT_TRUE(scheduler->Next(0, &index));
  EXPECT_EQ(index, 0u);  // node 0's stripe untouched by node 1's claims
}

TEST(NumaSchedulerTest, StealsOnlyAfterLocalStripeDrainsFromVictimHead) {
  // Node 1's worker drains its own stripe [6,12) front-to-back, then
  // steals node 0's stripe from the *head* — claims stay a union of
  // stripe prefixes throughout (the sorted-writer progress invariant).
  auto scheduler = MakeScheduler(SchedulerKind::kNuma, 12, 2, {0, 1});
  size_t index = 0;
  std::vector<size_t> claimed;
  while (scheduler->Next(1, &index)) claimed.push_back(index);
  ASSERT_EQ(claimed.size(), 12u);
  const std::vector<size_t> expected = {6, 7, 8, 9, 10, 11,
                                        0, 1, 2, 3, 4, 5};
  EXPECT_EQ(claimed, expected);

  auto reports = scheduler->node_reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[1].packages, 12u);  // all claims homed on node 1
  EXPECT_EQ(reports[1].steals, 6u);     // of which node 0's stripe
  EXPECT_EQ(reports[0].packages, 0u);
  EXPECT_EQ(reports[0].steals, 0u);
}

TEST(NumaSchedulerTest, ExactlyOnceUnderContention) {
  for (int workers : {1, 2, 7}) {
    for (size_t packages : {0u, 1u, 13u, 64u, 257u}) {
      // Round-robin node map over 2 nodes, plus a skewed 3-node map.
      std::vector<int> round_robin;
      std::vector<int> skewed;
      for (int w = 0; w < workers; ++w) {
        round_robin.push_back(w % 2);
        skewed.push_back(w < 1 ? 0 : 2);  // node 1 has no workers
      }
      for (const std::vector<int>& map : {round_robin, skewed}) {
        auto scheduler =
            MakeScheduler(SchedulerKind::kNuma, packages, workers, map);
        ExpectExactlyOnce(DrainConcurrently(scheduler.get(), workers),
                          packages);
      }
    }
  }
}

TEST(NumaSchedulerTest, EmptyWorkerMapDegeneratesToSingleStripe) {
  // MakeScheduler's default (no worker_nodes) must still cover every
  // package exactly once, in order.
  auto scheduler = MakeScheduler(SchedulerKind::kNuma, 9, 3);
  ExpectExactlyOnce(DrainConcurrently(scheduler.get(), 3), 9);
}

// ---------------------------------------------------------------------
// BufferPool node domains

TEST(NumaBufferPoolTest, PrefersHomeDomainAndCountsCrossNodeAcquires) {
  BufferPool pool(/*capacity=*/2, /*node_count=*/2);
  EXPECT_EQ(pool.node_count(), 2);
  std::string a;
  std::string b;
  ASSERT_TRUE(pool.AcquireOnNode(0, &a));
  ASSERT_TRUE(pool.AcquireOnNode(1, &b));
  EXPECT_EQ(pool.allocations(), 2u);  // both fresh (first-touch path)
  a.assign("aaaa");
  b.assign("bbbb");
  pool.ReleaseToNode(0, std::move(a));
  pool.ReleaseToNode(1, std::move(b));

  // Home hit: node 0 gets its own recycled buffer back.
  std::string c;
  ASSERT_TRUE(pool.AcquireOnNode(0, &c));
  EXPECT_EQ(pool.allocations(), 2u);  // recycled, not fresh
  EXPECT_EQ(pool.cross_node_acquires(), 0u);
  EXPECT_TRUE(c.empty());  // recycled buffers come back cleared

  // At capacity with only a remote buffer free: the acquire is served
  // cross-node and counted.
  std::string d;
  ASSERT_TRUE(pool.AcquireOnNode(0, &d));
  EXPECT_EQ(pool.allocations(), 2u);
  EXPECT_EQ(pool.cross_node_acquires(), 1u);
}

TEST(NumaBufferPoolTest, OutOfRangeNodesClampToDomainZero) {
  BufferPool pool(/*capacity=*/1, /*node_count=*/2);
  std::string buffer;
  ASSERT_TRUE(pool.AcquireOnNode(-3, &buffer));
  pool.ReleaseToNode(99, std::move(buffer));  // lands on domain 0
  std::string again;
  ASSERT_TRUE(pool.AcquireOnNode(0, &again));
  EXPECT_EQ(pool.allocations(), 1u);  // recycled from domain 0
}

TEST(NumaBufferPoolTest, SingleDomainShorthandStillWorks) {
  BufferPool pool(/*capacity=*/1);
  EXPECT_EQ(pool.node_count(), 1);
  std::string buffer;
  ASSERT_TRUE(pool.Acquire(&buffer));
  pool.Release(std::move(buffer));
  EXPECT_EQ(pool.cross_node_acquires(), 0u);
}

// ---------------------------------------------------------------------
// Engine parity: bytes identical across placement modes

SchemaDef MakeNumaParitySchema() {
  SchemaDef schema;
  schema.name = "numa_parity";
  schema.seed = 4242;
  TableDef big;
  big.name = "big";
  big.size_expression = "900";
  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  big.fields.push_back(std::move(id));
  FieldDef payload;
  payload.name = "payload";
  payload.type = DataType::kVarchar;
  payload.generator = GeneratorPtr(new RandomStringGenerator(4, 18));
  big.fields.push_back(std::move(payload));
  schema.tables.push_back(std::move(big));
  TableDef small;
  small.name = "small";
  small.size_expression = "41";
  FieldDef value;
  value.name = "value";
  value.type = DataType::kBigInt;
  value.generator = GeneratorPtr(new LongGenerator(0, 999));
  small.fields.push_back(std::move(value));
  schema.tables.push_back(std::move(small));
  return schema;
}

class CaptureSink final : public Sink {
 public:
  explicit CaptureSink(std::string* out) : out_(out) {}
  Status Write(std::string_view data) override {
    out_->append(data);
    return Status::Ok();
  }

 private:
  std::string* out_;
};

std::map<std::string, std::string> RunToMemory(
    const GenerationSession& session, const RowFormatter& formatter,
    GenerationOptions options) {
  std::map<std::string, std::string> outputs;
  SinkFactory factory =
      [&outputs](const TableDef& table) -> StatusOr<std::unique_ptr<Sink>> {
    return std::unique_ptr<Sink>(new CaptureSink(&outputs[table.name]));
  };
  GenerationEngine engine(&session, &formatter, factory, options);
  Status status = engine.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  return outputs;
}

TEST(NumaEngineParityTest, BytesIdenticalAcrossPlacementModes) {
  SchemaDef schema = MakeNumaParitySchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  auto formatter = MakeFormatter("csv");
  ASSERT_TRUE(formatter.ok());

  GenerationOptions baseline_options;
  baseline_options.worker_count = 1;
  baseline_options.work_package_rows = 4096;
  baseline_options.writer_threads = 0;
  baseline_options.numa = NumaMode::kOff;
  auto baseline = RunToMemory(**session, **formatter, baseline_options);
  ASSERT_FALSE(baseline["big"].empty());

  // A fake two-node topology drives the multi-node code paths (stripe
  // split, per-node pool domains, writer routing) deterministically on a
  // single-node CI host; can_bind()==false makes every pin a no-op.
  Topology fake = Topology::ForTest({{0, 1, 2, 3}, {4, 5, 6, 7}});
  for (NumaMode numa :
       {NumaMode::kOff, NumaMode::kOn, NumaMode::kInterleave}) {
    for (SchedulerKind kind :
         {SchedulerKind::kNuma, SchedulerKind::kStriped}) {
      for (int writer_threads : {0, 1, 2}) {
        GenerationOptions options;
        options.worker_count = 4;
        options.work_package_rows = 97;
        options.scheduler = kind;
        options.writer_threads = writer_threads;
        options.numa = numa;
        options.topology = &fake;
        auto outputs = RunToMemory(**session, **formatter, options);
        EXPECT_EQ(outputs, baseline)
            << "numa=" << NumaModeName(numa) << " scheduler="
            << SchedulerKindName(kind) << " writers=" << writer_threads;
      }
    }
  }
}

TEST(NumaEngineParityTest, UnsortedRunsProduceIdenticalDigests) {
  // Unsorted output has no byte-order guarantee; the order-insensitive
  // digests must still match across placement modes.
  SchemaDef schema = MakeNumaParitySchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  auto formatter = MakeFormatter("csv");
  ASSERT_TRUE(formatter.ok());
  Topology fake = Topology::ForTest({{0, 1}, {2, 3}});

  auto run_digests = [&](NumaMode numa) {
    GenerationOptions options;
    options.worker_count = 4;
    options.work_package_rows = 64;
    options.sorted_output = false;
    options.scheduler = SchedulerKind::kNuma;
    options.compute_digests = true;
    options.numa = numa;
    options.topology = &fake;
    SinkFactory factory =
        [](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
      return std::unique_ptr<Sink>(new NullSink());
    };
    GenerationEngine engine(&**session, &**formatter, factory, options);
    Status status = engine.Run();
    EXPECT_TRUE(status.ok()) << status.ToString();
    std::vector<std::string> hex;
    for (const TableDigest& digest : engine.stats().table_digests) {
      hex.push_back(digest.Hex());
    }
    return hex;
  };

  const std::vector<std::string> off = run_digests(NumaMode::kOff);
  EXPECT_EQ(run_digests(NumaMode::kOn), off);
  EXPECT_EQ(run_digests(NumaMode::kInterleave), off);
}

TEST(NumaEngineMetricsTest, PerNodeRollupAndPoolDomainsReported) {
  SchemaDef schema = MakeNumaParitySchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  auto formatter = MakeFormatter("csv");
  ASSERT_TRUE(formatter.ok());
  Topology fake = Topology::ForTest({{0, 1}, {2, 3}});

  GenerationOptions options;
  options.worker_count = 4;
  options.work_package_rows = 97;
  options.scheduler = SchedulerKind::kNuma;
  options.writer_threads = 2;
  options.numa = NumaMode::kOn;
  options.topology = &fake;
  options.metrics_enabled = true;
  SinkFactory factory =
      [](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
    return std::unique_ptr<Sink>(new NullSink());
  };
  GenerationEngine engine(&**session, &**formatter, factory, options);
  Status status = engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();

  const MetricsReport& report = engine.stats().metrics;
  EXPECT_EQ(report.numa_mode, "on");
  EXPECT_EQ(report.topology, fake.Describe());
  EXPECT_EQ(report.buffer_pool.node_domains, 2u);
  ASSERT_EQ(report.nodes.size(), 2u);
  uint64_t node_rows = 0;
  uint64_t node_workers = 0;
  for (const MetricsReport::NodeReport& node : report.nodes) {
    node_rows += node.rows;
    node_workers += node.workers;
  }
  EXPECT_EQ(node_rows, report.rows);
  EXPECT_EQ(node_workers, 4u);  // 2 workers homed on each fake node
  for (const MetricsReport::WorkerReport& worker : report.workers) {
    EXPECT_GE(worker.node, 0);
    EXPECT_LT(worker.node, 2);
  }
  // The JSON export carries the additive v2 fields.
  const std::string json = report.ToJson(false);
  EXPECT_NE(json.find("\"numa_mode\":\"on\""), std::string::npos);
  EXPECT_NE(json.find("\"cross_node_acquires\""), std::string::npos);
  EXPECT_NE(json.find("\"steals\""), std::string::npos);
}

}  // namespace
}  // namespace pdgf
