#include "core/simcluster.h"

#include <gtest/gtest.h>

namespace pdgf {
namespace {

SimulatedMachine PaperNode() {
  // The paper's single node: 2 sockets x 8 cores, 32 hardware threads.
  SimulatedMachine machine;
  machine.physical_cores = 16;
  machine.hardware_threads = 32;
  return machine;
}

TEST(SimClusterTest, CapacityGrowsLinearlyToCoreCount) {
  SimulatedMachine machine = PaperNode();
  // Up to 15 workers the capacity is exactly the worker count.
  for (int workers = 1; workers < machine.physical_cores; ++workers) {
    EXPECT_DOUBLE_EQ(EffectiveCapacity(machine, workers), workers);
  }
}

TEST(SimClusterTest, SmtAddsSubLinearCapacity) {
  SimulatedMachine machine = PaperNode();
  double at_cores = EffectiveCapacity(machine, 17);
  double at_threads_minus = EffectiveCapacity(machine, 31);
  // More workers help, but each SMT worker adds < 1 core's worth.
  EXPECT_GT(at_threads_minus, at_cores);
  EXPECT_LT(at_threads_minus, 31);
  EXPECT_LT(at_threads_minus - at_cores, 14.0);
}

TEST(SimClusterTest, ExactCoreCountSuffersInterference) {
  // The paper's observation: workers == cores (or == threads) is not
  // optimal because internal scheduling and I/O threads compete.
  SimulatedMachine machine = PaperNode();
  EXPECT_LT(EffectiveCapacity(machine, 16), EffectiveCapacity(machine, 17));
  EXPECT_LT(EffectiveCapacity(machine, 32), EffectiveCapacity(machine, 33));
}

TEST(SimClusterTest, OversubscriptionAddsNothing) {
  SimulatedMachine machine = PaperNode();
  double at_33 = EffectiveCapacity(machine, 33);
  double at_48 = EffectiveCapacity(machine, 48);
  EXPECT_NEAR(at_33, at_48, 0.01);
}

TEST(SimClusterTest, ZeroOrNegativeWorkers) {
  SimulatedMachine machine = PaperNode();
  EXPECT_DOUBLE_EQ(EffectiveCapacity(machine, 0), 0);
  EXPECT_DOUBLE_EQ(EffectiveCapacity(machine, -3), 0);
}

TEST(SimClusterTest, WallClockIsWorkConserving) {
  SimulatedMachine machine = PaperNode();
  // 8 equal lanes of 1s on >=8 cores: 1s wall clock.
  std::vector<double> lanes(8, 1.0);
  EXPECT_DOUBLE_EQ(EstimateParallelWallClock(lanes, machine, 8), 1.0);
  // Same work with 1 worker: 8s.
  EXPECT_DOUBLE_EQ(EstimateParallelWallClock(lanes, machine, 1), 8.0);
}

TEST(SimClusterTest, WallClockBoundedByLongestLane) {
  SimulatedMachine machine = PaperNode();
  std::vector<double> lanes = {10.0, 0.1, 0.1, 0.1};
  // Even with many cores, the 10s lane dominates.
  EXPECT_DOUBLE_EQ(EstimateParallelWallClock(lanes, machine, 4), 10.0);
}

TEST(SimClusterTest, EmptyLanesTakeNoTime) {
  SimulatedMachine machine = PaperNode();
  EXPECT_DOUBLE_EQ(EstimateParallelWallClock({}, machine, 4), 0.0);
}

TEST(SimClusterTest, ThroughputShapeMatchesFigure5) {
  // Derived throughput (1/wall-clock for fixed work) must rise steeply to
  // the core count, keep rising more slowly to the thread count, then
  // flatten — the Figure 5 curve.
  SimulatedMachine machine = PaperNode();
  auto throughput = [&machine](int workers) {
    std::vector<double> lanes(static_cast<size_t>(workers),
                              64.0 / workers);
    return 64.0 / EstimateParallelWallClock(lanes, machine, workers);
  };
  double t1 = throughput(1);
  double t8 = throughput(8);
  double t15 = throughput(15);
  double t24 = throughput(24);
  double t31 = throughput(31);
  double t40 = throughput(40);
  EXPECT_NEAR(t8 / t1, 8.0, 0.01);        // linear to the cores
  EXPECT_NEAR(t15 / t1, 15.0, 0.01);
  EXPECT_GT(t24, t15);                    // SMT keeps helping...
  EXPECT_LT(t24 / t15, 24.0 / 15.0);      // ...but sub-linearly
  EXPECT_GT(t31, t24);
  EXPECT_NEAR(t40, t31 * 0.99, t31 * 0.02);  // flat past the threads
}

TEST(SimClusterTest, ClusterWallClockIsSlowestNode) {
  EXPECT_DOUBLE_EQ(EstimateClusterWallClock({1.0, 2.5, 0.5}), 2.5);
  EXPECT_DOUBLE_EQ(EstimateClusterWallClock({}), 0.0);
}

TEST(SimClusterTest, ScaleOutShapeMatchesFigure4) {
  // Equal shares per node: N nodes cut the wall clock by N, so derived
  // throughput grows linearly in nodes — the Figure 4 line.
  const double total_work = 240.0;
  double throughput_1 = 0, throughput_8 = 0, throughput_24 = 0;
  for (int nodes : {1, 8, 24}) {
    std::vector<double> node_seconds(static_cast<size_t>(nodes),
                                     total_work / nodes);
    double wall = EstimateClusterWallClock(node_seconds);
    double throughput = total_work / wall;
    if (nodes == 1) throughput_1 = throughput;
    if (nodes == 8) throughput_8 = throughput;
    if (nodes == 24) throughput_24 = throughput;
  }
  EXPECT_NEAR(throughput_8 / throughput_1, 8.0, 1e-9);
  EXPECT_NEAR(throughput_24 / throughput_1, 24.0, 1e-9);
}

}  // namespace
}  // namespace pdgf
