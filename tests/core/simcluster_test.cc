#include "core/simcluster.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/generators/generators.h"

namespace pdgf {
namespace {

SimulatedMachine PaperNode() {
  // The paper's single node: 2 sockets x 8 cores, 32 hardware threads.
  SimulatedMachine machine;
  machine.physical_cores = 16;
  machine.hardware_threads = 32;
  return machine;
}

TEST(SimClusterTest, CapacityGrowsLinearlyToCoreCount) {
  SimulatedMachine machine = PaperNode();
  // Up to 15 workers the capacity is exactly the worker count.
  for (int workers = 1; workers < machine.physical_cores; ++workers) {
    EXPECT_DOUBLE_EQ(EffectiveCapacity(machine, workers), workers);
  }
}

TEST(SimClusterTest, SmtAddsSubLinearCapacity) {
  SimulatedMachine machine = PaperNode();
  double at_cores = EffectiveCapacity(machine, 17);
  double at_threads_minus = EffectiveCapacity(machine, 31);
  // More workers help, but each SMT worker adds < 1 core's worth.
  EXPECT_GT(at_threads_minus, at_cores);
  EXPECT_LT(at_threads_minus, 31);
  EXPECT_LT(at_threads_minus - at_cores, 14.0);
}

TEST(SimClusterTest, ExactCoreCountSuffersInterference) {
  // The paper's observation: workers == cores (or == threads) is not
  // optimal because internal scheduling and I/O threads compete.
  SimulatedMachine machine = PaperNode();
  EXPECT_LT(EffectiveCapacity(machine, 16), EffectiveCapacity(machine, 17));
  EXPECT_LT(EffectiveCapacity(machine, 32), EffectiveCapacity(machine, 33));
}

TEST(SimClusterTest, OversubscriptionAddsNothing) {
  SimulatedMachine machine = PaperNode();
  double at_33 = EffectiveCapacity(machine, 33);
  double at_48 = EffectiveCapacity(machine, 48);
  EXPECT_NEAR(at_33, at_48, 0.01);
}

TEST(SimClusterTest, ZeroOrNegativeWorkers) {
  SimulatedMachine machine = PaperNode();
  EXPECT_DOUBLE_EQ(EffectiveCapacity(machine, 0), 0);
  EXPECT_DOUBLE_EQ(EffectiveCapacity(machine, -3), 0);
}

TEST(SimClusterTest, WallClockIsWorkConserving) {
  SimulatedMachine machine = PaperNode();
  // 8 equal lanes of 1s on >=8 cores: 1s wall clock.
  std::vector<double> lanes(8, 1.0);
  EXPECT_DOUBLE_EQ(EstimateParallelWallClock(lanes, machine, 8), 1.0);
  // Same work with 1 worker: 8s.
  EXPECT_DOUBLE_EQ(EstimateParallelWallClock(lanes, machine, 1), 8.0);
}

TEST(SimClusterTest, WallClockBoundedByLongestLane) {
  SimulatedMachine machine = PaperNode();
  std::vector<double> lanes = {10.0, 0.1, 0.1, 0.1};
  // Even with many cores, the 10s lane dominates.
  EXPECT_DOUBLE_EQ(EstimateParallelWallClock(lanes, machine, 4), 10.0);
}

TEST(SimClusterTest, EmptyLanesTakeNoTime) {
  SimulatedMachine machine = PaperNode();
  EXPECT_DOUBLE_EQ(EstimateParallelWallClock({}, machine, 4), 0.0);
}

TEST(SimClusterTest, ThroughputShapeMatchesFigure5) {
  // Derived throughput (1/wall-clock for fixed work) must rise steeply to
  // the core count, keep rising more slowly to the thread count, then
  // flatten — the Figure 5 curve.
  SimulatedMachine machine = PaperNode();
  auto throughput = [&machine](int workers) {
    std::vector<double> lanes(static_cast<size_t>(workers),
                              64.0 / workers);
    return 64.0 / EstimateParallelWallClock(lanes, machine, workers);
  };
  double t1 = throughput(1);
  double t8 = throughput(8);
  double t15 = throughput(15);
  double t24 = throughput(24);
  double t31 = throughput(31);
  double t40 = throughput(40);
  EXPECT_NEAR(t8 / t1, 8.0, 0.01);        // linear to the cores
  EXPECT_NEAR(t15 / t1, 15.0, 0.01);
  EXPECT_GT(t24, t15);                    // SMT keeps helping...
  EXPECT_LT(t24 / t15, 24.0 / 15.0);      // ...but sub-linearly
  EXPECT_GT(t31, t24);
  EXPECT_NEAR(t40, t31 * 0.99, t31 * 0.02);  // flat past the threads
}

TEST(SimClusterTest, ClusterWallClockIsSlowestNode) {
  EXPECT_DOUBLE_EQ(EstimateClusterWallClock({1.0, 2.5, 0.5}), 2.5);
  EXPECT_DOUBLE_EQ(EstimateClusterWallClock({}), 0.0);
}

// --- Digest parity across simulated node splits -----------------------

// Row counts chosen so that a 4-way split is uneven: 1001 = 4*250 + 1
// and 37 < 4*10, exercising both the "one node gets an extra row" and
// the "some nodes get tiny shares" paths of NodeShare.
SchemaDef MakeClusterSchema() {
  SchemaDef schema;
  schema.name = "cluster_digest";
  schema.seed = 4242;

  TableDef events;
  events.name = "events";
  events.size_expression = "1001";
  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  events.fields.push_back(std::move(id));
  FieldDef payload;
  payload.name = "payload";
  payload.type = DataType::kVarchar;
  payload.generator = GeneratorPtr(new RandomStringGenerator(4, 24));
  events.fields.push_back(std::move(payload));
  schema.tables.push_back(std::move(events));

  TableDef tiny;
  tiny.name = "tiny";
  tiny.size_expression = "37";
  FieldDef value;
  value.name = "value";
  value.type = DataType::kBigInt;
  value.generator = GeneratorPtr(new LongGenerator(0, 999));
  tiny.fields.push_back(std::move(value));
  schema.tables.push_back(std::move(tiny));
  return schema;
}

TEST(SimClusterDigestTest, OneNodeEqualsFourNodesMerged) {
  SchemaDef schema = MakeClusterSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;

  GenerationOptions options;
  options.worker_count = 2;
  options.work_package_rows = 97;
  auto one = RunSimulatedCluster(**session, formatter, options, 1);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  auto four = RunSimulatedCluster(**session, formatter, options, 4);
  ASSERT_TRUE(four.ok()) << four.status().ToString();

  ASSERT_EQ(one->table_digests.size(), 2u);
  ASSERT_EQ(four->table_digests.size(), 2u);
  EXPECT_EQ(one->rows, 1038u);
  EXPECT_EQ(four->rows, one->rows);
  EXPECT_EQ(four->bytes, one->bytes);
  for (size_t t = 0; t < one->table_digests.size(); ++t) {
    EXPECT_TRUE(four->table_digests[t] == one->table_digests[t])
        << "table " << t << ": " << four->table_digests[t].Hex() << " vs "
        << one->table_digests[t].Hex();
  }
  EXPECT_EQ(four->node_seconds.size(), 4u);
}

TEST(SimClusterDigestTest, NodeCountSweepIsDigestInvariant) {
  SchemaDef schema = MakeClusterSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions options;
  options.worker_count = 3;
  options.work_package_rows = 41;
  auto reference = RunSimulatedCluster(**session, formatter, options, 1);
  ASSERT_TRUE(reference.ok());
  // 5 and 7 nodes split 1001 and 37 rows unevenly; 37 nodes give most
  // nodes exactly one "tiny" row and a few none at all.
  for (int nodes : {2, 5, 7, 37}) {
    auto run = RunSimulatedCluster(**session, formatter, options, nodes);
    ASSERT_TRUE(run.ok()) << "nodes=" << nodes;
    EXPECT_EQ(run->rows, reference->rows) << "nodes=" << nodes;
    for (size_t t = 0; t < reference->table_digests.size(); ++t) {
      EXPECT_TRUE(run->table_digests[t] == reference->table_digests[t])
          << "nodes=" << nodes << " table=" << t;
    }
  }
}

TEST(SimClusterDigestTest, StagedPipelineIsDigestInvariantAcrossNodes) {
  // The meta-scheduler split composes with the staged pipeline: striped
  // dispatch + async writer threads on every simulated node must merge
  // to the same digests as the inline atomic baseline.
  SchemaDef schema = MakeClusterSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;

  GenerationOptions baseline_options;
  baseline_options.worker_count = 2;
  baseline_options.work_package_rows = 97;
  baseline_options.writer_threads = 0;  // inline legacy path
  auto baseline =
      RunSimulatedCluster(**session, formatter, baseline_options, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  GenerationOptions staged_options = baseline_options;
  staged_options.scheduler = SchedulerKind::kStriped;
  staged_options.writer_threads = 2;
  for (int nodes : {1, 3, 5}) {
    auto run = RunSimulatedCluster(**session, formatter, staged_options,
                                   nodes);
    ASSERT_TRUE(run.ok()) << "nodes=" << nodes;
    EXPECT_EQ(run->rows, baseline->rows) << "nodes=" << nodes;
    for (size_t t = 0; t < baseline->table_digests.size(); ++t) {
      EXPECT_TRUE(run->table_digests[t] == baseline->table_digests[t])
          << "nodes=" << nodes << " table=" << t;
    }
  }
}

TEST(SimClusterDigestTest, SortedSinkPathMatchesNullSinkDigests) {
  // Route every node's output through sorted DigestingSinks; the
  // order-insensitive table digests must not care, and the per-node
  // stream digests must be reproducible run over run.
  SchemaDef schema = MakeClusterSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions options;
  options.worker_count = 4;
  options.work_package_rows = 53;
  options.sorted_output = true;

  auto null_run = RunSimulatedCluster(**session, formatter, options, 2);
  ASSERT_TRUE(null_run.ok());

  auto run_with_digesting_sinks = [&]() {
    SinkFactory factory =
        [](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
      return std::unique_ptr<Sink>(new DigestingSink());
    };
    return RunSimulatedCluster(**session, formatter, options, 2, factory);
  };
  auto digesting = run_with_digesting_sinks();
  ASSERT_TRUE(digesting.ok());
  for (size_t t = 0; t < null_run->table_digests.size(); ++t) {
    EXPECT_TRUE(digesting->table_digests[t] == null_run->table_digests[t])
        << "table " << t;
  }
  EXPECT_EQ(digesting->bytes, null_run->bytes);
}

TEST(SimClusterDigestTest, InvalidNodeCountRejected) {
  SchemaDef schema = MakeClusterSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  auto run =
      RunSimulatedCluster(**session, formatter, GenerationOptions{}, 0);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimClusterTest, ScaleOutShapeMatchesFigure4) {
  // Equal shares per node: N nodes cut the wall clock by N, so derived
  // throughput grows linearly in nodes — the Figure 4 line.
  const double total_work = 240.0;
  double throughput_1 = 0, throughput_8 = 0, throughput_24 = 0;
  for (int nodes : {1, 8, 24}) {
    std::vector<double> node_seconds(static_cast<size_t>(nodes),
                                     total_work / nodes);
    double wall = EstimateClusterWallClock(node_seconds);
    double throughput = total_work / wall;
    if (nodes == 1) throughput_1 = throughput;
    if (nodes == 8) throughput_8 = throughput;
    if (nodes == 24) throughput_24 = throughput;
  }
  EXPECT_NEAR(throughput_8 / throughput_1, 8.0, 1e-9);
  EXPECT_NEAR(throughput_24 / throughput_1, 24.0, 1e-9);
}

}  // namespace
}  // namespace pdgf
