// Tests for the update black box: abstract time units, per-update
// seeding and the update-stream generation mode (Figure 1's "Update RNG"
// level and [6]).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/generators/generators.h"
#include "core/session.h"
#include "util/strings.h"

namespace pdgf {
namespace {

SchemaDef MakeUpdatableSchema(double update_fraction = 0.2) {
  SchemaDef schema;
  schema.name = "updates";
  schema.seed = 77;

  TableDef table;
  table.name = "accounts";
  table.size_expression = "500";
  table.updates_expression = "4";
  table.update_fraction = update_fraction;

  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  // Keys never change across updates.
  id.mutable_across_updates = false;
  table.fields.push_back(std::move(id));

  FieldDef balance;
  balance.name = "balance";
  balance.type = DataType::kBigInt;
  balance.generator = GeneratorPtr(new LongGenerator(0, 1 << 30));
  balance.mutable_across_updates = true;
  table.fields.push_back(std::move(balance));

  FieldDef category;
  category.name = "category";
  category.type = DataType::kBigInt;
  category.generator = GeneratorPtr(new LongGenerator(0, 1 << 30));
  category.mutable_across_updates = false;
  table.fields.push_back(std::move(category));

  schema.tables.push_back(std::move(table));
  return schema;
}

TEST(UpdateTest, UpdateCountResolves) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->TableUpdates(0), 4u);
}

TEST(UpdateTest, ImmutableFieldsKeepBaseValues) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  Value base, updated;
  for (uint64_t row = 0; row < 100; ++row) {
    for (uint64_t update = 1; update < 4; ++update) {
      (*session)->GenerateField(0, 0, row, 0, &base);
      (*session)->GenerateField(0, 0, row, update, &updated);
      EXPECT_EQ(base, updated) << "id changed in update " << update;
      (*session)->GenerateField(0, 2, row, 0, &base);
      (*session)->GenerateField(0, 2, row, update, &updated);
      EXPECT_EQ(base, updated) << "category changed in update " << update;
    }
  }
}

TEST(UpdateTest, MutableFieldsChangeOnlyForSelectedRows) {
  SchemaDef schema = MakeUpdatableSchema(0.2);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  Value base, updated;
  int changed = 0;
  const uint64_t rows = 500;
  for (uint64_t row = 0; row < rows; ++row) {
    (*session)->GenerateField(0, 1, row, 0, &base);
    (*session)->GenerateField(0, 1, row, 1, &updated);
    bool selected = (*session)->RowChangesInUpdate(0, row, 1);
    if (selected) {
      // A 31-bit uniform redraw equals the old value with negligible odds.
      EXPECT_NE(base, updated) << "row " << row;
      ++changed;
    } else {
      // Point-in-time semantics: unselected rows keep their last value.
      EXPECT_EQ(base, updated) << "row " << row;
    }
  }
  EXPECT_NEAR(changed / static_cast<double>(rows), 0.2, 0.06);
}

TEST(UpdateTest, PointInTimeValuesComeFromLastSelectingUpdate) {
  SchemaDef schema = MakeUpdatableSchema(0.3);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  Value at_t, at_previous;
  for (uint64_t row = 0; row < 200; ++row) {
    for (uint64_t update = 1; update < 4; ++update) {
      (*session)->GenerateField(0, 1, row, update, &at_t);
      (*session)->GenerateField(0, 1, row, update - 1, &at_previous);
      if ((*session)->RowChangesInUpdate(0, row, update)) {
        EXPECT_NE(at_t, at_previous)
            << "row " << row << " update " << update;
      } else {
        EXPECT_EQ(at_t, at_previous)
            << "row " << row << " update " << update;
      }
    }
  }
}

TEST(UpdateTest, UpdateValuesAreDeterministic) {
  SchemaDef schema1 = MakeUpdatableSchema();
  SchemaDef schema2 = MakeUpdatableSchema();
  auto s1 = GenerationSession::Create(&schema1);
  auto s2 = GenerationSession::Create(&schema2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  Value v1, v2;
  for (uint64_t update = 0; update < 4; ++update) {
    for (uint64_t row = 0; row < 50; ++row) {
      (*s1)->GenerateField(0, 1, row, update, &v1);
      (*s2)->GenerateField(0, 1, row, update, &v2);
      EXPECT_EQ(v1, v2);
    }
  }
}

TEST(UpdateTest, RowSelectionMatchesFraction) {
  SchemaDef schema = MakeUpdatableSchema(0.2);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  int selected = 0;
  const uint64_t rows = 500;
  for (uint64_t row = 0; row < rows; ++row) {
    if ((*session)->RowChangesInUpdate(0, row, 1)) ++selected;
  }
  EXPECT_NEAR(selected / static_cast<double>(rows), 0.2, 0.06);
  // Different updates select different subsets.
  int overlap = 0;
  int first = 0;
  for (uint64_t row = 0; row < rows; ++row) {
    bool u1 = (*session)->RowChangesInUpdate(0, row, 1);
    bool u2 = (*session)->RowChangesInUpdate(0, row, 2);
    if (u1) ++first;
    if (u1 && u2) ++overlap;
  }
  EXPECT_LT(overlap, first);  // not the identical subset
}

TEST(UpdateTest, FractionBoundaries) {
  SchemaDef all = MakeUpdatableSchema(1.0);
  auto session_all = GenerationSession::Create(&all);
  ASSERT_TRUE(session_all.ok());
  SchemaDef none = MakeUpdatableSchema(0.0);
  auto session_none = GenerationSession::Create(&none);
  ASSERT_TRUE(session_none.ok());
  for (uint64_t row = 0; row < 100; ++row) {
    EXPECT_TRUE((*session_all)->RowChangesInUpdate(0, row, 3));
    EXPECT_FALSE((*session_none)->RowChangesInUpdate(0, row, 3));
    // Update 0 is the base data: always "present".
    EXPECT_TRUE((*session_none)->RowChangesInUpdate(0, row, 0));
  }
}

TEST(UpdateTest, UpdateStreamContainsOnlySelectedRows) {
  SchemaDef schema = MakeUpdatableSchema(0.1);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  auto base = GenerateTableToString(**session, 0, formatter, 0);
  ASSERT_TRUE(base.ok());
  auto stream = GenerateTableToString(**session, 0, formatter, 2);
  ASSERT_TRUE(stream.ok());
  size_t base_rows = Split(*base, '\n').size() - 1;
  size_t stream_rows = Split(*stream, '\n').size() - 1;
  EXPECT_EQ(base_rows, 500u);
  EXPECT_LT(stream_rows, 100u);
  EXPECT_GT(stream_rows, 10u);
  // Every streamed row's id exists in the base data and is selected.
  for (const std::string& line : Split(*stream, '\n')) {
    if (line.empty()) continue;
    int64_t id = std::strtoll(line.c_str(), nullptr, 10);
    EXPECT_GE(id, 1);
    EXPECT_LE(id, 500);
    EXPECT_TRUE(
        (*session)->RowChangesInUpdate(0, static_cast<uint64_t>(id - 1), 2));
  }
}

TEST(UpdateTest, UpdateStreamsPartitionAcrossNodes) {
  // The meta-scheduler composes with update mode: concatenating every
  // node's update-stream chunk reproduces the whole stream.
  SchemaDef schema = MakeUpdatableSchema(0.3);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  auto whole = GenerateTableToString(**session, 0, formatter, 2);
  ASSERT_TRUE(whole.ok());

  std::string stitched;
  for (int node = 0; node < 3; ++node) {
    std::string chunk;
    SinkFactory factory =
        [&chunk](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
      class Capture : public Sink {
       public:
        explicit Capture(std::string* out) : out_(out) {}
        Status Write(std::string_view data) override {
          out_->append(data);
          return Status::Ok();
        }

       private:
        std::string* out_;
      };
      return std::unique_ptr<Sink>(new Capture(&chunk));
    };
    GenerationOptions options;
    options.update = 2;
    options.node_count = 3;
    options.node_id = node;
    options.work_package_rows = 29;
    options.worker_count = 2;
    GenerationEngine engine(&**session, &formatter, factory, options);
    ASSERT_TRUE(engine.Run().ok());
    stitched += chunk;
  }
  EXPECT_EQ(stitched, *whole);
}

TEST(UpdateTest, EngineUpdateModeMatchesDirectGeneration) {
  SchemaDef schema = MakeUpdatableSchema(0.3);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  auto direct = GenerateTableToString(**session, 0, formatter, 3);
  ASSERT_TRUE(direct.ok());

  std::string captured;
  SinkFactory factory =
      [&captured](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
    class Capture : public Sink {
     public:
      explicit Capture(std::string* out) : out_(out) {}
      Status Write(std::string_view data) override {
        out_->append(data);
        return Status::Ok();
      }

     private:
      std::string* out_;
    };
    return std::unique_ptr<Sink>(new Capture(&captured));
  };
  GenerationOptions options;
  options.update = 3;
  options.worker_count = 4;
  options.work_package_rows = 13;
  GenerationEngine engine(&**session, &formatter, factory, options);
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(captured, *direct);
}

}  // namespace
}  // namespace pdgf
