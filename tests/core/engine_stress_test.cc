// Engine stress and edge-condition tests: degenerate table sizes, many
// tables, extreme package sizes, and oversubscribed worker counts.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/generators/generators.h"
#include "util/strings.h"

namespace pdgf {
namespace {

// N tables with sizes 0, 1, 2, ..., N-1.
SchemaDef MakeManyTables(int table_count) {
  SchemaDef schema;
  schema.name = "stress";
  schema.seed = 3;
  for (int t = 0; t < table_count; ++t) {
    TableDef table;
    table.name = "t" + std::to_string(t);
    table.size_expression = std::to_string(t);
    FieldDef field;
    field.name = "v";
    field.type = DataType::kBigInt;
    field.generator = GeneratorPtr(new IdGenerator(1, 1));
    table.fields.push_back(std::move(field));
    schema.tables.push_back(std::move(table));
  }
  return schema;
}

TEST(EngineStressTest, EmptyAndTinyTables) {
  SchemaDef schema = MakeManyTables(20);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions options;
  options.worker_count = 4;
  options.work_package_rows = 3;
  auto stats = GenerateToNull(**session, formatter, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Sum of 0..19 = 190 rows.
  EXPECT_EQ(stats->rows, 190u);
}

TEST(EngineStressTest, EmptySchemaTableProducesHeaderOnly) {
  SchemaDef schema = MakeManyTables(1);  // one table with 0 rows
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  XmlFormatter formatter;  // has header/footer
  auto output = GenerateTableToString(**session, 0, formatter);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(*output, "<table name=\"t0\">\n</table>\n");
}

TEST(EngineStressTest, PackageLargerThanEveryTable) {
  SchemaDef schema = MakeManyTables(6);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions options;
  options.work_package_rows = 1000000;
  options.worker_count = 8;
  auto stats = GenerateToNull(**session, formatter, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 15u);
  EXPECT_EQ(stats->packages, 5u);  // t0 is empty -> no package
}

TEST(EngineStressTest, WorkersFarExceedPackages) {
  SchemaDef schema = MakeManyTables(3);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions options;
  options.worker_count = 64;
  options.work_package_rows = 1;
  auto stats = GenerateToNull(**session, formatter, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 3u);
}

TEST(EngineStressTest, ZeroAndNegativeOptionValuesAreClamped) {
  SchemaDef schema = MakeManyTables(4);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  // worker_count < 1 is a configuration error, not something to clamp
  // silently (see engine_test.cc InvalidWorkerCountIsRejected)...
  GenerationOptions bad;
  bad.worker_count = 0;
  auto rejected = GenerateToNull(**session, formatter, bad);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  // ...but a zero package size is still clamped to a usable minimum.
  GenerationOptions options;
  options.worker_count = 1;
  options.work_package_rows = 0;
  auto stats = GenerateToNull(**session, formatter, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 6u);
}

TEST(EngineStressTest, NodeIdOutOfRangeClamps) {
  SchemaDef schema = MakeManyTables(4);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  uint64_t begin = 0;
  uint64_t end = 0;
  NodeShare(100, 4, 7, &begin, &end);   // node id beyond count
  EXPECT_EQ(begin, 75u);
  EXPECT_EQ(end, 100u);
  NodeShare(100, 0, 0, &begin, &end);   // zero nodes
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 100u);
  NodeShare(100, 4, -2, &begin, &end);  // negative id
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 25u);
}

TEST(EngineStressTest, WideRowsWithEveryValueKind) {
  SchemaDef schema;
  schema.name = "wide";
  schema.seed = 8;
  TableDef table;
  table.name = "wide";
  table.size_expression = "200";
  struct Spec {
    const char* name;
    DataType type;
    Generator* generator;
  };
  const Spec specs[] = {
      {"f_id", DataType::kBigInt, new IdGenerator()},
      {"f_long", DataType::kBigInt, new LongGenerator(-100, 100)},
      {"f_double", DataType::kDouble, new DoubleGenerator(0, 1)},
      {"f_decimal", DataType::kDecimal, new DoubleGenerator(0, 10, 2)},
      {"f_date", DataType::kDate,
       new DateGenerator(Date::FromCivil(2000, 1, 1),
                         Date::FromCivil(2001, 1, 1))},
      {"f_bool", DataType::kBoolean, new BooleanGenerator(0.5)},
      {"f_string", DataType::kVarchar, new RandomStringGenerator(1, 30)},
      {"f_null", DataType::kVarchar,
       new NullGenerator(1.0, GeneratorPtr(new IdGenerator()))},
  };
  for (const Spec& spec : specs) {
    FieldDef field;
    field.name = spec.name;
    field.type = spec.type;
    field.generator = GeneratorPtr(spec.generator);
    table.fields.push_back(std::move(field));
  }
  schema.tables.push_back(std::move(table));

  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  // Every formatter handles every kind without error.
  for (const char* format : {"csv", "tsv", "json", "xml", "sql"}) {
    auto formatter = MakeFormatter(format);
    ASSERT_TRUE(formatter.ok());
    auto output = GenerateTableToString(**session, 0, **formatter);
    ASSERT_TRUE(output.ok()) << format;
    EXPECT_GT(output->size(), 200u * 8) << format;
  }
}

TEST(EngineStressTest, RepeatedRunsOnSameSessionAreIndependent) {
  SchemaDef schema = MakeManyTables(5);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions options;
  options.worker_count = 2;
  for (int run = 0; run < 5; ++run) {
    auto stats = GenerateToNull(**session, formatter, options);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->rows, 10u);
  }
}

}  // namespace
}  // namespace pdgf
