#include "core/config.h"

#include <gtest/gtest.h>

#include "core/generators/generators.h"
#include "core/session.h"
#include "util/strings.h"
#include "core/text/markov_model.h"
#include "util/files.h"

namespace pdgf {
namespace {

// A config in the shape of the paper's Listing 1.
constexpr const char* kListing1 = R"xml(<?xml version="1.0" encoding="UTF-8"?>
<schema name="tpch">
  <seed>12456789</seed>
  <rng name="PdgfDefaultRandom"></rng>
  <property name="SF" type="double">1</property>
  <property name="lineitem_size" type="double">6000000 * ${SF}</property>
  <table name="lineitem">
    <size>${lineitem_size}</size>
    <field name="l_orderkey" size="19" type="BIGINT" primary="true">
      <gen_IdGenerator></gen_IdGenerator>
    </field>
    <field name="l_partkey" size="19" type="BIGINT" primary="false">
      <gen_DefaultReferenceGenerator>
        <reference table="partsupp" field="ps_partkey"></reference>
      </gen_DefaultReferenceGenerator>
    </field>
    <field name="l_comment" size="44" type="VARCHAR" primary="false">
      <gen_NullGenerator probability="0.0">
        <gen_MarkovChainGenerator>
          <min>1</min>
          <max>10</max>
        </gen_MarkovChainGenerator>
      </gen_NullGenerator>
    </field>
  </table>
  <table name="partsupp">
    <size>800000 * ${SF}</size>
    <field name="ps_partkey" size="19" type="BIGINT" primary="true">
      <gen_IdGenerator/>
    </field>
  </table>
</schema>
)xml";

TEST(ConfigTest, ParsesListing1Shape) {
  auto schema = LoadSchemaFromXml(kListing1);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->name, "tpch");
  EXPECT_EQ(schema->seed, 12456789u);
  EXPECT_EQ(schema->rng_name, "PdgfDefaultRandom");
  ASSERT_EQ(schema->properties.size(), 2u);
  EXPECT_EQ(schema->properties[1].expression, "6000000 * ${SF}");
  ASSERT_EQ(schema->tables.size(), 2u);
  const TableDef& lineitem = schema->tables[0];
  EXPECT_EQ(lineitem.size_expression, "${lineitem_size}");
  ASSERT_EQ(lineitem.fields.size(), 3u);
  EXPECT_EQ(lineitem.fields[0].name, "l_orderkey");
  EXPECT_TRUE(lineitem.fields[0].primary);
  EXPECT_EQ(lineitem.fields[0].type, DataType::kBigInt);
  EXPECT_EQ(lineitem.fields[0].size, 19);
  EXPECT_EQ(lineitem.fields[0].generator->ConfigName(), "gen_IdGenerator");
  EXPECT_EQ(lineitem.fields[1].generator->ConfigName(),
            "gen_DefaultReferenceGenerator");
  EXPECT_EQ(lineitem.fields[2].generator->ConfigName(), "gen_NullGenerator");
}

TEST(ConfigTest, ParsedModelGenerates) {
  auto schema = LoadSchemaFromXml(kListing1);
  ASSERT_TRUE(schema.ok());
  // Shrink via override so the test stays fast.
  auto session = GenerationSession::Create(&*schema, {{"SF", "0.00001"}});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ((*session)->TableRows(0), 60u);
  std::vector<Value> row;
  (*session)->GenerateRow(0, 0, 0, &row);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].int_value(), 1);
  EXPECT_FALSE(row[2].is_null());
  EXPECT_EQ(row[2].kind(), Value::Kind::kString);
}

TEST(ConfigTest, RoundTripThroughXml) {
  auto schema = LoadSchemaFromXml(kListing1);
  ASSERT_TRUE(schema.ok());
  std::string xml = SchemaToXml(*schema);
  auto reparsed = LoadSchemaFromXml(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->name, schema->name);
  EXPECT_EQ(reparsed->seed, schema->seed);
  ASSERT_EQ(reparsed->tables.size(), schema->tables.size());
  for (size_t t = 0; t < schema->tables.size(); ++t) {
    const TableDef& a = schema->tables[t];
    const TableDef& b = reparsed->tables[t];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.size_expression, b.size_expression);
    ASSERT_EQ(a.fields.size(), b.fields.size());
    for (size_t f = 0; f < a.fields.size(); ++f) {
      EXPECT_EQ(a.fields[f].name, b.fields[f].name);
      EXPECT_EQ(a.fields[f].type, b.fields[f].type);
      EXPECT_EQ(a.fields[f].primary, b.fields[f].primary);
      EXPECT_EQ(a.fields[f].generator->ConfigName(),
                b.fields[f].generator->ConfigName());
    }
  }
}

TEST(ConfigTest, RoundTripPreservesGeneratedValues) {
  auto schema = LoadSchemaFromXml(kListing1);
  ASSERT_TRUE(schema.ok());
  auto reparsed = LoadSchemaFromXml(SchemaToXml(*schema));
  ASSERT_TRUE(reparsed.ok());
  auto s1 = GenerationSession::Create(&*schema, {{"SF", "0.00001"}});
  auto s2 = GenerationSession::Create(&*reparsed, {{"SF", "0.00001"}});
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  std::vector<Value> r1, r2;
  for (uint64_t row = 0; row < 20; ++row) {
    (*s1)->GenerateRow(0, row, 0, &r1);
    (*s2)->GenerateRow(0, row, 0, &r2);
    ASSERT_EQ(r1.size(), r2.size());
    for (size_t f = 0; f < 2; ++f) {  // deterministic fields
      EXPECT_EQ(r1[f], r2[f]) << "row " << row << " field " << f;
    }
  }
}

TEST(ConfigTest, RejectsBrokenModels) {
  EXPECT_FALSE(LoadSchemaFromXml("<notschema/>").ok());
  EXPECT_FALSE(LoadSchemaFromXml("<schema name=\"x\"></schema>").ok());
  // Table without fields.
  EXPECT_FALSE(
      LoadSchemaFromXml("<schema><table name=\"t\"><size>1</size></table>"
                        "</schema>")
          .ok());
  // Field without generator.
  EXPECT_FALSE(LoadSchemaFromXml("<schema><table name=\"t\"><size>1</size>"
                                 "<field name=\"f\" type=\"BIGINT\"/>"
                                 "</table></schema>")
                   .ok());
  // Unknown type.
  EXPECT_FALSE(
      LoadSchemaFromXml("<schema><table name=\"t\"><size>1</size>"
                        "<field name=\"f\" type=\"BLOB\"><gen_IdGenerator/>"
                        "</field></table></schema>")
          .ok());
  // Duplicate table.
  EXPECT_FALSE(LoadSchemaFromXml(
                   "<schema><table name=\"t\"><size>1</size>"
                   "<field name=\"f\" type=\"BIGINT\"><gen_IdGenerator/>"
                   "</field></table><table name=\"t\"><size>1</size>"
                   "<field name=\"f\" type=\"BIGINT\"><gen_IdGenerator/>"
                   "</field></table></schema>")
                   .ok());
  // Unknown rng.
  EXPECT_FALSE(
      LoadSchemaFromXml("<schema><rng name=\"MT19937\"/><table name=\"t\">"
                        "<size>1</size><field name=\"f\" type=\"BIGINT\">"
                        "<gen_IdGenerator/></field></table></schema>")
          .ok());
}

TEST(ConfigTest, FileRoundTripWithArtifacts) {
  auto dir = MakeTempDir("pdgf_config_");
  ASSERT_TRUE(dir.ok());
  // Train and save a Markov model next to the config file.
  MarkovModel model;
  model.AddSample("red green blue. red blue green.");
  model.Finalize();
  ASSERT_TRUE(model.Save(JoinPath(*dir, "colors.bin")).ok());

  std::string config_xml =
      "<schema name=\"m\"><seed>1</seed>"
      "<table name=\"t\"><size>5</size>"
      "<field name=\"c\" type=\"VARCHAR\">"
      "<gen_MarkovChainGenerator><min>2</min><max>4</max>"
      "<file>colors.bin</file></gen_MarkovChainGenerator>"
      "</field></table></schema>";
  std::string config_path = JoinPath(*dir, "model.xml");
  ASSERT_TRUE(WriteStringToFile(config_path, config_xml).ok());

  // Relative artifact paths resolve against the config's directory.
  auto schema = LoadSchemaFromFile(config_path);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto session = GenerationSession::Create(&*schema);
  ASSERT_TRUE(session.ok());
  Value value;
  (*session)->GenerateField(0, 0, 0, 0, &value);
  ASSERT_FALSE(value.is_null());
  // Generated words come from the trained model's vocabulary.
  for (const std::string& word : SplitWhitespace(value.string_value())) {
    EXPECT_TRUE(word == "red" || word == "green" || word == "blue") << word;
  }
}

TEST(ConfigTest, GeneratorRegistryKnowsAllBuiltins) {
  GeneratorRegistry& registry = GeneratorRegistry::Global();
  for (const char* name :
       {"gen_IdGenerator", "gen_LongGenerator", "gen_DoubleGenerator",
        "gen_DateGenerator", "gen_RandomStringGenerator",
        "gen_PatternStringGenerator", "gen_StaticValueGenerator",
        "gen_BooleanGenerator", "gen_DictListGenerator", "gen_NameGenerator",
        "gen_AddressGenerator", "gen_EmailGenerator", "gen_UrlGenerator",
        "gen_DefaultReferenceGenerator", "gen_NullGenerator",
        "gen_SequentialGenerator", "gen_ConditionalGenerator",
        "gen_PaddingGenerator", "gen_FormulaGenerator",
        "gen_MarkovChainGenerator"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_GE(registry.Names().size(), 20u);
}

}  // namespace
}  // namespace pdgf
