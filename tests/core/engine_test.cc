#include "core/engine.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "core/generators/generators.h"
#include "util/files.h"
#include "util/strings.h"

namespace pdgf {
namespace {

// Two tables: 1000 rows and 123 rows, mixed types.
SchemaDef MakeSchema() {
  SchemaDef schema;
  schema.name = "engine";
  schema.seed = 11;

  TableDef big;
  big.name = "big";
  big.size_expression = "1000";
  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  big.fields.push_back(std::move(id));
  FieldDef payload;
  payload.name = "payload";
  payload.type = DataType::kVarchar;
  payload.generator = GeneratorPtr(new RandomStringGenerator(5, 20));
  big.fields.push_back(std::move(payload));
  schema.tables.push_back(std::move(big));

  TableDef small;
  small.name = "small";
  small.size_expression = "123";
  FieldDef value;
  value.name = "value";
  value.type = DataType::kBigInt;
  value.generator = GeneratorPtr(new LongGenerator(0, 99));
  small.fields.push_back(std::move(value));
  schema.tables.push_back(std::move(small));
  return schema;
}

// A sink writing into an external string that outlives the engine (the
// engine owns and destroys its sinks when Run() finishes).
class CaptureSink final : public Sink {
 public:
  explicit CaptureSink(std::string* out) : out_(out) {}

  Status Write(std::string_view data) override {
    out_->append(data);
    return Status::Ok();
  }

 private:
  std::string* out_;
};

// Runs the engine into per-table capture buffers.
std::map<std::string, std::string> RunToMemory(
    const GenerationSession& session, GenerationOptions options,
    const RowFormatter& formatter) {
  std::map<std::string, std::string> outputs;
  SinkFactory factory =
      [&outputs](const TableDef& table) -> StatusOr<std::unique_ptr<Sink>> {
    return std::unique_ptr<Sink>(new CaptureSink(&outputs[table.name]));
  };
  GenerationEngine engine(&session, &formatter, factory, options);
  Status status = engine.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  return outputs;
}

TEST(EngineTest, GeneratesAllRowsSingleThreaded) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions options;
  options.work_package_rows = 64;
  auto outputs = RunToMemory(**session, options, formatter);
  EXPECT_EQ(Split(outputs["big"], '\n').size() - 1, 1000u);
  EXPECT_EQ(Split(outputs["small"], '\n').size() - 1, 123u);
  // Sorted output: row ids are in order.
  auto lines = Split(outputs["big"], '\n');
  EXPECT_TRUE(StartsWith(lines[0], "1|"));
  EXPECT_TRUE(StartsWith(lines[499], "500|"));
  EXPECT_TRUE(StartsWith(lines[999], "1000|"));
}

// The core PDGF property: output is byte-identical for any worker count
// and any package size (paper §2: repeatable, parallel generation).
class EngineDeterminismTest
    : public ::testing::TestWithParam<std::pair<int, uint64_t>> {};

TEST_P(EngineDeterminismTest, OutputIndependentOfParallelism) {
  auto [workers, package_rows] = GetParam();
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;

  GenerationOptions reference_options;
  reference_options.worker_count = 1;
  reference_options.work_package_rows = 1000000;  // one package per table
  auto reference = RunToMemory(**session, reference_options, formatter);

  GenerationOptions options;
  options.worker_count = workers;
  options.work_package_rows = package_rows;
  auto outputs = RunToMemory(**session, options, formatter);

  EXPECT_EQ(outputs["big"], reference["big"]);
  EXPECT_EQ(outputs["small"], reference["small"]);
}

INSTANTIATE_TEST_SUITE_P(
    WorkerAndPackageSweep, EngineDeterminismTest,
    ::testing::Values(std::pair<int, uint64_t>{1, 7},
                      std::pair<int, uint64_t>{2, 64},
                      std::pair<int, uint64_t>{4, 100},
                      std::pair<int, uint64_t>{8, 1},
                      std::pair<int, uint64_t>{3, 999},
                      std::pair<int, uint64_t>{16, 13}));

TEST(EngineTest, NodePartitionsCoverExactlyTheDataSet) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;

  GenerationOptions whole_options;
  whole_options.work_package_rows = 50;
  auto whole = RunToMemory(**session, whole_options, formatter);

  // Concatenating every node's share must reproduce the whole file.
  const int nodes = 4;
  std::string big_concat, small_concat;
  for (int node = 0; node < nodes; ++node) {
    GenerationOptions options;
    options.node_count = nodes;
    options.node_id = node;
    options.work_package_rows = 37;
    options.worker_count = 2;
    auto part = RunToMemory(**session, options, formatter);
    big_concat += part["big"];
    small_concat += part["small"];
  }
  EXPECT_EQ(big_concat, whole["big"]);
  EXPECT_EQ(small_concat, whole["small"]);
}

TEST(NodeShareTest, SharesPartitionWithoutGapsOrOverlap) {
  for (uint64_t rows : {0ULL, 1ULL, 7ULL, 1000ULL, 999983ULL}) {
    for (int nodes : {1, 2, 3, 24}) {
      uint64_t covered = 0;
      uint64_t previous_end = 0;
      for (int node = 0; node < nodes; ++node) {
        uint64_t begin, end;
        NodeShare(rows, nodes, node, &begin, &end);
        EXPECT_EQ(begin, previous_end);
        EXPECT_LE(begin, end);
        covered += end - begin;
        previous_end = end;
      }
      EXPECT_EQ(covered, rows);
      EXPECT_EQ(previous_end, rows);
    }
  }
}

TEST(EngineTest, UnsortedModeContainsSameRows) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;

  GenerationOptions sorted_options;
  sorted_options.work_package_rows = 50;
  sorted_options.worker_count = 4;
  auto sorted = RunToMemory(**session, sorted_options, formatter);

  GenerationOptions unsorted_options = sorted_options;
  unsorted_options.sorted_output = false;
  auto unsorted = RunToMemory(**session, unsorted_options, formatter);

  auto sorted_lines = Split(sorted["big"], '\n');
  auto unsorted_lines = Split(unsorted["big"], '\n');
  std::sort(sorted_lines.begin(), sorted_lines.end());
  std::sort(unsorted_lines.begin(), unsorted_lines.end());
  EXPECT_EQ(sorted_lines, unsorted_lines);
}

TEST(EngineTest, StatsAreConsistent) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  auto stats = GenerateToNull(**session, formatter, GenerationOptions{});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 1123u);
  EXPECT_GT(stats->bytes, 1123u * 3);
  EXPECT_GT(stats->seconds, 0.0);
  EXPECT_GT(stats->megabytes_per_second, 0.0);
}

TEST(EngineTest, GenerateToDirectoryWritesFiles) {
  auto dir = MakeTempDir("pdgf_engine_");
  ASSERT_TRUE(dir.ok());
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions options;
  options.worker_count = 2;
  options.work_package_rows = 100;
  auto stats =
      GenerateToDirectory(**session, formatter, JoinPath(*dir, "out"),
                          options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto big = ReadFileToString(JoinPath(*dir, "out/big.csv"));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(Split(*big, '\n').size() - 1, 1000u);
  EXPECT_TRUE(PathExists(JoinPath(*dir, "out/small.csv")));
  auto size = FileSize(JoinPath(*dir, "out/big.csv"));
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, 0);
}

TEST(EngineTest, MultiNodeRunsWriteChunkFiles) {
  // All nodes can share one output directory: each writes
  // "<table>.<ext>.<node>", and the concatenated chunks equal the
  // single-node file (dbgen's non-transparent layout, but deterministic).
  auto dir = MakeTempDir("pdgf_engine_nodes_");
  ASSERT_TRUE(dir.ok());
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;

  GenerationOptions whole;
  auto whole_stats = GenerateToDirectory(**session, formatter,
                                         JoinPath(*dir, "whole"), whole);
  ASSERT_TRUE(whole_stats.ok());

  std::string stitched;
  for (int node = 0; node < 3; ++node) {
    GenerationOptions options;
    options.node_count = 3;
    options.node_id = node;
    auto stats = GenerateToDirectory(**session, formatter,
                                     JoinPath(*dir, "chunks"), options);
    ASSERT_TRUE(stats.ok());
    auto chunk = ReadFileToString(JoinPath(
        *dir, "chunks/big.csv." + std::to_string(node + 1)));
    ASSERT_TRUE(chunk.ok());
    stitched += *chunk;
  }
  auto whole_file = ReadFileToString(JoinPath(*dir, "whole/big.csv"));
  ASSERT_TRUE(whole_file.ok());
  EXPECT_EQ(stitched, *whole_file);
}

TEST(EngineTest, SinkFailurePropagates) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;

  // A sink that fails after the first write.
  class FailingSink : public Sink {
   public:
    Status Write(std::string_view data) override {
      (void)data;
      if (++writes_ > 1) return IoError("disk full (injected)");
      return Status::Ok();
    }

   private:
    int writes_ = 0;
  };

  SinkFactory factory =
      [](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
    return std::unique_ptr<Sink>(new FailingSink());
  };
  GenerationOptions options;
  options.work_package_rows = 10;
  options.worker_count = 2;
  GenerationEngine engine(&**session, &formatter, factory, options);
  Status status = engine.Run();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(EngineTest, InvalidWorkerCountIsRejected) {
  // worker_count < 1 used to be silently clamped to 1; it is now an
  // explicit InvalidArgument before any sink is opened, so callers learn
  // about broken configuration instead of silently running sequentially.
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  for (int workers : {0, -1, -8}) {
    int sinks_created = 0;
    SinkFactory factory =
        [&sinks_created](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
      ++sinks_created;
      return std::unique_ptr<Sink>(new NullSink());
    };
    GenerationOptions options;
    options.worker_count = workers;
    GenerationEngine engine(&**session, &formatter, factory, options);
    Status status = engine.Run();
    EXPECT_FALSE(status.ok()) << "workers=" << workers;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(sinks_created, 0) << "workers=" << workers;
  }
}

TEST(EngineTest, ProgressTrackerSeesAllRows) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  ProgressTracker progress({"big", "small"}, {1000, 123});
  GenerationOptions options;
  options.worker_count = 2;
  options.work_package_rows = 100;
  auto stats = GenerateToNull(**session, formatter, options, &progress);
  ASSERT_TRUE(stats.ok());
  auto snapshot = progress.TakeSnapshot();
  EXPECT_EQ(snapshot.rows_done, 1123u);
  EXPECT_DOUBLE_EQ(snapshot.fraction, 1.0);
  EXPECT_EQ(snapshot.tables[0].rows_done, 1000u);
  EXPECT_EQ(snapshot.tables[1].rows_done, 123u);
}

TEST(EngineTest, GenerateTableToStringMatchesEngine) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  auto direct = GenerateTableToString(**session, 0, formatter);
  ASSERT_TRUE(direct.ok());
  GenerationOptions options;
  options.worker_count = 3;
  options.work_package_rows = 11;
  auto outputs = RunToMemory(**session, options, formatter);
  EXPECT_EQ(*direct, outputs["big"]);
}

}  // namespace
}  // namespace pdgf
