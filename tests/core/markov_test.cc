#include "core/text/markov_model.h"

#include <gtest/gtest.h>

#include "core/text/builtin_dictionaries.h"
#include "util/files.h"
#include "util/strings.h"

namespace pdgf {
namespace {

MarkovModel TrainTiny() {
  MarkovModel model;
  model.AddSample("the cat sleeps. the dog sleeps. the cat runs.");
  model.Finalize();
  return model;
}

TEST(MarkovModelTest, LearnsVocabularyAndStartStates) {
  MarkovModel model = TrainTiny();
  // Words: the, cat, sleeps, dog, runs.
  EXPECT_EQ(model.word_count(), 5u);
  // Every sentence starts with "the".
  EXPECT_EQ(model.start_state_count(), 1u);
  // Transitions: the->cat (x2), the->dog, cat->sleeps, cat->runs,
  // dog->sleeps.
  EXPECT_EQ(model.transition_count(), 5u);
}

TEST(MarkovModelTest, TransitionProbabilities) {
  MarkovModel model = TrainTiny();
  // "the" is followed by cat twice and dog once.
  EXPECT_NEAR(model.TransitionProbability("the", "cat"), 2.0 / 3, 1e-12);
  EXPECT_NEAR(model.TransitionProbability("the", "dog"), 1.0 / 3, 1e-12);
  // "sleeps" always ends the sentence: no outgoing word transitions.
  EXPECT_DOUBLE_EQ(model.TransitionProbability("sleeps", "the"), 0.0);
  // "cat" splits between sleeps and runs, weighted against its end count.
  EXPECT_NEAR(model.TransitionProbability("cat", "sleeps"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(model.TransitionProbability("unknown", "cat"), 0.0);
}

TEST(MarkovModelTest, GenerateRespectsWordBounds) {
  MarkovModel model = TrainTiny();
  Xorshift64 rng(5);
  for (int i = 0; i < 200; ++i) {
    std::string text = model.Generate(&rng, 3, 8);
    size_t words = SplitWhitespace(text).size();
    EXPECT_GE(words, 3u) << text;
    EXPECT_LE(words, 8u) << text;
  }
}

TEST(MarkovModelTest, GeneratedWordsComeFromVocabulary) {
  MarkovModel model = TrainTiny();
  Xorshift64 rng(6);
  std::string text = model.Generate(&rng, 50, 50);
  for (const std::string& word : SplitWhitespace(text)) {
    EXPECT_TRUE(word == "the" || word == "cat" || word == "dog" ||
                word == "sleeps" || word == "runs")
        << word;
  }
}

TEST(MarkovModelTest, GeneratedBigramsAreObservedBigrams) {
  // Chain property: every adjacent pair within a sentence must have been
  // seen in training (restart boundaries can produce unseen pairs, so we
  // only check pairs whose first word has outgoing transitions).
  MarkovModel model = TrainTiny();
  Xorshift64 rng(7);
  std::string text = model.Generate(&rng, 30, 30);
  auto words = SplitWhitespace(text);
  for (size_t i = 0; i + 1 < words.size(); ++i) {
    if (words[i] == "sleeps" || words[i] == "runs") continue;  // restarts
    EXPECT_GT(model.TransitionProbability(words[i], words[i + 1]), 0.0)
        << words[i] << " -> " << words[i + 1];
  }
}

TEST(MarkovModelTest, DeterministicPerSeed) {
  MarkovModel model = TrainTiny();
  Xorshift64 rng1(42);
  Xorshift64 rng2(42);
  EXPECT_EQ(model.Generate(&rng1, 5, 10), model.Generate(&rng2, 5, 10));
  Xorshift64 rng3(43);
  // Different seeds should (w.h.p.) differ over many draws.
  bool any_difference = false;
  for (int i = 0; i < 20 && !any_difference; ++i) {
    any_difference =
        model.Generate(&rng1, 5, 10) != model.Generate(&rng3, 5, 10);
  }
  EXPECT_TRUE(any_difference);
}

TEST(MarkovModelTest, EmptyAndDegenerateInputs) {
  MarkovModel empty;
  empty.Finalize();
  Xorshift64 rng(1);
  EXPECT_EQ(empty.Generate(&rng, 1, 5), "");

  MarkovModel single;
  single.AddSample("word");
  single.Finalize();
  EXPECT_EQ(single.word_count(), 1u);
  std::string text = single.Generate(&rng, 3, 3);
  EXPECT_EQ(text, "word word word");
}

TEST(MarkovModelTest, SerializationRoundTrip) {
  MarkovModel model;
  model.AddSample(BuiltinCommentCorpus());
  model.Finalize();
  std::string serialized = model.SerializeToString();
  auto loaded = MarkovModel::ParseFromString(serialized);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->word_count(), model.word_count());
  EXPECT_EQ(loaded->start_state_count(), model.start_state_count());
  EXPECT_EQ(loaded->transition_count(), model.transition_count());
  // Identical sampling behaviour.
  Xorshift64 rng1(99);
  Xorshift64 rng2(99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model.Generate(&rng1, 2, 12), loaded->Generate(&rng2, 2, 12));
  }
}

TEST(MarkovModelTest, FileRoundTrip) {
  auto dir = MakeTempDir("pdgf_markov_");
  ASSERT_TRUE(dir.ok());
  std::string path = JoinPath(*dir, "l_comment_markovSamples.bin");
  MarkovModel model = TrainTiny();
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = MarkovModel::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->word_count(), 5u);
}

TEST(MarkovModelTest, ParseRejectsCorruptData) {
  EXPECT_FALSE(MarkovModel::ParseFromString("").ok());
  EXPECT_FALSE(MarkovModel::ParseFromString("NOTMAGIC").ok());
  MarkovModel model = TrainTiny();
  std::string serialized = model.SerializeToString();
  // Truncation at any point after the magic must be detected.
  EXPECT_FALSE(
      MarkovModel::ParseFromString(serialized.substr(0, serialized.size() / 2))
          .ok());
  // Trailing garbage must be detected.
  EXPECT_FALSE(MarkovModel::ParseFromString(serialized + "x").ok());
}

TEST(MarkovModelTest, BuiltinCorpusModelHasPaperLikeShape) {
  // The paper reports ~1500 words / 95 start states for TPC-H comments;
  // our corpus is smaller but must have a nontrivial chain.
  MarkovModel model;
  model.AddSample(BuiltinCommentCorpus());
  model.Finalize();
  EXPECT_GT(model.word_count(), 50u);
  EXPECT_GT(model.start_state_count(), 10u);
  EXPECT_GT(model.transition_count(), model.word_count());
}

}  // namespace
}  // namespace pdgf
