// UpdateStreamGenerator (CDC) suite: replayable-by-construction event
// streams over the update black box. Replay determinism is the paper's
// repeatability property lifted to change-data-capture: the same
// (model, SF, table, options) must yield the same event lines in the
// same order, regardless of how the consumer chunks its reads.

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/generators/generators.h"
#include "core/output/formatter.h"
#include "core/session.h"
#include "core/stream.h"
#include "util/hash.h"
#include "util/strings.h"
#include "workloads/tpch.h"

namespace pdgf {
namespace {

SchemaDef MakeUpdatableSchema() {
  SchemaDef schema;
  schema.name = "cdc";
  schema.seed = 77;

  TableDef table;
  table.name = "accounts";
  table.size_expression = "200";
  table.updates_expression = "4";
  table.update_fraction = 0.25;

  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  id.mutable_across_updates = false;
  table.fields.push_back(std::move(id));

  FieldDef balance;
  balance.name = "balance";
  balance.type = DataType::kBigInt;
  balance.generator = GeneratorPtr(new LongGenerator(0, 1 << 30));
  balance.mutable_across_updates = true;
  table.fields.push_back(std::move(balance));

  schema.tables.push_back(std::move(table));
  return schema;
}

// Drains the generator in `chunk_events`-sized reads.
std::string Drain(UpdateStreamGenerator* generator, size_t chunk_events) {
  std::string all;
  std::string chunk;
  while (true) {
    chunk.clear();
    if (generator->NextEvents(&chunk, chunk_events) == 0) break;
    all += chunk;
  }
  return all;
}

TEST(StreamTest, ReplayIsBitIdentical) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  UpdateStreamOptions options;
  options.snapshot = true;
  UpdateStreamGenerator first(session->get(), 0, &formatter, options);
  UpdateStreamGenerator second(session->get(), 0, &formatter, options);
  const std::string a = Drain(&first, 64);
  const std::string b = Drain(&second, 64);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(first.events_emitted(), second.events_emitted());
}

TEST(StreamTest, ChunkSizeNeverChangesTheStream) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  UpdateStreamOptions options;
  options.snapshot = true;
  options.batch_rows = 16;  // force mid-batch chunk boundaries
  UpdateStreamGenerator reference(session->get(), 0, &formatter, options);
  const std::string expected = Drain(&reference, 100000);
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{17}, size_t{199}}) {
    UpdateStreamGenerator generator(session->get(), 0, &formatter, options);
    EXPECT_EQ(Drain(&generator, chunk), expected) << "chunk=" << chunk;
  }
}

TEST(StreamTest, SnapshotInsertsPrecedeUpdateEvents) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  UpdateStreamOptions options;
  options.snapshot = true;
  UpdateStreamGenerator generator(session->get(), 0, &formatter, options);
  const std::vector<std::string> lines =
      Split(Drain(&generator, 57), '\n');
  const uint64_t rows = (*session)->TableRows(0);
  uint64_t index = 0;
  bool seen_update = false;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    // Sequence numbers are dense and ordered.
    EXPECT_EQ(line.rfind(StrPrintf("{\"event\":%llu,",
                                   static_cast<unsigned long long>(index)),
                         0),
              0u)
        << line;
    const bool is_insert = line.find("\"op\":\"insert\"") != std::string::npos;
    if (index < rows) {
      EXPECT_TRUE(is_insert) << line;
      EXPECT_NE(line.find("\"update\":0,"), std::string::npos) << line;
    } else {
      EXPECT_FALSE(is_insert) << line;
      seen_update = true;
    }
    ++index;
  }
  EXPECT_TRUE(seen_update);
  EXPECT_EQ(generator.events_emitted(), index);
}

TEST(StreamTest, UpdateEventsCoverExactlyTheSelectedRows) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  UpdateStreamOptions options;
  options.first_update = 2;
  options.last_update = 2;
  UpdateStreamGenerator generator(session->get(), 0, &formatter, options);
  std::set<uint64_t> streamed;
  for (const std::string& line : Split(Drain(&generator, 31), '\n')) {
    if (line.empty()) continue;
    EXPECT_NE(line.find("\"op\":\"update\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"update\":2,"), std::string::npos) << line;
    const size_t at = line.find("\"row\":");
    ASSERT_NE(at, std::string::npos);
    streamed.insert(std::strtoull(line.c_str() + at + 6, nullptr, 10));
  }
  std::set<uint64_t> selected;
  for (uint64_t r = 0; r < (*session)->TableRows(0); ++r) {
    if ((*session)->RowChangesInUpdate(0, r, 2)) selected.insert(r);
  }
  EXPECT_EQ(streamed, selected);
}

TEST(StreamTest, CountTotalEventsMatchesEmission) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  for (bool snapshot : {false, true}) {
    UpdateStreamOptions options;
    options.snapshot = snapshot;
    UpdateStreamGenerator generator(session->get(), 0, &formatter, options);
    const uint64_t predicted = generator.CountTotalEvents();
    Drain(&generator, 83);
    EXPECT_EQ(generator.events_emitted(), predicted)
        << "snapshot=" << snapshot;
    EXPECT_TRUE(generator.done());
  }
}

TEST(StreamTest, StaticTableWithoutSnapshotIsEmpty) {
  // tpch tables resolve to a single update unit (static); with no
  // snapshot phase there is nothing to play — done before the first read.
  SchemaDef schema = workloads::BuildTpchSchema();
  auto session = GenerationSession::Create(&schema, {{"SF", "0.0005"}});
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  UpdateStreamGenerator generator(session->get(), 0, &formatter, {});
  std::string out;
  EXPECT_EQ(generator.NextEvents(&out, 100), 0u);
  EXPECT_TRUE(generator.done());
  EXPECT_TRUE(out.empty());
  // With the snapshot the same table streams its full base data.
  UpdateStreamOptions options;
  options.snapshot = true;
  UpdateStreamGenerator with_snapshot(session->get(), 0, &formatter,
                                      options);
  Drain(&with_snapshot, 64);
  EXPECT_EQ(with_snapshot.events_emitted(), (*session)->TableRows(0));
}

TEST(StreamTest, DigestKeysEventOrder) {
  // The stream digest keys each line by its sequence number, so a replay
  // that delivers the same lines in a different order FAILS verification
  // even though the accumulator itself is commutative.
  const std::string a = "{\"event\":0}\n";
  const std::string b = "{\"event\":1}\n";
  TableDigest in_order;
  in_order.AddRowBytes(0, a);
  in_order.AddRowBytes(1, b);
  TableDigest swapped;
  swapped.AddRowBytes(0, b);
  swapped.AddRowBytes(1, a);
  EXPECT_NE(in_order.Hex(), swapped.Hex());
  // Same keying, different fold order: identical (commutativity is what
  // lets chunked consumers digest incrementally).
  TableDigest reordered;
  reordered.AddRowBytes(1, b);
  reordered.AddRowBytes(0, a);
  EXPECT_EQ(in_order.Hex(), reordered.Hex());
}

TEST(StreamTest, DataPayloadMatchesFormatterBytes) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  UpdateStreamOptions options;
  options.snapshot = true;
  UpdateStreamGenerator generator(session->get(), 0, &formatter, options);
  std::string out;
  ASSERT_EQ(generator.NextEvents(&out, 1), 1u);
  // Event 0 carries row 0's formatted bytes, terminator stripped.
  std::vector<Value> row;
  (*session)->GenerateRow(0, 0, 0, &row);
  std::string rendered;
  formatter.AppendRow(schema.tables[0], row, &rendered);
  while (!rendered.empty() &&
         (rendered.back() == '\n' || rendered.back() == '\r')) {
    rendered.pop_back();
  }
  EXPECT_NE(out.find("\"data\":\"" + rendered + "\"}"), std::string::npos)
      << out;
}

}  // namespace
}  // namespace pdgf
