// Failure-injection coverage for the generation engine (ISSUE 2):
//  - the first injected error is surfaced unchanged (no follow-on
//    "packages missing at close" masking),
//  - every sink is closed exactly once, on success and on failure,
//  - sorted mode never deadlocks when a run aborts while workers are
//    parked on reorder-buffer backpressure,
//  - a sink failing on an async writer thread (core/output/writer.h)
//    surfaces the original error, sheds queued buffers without writing
//    them, and wakes workers blocked on the buffer pool,
//  - NodeShare survives rows x node_count products past 2^64.

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/generators/generators.h"

namespace pdgf {
namespace {

SchemaDef MakeSchema(uint64_t big_rows = 1000, uint64_t small_rows = 123) {
  SchemaDef schema;
  schema.name = "engine_failure";
  schema.seed = 77;

  TableDef big;
  big.name = "big";
  big.size_expression = std::to_string(big_rows);
  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  big.fields.push_back(std::move(id));
  FieldDef payload;
  payload.name = "payload";
  payload.type = DataType::kVarchar;
  payload.generator = GeneratorPtr(new RandomStringGenerator(5, 20));
  big.fields.push_back(std::move(payload));
  schema.tables.push_back(std::move(big));

  TableDef small;
  small.name = "small";
  small.size_expression = std::to_string(small_rows);
  FieldDef value;
  value.name = "value";
  value.type = DataType::kBigInt;
  value.generator = GeneratorPtr(new LongGenerator(0, 99));
  small.fields.push_back(std::move(value));
  schema.tables.push_back(std::move(small));
  return schema;
}

// Fails on the Nth write (1-based); counts closes into a shared counter
// so tests can assert exactly-once close behaviour across all sinks.
class FailingSink final : public Sink {
 public:
  FailingSink(int fail_on_write, std::atomic<int>* closes,
              std::atomic<int>* close_after_fail = nullptr,
              std::atomic<int>* write_calls = nullptr)
      : fail_on_write_(fail_on_write),
        closes_(closes),
        close_after_fail_(close_after_fail),
        write_calls_(write_calls) {}

  Status Write(std::string_view data) override {
    int write = ++writes_;
    if (write_calls_ != nullptr) ++*write_calls_;
    if (fail_on_write_ > 0 && write >= fail_on_write_) {
      failed_ = true;
      return IoError("disk full (injected)");
    }
    AddBytes(data.size());
    return Status::Ok();
  }

  Status Close() override {
    ++*closes_;
    if (failed_ && close_after_fail_ != nullptr) ++*close_after_fail_;
    return Status::Ok();
  }

 private:
  int fail_on_write_;
  std::atomic<int>* closes_;
  std::atomic<int>* close_after_fail_;
  std::atomic<int>* write_calls_ = nullptr;
  std::atomic<int> writes_{0};
  std::atomic<bool> failed_{false};
};

struct FailureRun {
  Status status;
  int sinks_created = 0;
  std::atomic<int> closes{0};
};

// Runs the engine with a FailingSink on `fail_table` (others never
// fail); fills `run` with the result and close counts.
void RunWithInjectedFailure(const GenerationOptions& options,
                            const std::string& fail_table, int fail_on_write,
                            FailureRun* run) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  SinkFactory factory =
      [&](const TableDef& table) -> StatusOr<std::unique_ptr<Sink>> {
    ++run->sinks_created;
    int fail_on = table.name == fail_table ? fail_on_write : 0;
    return std::unique_ptr<Sink>(new FailingSink(fail_on, &run->closes));
  };
  GenerationEngine engine(&**session, &formatter, factory, options);
  run->status = engine.Run();
}

TEST(EngineFailureTest, InjectedErrorIsSurfacedUnchangedSorted) {
  for (int workers : {1, 4}) {
    GenerationOptions options;
    options.worker_count = workers;
    options.work_package_rows = 10;  // many packages -> parked packages
    options.sorted_output = true;
    FailureRun run;
    RunWithInjectedFailure(options, "big", 3, &run);
    ASSERT_FALSE(run.status.ok()) << "workers=" << workers;
    EXPECT_EQ(run.status.code(), StatusCode::kIoError);
    // The original injected error, not a follow-on close error.
    EXPECT_NE(run.status.ToString().find("injected"), std::string::npos)
        << run.status.ToString();
    EXPECT_EQ(run.status.ToString().find("packages missing"),
              std::string::npos)
        << "aborted close must not mask the injected error: "
        << run.status.ToString();
    // Every opened sink was closed exactly once, despite the failure.
    EXPECT_EQ(run.sinks_created, 2);
    EXPECT_EQ(run.closes.load(), run.sinks_created) << "workers=" << workers;
  }
}

TEST(EngineFailureTest, InjectedErrorIsSurfacedUnchangedUnsorted) {
  GenerationOptions options;
  options.worker_count = 4;
  options.work_package_rows = 25;
  options.sorted_output = false;
  FailureRun run;
  RunWithInjectedFailure(options, "big", 2, &run);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kIoError);
  EXPECT_NE(run.status.ToString().find("injected"), std::string::npos);
  EXPECT_EQ(run.closes.load(), run.sinks_created);
}

TEST(EngineFailureTest, FailureOnVeryFirstWrite) {
  // CSV has no header, so write #1 is the first delivered package: the
  // run dies immediately and still closes every sink.
  GenerationOptions options;
  options.worker_count = 2;
  FailureRun run;
  RunWithInjectedFailure(options, "big", 1, &run);
  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kIoError);
  EXPECT_EQ(run.closes.load(), run.sinks_created);
}

TEST(EngineFailureTest, HeaderWriteFailureClosesOpenedSinks) {
  // XML emits a header before any package; a failure there happens while
  // sinks are still being opened — the already-opened sink must be
  // closed and the header-write error returned.
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  XmlFormatter formatter;
  std::atomic<int> closes{0};
  int opened = 0;
  SinkFactory factory =
      [&](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
    ++opened;
    return std::unique_ptr<Sink>(new FailingSink(1, &closes));
  };
  GenerationOptions options;
  GenerationEngine engine(&**session, &formatter, factory, options);
  Status status = engine.Run();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.ToString().find("injected"), std::string::npos);
  EXPECT_EQ(closes.load(), opened);
}

TEST(EngineFailureTest, SuccessfulRunClosesEachSinkExactlyOnce) {
  GenerationOptions options;
  options.worker_count = 4;
  options.work_package_rows = 50;
  FailureRun run;
  RunWithInjectedFailure(options, "none", 0, &run);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.sinks_created, 2);
  EXPECT_EQ(run.closes.load(), 2);
}

TEST(EngineFailureTest, SortedAbortDoesNotDeadlockUnderBackpressure) {
  // A tiny reorder buffer plus many workers makes workers park and block
  // on backpressure; the injected failure must wake and drain them all.
  // (A deadlock here hangs the test binary, which CI treats as failure.)
  for (int trial = 0; trial < 10; ++trial) {
    GenerationOptions options;
    options.worker_count = 8;
    options.work_package_rows = 5;  // 200 packages for "big"
    options.sorted_output = true;
    options.reorder_buffer_packages = 2;
    FailureRun run;
    RunWithInjectedFailure(options, "big", 4 + trial, &run);
    ASSERT_FALSE(run.status.ok()) << "trial=" << trial;
    EXPECT_EQ(run.status.code(), StatusCode::kIoError);
    EXPECT_EQ(run.closes.load(), run.sinks_created) << "trial=" << trial;
  }
}

TEST(EngineFailureTest, WriterThreadFailureSurfacesOriginalError) {
  // The failing write happens on an async writer thread, not a worker:
  // the injected error must cross the stage boundary unchanged, with no
  // "packages missing at writer finish" masking and exactly-once close.
  for (SchedulerKind kind :
       {SchedulerKind::kAtomic, SchedulerKind::kStriped}) {
    for (bool sorted : {true, false}) {
      GenerationOptions options;
      options.worker_count = 4;
      options.work_package_rows = 10;
      options.sorted_output = sorted;
      options.scheduler = kind;
      options.writer_threads = 2;
      FailureRun run;
      RunWithInjectedFailure(options, "big", 3, &run);
      ASSERT_FALSE(run.status.ok())
          << SchedulerKindName(kind) << " sorted=" << sorted;
      EXPECT_EQ(run.status.code(), StatusCode::kIoError);
      EXPECT_NE(run.status.ToString().find("injected"), std::string::npos)
          << run.status.ToString();
      EXPECT_EQ(run.status.ToString().find("packages missing"),
                std::string::npos)
          << run.status.ToString();
      EXPECT_EQ(run.closes.load(), run.sinks_created);
    }
  }
}

TEST(EngineFailureTest, WriterFailureShedsQueuedBuffersWithoutWriting) {
  // After the failing write the writer must drop (recycle) everything
  // still queued instead of flushing it: the failing sink sees exactly
  // fail_on_write Write calls, nothing more.
  SchemaDef schema = MakeSchema(2000, 123);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  std::atomic<int> closes{0};
  std::atomic<int> big_writes{0};
  SinkFactory factory =
      [&](const TableDef& table) -> StatusOr<std::unique_ptr<Sink>> {
    int fail_on = table.name == "big" ? 2 : 0;
    return std::unique_ptr<Sink>(new FailingSink(
        fail_on, &closes, nullptr,
        table.name == "big" ? &big_writes : nullptr));
  };
  GenerationOptions options;
  options.worker_count = 8;
  options.work_package_rows = 5;  // 400 packages for "big"
  options.sorted_output = true;
  options.reorder_buffer_packages = 4;
  options.writer_threads = 1;  // both tables on one writer thread
  GenerationEngine engine(&**session, &formatter, factory, options);
  Status status = engine.Run();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("injected"), std::string::npos);
  // Write #1 succeeded, #2 failed, and the shed queue was never written.
  EXPECT_EQ(big_writes.load(), 2);
  EXPECT_EQ(closes.load(), 2);
}

TEST(EngineFailureTest, WriterAbortWakesWorkersBlockedOnBufferPool) {
  // Tight pool + tight reorder window + many workers: workers block in
  // BufferPool::Acquire and WaitForTurn while the writer thread hits the
  // injected failure. The abort must wake every blocked worker (a
  // deadlock here hangs the test binary, which CI treats as failure).
  for (int trial = 0; trial < 10; ++trial) {
    GenerationOptions options;
    options.worker_count = 8;
    options.work_package_rows = 5;
    options.sorted_output = true;
    options.reorder_buffer_packages = 2;
    options.writer_threads = 2;
    options.io_buffers = 1;  // raised to the deadlock-safe floor
    options.scheduler = trial % 2 == 0 ? SchedulerKind::kAtomic
                                       : SchedulerKind::kStriped;
    FailureRun run;
    RunWithInjectedFailure(options, "big", 4 + trial, &run);
    ASSERT_FALSE(run.status.ok()) << "trial=" << trial;
    EXPECT_EQ(run.status.code(), StatusCode::kIoError);
    EXPECT_NE(run.status.ToString().find("injected"), std::string::npos);
    EXPECT_EQ(run.closes.load(), run.sinks_created) << "trial=" << trial;
  }
}

TEST(EngineFailureTest, ReorderBufferHighWaterStaysWithinCapacity) {
  SchemaDef schema = MakeSchema(2000, 123);
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  GenerationOptions options;
  options.worker_count = 8;
  options.work_package_rows = 7;
  options.sorted_output = true;
  options.reorder_buffer_packages = 3;
  options.metrics_enabled = true;
  auto stats = GenerateToNull(**session, formatter, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats->metrics.enabled);
  ASSERT_EQ(stats->metrics.tables.size(), 2u);
  for (const auto& table : stats->metrics.tables) {
    EXPECT_EQ(table.reorder_buffer_capacity, 3u);
    EXPECT_LE(table.reorder_buffer_high_water, 3u) << table.name;
  }
  // Output must still be complete and ordered despite the tight bound.
  EXPECT_EQ(stats->rows, 2123u);
}

TEST(EngineFailureTest, SinkOpenFailureClosesEarlierSinks) {
  SchemaDef schema = MakeSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  CsvFormatter formatter;
  std::atomic<int> closes{0};
  int opened = 0;
  SinkFactory factory =
      [&](const TableDef& table) -> StatusOr<std::unique_ptr<Sink>> {
    if (table.name == "small") {
      return IoError("cannot open (injected)");
    }
    ++opened;
    return std::unique_ptr<Sink>(new FailingSink(0, &closes));
  };
  GenerationOptions options;
  GenerationEngine engine(&**session, &formatter, factory, options);
  Status status = engine.Run();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("cannot open"), std::string::npos);
  EXPECT_EQ(opened, 1);
  EXPECT_EQ(closes.load(), 1);  // the sink that did open was closed
}

TEST(NodeShareOverflowTest, HugeRowCountsPartitionExactly) {
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  for (uint64_t rows : {kMax, kMax - 1, kMax / 2 + 3,
                        uint64_t{1} << 63, uint64_t{1} << 62}) {
    for (int nodes : {2, 3, 7, 64, 1000, 1024}) {
      uint64_t previous_end = 0;
      uint64_t covered = 0;
      uint64_t min_share = kMax;
      uint64_t max_share = 0;
      for (int node = 0; node < nodes; ++node) {
        uint64_t begin = 1, end = 0;
        NodeShare(rows, nodes, node, &begin, &end);
        // Exhaustive and disjoint: every row exactly once, in order.
        ASSERT_EQ(begin, previous_end)
            << "rows=" << rows << " nodes=" << nodes << " node=" << node;
        ASSERT_LE(begin, end);
        uint64_t share = end - begin;
        covered += share;
        min_share = std::min(min_share, share);
        max_share = std::max(max_share, share);
        previous_end = end;
      }
      EXPECT_EQ(previous_end, rows) << "rows=" << rows << " nodes=" << nodes;
      EXPECT_EQ(covered, rows);
      // Balanced split: share sizes differ by at most one row.
      EXPECT_LE(max_share - min_share, 1u)
          << "rows=" << rows << " nodes=" << nodes;
    }
  }
}

TEST(NodeShareOverflowTest, SmallCasesUnchanged) {
  // The widened arithmetic must be bit-identical to the historical
  // floor split for non-overflowing inputs (golden fixtures depend on
  // node boundaries only through merged digests, but chunk files are
  // user-visible).
  struct Case {
    uint64_t rows;
    int nodes;
    int node;
    uint64_t begin, end;
  };
  for (const Case& c : std::vector<Case>{{10, 3, 0, 0, 3},
                                         {10, 3, 1, 3, 6},
                                         {10, 3, 2, 6, 10},
                                         {1000, 24, 11, 458, 500},
                                         {7, 8, 6, 5, 6}}) {
    uint64_t begin = 0, end = 0;
    NodeShare(c.rows, c.nodes, c.node, &begin, &end);
    EXPECT_EQ(begin, c.begin) << c.rows << "/" << c.nodes << "#" << c.node;
    EXPECT_EQ(end, c.end) << c.rows << "/" << c.nodes << "#" << c.node;
  }
}

}  // namespace
}  // namespace pdgf
