// RowRangeCursor parity suite (on-the-fly generation tentpole). The
// cursor is the single row-range walk every consumer shares — the
// engine's worker loop, MiniDB virtual tables, the serve daemon's
// range/stream ops — so its output must be BYTE-identical to the
// scalar per-row path for every window, batch size (including ragged
// tails), seek position and update unit, and its digests must match the
// scalar accumulator exactly.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cursor.h"
#include "core/engine.h"
#include "core/generators/generators.h"
#include "core/output/formatter.h"
#include "core/session.h"
#include "util/hash.h"
#include "workloads/tpch.h"

namespace pdgf {
namespace {

SchemaDef MakeUpdatableSchema() {
  SchemaDef schema;
  schema.name = "cursor_updates";
  schema.seed = 77;

  TableDef table;
  table.name = "accounts";
  table.size_expression = "500";
  table.updates_expression = "4";
  table.update_fraction = 0.2;

  FieldDef id;
  id.name = "id";
  id.type = DataType::kBigInt;
  id.generator = GeneratorPtr(new IdGenerator(1, 1));
  id.mutable_across_updates = false;
  table.fields.push_back(std::move(id));

  FieldDef balance;
  balance.name = "balance";
  balance.type = DataType::kBigInt;
  balance.generator = GeneratorPtr(new LongGenerator(0, 1 << 30));
  balance.mutable_across_updates = true;
  table.fields.push_back(std::move(balance));

  schema.tables.push_back(std::move(table));
  return schema;
}

// Scalar reference: GenerateRow + AppendRow over [first, last), skipping
// unselected rows in update mode — the path the cursor must reproduce.
std::string ScalarBytes(const GenerationSession& session, int table,
                        uint64_t first, uint64_t last, uint64_t update = 0) {
  const TableDef& def = session.schema().tables[static_cast<size_t>(table)];
  CsvFormatter formatter;
  std::vector<Value> row;
  std::string out;
  for (uint64_t r = first; r < last; ++r) {
    if (update > 0 && !session.RowChangesInUpdate(table, r, update)) continue;
    session.GenerateRow(table, r, update, &row);
    formatter.AppendRow(def, row, &out);
  }
  return out;
}

std::string CursorBytes(const GenerationSession& session, int table,
                        uint64_t first, uint64_t last, uint64_t update = 0,
                        uint64_t batch_rows = RowRangeCursor::kDefaultBatchRows) {
  const TableDef& def = session.schema().tables[static_cast<size_t>(table)];
  CsvFormatter formatter;
  RowRangeCursor cursor(&session, table, first, last, update, batch_rows);
  std::string out;
  while (cursor.Next()) formatter.AppendBatch(def, cursor.batch(), &out);
  return out;
}

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = workloads::BuildTpchSchema();
    auto session = GenerationSession::Create(&schema_, {{"SF", "0.0002"}});
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    session_ = std::move(*session);
  }

  SchemaDef schema_;
  std::unique_ptr<GenerationSession> session_;
};

TEST_F(CursorTest, FullTableMatchesScalarPathForEveryTable) {
  for (size_t t = 0; t < schema_.tables.size(); ++t) {
    const int table = static_cast<int>(t);
    const uint64_t rows = session_->TableRows(table);
    EXPECT_EQ(CursorBytes(*session_, table, 0, rows),
              ScalarBytes(*session_, table, 0, rows))
        << schema_.tables[t].name;
  }
}

TEST_F(CursorTest, BatchBoundariesNeverChangeBytes) {
  const int table = schema_.FindTableIndex("orders");
  ASSERT_GE(table, 0);
  const uint64_t rows = session_->TableRows(table);
  const std::string reference = ScalarBytes(*session_, table, 0, rows);
  // 1 (degenerate), primes (ragged tails), the default.
  for (uint64_t batch_rows : {1u, 7u, 97u, 1024u}) {
    EXPECT_EQ(CursorBytes(*session_, table, 0, rows, 0, batch_rows),
              reference)
        << "batch_rows=" << batch_rows;
  }
}

TEST_F(CursorTest, ArbitraryWindowCostsExactlyThoseRows) {
  const int table = schema_.FindTableIndex("lineitem");
  ASSERT_GE(table, 0);
  const uint64_t rows = session_->TableRows(table);
  ASSERT_GT(rows, 40u);
  // A mid-table window: byte-identical to the same slice of the scalar
  // walk — nothing before first_row is generated (pure (table, row)
  // functions), which is the property that makes SF-1000 point reads
  // cheap.
  EXPECT_EQ(CursorBytes(*session_, table, 10, 40, 0, 7),
            ScalarBytes(*session_, table, 10, 40));
  RowRangeCursor cursor(session_.get(), table, 10, 40, 0, 7);
  uint64_t yielded = 0;
  while (cursor.Next()) {
    for (size_t i = 0; i < cursor.batch().row_count(); ++i) {
      EXPECT_GE(cursor.batch().row_index(i), 10u);
      EXPECT_LT(cursor.batch().row_index(i), 40u);
    }
    yielded += cursor.batch().row_count();
  }
  EXPECT_EQ(yielded, 30u);
  EXPECT_EQ(cursor.rows_yielded(), 30u);
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(cursor.position(), 40u);
}

TEST_F(CursorTest, SeekAnchorsSubsequentStrides) {
  const int table = schema_.FindTableIndex("customer");
  ASSERT_GE(table, 0);
  const uint64_t rows = session_->TableRows(table);
  RowRangeCursor cursor(session_.get(), table, 0, rows, 0, 13);
  cursor.Seek(rows / 2);
  EXPECT_EQ(cursor.position(), rows / 2);
  const TableDef& def = schema_.tables[static_cast<size_t>(table)];
  CsvFormatter formatter;
  std::string from_seek;
  while (cursor.Next()) {
    formatter.AppendBatch(def, cursor.batch(), &from_seek);
  }
  EXPECT_EQ(from_seek, ScalarBytes(*session_, table, rows / 2, rows));
  // Seek clamps into [first_row, last_row].
  cursor.Seek(rows + 1000);
  EXPECT_TRUE(cursor.done());
  EXPECT_FALSE(cursor.Next());
  cursor.Seek(0);
  EXPECT_EQ(cursor.position(), 0u);
  EXPECT_TRUE(cursor.Next());
}

TEST_F(CursorTest, ResetRecyclesAcrossTablesAndRanges) {
  // One cursor re-aimed across tables/windows/batch sizes produces the
  // same bytes as fresh cursors — Reset carries no stale state.
  RowRangeCursor cursor;
  CsvFormatter formatter;
  for (const char* name : {"region", "orders", "nation", "orders"}) {
    const int table = schema_.FindTableIndex(name);
    ASSERT_GE(table, 0);
    const uint64_t rows = session_->TableRows(table);
    const uint64_t last = rows < 25 ? rows : 25;
    cursor.Reset(session_.get(), table, 0, last, 0, 4);
    std::string out;
    while (cursor.Next()) {
      formatter.AppendBatch(schema_.tables[static_cast<size_t>(table)],
                            cursor.batch(), &out);
    }
    EXPECT_EQ(out, ScalarBytes(*session_, table, 0, last)) << name;
  }
}

TEST_F(CursorTest, EmptyAndInvertedRangesYieldNothing) {
  const int table = schema_.FindTableIndex("region");
  ASSERT_GE(table, 0);
  RowRangeCursor empty(session_.get(), table, 3, 3);
  EXPECT_FALSE(empty.Next());
  EXPECT_TRUE(empty.done());
  // last < first clamps up to first (an empty range, not a crash).
  RowRangeCursor inverted(session_.get(), table, 4, 1);
  EXPECT_EQ(inverted.last_row(), 4u);
  EXPECT_FALSE(inverted.Next());
}

TEST(CursorUpdateTest, UpdateModeBatchesOnlySelectedRows) {
  SchemaDef schema = MakeUpdatableSchema();
  auto session = GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  const uint64_t rows = (*session)->TableRows(0);
  std::set<uint64_t> selected;
  for (uint64_t r = 0; r < rows; ++r) {
    if ((*session)->RowChangesInUpdate(0, r, 2)) selected.insert(r);
  }
  ASSERT_FALSE(selected.empty());
  ASSERT_LT(selected.size(), rows);
  RowRangeCursor cursor(session->get(), 0, 0, rows, 2, 9);
  std::set<uint64_t> batched;
  while (cursor.Next()) {
    // Next() never returns an empty batch: all-skipped strides are
    // consumed internally.
    ASSERT_GT(cursor.batch().row_count(), 0u);
    for (size_t i = 0; i < cursor.batch().row_count(); ++i) {
      batched.insert(cursor.batch().row_index(i));
    }
  }
  EXPECT_EQ(batched, selected);
  EXPECT_EQ(cursor.rows_yielded(), selected.size());
  // And the rendered update stream is byte-identical to the scalar one.
  EXPECT_EQ(CursorBytes(**session, 0, 0, rows, 2, 9),
            ScalarBytes(**session, 0, 0, rows, 2));
}

TEST_F(CursorTest, FoldBatchIntoDigestMatchesScalarAccumulator) {
  const int table = schema_.FindTableIndex("supplier");
  ASSERT_GE(table, 0);
  const uint64_t rows = session_->TableRows(table);
  const TableDef& def = schema_.tables[static_cast<size_t>(table)];
  CsvFormatter formatter;

  TableDigest scalar;
  std::vector<Value> row;
  std::string line;
  for (uint64_t r = 0; r < rows; ++r) {
    session_->GenerateRow(table, r, 0, &row);
    line.clear();
    formatter.AppendRow(def, row, &line);
    scalar.AddRow(r, line, row);
  }

  // Ragged batches, folded through the shared helper.
  TableDigest batched;
  RowRangeCursor cursor(session_.get(), table, 0, rows, 0, 3);
  std::string buffer;
  std::vector<size_t> offsets;
  while (cursor.Next()) {
    buffer.clear();
    formatter.AppendBatch(def, cursor.batch(), &buffer, &offsets);
    FoldBatchIntoDigest(cursor.batch(), buffer, offsets, &batched);
  }
  EXPECT_EQ(batched.Hex(), scalar.Hex());
  EXPECT_EQ(batched.rows(), scalar.rows());
  EXPECT_EQ(batched.bytes(), scalar.bytes());
}

TEST_F(CursorTest, GenerateTableToStringIsTheCursorPath) {
  // The engine's single-threaded helper is now one more cursor consumer;
  // its output must equal the scalar walk (header/footer aside).
  const int table = schema_.FindTableIndex("nation");
  ASSERT_GE(table, 0);
  CsvFormatter formatter;
  auto via_helper = GenerateTableToString(*session_, table, formatter);
  ASSERT_TRUE(via_helper.ok());
  EXPECT_EQ(*via_helper,
            ScalarBytes(*session_, table, 0, session_->TableRows(table)));
}

}  // namespace
}  // namespace pdgf
