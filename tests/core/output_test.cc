#include "core/output/formatter.h"

#include <gtest/gtest.h>

#include "core/output/sink.h"
#include "util/files.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace pdgf {
namespace {

TableDef MakeTable() {
  TableDef table;
  table.name = "t";
  for (const char* name : {"a", "b", "c"}) {
    FieldDef field;
    field.name = name;
    table.fields.push_back(std::move(field));
  }
  return table;
}

std::vector<Value> MakeRow() {
  return {Value::Int(1), Value::String("x|y"), Value::Null()};
}

TEST(CsvFormatterTest, DelimiterQuotingAndNull) {
  CsvFormatter formatter('|', '"', "");
  std::string out;
  formatter.AppendRow(MakeTable(), MakeRow(), &out);
  EXPECT_EQ(out, "1|\"x|y\"|\n");
}

TEST(CsvFormatterTest, NullMarkerDistinctFromString) {
  CsvFormatter formatter(',', '"', "NULL");
  std::string out;
  formatter.AppendRow(MakeTable(),
                      {Value::Null(), Value::String("NULL"), Value::Int(2)},
                      &out);
  // The literal string "NULL" is quoted; the SQL NULL is bare.
  EXPECT_EQ(out, "NULL,\"NULL\",2\n");
}

TEST(CsvFormatterTest, QuoteDoubling) {
  CsvFormatter formatter(',', '"', "");
  std::string out;
  formatter.AppendRow(MakeTable(),
                      {Value::String("say \"hi\""), Value::Int(1),
                       Value::Int(2)},
                      &out);
  EXPECT_EQ(out, "\"say \"\"hi\"\"\",1,2\n");
}

TEST(JsonFormatterTest, TypedFields) {
  JsonFormatter formatter;
  std::string out;
  formatter.AppendRow(MakeTable(),
                      {Value::Int(5), Value::String("a\"b"),
                       Value::Null()},
                      &out);
  EXPECT_EQ(out, "{\"a\":5,\"b\":\"a\\\"b\",\"c\":null}\n");
}

TEST(JsonFormatterTest, DatesBoolsDecimals) {
  JsonFormatter formatter;
  std::string out;
  formatter.AppendRow(MakeTable(),
                      {Value::FromDate(Date::FromCivil(1996, 4, 12)),
                       Value::Bool(true), Value::Decimal(12345, 2)},
                      &out);
  EXPECT_EQ(out, "{\"a\":\"1996-04-12\",\"b\":true,\"c\":123.45}\n");
}

TEST(XmlFormatterTest, HeaderRowsFooter) {
  XmlFormatter formatter;
  TableDef table = MakeTable();
  std::string out;
  formatter.AppendHeader(table, &out);
  formatter.AppendRow(table, {Value::Int(1), Value::String("<tag>"),
                              Value::Null()},
                      &out);
  formatter.AppendFooter(table, &out);
  EXPECT_EQ(out,
            "<table name=\"t\">\n"
            "  <row><a>1</a><b>&lt;tag&gt;</b><c null=\"true\"/></row>\n"
            "</table>\n");
}

TEST(SqlFormatterTest, SingleInsert) {
  SqlInsertFormatter formatter;
  std::string out;
  formatter.AppendRow(MakeTable(),
                      {Value::Int(1), Value::String("it's"),
                       Value::FromDate(Date::FromCivil(1995, 1, 2))},
                      &out);
  EXPECT_EQ(out, "INSERT INTO t VALUES (1, 'it''s', '1995-01-02');\n");
}

TEST(SqlFormatterTest, BatchedInsert) {
  SqlInsertFormatter formatter(2);
  std::vector<std::vector<Value>> rows = {
      {Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}};
  std::string out;
  formatter.AppendBatch(MakeTable(), rows, &out);
  EXPECT_EQ(out,
            "INSERT INTO t VALUES (1), (2);\n"
            "INSERT INTO t VALUES (3);\n");
}

TEST(MakeFormatterTest, KnownNames) {
  for (const char* name : {"csv", "tsv", "json", "xml", "sql"}) {
    auto formatter = MakeFormatter(name);
    ASSERT_TRUE(formatter.ok()) << name;
  }
  EXPECT_FALSE(MakeFormatter("parquet").ok());
}

TEST(SinkTest, NullSinkCounts) {
  NullSink sink;
  ASSERT_TRUE(sink.Write("12345").ok());
  ASSERT_TRUE(sink.Write("67").ok());
  EXPECT_EQ(sink.bytes_written(), 7u);
}

TEST(SinkTest, MemorySinkCollects) {
  MemorySink sink;
  ASSERT_TRUE(sink.Write("abc").ok());
  ASSERT_TRUE(sink.Write("def").ok());
  EXPECT_EQ(sink.contents(), "abcdef");
  EXPECT_EQ(sink.bytes_written(), 6u);
}

TEST(SinkTest, FileSinkWritesAndCloses) {
  auto dir = MakeTempDir("pdgf_sink_");
  ASSERT_TRUE(dir.ok());
  std::string path = JoinPath(*dir, "out.csv");
  auto sink = FileSink::Open(path);
  ASSERT_TRUE(sink.ok());
  ASSERT_TRUE((*sink)->Write("row1\n").ok());
  ASSERT_TRUE((*sink)->Write("row2\n").ok());
  ASSERT_TRUE((*sink)->Close().ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "row1\nrow2\n");
  // Writing after close fails cleanly.
  EXPECT_FALSE((*sink)->Write("late").ok());
  // Double close is a no-op.
  EXPECT_TRUE((*sink)->Close().ok());
}

TEST(SinkTest, FileSinkRejectsBadPath) {
  EXPECT_FALSE(FileSink::Open("/nonexistent_dir_xyz/file").ok());
}

TEST(SinkTest, ThrottledSinkLimitsThroughput) {
  // 1 MB at 10 MB/s should take ~0.1s.
  ThrottledSink sink(10.0 * 1024 * 1024);
  std::string chunk(64 * 1024, 'x');
  Stopwatch stopwatch;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(sink.Write(chunk).ok());
  }
  double elapsed = stopwatch.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.05);
  EXPECT_EQ(sink.bytes_written(), 16u * 64 * 1024);
}

}  // namespace
}  // namespace pdgf
