#include "util/expression.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pdgf {
namespace {

double Eval(std::string_view text) {
  auto result = EvaluateExpression(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for " << text;
  return result.ok() ? *result : NAN;
}

TEST(ExpressionTest, BasicArithmetic) {
  EXPECT_DOUBLE_EQ(Eval("1+2"), 3);
  EXPECT_DOUBLE_EQ(Eval("2*3+4"), 10);
  EXPECT_DOUBLE_EQ(Eval("2+3*4"), 14);
  EXPECT_DOUBLE_EQ(Eval("(2+3)*4"), 20);
  EXPECT_DOUBLE_EQ(Eval("10/4"), 2.5);
  EXPECT_DOUBLE_EQ(Eval("10 % 3"), 1);
  EXPECT_DOUBLE_EQ(Eval("-5 + 2"), -3);
  EXPECT_DOUBLE_EQ(Eval("--5"), 5);
  EXPECT_DOUBLE_EQ(Eval("2 - -3"), 5);
}

TEST(ExpressionTest, Numbers) {
  EXPECT_DOUBLE_EQ(Eval("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(Eval(".25"), 0.25);
  EXPECT_DOUBLE_EQ(Eval("1e3"), 1000);
  EXPECT_DOUBLE_EQ(Eval("1.5e-2"), 0.015);
}

TEST(ExpressionTest, Functions) {
  EXPECT_DOUBLE_EQ(Eval("ceil(1.2)"), 2);
  EXPECT_DOUBLE_EQ(Eval("floor(1.8)"), 1);
  EXPECT_DOUBLE_EQ(Eval("round(2.5)"), 3);
  EXPECT_DOUBLE_EQ(Eval("abs(-3)"), 3);
  EXPECT_DOUBLE_EQ(Eval("sqrt(16)"), 4);
  EXPECT_DOUBLE_EQ(Eval("pow(2, 10)"), 1024);
  EXPECT_DOUBLE_EQ(Eval("min(3, 7)"), 3);
  EXPECT_DOUBLE_EQ(Eval("max(3, 7)"), 7);
  EXPECT_NEAR(Eval("log(exp(1))"), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Eval("log10(1000)"), 3);
  EXPECT_DOUBLE_EQ(Eval("min(2*3, max(1, 10))"), 6);
}

TEST(ExpressionTest, VariablesResolve) {
  VariableResolver resolver = [](std::string_view name) -> StatusOr<double> {
    if (name == "SF") return 10.0;
    if (name == "base") return 6000000.0;
    return NotFoundError("unknown");
  };
  auto result = EvaluateExpression("${base} * ${SF}", resolver);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 60000000.0);
  // The paper's Listing 1 size expression.
  auto listing = EvaluateExpression("6000000 * ${SF}", resolver);
  ASSERT_TRUE(listing.ok());
  EXPECT_DOUBLE_EQ(*listing, 60000000.0);
}

TEST(ExpressionTest, UnknownVariablePropagatesError) {
  VariableResolver resolver = [](std::string_view) -> StatusOr<double> {
    return NotFoundError("nope");
  };
  EXPECT_FALSE(EvaluateExpression("${missing}", resolver).ok());
  // No resolver at all.
  EXPECT_FALSE(EvaluateExpression("${SF}").ok());
}

TEST(ExpressionTest, ErrorsAreReported) {
  EXPECT_FALSE(EvaluateExpression("").ok());
  EXPECT_FALSE(EvaluateExpression("1 +").ok());
  EXPECT_FALSE(EvaluateExpression("(1").ok());
  EXPECT_FALSE(EvaluateExpression("1 2").ok());
  EXPECT_FALSE(EvaluateExpression("foo(1)").ok());
  EXPECT_FALSE(EvaluateExpression("min(1)").ok());
  EXPECT_FALSE(EvaluateExpression("1/0").ok());
  EXPECT_FALSE(EvaluateExpression("3 % 0").ok());
  EXPECT_FALSE(EvaluateExpression("${unclosed").ok());
  EXPECT_FALSE(EvaluateExpression("$x").ok());
}

TEST(ExpressionTest, ExtractVariableReferences) {
  auto refs = ExtractVariableReferences("${a} + ${b} * ${a}");
  EXPECT_EQ(refs, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(ExtractVariableReferences("1 + 2").empty());
  EXPECT_EQ(ExtractVariableReferences("${lineitem_size}"),
            (std::vector<std::string>{"lineitem_size"}));
}

}  // namespace
}  // namespace pdgf
