// Fuzz-lite robustness tests: every parser in the project must return a
// clean error (never crash, hang or accept) on pseudo-random garbage and
// on mutations of valid inputs. Deterministic per seed.

#include <string>

#include <gtest/gtest.h>

#include "common/date.h"
#include "common/value.h"
#include "core/config.h"
#include "core/text/dictionary.h"
#include "core/text/markov_model.h"
#include "minidb/sql_parser.h"
#include "util/expression.h"
#include "util/rng.h"
#include "util/xml.h"

namespace pdgf {
namespace {

// Random byte string over a chosen alphabet.
std::string RandomText(Xorshift64* rng, size_t max_length,
                       std::string_view alphabet) {
  size_t length = rng->NextBounded(max_length + 1);
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(alphabet[rng->NextBounded(alphabet.size())]);
  }
  return out;
}

// Mutates `input` with random byte edits.
std::string Mutate(Xorshift64* rng, std::string input) {
  int edits = 1 + static_cast<int>(rng->NextBounded(4));
  for (int e = 0; e < edits && !input.empty(); ++e) {
    size_t position = rng->NextBounded(input.size());
    switch (rng->NextBounded(3)) {
      case 0:
        input[position] = static_cast<char>(rng->NextBounded(256));
        break;
      case 1:
        input.erase(position, 1);
        break;
      default:
        input.insert(position, 1,
                     static_cast<char>(rng->NextBounded(256)));
    }
  }
  return input;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, XmlParserNeverCrashes) {
  Xorshift64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string garbage = RandomText(&rng, 200, "<>/=\"'ab &;#x-!?\n");
    (void)XmlDocument::Parse(garbage);
    std::string mutated = Mutate(
        &rng, "<schema name=\"t\"><seed>42</seed><table name=\"x\">"
              "<size>5</size></table></schema>");
    (void)XmlDocument::Parse(mutated);
  }
}

TEST_P(FuzzTest, SqlParserNeverCrashes) {
  Xorshift64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string garbage =
        RandomText(&rng, 150, "SELECTFROMWHERE*(),';=<>. 0123abc");
    (void)minidb::ParseSql(garbage);
    std::string mutated = Mutate(
        &rng,
        "SELECT a, COUNT(*) FROM t WHERE b BETWEEN 1 AND 5 GROUP BY a "
        "ORDER BY a DESC LIMIT 7");
    (void)minidb::ParseSql(mutated);
    (void)minidb::ParseSqlScript(mutated + "; " + garbage);
  }
}

TEST_P(FuzzTest, ExpressionParserNeverCrashes) {
  Xorshift64 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string garbage = RandomText(&rng, 80, "0123456789+-*/()${}a. ,mx");
    (void)EvaluateExpression(garbage);
    (void)ExtractVariableReferences(garbage);
  }
}

TEST_P(FuzzTest, DateAndValueParsersNeverCrash) {
  Xorshift64 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string garbage = RandomText(&rng, 24, "0123456789-abcXYZ /.");
    (void)Date::Parse(garbage);
    for (DataType type :
         {DataType::kBigInt, DataType::kDouble, DataType::kDecimal,
          DataType::kDate, DataType::kBoolean}) {
      (void)Value::ParseAs(type, garbage);
    }
  }
}

TEST_P(FuzzTest, ModelLoaderNeverCrashes) {
  Xorshift64 rng(GetParam());
  std::string valid =
      "<schema name=\"m\"><seed>1</seed><table name=\"t\"><size>3</size>"
      "<field name=\"f\" type=\"BIGINT\"><gen_LongGenerator>"
      "<min>0</min><max>9</max></gen_LongGenerator></field></table>"
      "</schema>";
  // The pristine model must load.
  ASSERT_TRUE(LoadSchemaFromXml(valid).ok());
  for (int i = 0; i < 150; ++i) {
    (void)LoadSchemaFromXml(Mutate(&rng, valid));
  }
}

TEST_P(FuzzTest, MarkovDeserializerNeverCrashes) {
  Xorshift64 rng(GetParam());
  MarkovModel model;
  model.AddSample("one two three. one three two.");
  model.Finalize();
  std::string valid = model.SerializeToString();
  for (int i = 0; i < 200; ++i) {
    auto result = MarkovModel::ParseFromString(Mutate(&rng, valid));
    if (result.ok()) {
      // If a mutation survives validation, generation must still be safe.
      Xorshift64 generation_rng(1);
      (void)result->Generate(&generation_rng, 1, 5);
    }
    (void)MarkovModel::ParseFromString(RandomText(&rng, 100, "\x00\x01PDGFMKV1abc"));
  }
}

TEST_P(FuzzTest, DictionaryLoaderNeverCrashes) {
  Xorshift64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    (void)Dictionary::FromText(RandomText(&rng, 120, "abc\t\n0.5-#"));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 1337, 99991, 424242));

}  // namespace
}  // namespace pdgf
