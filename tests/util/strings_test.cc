#include "util/strings.h"

#include <gtest/gtest.h>

namespace pdgf {
namespace {

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("\t\n x \r\n"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(AsciiLower("MiXeD_123"), "mixed_123");
  EXPECT_EQ(AsciiUpper("MiXeD_123"), "MIXED_123");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("BIGINT", "bigint"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("l_orderkey", "l_"));
  EXPECT_FALSE(StartsWith("l", "l_"));
  EXPECT_TRUE(EndsWith("l_orderkey", "key"));
  EXPECT_FALSE(EndsWith("key", "orderkey"));
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("CustomerAddress", "address"));
  EXPECT_TRUE(ContainsIgnoreCase("x", ""));
  EXPECT_FALSE(ContainsIgnoreCase("short", "longer needle"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "d"));
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a|b|c", '|'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("|a||", '|'),
            (std::vector<std::string>{"", "a", "", ""}));
  EXPECT_EQ(Split("", '|'), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  the quick\tfox \n"),
            (std::vector<std::string>{"the", "quick", "fox"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrPrintf("empty"), "empty");
  // Long outputs are not truncated.
  std::string longish = StrPrintf("%0200d", 7);
  EXPECT_EQ(longish.size(), 200u);
}

TEST(StringsTest, Repeat) {
  EXPECT_EQ(Repeat("ab", 3), "ababab");
  EXPECT_EQ(Repeat("x", 0), "");
}

}  // namespace
}  // namespace pdgf
