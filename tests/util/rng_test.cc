#include "util/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace pdgf {
namespace {

TEST(Mix64Test, AvalancheChangesAllWords) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t base = Mix64(0x1234567890abcdefULL);
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t flipped = Mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(base ^ flipped);
  }
  double average = static_cast<double>(total_flips) / 64.0;
  EXPECT_GT(average, 24.0);
  EXPECT_LT(average, 40.0);
}

TEST(DeriveSeedTest, DistinctChildrenGetDistinctSeeds) {
  std::set<uint64_t> seeds;
  for (uint64_t child = 0; child < 1000; ++child) {
    seeds.insert(DeriveSeed(42, child));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeedTest, DistinctParentsGetDistinctSeeds) {
  std::set<uint64_t> seeds;
  for (uint64_t parent = 0; parent < 1000; ++parent) {
    seeds.insert(DeriveSeed(parent, 7));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(HashNameTest, StableAndDistinct) {
  EXPECT_EQ(HashName("lineitem"), HashName("lineitem"));
  EXPECT_NE(HashName("lineitem"), HashName("orders"));
  EXPECT_NE(HashName(""), HashName("a"));
}

TEST(Xorshift64Test, DeterministicPerSeed) {
  Xorshift64 a(123);
  Xorshift64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Xorshift64 c(124);
  EXPECT_NE(Xorshift64(123).Next(), c.Next());
}

TEST(Xorshift64Test, ZeroSeedIsUsable) {
  Xorshift64 rng(0);
  EXPECT_NE(rng.Next(), 0u);
  EXPECT_NE(rng.Next(), rng.Next());
}

TEST(Xorshift64Test, NextBoundedStaysInBounds) {
  Xorshift64 rng(99);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Xorshift64Test, NextInRangeInclusive) {
  Xorshift64 rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.NextInRange(5, 5), 5);
  EXPECT_EQ(rng.NextInRange(5, 4), 5);  // degenerate range clamps
}

TEST(Xorshift64Test, NextDoubleInUnitInterval) {
  Xorshift64 rng(31337);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xorshift64Test, UniformityChiSquare) {
  // 16 buckets, 16000 draws: chi-square(15) should be < 50 w.h.p.
  Xorshift64 rng(777);
  std::vector<int> buckets(16, 0);
  const int draws = 16000;
  for (int i = 0; i < draws; ++i) {
    ++buckets[rng.NextBounded(16)];
  }
  double expected = draws / 16.0;
  double chi2 = 0;
  for (int count : buckets) {
    double delta = count - expected;
    chi2 += delta * delta / expected;
  }
  EXPECT_LT(chi2, 50.0) << "chi2=" << chi2;
}

TEST(Xorshift64Test, GaussianMoments) {
  Xorshift64 rng(4242);
  double sum = 0;
  double sum_squares = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_squares += v * v;
  }
  double mean = sum / draws;
  double variance = sum_squares / draws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(Xorshift64Test, ExponentialMean) {
  Xorshift64 rng(555);
  double sum = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    double v = rng.NextExponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / draws, 0.5, 0.02);
}

// Zipf properties, parameterized over theta.
class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, RanksAreMonotonicallyLessFrequent) {
  double theta = GetParam();
  ZipfDistribution zipf(50, theta);
  Xorshift64 rng(1);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 60000; ++i) {
    uint64_t k = zipf.Sample(&rng);
    ASSERT_LT(k, 50u);
    ++counts[k];
  }
  // Head must dominate tail for positive theta.
  int head = counts[0] + counts[1] + counts[2];
  int tail = counts[47] + counts[48] + counts[49];
  if (theta >= 0.5) {
    EXPECT_GT(head, tail * 2) << "theta=" << theta;
  }
  // Rough frequency-ratio check against 1/k^theta for rank 1 vs rank 8.
  if (theta > 0) {
    double expected_ratio = std::pow(8.0, theta);
    double actual_ratio =
        static_cast<double>(counts[0]) / std::max(1, counts[7]);
    EXPECT_GT(actual_ratio, expected_ratio * 0.5);
    EXPECT_LT(actual_ratio, expected_ratio * 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfTest,
                         ::testing::Values(0.5, 0.8, 0.99, 1.0, 1.2, 2.0));

TEST(ZipfTest, DegenerateSizes) {
  ZipfDistribution one(1, 1.0);
  Xorshift64 rng(2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(one.Sample(&rng), 0u);
  }
  ZipfDistribution zero(0, 1.0);  // clamps to n=1
  EXPECT_EQ(zero.Sample(&rng), 0u);
}

}  // namespace
}  // namespace pdgf
