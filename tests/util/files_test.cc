#include "util/files.h"

#include <gtest/gtest.h>

namespace pdgf {
namespace {

class FilesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("pdgf_files_test_");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    dir_ = *dir;
  }

  std::string dir_;
};

TEST_F(FilesTest, WriteAndReadBack) {
  std::string path = JoinPath(dir_, "file.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello\nworld");
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11);
}

TEST_F(FilesTest, ReadMissingFileFails) {
  auto contents = ReadFileToString(JoinPath(dir_, "missing"));
  EXPECT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kIoError);
}

TEST_F(FilesTest, MakeDirectoriesRecursive) {
  std::string nested = JoinPath(dir_, "a/b/c");
  ASSERT_TRUE(MakeDirectories(nested).ok());
  EXPECT_TRUE(PathExists(nested));
  // Idempotent.
  EXPECT_TRUE(MakeDirectories(nested).ok());
}

TEST_F(FilesTest, RemoveFile) {
  std::string path = JoinPath(dir_, "todelete");
  ASSERT_TRUE(WriteStringToFile(path, "x").ok());
  EXPECT_TRUE(PathExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(PathExists(path));
  // Removing a missing file is not an error.
  EXPECT_TRUE(RemoveFile(path).ok());
}

TEST(JoinPathTest, HandlesSlashes) {
  EXPECT_EQ(JoinPath("a", "b"), "a/b");
  EXPECT_EQ(JoinPath("a/", "b"), "a/b");
  EXPECT_EQ(JoinPath("a", "/b"), "a/b");
  EXPECT_EQ(JoinPath("a/", "/b"), "a/b");
  EXPECT_EQ(JoinPath("", "b"), "b");
  EXPECT_EQ(JoinPath("a", ""), "a");
}

TEST(FilesBinaryTest, BinarySafeRoundTrip) {
  auto dir = MakeTempDir("pdgf_files_bin_");
  ASSERT_TRUE(dir.ok());
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  std::string path = JoinPath(*dir, "bin");
  ASSERT_TRUE(WriteStringToFile(path, data).ok());
  auto read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, data);
}

}  // namespace
}  // namespace pdgf
