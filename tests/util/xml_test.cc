#include "util/xml.h"

#include <gtest/gtest.h>

namespace pdgf {
namespace {

TEST(XmlTest, ParsesSimpleDocument) {
  auto document = XmlDocument::Parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<schema name=\"tpch\"><seed>12456789</seed></schema>");
  ASSERT_TRUE(document.ok()) << document.status().ToString();
  const XmlElement* root = document->root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name(), "schema");
  EXPECT_EQ(root->AttributeOr("name", ""), "tpch");
  ASSERT_NE(root->FindChild("seed"), nullptr);
  EXPECT_EQ(root->FindChild("seed")->text(), "12456789");
}

TEST(XmlTest, SelfClosingAndNestedElements) {
  auto document = XmlDocument::Parse(
      "<a><b x=\"1\"/><b x=\"2\"><c>deep</c></b></a>");
  ASSERT_TRUE(document.ok());
  auto bs = document->root()->FindChildren("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->AttributeOr("x", ""), "1");
  EXPECT_EQ(bs[1]->FindChild("c")->text(), "deep");
}

TEST(XmlTest, DecodesEntities) {
  auto document = XmlDocument::Parse(
      "<e attr=\"a&amp;b\">&lt;x&gt; &quot;q&quot; &apos;s&apos; &#65;"
      "&#x42;</e>");
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document->root()->AttributeOr("attr", ""), "a&b");
  EXPECT_EQ(document->root()->text(), "<x> \"q\" 's' AB");
}

TEST(XmlTest, SkipsCommentsAndDeclaration) {
  auto document = XmlDocument::Parse(
      "<?xml version=\"1.0\"?><!-- top --><root><!-- inner -->"
      "<child/><!-- after --></root><!-- trailing -->");
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document->root()->children().size(), 1u);
}

TEST(XmlTest, SingleQuotedAttributes) {
  auto document = XmlDocument::Parse("<e a='v1' b=\"v2\"/>");
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document->root()->AttributeOr("a", ""), "v1");
  EXPECT_EQ(document->root()->AttributeOr("b", ""), "v2");
}

TEST(XmlTest, ParseErrorsCarryLineNumbers) {
  auto result = XmlDocument::Parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
}

TEST(XmlTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(XmlDocument::Parse("").ok());
  EXPECT_FALSE(XmlDocument::Parse("just text").ok());
  EXPECT_FALSE(XmlDocument::Parse("<a>").ok());
  EXPECT_FALSE(XmlDocument::Parse("<a></b>").ok());
  EXPECT_FALSE(XmlDocument::Parse("<a x=></a>").ok());
  EXPECT_FALSE(XmlDocument::Parse("<a x=\"unterminated></a>").ok());
  EXPECT_FALSE(XmlDocument::Parse("<a/><b/>").ok());
  EXPECT_FALSE(XmlDocument::Parse("<a>&unknown;</a>").ok());
}

TEST(XmlTest, BuildAndSerialize) {
  XmlDocument document(std::make_unique<XmlElement>("schema"));
  XmlElement* root = document.mutable_root();
  root->SetAttribute("name", "test");
  root->AddChild("seed")->set_text("42");
  XmlElement* table = root->AddChild("table");
  table->SetAttribute("name", "t1");
  table->AddChild("size")->set_text("10 * ${SF}");
  std::string xml = document.Serialize();
  EXPECT_NE(xml.find("<?xml"), std::string::npos);
  EXPECT_NE(xml.find("<schema name=\"test\">"), std::string::npos);
  EXPECT_NE(xml.find("<seed>42</seed>"), std::string::npos);
}

TEST(XmlTest, RoundTripPreservesStructure) {
  XmlDocument document(std::make_unique<XmlElement>("root"));
  XmlElement* root = document.mutable_root();
  root->SetAttribute("escaped", "a<b&\"c\"");
  root->AddChild("empty");
  root->AddChild("text")->set_text("needs <escaping> & stuff");
  XmlElement* nested = root->AddChild("nested");
  nested->AddChild("inner")->SetAttribute("k", "v");

  auto reparsed = XmlDocument::Parse(document.Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const XmlElement* rebuilt = reparsed->root();
  EXPECT_EQ(rebuilt->AttributeOr("escaped", ""), "a<b&\"c\"");
  EXPECT_NE(rebuilt->FindChild("empty"), nullptr);
  EXPECT_EQ(rebuilt->FindChild("text")->text(), "needs <escaping> & stuff");
  EXPECT_EQ(rebuilt->FindChild("nested")->FindChild("inner")->AttributeOr(
                "k", ""),
            "v");
}

TEST(XmlTest, SetAttributeReplacesExisting) {
  XmlElement element("e");
  element.SetAttribute("k", "v1");
  element.SetAttribute("k", "v2");
  EXPECT_EQ(element.attributes().size(), 1u);
  EXPECT_EQ(element.AttributeOr("k", ""), "v2");
}

TEST(XmlTest, ChildTextOrDefault) {
  XmlElement element("e");
  element.AddChild("present")->set_text("yes");
  EXPECT_EQ(element.ChildTextOr("present", "no"), "yes");
  EXPECT_EQ(element.ChildTextOr("absent", "no"), "no");
}

}  // namespace
}  // namespace pdgf
