#include "cli/cli.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/config.h"
#include "util/files.h"
#include "util/strings.h"
#include "workloads/tpch.h"

namespace dbsynthpp_cli {
namespace {

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto dir = pdgf::MakeTempDir("cli_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = new std::string(*dir);
    // A TPC-H model file for the model-driven commands.
    pdgf::SchemaDef schema = workloads::BuildTpchSchema();
    schema.SetProperty("SF", "0.0002");
    model_path_ = new std::string(pdgf::JoinPath(*dir_, "tpch.xml"));
    ASSERT_TRUE(pdgf::SaveSchemaToFile(schema, *model_path_).ok());
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
    delete model_path_;
    model_path_ = nullptr;
  }

  static int Run(const std::vector<std::string>& args, std::string* out) {
    out->clear();
    return RunCli(args, out);
  }

  static std::string* dir_;
  static std::string* model_path_;
};

std::string* CliTest::dir_ = nullptr;
std::string* CliTest::model_path_ = nullptr;

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  std::string out;
  EXPECT_EQ(Run({}, &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  std::string out;
  EXPECT_EQ(Run({"help"}, &out), 0);
  EXPECT_NE(out.find("generate"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  std::string out;
  EXPECT_EQ(Run({"frobnicate"}, &out), 2);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, ValidateReportsTables) {
  std::string out;
  EXPECT_EQ(Run({"validate", *model_path_}, &out), 0);
  EXPECT_NE(out.find("model ok: 8 tables"), std::string::npos);
  EXPECT_NE(out.find("lineitem"), std::string::npos);
}

TEST_F(CliTest, ValidateRejectsMissingAndBrokenModels) {
  std::string out;
  EXPECT_EQ(Run({"validate", pdgf::JoinPath(*dir_, "nope.xml")}, &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
  std::string broken = pdgf::JoinPath(*dir_, "broken.xml");
  ASSERT_TRUE(pdgf::WriteStringToFile(broken, "<schema>").ok());
  EXPECT_EQ(Run({"validate", broken}, &out), 1);
}

TEST_F(CliTest, PreviewShowsRows) {
  std::string out;
  EXPECT_EQ(Run({"preview", *model_path_, "nation", "--rows", "3"}, &out),
            0);
  auto lines = pdgf::Split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines[0].find("n_name"), std::string::npos);
  EXPECT_NE(out.find("ALGERIA"), std::string::npos);
}

TEST_F(CliTest, GenerateWritesFiles) {
  std::string out;
  std::string out_dir = pdgf::JoinPath(*dir_, "generated");
  EXPECT_EQ(Run({"generate", *model_path_, "--out", out_dir, "--workers",
                 "2"},
                &out),
            0);
  EXPECT_NE(out.find("generated"), std::string::npos);
  EXPECT_TRUE(pdgf::PathExists(pdgf::JoinPath(out_dir, "lineitem.csv")));
  EXPECT_TRUE(pdgf::PathExists(pdgf::JoinPath(out_dir, "region.csv")));
}

TEST_F(CliTest, GenerateSupportsFormatsAndNodes) {
  std::string out;
  std::string out_dir = pdgf::JoinPath(*dir_, "json_node0");
  EXPECT_EQ(Run({"generate", *model_path_, "--out", out_dir, "--format",
                 "json", "--nodes", "4", "--node-id", "0"},
                &out),
            0);
  // Multi-node runs write per-node chunk files, dbgen-style.
  auto contents = pdgf::ReadFileToString(
      pdgf::JoinPath(out_dir, "lineitem.json.1"));
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("\"l_orderkey\":"), std::string::npos);
  // Node 0 of 4 produces about a quarter of the rows.
  size_t lines = pdgf::Split(*contents, '\n').size() - 1;
  EXPECT_NEAR(static_cast<double>(lines), 1200 / 4.0, 2.0);
}

TEST_F(CliTest, GenerateUpdateStream) {
  // A model with updates: unit 2's stream contains only changed rows.
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  schema.SetProperty("SF", "0.0002");
  pdgf::TableDef* lineitem = schema.FindTable("lineitem");
  lineitem->updates_expression = "3";
  lineitem->update_fraction = 0.2;
  int comment_field = lineitem->FindFieldIndex("l_comment");
  ASSERT_GE(comment_field, 0);
  lineitem->fields[static_cast<size_t>(comment_field)]
      .mutable_across_updates = true;
  std::string updatable_model = pdgf::JoinPath(*dir_, "tpch_upd.xml");
  ASSERT_TRUE(pdgf::SaveSchemaToFile(schema, updatable_model).ok());

  std::string base_dir = pdgf::JoinPath(*dir_, "upd_base");
  std::string stream_dir = pdgf::JoinPath(*dir_, "upd_stream");
  std::string out;
  ASSERT_EQ(Run({"generate", updatable_model, "--out", base_dir}, &out), 0);
  ASSERT_EQ(Run({"generate", updatable_model, "--out", stream_dir,
                 "--update", "2"},
                &out),
            0);
  auto base = pdgf::ReadFileToString(
      pdgf::JoinPath(base_dir, "lineitem.csv"));
  auto stream = pdgf::ReadFileToString(
      pdgf::JoinPath(stream_dir, "lineitem.csv"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(stream.ok());
  size_t base_rows = pdgf::Split(*base, '\n').size();
  size_t stream_rows = pdgf::Split(*stream, '\n').size();
  EXPECT_LT(stream_rows, base_rows / 2);
  EXPECT_GT(stream_rows, 10u);
}

TEST_F(CliTest, GenerateWithDigestsPrintsTableDigests) {
  std::string out;
  std::string out_dir = pdgf::JoinPath(*dir_, "digested");
  EXPECT_EQ(Run({"generate", *model_path_, "--out", out_dir, "--workers",
                 "2", "--digests"},
                &out),
            0);
  EXPECT_NE(out.find("digest="), std::string::npos);
  EXPECT_NE(out.find("lineitem"), std::string::npos);
}

TEST_F(CliTest, GenerateWritesMetricsJson) {
  std::string out;
  std::string out_dir = pdgf::JoinPath(*dir_, "metered");
  std::string metrics = pdgf::JoinPath(*dir_, "metrics.json");
  EXPECT_EQ(Run({"generate", *model_path_, "--out", out_dir, "--workers",
                 "2", "--metrics-out", metrics, "--trace"},
                &out),
            0);
  EXPECT_NE(out.find("metrics written to"), std::string::npos);
  auto json = pdgf::ReadFileToString(metrics);
  ASSERT_TRUE(json.ok());
  // Stable schema keys (docs/metrics.md) with per-table and per-phase
  // entries.
  for (const char* key :
       {"\"schema_version\": 2", "\"phase_seconds\"", "\"row_generation\"",
        "\"sink_wait\"", "\"writer_write\"", "\"writer_idle\"",
        "\"workers\"", "\"tables\"", "\"lineitem\"", "\"writer_threads\"",
        "\"buffer_pool\"", "\"trace\""}) {
    EXPECT_NE(json->find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(CliTest, GeneratePipelineFlagsProduceIdenticalFiles) {
  // Inline writes, async writer threads and the striped scheduler must
  // produce byte-identical sorted output.
  std::string out;
  std::string inline_dir = pdgf::JoinPath(*dir_, "pipe_inline");
  std::string async_dir = pdgf::JoinPath(*dir_, "pipe_async");
  ASSERT_EQ(Run({"generate", *model_path_, "--out", inline_dir,
                 "--workers", "3", "--package-rows", "97",
                 "--writer-threads", "0"},
                &out),
            0);
  ASSERT_EQ(Run({"generate", *model_path_, "--out", async_dir, "--workers",
                 "3", "--package-rows", "97", "--writer-threads", "2",
                 "--scheduler", "striped", "--io-buffers", "16"},
                &out),
            0);
  for (const char* table : {"lineitem", "orders", "region"}) {
    auto a = pdgf::ReadFileToString(
        pdgf::JoinPath(inline_dir, std::string(table) + ".csv"));
    auto b = pdgf::ReadFileToString(
        pdgf::JoinPath(async_dir, std::string(table) + ".csv"));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << table;
  }
}

TEST_F(CliTest, GenerateRejectsBadPipelineFlags) {
  std::string out;
  std::string out_dir = pdgf::JoinPath(*dir_, "badflags");
  // Unknown scheduler names an actionable error listing valid values.
  EXPECT_EQ(Run({"generate", *model_path_, "--out", out_dir, "--scheduler",
                 "fifo"},
                &out),
            1);
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_NE(out.find("fifo"), std::string::npos);
  EXPECT_NE(out.find("atomic"), std::string::npos);
  EXPECT_NE(out.find("striped"), std::string::npos);
  // Non-integer writer-threads is rejected, not silently coerced to 0.
  EXPECT_EQ(Run({"generate", *model_path_, "--out", out_dir,
                 "--writer-threads", "two"},
                &out),
            1);
  EXPECT_NE(out.find("writer-threads"), std::string::npos);
  EXPECT_NE(out.find("'two'"), std::string::npos);
  // Negative counts are rejected with the inline-mode hint.
  EXPECT_EQ(Run({"generate", *model_path_, "--out", out_dir,
                 "--writer-threads", "-1"},
                &out),
            1);
  EXPECT_NE(out.find("writer-threads"), std::string::npos);
  EXPECT_NE(out.find("inline"), std::string::npos);
  EXPECT_EQ(Run({"generate", *model_path_, "--out", out_dir, "--io-buffers",
                 "1.5"},
                &out),
            1);
  EXPECT_NE(out.find("io-buffers"), std::string::npos);
}

TEST_F(CliTest, GenerateBundledModelByName) {
  std::string out;
  std::string out_dir = pdgf::JoinPath(*dir_, "bundled_gen");
  EXPECT_EQ(Run({"generate", "--model", "tpch", "--sf", "0.0002", "--out",
                 out_dir},
                &out),
            0);
  EXPECT_TRUE(pdgf::PathExists(pdgf::JoinPath(out_dir, "lineitem.csv")));
  EXPECT_EQ(Run({"generate", "--model", "nosuch"}, &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST_F(CliTest, VerifyWritesMetricsJson) {
  std::string out;
  std::string metrics = pdgf::JoinPath(*dir_, "verify_metrics.json");
  EXPECT_EQ(Run({"verify", *model_path_, "--quick", "--metrics-out",
                 metrics},
                &out),
            0);
  EXPECT_NE(out.find("metrics written to"), std::string::npos);
  auto json = pdgf::ReadFileToString(metrics);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"runs\""), std::string::npos);
  EXPECT_NE(json->find("workers=1 pkg=4096 sorted"), std::string::npos);
  EXPECT_NE(json->find("\"phase_seconds\""), std::string::npos);
}

TEST_F(CliTest, VerifyPassesOnDeterministicModel) {
  std::string out;
  EXPECT_EQ(Run({"verify", *model_path_, "--quick"}, &out), 0);
  EXPECT_NE(out.find("baseline"), std::string::npos);
  // The quick matrix exercises the striped scheduler + async writers too.
  EXPECT_NE(out.find("striped w2"), std::string::npos);
  EXPECT_NE(out.find("cluster nodes=2 merged"), std::string::npos);
  EXPECT_NE(out.find("verify OK"), std::string::npos);
  EXPECT_EQ(out.find("FAIL"), std::string::npos) << out;
}

TEST_F(CliTest, VerifyBundledModelByName) {
  std::string out;
  EXPECT_EQ(Run({"verify", "--model", "imdb", "--quick"}, &out), 0);
  EXPECT_NE(out.find("cast_info"), std::string::npos);
  EXPECT_EQ(Run({"verify", "--model", "nosuch"}, &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST_F(CliTest, VerifyDetectsInjectedPerturbation) {
  // The acceptance gate for the verifier itself: a deliberately
  // perturbed seed must make verify exit non-zero and name the first
  // diverging table.
  std::string out;
  EXPECT_EQ(
      Run({"verify", *model_path_, "--quick", "--inject-perturbation"},
          &out),
      1);
  EXPECT_NE(out.find("seed-perturbed run"), std::string::npos);
  EXPECT_NE(out.find("first divergence: table"), std::string::npos);
  EXPECT_NE(out.find("verify FAILED"), std::string::npos);
}

TEST_F(CliTest, VerifyBlessAndGoldenRoundTrip) {
  std::string out;
  std::string fixture = pdgf::JoinPath(*dir_, "tpch.digests");
  EXPECT_EQ(Run({"verify", *model_path_, "--quick", "--bless", fixture},
                &out),
            0);
  EXPECT_NE(out.find("blessed"), std::string::npos);
  ASSERT_TRUE(pdgf::PathExists(fixture));

  EXPECT_EQ(Run({"verify", *model_path_, "--quick", "--golden", fixture},
                &out),
            0);
  EXPECT_NE(out.find("ok        golden fixture"), std::string::npos);

  // Corrupt one digest nibble: golden comparison must fail with a
  // re-bless hint.
  auto contents = pdgf::ReadFileToString(fixture);
  ASSERT_TRUE(contents.ok());
  std::string corrupted = *contents;
  size_t tab = corrupted.rfind('\t');
  ASSERT_NE(tab, std::string::npos);
  corrupted[tab + 1] = corrupted[tab + 1] == 'f' ? '0' : 'f';
  ASSERT_TRUE(pdgf::WriteStringToFile(fixture, corrupted).ok());
  EXPECT_EQ(Run({"verify", *model_path_, "--quick", "--golden", fixture},
                &out),
            1);
  EXPECT_NE(out.find("golden mismatch"), std::string::npos);
  EXPECT_NE(out.find("re-bless"), std::string::npos);
}

TEST_F(CliTest, DdlPrintsCreateTables) {
  std::string out;
  EXPECT_EQ(Run({"ddl", *model_path_}, &out), 0);
  EXPECT_NE(out.find("CREATE TABLE lineitem"), std::string::npos);
  EXPECT_NE(out.find("REFERENCES orders(o_orderkey)"), std::string::npos);
}

TEST_F(CliTest, QueryWithoutDataWorks) {
  std::string out;
  EXPECT_EQ(Run({"query", *model_path_,
                 "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10"},
                &out),
            0);
  EXPECT_NE(out.find("count"), std::string::npos);
  // Bad SQL surfaces as an error exit.
  EXPECT_EQ(Run({"query", *model_path_, "DROP TABLE lineitem"}, &out), 1);
}

TEST_F(CliTest, WorkloadEmitsQueries) {
  std::string out;
  EXPECT_EQ(Run({"workload", *model_path_, "--count", "5"}, &out), 0);
  auto lines = pdgf::Split(out, '\n');
  int selects = 0;
  for (const std::string& line : lines) {
    if (pdgf::StartsWith(line, "SELECT ")) ++selects;
  }
  EXPECT_EQ(selects, 5);
  // Deterministic across invocations.
  std::string out2;
  EXPECT_EQ(Run({"workload", *model_path_, "--count", "5"}, &out2), 0);
  EXPECT_EQ(out, out2);
}

TEST_F(CliTest, WorkloadExecuteDriverMode) {
  std::string out;
  ASSERT_EQ(Run({"workload", *model_path_, "--count", "6", "--execute"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("total:"), std::string::npos);
  EXPECT_NE(out.find("no data was materialized"), std::string::npos);
  // One result line per query plus header and total.
  EXPECT_EQ(pdgf::Split(out, '\n').size(), 6u + 3);
}

TEST_F(CliTest, DictionariesLists) {
  std::string out;
  EXPECT_EQ(Run({"dictionaries"}, &out), 0);
  EXPECT_NE(out.find("first_names"), std::string::npos);
  EXPECT_NE(out.find("nations"), std::string::npos);
}

TEST_F(CliTest, ExtractRoundTrip) {
  // Build a mini source: DDL + CSV, extract a model, then validate it.
  std::string src_dir = pdgf::JoinPath(*dir_, "extract_src");
  ASSERT_TRUE(pdgf::MakeDirectories(src_dir).ok());
  std::string ddl_path = pdgf::JoinPath(src_dir, "schema.sql");
  ASSERT_TRUE(pdgf::WriteStringToFile(
                  ddl_path,
                  "CREATE TABLE pets (pet_id BIGINT PRIMARY KEY, "
                  "species VARCHAR(10), weight DOUBLE);")
                  .ok());
  std::string csv;
  const char* species[] = {"cat", "dog", "fish"};
  for (int i = 0; i < 60; ++i) {
    csv += pdgf::StrPrintf("%d|%s|%.1f\n", i + 1, species[i % 3],
                           1.0 + i * 0.5);
  }
  ASSERT_TRUE(
      pdgf::WriteStringToFile(pdgf::JoinPath(src_dir, "pets.csv"), csv)
          .ok());

  std::string model_out = pdgf::JoinPath(src_dir, "pets_model.xml");
  std::string out;
  EXPECT_EQ(Run({"extract", "--schema", ddl_path, "--csv-dir", src_dir,
                 "--out", model_out, "--explain"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("loaded pets"), std::string::npos);
  EXPECT_NE(out.find("gen_IdGenerator"), std::string::npos);
  EXPECT_TRUE(pdgf::PathExists(model_out));

  // The extracted model validates, previews and queries.
  EXPECT_EQ(Run({"validate", model_out}, &out), 0);
  EXPECT_NE(out.find("pets"), std::string::npos);
  EXPECT_EQ(Run({"query", model_out, "SELECT COUNT(*) FROM pets"}, &out),
            0);
  EXPECT_NE(out.find("60"), std::string::npos);
  // Scaled regeneration via --sf.
  EXPECT_EQ(
      Run({"query", model_out, "SELECT COUNT(*) FROM pets", "--sf", "2"},
          &out),
      0);
  EXPECT_NE(out.find("120"), std::string::npos);
}

TEST_F(CliTest, SynthesizeEndToEnd) {
  // Source directory: DDL + CSV.
  std::string src_dir = pdgf::JoinPath(*dir_, "synth_src");
  ASSERT_TRUE(pdgf::MakeDirectories(src_dir).ok());
  std::string ddl_path = pdgf::JoinPath(src_dir, "schema.sql");
  ASSERT_TRUE(pdgf::WriteStringToFile(
                  ddl_path,
                  "CREATE TABLE sensors (sensor_id BIGINT PRIMARY KEY, "
                  "site VARCHAR(8), reading DOUBLE);")
                  .ok());
  std::string csv;
  const char* sites[] = {"north", "south"};
  for (int i = 0; i < 80; ++i) {
    csv += pdgf::StrPrintf("%d|%s|%.2f\n", i + 1, sites[i % 2],
                           20.0 + (i % 10));
  }
  ASSERT_TRUE(pdgf::WriteStringToFile(
                  pdgf::JoinPath(src_dir, "sensors.csv"), csv)
                  .ok());

  // Synthesize at 2x with the model written alongside.
  std::string out_dir = pdgf::JoinPath(src_dir, "synthetic");
  std::string model_out = pdgf::JoinPath(src_dir, "model.xml");
  std::string out;
  ASSERT_EQ(Run({"synthesize", "--schema", ddl_path, "--csv-dir", src_dir,
                 "--out-dir", out_dir, "--sf", "2", "--model-out",
                 model_out},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("synthesized 160 rows"), std::string::npos) << out;
  EXPECT_TRUE(pdgf::PathExists(pdgf::JoinPath(out_dir, "schema.sql")));
  EXPECT_TRUE(pdgf::PathExists(pdgf::JoinPath(out_dir, "sensors.csv")));
  EXPECT_TRUE(pdgf::PathExists(model_out));

  // The synthetic directory is itself a valid extract source: close the
  // loop by extracting a model from it.
  std::string second_model = pdgf::JoinPath(src_dir, "model2.xml");
  ASSERT_EQ(Run({"extract", "--schema",
                 pdgf::JoinPath(out_dir, "schema.sql"), "--csv-dir",
                 out_dir, "--out", second_model},
                &out),
            0)
      << out;
  EXPECT_EQ(Run({"query", second_model, "SELECT COUNT(*) FROM sensors"},
                &out),
            0);
  EXPECT_NE(out.find("160"), std::string::npos) << out;
}

TEST_F(CliTest, ServeAndRequestRoundTrip) {
  // The daemon and the one-shot client, both through the public CLI:
  // `serve` on an ephemeral port publishing it via --port-file, then
  // `request` driving a job, a metrics scrape and the shutdown that
  // unblocks the serve thread.
  std::string port_file = pdgf::JoinPath(*dir_, "serve.port");
  std::string serve_out;
  int serve_rc = -1;
  std::thread daemon([&] {
    serve_rc = RunCli({"serve", "--port", "0", "--port-file", port_file,
                       "--max-jobs", "2"},
                      &serve_out);
  });

  // The daemon writes the port file only once it is listening.
  for (int i = 0; i < 500 && !pdgf::PathExists(port_file); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(pdgf::PathExists(port_file)) << "daemon never came up";

  std::string out;
  EXPECT_EQ(Run({"request", "--port-file", port_file, "--model", "tpch",
                 "--sf", "0.001", "--digests"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("rows"), std::string::npos) << out;
  EXPECT_NE(out.find("lineitem"), std::string::npos) << out;

  EXPECT_EQ(Run({"request", "--port-file", port_file, "--op", "metrics"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("\"jobs_completed\":1"), std::string::npos) << out;

  EXPECT_EQ(Run({"request", "--port-file", port_file, "--op", "shutdown"},
                &out),
            0)
      << out;
  daemon.join();
  EXPECT_EQ(serve_rc, 0) << serve_out;
  EXPECT_NE(serve_out.find("shut down cleanly"), std::string::npos)
      << serve_out;
}

TEST_F(CliTest, RequestRejectsBadInvocations) {
  std::string out;
  // No port source at all.
  EXPECT_EQ(Run({"request", "--op", "ping"}, &out), 1);
  EXPECT_NE(out.find("--port"), std::string::npos);
  // A port file that holds garbage.
  std::string bad = pdgf::JoinPath(*dir_, "bad.port");
  ASSERT_TRUE(pdgf::WriteStringToFile(bad, "not-a-port\n").ok());
  EXPECT_EQ(Run({"request", "--port-file", bad, "--op", "ping"}, &out), 1);
  EXPECT_NE(out.find("does not hold a port"), std::string::npos);
}

TEST_F(CliTest, FlagParsingVariants) {
  std::string out;
  // --flag=value form.
  EXPECT_EQ(Run({"preview", *model_path_, "region", "--rows=2"}, &out), 0);
  EXPECT_EQ(pdgf::Split(out, '\n').size(), 4u);  // header + 2 + empty
  // Missing flag value.
  EXPECT_EQ(Run({"preview", *model_path_, "region", "--rows"}, &out), 1);
}

}  // namespace
}  // namespace dbsynthpp_cli
