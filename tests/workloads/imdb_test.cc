#include "workloads/imdb.h"

#include <gtest/gtest.h>

#include "minidb/sql.h"
#include "minidb/stats.h"

namespace workloads {
namespace {

TEST(ImdbTest, PopulatesAllTables) {
  minidb::Database db;
  ASSERT_TRUE(PopulateImdbDatabase(&db, 0.1).ok());
  EXPECT_EQ(db.TableNames(),
            (std::vector<std::string>{"title", "person", "cast_info",
                                      "movie_rating"}));
  EXPECT_EQ(db.GetTable("title")->row_count(), 201u);
  EXPECT_EQ(db.GetTable("person")->row_count(), 301u);
  EXPECT_EQ(db.GetTable("cast_info")->row_count(), 801u);
  EXPECT_EQ(db.GetTable("movie_rating")->row_count(), 161u);
}

TEST(ImdbTest, SchemaCarriesConstraints) {
  minidb::Database db;
  ASSERT_TRUE(PopulateImdbDatabase(&db, 0.05).ok());
  const minidb::TableSchema& cast_schema =
      db.GetTable("cast_info")->schema();
  EXPECT_EQ(cast_schema.FindColumnDef("title_id")->ref_table, "title");
  EXPECT_EQ(cast_schema.FindColumnDef("person_id")->ref_table, "person");
  EXPECT_TRUE(cast_schema.FindColumnDef("cast_id")->primary_key);
  EXPECT_FALSE(db.GetTable("title")
                   ->schema()
                   .FindColumnDef("title")
                   ->nullable);
}

TEST(ImdbTest, ForeignKeysActuallyResolve) {
  minidb::Database db;
  ASSERT_TRUE(PopulateImdbDatabase(&db, 0.1).ok());
  size_t titles = db.GetTable("title")->row_count();
  size_t persons = db.GetTable("person")->row_count();
  db.GetTable("cast_info")->Scan([&](const minidb::Row& row) {
    EXPECT_GE(row[1].int_value(), 1);
    EXPECT_LE(row[1].int_value(), static_cast<int64_t>(titles));
    EXPECT_GE(row[2].int_value(), 1);
    EXPECT_LE(row[2].int_value(), static_cast<int64_t>(persons));
    return true;
  });
}

TEST(ImdbTest, HasRealisticNullsAndText) {
  minidb::Database db;
  ASSERT_TRUE(PopulateImdbDatabase(&db, 0.5).ok());
  minidb::TableStats stats = minidb::AnalyzeTable(*db.GetTable("title"));
  const minidb::ColumnStats* year = stats.FindColumn("production_year");
  EXPECT_NEAR(year->null_fraction(), 0.08, 0.04);
  EXPECT_GE(year->min.AsInt(), 1920);
  EXPECT_LE(year->max.AsInt(), 2014);
  const minidb::ColumnStats* plot = stats.FindColumn("plot");
  EXPECT_NEAR(plot->null_fraction(), 0.15, 0.06);
  EXPECT_GT(plot->avg_word_count, 10.0);
  const minidb::ColumnStats* genre = stats.FindColumn("genre");
  EXPECT_EQ(genre->distinct_count, 10u);
}

TEST(ImdbTest, DeterministicPerSeed) {
  minidb::Database db1, db2, db3;
  ASSERT_TRUE(PopulateImdbDatabase(&db1, 0.05, 7).ok());
  ASSERT_TRUE(PopulateImdbDatabase(&db2, 0.05, 7).ok());
  ASSERT_TRUE(PopulateImdbDatabase(&db3, 0.05, 8).ok());
  const minidb::Table* t1 = db1.GetTable("title");
  const minidb::Table* t2 = db2.GetTable("title");
  const minidb::Table* t3 = db3.GetTable("title");
  ASSERT_EQ(t1->row_count(), t2->row_count());
  bool all_equal_12 = true;
  bool all_equal_13 = true;
  for (size_t r = 0; r < t1->row_count(); ++r) {
    if (!(t1->row(r)[1] == t2->row(r)[1])) all_equal_12 = false;
    if (!(t1->row(r)[1] == t3->row(r)[1])) all_equal_13 = false;
  }
  EXPECT_TRUE(all_equal_12);
  EXPECT_FALSE(all_equal_13);
}

TEST(ImdbTest, QueriesWork) {
  minidb::Database db;
  ASSERT_TRUE(PopulateImdbDatabase(&db, 0.25).ok());
  auto result = minidb::ExecuteSql(
      &db,
      "SELECT genre, COUNT(*) FROM title GROUP BY genre ORDER BY genre");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  auto avg = minidb::ExecuteSql(&db, "SELECT AVG(rating) FROM movie_rating");
  ASSERT_TRUE(avg.ok());
  double mean = avg->At(0, "avg_rating").AsDouble();
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 8.0);
}

}  // namespace
}  // namespace workloads
