#include "workloads/tpch.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/session.h"
#include "util/strings.h"

namespace workloads {
namespace {

using pdgf::Value;

TEST(TpchTest, HasAllEightTables) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  EXPECT_EQ(schema.tables.size(), 8u);
  for (const char* name : {"region", "nation", "supplier", "part",
                           "partsupp", "customer", "orders", "lineitem"}) {
    EXPECT_NE(schema.FindTable(name), nullptr) << name;
  }
  EXPECT_EQ(schema.seed, 123456789u);  // Listing 1's seed
}

TEST(TpchTest, CardinalitiesMatchSpecAtAnyScale) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto rows = [&](const char* table) {
    return (*session)->TableRows(schema.FindTableIndex(table));
  };
  EXPECT_EQ(rows("region"), 5u);
  EXPECT_EQ(rows("nation"), 25u);
  EXPECT_EQ(rows("supplier"), 10u);
  EXPECT_EQ(rows("customer"), 150u);
  EXPECT_EQ(rows("part"), 200u);
  EXPECT_EQ(rows("partsupp"), 800u);
  EXPECT_EQ(rows("orders"), 1500u);
  EXPECT_EQ(rows("lineitem"), 6000u);
}

TEST(TpchTest, NationAndRegionNamesAreTheSpecValues) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  int nation = schema.FindTableIndex("nation");
  Value value;
  std::set<std::string> names;
  for (uint64_t row = 0; row < 25; ++row) {
    (*session)->GenerateField(nation, 1, row, 0, &value);
    names.insert(value.string_value());
  }
  EXPECT_EQ(names.size(), 25u);  // each nation name appears exactly once
  EXPECT_TRUE(names.count("GERMANY") > 0);
  EXPECT_TRUE(names.count("UNITED STATES") > 0);

  int region = schema.FindTableIndex("region");
  (*session)->GenerateField(region, 1, 0, 0, &value);
  EXPECT_EQ(value.string_value(), "AFRICA");
}

TEST(TpchTest, LineitemRowShape) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  int lineitem = schema.FindTableIndex("lineitem");
  std::vector<Value> row;
  (*session)->GenerateRow(lineitem, 17, 0, &row);
  ASSERT_EQ(row.size(), 16u);
  // l_orderkey references orders.
  EXPECT_GE(row[0].int_value(), 1);
  EXPECT_LE(row[0].int_value(), 1500);
  // l_quantity in [1, 50].
  EXPECT_GE(row[4].AsDouble(), 1.0);
  EXPECT_LE(row[4].AsDouble(), 50.0);
  // l_returnflag is one of R/A/N.
  const std::string& flag = row[8].string_value();
  EXPECT_TRUE(flag == "R" || flag == "A" || flag == "N") << flag;
  // l_shipdate within the spec window.
  EXPECT_GE(row[11].date_value().year(), 1992);
  EXPECT_LE(row[11].date_value().year(), 1998);
  // l_comment is Markov text.
  EXPECT_FALSE(row[15].is_null());
  EXPECT_GT(row[15].string_value().size(), 0u);
}

TEST(TpchTest, ForeignKeysAreValid) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  int supplier = schema.FindTableIndex("supplier");
  int lineitem = schema.FindTableIndex("lineitem");
  Value value;
  for (uint64_t row = 0; row < 200; ++row) {
    // s_nationkey in [0, 24].
    (*session)->GenerateField(supplier, 3, row % 10, 0, &value);
    EXPECT_GE(value.int_value(), 0);
    EXPECT_LE(value.int_value(), 24);
    // l_suppkey in [1, suppliers].
    (*session)->GenerateField(lineitem, 2, row, 0, &value);
    EXPECT_GE(value.int_value(), 1);
    EXPECT_LE(value.int_value(), 10);
  }
}

TEST(TpchTest, PartsuppCoversEveryPartFourTimes) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  int partsupp = schema.FindTableIndex("partsupp");
  std::map<int64_t, int> counts;
  Value value;
  for (uint64_t row = 0; row < 800; ++row) {
    (*session)->GenerateField(partsupp, 0, row, 0, &value);
    ++counts[value.int_value()];
  }
  EXPECT_EQ(counts.size(), 200u);
  for (const auto& [part, count] : counts) {
    EXPECT_EQ(count, 4) << "part " << part;
  }
}

TEST(TpchTest, SupplierNameMatchesDbgenFormat) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  int supplier = schema.FindTableIndex("supplier");
  Value value;
  (*session)->GenerateField(supplier, 1, 0, 0, &value);
  EXPECT_EQ(value.string_value(), "Supplier#000000001");
  (*session)->GenerateField(supplier, 1, 41, 0, &value);
  EXPECT_EQ(value.string_value(), "Supplier#000000042");
}

TEST(TpchTest, RetailPriceFollowsSpecFormula) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  int part = schema.FindTableIndex("part");
  int price_field = schema.tables[static_cast<size_t>(part)].FindFieldIndex(
      "p_retailprice");
  Value value;
  for (uint64_t row : {0ULL, 9ULL, 1000ULL}) {
    (*session)->GenerateField(part, price_field, row, 0, &value);
    uint64_t key = row + 1;
    double expected =
        (90000.0 + (key / 10) % 20001 + 100.0 * (key % 1000)) / 100.0;
    EXPECT_NEAR(value.AsDouble(), expected, 1e-9) << "partkey " << key;
  }
}

TEST(TpchTest, ModelSurvivesXmlRoundTrip) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  std::string xml = pdgf::SchemaToXml(schema);
  EXPECT_NE(xml.find("6000000 * ${SF}"), std::string::npos);
  auto reparsed = pdgf::LoadSchemaFromXml(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->tables.size(), 8u);
  // Deterministic fields generate identically after the round trip
  // (Markov comments retrain from the builtin corpus, so key fields are
  // the honest comparison).
  auto s1 = pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  auto s2 = pdgf::GenerationSession::Create(&*reparsed, {{"SF", "0.001"}});
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  int orders = schema.FindTableIndex("orders");
  Value v1, v2;
  for (uint64_t row = 0; row < 20; ++row) {
    for (int field = 0; field < 5; ++field) {
      (*s1)->GenerateField(orders, field, row, 0, &v1);
      (*s2)->GenerateField(orders, field, row, 0, &v2);
      EXPECT_EQ(v1, v2) << "row " << row << " field " << field;
    }
  }
}

TEST(TpchTest, OrderStatusDistribution) {
  pdgf::SchemaDef schema = BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.01"}});
  ASSERT_TRUE(session.ok());
  int orders = schema.FindTableIndex("orders");
  int status_field =
      schema.tables[static_cast<size_t>(orders)].FindFieldIndex(
          "o_orderstatus");
  std::map<std::string, int> counts;
  Value value;
  const int rows = 10000;
  for (uint64_t row = 0; row < rows; ++row) {
    (*session)->GenerateField(orders, status_field, row, 0, &value);
    ++counts[value.string_value()];
  }
  EXPECT_NEAR(counts["P"] / static_cast<double>(rows), 0.026, 0.01);
  EXPECT_NEAR(counts["F"] / static_cast<double>(rows), 0.487, 0.02);
}

}  // namespace
}  // namespace workloads
