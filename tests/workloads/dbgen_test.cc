#include "workloads/dbgen.h"

#include <gtest/gtest.h>

#include "util/files.h"
#include "util/strings.h"

namespace workloads {
namespace {

TEST(DbgenTest, GeneratesAllTblFiles) {
  auto dir = pdgf::MakeTempDir("dbgen_");
  ASSERT_TRUE(dir.ok());
  DbgenOptions options;
  options.scale_factor = 0.001;
  options.output_dir = pdgf::JoinPath(*dir, "out");
  auto stats = RunDbgen(options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const char* table :
       {"supplier", "part", "partsupp", "customer", "orders", "lineitem"}) {
    EXPECT_TRUE(pdgf::PathExists(
        pdgf::JoinPath(options.output_dir, std::string(table) + ".tbl")))
        << table;
  }
  EXPECT_GT(stats->rows, 0u);
  EXPECT_GT(stats->bytes, 0u);
  auto size = pdgf::FileSize(
      pdgf::JoinPath(options.output_dir, "lineitem.tbl"));
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, 1000);
}

TEST(DbgenTest, RowCountsScale) {
  DbgenOptions options;
  options.scale_factor = 0.001;
  options.to_null = true;
  auto small = RunDbgen(options);
  ASSERT_TRUE(small.ok());
  options.scale_factor = 0.002;
  auto big = RunDbgen(options);
  ASSERT_TRUE(big.ok());
  EXPECT_GT(big->rows, small->rows * 3 / 2);
  EXPECT_GT(big->bytes, small->bytes * 3 / 2);
}

TEST(DbgenTest, NullModeMatchesFileModeBytes) {
  auto dir = pdgf::MakeTempDir("dbgen_null_");
  ASSERT_TRUE(dir.ok());
  DbgenOptions options;
  options.scale_factor = 0.001;
  options.output_dir = pdgf::JoinPath(*dir, "out");
  auto file_stats = RunDbgen(options);
  ASSERT_TRUE(file_stats.ok());
  options.to_null = true;
  auto null_stats = RunDbgen(options);
  ASSERT_TRUE(null_stats.ok());
  EXPECT_EQ(file_stats->rows, null_stats->rows);
  EXPECT_EQ(file_stats->bytes, null_stats->bytes);
}

TEST(DbgenTest, LineitemFieldCount) {
  auto dir = pdgf::MakeTempDir("dbgen_fields_");
  ASSERT_TRUE(dir.ok());
  DbgenOptions options;
  options.scale_factor = 0.0005;
  options.output_dir = pdgf::JoinPath(*dir, "out");
  ASSERT_TRUE(RunDbgen(options).ok());
  auto contents = pdgf::ReadFileToString(
      pdgf::JoinPath(options.output_dir, "lineitem.tbl"));
  ASSERT_TRUE(contents.ok());
  auto lines = pdgf::Split(*contents, '\n');
  ASSERT_GT(lines.size(), 2u);
  // 16 pipe-separated fields per lineitem row.
  EXPECT_EQ(pdgf::Split(lines[0], '|').size(), 16u);
}

TEST(DbgenTest, NonTransparentParallelismPartitionsRows) {
  // dbgen's parallel mode: each instance writes its own chunk file; the
  // union covers the whole data set (paper §4: "DBGen's parallel output
  // will be split in as many files as instances were started").
  auto dir = pdgf::MakeTempDir("dbgen_par_");
  ASSERT_TRUE(dir.ok());

  DbgenOptions whole;
  whole.scale_factor = 0.001;
  whole.output_dir = pdgf::JoinPath(*dir, "whole");
  auto whole_stats = RunDbgen(whole);
  ASSERT_TRUE(whole_stats.ok());

  uint64_t partitioned_rows = 0;
  for (int instance = 0; instance < 3; ++instance) {
    DbgenOptions part = whole;
    part.output_dir = pdgf::JoinPath(*dir, "parts");
    part.instance_count = 3;
    part.instance_id = instance;
    auto stats = RunDbgen(part);
    ASSERT_TRUE(stats.ok());
    partitioned_rows += stats->rows;
    // Chunk files carry the instance suffix.
    EXPECT_TRUE(pdgf::PathExists(pdgf::JoinPath(
        part.output_dir,
        "orders.tbl." + std::to_string(instance + 1))));
  }
  // Orders/supplier/... rows partition exactly; lineitem counts are
  // per-order random, so allow the boundary orders to differ slightly.
  EXPECT_NEAR(static_cast<double>(partitioned_rows),
              static_cast<double>(whole_stats->rows),
              whole_stats->rows * 0.02);
}

TEST(DbgenTest, DeterministicAcrossRuns) {
  DbgenOptions options;
  options.scale_factor = 0.0005;
  options.to_null = true;
  auto first = RunDbgen(options);
  auto second = RunDbgen(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->rows, second->rows);
  EXPECT_EQ(first->bytes, second->bytes);
}

TEST(DbgenTest, BigTablesOnlyMode) {
  DbgenOptions options;
  options.scale_factor = 0.001;
  options.to_null = true;
  auto full = RunDbgen(options);
  ASSERT_TRUE(full.ok());
  options.big_tables_only = true;
  auto big = RunDbgen(options);
  ASSERT_TRUE(big.ok());
  EXPECT_LT(big->rows, full->rows);
  EXPECT_GT(big->rows, full->rows / 2);  // the big tables dominate
}

}  // namespace
}  // namespace workloads
