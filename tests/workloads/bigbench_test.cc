#include "workloads/bigbench.h"

#include <map>

#include <gtest/gtest.h>

#include "core/session.h"
#include "util/strings.h"

namespace workloads {
namespace {

using pdgf::Value;

TEST(BigBenchTest, ModelResolves) {
  pdgf::SchemaDef schema = BuildBigBenchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(schema.tables.size(), 7u);
  // Minimum sizes hold for dimension-like tables.
  EXPECT_EQ((*session)->TableRows(schema.FindTableIndex("store")), 12u);
  EXPECT_EQ((*session)->TableRows(schema.FindTableIndex("web_page")), 60u);
  EXPECT_EQ((*session)->TableRows(schema.FindTableIndex("customer")), 100u);
  EXPECT_EQ(
      (*session)->TableRows(schema.FindTableIndex("web_clickstreams")),
      2000u);
}

TEST(BigBenchTest, ClickstreamHasAnonymousSessions) {
  pdgf::SchemaDef schema = BuildBigBenchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  int clicks = schema.FindTableIndex("web_clickstreams");
  int user_field =
      schema.tables[static_cast<size_t>(clicks)].FindFieldIndex(
          "wcs_user_sk");
  int nulls = 0;
  Value value;
  const int rows = 2000;
  for (uint64_t row = 0; row < rows; ++row) {
    (*session)->GenerateField(clicks, user_field, row, 0, &value);
    if (value.is_null()) {
      ++nulls;
    } else {
      EXPECT_GE(value.int_value(), 1);
      EXPECT_LE(value.int_value(), 100);
    }
  }
  EXPECT_NEAR(nulls / static_cast<double>(rows), 0.05, 0.02);
}

TEST(BigBenchTest, ItemReferencesAreSkewed) {
  // BigBench sales follow popular items (Zipf): the head item must be
  // referenced far more often than the median item.
  pdgf::SchemaDef schema = BuildBigBenchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.01"}});
  ASSERT_TRUE(session.ok());
  int sales = schema.FindTableIndex("web_sales");
  int item_field =
      schema.tables[static_cast<size_t>(sales)].FindFieldIndex("ws_item_sk");
  std::map<int64_t, int> counts;
  Value value;
  for (uint64_t row = 0; row < 5000; ++row) {
    (*session)->GenerateField(sales, item_field, row, 0, &value);
    ++counts[value.int_value()];
  }
  int head = counts[1];
  int median = counts[90];  // item 90 of 180
  EXPECT_GT(head, std::max(1, median) * 3);
}

TEST(BigBenchTest, ReviewsReferenceStructuredDataAndCarryText) {
  // The paper's differentiator vs BDGS: text generation connected to the
  // structured data (references from reviews into items).
  pdgf::SchemaDef schema = BuildBigBenchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  int reviews = schema.FindTableIndex("product_reviews");
  std::vector<Value> row;
  uint64_t items = (*session)->TableRows(schema.FindTableIndex("item"));
  for (uint64_t r = 0; r < 50; ++r) {
    (*session)->GenerateRow(reviews, r, 0, &row);
    // pr_item_sk valid.
    EXPECT_GE(row[1].int_value(), 1);
    EXPECT_LE(row[1].int_value(), static_cast<int64_t>(items));
    // Rating 1..5.
    EXPECT_GE(row[3].int_value(), 1);
    EXPECT_LE(row[3].int_value(), 5);
    // Review content: 20..120 words of Markov text.
    size_t words = pdgf::SplitWhitespace(row[4].string_value()).size();
    EXPECT_GE(words, 20u);
    EXPECT_LE(words, 120u);
  }
}

TEST(BigBenchTest, CustomerSemanticsAreWellFormed) {
  pdgf::SchemaDef schema = BuildBigBenchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  int customer = schema.FindTableIndex("customer");
  std::vector<Value> row;
  for (uint64_t r = 0; r < 30; ++r) {
    (*session)->GenerateRow(customer, r, 0, &row);
    EXPECT_EQ(row[0].int_value(), static_cast<int64_t>(r + 1));
    EXPECT_NE(row[2].string_value().find('@'), std::string::npos);
    const std::string& gender = row[5].string_value();
    EXPECT_TRUE(gender == "M" || gender == "F" || gender == "U");
    EXPECT_GE(row[4].int_value(), 1930);
    EXPECT_LE(row[4].int_value(), 2005);
  }
}

}  // namespace
}  // namespace workloads
