#include "workloads/ssb.h"

#include <map>

#include <gtest/gtest.h>

#include "core/session.h"
#include "dbsynth/virtual_table.h"

namespace workloads {
namespace {

using pdgf::Value;

TEST(SsbTest, ModelResolvesWithSpecCardinalities) {
  pdgf::SchemaDef schema = BuildSsbSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto rows = [&](const char* table) {
    return (*session)->TableRows(schema.FindTableIndex(table));
  };
  EXPECT_EQ(rows("ddate"), 2556u);  // fixed: 7 years of days
  EXPECT_EQ(rows("supplier"), 2u);
  EXPECT_EQ(rows("customer"), 30u);
  EXPECT_EQ(rows("part"), 200u);
  EXPECT_EQ(rows("lineorder"), 6000u);
}

TEST(SsbTest, DateDimensionIsConsistent) {
  pdgf::SchemaDef schema = BuildSsbSchema();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  int ddate = schema.FindTableIndex("ddate");
  std::vector<Value> row;
  // Row 0 = 1992-01-01 (a Wednesday, dayofweek 4 in the 1..7 scheme).
  (*session)->GenerateRow(ddate, 0, 0, &row);
  EXPECT_EQ(row[0].int_value(), 0);
  EXPECT_EQ(row[1].int_value(), 4);
  EXPECT_EQ(row[2].int_value(), 1992);
  EXPECT_EQ(row[3].int_value(), 1);
  // The last row is in 1998.
  (*session)->GenerateRow(ddate, 2555, 0, &row);
  EXPECT_EQ(row[2].int_value(), 1998);
  // Day-of-week cycles with period 7.
  std::vector<Value> next;
  (*session)->GenerateRow(ddate, 7, 0, &next);
  EXPECT_EQ(next[1].int_value(), 4);
}

TEST(SsbTest, LineorderGroupsFourLinesPerOrder) {
  pdgf::SchemaDef schema = BuildSsbSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  int lineorder = schema.FindTableIndex("lineorder");
  std::vector<Value> row;
  for (uint64_t r = 0; r < 16; ++r) {
    (*session)->GenerateRow(lineorder, r, 0, &row);
    EXPECT_EQ(row[0].int_value(), static_cast<int64_t>(r / 4 + 1));
    EXPECT_EQ(row[1].int_value(), static_cast<int64_t>(r % 4 + 1));
  }
}

TEST(SsbTest, UniformVariantHasFlatReferences) {
  pdgf::SchemaDef schema = BuildSsbSchema(SsbSkew::kUniform);
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.01"}});
  ASSERT_TRUE(session.ok());
  int lineorder = schema.FindTableIndex("lineorder");
  int cust_field = schema.tables[static_cast<size_t>(lineorder)]
                       .FindFieldIndex("lo_custkey");
  std::map<int64_t, int> counts;
  Value value;
  const int draws = 6000;
  for (uint64_t r = 0; r < draws; ++r) {
    (*session)->GenerateField(lineorder, cust_field, r, 0, &value);
    ++counts[value.int_value()];
  }
  // 300 customers, 6000 draws: expected 20 per key, max far below 3x.
  int max_count = 0;
  for (const auto& [key, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_LT(max_count, 60);
}

TEST(SsbTest, SkewedVariantConcentratesReferences) {
  pdgf::SchemaDef schema = BuildSsbSchema(SsbSkew::kSkewedReferences);
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.01"}});
  ASSERT_TRUE(session.ok());
  int lineorder = schema.FindTableIndex("lineorder");
  int cust_field = schema.tables[static_cast<size_t>(lineorder)]
                       .FindFieldIndex("lo_custkey");
  std::map<int64_t, int> counts;
  Value value;
  const int draws = 6000;
  for (uint64_t r = 0; r < draws; ++r) {
    (*session)->GenerateField(lineorder, cust_field, r, 0, &value);
    ++counts[value.int_value()];
  }
  // Zipf(1.0): the hottest customer dominates the median one.
  EXPECT_GT(counts[1], 200);
  EXPECT_GT(counts[1], counts[150] * 10);
}

TEST(SsbTest, SkewedValuesVariantClustersDiscounts) {
  pdgf::SchemaDef uniform_schema = BuildSsbSchema(SsbSkew::kUniform);
  pdgf::SchemaDef skewed_schema = BuildSsbSchema(SsbSkew::kSkewedValues);
  auto uniform =
      pdgf::GenerationSession::Create(&uniform_schema, {{"SF", "0.01"}});
  auto skewed =
      pdgf::GenerationSession::Create(&skewed_schema, {{"SF", "0.01"}});
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(skewed.ok());
  auto top_share = [](pdgf::GenerationSession& session,
                      const pdgf::SchemaDef& schema) {
    int lineorder = schema.FindTableIndex("lineorder");
    int field = schema.tables[static_cast<size_t>(lineorder)]
                    .FindFieldIndex("lo_discount");
    std::map<std::string, int> counts;
    Value value;
    const int draws = 4000;
    for (uint64_t r = 0; r < draws; ++r) {
      session.GenerateField(lineorder, field, r, 0, &value);
      counts[value.ToText()]++;
    }
    int max_count = 0;
    for (const auto& [key, count] : counts) {
      max_count = std::max(max_count, count);
    }
    return max_count / static_cast<double>(draws);
  };
  double uniform_share = top_share(**uniform, uniform_schema);
  double skewed_share = top_share(**skewed, skewed_schema);
  EXPECT_LT(uniform_share, 0.2);   // ~1/11 each
  EXPECT_GT(skewed_share, 0.3);    // head value dominates
}

TEST(SsbTest, VirtualQueriesRunOnSsb) {
  // SSB Q1.1-shaped query through the no-materialization path.
  pdgf::SchemaDef schema = BuildSsbSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  auto result = dbsynth::ExecuteQueryWithoutData(
      **session,
      "SELECT SUM(lo_extendedprice), COUNT(*) FROM lineorder "
      "WHERE lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_GT(result->At(0, "count").int_value(), 0);
  EXPECT_GT(result->At(0, "sum_lo_extendedprice").AsDouble(), 0);
}

}  // namespace
}  // namespace workloads
