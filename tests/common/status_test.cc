#include "common/status.h"

#include <gtest/gtest.h>

namespace pdgf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad thing");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, FactoryFunctionsSetDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(NotFoundError("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> moved = std::move(result).value();
  EXPECT_EQ(*moved, 7);
}

StatusOr<int> HalveEven(int value) {
  if (value % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return value / 2;
}

Status UseMacros(int value, int* out) {
  PDGF_ASSIGN_OR_RETURN(int halved, HalveEven(value));
  PDGF_RETURN_IF_ERROR(Status::Ok());
  *out = halved;
  return Status::Ok();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesValue) {
  int out = 0;
  ASSERT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status status = UseMacros(7, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace pdgf
