#include "common/date.h"

#include <gtest/gtest.h>

namespace pdgf {
namespace {

TEST(DateTest, EpochIs1970) {
  Date epoch;
  EXPECT_EQ(epoch.days_since_epoch(), 0);
  EXPECT_EQ(epoch.year(), 1970);
  EXPECT_EQ(epoch.month(), 1);
  EXPECT_EQ(epoch.day(), 1);
  EXPECT_EQ(epoch.ToString(), "1970-01-01");
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(Date::FromCivil(2000, 3, 1).ToString(), "2000-03-01");
  EXPECT_EQ(Date::FromCivil(1992, 1, 1).ToString(), "1992-01-01");
  EXPECT_EQ(Date::FromCivil(1998, 12, 31).ToString(), "1998-12-31");
  // 2000-01-01 is 10957 days after the epoch.
  EXPECT_EQ(Date::FromCivil(2000, 1, 1).days_since_epoch(), 10957);
}

TEST(DateTest, PreEpochDates) {
  Date date = Date::FromCivil(1969, 12, 31);
  EXPECT_EQ(date.days_since_epoch(), -1);
  EXPECT_EQ(date.ToString(), "1969-12-31");
  EXPECT_EQ(Date::FromCivil(1900, 1, 1).ToString(), "1900-01-01");
}

TEST(DateTest, DayOfWeek) {
  // 1970-01-01 was a Thursday.
  EXPECT_EQ(Date().day_of_week(), 4);
  // 2015-05-31 (the paper's conference date) was a Sunday.
  EXPECT_EQ(Date::FromCivil(2015, 5, 31).day_of_week(), 0);
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_TRUE(Date::IsValidCivil(2000, 2, 29));   // divisible by 400
  EXPECT_FALSE(Date::IsValidCivil(1900, 2, 29));  // divisible by 100 only
  EXPECT_TRUE(Date::IsValidCivil(2012, 2, 29));
  EXPECT_FALSE(Date::IsValidCivil(2013, 2, 29));
  EXPECT_EQ(Date::FromCivil(2012, 2, 29).AddDays(1).ToString(),
            "2012-03-01");
}

TEST(DateTest, ParseValid) {
  auto date = Date::Parse("2014-11-30");
  ASSERT_TRUE(date.ok());
  EXPECT_EQ(date->year(), 2014);
  EXPECT_EQ(date->month(), 11);
  EXPECT_EQ(date->day(), 30);
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Date::Parse("").ok());
  EXPECT_FALSE(Date::Parse("2014").ok());
  EXPECT_FALSE(Date::Parse("2014-13-01").ok());
  EXPECT_FALSE(Date::Parse("2014-02-30").ok());
  EXPECT_FALSE(Date::Parse("abcd-ef-gh").ok());
  EXPECT_FALSE(Date::Parse("2014-11-30x").ok());
}

TEST(DateTest, FormatDirectives) {
  Date date = Date::FromCivil(2014, 11, 30);
  // The paper's Figure 9 date format.
  EXPECT_EQ(date.Format("%m/%d/%Y"), "11/30/2014");
  EXPECT_EQ(date.Format("%Y-%m-%d"), "2014-11-30");
  EXPECT_EQ(date.Format("%d.%m.%y"), "30.11.14");
  EXPECT_EQ(date.Format("100%%"), "100%");
  EXPECT_EQ(date.Format("year %Y!"), "year 2014!");
}

TEST(DateTest, ComparisonOperators) {
  Date a = Date::FromCivil(1995, 6, 1);
  Date b = Date::FromCivil(1995, 6, 2);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Date::FromCivil(1995, 6, 1));
}

// Property: civil -> days -> civil round-trips for a dense range of days.
class DateRoundTripTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DateRoundTripTest, DaysToCivilToDays) {
  int64_t days = GetParam();
  Date date(days);
  Date rebuilt = Date::FromCivil(date.year(), date.month(), date.day());
  EXPECT_EQ(rebuilt.days_since_epoch(), days);
  EXPECT_TRUE(Date::IsValidCivil(date.year(), date.month(), date.day()));
  // Parse(ToString()) is the identity.
  auto parsed = Date::Parse(date.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->days_since_epoch(), days);
}

INSTANTIATE_TEST_SUITE_P(DenseSweep, DateRoundTripTest,
                         ::testing::Range<int64_t>(-3700, 30000, 733));

// Property: consecutive days are strictly increasing in civil order.
TEST(DateTest, MonotoneOverDecades) {
  Date previous(-10000);
  for (int64_t d = -9999; d < 20000; d += 17) {
    Date current(d);
    int cmp_year = current.year() - previous.year();
    EXPECT_GE(cmp_year, 0);
    previous = current;
  }
}

}  // namespace
}  // namespace pdgf
