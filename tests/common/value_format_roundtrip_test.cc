// Round-trip tests for the std::to_chars formatting kernels (ISSUE 3
// satellite): AppendIntText / AppendDecimalText / AppendDoubleText
// replaced the historical snprintf("%lld" / "%.*g") paths and must
// render byte-identical text that parses back to the exact value.

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/value.h"
#include "util/rng.h"

namespace pdgf {
namespace {

std::string IntText(int64_t v) {
  std::string out;
  AppendIntText(v, &out);
  return out;
}

std::string DecimalText(int64_t unscaled, int scale) {
  std::string out;
  AppendDecimalText(unscaled, scale, &out);
  return out;
}

std::string DoubleText(double v) {
  std::string out;
  AppendDoubleText(v, &out);
  return out;
}

TEST(FormatRoundtripTest, Int64ExtremesMatchPrintf) {
  const int64_t cases[] = {0,
                           1,
                           -1,
                           42,
                           -42,
                           999999999999LL,
                           std::numeric_limits<int64_t>::max(),
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::min() + 1,
                           std::numeric_limits<int64_t>::max() - 1};
  for (int64_t v : cases) {
    char expected[32];
    std::snprintf(expected, sizeof(expected), "%" PRId64, v);
    EXPECT_EQ(IntText(v), expected) << v;
    // Round trip through strtoll.
    EXPECT_EQ(std::strtoll(IntText(v).c_str(), nullptr, 10), v);
  }
}

TEST(FormatRoundtripTest, Int64RandomMatchesPrintf) {
  Xorshift64 rng(20260806);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next());
    char expected[32];
    std::snprintf(expected, sizeof(expected), "%" PRId64, v);
    EXPECT_EQ(IntText(v), expected);
  }
}

TEST(FormatRoundtripTest, DecimalScales0Through12) {
  // For every scale, the rendering must equal the historical
  // "%s%llu.%0*llu" (sign, whole, '.', zero-padded fraction) and parse
  // back to the exact unscaled value.
  for (int scale = 0; scale <= 12; ++scale) {
    const int64_t samples[] = {0,
                               1,
                               -1,
                               7,
                               -7,
                               123456789,
                               -123456789,
                               1000000000000LL,
                               -999999999999999LL,
                               std::numeric_limits<int64_t>::max(),
                               std::numeric_limits<int64_t>::min() + 1};
    for (int64_t unscaled : samples) {
      std::string text = DecimalText(unscaled, scale);
      char expected[64];
      if (scale <= 0) {
        std::snprintf(expected, sizeof(expected), "%" PRId64, unscaled);
      } else {
        uint64_t pow10 = 1;
        for (int i = 0; i < scale; ++i) pow10 *= 10;
        bool negative = unscaled < 0;
        uint64_t magnitude = negative
                                 ? 0ULL - static_cast<uint64_t>(unscaled)
                                 : static_cast<uint64_t>(unscaled);
        std::snprintf(expected, sizeof(expected),
                      "%s%" PRIu64 ".%0*" PRIu64,
                      negative ? "-" : "", magnitude / pow10, scale,
                      magnitude % pow10);
      }
      EXPECT_EQ(text, expected) << "unscaled=" << unscaled
                                << " scale=" << scale;
      // Round trip: strip sign and '.', rebuild the unscaled integer.
      if (scale > 0) {
        uint64_t rebuilt = 0;
        bool negative = false;
        for (char c : text) {
          if (c == '-') {
            negative = true;
          } else if (c != '.') {
            rebuilt = rebuilt * 10 + static_cast<uint64_t>(c - '0');
          }
        }
        int64_t signed_rebuilt =
            negative ? -static_cast<int64_t>(rebuilt)
                     : static_cast<int64_t>(rebuilt);
        if (unscaled != std::numeric_limits<int64_t>::min()) {
          EXPECT_EQ(signed_rebuilt, unscaled)
              << "text=" << text << " scale=" << scale;
        }
      }
    }
  }
}

TEST(FormatRoundtripTest, DecimalValueTextMatchesKernel) {
  Value v = Value::Decimal(-1234567, 4);
  EXPECT_EQ(v.ToText(), "-123.4567");
  EXPECT_EQ(Value::Decimal(5, 2).ToText(), "0.05");
  EXPECT_EQ(Value::Decimal(-5, 2).ToText(), "-0.05");
  EXPECT_EQ(Value::Decimal(100, 2).ToText(), "1.00");
  EXPECT_EQ(Value::Decimal(7, 0).ToText(), "7");
}

TEST(FormatRoundtripTest, DoubleShortestRendersRoundTrip) {
  // The precision ladder {6, 15, 17} must produce text that strtod
  // parses back to the identical bits.
  const double cases[] = {0.0,
                          1.0,
                          -1.0,
                          0.1,
                          1.0 / 3.0,
                          3.141592653589793,
                          2.718281828459045,
                          1e-300,
                          -1e300,
                          123456.789,
                          0.30000000000000004,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min()};
  for (double v : cases) {
    std::string text = DoubleText(v);
    double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(parsed, v) << "text=" << text;
  }
}

TEST(FormatRoundtripTest, DoubleRandomRoundTripAndLadderParity) {
  // Random doubles: to_chars(general, p) is specified to match
  // printf("%.*g", p); assert both the historical byte-parity and the
  // exact round trip through the ladder's chosen precision.
  Xorshift64 rng(987654321);
  for (int i = 0; i < 5000; ++i) {
    uint64_t bits = rng.Next();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    if (!std::isfinite(v)) continue;
    std::string text = DoubleText(v);
    // Byte parity with the historical snprintf ladder.
    char expected[64];
    for (int precision : {6, 15, 17}) {
      std::snprintf(expected, sizeof(expected), "%.*g", precision, v);
      double parsed = std::strtod(expected, nullptr);
      if (parsed == v || precision == 17) break;
    }
    EXPECT_EQ(text, expected) << "bits=" << bits;
    // Exact round trip.
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << "text=" << text;
  }
}

// The exact historical rendering (ISSUE 7 satellite): the
// snprintf("%.{6,15,17}g") / strtod ladder the to_chars kernel replaced.
// Every adversarial case below must match it byte for byte.
std::string LegacyLadder(double v) {
  char buffer[64];
  for (int precision : {6, 15, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, v);
    if (std::strtod(buffer, nullptr) == v || precision == 17) break;
  }
  return buffer;
}

TEST(FormatRoundtripTest, DoubleAdversarialCorpusMatchesLegacyLadder) {
  const double corpus[] = {
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      1e-310,                   // deep subnormal
      4.9406564584124654e-324,  // == denorm_min, via decimal literal
      2.2250738585072011e-308,  // largest subnormal
      std::numeric_limits<double>::min(),  // smallest normal
      -std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      9007199254740992.0,   // 2^53: integer precision edge
      9007199254740991.0,   // 2^53 - 1
      -9007199254740993.0,  // rounds to -2^53: not exactly representable
      0.30000000000000004,  // needs precision 17
      0.1 + 0.2,
      1.0 / 3.0,
      5e-1,  // precision 6 suffices
      1e22,  // largest power of 10 exactly representable
      1e23,
      123456789.123456789,
      2.2204460492503131e-16,  // machine epsilon
  };
  for (double v : corpus) {
    std::string text = DoubleText(v);
    EXPECT_EQ(text, LegacyLadder(v)) << "v=" << v;
    if (std::isnan(v)) {
      EXPECT_TRUE(std::isnan(std::strtod(text.c_str(), nullptr)));
      continue;
    }
    double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(parsed, v) << "text=" << text;
    // -0.0 == 0.0 compares equal; the sign must survive the trip too.
    EXPECT_EQ(std::signbit(parsed), std::signbit(v)) << "text=" << text;
  }
}

TEST(FormatRoundtripTest, DoubleSubnormalSweepMatchesLegacyLadder) {
  // Random subnormal bit patterns (exponent field zero): the range where
  // from_chars implementations disagree about result_out_of_range and
  // the defensive strtod re-parse in AppendDoubleText must engage.
  Xorshift64 rng(20260809);
  for (int i = 0; i < 5000; ++i) {
    uint64_t bits = (rng.Next() & 0x000fffffffffffffULL) |
                    ((i & 1) ? 0x8000000000000000ULL : 0);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    std::string text = DoubleText(v);
    EXPECT_EQ(text, LegacyLadder(v)) << "bits=" << bits;
    double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(parsed, v) << "text=" << text;
    EXPECT_EQ(std::signbit(parsed), std::signbit(v)) << "text=" << text;
  }
}

TEST(FormatRoundtripTest, DecimalScaleBoundaries13Through18) {
  // uint64 holds 10^18 comfortably; these scales stress the zero-padding
  // width and the whole/frac split at the top of the int64 range.
  for (int scale = 13; scale <= 18; ++scale) {
    uint64_t pow10 = 1;
    for (int i = 0; i < scale; ++i) pow10 *= 10;
    const int64_t samples[] = {0,
                               1,
                               -1,
                               static_cast<int64_t>(pow10) - 1,
                               static_cast<int64_t>(pow10),
                               static_cast<int64_t>(pow10) + 1,
                               std::numeric_limits<int64_t>::max(),
                               std::numeric_limits<int64_t>::min() + 1};
    for (int64_t unscaled : samples) {
      bool negative = unscaled < 0;
      uint64_t magnitude = negative ? 0ULL - static_cast<uint64_t>(unscaled)
                                    : static_cast<uint64_t>(unscaled);
      char expected[64];
      std::snprintf(expected, sizeof(expected),
                    "%s%" PRIu64 ".%0*" PRIu64, negative ? "-" : "",
                    magnitude / pow10, scale, magnitude % pow10);
      EXPECT_EQ(DecimalText(unscaled, scale), expected)
          << "unscaled=" << unscaled << " scale=" << scale;
    }
  }
}

TEST(FormatRoundtripTest, ValueToTextUsesKernels) {
  EXPECT_EQ(Value::Int(std::numeric_limits<int64_t>::min()).ToText(),
            "-9223372036854775808");
  EXPECT_EQ(Value::Int(std::numeric_limits<int64_t>::max()).ToText(),
            "9223372036854775807");
  EXPECT_EQ(Value::Double(0.5).ToText(), "0.5");
  EXPECT_EQ(Value::Bool(true).ToText(), "true");
  EXPECT_EQ(Value::Null().ToText(), "");
}

}  // namespace
}  // namespace pdgf
