#include "common/value.h"

#include <gtest/gtest.h>

namespace pdgf {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value value;
  EXPECT_TRUE(value.is_null());
  EXPECT_EQ(value.kind(), Value::Kind::kNull);
  EXPECT_EQ(value.ToText(), "");
}

TEST(ValueTest, IntRendering) {
  EXPECT_EQ(Value::Int(0).ToText(), "0");
  EXPECT_EQ(Value::Int(-42).ToText(), "-42");
  EXPECT_EQ(Value::Int(9223372036854775807LL).ToText(),
            "9223372036854775807");
}

TEST(ValueTest, DoubleRenderingRoundTrips) {
  for (double v : {0.0, 1.5, -3.25, 0.1, 1e20, 123456.789, 1e-9}) {
    std::string text = Value::Double(v).ToText();
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(ValueTest, DecimalRendering) {
  EXPECT_EQ(Value::Decimal(12345, 2).ToText(), "123.45");
  EXPECT_EQ(Value::Decimal(-12345, 2).ToText(), "-123.45");
  EXPECT_EQ(Value::Decimal(5, 2).ToText(), "0.05");
  EXPECT_EQ(Value::Decimal(5, 0).ToText(), "5");
  EXPECT_EQ(Value::Decimal(1200, 4).ToText(), "0.1200");
}

TEST(ValueTest, DateValue) {
  Value value = Value::FromDate(Date::FromCivil(1995, 7, 16));
  EXPECT_EQ(value.kind(), Value::Kind::kDate);
  EXPECT_EQ(value.ToText(), "1995-07-16");
  EXPECT_EQ(value.date_value().year(), 1995);
}

TEST(ValueTest, BoolRendering) {
  EXPECT_EQ(Value::Bool(true).ToText(), "true");
  EXPECT_EQ(Value::Bool(false).ToText(), "false");
}

TEST(ValueTest, NumericViews) {
  EXPECT_DOUBLE_EQ(Value::Decimal(12345, 2).AsDouble(), 123.45);
  EXPECT_EQ(Value::Decimal(12345, 2).AsInt(), 123);
  EXPECT_EQ(Value::Double(2.9).AsInt(), 2);
  EXPECT_DOUBLE_EQ(Value::Int(7).AsDouble(), 7.0);
  EXPECT_EQ(Value::Null().AsInt(), 0);
  EXPECT_EQ(Value::String("abc").AsInt(), 0);
}

TEST(ValueTest, InPlaceSettersReuseBuffer) {
  Value value = Value::String("hello world, a long enough string");
  const char* data_before = value.string_value().data();
  value.SetInt(5);
  value.SetString("short");
  // The capacity from the first string should be reused.
  EXPECT_EQ(value.string_value(), "short");
  EXPECT_EQ(value.string_value().data(), data_before);
}

TEST(ValueTest, CompareNullsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareNumericAcrossKinds) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Decimal(250, 2)), 0);   // 2 < 2.5
  EXPECT_GT(Value::Double(3.0).Compare(Value::Decimal(250, 2)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, EqualityMixedKinds) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_NE(Value::Int(2), Value::String("2"));
  EXPECT_NE(Value::Null(), Value::Int(0));
  EXPECT_EQ(Value::Decimal(200, 2), Value::Int(2));
}

TEST(ValueTest, HashDistinguishesValues) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
  EXPECT_NE(Value::String("a").Hash(), Value::String("b").Hash());
  EXPECT_EQ(Value::String("same").Hash(), Value::String("same").Hash());
  EXPECT_NE(Value::Null().Hash(), Value::Int(0).Hash());
}

TEST(ValueParseTest, ParsesEveryType) {
  EXPECT_EQ(Value::ParseAs(DataType::kBigInt, "123")->int_value(), 123);
  EXPECT_EQ(Value::ParseAs(DataType::kInteger, "-5")->int_value(), -5);
  EXPECT_DOUBLE_EQ(Value::ParseAs(DataType::kDouble, "2.5")->double_value(),
                   2.5);
  Value decimal = *Value::ParseAs(DataType::kDecimal, "123.45", 2);
  EXPECT_EQ(decimal.decimal_unscaled(), 12345);
  EXPECT_EQ(decimal.decimal_scale(), 2);
  EXPECT_EQ(Value::ParseAs(DataType::kVarchar, "text")->string_value(),
            "text");
  EXPECT_TRUE(Value::ParseAs(DataType::kBoolean, "true")->bool_value());
  EXPECT_FALSE(Value::ParseAs(DataType::kBoolean, "f")->bool_value());
  EXPECT_EQ(Value::ParseAs(DataType::kDate, "1996-04-12")->ToText(),
            "1996-04-12");
}

TEST(ValueParseTest, RejectsMalformed) {
  EXPECT_FALSE(Value::ParseAs(DataType::kBigInt, "12x").ok());
  EXPECT_FALSE(Value::ParseAs(DataType::kBigInt, "").ok());
  EXPECT_FALSE(Value::ParseAs(DataType::kDouble, "nope").ok());
  EXPECT_FALSE(Value::ParseAs(DataType::kBoolean, "maybe").ok());
  EXPECT_FALSE(Value::ParseAs(DataType::kDate, "1996-13-12").ok());
}

// Property sweep: decimal rendering matches the scaled double.
class DecimalRenderTest
    : public ::testing::TestWithParam<std::pair<int64_t, int>> {};

TEST_P(DecimalRenderTest, MatchesScaledDouble) {
  auto [unscaled, scale] = GetParam();
  Value value = Value::Decimal(unscaled, scale);
  double expected = static_cast<double>(unscaled);
  for (int i = 0; i < scale; ++i) expected /= 10;
  EXPECT_NEAR(std::strtod(value.ToText().c_str(), nullptr), expected,
              1e-9 * std::abs(expected) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecimalRenderTest,
    ::testing::Values(std::pair<int64_t, int>{0, 2},
                      std::pair<int64_t, int>{1, 4},
                      std::pair<int64_t, int>{-1, 4},
                      std::pair<int64_t, int>{999999999, 2},
                      std::pair<int64_t, int>{-999999999, 6},
                      std::pair<int64_t, int>{105000, 2},
                      std::pair<int64_t, int>{7, 0}));

}  // namespace
}  // namespace pdgf
