// Property tests for Value's total order: reflexivity, antisymmetry and
// transitivity over randomly generated values of every kind. MiniDB's
// ORDER BY, min/max statistics and group keys all assume these hold.

#include <vector>

#include <gtest/gtest.h>

#include "common/value.h"
#include "util/rng.h"

namespace pdgf {
namespace {

Value RandomValue(Xorshift64* rng) {
  switch (rng->NextBounded(7)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->NextBounded(2) == 1);
    case 2:
      return Value::Int(rng->NextInRange(-1000, 1000));
    case 3:
      return Value::Double(rng->NextDouble() * 200 - 100);
    case 4:
      return Value::Decimal(rng->NextInRange(-100000, 100000),
                            static_cast<int>(rng->NextBounded(4)));
    case 5: {
      std::string text;
      size_t length = rng->NextBounded(6);
      for (size_t i = 0; i < length; ++i) {
        text.push_back(static_cast<char>('a' + rng->NextBounded(4)));
      }
      return Value::String(std::move(text));
    }
    default:
      return Value::FromDate(
          Date(rng->NextInRange(-1000, 20000)));
  }
}

class ValueOrderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueOrderPropertyTest, ReflexiveAndConsistentWithEquality) {
  Xorshift64 rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Value v = RandomValue(&rng);
    EXPECT_EQ(v.Compare(v), 0);
    Value w = RandomValue(&rng);
    if (v == w) {
      EXPECT_EQ(v.Compare(w), 0) << v.ToText() << " vs " << w.ToText();
      EXPECT_EQ(v.Hash() == w.Hash(), v.kind() == w.kind() ? true : v.Hash() == w.Hash())
          << "hash may differ across kinds but not within";
    }
  }
}

TEST_P(ValueOrderPropertyTest, Antisymmetric) {
  Xorshift64 rng(GetParam() + 1);
  for (int i = 0; i < 1000; ++i) {
    Value a = RandomValue(&rng);
    Value b = RandomValue(&rng);
    int ab = a.Compare(b);
    int ba = b.Compare(a);
    EXPECT_EQ(ab, -ba) << a.ToText() << " vs " << b.ToText();
  }
}

TEST_P(ValueOrderPropertyTest, TransitiveOverRandomTriples) {
  Xorshift64 rng(GetParam() + 2);
  int checked = 0;
  for (int i = 0; i < 3000; ++i) {
    Value a = RandomValue(&rng);
    Value b = RandomValue(&rng);
    Value c = RandomValue(&rng);
    if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
      EXPECT_LE(a.Compare(c), 0)
          << a.ToText() << " <= " << b.ToText() << " <= " << c.ToText();
      ++checked;
    }
  }
  EXPECT_GT(checked, 300);
}

TEST_P(ValueOrderPropertyTest, HashEqualForEqualValuesOfSameKind) {
  Xorshift64 rng(GetParam() + 3);
  for (int i = 0; i < 500; ++i) {
    Value a = RandomValue(&rng);
    Value b = a;
    EXPECT_EQ(a.Hash(), b.Hash());
  }
}

TEST_P(ValueOrderPropertyTest, NullIsTheMinimum) {
  Xorshift64 rng(GetParam() + 4);
  Value null_value = Value::Null();
  for (int i = 0; i < 300; ++i) {
    Value v = RandomValue(&rng);
    if (v.is_null()) continue;
    EXPECT_LT(null_value.Compare(v), 0) << v.ToText();
    EXPECT_GT(v.Compare(null_value), 0) << v.ToText();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderPropertyTest,
                         ::testing::Values(11, 222, 3333));

}  // namespace
}  // namespace pdgf
