#include "common/types.h"

#include <gtest/gtest.h>

namespace pdgf {
namespace {

TEST(TypesTest, CanonicalNamesRoundTrip) {
  for (DataType type :
       {DataType::kBoolean, DataType::kSmallInt, DataType::kInteger,
        DataType::kBigInt, DataType::kFloat, DataType::kDouble,
        DataType::kDecimal, DataType::kChar, DataType::kVarchar,
        DataType::kDate}) {
    auto parsed = ParseDataType(DataTypeName(type));
    ASSERT_TRUE(parsed.ok()) << DataTypeName(type);
    EXPECT_EQ(*parsed, type);
  }
}

struct AliasCase {
  const char* name;
  DataType expected;
};

class TypeAliasTest : public ::testing::TestWithParam<AliasCase> {};

TEST_P(TypeAliasTest, ParsesAlias) {
  auto parsed = ParseDataType(GetParam().name);
  ASSERT_TRUE(parsed.ok()) << GetParam().name;
  EXPECT_EQ(*parsed, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Aliases, TypeAliasTest,
    ::testing::Values(AliasCase{"int", DataType::kInteger},
                      AliasCase{"INT4", DataType::kInteger},
                      AliasCase{"int8", DataType::kBigInt},
                      AliasCase{"INT2", DataType::kSmallInt},
                      AliasCase{"real", DataType::kFloat},
                      AliasCase{"double precision", DataType::kDouble},
                      AliasCase{"NUMERIC", DataType::kDecimal},
                      AliasCase{"text", DataType::kVarchar},
                      AliasCase{"CHARACTER VARYING", DataType::kVarchar},
                      AliasCase{"character", DataType::kChar},
                      AliasCase{"bool", DataType::kBoolean},
                      AliasCase{"VARCHAR(44)", DataType::kVarchar},
                      AliasCase{"DECIMAL(15,2)", DataType::kDecimal},
                      AliasCase{"  bigint  ", DataType::kBigInt}));

TEST(TypesTest, RejectsUnknown) {
  EXPECT_FALSE(ParseDataType("BLOB").ok());
  EXPECT_FALSE(ParseDataType("").ok());
  EXPECT_FALSE(ParseDataType("   ").ok());
}

TEST(TypesTest, Predicates) {
  EXPECT_TRUE(IsIntegerType(DataType::kBigInt));
  EXPECT_FALSE(IsIntegerType(DataType::kDouble));
  EXPECT_TRUE(IsFloatingType(DataType::kDecimal));
  EXPECT_TRUE(IsNumericType(DataType::kSmallInt));
  EXPECT_FALSE(IsNumericType(DataType::kVarchar));
  EXPECT_TRUE(IsTextType(DataType::kChar));
  EXPECT_FALSE(IsTextType(DataType::kDate));
}

}  // namespace
}  // namespace pdgf
