#ifndef DBSYNTHPP_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define DBSYNTHPP_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace serve_test {

// Starts an in-process daemon on an ephemeral loopback port and fails
// the current test if it cannot. The returned server is live until
// destroyed (its destructor shuts down and drains).
inline std::unique_ptr<serve::Server> StartServer(serve::ServeOptions options) {
  options.port = 0;
  auto server = std::make_unique<serve::Server>(options);
  pdgf::Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  if (!started.ok()) return nullptr;
  return server;
}

inline serve::ServeClient MustConnect(const serve::Server& server,
                                      int recv_buffer_bytes = 0) {
  auto client = serve::ServeClient::Connect(server.port(), "127.0.0.1",
                                            recv_buffer_bytes);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

// Polls `predicate` until it holds or ~5 s elapse (condition-variable
// latencies in the daemon are tiny; the margin is for sanitizer builds).
template <typename Predicate>
bool WaitFor(Predicate predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

}  // namespace serve_test

#endif  // DBSYNTHPP_TESTS_SERVE_SERVE_TEST_UTIL_H_
