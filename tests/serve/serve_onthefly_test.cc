// On-the-fly serve ops against a live in-process daemon: the `range` op
// (arbitrary row windows over the chunked framing) and the `stream` op
// (replayable CDC event playback). Covers wire-level parity with the
// local cursor/stream paths, replay determinism across connections,
// strict request validation, the new counters (rows_streamed,
// stream_events, streams_active) and failure injection — mid-stream
// disconnect and cross-connection cancel must fail only that job.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cursor.h"
#include "core/output/formatter.h"
#include "core/session.h"
#include "core/stream.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "workloads/tpch.h"

namespace {

using serve::ServeClient;
using serve::ServeOptions;
using serve_test::MustConnect;
using serve_test::StartServer;
using serve_test::WaitFor;

double MetricsNumber(ServeClient& client, const std::string& key) {
  auto response = client.Request(R"({"op":"metrics"})");
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  if (!response.ok()) return -1;
  auto value = serve::ExtractJsonNumber(*response, key);
  EXPECT_TRUE(value.ok()) << key << " missing in: " << *response;
  return value.ok() ? *value : -1;
}

TEST(ServeOnTheFlyTest, RangeOpMatchesLocalCursorBytes) {
  auto server = StartServer({});
  ASSERT_NE(server, nullptr);
  ServeClient client = MustConnect(*server);
  auto job = client.RunJob(
      R"({"op":"range","model":"tpch","scale_factor":0.001,)"
      R"("table":"orders","first_row":100,"row_count":50,"digests":true})");
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE(job->ok) << job->error_code << ": " << job->error_message;
  EXPECT_EQ(job->rows, 50u);

  // The shipped window must be byte-identical to a local cursor pull
  // over the same rows — same model, same SF, same [first, last).
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session = pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  const int table = schema.FindTableIndex("orders");
  ASSERT_GE(table, 0);
  pdgf::CsvFormatter formatter;
  pdgf::RowRangeCursor cursor(session->get(), table, 100, 150);
  std::string expected;
  while (cursor.Next()) {
    formatter.AppendBatch(schema.tables[static_cast<size_t>(table)],
                          cursor.batch(), &expected);
  }
  EXPECT_EQ(job->table_payload.at("orders"), expected);
  ASSERT_EQ(job->digests.size(), 1u);
  EXPECT_EQ(job->digests[0].rows, 50u);
}

TEST(ServeOnTheFlyTest, RangeOpClampsToTableBounds) {
  auto server = StartServer({});
  ASSERT_NE(server, nullptr);
  ServeClient client = MustConnect(*server);
  // region has 5 rows at any SF; a window reaching past the end clamps.
  auto tail = client.RunJob(
      R"({"op":"range","model":"tpch","scale_factor":0.001,)"
      R"("table":"region","first_row":3,"row_count":1000})");
  ASSERT_TRUE(tail.ok());
  ASSERT_TRUE(tail->ok) << tail->error_message;
  EXPECT_EQ(tail->rows, 2u);
  // A window entirely past the end is empty but well-formed.
  auto past = client.RunJob(
      R"({"op":"range","model":"tpch","scale_factor":0.001,)"
      R"("table":"region","first_row":100,"row_count":10})");
  ASSERT_TRUE(past.ok());
  ASSERT_TRUE(past->ok) << past->error_message;
  EXPECT_EQ(past->rows, 0u);
}

TEST(ServeOnTheFlyTest, StreamOpReplaysIdenticallyAcrossConnections) {
  auto server = StartServer({});
  ASSERT_NE(server, nullptr);
  const std::string request =
      R"({"op":"stream","model":"tpch","scale_factor":0.001,)"
      R"("table":"customer","snapshot":true,"digests":true})";
  ServeClient first = MustConnect(*server);
  auto a = first.RunJob(request);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(a->ok) << a->error_message;
  ServeClient second = MustConnect(*server);
  auto b = second.RunJob(request);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->ok);
  // Replayable by construction: same events, same bytes, same digest.
  EXPECT_GT(a->rows, 0u);
  EXPECT_EQ(a->rows, b->rows);
  EXPECT_EQ(a->table_payload.at("customer"), b->table_payload.at("customer"));
  ASSERT_EQ(a->digests.size(), 1u);
  ASSERT_EQ(b->digests.size(), 1u);
  EXPECT_EQ(a->digests[0].hex, b->digests[0].hex);
}

TEST(ServeOnTheFlyTest, StreamOpMatchesLocalGeneratorEvents) {
  auto server = StartServer({});
  ASSERT_NE(server, nullptr);
  ServeClient client = MustConnect(*server);
  auto job = client.RunJob(
      R"({"op":"stream","model":"tpch","scale_factor":0.001,)"
      R"("table":"nation","snapshot":true,"events":10})");
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(job->ok) << job->error_message;
  EXPECT_EQ(job->rows, 10u);

  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session = pdgf::GenerationSession::Create(&schema, {{"SF", "0.001"}});
  ASSERT_TRUE(session.ok());
  const int table = schema.FindTableIndex("nation");
  ASSERT_GE(table, 0);
  pdgf::CsvFormatter formatter;
  pdgf::UpdateStreamOptions options;
  options.snapshot = true;
  pdgf::UpdateStreamGenerator generator(session->get(), table, &formatter,
                                        options);
  std::string expected;
  EXPECT_EQ(generator.NextEvents(&expected, 10), 10u);
  EXPECT_EQ(job->table_payload.at("nation"), expected);
}

TEST(ServeOnTheFlyTest, InvalidRequestsAreRejectedInBand) {
  auto server = StartServer({});
  ASSERT_NE(server, nullptr);
  ServeClient client = MustConnect(*server);
  // Missing table.
  auto no_table = client.Request(
      R"({"op":"range","model":"tpch","row_count":5})");
  ASSERT_TRUE(no_table.ok());
  EXPECT_NE(no_table->find("error"), std::string::npos) << *no_table;
  // Missing row_count.
  auto no_count = client.Request(
      R"({"op":"range","model":"tpch","table":"orders"})");
  ASSERT_TRUE(no_count.ok());
  EXPECT_NE(no_count->find("row_count"), std::string::npos) << *no_count;
  // Unknown table fails in-band after admission.
  auto bad_table = client.RunJob(
      R"({"op":"range","model":"tpch","table":"nosuch","row_count":5})");
  ASSERT_TRUE(bad_table.ok());
  EXPECT_FALSE(bad_table->ok);
  EXPECT_EQ(bad_table->error_code, "NotFound") << bad_table->error_message;
  // The connection survived all three.
  auto pong = client.Request(R"({"op":"ping"})");
  ASSERT_TRUE(pong.ok());
  EXPECT_NE(pong->find("\"ok\""), std::string::npos);
}

TEST(ServeOnTheFlyTest, CountersTrackRowsEventsAndActiveStreams) {
  auto server = StartServer({});
  ASSERT_NE(server, nullptr);
  ServeClient client = MustConnect(*server);
  EXPECT_EQ(MetricsNumber(client, "rows_streamed"), 0);
  EXPECT_EQ(MetricsNumber(client, "stream_events"), 0);
  EXPECT_EQ(MetricsNumber(client, "streams_active"), 0);

  ServeClient runner = MustConnect(*server);
  auto range = runner.RunJob(
      R"({"op":"range","model":"tpch","scale_factor":0.001,)"
      R"("table":"supplier","first_row":0,"row_count":7})");
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(range->ok);
  EXPECT_EQ(MetricsNumber(client, "rows_streamed"), 7);

  auto stream = runner.RunJob(
      R"({"op":"stream","model":"tpch","scale_factor":0.001,)"
      R"("table":"region","snapshot":true})");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->ok);
  EXPECT_EQ(MetricsNumber(client, "stream_events"), 5);  // region: 5 rows
  // The gauge closed back down after playback.
  EXPECT_EQ(MetricsNumber(client, "streams_active"), 0);
}

TEST(ServeOnTheFlyTest, RateLimitedStreamCanBeCancelled) {
  auto server = StartServer({});
  ASSERT_NE(server, nullptr);
  ServeClient victim = MustConnect(*server);
  // 1 event/s over thousands of events: playback would take hours, so
  // the only way this test finishes fast is the cancel path working.
  ASSERT_TRUE(victim
                  .SendLine(R"({"op":"stream","model":"tpch",)"
                            R"("scale_factor":0.001,"table":"orders",)"
                            R"("snapshot":true,"rate":1})")
                  .ok());
  ServeClient controller = MustConnect(*server);
  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(controller, "streams_active") >= 1;
  })) << "stream never started";
  ASSERT_TRUE(WaitFor([&] {
    auto response = controller.Request(R"({"op":"cancel","job":1})");
    return response.ok() && response->find("\"ok\"") != std::string::npos;
  })) << "cancel never found job 1 running";

  auto job = victim.ConsumeJobStream();
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_FALSE(job->ok);
  EXPECT_EQ(job->error_code, "Cancelled") << job->error_message;

  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(controller, "jobs_cancelled") >= 1 &&
           MetricsNumber(controller, "streams_active") == 0 &&
           MetricsNumber(controller, "queue_depth") == 0;
  }));
}

TEST(ServeOnTheFlyTest, DisconnectMidRangeFailsOnlyThatJob) {
  ServeOptions options;
  options.send_buffer_bytes = 16 * 1024;  // backpressure after a few KB
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  {
    ServeClient client = MustConnect(*server, /*recv_buffer_bytes=*/8192);
    // A multi-MB window the client never drains.
    ASSERT_TRUE(client
                    .SendLine(R"({"op":"range","model":"tpch",)"
                              R"("scale_factor":0.01,"table":"lineitem",)"
                              R"("first_row":0,"row_count":60000})")
                    .ok());
    auto header = client.ReadLine();
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    EXPECT_NE(header->find("streaming"), std::string::npos) << *header;
    client.Abort();
  }
  ServeClient probe = MustConnect(*server);
  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(probe, "jobs_failed") >= 1 &&
           MetricsNumber(probe, "queue_depth") == 0;
  })) << "disconnected range job never reached a terminal state";
  // The daemon still serves: a fresh range round-trips.
  auto follow_up = probe.RunJob(
      R"({"op":"range","model":"tpch","scale_factor":0.001,)"
      R"("table":"region","first_row":0,"row_count":5})");
  ASSERT_TRUE(follow_up.ok());
  ASSERT_TRUE(follow_up->ok) << follow_up->error_message;
  EXPECT_EQ(follow_up->rows, 5u);
}

TEST(ServeOnTheFlyTest, RangeWindowInUpdateModeShipsOnlySelectedRows) {
  // update > 0 flows through the range op to the cursor's update filter;
  // tpch tables are static, so every update window is empty — the
  // contract is "no events", not an error.
  auto server = StartServer({});
  ASSERT_NE(server, nullptr);
  ServeClient client = MustConnect(*server);
  auto job = client.RunJob(
      R"({"op":"range","model":"tpch","scale_factor":0.001,)"
      R"("table":"orders","first_row":0,"row_count":100,"update":0})");
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(job->ok);
  EXPECT_EQ(job->rows, 100u);
}

}  // namespace
