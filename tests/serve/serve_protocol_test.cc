// Serve wire protocol units: the flat JSON request parser, the response
// frame formatters, and the mergeable TableDigest state serialization
// the protocol ships shard digests with. These run without sockets so
// parser edge cases stay cheap to enumerate.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/value.h"
#include "serve/protocol.h"
#include "util/hash.h"

namespace {

using serve::JobRequest;
using serve::ParseFlatJsonObject;
using serve::ParseJobRequest;

TEST(ServeProtocolTest, ParsesFullGenerateRequest) {
  auto request = ParseJobRequest(
      R"({"model":"tpch","scale_factor":0.01,"node_id":2,"node_count":4,)"
      R"("format":"csv","workers":2,"digests":true,"update":3})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, "generate");
  EXPECT_EQ(request->model, "tpch");
  // The raw numeric token survives verbatim: "0.01" must reach the SF
  // property override exactly as the CLI's --sf 0.01 would.
  EXPECT_EQ(request->scale_factor, "0.01");
  EXPECT_EQ(request->node_id, 2);
  EXPECT_EQ(request->node_count, 4);
  EXPECT_EQ(request->workers, 2);
  EXPECT_EQ(request->update, 3u);
  EXPECT_TRUE(request->digests);
}

TEST(ServeProtocolTest, DefaultsMatchSingleNodeCsv) {
  auto request = ParseJobRequest(R"({"model":"ssb"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, "generate");
  EXPECT_EQ(request->node_id, 0);
  EXPECT_EQ(request->node_count, 1);
  EXPECT_EQ(request->format, "csv");
  EXPECT_EQ(request->workers, 1);
  EXPECT_FALSE(request->digests);
  EXPECT_TRUE(request->scale_factor.empty());
}

TEST(ServeProtocolTest, ParsesControlOps) {
  auto ping = ParseJobRequest(R"({"op":"ping"})");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->op, "ping");

  auto cancel = ParseJobRequest(R"({"op":"cancel","job":17})");
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel->op, "cancel");
  EXPECT_EQ(cancel->job_id, 17u);
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  const char* kBad[] = {
      "",                                      // empty
      "{",                                     // truncated object
      R"({"model":"tpch")",                    // missing brace
      R"({"model":)",                          // missing value
      R"({"model":"tpch"} trailing)",          // trailing bytes
      R"({"model":tpch})",                     // unquoted string
      R"({"model":"tpch","model":"ssb"})",     // duplicate key
      R"({"typo_field":"x","model":"tpch"})",  // unknown key
      R"({"node_id":"two","model":"tpch"})",   // non-integer
      R"({"node_id":-1,"model":"tpch"})",      // negative
      R"({"digests":"yes","model":"tpch"})",   // non-boolean
      R"({"op":"generate"})",                  // generate without model
      R"({"node_id":1})",                      // no op, no model
      R"({"scale_factor":1.2.3,"model":"t"})", // malformed number
      "{\"model\":\"tp\x01h\"}",               // raw control char
  };
  for (const char* text : kBad) {
    EXPECT_FALSE(ParseJobRequest(text).ok()) << "accepted: " << text;
  }
}

TEST(ServeProtocolTest, RejectsNodeIdOutsideNodeCount) {
  EXPECT_FALSE(
      ParseJobRequest(R"({"model":"tpch","node_id":4,"node_count":4})").ok());
  EXPECT_TRUE(
      ParseJobRequest(R"({"model":"tpch","node_id":3,"node_count":4})").ok());
}

TEST(ServeProtocolTest, FlatObjectResolvesStringEscapes) {
  auto fields =
      ParseFlatJsonObject(R"({"a":"x\n\"y\"","b":"A","c":null})");
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  EXPECT_EQ(fields->at("a"), "x\n\"y\"");
  EXPECT_EQ(fields->at("b"), "A");
  EXPECT_EQ(fields->at("c"), "null");
}

TEST(ServeProtocolTest, FrameFormattersEmitParseableLines) {
  std::string chunk = serve::FormatChunkHeader("lineitem", 4096);
  ASSERT_EQ(chunk.back(), '\n');
  chunk.pop_back();
  auto fields = ParseFlatJsonObject(chunk);
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  EXPECT_EQ(fields->at("table"), "lineitem");
  EXPECT_EQ(fields->at("bytes"), "4096");

  std::string error =
      serve::FormatErrorLine(pdgf::ResourceExhaustedError("queue \"full\""));
  error.pop_back();
  auto error_fields = ParseFlatJsonObject(error);
  ASSERT_TRUE(error_fields.ok()) << error_fields.status().ToString();
  EXPECT_EQ(error_fields->at("status"), "error");
  EXPECT_EQ(error_fields->at("code"), "ResourceExhausted");
  EXPECT_EQ(error_fields->at("message"), "queue \"full\"");
}

TEST(ServeProtocolTest, ExtractJsonNumberScrapesNestedDocuments) {
  const std::string doc =
      R"({"serve":{"jobs_accepted":7,"queue_depth":2},"wall":0.5})";
  auto accepted = serve::ExtractJsonNumber(doc, "jobs_accepted");
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(*accepted, 7.0);
  auto wall = serve::ExtractJsonNumber(doc, "wall");
  ASSERT_TRUE(wall.ok());
  EXPECT_DOUBLE_EQ(*wall, 0.5);
  EXPECT_FALSE(serve::ExtractJsonNumber(doc, "absent").ok());
}

// The digest states the trailer ships must reconstruct mergeable
// accumulators: shard states merged on the client side have to equal a
// digest of the full row set.
TEST(ServeDigestStateTest, SerializedShardsMergeToWholeTableDigest) {
  std::vector<pdgf::Value> row_values = {pdgf::Value::Int(42),
                                         pdgf::Value::String("abc")};
  pdgf::TableDigest whole;
  pdgf::TableDigest shard_a;
  pdgf::TableDigest shard_b;
  for (uint64_t row = 0; row < 100; ++row) {
    std::string bytes = "row-" + std::to_string(row);
    whole.AddRow(row, bytes, row_values);
    (row % 2 == 0 ? shard_a : shard_b).AddRow(row, bytes, row_values);
  }

  auto restored_a = pdgf::TableDigest::DeserializeState(
      shard_a.SerializeState());
  ASSERT_TRUE(restored_a.ok()) << restored_a.status().ToString();
  auto restored_b = pdgf::TableDigest::DeserializeState(
      shard_b.SerializeState());
  ASSERT_TRUE(restored_b.ok()) << restored_b.status().ToString();
  EXPECT_TRUE(*restored_a == shard_a);

  pdgf::TableDigest merged = *restored_a;
  merged.Merge(*restored_b);
  EXPECT_TRUE(merged == whole) << "merged shard states diverge from the "
                                  "whole-table digest";
  EXPECT_EQ(merged.Hex(), whole.Hex());
  EXPECT_EQ(merged.rows(), 100u);
}

TEST(ServeDigestStateTest, RejectsCorruptStates) {
  pdgf::TableDigest digest;
  digest.AddRowBytes(0, "x");
  std::string good = digest.SerializeState();
  ASSERT_TRUE(pdgf::TableDigest::DeserializeState(good).ok());

  EXPECT_FALSE(pdgf::TableDigest::DeserializeState("").ok());
  EXPECT_FALSE(pdgf::TableDigest::DeserializeState("2:0:0:0:0:0:0:").ok());
  EXPECT_FALSE(pdgf::TableDigest::DeserializeState("1:0:0:0:0:0").ok());
  EXPECT_FALSE(
      pdgf::TableDigest::DeserializeState("1:zz:0:0:0:0:0:").ok());
  EXPECT_FALSE(pdgf::TableDigest::DeserializeState(good + ":extra").ok());
}

}  // namespace
