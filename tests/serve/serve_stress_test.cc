// Concurrency stress for the serve daemon, run by the TSan tier
// (tools/check.sh): many clients hammer one daemon with a mix of small
// jobs, control ops, malformed lines, cancels and hard disconnects.
// The invariant is accounting, not throughput: when the dust settles
// every admitted job reached exactly one terminal state, the queue is
// empty, and the daemon still serves.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace {

using serve::ServeClient;
using serve::ServeOptions;
using serve_test::MustConnect;
using serve_test::StartServer;
using serve_test::WaitFor;

TEST(ServeStressTest, ManyClientsMixedOpsLeaveConsistentCounters) {
  constexpr int kThreads = 6;
  constexpr int kIterations = 4;

  ServeOptions options;
  options.max_jobs = 3;            // force rejections under load
  options.max_connections = 2 * kThreads;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  std::atomic<int> transport_errors{0};
  std::atomic<int> jobs_ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        auto client = ServeClient::Connect(server->port());
        if (!client.ok()) {
          transport_errors.fetch_add(1);
          continue;
        }
        // Deterministic per-thread schedule, no shared RNG: each thread
        // cycles through a different op mix.
        switch ((t + i) % 5) {
          case 0: {  // complete small job, digests on
            auto job = client->RunJob(
                R"({"model":"tpch","scale_factor":0.001,"digests":true})");
            if (job.ok() && job->ok) jobs_ok.fetch_add(1);
            break;
          }
          case 1: {  // job without digests; rejection is acceptable
            auto job = client->RunJob(
                R"({"model":"tpch","scale_factor":0.001})");
            if (job.ok() && job->ok) jobs_ok.fetch_add(1);
            break;
          }
          case 2: {  // malformed line, then prove the connection lives
            client->Request("{broken").status();
            client->Request(R"({"op":"ping"})").status();
            break;
          }
          case 3: {  // metrics scrape while jobs stream elsewhere
            client->Request(R"({"op":"metrics"})").status();
            break;
          }
          case 4: {  // start a job and vanish mid-stream
            if (client->SendLine(R"({"model":"tpch","scale_factor":0.001})")
                    .ok()) {
              client->ReadLine().status();  // wait for header or error
            }
            client->Abort();
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_GT(jobs_ok.load(), 0);

  // Settle: every admitted job must reach a terminal state and every
  // connection thread must exit.
  ServeClient probe = MustConnect(*server);
  auto metric = [&](const char* key) {
    auto response = probe.Request(R"({"op":"metrics"})");
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) return -1.0;
    auto value = serve::ExtractJsonNumber(*response, key);
    return value.ok() ? *value : -1.0;
  };
  ASSERT_TRUE(WaitFor([&] { return metric("queue_depth") == 0; }));
  ASSERT_TRUE(WaitFor([&] { return metric("active_connections") <= 1; }));

  double accepted = metric("jobs_accepted");
  double terminal = metric("jobs_completed") + metric("jobs_failed") +
                    metric("jobs_cancelled");
  EXPECT_EQ(accepted, terminal)
      << "admitted jobs leaked without reaching a terminal state";
  EXPECT_GE(accepted, static_cast<double>(jobs_ok.load()));

  // And the daemon is still healthy after the storm.
  auto job = probe.RunJob(
      R"({"model":"tpch","scale_factor":0.001,"digests":true})");
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_TRUE(job->ok) << job->error_code << ": " << job->error_message;
}

// Shutdown racing live streams: every connection unblocks, Wait()
// drains, nothing deadlocks. Run under TSan this also proves the
// teardown path is free of lock-order and data races.
TEST(ServeStressTest, ShutdownWhileStreamsAreLiveDrainsCleanly) {
  ServeOptions options;
  options.max_jobs = 4;
  options.send_buffer_bytes = 16 * 1024;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  // Park several jobs mid-stream behind unread sockets.
  std::vector<ServeClient> holders;
  for (int i = 0; i < 3; ++i) {
    holders.push_back(MustConnect(*server, /*recv_buffer_bytes=*/8192));
    ASSERT_TRUE(holders.back()
                    .SendLine(R"({"model":"tpch","scale_factor":0.01})")
                    .ok());
  }
  ServeClient controller = MustConnect(*server);
  ASSERT_TRUE(WaitFor([&] {
    auto response = controller.Request(R"({"op":"metrics"})");
    if (!response.ok()) return false;
    auto depth = serve::ExtractJsonNumber(*response, "queue_depth");
    return depth.ok() && *depth >= 1;
  }));

  server->RequestShutdown();
  server->Wait();  // must not hang on the parked streams
  for (ServeClient& holder : holders) {
    // The parked streams die with a transport or in-band error — either
    // way the client unblocks promptly.
    auto job = holder.ConsumeJobStream();
    if (job.ok()) EXPECT_FALSE(job->ok);
  }
}

}  // namespace
