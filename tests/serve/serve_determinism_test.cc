// Multi-tenant determinism (ISSUE 6 acceptance): N concurrent clients
// each pull one node-share of TPC-H SF 0.01 from one daemon; the shard
// digest states merged client-side must equal the committed golden
// fixtures — i.e. concurrent serving through sockets changes NOTHING
// about what is generated. A repeat of the same request must also be
// byte-identical on the wire (modulo the job id header and the timing
// trailer), which pins the frame order, not just the payload.

#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "util/files.h"
#include "util/hash.h"
#include "util/strings.h"

#ifndef DBSYNTHPP_SOURCE_DIR
#define DBSYNTHPP_SOURCE_DIR "."
#endif

namespace {

using pdgf::TableDigest;
using pdgf::TableDigestEntry;
using serve::ServeClient;
using serve::ServeOptions;
using serve::StreamedJob;
using serve_test::MustConnect;
using serve_test::StartServer;

std::map<std::string, TableDigestEntry> LoadTpchGolden() {
  std::string fixture_path =
      pdgf::JoinPath(DBSYNTHPP_SOURCE_DIR,
                     "tests/integration/golden/tpch_sf0.01.digests");
  auto contents = pdgf::ReadFileToString(fixture_path);
  EXPECT_TRUE(contents.ok()) << "missing fixture " << fixture_path;
  std::map<std::string, TableDigestEntry> golden;
  if (!contents.ok()) return golden;
  auto entries = pdgf::ParseDigestFixture(*contents);
  EXPECT_TRUE(entries.ok()) << entries.status().ToString();
  if (!entries.ok()) return golden;
  for (const TableDigestEntry& entry : *entries) golden[entry.table] = entry;
  return golden;
}

TEST(ServeDeterminismTest, FourConcurrentNodeShareClientsMatchGolden) {
  constexpr int kNodes = 4;
  ServeOptions options;
  options.max_jobs = kNodes;  // all shares admitted simultaneously
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  std::vector<StreamedJob> shards(kNodes);
  std::vector<std::string> errors(kNodes);
  {
    std::vector<std::thread> clients;
    for (int node = 0; node < kNodes; ++node) {
      clients.emplace_back([&, node] {
        auto client = ServeClient::Connect(server->port());
        if (!client.ok()) {
          errors[node] = client.status().ToString();
          return;
        }
        auto job = client->RunJob(pdgf::StrPrintf(
            R"({"model":"tpch","scale_factor":0.01,"node_id":%d,)"
            R"("node_count":%d,"digests":true})",
            node, kNodes));
        if (!job.ok()) {
          errors[node] = job.status().ToString();
          return;
        }
        shards[node] = std::move(*job);
      });
    }
    for (std::thread& thread : clients) thread.join();
  }
  for (int node = 0; node < kNodes; ++node) {
    ASSERT_TRUE(errors[node].empty()) << "node " << node << ": "
                                      << errors[node];
    ASSERT_TRUE(shards[node].ok) << "node " << node << ": "
                                 << shards[node].error_code << ": "
                                 << shards[node].error_message;
  }

  // Merge the shipped shard states per table, in arbitrary order — the
  // accumulators are commutative, so node order must not matter.
  std::map<std::string, TableDigest> merged;
  for (const StreamedJob& shard : shards) {
    for (const serve::ReceivedDigest& digest : shard.digests) {
      merged[digest.table].Merge(digest.state);
    }
  }

  std::map<std::string, TableDigestEntry> golden = LoadTpchGolden();
  ASSERT_EQ(golden.size(), 8u);
  ASSERT_EQ(merged.size(), golden.size());
  for (const auto& [table, digest] : merged) {
    auto it = golden.find(table);
    ASSERT_NE(it, golden.end()) << "unexpected table " << table;
    EXPECT_EQ(digest.Hex(), it->second.hex)
        << "merged shard digests diverge from the single-node golden for "
        << table << " — serving through sockets changed the data";
    EXPECT_EQ(digest.rows(), it->second.rows) << table;
    EXPECT_EQ(digest.bytes(), it->second.bytes) << table;
  }

  // Every client also streamed real payload for every table it had rows
  // in; totals across shards match the golden row/byte totals.
  uint64_t total_rows = 0;
  for (const StreamedJob& shard : shards) total_rows += shard.rows;
  uint64_t golden_rows = 0;
  for (const auto& [table, entry] : golden) golden_rows += entry.rows;
  EXPECT_EQ(total_rows, golden_rows);
}

// Strips the first line (streaming header: contains the job id) and the
// last line (ok trailer: contains the job id and wall seconds) so two
// runs of the same request can be compared byte-for-byte.
std::string StreamBody(const StreamedJob& job) {
  size_t first_newline = job.raw.find('\n');
  size_t last_newline = job.raw.rfind('\n', job.raw.size() - 2);
  EXPECT_NE(first_newline, std::string::npos);
  EXPECT_NE(last_newline, std::string::npos);
  return job.raw.substr(first_newline + 1,
                        last_newline - first_newline);
}

TEST(ServeDeterminismTest, RepeatRequestIsByteIdenticalOnTheWire) {
  auto server = StartServer(ServeOptions{});
  ASSERT_NE(server, nullptr);
  const std::string request =
      R"({"model":"tpch","scale_factor":0.01,"digests":true})";

  ServeClient first = MustConnect(*server);
  auto run_a = first.RunJob(request);
  ASSERT_TRUE(run_a.ok()) << run_a.status().ToString();
  ASSERT_TRUE(run_a->ok) << run_a->error_code << ": " << run_a->error_message;

  ServeClient second = MustConnect(*server);
  auto run_b = second.RunJob(request);
  ASSERT_TRUE(run_b.ok()) << run_b.status().ToString();
  ASSERT_TRUE(run_b->ok) << run_b->error_code << ": " << run_b->error_message;

  // Same chunk frames in the same order carrying the same bytes: the
  // single-worker single-writer pipeline documented in docs/serve.md
  // makes the whole stream a pure function of the request.
  EXPECT_EQ(run_a->rows, run_b->rows);
  EXPECT_EQ(run_a->bytes, run_b->bytes);
  std::string body_a = StreamBody(*run_a);
  std::string body_b = StreamBody(*run_b);
  ASSERT_EQ(body_a.size(), body_b.size());
  EXPECT_TRUE(body_a == body_b)
      << "two runs of the identical request produced different streams";

  // And the payload equals what a direct (non-serve) engine run writes:
  // spot-check one table's bytes against its golden byte count.
  std::map<std::string, TableDigestEntry> golden = LoadTpchGolden();
  for (const auto& [table, payload] : run_a->table_payload) {
    auto it = golden.find(table);
    ASSERT_NE(it, golden.end()) << table;
    EXPECT_EQ(payload.size(), it->second.bytes)
        << "payload bytes for " << table << " differ from the golden run";
  }
}

}  // namespace
