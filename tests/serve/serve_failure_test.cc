// Failure injection against a live in-process daemon (ISSUE 6): every
// scenario must leave the daemon serving — asserted by running a real
// follow-up job — and must not leak job slots, buffer-pool buffers or
// file descriptors. Failed engine runs don't populate a MetricsReport,
// so pool health is asserted through the follow-up successful job's
// report plus process-level fd accounting.

#include <dirent.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "core/output/sink.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace {

using serve::ServeClient;
using serve::ServeOptions;
using serve_test::MustConnect;
using serve_test::StartServer;
using serve_test::WaitFor;

int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

double MetricsNumber(ServeClient& client, const std::string& key) {
  auto response = client.Request(R"({"op":"metrics"})");
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  if (!response.ok()) return -1;
  auto value = serve::ExtractJsonNumber(*response, key);
  EXPECT_TRUE(value.ok()) << key << " missing in: " << *response;
  return value.ok() ? *value : -1;
}

// The canonical "is the daemon still healthy" probe: a small generate
// job with digests must stream to completion.
void ExpectFollowUpJobSucceeds(const serve::Server& server) {
  ServeClient client = MustConnect(server);
  auto job = client.RunJob(
      R"({"model":"tpch","scale_factor":0.001,"digests":true})");
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE(job->ok) << job->error_code << ": " << job->error_message;
  EXPECT_GT(job->rows, 0u);
  EXPECT_EQ(job->digests.size(), 8u);  // tpch has 8 tables
}

TEST(ServeFailureTest, MalformedRequestsAreReportedAndRecoverable) {
  auto server = StartServer(ServeOptions{});
  ASSERT_NE(server, nullptr);
  ServeClient client = MustConnect(*server);

  const char* kBad[] = {
      "{not json at all",
      R"({"model":"tpch","typo":1})",
      R"({"node_id":-3,"model":"tpch"})",
      R"({"op":"generate"})",
  };
  for (const char* bad : kBad) {
    auto response = client.Request(bad);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    auto fields = serve::ParseFlatJsonObject(*response);
    ASSERT_TRUE(fields.ok()) << *response;
    EXPECT_EQ(fields->at("status"), "error") << *response;
  }
  // The SAME connection keeps serving — the stream stays line-aligned.
  auto pong = client.Request(R"({"op":"ping"})");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_NE(pong->find("\"ok\""), std::string::npos);

  EXPECT_GE(MetricsNumber(client, "requests_malformed"), 4);
  EXPECT_EQ(MetricsNumber(client, "jobs_accepted"), 0);
  ExpectFollowUpJobSucceeds(*server);
}

TEST(ServeFailureTest, TruncatedRequestDropsConnectionNotDaemon) {
  auto server = StartServer(ServeOptions{});
  ASSERT_NE(server, nullptr);
  {
    ServeClient client = MustConnect(*server);
    // Bytes with no terminating newline, then a hard close: the daemon
    // must treat the torn request as malformed, not crash or hang.
    ASSERT_TRUE(pdgf::WriteAllToFd(client.fd(), R"({"model":"tp)").ok());
    client.Abort();
  }
  ServeClient probe = MustConnect(*server);
  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(probe, "requests_malformed") >= 1;
  })) << "truncated request was never counted";
  // The torn request is ALSO distinguishable from in-band garbage: the
  // connection died with a partial line buffered.
  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(probe, "requests_truncated") >= 1;
  })) << "torn request not counted as truncated";
  EXPECT_EQ(MetricsNumber(probe, "jobs_accepted"), 0);
  ExpectFollowUpJobSucceeds(*server);
}

TEST(ServeFailureTest, IdleTimeoutMidRequestCountsTruncated) {
  // The SO_RCVTIMEO idle drop with a partial request line buffered is a
  // half-sent request; a silent connection timing out with NOTHING
  // buffered is a clean idle close. The requests_truncated counter must
  // separate the two.
  ServeOptions options;
  options.request_timeout_seconds = 1;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  ServeClient probe = MustConnect(*server);

  // Never sends a byte: times out as a clean idle close.
  ServeClient idle = MustConnect(*server);
  // Sends half a request line, then goes silent: times out mid-request.
  ServeClient torn = MustConnect(*server);
  ASSERT_TRUE(pdgf::WriteAllToFd(torn.fd(), R"({"op":"pi)").ok());

  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(probe, "requests_truncated") >= 1;
  })) << "idle-dropped partial request was never counted";
  // Both connections have timed out once truncated==1 is visible and
  // active_connections has drained to the probe alone; the clean idle
  // close must not have bumped the counter.
  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(probe, "active_connections") <= 1;
  }));
  EXPECT_EQ(MetricsNumber(probe, "requests_truncated"), 1);
  ExpectFollowUpJobSucceeds(*server);
}

TEST(ServeFailureTest, WriteAllToFdSurvivesDefaultSigpipeDisposition) {
  // An embedding server must not depend on the CLI's process-wide
  // signal(SIGPIPE, SIG_IGN): with the disposition at SIG_DFL, a write
  // to a vanished peer must surface as IoError, not kill the process.
  struct sigaction default_action {};
  default_action.sa_handler = SIG_DFL;
  struct sigaction old_action {};
  ASSERT_EQ(sigaction(SIGPIPE, &default_action, &old_action), 0);

  // Pipe with a dead reader: exercises the masked-write fallback.
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ::close(fds[0]);
  pdgf::Status pipe_status = pdgf::WriteAllToFd(fds[1], "doomed");
  EXPECT_FALSE(pipe_status.ok());
  EXPECT_NE(pipe_status.ToString().find("Broken pipe"), std::string::npos)
      << pipe_status.ToString();
  ::close(fds[1]);

  // Socket with a dead peer: exercises the send(MSG_NOSIGNAL) path.
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[0]);
  pdgf::Status socket_status = pdgf::WriteAllToFd(sv[1], "doomed");
  EXPECT_FALSE(socket_status.ok());
  ::close(sv[1]);

  ASSERT_EQ(sigaction(SIGPIPE, &old_action, nullptr), 0);
}

TEST(ServeFailureTest, UnknownModelIsRejectedInBand) {
  auto server = StartServer(ServeOptions{});
  ASSERT_NE(server, nullptr);
  ServeClient client = MustConnect(*server);
  auto job = client.RunJob(R"({"model":"no_such_model"})");
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_FALSE(job->ok);
  EXPECT_EQ(job->error_code, "NotFound") << job->error_message;
  // Rejected before admission: no job slot was consumed.
  EXPECT_EQ(MetricsNumber(client, "jobs_accepted"), 0);
  ExpectFollowUpJobSucceeds(*server);
}

TEST(ServeFailureTest, ClientDisconnectMidStreamFailsOnlyThatJob) {
  ServeOptions options;
  options.send_buffer_bytes = 16 * 1024;  // backpressure after a few KB
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  int fds_before = CountOpenFds();

  {
    ServeClient client = MustConnect(*server, /*recv_buffer_bytes=*/8192);
    ASSERT_TRUE(
        client.SendLine(R"({"model":"tpch","scale_factor":0.01})").ok());
    auto header = client.ReadLine();
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    EXPECT_NE(header->find("streaming"), std::string::npos) << *header;
    // Vanish without draining ~11 MB: the server's next send hits a
    // reset socket and the engine run must abort, releasing its
    // buffers.
    client.Abort();
  }

  ServeClient probe = MustConnect(*server);
  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(probe, "jobs_failed") >= 1 &&
           MetricsNumber(probe, "queue_depth") == 0;
  })) << "disconnected job never reached a terminal state";

  ExpectFollowUpJobSucceeds(*server);
  // The follow-up run reused the pool without deadlock or leak: its
  // peak demand stayed within capacity.
  double capacity = MetricsNumber(probe, "capacity");
  double peak = MetricsNumber(probe, "peak_in_flight");
  EXPECT_GT(capacity, 0);
  EXPECT_LE(peak, capacity);

  // Connection teardown returned every fd (generous slack for test
  // machinery churn).
  ASSERT_TRUE(WaitFor([&] { return MetricsNumber(probe, "active_connections") <= 2; }));
  int fds_after = CountOpenFds();
  EXPECT_LE(fds_after, fds_before + 4)
      << "fd count grew from " << fds_before << " to " << fds_after;
}

TEST(ServeFailureTest, CancelAbortsARunningJob) {
  ServeOptions options;
  options.send_buffer_bytes = 16 * 1024;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  ServeClient victim = MustConnect(*server, /*recv_buffer_bytes=*/8192);
  ASSERT_TRUE(
      victim.SendLine(R"({"model":"tpch","scale_factor":0.01})").ok());
  // Not draining yet: backpressure pins the job in its streaming phase,
  // so the cancel below cannot race job completion. A fresh server
  // numbers jobs from 1.
  ServeClient controller = MustConnect(*server);
  ASSERT_TRUE(WaitFor([&] {
    auto response = controller.Request(R"({"op":"cancel","job":1})");
    return response.ok() &&
           response->find("\"ok\"") != std::string::npos;
  })) << "cancel never found job 1 running";

  auto job = victim.ConsumeJobStream();
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_FALSE(job->ok);
  EXPECT_EQ(job->error_code, "Cancelled") << job->error_message;

  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(controller, "jobs_cancelled") >= 1 &&
           MetricsNumber(controller, "queue_depth") == 0;
  }));
  ExpectFollowUpJobSucceeds(*server);
}

TEST(ServeFailureTest, SaturatedQueueRejectsImmediatelyThenRecovers) {
  ServeOptions options;
  options.max_jobs = 1;
  options.send_buffer_bytes = 16 * 1024;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  ServeClient holder = MustConnect(*server, /*recv_buffer_bytes=*/8192);
  ASSERT_TRUE(
      holder.SendLine(R"({"model":"tpch","scale_factor":0.01})").ok());

  ServeClient prober = MustConnect(*server);
  ASSERT_TRUE(WaitFor([&] {
    return MetricsNumber(prober, "queue_depth") == 1;
  })) << "holder job never occupied the queue";

  // The one slot is held and the holder is not draining — a second job
  // must bounce NOW, not park.
  auto rejected = prober.RunJob(R"({"model":"tpch","scale_factor":0.001})");
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_FALSE(rejected->ok);
  EXPECT_EQ(rejected->error_code, "ResourceExhausted")
      << rejected->error_message;
  EXPECT_GE(MetricsNumber(prober, "jobs_rejected"), 1);

  // Drain the holder; its slot frees and the same daemon serves again.
  auto held = holder.ConsumeJobStream();
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_TRUE(held->ok) << held->error_code << ": " << held->error_message;
  ExpectFollowUpJobSucceeds(*server);
  EXPECT_EQ(MetricsNumber(prober, "queue_depth"), 0);
}

TEST(ServeFailureTest, ConnectionLimitRejectsExtraClients) {
  ServeOptions options;
  options.max_connections = 2;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  ServeClient first = MustConnect(*server);
  ServeClient second = MustConnect(*server);
  // Both slots must be registered before the third connect, and pings
  // prove both are live.
  ASSERT_TRUE(first.Request(R"({"op":"ping"})").ok());
  ASSERT_TRUE(second.Request(R"({"op":"ping"})").ok());

  ServeClient third = MustConnect(*server);
  auto response = third.ReadLine();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("ResourceExhausted"), std::string::npos)
      << *response;

  // Freeing a slot restores service for new clients.
  first.Abort();
  ASSERT_TRUE(WaitFor([&] {
    return serve::ExtractJsonNumber(
               second.Request(R"({"op":"metrics"})").value(),
               "active_connections")
               .value() <= 1;
  }));
  ExpectFollowUpJobSucceeds(*server);
}

TEST(ServeFailureTest, ShutdownDrainsAndStopsAccepting) {
  auto server = StartServer(ServeOptions{});
  ASSERT_NE(server, nullptr);
  int port = server->port();
  {
    ServeClient client = MustConnect(*server);
    auto response = client.Request(R"({"op":"shutdown"})");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_NE(response->find("\"ok\""), std::string::npos);
  }
  server->Wait();
  server.reset();
  auto late = serve::ServeClient::Connect(port);
  EXPECT_FALSE(late.ok()) << "daemon still accepting after shutdown";
}

}  // namespace
