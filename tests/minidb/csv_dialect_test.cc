// Property sweep: CSV round-trips across dialects (delimiters, quotes,
// null markers) for rows exercising quoting, embedded delimiters,
// newlines, NULLs and empty strings.

#include <gtest/gtest.h>

#include "minidb/csv.h"
#include "minidb/sql.h"

namespace minidb {
namespace {

using pdgf::Value;

struct Dialect {
  char delimiter;
  char quote;
  const char* null_marker;
};

class CsvDialectTest : public ::testing::TestWithParam<Dialect> {};

TEST_P(CsvDialectTest, RoundTripsTrickyContent) {
  const Dialect& dialect = GetParam();
  CsvOptions options;
  options.delimiter = dialect.delimiter;
  options.quote = dialect.quote;
  options.null_marker = dialect.null_marker;

  Database database;
  ASSERT_TRUE(ExecuteSql(&database,
                         "CREATE TABLE t (id BIGINT PRIMARY KEY, "
                         "s VARCHAR(64), d DECIMAL(10,2), dt DATE)")
                  .ok());
  Table* table = database.GetTable("t");
  const std::string tricky[] = {
      "plain",
      "",                                      // empty vs NULL
      std::string(1, dialect.delimiter) + "x",  // leading delimiter
      "a" + std::string(1, dialect.delimiter) + "b",
      std::string(1, dialect.quote) + "quoted" +
          std::string(1, dialect.quote),
      "line\nbreak",
      options.null_marker,                     // literal marker text
      "trailing space ",
  };
  int64_t id = 0;
  for (const std::string& text : tricky) {
    ASSERT_TRUE(table
                    ->Insert({Value::Int(++id), Value::String(text),
                              Value::Decimal(id * 100 + 1, 2),
                              Value::FromDate(
                                  pdgf::Date::FromCivil(2000, 1, 1 + (int)id))})
                    .ok());
  }
  ASSERT_TRUE(
      table->Insert({Value::Int(++id), Value::Null(), Value::Null(),
                     Value::Null()})
          .ok());

  std::string csv = TableToCsv(*table, options);
  Database reloaded_db;
  ASSERT_TRUE(ExecuteSql(&reloaded_db,
                         "CREATE TABLE t (id BIGINT PRIMARY KEY, "
                         "s VARCHAR(64), d DECIMAL(10,2), dt DATE)")
                  .ok());
  auto loaded = LoadCsvIntoTable(csv, reloaded_db.GetTable("t"), options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString() << "\n" << csv;
  const Table* reloaded = reloaded_db.GetTable("t");
  ASSERT_EQ(reloaded->row_count(), table->row_count());
  for (size_t r = 0; r < table->row_count(); ++r) {
    for (size_t c = 0; c < 4; ++c) {
      // Without a null marker, NULL and "" collapse; skip those cells.
      const Value& original = table->row(r)[c];
      if (options.null_marker.empty() && c == 1 &&
          (original.is_null() ||
           (original.kind() == Value::Kind::kString &&
            original.string_value().empty()))) {
        continue;
      }
      EXPECT_EQ(reloaded->row(r)[c], table->row(r)[c])
          << "row " << r << " col " << c << "\n"
          << csv;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dialects, CsvDialectTest,
    ::testing::Values(Dialect{'|', '"', "\\N"}, Dialect{',', '"', "NULL"},
                      Dialect{'\t', '"', "\\N"}, Dialect{';', '\'', "~"},
                      Dialect{'|', '"', ""}));

}  // namespace
}  // namespace minidb
