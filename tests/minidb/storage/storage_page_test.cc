#include "minidb/storage/page.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "minidb/storage/record.h"

namespace minidb {
namespace storage {
namespace {

using pdgf::Value;

class StoragePageTest : public ::testing::Test {
 protected:
  StoragePageTest() : page_(buffer_) { page_.Init(); }

  char buffer_[kPageSize] = {};
  SlottedPage page_;
};

TEST_F(StoragePageTest, FreshPageIsEmpty) {
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.live_count(), 0);
  EXPECT_GE(page_.FreeSpace(), SlottedPage::kMaxRecord);
}

TEST_F(StoragePageTest, InsertReadRoundtrip) {
  int a = page_.Insert("alpha");
  int b = page_.Insert("bravo-bravo");
  int c = page_.Insert("");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_GE(c, 0);
  EXPECT_EQ(page_.Read(static_cast<uint16_t>(a)), "alpha");
  EXPECT_EQ(page_.Read(static_cast<uint16_t>(b)), "bravo-bravo");
  EXPECT_EQ(page_.Read(static_cast<uint16_t>(c)), "");
  EXPECT_EQ(page_.slot_count(), 3);
  EXPECT_EQ(page_.live_count(), 3);
}

TEST_F(StoragePageTest, EraseTombstonesAndReusesSlot) {
  int a = page_.Insert("one");
  int b = page_.Insert("two");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  page_.Erase(static_cast<uint16_t>(a));
  EXPECT_FALSE(page_.IsLive(static_cast<uint16_t>(a)));
  EXPECT_TRUE(page_.IsLive(static_cast<uint16_t>(b)));
  EXPECT_EQ(page_.live_count(), 1);
  EXPECT_EQ(page_.Read(static_cast<uint16_t>(a)), "");
  // The tombstone slot is reused — the slot directory does not grow.
  int c = page_.Insert("three");
  EXPECT_EQ(c, a);
  EXPECT_EQ(page_.slot_count(), 2);
  EXPECT_EQ(page_.Read(static_cast<uint16_t>(c)), "three");
}

TEST_F(StoragePageTest, UpdateInPlaceAndRelocationSignal) {
  int slot = page_.Insert(std::string(100, 'x'));
  ASSERT_GE(slot, 0);
  // Shrink always succeeds in place.
  EXPECT_TRUE(page_.Update(static_cast<uint16_t>(slot), "short"));
  EXPECT_EQ(page_.Read(static_cast<uint16_t>(slot)), "short");
  // Grow succeeds while the page has room.
  std::string grown(200, 'y');
  EXPECT_TRUE(page_.Update(static_cast<uint16_t>(slot), grown));
  EXPECT_EQ(page_.Read(static_cast<uint16_t>(slot)), grown);
  // Fill the page, then demand more than can ever fit: Update must
  // refuse (the engine relocates the record to another page).
  while (page_.Insert(std::string(64, 'f')) >= 0) {
  }
  std::string too_big(kPageSize, 'z');
  EXPECT_FALSE(page_.Update(static_cast<uint16_t>(slot), too_big));
  EXPECT_EQ(page_.Read(static_cast<uint16_t>(slot)), grown);
}

TEST_F(StoragePageTest, MaxRecordFitsExactly) {
  std::string max_record(SlottedPage::kMaxRecord, 'm');
  EXPECT_GE(page_.Insert(max_record), 0);
  EXPECT_EQ(page_.Read(0).size(), SlottedPage::kMaxRecord);
  char other[kPageSize];
  SlottedPage page2(other);
  page2.Init();
  EXPECT_LT(page2.Insert(std::string(SlottedPage::kMaxRecord + 1, 'm')), 0);
}

TEST_F(StoragePageTest, CompactionReclaimsErasedSpace) {
  // Fill with 256-byte records, erase every other one, then insert a
  // record larger than any contiguous hole: only compaction makes room.
  std::vector<int> slots;
  int slot;
  while ((slot = page_.Insert(std::string(256, 'a'))) >= 0) {
    slots.push_back(slot);
  }
  ASSERT_GT(slots.size(), 4u);
  for (size_t i = 0; i < slots.size(); i += 2) {
    page_.Erase(static_cast<uint16_t>(slots[i]));
  }
  int big = page_.Insert(std::string(300, 'b'));
  ASSERT_GE(big, 0);
  EXPECT_EQ(page_.Read(static_cast<uint16_t>(big)),
            std::string(300, 'b'));
  // Survivors are intact after the compaction shuffle.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(page_.Read(static_cast<uint16_t>(slots[i])),
              std::string(256, 'a'));
  }
}

TEST(StorageRecordTest, AllKindsRoundtrip) {
  Row row;
  row.push_back(Value::Null());
  row.push_back(Value::Bool(true));
  row.push_back(Value::Int(-123456789012345LL));
  row.push_back(Value::Double(3.25));
  row.push_back(Value::Decimal(12345, 2));
  row.push_back(Value::String("hello \xE2\x82\xAC world"));
  row.push_back(Value::FromDate(pdgf::Date(19000)));

  std::string bytes;
  SerializeRow(row, &bytes);
  EXPECT_EQ(bytes.size(), SerializedRowSize(row));

  Row out;
  ASSERT_TRUE(DeserializeRow(bytes, &out).ok());
  ASSERT_EQ(out.size(), row.size());
  EXPECT_TRUE(out[0].is_null());
  EXPECT_EQ(out[1].bool_value(), true);
  EXPECT_EQ(out[2].int_value(), -123456789012345LL);
  EXPECT_EQ(out[3].double_value(), 3.25);
  EXPECT_EQ(out[4].decimal_unscaled(), 12345);
  EXPECT_EQ(out[4].decimal_scale(), 2);
  EXPECT_EQ(out[5].string_value(), "hello \xE2\x82\xAC world");
  EXPECT_EQ(out[6].date_value().days_since_epoch(), 19000);
}

TEST(StorageRecordTest, SerializationIsByteStable) {
  Row row;
  row.push_back(Value::Int(7));
  row.push_back(Value::String("abc"));
  std::string first, second;
  SerializeRow(row, &first);
  SerializeRow(row, &second);
  EXPECT_EQ(first, second);
}

TEST(StorageRecordTest, TruncatedRecordFailsCleanly) {
  Row row;
  row.push_back(Value::Int(7));
  row.push_back(Value::String("abcdef"));
  std::string bytes;
  SerializeRow(row, &bytes);
  Row out;
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DeserializeRow(std::string_view(bytes.data(), len), &out)
                     .ok())
        << "prefix of " << len << " bytes parsed";
  }
  EXPECT_TRUE(DeserializeRow(bytes, &out).ok());
}

}  // namespace
}  // namespace storage
}  // namespace minidb
