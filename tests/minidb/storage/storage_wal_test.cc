#include "minidb/storage/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/files.h"

namespace minidb {
namespace storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = pdgf::MakeTempDir("minidb_wal_");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = pdgf::JoinPath(*dir, "t.wal");
  }

  std::string ReadRaw() {
    auto contents = pdgf::ReadFileToString(path_);
    EXPECT_TRUE(contents.ok());
    return contents.ok() ? *contents : "";
  }

  void WriteRaw(const std::string& contents) {
    ASSERT_TRUE(pdgf::WriteStringToFile(path_, contents).ok());
  }

  std::string path_;
};

TEST_F(WalTest, AppendReadRoundtrip) {
  {
    auto wal = Wal::Open(path_, 7);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "row-bytes").ok());
    ASSERT_TRUE((*wal)->Append(Wal::Op::kUpdate, "ord+row").ok());
    ASSERT_TRUE((*wal)->Append(Wal::Op::kClear, "").ok());
  }
  auto log = Wal::ReadLog(path_);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->epoch, 7u);
  EXPECT_FALSE(log->tail_torn);
  ASSERT_EQ(log->records.size(), 3u);
  EXPECT_EQ(log->records[0].op, Wal::Op::kInsert);
  EXPECT_EQ(log->records[0].payload, "row-bytes");
  EXPECT_EQ(log->records[1].op, Wal::Op::kUpdate);
  EXPECT_EQ(log->records[1].payload, "ord+row");
  EXPECT_EQ(log->records[2].op, Wal::Op::kClear);
  EXPECT_EQ(log->records[2].payload, "");
}

TEST_F(WalTest, ReopenKeepsEpochAndAppends) {
  {
    auto wal = Wal::Open(path_, 3);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "first").ok());
  }
  {
    // Reopen must keep the on-disk epoch, not the caller's hint.
    auto wal = Wal::Open(path_, 99);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ((*wal)->epoch(), 3u);
    ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "second").ok());
  }
  auto log = Wal::ReadLog(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->epoch, 3u);
  ASSERT_EQ(log->records.size(), 2u);
  EXPECT_EQ(log->records[1].payload, "second");
}

TEST_F(WalTest, ResetStartsFreshEpoch) {
  auto wal = Wal::Open(path_, 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "old-epoch-row").ok());
  ASSERT_TRUE((*wal)->Reset(2).ok());
  EXPECT_EQ((*wal)->epoch(), 2u);
  ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "new-epoch-row").ok());
  auto log = Wal::ReadLog(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->epoch, 2u);
  ASSERT_EQ(log->records.size(), 1u);
  EXPECT_EQ(log->records[0].payload, "new-epoch-row");
}

TEST_F(WalTest, TruncatedTailStopsAtLastIntactRecord) {
  {
    auto wal = Wal::Open(path_, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "complete-one").ok());
    ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "complete-two").ok());
    ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "gets-truncated").ok());
  }
  std::string raw = ReadRaw();
  // Chop into the middle of the last record's payload.
  WriteRaw(raw.substr(0, raw.size() - 5));
  auto log = Wal::ReadLog(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->tail_torn);
  ASSERT_EQ(log->records.size(), 2u);
  EXPECT_EQ(log->records[1].payload, "complete-two");

  // TruncateTo drops the torn bytes; appends then extend cleanly.
  {
    auto wal = Wal::Open(path_, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->TruncateTo(log->valid_bytes).ok());
    ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "after-repair").ok());
  }
  auto repaired = Wal::ReadLog(path_);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->tail_torn);
  ASSERT_EQ(repaired->records.size(), 3u);
  EXPECT_EQ(repaired->records[2].payload, "after-repair");
}

TEST_F(WalTest, CorruptedChecksumTearsTail) {
  {
    auto wal = Wal::Open(path_, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "intact").ok());
    ASSERT_TRUE((*wal)->Append(Wal::Op::kInsert, "corrupted").ok());
  }
  std::string raw = ReadRaw();
  raw[raw.size() - 1] ^= 0x5A;  // flip a payload byte of the last record
  WriteRaw(raw);
  auto log = Wal::ReadLog(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->tail_torn);
  ASSERT_EQ(log->records.size(), 1u);
  EXPECT_EQ(log->records[0].payload, "intact");
}

TEST_F(WalTest, MissingFileReadsAsEmptyLog) {
  // A table that never logged has nothing to replay — not an error.
  auto log = Wal::ReadLog(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->records.empty());
  EXPECT_FALSE(log->tail_torn);
}

TEST(WalPayloadTest, OrdinalRoundtrip) {
  std::string payload;
  EncodeOrdinal(42, &payload);
  payload += "rest";
  uint64_t ordinal = 0;
  std::string_view rest;
  ASSERT_TRUE(DecodeOrdinal(payload, &ordinal, &rest).ok());
  EXPECT_EQ(ordinal, 42u);
  EXPECT_EQ(rest, "rest");
  EXPECT_FALSE(DecodeOrdinal("abc", &ordinal, &rest).ok());
}

TEST(WalPayloadTest, OrdinalsRoundtrip) {
  std::vector<size_t> ordinals = {3, 5, 8, 1000000};
  std::string payload;
  EncodeOrdinals(ordinals, &payload);
  std::vector<size_t> decoded;
  ASSERT_TRUE(DecodeOrdinals(payload, &decoded).ok());
  EXPECT_EQ(decoded, ordinals);
  // Count claims more entries than the payload holds.
  EXPECT_FALSE(
      DecodeOrdinals(payload.substr(0, payload.size() - 4), &decoded).ok());
}

}  // namespace
}  // namespace storage
}  // namespace minidb
