// Cross-engine parity: the paged engine must be observably identical to
// the heap engine — same CSV bytes, same SQL results, same ANALYZE
// stats — and additionally durable across close/reopen.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "minidb/csv.h"
#include "minidb/database.h"
#include "minidb/persistence.h"
#include "minidb/sql.h"
#include "minidb/stats.h"
#include "minidb/storage/paged_engine.h"
#include "util/files.h"
#include "util/hash.h"

namespace minidb {
namespace {

using pdgf::Value;

constexpr char kDdl[] =
    "CREATE TABLE items ("
    "  id BIGINT NOT NULL PRIMARY KEY,"
    "  price DECIMAL(12,2),"
    "  label VARCHAR(64),"
    "  added DATE)";

EngineConfig PagedConfig(const std::string& data_dir) {
  EngineConfig config;
  config.kind = EngineKind::kPaged;
  config.data_dir = data_dir;
  return config;
}

std::string TempDir(const char* prefix) {
  auto dir = pdgf::MakeTempDir(prefix);
  EXPECT_TRUE(dir.ok()) << dir.status().ToString();
  return dir.ok() ? *dir : "";
}

// Applies the same mutation script to a database and returns the table's
// canonical CSV rendering.
std::string RunScript(Database* database, const std::string& script) {
  auto results = ExecuteSqlScript(database, script);
  EXPECT_TRUE(results.ok()) << results.status().ToString();
  return TableToCsv(*database->GetTable("items"));
}

std::string MutationScript() {
  std::string script = std::string(kDdl) + ";";
  for (int i = 0; i < 500; ++i) {
    script += "INSERT INTO items VALUES (" + std::to_string(i) + ", " +
              std::to_string(i) + ".25, 'label-" + std::to_string(i) +
              "', DATE '2024-01-15');";
  }
  // Exercise in-place update, growing (relocating) update, delete.
  script += "UPDATE items SET price = 999.99 WHERE id = 42;";
  script +=
      "UPDATE items SET label = "
      "'grown-grown-grown-grown-grown-grown-grown-grown-grown' "
      "WHERE id = 100;";
  script += "DELETE FROM items WHERE id >= 490;";
  script += "INSERT INTO items VALUES (1000, 1.00, 'after-delete', NULL);";
  return script;
}

TEST(StorageEngineTest, ParseEngineKindIsStrict) {
  EXPECT_EQ(*ParseEngineKind("heap"), EngineKind::kHeap);
  EXPECT_EQ(*ParseEngineKind("paged"), EngineKind::kPaged);
  EXPECT_FALSE(ParseEngineKind("").ok());
  EXPECT_FALSE(ParseEngineKind("Paged ").ok());
  EXPECT_FALSE(ParseEngineKind("pagedd").ok());
}

TEST(StorageEngineTest, SqlMutationsAreByteIdenticalAcrossEngines) {
  Database heap;
  std::string heap_csv = RunScript(&heap, MutationScript());

  Database paged(PagedConfig(TempDir("minidb_parity_")));
  std::string paged_csv = RunScript(&paged, MutationScript());

  ASSERT_FALSE(heap_csv.empty());
  EXPECT_EQ(heap_csv, paged_csv);
  EXPECT_EQ(pdgf::Hash128Bytes(heap_csv).Hex(),
            pdgf::Hash128Bytes(paged_csv).Hex());
}

TEST(StorageEngineTest, SelectResultsMatchAcrossEngines) {
  Database heap;
  RunScript(&heap, MutationScript());
  Database paged(PagedConfig(TempDir("minidb_select_")));
  RunScript(&paged, MutationScript());

  const char* queries[] = {
      "SELECT * FROM items WHERE id = 42",  // PK point lookup fast path
      "SELECT * FROM items WHERE id = 777",  // absent key
      "SELECT COUNT(*) FROM items",
      "SELECT label FROM items WHERE price > 400 ORDER BY id",
  };
  for (const char* query : queries) {
    auto heap_result = ExecuteSql(&heap, query);
    auto paged_result = ExecuteSql(&paged, query);
    ASSERT_TRUE(heap_result.ok()) << query;
    ASSERT_TRUE(paged_result.ok()) << query;
    ASSERT_EQ(heap_result->rows.size(), paged_result->rows.size()) << query;
    for (size_t r = 0; r < heap_result->rows.size(); ++r) {
      for (size_t c = 0; c < heap_result->rows[r].size(); ++c) {
        EXPECT_EQ(heap_result->rows[r][c].ToText(),
                  paged_result->rows[r][c].ToText())
            << query << " row " << r;
      }
    }
  }
}

TEST(StorageEngineTest, PagedTableUsesPkIndex) {
  Database paged(PagedConfig(TempDir("minidb_pk_")));
  RunScript(&paged, MutationScript());
  Table* table = paged.GetTable("items");
  ASSERT_NE(table, nullptr);
  EXPECT_TRUE(table->HasPkIndex());
  std::vector<Row> rows;
  ASSERT_TRUE(table->PkLookup(42, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 42);
  EXPECT_EQ(rows[0][1].ToText(), "999.99");
  rows.clear();
  ASSERT_TRUE(table->PkLookup(495, &rows).ok());  // deleted
  EXPECT_TRUE(rows.empty());
}

TEST(StorageEngineTest, NonIntegerPrimaryKeyHasNoIndex) {
  Database paged(PagedConfig(TempDir("minidb_noindex_")));
  auto results = ExecuteSqlScript(
      &paged,
      "CREATE TABLE tags (name VARCHAR(10) NOT NULL PRIMARY KEY);"
      "INSERT INTO tags VALUES ('a');");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_FALSE(paged.GetTable("tags")->HasPkIndex());
}

TEST(StorageEngineTest, AnalyzeStatsMatchAcrossEngines) {
  Database heap;
  RunScript(&heap, MutationScript());
  Database paged(PagedConfig(TempDir("minidb_stats_")));
  RunScript(&paged, MutationScript());

  TableStats heap_stats = AnalyzeTable(*heap.GetTable("items"));
  TableStats paged_stats = AnalyzeTable(*paged.GetTable("items"));
  ASSERT_EQ(heap_stats.columns.size(), paged_stats.columns.size());
  for (size_t c = 0; c < heap_stats.columns.size(); ++c) {
    const ColumnStats& h = heap_stats.columns[c];
    const ColumnStats& p = paged_stats.columns[c];
    EXPECT_EQ(h.row_count, p.row_count) << h.column;
    EXPECT_EQ(h.null_count, p.null_count) << h.column;
    EXPECT_EQ(h.distinct_count, p.distinct_count) << h.column;
    EXPECT_EQ(h.min.ToText(), p.min.ToText()) << h.column;
    EXPECT_EQ(h.max.ToText(), p.max.ToText()) << h.column;
    EXPECT_DOUBLE_EQ(h.mean, p.mean) << h.column;
  }
}

TEST(StorageEngineTest, CheckpointedTableReopensWithSameBytes) {
  std::string data_dir = TempDir("minidb_reopen_");
  std::string expected;
  {
    Database paged(PagedConfig(data_dir));
    expected = RunScript(&paged, MutationScript());
    ASSERT_TRUE(paged.CheckpointAll().ok());
  }
  // A fresh Database over the same data dir recovers the rows when the
  // table is re-created (CREATE TABLE opens existing files).
  Database reopened(PagedConfig(data_dir));
  auto created = ExecuteSqlScript(&reopened, std::string(kDdl) + ";");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(TableToCsv(*reopened.GetTable("items")), expected);
  // The PK index survives reopen too.
  EXPECT_TRUE(reopened.GetTable("items")->HasPkIndex());
  std::vector<Row> rows;
  ASSERT_TRUE(reopened.GetTable("items")->PkLookup(42, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
}

TEST(StorageEngineTest, BulkLoadMatchesRowAtATimeAndSurvivesReopen) {
  Database heap;
  auto created = ExecuteSqlScript(&heap, std::string(kDdl) + ";");
  ASSERT_TRUE(created.ok());
  Table* heap_table = heap.GetTable("items");
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) {
    Row row;
    row.push_back(Value::Int(i));
    row.push_back(Value::Decimal(i * 100 + 25, 2));
    row.push_back(Value::String("bulk-" + std::to_string(i)));
    row.push_back(i % 7 == 0 ? Value::Null() : Value::FromDate(pdgf::Date(19000 + i % 50)));
    ASSERT_TRUE(heap_table->Insert(row).ok());
    rows.push_back(std::move(row));
  }

  std::string data_dir = TempDir("minidb_bulk_");
  std::string expected = TableToCsv(*heap_table);
  {
    Database paged(PagedConfig(data_dir));
    auto paged_created = ExecuteSqlScript(&paged, std::string(kDdl) + ";");
    ASSERT_TRUE(paged_created.ok());
    Table* table = paged.GetTable("items");
    ASSERT_TRUE(table->BulkLoadBegin().ok());
    for (const Row& row : rows) {
      ASSERT_TRUE(table->BulkLoadAppend(row).ok());
    }
    ASSERT_TRUE(table->BulkLoadFinish().ok());
    EXPECT_EQ(TableToCsv(*table), expected);
    // The bulk-built index answers point lookups.
    std::vector<Row> hit;
    ASSERT_TRUE(table->PkLookup(4321, &hit).ok());
    ASSERT_EQ(hit.size(), 1u);
    EXPECT_EQ(hit[0][2].string_value(), "bulk-4321");
  }
  Database reopened(PagedConfig(data_dir));
  auto recreated = ExecuteSqlScript(&reopened, std::string(kDdl) + ";");
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ(TableToCsv(*reopened.GetTable("items")), expected);
}

TEST(StorageEngineTest, PersistenceRoundtripWithPagedEngine) {
  Database heap;
  RunScript(&heap, MutationScript());
  std::string save_dir = TempDir("minidb_save_");
  ASSERT_TRUE(SaveDatabase(heap, save_dir).ok());

  auto loaded = LoadDatabase(save_dir, PersistenceCsvOptions(),
                             PagedConfig(TempDir("minidb_load_")));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(TableToCsv(*loaded->GetTable("items")),
            TableToCsv(*heap.GetTable("items")));
}

TEST(StorageEngineTest, DropTableRemovesDataFiles) {
  std::string data_dir = TempDir("minidb_drop_");
  Database paged(PagedConfig(data_dir));
  auto created = ExecuteSqlScript(&paged, std::string(kDdl) + ";");
  ASSERT_TRUE(created.ok());
  std::string pages = pdgf::JoinPath(data_dir, "items.pages");
  EXPECT_TRUE(pdgf::PathExists(pages));
  ASSERT_TRUE(paged.DropTable("items").ok());
  EXPECT_FALSE(pdgf::PathExists(pages));
}

TEST(StorageEngineTest, ClearEmptiesTableAndReenablesIndex) {
  Database paged(PagedConfig(TempDir("minidb_clear_")));
  RunScript(&paged, MutationScript());
  Table* table = paged.GetTable("items");
  ASSERT_TRUE(table->Clear().ok());
  EXPECT_EQ(table->row_count(), 0u);
  EXPECT_TRUE(table->HasPkIndex());
  ASSERT_TRUE(table->Insert({Value::Int(1), Value::Decimal(100, 2),
                             Value::String("x"), Value::Null()})
                  .ok());
  EXPECT_EQ(table->row_count(), 1u);
  std::vector<Row> rows;
  ASSERT_TRUE(table->PkLookup(1, &rows).ok());
  EXPECT_EQ(rows.size(), 1u);
}

TEST(StorageEngineTest, PoolStaysBoundedThroughAutoCheckpoint) {
  // A pool of 8 pages with a checkpoint threshold of 4 must survive a
  // workload that dirties far more than 8 pages.
  EngineConfig config = PagedConfig(TempDir("minidb_small_pool_"));
  config.storage.pool_pages = 8;
  config.storage.checkpoint_dirty_pages = 4;
  Database paged(std::move(config));
  std::string csv = RunScript(&paged, MutationScript());

  Database heap;
  EXPECT_EQ(RunScript(&heap, MutationScript()), csv);
  const storage::PagedEngine* engine =
      static_cast<const storage::PagedEngine*>(
          paged.GetTable("items")->engine());
  EXPECT_GT(engine->epoch(), 1u);  // auto-checkpoints actually fired
}

}  // namespace
}  // namespace minidb
