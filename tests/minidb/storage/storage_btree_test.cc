#include "minidb/storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "minidb/storage/buffer_pool.h"
#include "minidb/storage/pager.h"
#include "util/files.h"

namespace minidb {
namespace storage {
namespace {

// Hands out consecutive page ids, as the engine's meta-page watermark
// does.
class CountingAllocator : public PageAllocator {
 public:
  pdgf::StatusOr<PageId> AllocatePage() override { return next_++; }

 private:
  PageId next_ = 0;
};

class BtreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = pdgf::MakeTempDir("minidb_btree_");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    auto pager = Pager::Open(pdgf::JoinPath(*dir, "t.pages"));
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    pager_ = std::move(*pager);
    pool_ = std::make_unique<BufferPool>(pager_.get(), 64);
    tree_ = std::make_unique<BTree>(pool_.get(), &allocator_, kInvalidPage);
  }

  static Rid RidFor(int64_t key) {
    return Rid{static_cast<PageId>(key / 100),
               static_cast<uint16_t>(key % 100)};
  }

  CountingAllocator allocator_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BtreeTest, EmptyTreeLookupsAreEmpty) {
  EXPECT_EQ(tree_->root(), kInvalidPage);
  auto rids = tree_->Lookup(5);
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(rids->empty());
  auto it = tree_->Seek(0, 100);
  ASSERT_TRUE(it.ok());
  BTreeEntry entry;
  EXPECT_FALSE(it->Next(&entry));
}

TEST_F(BtreeTest, RandomInsertLookupTenThousand) {
  std::vector<int64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(i) * 3;  // gaps probe missing keys
  }
  std::mt19937 rng(42);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (int64_t key : keys) {
    ASSERT_TRUE(tree_->Insert(key, RidFor(key)).ok());
  }
  EXPECT_NE(tree_->root(), kInvalidPage);
  for (int64_t key : keys) {
    auto rids = tree_->Lookup(key);
    ASSERT_TRUE(rids.ok());
    ASSERT_EQ(rids->size(), 1u) << "key " << key;
    EXPECT_EQ((*rids)[0], RidFor(key));
  }
  // Keys in the gaps are absent.
  for (int64_t key : {1LL, 4LL, 29999LL}) {
    auto rids = tree_->Lookup(key);
    ASSERT_TRUE(rids.ok());
    EXPECT_TRUE(rids->empty()) << "key " << key;
  }
}

TEST_F(BtreeTest, DuplicateKeysKeepInsertionOrder) {
  // Surround the duplicate run with enough other keys to force splits.
  for (int64_t key = 0; key < 2000; ++key) {
    ASSERT_TRUE(tree_->Insert(key, RidFor(key)).ok());
  }
  for (uint16_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(tree_->Insert(1000000, Rid{7, i}).ok());
  }
  auto rids = tree_->Lookup(1000000);
  ASSERT_TRUE(rids.ok());
  ASSERT_EQ(rids->size(), 5u);
  for (uint16_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*rids)[i], (Rid{7, i}));
  }
}

TEST_F(BtreeTest, DeleteRemovesExactEntry) {
  for (int64_t key = 0; key < 3000; ++key) {
    ASSERT_TRUE(tree_->Insert(key, RidFor(key)).ok());
  }
  auto deleted = tree_->Delete(1500, RidFor(1500));
  ASSERT_TRUE(deleted.ok());
  EXPECT_TRUE(*deleted);
  EXPECT_TRUE(tree_->Lookup(1500)->empty());
  // Deleting again (or a bogus rid) reports absence.
  EXPECT_FALSE(*tree_->Delete(1500, RidFor(1500)));
  EXPECT_FALSE(*tree_->Delete(1501, Rid{999, 0}));
  EXPECT_EQ(tree_->Lookup(1501)->size(), 1u);
}

TEST_F(BtreeTest, SeekScansRangeInKeyOrder) {
  std::vector<int64_t> keys;
  for (int64_t key = 0; key < 5000; key += 2) keys.push_back(key);
  std::mt19937 rng(7);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (int64_t key : keys) {
    ASSERT_TRUE(tree_->Insert(key, RidFor(key)).ok());
  }
  auto it = tree_->Seek(1001, 2001);  // both bounds between keys
  ASSERT_TRUE(it.ok());
  BTreeEntry entry;
  int64_t expected = 1002;
  while (it->Next(&entry)) {
    EXPECT_EQ(entry.key, expected);
    EXPECT_EQ(entry.rid, RidFor(expected));
    expected += 2;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(expected, 2002);  // last yielded key was 2000
}

TEST_F(BtreeTest, BulkBuildMatchesInsertedTree) {
  std::vector<BTreeEntry> entries;
  for (int64_t key = 0; key < 8000; ++key) {
    entries.push_back(BTreeEntry{key, RidFor(key)});
  }
  ASSERT_TRUE(tree_->BulkBuild(entries).ok());
  EXPECT_NE(tree_->root(), kInvalidPage);
  for (int64_t key : {0LL, 1LL, 4095LL, 7999LL}) {
    auto rids = tree_->Lookup(key);
    ASSERT_TRUE(rids.ok());
    ASSERT_EQ(rids->size(), 1u) << "key " << key;
    EXPECT_EQ((*rids)[0], RidFor(key));
  }
  // A full-range scan yields every entry in key order.
  auto it = tree_->Seek(INT64_MIN, INT64_MAX);
  ASSERT_TRUE(it.ok());
  BTreeEntry entry;
  int64_t expected = 0;
  while (it->Next(&entry)) {
    ASSERT_EQ(entry.key, expected);
    ++expected;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(expected, 8000);
  // The bulk-built tree accepts further point inserts.
  ASSERT_TRUE(tree_->Insert(8000, RidFor(8000)).ok());
  EXPECT_EQ(tree_->Lookup(8000)->size(), 1u);
}

TEST_F(BtreeTest, NegativeKeysOrderCorrectly) {
  for (int64_t key = -500; key < 500; ++key) {
    ASSERT_TRUE(tree_->Insert(key, RidFor(key + 500)).ok());
  }
  auto it = tree_->Seek(-500, -1);
  ASSERT_TRUE(it.ok());
  BTreeEntry entry;
  int count = 0;
  int64_t last = INT64_MIN;
  while (it->Next(&entry)) {
    EXPECT_GT(entry.key, last);
    last = entry.key;
    ++count;
  }
  EXPECT_EQ(count, 500);
}

}  // namespace
}  // namespace storage
}  // namespace minidb
