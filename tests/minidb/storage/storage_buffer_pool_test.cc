#include "minidb/storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "minidb/storage/page.h"
#include "minidb/storage/pager.h"
#include "util/files.h"

namespace minidb {
namespace storage {
namespace {

class StorageBufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = pdgf::MakeTempDir("minidb_pool_");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = pdgf::JoinPath(*dir, "t.pages");
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    pager_ = std::move(*pager);
  }

  // Creates page `id` holding `text` at offset 0, marked dirty.
  void FillPage(BufferPool* pool, PageId id, const std::string& text) {
    auto ref = pool->Create(id);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    std::memcpy(ref->data(), text.data(), text.size());
    ref->MarkDirty();
  }

  std::string ReadPage(BufferPool* pool, PageId id) {
    auto ref = pool->Fetch(id);
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    if (!ref.ok()) return "";
    return std::string(ref->data(), 8);
  }

  std::string path_;
  std::unique_ptr<Pager> pager_;
};

TEST_F(StorageBufferPoolTest, CreateFlushFetchRoundtrip) {
  BufferPool pool(pager_.get(), 4);
  FillPage(&pool, 0, "pagezero");
  FillPage(&pool, 1, "pageone!");
  EXPECT_EQ(pool.dirty_count(), 2u);
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.dirty_count(), 0u);

  // A second pool over the same file sees the flushed bytes.
  BufferPool fresh(pager_.get(), 4);
  EXPECT_EQ(ReadPage(&fresh, 0), "pagezero");
  EXPECT_EQ(ReadPage(&fresh, 1), "pageone!");
  EXPECT_EQ(fresh.misses(), 2u);
  EXPECT_EQ(ReadPage(&fresh, 1), "pageone!");
  EXPECT_EQ(fresh.hits(), 1u);
}

TEST_F(StorageBufferPoolTest, LruEvictsCleanUnpinnedPages) {
  BufferPool pool(pager_.get(), 2);
  FillPage(&pool, 0, "pagezero");
  FillPage(&pool, 1, "pageone!");
  ASSERT_TRUE(pool.FlushAll().ok());
  // Touch page 1 so page 0 is the LRU victim.
  ReadPage(&pool, 1);
  FillPage(&pool, 2, "pagetwo!");
  EXPECT_EQ(pool.evictions(), 1u);
  EXPECT_LE(pool.frame_count(), 2u);
  // The evicted page re-reads correctly from disk.
  EXPECT_EQ(ReadPage(&pool, 0), "pagezero");
}

TEST_F(StorageBufferPoolTest, NoStealRetainsDirtyPagesPastCapacity) {
  BufferPool pool(pager_.get(), 2);
  FillPage(&pool, 0, "pagezero");
  FillPage(&pool, 1, "pageone!");
  FillPage(&pool, 2, "pagetwo!");  // no clean victim: pool must grow
  EXPECT_EQ(pool.frame_count(), 3u);
  EXPECT_GE(pool.overflows(), 1u);
  EXPECT_EQ(pool.writebacks(), 0u);
  // Nothing reached the file yet (redo-WAL invariant: the file holds
  // only checkpointed state).
  EXPECT_EQ(pager_->page_count(), 0u);
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pager_->page_count(), 3u);
}

TEST_F(StorageBufferPoolTest, BulkModeEvictsDirtyPagesToDisk) {
  BufferPool pool(pager_.get(), 2);
  pool.set_allow_dirty_eviction(true);
  FillPage(&pool, 0, "pagezero");
  FillPage(&pool, 1, "pageone!");
  FillPage(&pool, 2, "pagetwo!");
  // The dirty LRU page was written back instead of growing the pool.
  EXPECT_LE(pool.frame_count(), 2u);
  EXPECT_GE(pool.writebacks(), 1u);
  EXPECT_EQ(ReadPage(&pool, 0), "pagezero");
}

TEST_F(StorageBufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(pager_.get(), 2);
  FillPage(&pool, 0, "pagezero");
  ASSERT_TRUE(pool.FlushAll().ok());
  auto pinned = pool.Fetch(0);
  ASSERT_TRUE(pinned.ok());
  FillPage(&pool, 1, "pageone!");
  FillPage(&pool, 2, "pagetwo!");
  // Page 0 stayed resident under its pin; its bytes are still valid.
  EXPECT_EQ(std::string(pinned->data(), 8), "pagezero");
  pinned->Release();
}

}  // namespace
}  // namespace storage
}  // namespace minidb
