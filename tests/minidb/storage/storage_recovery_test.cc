// Crash recovery: kill a paged-engine load mid-WAL (clean tail, torn
// tail, corrupted tail, stale epoch) and verify the reopened table's
// bytes match a heap-engine golden built from the operations that were
// durable at the crash point.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "minidb/csv.h"
#include "minidb/database.h"
#include "minidb/sql.h"
#include "minidb/storage/paged_engine.h"
#include "minidb/storage/wal.h"
#include "minidb/table.h"
#include "util/files.h"

namespace minidb {
namespace {

using pdgf::Value;
using storage::PagedEngine;
using storage::StorageOptions;
using storage::Wal;

Row MakeRow(int i) {
  Row row;
  row.push_back(Value::Int(i));
  row.push_back(Value::String("row-" + std::to_string(i)));
  return row;
}

TableSchema MakeSchema() {
  TableSchema schema;
  schema.name = "t";
  schema.columns.push_back(
      ColumnDef{"id", pdgf::DataType::kBigInt, 19, 2, false, true, "", ""});
  schema.columns.push_back(
      ColumnDef{"label", pdgf::DataType::kVarchar, 32, 2, true, false, "",
                ""});
  return schema;
}

// The heap-engine golden for rows [0, n).
std::string GoldenCsv(int n) {
  Table heap(MakeSchema());
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(heap.InsertUnchecked(MakeRow(i)).ok());
  }
  return TableToCsv(heap);
}

class StorageRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = pdgf::MakeTempDir("minidb_recover_");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    base_ = pdgf::JoinPath(*dir, "t");
  }

  std::unique_ptr<PagedEngine> OpenEngine() {
    auto engine = PagedEngine::Open(base_, /*pk_column=*/0,
                                    StorageOptions{});
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return engine.ok() ? std::move(*engine) : nullptr;
  }

  // Appends rows [from, to) and "crashes": the engine is destroyed
  // without a checkpoint, so the rows exist only as WAL records.
  void LoadAndCrash(int from, int to) {
    auto engine = OpenEngine();
    ASSERT_NE(engine, nullptr);
    for (int i = from; i < to; ++i) {
      ASSERT_TRUE(engine->Append(MakeRow(i)).ok());
    }
    ASSERT_GT(engine->wal_records(), 0u);
  }

  std::string EngineCsv(PagedEngine* engine) {
    Table table(MakeSchema(),
                std::unique_ptr<storage::TableEngine>(engine));
    return TableToCsv(table);
  }

  std::string wal_path() const { return base_ + ".wal"; }

  std::string base_;
};

TEST_F(StorageRecoveryTest, ReplaysCleanWalTail) {
  LoadAndCrash(0, 300);
  auto engine = OpenEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->row_count(), 300u);
  // Recovered rows answer index lookups too.
  std::vector<Row> rows;
  ASSERT_TRUE(engine->PkLookup(123, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].string_value(), "row-123");
  EXPECT_EQ(EngineCsv(engine.release()), GoldenCsv(300));
}

TEST_F(StorageRecoveryTest, RecoversAcrossCheckpointPlusTail) {
  {
    auto engine = OpenEngine();
    ASSERT_NE(engine, nullptr);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(engine->Append(MakeRow(i)).ok());
    }
    ASSERT_TRUE(engine->Checkpoint().ok());
    for (int i = 200; i < 350; ++i) {  // tail beyond the checkpoint
      ASSERT_TRUE(engine->Append(MakeRow(i)).ok());
    }
  }
  auto engine = OpenEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->row_count(), 350u);
  EXPECT_EQ(EngineCsv(engine.release()), GoldenCsv(350));
}

TEST_F(StorageRecoveryTest, TruncatedWalTailRecoversPrefix) {
  LoadAndCrash(0, 300);
  // Tear the last record mid-payload, as a crash during write(2) would.
  auto raw = pdgf::ReadFileToString(wal_path());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(
      pdgf::WriteStringToFile(wal_path(), raw->substr(0, raw->size() - 7))
          .ok());
  auto engine = OpenEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->row_count(), 299u);
  EXPECT_EQ(EngineCsv(engine.release()), GoldenCsv(299));
}

TEST_F(StorageRecoveryTest, CorruptedLastRecordRecoversPrefix) {
  LoadAndCrash(0, 100);
  auto raw = pdgf::ReadFileToString(wal_path());
  ASSERT_TRUE(raw.ok());
  std::string bytes = *raw;
  bytes[bytes.size() - 2] ^= 0xFF;  // torn in-place write
  ASSERT_TRUE(pdgf::WriteStringToFile(wal_path(), bytes).ok());
  auto engine = OpenEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->row_count(), 99u);
  EXPECT_EQ(EngineCsv(engine.release()), GoldenCsv(99));
}

TEST_F(StorageRecoveryTest, RepairedWalAcceptsNewAppends) {
  // After recovering from a torn tail, further appends and a clean
  // reopen must work (the torn bytes were truncated away).
  LoadAndCrash(0, 50);
  auto raw = pdgf::ReadFileToString(wal_path());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(
      pdgf::WriteStringToFile(wal_path(), raw->substr(0, raw->size() - 3))
          .ok());
  {
    auto engine = OpenEngine();
    ASSERT_NE(engine, nullptr);
    ASSERT_EQ(engine->row_count(), 49u);
    for (int i = 49; i < 80; ++i) {
      ASSERT_TRUE(engine->Append(MakeRow(i)).ok());
    }
  }
  auto engine = OpenEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->row_count(), 80u);
  EXPECT_EQ(EngineCsv(engine.release()), GoldenCsv(80));
}

TEST_F(StorageRecoveryTest, StaleEpochWalIsIgnored) {
  // Crash window between a checkpoint's meta-page write and its WAL
  // reset: the page file is already at the new epoch, the WAL still
  // holds the old epoch's records. Recovery must NOT replay them.
  LoadAndCrash(0, 120);
  auto old_wal = pdgf::ReadFileToString(wal_path());
  ASSERT_TRUE(old_wal.ok());
  {
    auto engine = OpenEngine();  // replays the 120 rows
    ASSERT_NE(engine, nullptr);
    ASSERT_TRUE(engine->Checkpoint().ok());
  }
  // Put the pre-checkpoint WAL back, simulating the torn checkpoint.
  ASSERT_TRUE(pdgf::WriteStringToFile(wal_path(), *old_wal).ok());
  auto engine = OpenEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->row_count(), 120u);  // not 240: stale log ignored
  EXPECT_EQ(EngineCsv(engine.release()), GoldenCsv(120));
}

TEST_F(StorageRecoveryTest, CrashDuringBulkLoadRollsBackToBegin) {
  {
    auto engine = OpenEngine();
    ASSERT_NE(engine, nullptr);
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(engine->Append(MakeRow(i)).ok());
    }
    ASSERT_TRUE(engine->Checkpoint().ok());
    // Crash mid-bulk: BulkLoadBegin checkpointed, the streamed pages
    // bypass the WAL, and Finish (which would commit them) never runs.
    ASSERT_TRUE(engine->BulkLoadBegin().ok());
    for (int i = 60; i < 500; ++i) {
      ASSERT_TRUE(engine->BulkLoadAppend(MakeRow(i)).ok());
    }
  }
  auto engine = OpenEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->row_count(), 60u);
  EXPECT_EQ(EngineCsv(engine.release()), GoldenCsv(60));
}

TEST_F(StorageRecoveryTest, UpdatesAndDeletesReplayDeterministically) {
  std::string expected;
  {
    Table heap(MakeSchema());
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE(heap.InsertUnchecked(MakeRow(i)).ok());
    }
    Row grown = MakeRow(7);
    grown[1] = Value::String(std::string(400, 'g'));  // forces relocation
    ASSERT_TRUE(heap.WriteRow(7, grown).ok());
    ASSERT_TRUE(heap.EraseRows({10, 11, 140}).ok());
    expected = TableToCsv(heap);
  }
  {
    auto engine = OpenEngine();
    ASSERT_NE(engine, nullptr);
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE(engine->Append(MakeRow(i)).ok());
    }
    Row grown = MakeRow(7);
    grown[1] = Value::String(std::string(400, 'g'));
    ASSERT_TRUE(engine->WriteRow(7, grown).ok());
    ASSERT_TRUE(engine->EraseRows({10, 11, 140}).ok());
    // Crash without checkpoint: everything above replays from the WAL.
  }
  auto engine = OpenEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(EngineCsv(engine.release()), expected);
}

TEST_F(StorageRecoveryTest, SqlLevelCrashRecoveryMatchesGolden) {
  // The same scenario end-to-end through Database/SQL: load, crash,
  // reopen, compare against the heap golden digest.
  auto dir = pdgf::MakeTempDir("minidb_sqlcrash_");
  ASSERT_TRUE(dir.ok());
  const char* ddl =
      "CREATE TABLE t (id BIGINT NOT NULL PRIMARY KEY, label VARCHAR(32));";
  std::string script = ddl;
  for (int i = 0; i < 250; ++i) {
    script += "INSERT INTO t VALUES (" + std::to_string(i) + ", 'row-" +
              std::to_string(i) + "');";
  }
  script += "DELETE FROM t WHERE id = 13;";
  script += "UPDATE t SET label = 'rewritten' WHERE id = 99;";

  Database heap;
  auto heap_run = ExecuteSqlScript(&heap, script);
  ASSERT_TRUE(heap_run.ok());
  std::string golden = TableToCsv(*heap.GetTable("t"));

  EngineConfig config;
  config.kind = EngineKind::kPaged;
  config.data_dir = *dir;
  {
    Database paged(std::move(config));
    auto run = ExecuteSqlScript(&paged, script);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    // No CheckpointAll: Database is destroyed with a live WAL tail.
  }
  EngineConfig reopen_config;
  reopen_config.kind = EngineKind::kPaged;
  reopen_config.data_dir = *dir;
  Database reopened(std::move(reopen_config));
  auto created = ExecuteSqlScript(&reopened, ddl);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(TableToCsv(*reopened.GetTable("t")), golden);
}

}  // namespace
}  // namespace minidb
