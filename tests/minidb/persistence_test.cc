#include "minidb/persistence.h"

#include <gtest/gtest.h>

#include "minidb/sql.h"
#include "util/files.h"
#include "workloads/imdb.h"

namespace minidb {
namespace {

using pdgf::Value;

TEST(PersistenceTest, RoundTripPreservesEverything) {
  // The IMDb demo database has FKs, NULLs, free text and every scalar
  // type — a good round-trip subject.
  Database original;
  ASSERT_TRUE(workloads::PopulateImdbDatabase(&original, 0.1).ok());

  auto dir = pdgf::MakeTempDir("minidb_persist_");
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(SaveDatabase(original, *dir).ok());
  EXPECT_TRUE(pdgf::PathExists(pdgf::JoinPath(*dir, "schema.sql")));
  EXPECT_TRUE(pdgf::PathExists(pdgf::JoinPath(*dir, "title.csv")));

  auto reloaded = LoadDatabase(*dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->TableNames(), original.TableNames());
  for (const std::string& name : original.TableNames()) {
    const Table* a = original.GetTable(name);
    const Table* b = reloaded->GetTable(name);
    ASSERT_EQ(a->row_count(), b->row_count()) << name;
    // Schema metadata survives (types, constraints, FKs).
    ASSERT_EQ(a->schema().columns.size(), b->schema().columns.size());
    for (size_t c = 0; c < a->schema().columns.size(); ++c) {
      EXPECT_EQ(a->schema().columns[c].type, b->schema().columns[c].type);
      EXPECT_EQ(a->schema().columns[c].primary_key,
                b->schema().columns[c].primary_key);
      EXPECT_EQ(a->schema().columns[c].ref_table,
                b->schema().columns[c].ref_table);
    }
    for (size_t r = 0; r < a->row_count(); ++r) {
      for (size_t c = 0; c < a->schema().columns.size(); ++c) {
        ASSERT_EQ(a->row(r)[c], b->row(r)[c])
            << name << " row " << r << " col " << c;
      }
    }
  }
}

TEST(PersistenceTest, NullVsEmptyStringSurvive) {
  Database database;
  ASSERT_TRUE(
      ExecuteSql(&database,
                 "CREATE TABLE t (id BIGINT PRIMARY KEY, s VARCHAR(20))")
          .ok());
  Table* table = database.GetTable("t");
  ASSERT_TRUE(table->Insert({Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(table->Insert({Value::Int(2), Value::String("")}).ok());
  ASSERT_TRUE(table->Insert({Value::Int(3), Value::String("\\N")}).ok());

  auto dir = pdgf::MakeTempDir("minidb_null_");
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(SaveDatabase(database, *dir).ok());
  auto reloaded = LoadDatabase(*dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const Table* t = reloaded->GetTable("t");
  EXPECT_TRUE(t->row(0)[1].is_null());
  EXPECT_EQ(t->row(1)[1].string_value(), "");
  // The literal string "\N" is quoted on save, so it survives too.
  EXPECT_EQ(t->row(2)[1].string_value(), "\\N");
}

TEST(PersistenceTest, SchemaSqlOrdersForeignKeyTargetsFirst) {
  Database database;
  // Create the referencing table's DDL target AFTER the referencer would
  // sort alphabetically, to prove ordering is by dependency.
  auto created = ExecuteSqlScript(
      &database,
      "CREATE TABLE aaa_dim (k BIGINT PRIMARY KEY);"
      "CREATE TABLE zzz_dim (k BIGINT PRIMARY KEY);"
      "CREATE TABLE fact (a BIGINT REFERENCES zzz_dim(k),"
      "                   b BIGINT REFERENCES aaa_dim(k));");
  ASSERT_TRUE(created.ok());
  auto dir = pdgf::MakeTempDir("minidb_order_");
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(SaveDatabase(database, *dir).ok());
  auto ddl = pdgf::ReadFileToString(pdgf::JoinPath(*dir, "schema.sql"));
  ASSERT_TRUE(ddl.ok());
  size_t fact_pos = ddl->find("CREATE TABLE fact");
  EXPECT_LT(ddl->find("CREATE TABLE aaa_dim"), fact_pos);
  EXPECT_LT(ddl->find("CREATE TABLE zzz_dim"), fact_pos);
  // And the reloaded script executes cleanly.
  EXPECT_TRUE(LoadDatabase(*dir).ok());
}

TEST(PersistenceTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadDatabase("/no/such/dir_xyz").ok());
}

TEST(PersistenceTest, SchemaOnlyTableLoadsEmpty) {
  Database database;
  ASSERT_TRUE(
      ExecuteSql(&database, "CREATE TABLE empty_t (v INTEGER)").ok());
  auto dir = pdgf::MakeTempDir("minidb_schemaonly_");
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(SaveDatabase(database, *dir).ok());
  // Remove the data file; the schema alone must still load.
  ASSERT_TRUE(
      pdgf::RemoveFile(pdgf::JoinPath(*dir, "empty_t.csv")).ok());
  auto reloaded = LoadDatabase(*dir);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->GetTable("empty_t")->row_count(), 0u);
}

}  // namespace
}  // namespace minidb
