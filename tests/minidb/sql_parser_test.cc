// Direct tests of the SQL lexer and parser (statement structure, error
// positions, keyword handling) — the executor is covered in sql_test.cc.

#include "minidb/sql_parser.h"

#include <gtest/gtest.h>

#include "minidb/sql_lexer.h"

namespace minidb {
namespace {

using pdgf::Value;

TEST(SqlLexerTest, TokenKindsAndOffsets) {
  auto tokens = LexSql("SELECT a1, 'it''s' FROM t WHERE x <= 2.5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].text, "a1");
  EXPECT_EQ((*tokens)[2].Is(TokenKind::kSymbol, ","), true);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[3].text, "it's");
  EXPECT_EQ((*tokens)[8].Is(TokenKind::kSymbol, "<="), true);
  EXPECT_EQ((*tokens)[9].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[9].text, "2.5");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(SqlLexerTest, CommentsAndQuotedIdentifiers) {
  auto tokens = LexSql("SELECT \"weird name\" -- trailing\nFROM t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "weird name");
  EXPECT_EQ((*tokens)[2].text, "FROM");
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(LexSql("SELECT 'unterminated").ok());
  EXPECT_FALSE(LexSql("SELECT \"unterminated").ok());
  EXPECT_FALSE(LexSql("SELECT @").ok());
}

TEST(SqlParserTest, SelectStructure) {
  auto statement = ParseSql(
      "select Name, count(distinct X) as n from T where a >= -3 "
      "and b like '%x%' group by Name order by n desc limit 12;");
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  const auto* select = std::get_if<SelectStatement>(&*statement);
  ASSERT_NE(select, nullptr);
  ASSERT_EQ(select->items.size(), 2u);
  EXPECT_EQ(select->items[0].column, "Name");
  EXPECT_EQ(select->items[1].aggregate, AggregateFunction::kCount);
  EXPECT_TRUE(select->items[1].distinct);
  EXPECT_EQ(select->items[1].alias, "n");
  EXPECT_EQ(select->table, "T");
  ASSERT_EQ(select->conditions.size(), 2u);
  EXPECT_EQ(select->conditions[0].op, Condition::Op::kGe);
  EXPECT_EQ(select->conditions[0].operand.int_value(), -3);
  EXPECT_EQ(select->conditions[1].op, Condition::Op::kLike);
  EXPECT_EQ(select->group_by, "Name");
  EXPECT_EQ(select->order_by, "n");
  EXPECT_TRUE(select->order_desc);
  EXPECT_EQ(select->limit, 12);
}

TEST(SqlParserTest, CreateTableStructure) {
  auto statement = ParseSql(
      "CREATE TABLE t (a BIGINT PRIMARY KEY, b DECIMAL(12,3) NOT NULL, "
      "c VARCHAR(44) REFERENCES other(oc), PRIMARY KEY (a))");
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  const auto* create = std::get_if<CreateTableStatement>(&*statement);
  ASSERT_NE(create, nullptr);
  ASSERT_EQ(create->schema.columns.size(), 3u);
  EXPECT_TRUE(create->schema.columns[0].primary_key);
  EXPECT_EQ(create->schema.columns[1].size, 12);
  EXPECT_EQ(create->schema.columns[1].scale, 3);
  EXPECT_FALSE(create->schema.columns[1].nullable);
  EXPECT_EQ(create->schema.columns[2].ref_table, "other");
  EXPECT_EQ(create->schema.columns[2].ref_column, "oc");
}

TEST(SqlParserTest, TwoWordTypes) {
  auto statement = ParseSql(
      "CREATE TABLE t (a DOUBLE PRECISION, b CHARACTER VARYING(10))");
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  const auto* create = std::get_if<CreateTableStatement>(&*statement);
  EXPECT_EQ(create->schema.columns[0].type, pdgf::DataType::kDouble);
  EXPECT_EQ(create->schema.columns[1].type, pdgf::DataType::kVarchar);
  EXPECT_EQ(create->schema.columns[1].size, 10);
}

TEST(SqlParserTest, InsertLiterals) {
  auto statement = ParseSql(
      "INSERT INTO t VALUES (1, -2.5, 'text', NULL, TRUE, FALSE, "
      "DATE '1999-12-31'), (2, 0.0, '', NULL, FALSE, TRUE, "
      "DATE '2000-01-01')");
  ASSERT_TRUE(statement.ok()) << statement.status().ToString();
  const auto* insert = std::get_if<InsertStatement>(&*statement);
  ASSERT_NE(insert, nullptr);
  ASSERT_EQ(insert->rows.size(), 2u);
  const auto& row = insert->rows[0];
  EXPECT_EQ(row[0].int_value(), 1);
  EXPECT_DOUBLE_EQ(row[1].double_value(), -2.5);
  EXPECT_EQ(row[2].string_value(), "text");
  EXPECT_TRUE(row[3].is_null());
  EXPECT_TRUE(row[4].bool_value());
  EXPECT_FALSE(row[5].bool_value());
  EXPECT_EQ(row[6].kind(), Value::Kind::kDate);
}

TEST(SqlParserTest, ErrorsMentionOffset) {
  auto statement = ParseSql("SELECT FROM t");
  ASSERT_FALSE(statement.ok());
  EXPECT_NE(statement.status().message().find("offset"), std::string::npos);
}

TEST(SqlParserTest, ScriptSplitRespectsStringLiterals) {
  auto statements = ParseSqlScript(
      "CREATE TABLE t (a VARCHAR(20)); "
      "INSERT INTO t VALUES ('semi;colon'); "
      "SELECT * FROM t;");
  ASSERT_TRUE(statements.ok()) << statements.status().ToString();
  ASSERT_EQ(statements->size(), 3u);
  const auto* insert = std::get_if<InsertStatement>(&(*statements)[1]);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->rows[0][0].string_value(), "semi;colon");
}

TEST(SqlParserTest, EmptyScriptPiecesSkipped) {
  auto statements = ParseSqlScript(";;  ;\nSELECT * FROM t;;");
  ASSERT_TRUE(statements.ok());
  EXPECT_EQ(statements->size(), 1u);
}

TEST(SqlParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseSql("SELECT * FROM t garbage").ok());
  EXPECT_FALSE(ParseSql("DROP TABLE t x").ok());
}

TEST(SqlParserTest, AggregateNamesAreNotReservedElsewhere) {
  // COUNT used as a plain column name (no parenthesis) parses as one.
  auto statement = ParseSql("SELECT count FROM t");
  ASSERT_TRUE(statement.ok());
  const auto* select = std::get_if<SelectStatement>(&*statement);
  EXPECT_EQ(select->items[0].column, "count");
  EXPECT_EQ(select->items[0].aggregate, AggregateFunction::kNone);
}

}  // namespace
}  // namespace minidb
