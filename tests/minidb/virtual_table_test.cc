// MiniDB virtual-table catalog suite, generator-free: a fake module
// exercises the CREATE VIRTUAL TABLE grammar, the module registry, the
// SELECT routing (including row-window and PK-interval pushdown — the
// fake counts the rows it was actually asked for) and the read-only
// contract. The dbsynth generator module gets its own parity suite in
// tests/dbsynth/virtual_table_test.cc; this one proves the minidb layer
// alone.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "minidb/database.h"
#include "minidb/sql.h"
#include "minidb/virtual_table.h"

namespace minidb {
namespace {

using pdgf::Value;

// N rows of (k = 10*row + offset, label = "row<row>"). KeyRangeToRows
// proves the k -> row inversion only when constructed with
// `invertible`; ScanRange tallies the rows visited so tests can assert
// how much work a query really did.
class FakeTable : public VirtualTable {
 public:
  FakeTable(uint64_t rows, int64_t offset, bool invertible)
      : rows_(rows), offset_(offset), invertible_(invertible) {
    schema_.name = "fake";
    ColumnDef k;
    k.name = "k";
    k.type = pdgf::DataType::kBigInt;
    k.nullable = false;
    k.primary_key = true;
    schema_.columns.push_back(k);
    ColumnDef label;
    label.name = "label";
    label.type = pdgf::DataType::kVarchar;
    schema_.columns.push_back(label);
  }

  const TableSchema& schema() const override { return schema_; }
  uint64_t row_count() const override { return rows_; }

  void ScanRange(
      uint64_t first_row, uint64_t last_row,
      const std::function<bool(const Row&)>& visitor) const override {
    if (last_row > rows_) last_row = rows_;
    for (uint64_t r = first_row; r < last_row; ++r) {
      ++rows_scanned_;
      Row row;
      row.push_back(Value::Int(10 * static_cast<int64_t>(r) + offset_));
      row.push_back(Value::String("row" + std::to_string(r)));
      if (!visitor(row)) return;
    }
  }

  bool KeyRangeToRows(int64_t min_key, int64_t max_key, uint64_t* first,
                      uint64_t* last) const override {
    if (!invertible_) return false;
    // k = 10*row + offset, exactly inverted with ceiling/floor division.
    int64_t lo = min_key - offset_ + 9;
    lo = lo >= 0 ? lo / 10 : 0;
    int64_t hi = max_key - offset_;
    if (hi < 0) {
      *first = *last = 0;
      return true;
    }
    hi = hi / 10 + 1;
    *first = static_cast<uint64_t>(lo);
    *last = static_cast<uint64_t>(hi) > rows_ ? rows_
                                              : static_cast<uint64_t>(hi);
    if (*first > *last) *first = *last;
    return true;
  }

  uint64_t rows_scanned() const { return rows_scanned_; }

 private:
  TableSchema schema_;
  uint64_t rows_;
  int64_t offset_;
  bool invertible_;
  mutable uint64_t rows_scanned_ = 0;
};

// Registers a "fake" module: fake(rows[, offset[, noinvert]]). Keeps a
// borrowed pointer to the last instance so tests can read its counters.
void RegisterFakeModule(Database* database, const FakeTable** last) {
  database->RegisterVirtualModule(
      "fake",
      [last](const std::string& table_name,
             const std::vector<std::string>& args)
          -> pdgf::StatusOr<std::unique_ptr<VirtualTable>> {
        (void)table_name;
        if (args.empty() || args.size() > 3) {
          return pdgf::InvalidArgumentError(
              "usage: USING fake(rows[, offset[, noinvert]])");
        }
        const uint64_t rows = std::strtoull(args[0].c_str(), nullptr, 10);
        const int64_t offset =
            args.size() > 1 ? std::strtoll(args[1].c_str(), nullptr, 10) : 0;
        const bool invertible = args.size() < 3 || args[2] != "noinvert";
        auto table = std::make_unique<FakeTable>(rows, offset, invertible);
        if (last != nullptr) *last = table.get();
        return std::unique_ptr<VirtualTable>(std::move(table));
      });
}

TEST(VirtualCatalogTest, CreateSelectAndDrop) {
  Database database;
  RegisterFakeModule(&database, nullptr);
  auto created = ExecuteSql(&database,
                            "CREATE VIRTUAL TABLE v USING fake(20, 5)");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_NE(database.GetVirtualTable("v"), nullptr);
  EXPECT_EQ(database.GetTable("v"), nullptr);

  auto all = ExecuteSql(&database, "SELECT k, label FROM v");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->rows.size(), 20u);
  EXPECT_EQ(all->At(0, "k"), Value::Int(5));
  EXPECT_EQ(all->At(19, "k"), Value::Int(195));
  EXPECT_EQ(all->At(3, "label"), Value::String("row3"));

  auto count = ExecuteSql(&database, "SELECT COUNT(*) FROM v");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->At(0, "count"), Value::Int(20));

  ASSERT_TRUE(database.DropTable("v").ok());
  EXPECT_EQ(database.GetVirtualTable("v"), nullptr);
  EXPECT_FALSE(ExecuteSql(&database, "SELECT * FROM v").ok());
}

TEST(VirtualCatalogTest, ParserHandlesQuotedAndBareArguments) {
  Database database;
  RegisterFakeModule(&database, nullptr);
  // String-quoted and bare arguments both reach the factory resolved.
  auto created = ExecuteSql(
      &database, "CREATE VIRTUAL TABLE q USING fake('12', 100, 'noinvert')");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto rows = ExecuteSql(&database, "SELECT k FROM q WHERE k >= 200");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);  // k in {200, 210}
}

TEST(VirtualCatalogTest, UnknownModuleAndDuplicateNamesFail) {
  Database database;
  RegisterFakeModule(&database, nullptr);
  EXPECT_FALSE(
      ExecuteSql(&database, "CREATE VIRTUAL TABLE v USING nosuch(1)").ok());
  ASSERT_TRUE(
      ExecuteSql(&database, "CREATE VIRTUAL TABLE v USING fake(3)").ok());
  // The name is taken — by a virtual table.
  EXPECT_FALSE(
      ExecuteSql(&database, "CREATE VIRTUAL TABLE v USING fake(4)").ok());
  // Factory-level argument validation propagates.
  EXPECT_FALSE(
      ExecuteSql(&database, "CREATE VIRTUAL TABLE w USING fake()").ok());
}

TEST(VirtualCatalogTest, VirtualTablesAreReadOnly) {
  Database database;
  RegisterFakeModule(&database, nullptr);
  ASSERT_TRUE(
      ExecuteSql(&database, "CREATE VIRTUAL TABLE v USING fake(5)").ok());
  for (const char* sql :
       {"INSERT INTO v VALUES (1, 'x')", "UPDATE v SET label = 'x'",
        "DELETE FROM v"}) {
    auto result = ExecuteSql(&database, sql);
    EXPECT_FALSE(result.ok()) << sql;
    EXPECT_NE(result.status().ToString().find("read-only"),
              std::string::npos)
        << result.status().ToString();
  }
}

TEST(VirtualCatalogTest, PrimaryKeyPredicatePushdownNarrowsTheScan) {
  Database database;
  const FakeTable* table = nullptr;
  RegisterFakeModule(&database, &table);
  ASSERT_TRUE(ExecuteSql(&database,
                         "CREATE VIRTUAL TABLE v USING fake(1000, 0)")
                  .ok());
  ASSERT_NE(table, nullptr);

  // Point query: k = 500 is row 50 — exactly one row visited.
  auto point = ExecuteSql(&database, "SELECT * FROM v WHERE k = 500");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->rows.size(), 1u);
  EXPECT_EQ(table->rows_scanned(), 1u);

  // Interval: BETWEEN 100 AND 199 covers rows 10..19.
  auto between =
      ExecuteSql(&database, "SELECT * FROM v WHERE k BETWEEN 100 AND 199");
  ASSERT_TRUE(between.ok());
  EXPECT_EQ(between->rows.size(), 10u);
  EXPECT_EQ(table->rows_scanned(), 11u);  // 1 + 10

  // A non-key predicate cannot narrow: the whole table is visited.
  auto full = ExecuteSql(&database,
                         "SELECT * FROM v WHERE label = 'row7'");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->rows.size(), 1u);
  EXPECT_EQ(table->rows_scanned(), 1011u);  // + all 1000
}

TEST(VirtualCatalogTest, UnprovableInversionFallsBackToFullScanCorrectly) {
  Database database;
  const FakeTable* table = nullptr;
  RegisterFakeModule(&database, &table);
  ASSERT_TRUE(
      ExecuteSql(&database,
                 "CREATE VIRTUAL TABLE v USING fake(100, 0, 'noinvert')")
          .ok());
  ASSERT_NE(table, nullptr);
  // Same answer, more work: pushdown only narrows, never decides.
  auto point = ExecuteSql(&database, "SELECT * FROM v WHERE k = 500");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->rows.size(), 1u);
  EXPECT_EQ(table->rows_scanned(), 100u);
}

TEST(VirtualCatalogTest, LimitStopsTheScanEarly) {
  Database database;
  const FakeTable* table = nullptr;
  RegisterFakeModule(&database, &table);
  ASSERT_TRUE(ExecuteSql(&database,
                         "CREATE VIRTUAL TABLE v USING fake(100000, 0)")
                  .ok());
  ASSERT_NE(table, nullptr);
  auto limited = ExecuteSql(&database, "SELECT k FROM v LIMIT 5");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->rows.size(), 5u);
  // Lazy evaluation: a LIMIT over a 100k-row virtual table touches only
  // the rows it returns.
  EXPECT_LE(table->rows_scanned(), 5u);
}

TEST(VirtualCatalogTest, StoredAndVirtualTablesCoexist) {
  Database database;
  RegisterFakeModule(&database, nullptr);
  ASSERT_TRUE(ExecuteSql(&database,
                         "CREATE TABLE stored (id BIGINT PRIMARY KEY)")
                  .ok());
  ASSERT_TRUE(ExecuteSql(&database, "INSERT INTO stored VALUES (1)").ok());
  ASSERT_TRUE(
      ExecuteSql(&database, "CREATE VIRTUAL TABLE v USING fake(3)").ok());
  // The namespace is shared in both directions.
  EXPECT_FALSE(
      ExecuteSql(&database, "CREATE VIRTUAL TABLE stored USING fake(1)").ok());
  EXPECT_FALSE(
      ExecuteSql(&database, "CREATE TABLE v (id BIGINT)").ok());
  auto names = database.TableNames();
  EXPECT_EQ(names.size(), 2u);
  auto stored = ExecuteSql(&database, "SELECT COUNT(*) FROM stored");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->At(0, "count"), Value::Int(1));
}

}  // namespace
}  // namespace minidb
