#include "minidb/csv.h"

#include <gtest/gtest.h>

#include "minidb/sql.h"
#include "util/files.h"

namespace minidb {
namespace {

using pdgf::Value;

Database MakeDb() {
  Database db;
  auto created = ExecuteSql(
      &db,
      "CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR(30), "
      "price DECIMAL(15,2), added DATE)");
  EXPECT_TRUE(created.ok());
  return db;
}

TEST(CsvTest, LoadBasicRows) {
  Database db = MakeDb();
  auto loaded = LoadCsvIntoTable(
      "1|hammer|9.99|2014-01-05\n"
      "2|nail|0.05|2014-02-10\n",
      db.GetTable("t"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2u);
  const Table* table = db.GetTable("t");
  EXPECT_EQ(table->row(0)[1].string_value(), "hammer");
  EXPECT_EQ(table->row(1)[2].ToText(), "0.05");
  EXPECT_EQ(table->row(0)[3].kind(), Value::Kind::kDate);
}

TEST(CsvTest, NullMarkerAndQuoting) {
  Database db = MakeDb();
  CsvOptions options;
  options.null_marker = "NULL";
  auto loaded = LoadCsvIntoTable(
      "1|\"pipe|name\"|NULL|NULL\n"
      "2|\"quoted \"\"q\"\"\"|1.00|2014-01-01\n"
      "3|\"NULL\"|2.00|2014-01-01\n",
      db.GetTable("t"), options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table* table = db.GetTable("t");
  EXPECT_EQ(table->row(0)[1].string_value(), "pipe|name");
  EXPECT_TRUE(table->row(0)[2].is_null());
  EXPECT_EQ(table->row(1)[1].string_value(), "quoted \"q\"");
  // Quoted "NULL" is the string, not SQL NULL.
  EXPECT_EQ(table->row(2)[1].string_value(), "NULL");
}

TEST(CsvTest, HeaderSkipping) {
  Database db = MakeDb();
  CsvOptions options;
  options.has_header = true;
  auto loaded = LoadCsvIntoTable(
      "id|name|price|added\n1|x|1.0|2014-01-01\n", db.GetTable("t"),
      options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1u);
}

TEST(CsvTest, ArityMismatchRejected) {
  Database db = MakeDb();
  auto loaded = LoadCsvIntoTable("1|two\n", db.GetTable("t"));
  EXPECT_FALSE(loaded.ok());
}

TEST(CsvTest, TypeErrorsCarryContext) {
  Database db = MakeDb();
  auto loaded =
      LoadCsvIntoTable("notanumber|x|1.0|2014-01-01\n", db.GetTable("t"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("column id"), std::string::npos);
}

TEST(CsvTest, RoundTrip) {
  Database db = MakeDb();
  Table* table = db.GetTable("t");
  ASSERT_TRUE(table
                  ->Insert({Value::Int(1), Value::String("has|pipe"),
                            Value::Decimal(999, 2), Value::Null()})
                  .ok());
  ASSERT_TRUE(table
                  ->Insert({Value::Int(2), Value::Null(),
                            Value::Decimal(5, 2),
                            Value::FromDate(pdgf::Date::FromCivil(2014, 7,
                                                                  1))})
                  .ok());
  CsvOptions options;
  options.null_marker = "\\N";
  std::string csv = TableToCsv(*table, options);

  Database db2 = MakeDb();
  auto loaded = LoadCsvIntoTable(csv, db2.GetTable("t"), options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2u);
  const Table* reloaded = db2.GetTable("t");
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(reloaded->row(r)[c], table->row(r)[c])
          << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, FileLoad) {
  auto dir = pdgf::MakeTempDir("minidb_csv_");
  ASSERT_TRUE(dir.ok());
  std::string path = pdgf::JoinPath(*dir, "data.csv");
  ASSERT_TRUE(
      pdgf::WriteStringToFile(path, "5|file|2.50|2014-09-09\n").ok());
  Database db = MakeDb();
  auto loaded = LoadCsvFileIntoTable(path, db.GetTable("t"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1u);
  EXPECT_FALSE(LoadCsvFileIntoTable("/no/such/file", db.GetTable("t")).ok());
}

TEST(CsvTest, CrLfAndMissingTrailingNewline) {
  Database db = MakeDb();
  auto loaded = LoadCsvIntoTable("1|a|1.0|2014-01-01\r\n2|b|2.0|2014-01-02",
                                 db.GetTable("t"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2u);
  EXPECT_EQ(db.GetTable("t")->row(0)[1].string_value(), "a");
}

}  // namespace
}  // namespace minidb
