#include "minidb/sql.h"

#include <gtest/gtest.h>

namespace minidb {
namespace {

using pdgf::Value;

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = ExecuteSqlScript(&db_,
                                    "CREATE TABLE items ("
                                    "  id BIGINT PRIMARY KEY,"
                                    "  name VARCHAR(30) NOT NULL,"
                                    "  price DECIMAL(15,2),"
                                    "  category VARCHAR(10),"
                                    "  added DATE,"
                                    "  stock INTEGER);"
                                    "INSERT INTO items VALUES"
                                    "  (1, 'hammer', 9.99, 'tools', "
                                    "DATE '2014-01-05', 10),"
                                    "  (2, 'nail', 0.05, 'tools', "
                                    "DATE '2014-02-10', 1000),"
                                    "  (3, 'rose', 2.50, 'garden', "
                                    "DATE '2014-03-20', 25),"
                                    "  (4, 'hose', 25.00, 'garden', NULL, "
                                    "NULL),"
                                    "  (5, 'glove', 3.75, NULL, "
                                    "DATE '2014-05-01', 60);");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }

  ResultSet Query(const std::string& sql) {
    auto result = ExecuteSql(&db_, sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? *result : ResultSet{};
  }

  Database db_;
};

TEST_F(SqlTest, CreateTableBuildsCatalog) {
  const Table* table = db_.GetTable("items");
  ASSERT_NE(table, nullptr);
  const TableSchema& schema = table->schema();
  ASSERT_EQ(schema.columns.size(), 6u);
  EXPECT_TRUE(schema.columns[0].primary_key);
  EXPECT_FALSE(schema.columns[0].nullable);
  EXPECT_FALSE(schema.columns[1].nullable);
  EXPECT_EQ(schema.columns[2].type, pdgf::DataType::kDecimal);
  EXPECT_EQ(schema.columns[2].size, 15);
  EXPECT_EQ(schema.columns[2].scale, 2);
  EXPECT_EQ(schema.columns[1].size, 30);
}

TEST_F(SqlTest, SelectStarReturnsEverything) {
  ResultSet result = Query("SELECT * FROM items");
  EXPECT_EQ(result.columns.size(), 6u);
  EXPECT_EQ(result.rows.size(), 5u);
}

TEST_F(SqlTest, Projection) {
  ResultSet result = Query("SELECT name, price FROM items");
  EXPECT_EQ(result.columns,
            (std::vector<std::string>{"name", "price"}));
  EXPECT_EQ(result.rows[0][0].string_value(), "hammer");
  EXPECT_EQ(result.rows[0][1].ToText(), "9.99");
}

TEST_F(SqlTest, WhereComparisons) {
  EXPECT_EQ(Query("SELECT id FROM items WHERE price > 3").rows.size(), 3u);
  EXPECT_EQ(Query("SELECT id FROM items WHERE price >= 2.50").rows.size(),
            4u);
  EXPECT_EQ(Query("SELECT id FROM items WHERE id <> 3").rows.size(), 4u);
  EXPECT_EQ(
      Query("SELECT id FROM items WHERE category = 'tools'").rows.size(),
      2u);
  EXPECT_EQ(Query("SELECT id FROM items WHERE price < 1 AND stock > 500")
                .rows.size(),
            1u);
}

TEST_F(SqlTest, WhereOnDates) {
  EXPECT_EQ(Query("SELECT id FROM items WHERE added >= DATE '2014-03-01'")
                .rows.size(),
            2u);
  // Bare strings coerce against DATE columns too.
  EXPECT_EQ(Query("SELECT id FROM items WHERE added = '2014-01-05'")
                .rows.size(),
            1u);
}

TEST_F(SqlTest, NullSemantics) {
  EXPECT_EQ(Query("SELECT id FROM items WHERE category IS NULL").rows.size(),
            1u);
  EXPECT_EQ(
      Query("SELECT id FROM items WHERE category IS NOT NULL").rows.size(),
      4u);
  // Comparisons with NULL cells are unknown, not true.
  EXPECT_EQ(Query("SELECT id FROM items WHERE stock > 0").rows.size(), 4u);
}

TEST_F(SqlTest, BetweenAndLike) {
  EXPECT_EQ(
      Query("SELECT id FROM items WHERE price BETWEEN 2 AND 10").rows.size(),
      3u);
  EXPECT_EQ(Query("SELECT id FROM items WHERE name LIKE 'h%'").rows.size(),
            2u);
  EXPECT_EQ(Query("SELECT id FROM items WHERE name LIKE '%ose'").rows.size(),
            2u);
  EXPECT_EQ(Query("SELECT id FROM items WHERE name LIKE '_ail'").rows.size(),
            1u);
  EXPECT_EQ(
      Query("SELECT id FROM items WHERE name NOT LIKE '%o%'").rows.size(),
      2u);
}

TEST_F(SqlTest, GlobalAggregates) {
  ResultSet result = Query(
      "SELECT COUNT(*), COUNT(category), COUNT(DISTINCT category), "
      "SUM(price), AVG(stock), MIN(price), MAX(name) FROM items");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.At(0, "count").int_value(), 5);
  EXPECT_EQ(result.At(0, "count_category").int_value(), 4);
  EXPECT_EQ(result.At(0, "count_distinct_category").int_value(), 2);
  EXPECT_NEAR(result.At(0, "sum_price").AsDouble(), 41.29, 1e-9);
  EXPECT_NEAR(result.At(0, "avg_stock").AsDouble(), (10 + 1000 + 25 + 60) / 4.0,
              1e-9);
  EXPECT_EQ(result.At(0, "min_price").ToText(), "0.05");
  EXPECT_EQ(result.At(0, "max_name").string_value(), "rose");
}

TEST_F(SqlTest, AggregatesOnEmptyInput) {
  ResultSet result =
      Query("SELECT COUNT(*), SUM(price) FROM items WHERE id > 100");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.At(0, "count").int_value(), 0);
  EXPECT_TRUE(result.At(0, "sum_price").is_null());
}

TEST_F(SqlTest, GroupBy) {
  ResultSet result = Query(
      "SELECT category, COUNT(*), SUM(price) FROM items "
      "GROUP BY category ORDER BY category");
  ASSERT_EQ(result.rows.size(), 3u);  // NULL group, garden, tools
  EXPECT_TRUE(result.rows[0][0].is_null());
  EXPECT_EQ(result.rows[1][0].string_value(), "garden");
  EXPECT_EQ(result.rows[1][1].int_value(), 2);
  EXPECT_NEAR(result.rows[1][2].AsDouble(), 27.50, 1e-9);
  EXPECT_EQ(result.rows[2][0].string_value(), "tools");
}

TEST_F(SqlTest, OrderByAndLimit) {
  ResultSet result =
      Query("SELECT name FROM items ORDER BY price DESC LIMIT 2");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0].string_value(), "hose");
  EXPECT_EQ(result.rows[1][0].string_value(), "hammer");
  ResultSet by_alias =
      Query("SELECT name, price AS p FROM items ORDER BY p LIMIT 1");
  EXPECT_EQ(by_alias.rows[0][0].string_value(), "nail");
}

TEST_F(SqlTest, InsertValidatesAgainstSchema) {
  // NULL into NOT NULL.
  auto bad = ExecuteSql(&db_, "INSERT INTO items VALUES (9, NULL, 1, 'x', "
                              "NULL, 1)");
  EXPECT_FALSE(bad.ok());
  // Wrong arity.
  EXPECT_FALSE(ExecuteSql(&db_, "INSERT INTO items VALUES (9)").ok());
  // Unknown table.
  EXPECT_FALSE(ExecuteSql(&db_, "INSERT INTO ghost VALUES (1)").ok());
}

TEST_F(SqlTest, UpdateStatement) {
  ResultSet result = Query(
      "UPDATE items SET price = 1.00, category = 'sale' WHERE price > 5");
  EXPECT_EQ(result.affected_rows, 2u);  // hammer, hose
  EXPECT_EQ(Query("SELECT COUNT(*) FROM items WHERE category = 'sale'")
                .At(0, "count")
                .int_value(),
            2);
  // The assigned literal was coerced to the column's DECIMAL scale.
  EXPECT_EQ(Query("SELECT price FROM items WHERE id = 1")
                .rows[0][0]
                .ToText(),
            "1.00");
}

TEST_F(SqlTest, UpdateWithoutWhereTouchesEverything) {
  ResultSet result = Query("UPDATE items SET stock = 0");
  EXPECT_EQ(result.affected_rows, 5u);
  EXPECT_EQ(Query("SELECT SUM(stock) FROM items").At(0, "sum_stock")
                .AsDouble(),
            0);
}

TEST_F(SqlTest, UpdateValidation) {
  EXPECT_FALSE(ExecuteSql(&db_, "UPDATE ghost SET a = 1").ok());
  EXPECT_FALSE(ExecuteSql(&db_, "UPDATE items SET ghost = 1").ok());
  EXPECT_FALSE(
      ExecuteSql(&db_, "UPDATE items SET id = 1 WHERE ghost = 2").ok());
  // NULL into NOT NULL column.
  EXPECT_FALSE(ExecuteSql(&db_, "UPDATE items SET name = NULL").ok());
  // Incompatible literal kind.
  EXPECT_FALSE(ExecuteSql(&db_, "UPDATE items SET id = 'text'").ok());
}

TEST_F(SqlTest, DeleteStatement) {
  ResultSet result =
      Query("DELETE FROM items WHERE category = 'garden'");
  EXPECT_EQ(result.affected_rows, 2u);
  EXPECT_EQ(Query("SELECT COUNT(*) FROM items").At(0, "count").int_value(),
            3);
  // Remaining rows kept their order.
  ResultSet names = Query("SELECT name FROM items");
  ASSERT_EQ(names.rows.size(), 3u);
  EXPECT_EQ(names.rows[0][0].string_value(), "hammer");
  EXPECT_EQ(names.rows[1][0].string_value(), "nail");
  EXPECT_EQ(names.rows[2][0].string_value(), "glove");
}

TEST_F(SqlTest, DeleteWithoutWhereEmptiesTable) {
  ResultSet result = Query("DELETE FROM items");
  EXPECT_EQ(result.affected_rows, 5u);
  EXPECT_EQ(Query("SELECT COUNT(*) FROM items").At(0, "count").int_value(),
            0);
  // Deleting again affects nothing.
  EXPECT_EQ(Query("DELETE FROM items").affected_rows, 0u);
}

TEST_F(SqlTest, DropTable) {
  ASSERT_TRUE(ExecuteSql(&db_, "DROP TABLE items").ok());
  EXPECT_EQ(db_.GetTable("items"), nullptr);
  EXPECT_FALSE(ExecuteSql(&db_, "SELECT * FROM items").ok());
}

TEST_F(SqlTest, ErrorsForUnknownColumns) {
  EXPECT_FALSE(ExecuteSql(&db_, "SELECT ghost FROM items").ok());
  EXPECT_FALSE(ExecuteSql(&db_, "SELECT id FROM items WHERE ghost = 1").ok());
  EXPECT_FALSE(
      ExecuteSql(&db_, "SELECT id FROM items ORDER BY ghost").ok());
  EXPECT_FALSE(
      ExecuteSql(&db_, "SELECT COUNT(*) FROM items GROUP BY ghost").ok());
}

TEST_F(SqlTest, ParseErrors) {
  EXPECT_FALSE(ExecuteSql(&db_, "").ok());
  EXPECT_FALSE(ExecuteSql(&db_, "SELEKT * FROM items").ok());
  EXPECT_FALSE(ExecuteSql(&db_, "SELECT * FROM").ok());
  EXPECT_FALSE(ExecuteSql(&db_, "SELECT * FROM items WHERE").ok());
  EXPECT_FALSE(ExecuteSql(&db_, "INSERT INTO items VALUES (1,2").ok());
  EXPECT_FALSE(ExecuteSql(&db_, "SELECT * FROM items; DROP TABLE x").ok());
}

TEST_F(SqlTest, GroupByRequiresAggregates) {
  EXPECT_FALSE(
      ExecuteSql(&db_, "SELECT name FROM items GROUP BY category").ok());
  EXPECT_FALSE(ExecuteSql(&db_, "SELECT name, COUNT(*) FROM items "
                                "GROUP BY category")
                   .ok());
}

TEST_F(SqlTest, StringEscaping) {
  ASSERT_TRUE(ExecuteSql(&db_, "INSERT INTO items VALUES (9, 'it''s', 1.00,"
                               " 'q', NULL, 1)")
                  .ok());
  ResultSet result = Query("SELECT name FROM items WHERE id = 9");
  EXPECT_EQ(result.rows[0][0].string_value(), "it's");
}

TEST_F(SqlTest, CommentsAreIgnored) {
  ResultSet result = Query(
      "SELECT id FROM items -- trailing comment\nWHERE id = 1");
  EXPECT_EQ(result.rows.size(), 1u);
}

TEST_F(SqlTest, ResultSetToStringAligns) {
  std::string text = Query("SELECT name, stock FROM items WHERE id > 3").ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("hose"), std::string::npos);
  EXPECT_NE(text.find("NULL"), std::string::npos);
}

TEST_F(SqlTest, ExecuteSqlOnSourceRunsSelectsOnly) {
  TableRowSource source(db_.GetTable("items"));
  auto result = ExecuteSqlOnSource(
      source, "SELECT COUNT(*) FROM anything_the_name_is_ignored");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->At(0, "count").int_value(), 5);
  EXPECT_FALSE(ExecuteSqlOnSource(source, "DROP TABLE items").ok());
  EXPECT_FALSE(ExecuteSqlOnSource(source, "not sql").ok());
}

TEST(LikeMatchTest, PatternEdgeCases) {
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_TRUE(LikeMatch("abc", "a%c"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_FALSE(LikeMatch("abc", "abcd"));
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%ppi"));
}

TEST(BuildCreateTableSqlTest, RoundTripsThroughParser) {
  TableSchema schema;
  schema.name = "orders";
  schema.columns.push_back(ColumnDef{"o_id", pdgf::DataType::kBigInt, 19, 2,
                                     false, true, "", ""});
  schema.columns.push_back(ColumnDef{"o_total", pdgf::DataType::kDecimal, 15,
                                     2, true, false, "", ""});
  schema.columns.push_back(ColumnDef{"o_cust", pdgf::DataType::kBigInt, 19,
                                     2, false, false, "customer", "c_id"});
  std::string sql = BuildCreateTableSql(schema);
  EXPECT_NE(sql.find("PRIMARY KEY"), std::string::npos);
  EXPECT_NE(sql.find("REFERENCES customer(c_id)"), std::string::npos);
  EXPECT_NE(sql.find("DECIMAL(15,2)"), std::string::npos);

  Database database;
  TableSchema customer;
  customer.name = "customer";
  customer.columns.push_back(ColumnDef{"c_id", pdgf::DataType::kBigInt, 19,
                                       2, false, true, "", ""});
  ASSERT_TRUE(database.CreateTable(customer).ok());
  auto result = ExecuteSql(&database, sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;
  const Table* table = database.GetTable("orders");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->schema().columns[2].ref_table, "customer");
}

}  // namespace
}  // namespace minidb
