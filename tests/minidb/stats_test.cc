#include "minidb/stats.h"

#include <gtest/gtest.h>

#include "minidb/sql.h"

namespace minidb {
namespace {

using pdgf::Value;

Database MakeDb() {
  Database db;
  auto created = ExecuteSqlScript(
      &db,
      "CREATE TABLE t (n INTEGER, txt VARCHAR(50), d DATE);"
      "INSERT INTO t VALUES"
      " (1, 'alpha', DATE '2000-01-01'),"
      " (2, 'alpha', DATE '2000-06-01'),"
      " (3, 'beta word', DATE '2001-01-01'),"
      " (4, NULL, NULL),"
      " (10, 'alpha', DATE '2002-01-01'),"
      " (NULL, 'gamma delta epsilon', DATE '2000-03-01');");
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return db;
}

TEST(StatsTest, RowAndNullCounts) {
  Database db = MakeDb();
  TableStats stats = AnalyzeTable(*db.GetTable("t"));
  EXPECT_EQ(stats.row_count, 6u);
  const ColumnStats* n = stats.FindColumn("n");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->null_count, 1u);
  EXPECT_NEAR(n->null_fraction(), 1.0 / 6, 1e-12);
  const ColumnStats* txt = stats.FindColumn("txt");
  EXPECT_EQ(txt->null_count, 1u);
  EXPECT_EQ(stats.FindColumn("ghost"), nullptr);
}

TEST(StatsTest, MinMaxAndMean) {
  Database db = MakeDb();
  TableStats stats = AnalyzeTable(*db.GetTable("t"));
  const ColumnStats* n = stats.FindColumn("n");
  EXPECT_EQ(n->min.int_value(), 1);
  EXPECT_EQ(n->max.int_value(), 10);
  EXPECT_NEAR(n->mean, (1 + 2 + 3 + 4 + 10) / 5.0, 1e-12);
  const ColumnStats* d = stats.FindColumn("d");
  EXPECT_EQ(d->min.ToText(), "2000-01-01");
  EXPECT_EQ(d->max.ToText(), "2002-01-01");
}

TEST(StatsTest, DistinctCounts) {
  Database db = MakeDb();
  TableStats stats = AnalyzeTable(*db.GetTable("t"));
  EXPECT_EQ(stats.FindColumn("n")->distinct_count, 5u);
  EXPECT_EQ(stats.FindColumn("txt")->distinct_count, 3u);
}

TEST(StatsTest, TopValues) {
  Database db = MakeDb();
  TableStats stats = AnalyzeTable(*db.GetTable("t"));
  const ColumnStats* txt = stats.FindColumn("txt");
  ASSERT_FALSE(txt->top_values.empty());
  EXPECT_EQ(txt->top_values[0].first, "alpha");
  EXPECT_EQ(txt->top_values[0].second, 3u);
}

TEST(StatsTest, WordAndLengthStatistics) {
  Database db = MakeDb();
  TableStats stats = AnalyzeTable(*db.GetTable("t"));
  const ColumnStats* txt = stats.FindColumn("txt");
  EXPECT_DOUBLE_EQ(txt->max_word_count, 3.0);
  // Words: alpha(1) alpha(1) "beta word"(2) alpha(1) "gamma..."(3) = 8/5.
  EXPECT_NEAR(txt->avg_word_count, 8.0 / 5, 1e-12);
  EXPECT_GT(txt->avg_length, 4.0);
}

TEST(StatsTest, HistogramCoversRange) {
  Database db;
  auto created =
      ExecuteSql(&db, "CREATE TABLE h (v DOUBLE)");
  ASSERT_TRUE(created.ok());
  Table* table = db.GetTable("h");
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(table->Insert({Value::Double(i / 10.0)}).ok());
  }
  TableStats stats = AnalyzeTable(*table, /*histogram_buckets=*/10);
  const ColumnStats* v = stats.FindColumn("v");
  ASSERT_TRUE(v->has_histogram);
  EXPECT_EQ(v->histogram.buckets.size(), 10u);
  EXPECT_EQ(v->histogram.total, 1000u);
  // Uniform data: each bucket holds ~100 values.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(v->histogram.Fraction(i), 0.1, 0.02) << i;
  }
  EXPECT_DOUBLE_EQ(v->histogram.min, 0.0);
  EXPECT_DOUBLE_EQ(v->histogram.max, 99.9);
  EXPECT_NEAR(v->histogram.BucketWidth(), 9.99, 1e-9);
}

TEST(StatsTest, NoHistogramForTextOrConstant) {
  Database db = MakeDb();
  TableStats stats = AnalyzeTable(*db.GetTable("t"));
  EXPECT_FALSE(stats.FindColumn("txt")->has_histogram);

  Database db2;
  ASSERT_TRUE(ExecuteSql(&db2, "CREATE TABLE c (v INTEGER)").ok());
  Table* table = db2.GetTable("c");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table->Insert({Value::Int(7)}).ok());
  }
  TableStats constant_stats = AnalyzeTable(*table);
  // Degenerate range (min == max): no histogram.
  EXPECT_FALSE(constant_stats.FindColumn("v")->has_histogram);
  EXPECT_EQ(constant_stats.FindColumn("v")->distinct_count, 1u);
}

TEST(StatsTest, EmptyTable) {
  Database db;
  ASSERT_TRUE(ExecuteSql(&db, "CREATE TABLE e (v INTEGER)").ok());
  TableStats stats = AnalyzeTable(*db.GetTable("e"));
  EXPECT_EQ(stats.row_count, 0u);
  const ColumnStats* v = stats.FindColumn("v");
  EXPECT_EQ(v->distinct_count, 0u);
  EXPECT_TRUE(v->min.is_null());
  EXPECT_FALSE(v->has_histogram);
}

}  // namespace
}  // namespace minidb
