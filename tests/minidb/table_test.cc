#include "minidb/table.h"

#include <gtest/gtest.h>

#include "minidb/database.h"

namespace minidb {
namespace {

using pdgf::DataType;
using pdgf::Value;

TableSchema MakeSchema() {
  TableSchema schema;
  schema.name = "t";
  schema.columns.push_back(
      ColumnDef{"id", DataType::kBigInt, 19, 2, false, true, "", ""});
  schema.columns.push_back(
      ColumnDef{"price", DataType::kDecimal, 15, 2, true, false, "", ""});
  schema.columns.push_back(
      ColumnDef{"name", DataType::kVarchar, 25, 2, true, false, "", ""});
  schema.columns.push_back(
      ColumnDef{"born", DataType::kDate, 10, 2, true, false, "", ""});
  return schema;
}

TEST(TableSchemaTest, FindColumnIsCaseInsensitive) {
  TableSchema schema = MakeSchema();
  EXPECT_EQ(schema.FindColumn("id"), 0);
  EXPECT_EQ(schema.FindColumn("PRICE"), 1);
  EXPECT_EQ(schema.FindColumn("missing"), -1);
  EXPECT_EQ(schema.FindColumnDef("Name")->type, DataType::kVarchar);
  EXPECT_EQ(schema.FindColumnDef("missing"), nullptr);
}

TEST(CoerceValueTest, IntegerFamily) {
  ColumnDef column{"c", DataType::kBigInt, 0, 2, true, false, "", ""};
  EXPECT_EQ(CoerceValue(column, Value::Int(5))->int_value(), 5);
  EXPECT_EQ(CoerceValue(column, Value::Double(5.9))->int_value(), 5);
  EXPECT_EQ(CoerceValue(column, Value::Decimal(599, 2))->int_value(), 5);
  EXPECT_EQ(CoerceValue(column, Value::Bool(true))->int_value(), 1);
  EXPECT_FALSE(CoerceValue(column, Value::String("5")).ok());
}

TEST(CoerceValueTest, DecimalRescaling) {
  ColumnDef column{"c", DataType::kDecimal, 15, 2, true, false, "", ""};
  Value rescaled = *CoerceValue(column, Value::Decimal(12345, 4));  // 1.2345
  EXPECT_EQ(rescaled.decimal_scale(), 2);
  EXPECT_EQ(rescaled.decimal_unscaled(), 123);
  EXPECT_EQ(CoerceValue(column, Value::Int(7))->ToText(), "7.00");
  EXPECT_EQ(CoerceValue(column, Value::Double(1.239))->ToText(), "1.24");
}

TEST(CoerceValueTest, TextAcceptsScalars) {
  ColumnDef column{"c", DataType::kVarchar, 0, 2, true, false, "", ""};
  EXPECT_EQ(CoerceValue(column, Value::String("x"))->string_value(), "x");
  EXPECT_EQ(CoerceValue(column, Value::Int(42))->string_value(), "42");
}

TEST(CoerceValueTest, DateFromString) {
  ColumnDef column{"c", DataType::kDate, 0, 2, true, false, "", ""};
  Value date = *CoerceValue(column, Value::String("1996-04-12"));
  EXPECT_EQ(date.kind(), Value::Kind::kDate);
  EXPECT_FALSE(CoerceValue(column, Value::String("not a date")).ok());
  EXPECT_FALSE(CoerceValue(column, Value::Int(5)).ok());
}

TEST(CoerceValueTest, NullRespectsNullability) {
  ColumnDef nullable{"c", DataType::kBigInt, 0, 2, true, false, "", ""};
  EXPECT_TRUE(CoerceValue(nullable, Value::Null())->is_null());
  ColumnDef required{"c", DataType::kBigInt, 0, 2, false, false, "", ""};
  EXPECT_FALSE(CoerceValue(required, Value::Null()).ok());
}

TEST(TableTest, InsertValidatesArity) {
  Table table(MakeSchema());
  EXPECT_FALSE(table.Insert({Value::Int(1)}).ok());
  EXPECT_TRUE(table
                  .Insert({Value::Int(1), Value::Double(9.99),
                           Value::String("a"), Value::Null()})
                  .ok());
  EXPECT_EQ(table.row_count(), 1u);
  // The decimal landed coerced.
  EXPECT_EQ(table.row(0)[1].ToText(), "9.99");
}

TEST(TableTest, InsertRejectsNullInNotNull) {
  Table table(MakeSchema());
  EXPECT_FALSE(
      table
          .Insert({Value::Null(), Value::Double(1), Value::String("a"),
                   Value::Null()})
          .ok());
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(TableTest, ScanVisitsInOrderAndStopsEarly) {
  Table table(MakeSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value::Int(i), Value::Double(i), Value::Null(),
                             Value::Null()})
                    .ok());
  }
  int visited = 0;
  table.Scan([&visited](const Row& row) {
    EXPECT_EQ(row[0].int_value(), visited);
    ++visited;
    return visited < 4;
  });
  EXPECT_EQ(visited, 4);
}

TEST(DatabaseTest, CreateGetDrop) {
  Database database;
  ASSERT_TRUE(database.CreateTable(MakeSchema()).ok());
  EXPECT_NE(database.GetTable("t"), nullptr);
  EXPECT_NE(database.GetTable("T"), nullptr);  // case-insensitive
  EXPECT_EQ(database.GetTable("u"), nullptr);
  EXPECT_FALSE(database.CreateTable(MakeSchema()).ok());  // duplicate
  EXPECT_TRUE(database.DropTable("t").ok());
  EXPECT_FALSE(database.DropTable("t").ok());
}

TEST(DatabaseTest, ForeignKeysValidatedAtCreate) {
  Database database;
  ASSERT_TRUE(database.CreateTable(MakeSchema()).ok());
  TableSchema child;
  child.name = "child";
  child.columns.push_back(
      ColumnDef{"fk", DataType::kBigInt, 0, 2, true, false, "t", "id"});
  EXPECT_TRUE(database.CreateTable(child).ok());

  TableSchema bad_table;
  bad_table.name = "bad1";
  bad_table.columns.push_back(
      ColumnDef{"fk", DataType::kBigInt, 0, 2, true, false, "ghost", "id"});
  EXPECT_FALSE(database.CreateTable(bad_table).ok());

  TableSchema bad_column;
  bad_column.name = "bad2";
  bad_column.columns.push_back(
      ColumnDef{"fk", DataType::kBigInt, 0, 2, true, false, "t", "ghost"});
  EXPECT_FALSE(database.CreateTable(bad_column).ok());
}

TEST(DatabaseTest, TableNamesInCreationOrder) {
  Database database;
  for (const char* name : {"zeta", "alpha", "mid"}) {
    TableSchema schema = MakeSchema();
    schema.name = name;
    ASSERT_TRUE(database.CreateTable(std::move(schema)).ok());
  }
  EXPECT_EQ(database.TableNames(),
            (std::vector<std::string>{"zeta", "alpha", "mid"}));
}

}  // namespace
}  // namespace minidb
