// Integration: the full paper pipeline on TPC-H.
//   PDGF generates TPC-H -> CSV -> loaded into MiniDB ("source DB")
//   -> DBSynth extracts a model -> PDGF regenerates -> target MiniDB
//   -> SQL verification queries compare source and synthetic data
// (Figure 3 end to end, plus the §5 demo's quality check.)

#include <set>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/session.h"
#include "dbsynth/schema_translator.h"
#include "dbsynth/synthesizer.h"
#include "minidb/csv.h"
#include "minidb/sql.h"
#include "minidb/stats.h"
#include "util/strings.h"
#include "workloads/tpch.h"

namespace {

using pdgf::Value;

class TpchRoundTripTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    source_ = new minidb::Database();
    // Generate a tiny TPC-H and bulk load it as the "customer's real
    // database".
    schema_ = new pdgf::SchemaDef(workloads::BuildTpchSchema());
    auto session =
        pdgf::GenerationSession::Create(schema_, {{"SF", "0.0005"}});
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_TRUE(dbsynth::CreateTargetSchema(*schema_, source_).ok());
    auto loaded = dbsynth::BulkLoadGeneratedData(**session, source_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  }

  static void TearDownTestSuite() {
    delete source_;
    source_ = nullptr;
    delete schema_;
    schema_ = nullptr;
  }

  static minidb::Database* source_;
  static pdgf::SchemaDef* schema_;
};

minidb::Database* TpchRoundTripTest::source_ = nullptr;
pdgf::SchemaDef* TpchRoundTripTest::schema_ = nullptr;

TEST_F(TpchRoundTripTest, SourceDatabaseIsComplete) {
  EXPECT_EQ(source_->table_count(), 8u);
  EXPECT_EQ(source_->GetTable("lineitem")->row_count(), 3000u);
  EXPECT_EQ(source_->GetTable("orders")->row_count(), 750u);
  EXPECT_EQ(source_->GetTable("nation")->row_count(), 25u);
}

TEST_F(TpchRoundTripTest, SynthesizedDatabaseMatchesShape) {
  dbsynth::MiniDbConnection connection(source_);
  minidb::Database target;
  dbsynth::SynthesizeOptions options;
  options.extraction.sampling.strategy =
      dbsynth::SamplingSpec::Strategy::kFull;
  auto report = dbsynth::SynthesizeDatabase(&connection, &target, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Same tables, same sizes.
  for (const std::string& name : source_->TableNames()) {
    ASSERT_NE(target.GetTable(name), nullptr) << name;
    EXPECT_EQ(target.GetTable(name)->row_count(),
              source_->GetTable(name)->row_count())
        << name;
  }

  // Verification queries, paper §5 style.
  struct QueryCase {
    const char* sql;
    const char* column;
    double tolerance;  // relative
  };
  const QueryCase cases[] = {
      {"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25", "count", 0.15},
      {"SELECT AVG(l_extendedprice) FROM lineitem", "avg_l_extendedprice",
       0.15},
      {"SELECT COUNT(DISTINCT l_shipmode) FROM lineitem",
       "count_distinct_l_shipmode", 0.01},
      {"SELECT MIN(o_orderdate) FROM orders", "min_o_orderdate", 0.01},
      {"SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'P'", "count",
       0.9},
  };
  for (const QueryCase& query : cases) {
    auto original = minidb::ExecuteSql(source_, query.sql);
    auto synthetic = minidb::ExecuteSql(&target, query.sql);
    ASSERT_TRUE(original.ok()) << query.sql;
    ASSERT_TRUE(synthetic.ok()) << query.sql;
    double original_value = original->At(0, query.column).AsDouble();
    double synthetic_value = synthetic->At(0, query.column).AsDouble();
    if (original_value == 0) {
      EXPECT_NEAR(synthetic_value, 0, 5) << query.sql;
    } else {
      EXPECT_NEAR(synthetic_value / original_value, 1.0, query.tolerance)
          << query.sql << ": " << original_value << " vs "
          << synthetic_value;
    }
  }
}

TEST_F(TpchRoundTripTest, SynthesizedCommentsShareVocabulary) {
  dbsynth::MiniDbConnection connection(source_);
  minidb::Database target;
  dbsynth::SynthesizeOptions options;
  options.extraction.sampling.strategy =
      dbsynth::SamplingSpec::Strategy::kFull;
  ASSERT_TRUE(
      dbsynth::SynthesizeDatabase(&connection, &target, options).ok());

  // Collect the source comment vocabulary.
  std::set<std::string> vocabulary;
  source_->GetTable("orders")->Scan([&vocabulary](const minidb::Row& row) {
    const Value& comment = row[8];
    if (!comment.is_null()) {
      for (const std::string& word :
           pdgf::SplitWhitespace(comment.string_value())) {
        vocabulary.insert(word);
      }
    }
    return true;
  });
  ASSERT_GT(vocabulary.size(), 10u);
  // Every synthetic comment word was learned from the source (value-level
  // realism, the paper's key claim for DBSynth).
  int checked = 0;
  target.GetTable("orders")->Scan([&](const minidb::Row& row) {
    const Value& comment = row[8];
    if (comment.is_null()) return true;
    for (const std::string& word :
         pdgf::SplitWhitespace(comment.string_value())) {
      EXPECT_TRUE(vocabulary.count(word) > 0) << word;
    }
    return ++checked < 100;
  });
  EXPECT_GT(checked, 0);
}

TEST_F(TpchRoundTripTest, CsvPathAlsoRoundTrips) {
  // PDGF CSV output loads back into MiniDB losslessly for lineitem.
  auto session =
      pdgf::GenerationSession::Create(schema_, {{"SF", "0.0005"}});
  ASSERT_TRUE(session.ok());
  pdgf::CsvFormatter formatter;
  auto csv = GenerateTableToString(
      **session, schema_->FindTableIndex("lineitem"), formatter);
  ASSERT_TRUE(csv.ok());

  minidb::Database db;
  ASSERT_TRUE(dbsynth::CreateTargetSchema(*schema_, &db).ok());
  auto loaded = minidb::LoadCsvIntoTable(*csv, db.GetTable("lineitem"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 3000u);
  // Spot-check against direct generation.
  std::vector<Value> row;
  (*session)->GenerateRow(schema_->FindTableIndex("lineitem"), 5, 0, &row);
  const minidb::Row& loaded_row = db.GetTable("lineitem")->row(5);
  EXPECT_EQ(loaded_row[0], row[0]);
  EXPECT_EQ(loaded_row[15].string_value(), row[15].string_value());
}

}  // namespace
