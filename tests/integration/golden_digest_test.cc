// Integration: golden digest fixtures. The committed fixtures under
// tests/integration/golden/ pin the exact 128-bit table digests of the
// bundled models (TPC-H SF 0.01, SSB SF 0.01, IMDb SF 1). Any change to
// seeding, generator logic, dictionaries or formatting shows up here as
// a digest mismatch — which is the point: determinism regressions must
// be deliberate, audited and re-blessed, never accidental.

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/session.h"
#include "util/files.h"
#include "util/hash.h"
#include "workloads/imdb.h"

#ifndef DBSYNTHPP_SOURCE_DIR
#define DBSYNTHPP_SOURCE_DIR "."
#endif

namespace {

using pdgf::JoinPath;
using pdgf::TableDigest;
using pdgf::TableDigestEntry;

struct GoldenCase {
  const char* model;
  const char* scale_factor;  // "" = model default
  const char* fixture;
};

constexpr GoldenCase kCases[] = {
    {"tpch", "0.01", "tpch_sf0.01.digests"},
    {"ssb", "0.01", "ssb_sf0.01.digests"},
    {"imdb", "", "imdb_sf1.digests"},
};

class GoldenDigestTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenDigestTest, DigestsMatchCommittedFixture) {
  const GoldenCase& test_case = GetParam();

  auto schema = workloads::BuildBundledModel(test_case.model);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  std::map<std::string, std::string> overrides;
  if (test_case.scale_factor[0] != '\0') {
    overrides["SF"] = test_case.scale_factor;
  }
  auto session = pdgf::GenerationSession::Create(&*schema, overrides);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  pdgf::CsvFormatter formatter;
  pdgf::GenerationOptions options;
  options.worker_count = 2;
  options.work_package_rows = 512;
  options.compute_digests = true;
  auto stats = GenerateToNull(**session, formatter, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  std::string fixture_path = JoinPath(
      JoinPath(DBSYNTHPP_SOURCE_DIR, "tests/integration/golden"),
      test_case.fixture);
  auto contents = pdgf::ReadFileToString(fixture_path);
  ASSERT_TRUE(contents.ok())
      << "missing golden fixture " << fixture_path << " — create it with:"
      << " dbsynthpp verify --model " << test_case.model
      << " --bless " << fixture_path;
  auto entries = pdgf::ParseDigestFixture(*contents);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();

  std::map<std::string, TableDigestEntry> golden;
  for (const TableDigestEntry& entry : *entries) {
    golden[entry.table] = entry;
  }
  ASSERT_EQ(golden.size(), schema->tables.size())
      << "fixture " << fixture_path
      << " does not cover every table of model " << test_case.model;

  for (size_t t = 0; t < schema->tables.size(); ++t) {
    const std::string& name = schema->tables[t].name;
    const TableDigest& digest = stats->table_digests[t];
    auto it = golden.find(name);
    ASSERT_NE(it, golden.end()) << "no golden entry for table " << name;
    EXPECT_EQ(it->second.hex, digest.Hex())
        << "digest drift in table '" << name << "' of model '"
        << test_case.model << "'.\n"
        << "If this change is intentional (new generator logic, seeding\n"
        << "or formatting), audit the output and re-bless the fixture:\n"
        << "  dbsynthpp verify --model " << test_case.model
        << (test_case.scale_factor[0] != '\0'
                ? std::string(" --sf ") + test_case.scale_factor
                : std::string())
        << " --bless " << fixture_path << "\n"
        << "If it is NOT intentional, a determinism regression slipped in.";
    EXPECT_EQ(it->second.rows, digest.rows()) << "row count drift: " << name;
    EXPECT_EQ(it->second.bytes, digest.bytes())
        << "byte count drift: " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BundledModels, GoldenDigestTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.model);
    });

TEST(DigestFixtureFormatTest, RoundTripsThroughFormatAndParse) {
  std::vector<TableDigestEntry> entries = {
      {"alpha", 10, 1234, std::string(32, 'a')},
      {"beta", 0, 0, std::string(32, '0')},
  };
  std::string text =
      pdgf::FormatDigestFixture(entries, "two\nline header");
  auto parsed = pdgf::ParseDigestFixture(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].table, "alpha");
  EXPECT_EQ((*parsed)[0].rows, 10u);
  EXPECT_EQ((*parsed)[0].bytes, 1234u);
  EXPECT_EQ((*parsed)[0].hex, std::string(32, 'a'));
  EXPECT_EQ((*parsed)[1].table, "beta");

  EXPECT_FALSE(pdgf::ParseDigestFixture("t\t1\t2\tnothex!").ok());
  EXPECT_FALSE(pdgf::ParseDigestFixture("only-one-field").ok());
}

}  // namespace
