// Integration: repeatability guarantees across the whole stack — the
// property that underpins PDGF's parallel generation strategy (paper §2
// and §6 "An important characteristic for benchmarking data is
// repeatability").

#include <map>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/session.h"
#include "util/files.h"
#include "workloads/bigbench.h"
#include "workloads/tpch.h"

namespace {

using pdgf::GenerationOptions;
using pdgf::Value;

// Hashes the full CSV output (all tables, concatenated in schema order)
// under the given engine options. Per-table buffers: the engine only
// orders writes *within* a table; across tables, completion order is
// scheduling-dependent by design.
uint64_t HashTableOutput(const pdgf::GenerationSession& session,
                         int table_index, GenerationOptions options) {
  pdgf::CsvFormatter formatter;
  std::map<std::string, std::string> outputs;
  pdgf::SinkFactory factory =
      [&outputs](const pdgf::TableDef& table)
      -> pdgf::StatusOr<std::unique_ptr<pdgf::Sink>> {
    class Capture : public pdgf::Sink {
     public:
      explicit Capture(std::string* out) : out_(out) {}
      pdgf::Status Write(std::string_view data) override {
        out_->append(data);
        return pdgf::Status::Ok();
      }

     private:
      std::string* out_;
    };
    return std::unique_ptr<pdgf::Sink>(new Capture(&outputs[table.name]));
  };
  (void)table_index;
  pdgf::GenerationEngine engine(&session, &formatter, factory, options);
  EXPECT_TRUE(engine.Run().ok());
  std::string contents;
  for (const pdgf::TableDef& table : session.schema().tables) {
    contents += outputs[table.name];
  }
  return pdgf::HashName(contents);
}

TEST(DeterminismTest, TpchIdenticalAcrossRunsAndParallelism) {
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.0002"}});
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  GenerationOptions serial;
  serial.worker_count = 1;
  serial.work_package_rows = 100000;
  uint64_t reference = HashTableOutput(**session, 0, serial);

  GenerationOptions parallel;
  parallel.worker_count = 4;
  parallel.work_package_rows = 17;
  EXPECT_EQ(HashTableOutput(**session, 0, parallel), reference);

  GenerationOptions tiny_packages;
  tiny_packages.worker_count = 2;
  tiny_packages.work_package_rows = 1;
  EXPECT_EQ(HashTableOutput(**session, 0, tiny_packages), reference);
}

TEST(DeterminismTest, BigBenchNodePartitioningIsSeamless) {
  pdgf::SchemaDef schema = workloads::BuildBigBenchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.0005"}});
  ASSERT_TRUE(session.ok());

  pdgf::CsvFormatter formatter;
  // Whole data set in one go.
  std::string whole;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    auto table_csv =
        GenerateTableToString(**session, static_cast<int>(t), formatter);
    ASSERT_TRUE(table_csv.ok());
    whole += *table_csv;
  }
  // Concatenation of 5 simulated nodes' outputs.
  std::string stitched;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    for (int node = 0; node < 5; ++node) {
      uint64_t begin, end;
      pdgf::NodeShare((*session)->TableRows(static_cast<int>(t)), 5, node,
                      &begin, &end);
      std::vector<Value> row;
      std::string buffer;
      for (uint64_t r = begin; r < end; ++r) {
        (*session)->GenerateRow(static_cast<int>(t), r, 0, &row);
        formatter.AppendRow(schema.tables[t], row, &buffer);
      }
      stitched += buffer;
    }
  }
  EXPECT_EQ(whole, stitched);
}

TEST(DeterminismTest, ScaleFactorPrefixProperty) {
  // Rows 0..N-1 of a SF data set are byte-identical to the same rows of a
  // larger SF data set for size-independent generators (ids, dates,
  // dictionary draws) — the computational strategy evaluates each row in
  // isolation.
  pdgf::SchemaDef small = workloads::BuildTpchSchema();
  pdgf::SchemaDef large = workloads::BuildTpchSchema();
  auto small_session =
      pdgf::GenerationSession::Create(&small, {{"SF", "0.0002"}});
  auto large_session =
      pdgf::GenerationSession::Create(&large, {{"SF", "0.001"}});
  ASSERT_TRUE(small_session.ok());
  ASSERT_TRUE(large_session.ok());
  int customer = small.FindTableIndex("customer");
  // Fields independent of other tables' sizes: c_custkey(0), c_name(1),
  // c_phone(4), c_acctbal(5), c_mktsegment(6).
  std::vector<Value> small_row, large_row;
  for (uint64_t r = 0; r < 30; ++r) {
    (*small_session)->GenerateRow(customer, r, 0, &small_row);
    (*large_session)->GenerateRow(customer, r, 0, &large_row);
    for (int field : {0, 1, 4, 5, 6}) {
      EXPECT_EQ(small_row[static_cast<size_t>(field)],
                large_row[static_cast<size_t>(field)])
          << "row " << r << " field " << field;
    }
  }
}

TEST(DeterminismTest, FilesOnDiskAreReproducible) {
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.0001"}});
  ASSERT_TRUE(session.ok());
  auto dir = pdgf::MakeTempDir("determinism_");
  ASSERT_TRUE(dir.ok());
  pdgf::CsvFormatter formatter;

  GenerationOptions options1;
  options1.worker_count = 1;
  auto stats1 = GenerateToDirectory(**session, formatter,
                                    pdgf::JoinPath(*dir, "run1"), options1);
  ASSERT_TRUE(stats1.ok());

  GenerationOptions options2;
  options2.worker_count = 4;
  options2.work_package_rows = 23;
  auto stats2 = GenerateToDirectory(**session, formatter,
                                    pdgf::JoinPath(*dir, "run2"), options2);
  ASSERT_TRUE(stats2.ok());

  for (const pdgf::TableDef& table : schema.tables) {
    auto f1 = pdgf::ReadFileToString(
        pdgf::JoinPath(*dir, "run1/" + table.name + ".csv"));
    auto f2 = pdgf::ReadFileToString(
        pdgf::JoinPath(*dir, "run2/" + table.name + ".csv"));
    ASSERT_TRUE(f1.ok());
    ASSERT_TRUE(f2.ok());
    EXPECT_EQ(*f1, *f2) << table.name;
  }
  EXPECT_EQ(stats1->bytes, stats2->bytes);
  EXPECT_EQ(stats1->rows, stats2->rows);
}

}  // namespace
