// Integration: incremental update application (the TPC-DI-style workflow
// the paper's reference [6] covers). Loading the base data and applying
// the update streams of units 1..t must leave the target database in
// exactly the state a fresh point-in-time load at t would produce — the
// consistency guarantee that makes PDGF's computed update streams usable
// for incremental-load benchmarking.

#include <gtest/gtest.h>

#include "core/generators/generators.h"
#include "core/session.h"
#include "dbsynth/schema_translator.h"
#include "minidb/sql.h"

namespace {

using pdgf::Value;

pdgf::SchemaDef MakeModel() {
  pdgf::SchemaDef schema;
  schema.name = "inc";
  schema.seed = 99;

  pdgf::TableDef accounts;
  accounts.name = "accounts";
  accounts.size_expression = "400";
  accounts.updates_expression = "4";
  accounts.update_fraction = 0.25;
  pdgf::FieldDef id;
  id.name = "id";
  id.type = pdgf::DataType::kBigInt;
  id.primary = true;
  id.generator = pdgf::GeneratorPtr(new pdgf::IdGenerator());
  accounts.fields.push_back(std::move(id));
  pdgf::FieldDef balance;
  balance.name = "balance";
  balance.type = pdgf::DataType::kDecimal;
  balance.scale = 2;
  balance.mutable_across_updates = true;
  balance.generator =
      pdgf::GeneratorPtr(new pdgf::DoubleGenerator(0, 10000, 2));
  accounts.fields.push_back(std::move(balance));
  pdgf::FieldDef status;
  status.name = "status";
  status.type = pdgf::DataType::kVarchar;
  status.mutable_across_updates = true;
  auto states = std::make_shared<pdgf::Dictionary>();
  states->Add("active", 8);
  states->Add("dormant", 2);
  states->Finalize();
  status.generator = pdgf::GeneratorPtr(new pdgf::DictListGenerator(
      std::move(states), "", pdgf::DictListGenerator::Method::kCumulative,
      0));
  accounts.fields.push_back(std::move(status));
  schema.tables.push_back(std::move(accounts));

  // A static dimension alongside, to verify it is left untouched.
  pdgf::TableDef branches;
  branches.name = "branches";
  branches.size_expression = "10";
  pdgf::FieldDef branch_id;
  branch_id.name = "branch_id";
  branch_id.type = pdgf::DataType::kBigInt;
  branch_id.primary = true;
  branch_id.generator = pdgf::GeneratorPtr(new pdgf::IdGenerator());
  branches.fields.push_back(std::move(branch_id));
  schema.tables.push_back(std::move(branches));
  return schema;
}

void ExpectDatabasesEqual(const minidb::Database& a,
                          const minidb::Database& b) {
  for (const std::string& name : a.TableNames()) {
    const minidb::Table* table_a = a.GetTable(name);
    const minidb::Table* table_b = b.GetTable(name);
    ASSERT_NE(table_b, nullptr) << name;
    ASSERT_EQ(table_a->row_count(), table_b->row_count()) << name;
    for (size_t r = 0; r < table_a->row_count(); ++r) {
      for (size_t c = 0; c < table_a->schema().columns.size(); ++c) {
        ASSERT_EQ(table_a->row(r)[c], table_b->row(r)[c])
            << name << " row " << r << " col " << c;
      }
    }
  }
}

TEST(UpdateApplyTest, IncrementalApplicationEqualsPointInTimeLoad) {
  pdgf::SchemaDef schema = MakeModel();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());

  // Incremental target: base load, then apply streams 1, 2, 3.
  minidb::Database incremental;
  ASSERT_TRUE(dbsynth::CreateTargetSchema(schema, &incremental).ok());
  ASSERT_TRUE(dbsynth::BulkLoadGeneratedData(**session, &incremental).ok());
  uint64_t total_rewritten = 0;
  for (uint64_t update = 1; update <= 3; ++update) {
    auto rewritten =
        dbsynth::ApplyUpdateStream(**session, &incremental, update);
    ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
    // ~25% of 400 rows per unit.
    EXPECT_NEAR(static_cast<double>(*rewritten), 100, 40);
    total_rewritten += *rewritten;
  }
  EXPECT_GT(total_rewritten, 150u);

  // Reference target: a fresh load at point-in-time t = 3.
  minidb::Database reference;
  ASSERT_TRUE(dbsynth::CreateTargetSchema(schema, &reference).ok());
  {
    minidb::Table* accounts = reference.GetTable("accounts");
    std::vector<Value> row;
    for (uint64_t r = 0; r < 400; ++r) {
      (*session)->GenerateRow(0, r, 3, &row);
      ASSERT_TRUE(accounts->Insert(row).ok());
    }
    minidb::Table* branches = reference.GetTable("branches");
    for (uint64_t r = 0; r < 10; ++r) {
      (*session)->GenerateRow(1, r, 0, &row);
      ASSERT_TRUE(branches->Insert(row).ok());
    }
  }
  ExpectDatabasesEqual(reference, incremental);
}

TEST(UpdateApplyTest, RequiresBaseLoadFirst) {
  pdgf::SchemaDef schema = MakeModel();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  minidb::Database empty;
  ASSERT_TRUE(dbsynth::CreateTargetSchema(schema, &empty).ok());
  auto applied = dbsynth::ApplyUpdateStream(**session, &empty, 1);
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(),
            pdgf::StatusCode::kFailedPrecondition);
}

TEST(UpdateApplyTest, RejectsUpdateZero) {
  pdgf::SchemaDef schema = MakeModel();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  minidb::Database target;
  ASSERT_TRUE(dbsynth::CreateTargetSchema(schema, &target).ok());
  EXPECT_FALSE(dbsynth::ApplyUpdateStream(**session, &target, 0).ok());
}

TEST(UpdateApplyTest, SqlUpdateStatementsCanApplyStreamsToo) {
  // The SQL path: render each changed row as an UPDATE ... WHERE id = k
  // statement — what a generated incremental-load script looks like.
  pdgf::SchemaDef schema = MakeModel();
  auto session = pdgf::GenerationSession::Create(&schema);
  ASSERT_TRUE(session.ok());
  minidb::Database target;
  ASSERT_TRUE(dbsynth::CreateTargetSchema(schema, &target).ok());
  ASSERT_TRUE(dbsynth::BulkLoadGeneratedData(**session, &target).ok());

  std::vector<Value> row;
  uint64_t updates_applied = 0;
  for (uint64_t r = 0; r < 400; ++r) {
    if (!(*session)->RowChangesInUpdate(0, r, 1)) continue;
    (*session)->GenerateRow(0, r, 1, &row);
    std::string sql = "UPDATE accounts SET balance = " + row[1].ToText() +
                      ", status = '" + row[2].ToText() +
                      "' WHERE id = " + row[0].ToText();
    auto result = minidb::ExecuteSql(&target, sql);
    ASSERT_TRUE(result.ok()) << sql;
    EXPECT_EQ(result->affected_rows, 1u);
    ++updates_applied;
  }
  ASSERT_GT(updates_applied, 50u);

  // Spot-check one updated row against point-in-time generation.
  for (uint64_t r = 0; r < 400; ++r) {
    if (!(*session)->RowChangesInUpdate(0, r, 1)) continue;
    (*session)->GenerateRow(0, r, 1, &row);
    const minidb::Row& stored = target.GetTable("accounts")->row(r);
    EXPECT_EQ(stored[1], row[1]);
    EXPECT_EQ(stored[2].string_value(), row[2].string_value());
    break;
  }
}

}  // namespace
