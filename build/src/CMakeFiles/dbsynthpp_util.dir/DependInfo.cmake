
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/expression.cc" "src/CMakeFiles/dbsynthpp_util.dir/util/expression.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_util.dir/util/expression.cc.o.d"
  "/root/repo/src/util/files.cc" "src/CMakeFiles/dbsynthpp_util.dir/util/files.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_util.dir/util/files.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/dbsynthpp_util.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_util.dir/util/rng.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/dbsynthpp_util.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_util.dir/util/strings.cc.o.d"
  "/root/repo/src/util/xml.cc" "src/CMakeFiles/dbsynthpp_util.dir/util/xml.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_util.dir/util/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsynthpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
