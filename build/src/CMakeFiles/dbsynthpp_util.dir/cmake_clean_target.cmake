file(REMOVE_RECURSE
  "libdbsynthpp_util.a"
)
