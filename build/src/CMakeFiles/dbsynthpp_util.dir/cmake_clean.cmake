file(REMOVE_RECURSE
  "CMakeFiles/dbsynthpp_util.dir/util/expression.cc.o"
  "CMakeFiles/dbsynthpp_util.dir/util/expression.cc.o.d"
  "CMakeFiles/dbsynthpp_util.dir/util/files.cc.o"
  "CMakeFiles/dbsynthpp_util.dir/util/files.cc.o.d"
  "CMakeFiles/dbsynthpp_util.dir/util/rng.cc.o"
  "CMakeFiles/dbsynthpp_util.dir/util/rng.cc.o.d"
  "CMakeFiles/dbsynthpp_util.dir/util/strings.cc.o"
  "CMakeFiles/dbsynthpp_util.dir/util/strings.cc.o.d"
  "CMakeFiles/dbsynthpp_util.dir/util/xml.cc.o"
  "CMakeFiles/dbsynthpp_util.dir/util/xml.cc.o.d"
  "libdbsynthpp_util.a"
  "libdbsynthpp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsynthpp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
