# Empty compiler generated dependencies file for dbsynthpp_util.
# This may be replaced when dependencies are built.
