# Empty compiler generated dependencies file for dbsynthpp_common.
# This may be replaced when dependencies are built.
