file(REMOVE_RECURSE
  "CMakeFiles/dbsynthpp_common.dir/common/date.cc.o"
  "CMakeFiles/dbsynthpp_common.dir/common/date.cc.o.d"
  "CMakeFiles/dbsynthpp_common.dir/common/status.cc.o"
  "CMakeFiles/dbsynthpp_common.dir/common/status.cc.o.d"
  "CMakeFiles/dbsynthpp_common.dir/common/types.cc.o"
  "CMakeFiles/dbsynthpp_common.dir/common/types.cc.o.d"
  "CMakeFiles/dbsynthpp_common.dir/common/value.cc.o"
  "CMakeFiles/dbsynthpp_common.dir/common/value.cc.o.d"
  "libdbsynthpp_common.a"
  "libdbsynthpp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsynthpp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
