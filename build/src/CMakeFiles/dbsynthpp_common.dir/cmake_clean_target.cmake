file(REMOVE_RECURSE
  "libdbsynthpp_common.a"
)
