
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbsynth/connection.cc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/connection.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/connection.cc.o.d"
  "/root/repo/src/dbsynth/model_builder.cc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/model_builder.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/model_builder.cc.o.d"
  "/root/repo/src/dbsynth/profiler.cc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/profiler.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/profiler.cc.o.d"
  "/root/repo/src/dbsynth/query_generator.cc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/query_generator.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/query_generator.cc.o.d"
  "/root/repo/src/dbsynth/rules.cc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/rules.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/rules.cc.o.d"
  "/root/repo/src/dbsynth/schema_translator.cc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/schema_translator.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/schema_translator.cc.o.d"
  "/root/repo/src/dbsynth/synthesizer.cc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/synthesizer.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/synthesizer.cc.o.d"
  "/root/repo/src/dbsynth/virtual_query.cc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/virtual_query.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/virtual_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsynthpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
