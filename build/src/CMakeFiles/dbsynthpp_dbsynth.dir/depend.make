# Empty dependencies file for dbsynthpp_dbsynth.
# This may be replaced when dependencies are built.
