file(REMOVE_RECURSE
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/connection.cc.o"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/connection.cc.o.d"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/model_builder.cc.o"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/model_builder.cc.o.d"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/profiler.cc.o"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/profiler.cc.o.d"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/query_generator.cc.o"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/query_generator.cc.o.d"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/rules.cc.o"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/rules.cc.o.d"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/schema_translator.cc.o"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/schema_translator.cc.o.d"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/synthesizer.cc.o"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/synthesizer.cc.o.d"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/virtual_query.cc.o"
  "CMakeFiles/dbsynthpp_dbsynth.dir/dbsynth/virtual_query.cc.o.d"
  "libdbsynthpp_dbsynth.a"
  "libdbsynthpp_dbsynth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsynthpp_dbsynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
