file(REMOVE_RECURSE
  "libdbsynthpp_dbsynth.a"
)
