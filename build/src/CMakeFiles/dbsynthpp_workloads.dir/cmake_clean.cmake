file(REMOVE_RECURSE
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/bigbench.cc.o"
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/bigbench.cc.o.d"
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/dbgen.cc.o"
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/dbgen.cc.o.d"
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/imdb.cc.o"
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/imdb.cc.o.d"
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/ssb.cc.o"
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/ssb.cc.o.d"
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/tpch.cc.o"
  "CMakeFiles/dbsynthpp_workloads.dir/workloads/tpch.cc.o.d"
  "libdbsynthpp_workloads.a"
  "libdbsynthpp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsynthpp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
