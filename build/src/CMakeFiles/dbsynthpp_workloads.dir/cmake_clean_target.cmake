file(REMOVE_RECURSE
  "libdbsynthpp_workloads.a"
)
