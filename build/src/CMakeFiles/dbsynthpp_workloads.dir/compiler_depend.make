# Empty compiler generated dependencies file for dbsynthpp_workloads.
# This may be replaced when dependencies are built.
