file(REMOVE_RECURSE
  "CMakeFiles/dbsynthpp_cli.dir/cli/cli.cc.o"
  "CMakeFiles/dbsynthpp_cli.dir/cli/cli.cc.o.d"
  "libdbsynthpp_cli.a"
  "libdbsynthpp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsynthpp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
