# Empty compiler generated dependencies file for dbsynthpp_cli.
# This may be replaced when dependencies are built.
