file(REMOVE_RECURSE
  "libdbsynthpp_cli.a"
)
