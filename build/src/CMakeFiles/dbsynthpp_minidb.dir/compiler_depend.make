# Empty compiler generated dependencies file for dbsynthpp_minidb.
# This may be replaced when dependencies are built.
