file(REMOVE_RECURSE
  "libdbsynthpp_minidb.a"
)
