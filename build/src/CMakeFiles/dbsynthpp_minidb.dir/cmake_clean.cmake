file(REMOVE_RECURSE
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/catalog.cc.o"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/catalog.cc.o.d"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/csv.cc.o"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/csv.cc.o.d"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/database.cc.o"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/database.cc.o.d"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/persistence.cc.o"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/persistence.cc.o.d"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/sql.cc.o"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/sql.cc.o.d"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/sql_lexer.cc.o"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/sql_lexer.cc.o.d"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/sql_parser.cc.o"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/sql_parser.cc.o.d"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/stats.cc.o"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/stats.cc.o.d"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/table.cc.o"
  "CMakeFiles/dbsynthpp_minidb.dir/minidb/table.cc.o.d"
  "libdbsynthpp_minidb.a"
  "libdbsynthpp_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsynthpp_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
