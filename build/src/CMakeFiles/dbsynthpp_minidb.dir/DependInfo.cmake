
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidb/catalog.cc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/catalog.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/catalog.cc.o.d"
  "/root/repo/src/minidb/csv.cc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/csv.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/csv.cc.o.d"
  "/root/repo/src/minidb/database.cc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/database.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/database.cc.o.d"
  "/root/repo/src/minidb/persistence.cc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/persistence.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/persistence.cc.o.d"
  "/root/repo/src/minidb/sql.cc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/sql.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/sql.cc.o.d"
  "/root/repo/src/minidb/sql_lexer.cc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/sql_lexer.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/sql_lexer.cc.o.d"
  "/root/repo/src/minidb/sql_parser.cc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/sql_parser.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/sql_parser.cc.o.d"
  "/root/repo/src/minidb/stats.cc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/stats.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/stats.cc.o.d"
  "/root/repo/src/minidb/table.cc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/table.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_minidb.dir/minidb/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsynthpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
