file(REMOVE_RECURSE
  "libdbsynthpp_core.a"
)
