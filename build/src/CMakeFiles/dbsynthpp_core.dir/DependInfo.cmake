
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/config.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/config.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/engine.cc.o.d"
  "/root/repo/src/core/generator_registry.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/generator_registry.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/generator_registry.cc.o.d"
  "/root/repo/src/core/generators/basic_generators.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/basic_generators.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/basic_generators.cc.o.d"
  "/root/repo/src/core/generators/dict_generators.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/dict_generators.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/dict_generators.cc.o.d"
  "/root/repo/src/core/generators/histogram_generator.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/histogram_generator.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/histogram_generator.cc.o.d"
  "/root/repo/src/core/generators/markov_generator.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/markov_generator.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/markov_generator.cc.o.d"
  "/root/repo/src/core/generators/meta_generators.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/meta_generators.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/meta_generators.cc.o.d"
  "/root/repo/src/core/generators/reference_generator.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/reference_generator.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/generators/reference_generator.cc.o.d"
  "/root/repo/src/core/output/formatter.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/output/formatter.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/output/formatter.cc.o.d"
  "/root/repo/src/core/output/sink.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/output/sink.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/output/sink.cc.o.d"
  "/root/repo/src/core/progress.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/progress.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/progress.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/schema.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/session.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/session.cc.o.d"
  "/root/repo/src/core/simcluster.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/simcluster.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/simcluster.cc.o.d"
  "/root/repo/src/core/text/builtin_dictionaries.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/text/builtin_dictionaries.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/text/builtin_dictionaries.cc.o.d"
  "/root/repo/src/core/text/dictionary.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/text/dictionary.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/text/dictionary.cc.o.d"
  "/root/repo/src/core/text/markov_model.cc" "src/CMakeFiles/dbsynthpp_core.dir/core/text/markov_model.cc.o" "gcc" "src/CMakeFiles/dbsynthpp_core.dir/core/text/markov_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsynthpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
