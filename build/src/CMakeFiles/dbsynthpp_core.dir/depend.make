# Empty dependencies file for dbsynthpp_core.
# This may be replaced when dependencies are built.
