# Empty compiler generated dependencies file for bench_sec4_compute_vs_read.
# This may be replaced when dependencies are built.
