file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_compute_vs_read.dir/sec4_compute_vs_read.cpp.o"
  "CMakeFiles/bench_sec4_compute_vs_read.dir/sec4_compute_vs_read.cpp.o.d"
  "bench_sec4_compute_vs_read"
  "bench_sec4_compute_vs_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_compute_vs_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
