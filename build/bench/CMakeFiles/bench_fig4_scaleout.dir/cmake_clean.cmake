file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_scaleout.dir/fig4_scaleout.cpp.o"
  "CMakeFiles/bench_fig4_scaleout.dir/fig4_scaleout.cpp.o.d"
  "bench_fig4_scaleout"
  "bench_fig4_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
