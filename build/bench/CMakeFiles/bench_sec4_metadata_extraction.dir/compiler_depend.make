# Empty compiler generated dependencies file for bench_sec4_metadata_extraction.
# This may be replaced when dependencies are built.
