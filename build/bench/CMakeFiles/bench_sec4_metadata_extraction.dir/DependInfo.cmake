
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sec4_metadata_extraction.cpp" "bench/CMakeFiles/bench_sec4_metadata_extraction.dir/sec4_metadata_extraction.cpp.o" "gcc" "bench/CMakeFiles/bench_sec4_metadata_extraction.dir/sec4_metadata_extraction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsynthpp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_dbsynth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
