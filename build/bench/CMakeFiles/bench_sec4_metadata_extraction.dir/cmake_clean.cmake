file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_metadata_extraction.dir/sec4_metadata_extraction.cpp.o"
  "CMakeFiles/bench_sec4_metadata_extraction.dir/sec4_metadata_extraction.cpp.o.d"
  "bench_sec4_metadata_extraction"
  "bench_sec4_metadata_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_metadata_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
