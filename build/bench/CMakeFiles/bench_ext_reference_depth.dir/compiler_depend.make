# Empty compiler generated dependencies file for bench_ext_reference_depth.
# This may be replaced when dependencies are built.
