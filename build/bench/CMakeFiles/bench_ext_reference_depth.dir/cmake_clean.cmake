file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_reference_depth.dir/ext_reference_depth.cpp.o"
  "CMakeFiles/bench_ext_reference_depth.dir/ext_reference_depth.cpp.o.d"
  "bench_ext_reference_depth"
  "bench_ext_reference_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_reference_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
