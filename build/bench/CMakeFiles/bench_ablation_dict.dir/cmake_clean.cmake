file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dict.dir/ablation_dict.cpp.o"
  "CMakeFiles/bench_ablation_dict.dir/ablation_dict.cpp.o.d"
  "bench_ablation_dict"
  "bench_ablation_dict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
