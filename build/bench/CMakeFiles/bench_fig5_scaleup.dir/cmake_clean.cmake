file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_scaleup.dir/fig5_scaleup.cpp.o"
  "CMakeFiles/bench_fig5_scaleup.dir/fig5_scaleup.cpp.o.d"
  "bench_fig5_scaleup"
  "bench_fig5_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
