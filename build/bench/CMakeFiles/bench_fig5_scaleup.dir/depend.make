# Empty dependencies file for bench_fig5_scaleup.
# This may be replaced when dependencies are built.
