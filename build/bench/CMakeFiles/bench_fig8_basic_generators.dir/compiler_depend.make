# Empty compiler generated dependencies file for bench_fig8_basic_generators.
# This may be replaced when dependencies are built.
