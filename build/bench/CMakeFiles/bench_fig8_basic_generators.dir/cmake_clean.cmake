file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_basic_generators.dir/fig8_basic_generators.cpp.o"
  "CMakeFiles/bench_fig8_basic_generators.dir/fig8_basic_generators.cpp.o.d"
  "bench_fig8_basic_generators"
  "bench_fig8_basic_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_basic_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
