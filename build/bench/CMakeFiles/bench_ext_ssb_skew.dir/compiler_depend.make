# Empty compiler generated dependencies file for bench_ext_ssb_skew.
# This may be replaced when dependencies are built.
