file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ssb_skew.dir/ext_ssb_skew.cpp.o"
  "CMakeFiles/bench_ext_ssb_skew.dir/ext_ssb_skew.cpp.o.d"
  "bench_ext_ssb_skew"
  "bench_ext_ssb_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ssb_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
