file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_formats.dir/ext_formats.cpp.o"
  "CMakeFiles/bench_ext_formats.dir/ext_formats.cpp.o.d"
  "bench_ext_formats"
  "bench_ext_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
