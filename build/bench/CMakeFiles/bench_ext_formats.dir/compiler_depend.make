# Empty compiler generated dependencies file for bench_ext_formats.
# This may be replaced when dependencies are built.
