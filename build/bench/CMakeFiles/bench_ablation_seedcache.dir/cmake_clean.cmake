file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_seedcache.dir/ablation_seedcache.cpp.o"
  "CMakeFiles/bench_ablation_seedcache.dir/ablation_seedcache.cpp.o.d"
  "bench_ablation_seedcache"
  "bench_ablation_seedcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seedcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
