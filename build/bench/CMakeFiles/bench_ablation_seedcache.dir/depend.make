# Empty dependencies file for bench_ablation_seedcache.
# This may be replaced when dependencies are built.
