file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dbgen_vs_pdgf.dir/fig6_dbgen_vs_pdgf.cpp.o"
  "CMakeFiles/bench_fig6_dbgen_vs_pdgf.dir/fig6_dbgen_vs_pdgf.cpp.o.d"
  "bench_fig6_dbgen_vs_pdgf"
  "bench_fig6_dbgen_vs_pdgf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dbgen_vs_pdgf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
