# Empty dependencies file for bench_fig6_dbgen_vs_pdgf.
# This may be replaced when dependencies are built.
