file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_complex_generators.dir/fig9_complex_generators.cpp.o"
  "CMakeFiles/bench_fig9_complex_generators.dir/fig9_complex_generators.cpp.o.d"
  "bench_fig9_complex_generators"
  "bench_fig9_complex_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_complex_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
