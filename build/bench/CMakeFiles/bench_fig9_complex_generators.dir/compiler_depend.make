# Empty compiler generated dependencies file for bench_fig9_complex_generators.
# This may be replaced when dependencies are built.
