file(REMOVE_RECURSE
  "CMakeFiles/tests_workloads.dir/workloads/bigbench_test.cc.o"
  "CMakeFiles/tests_workloads.dir/workloads/bigbench_test.cc.o.d"
  "CMakeFiles/tests_workloads.dir/workloads/dbgen_test.cc.o"
  "CMakeFiles/tests_workloads.dir/workloads/dbgen_test.cc.o.d"
  "CMakeFiles/tests_workloads.dir/workloads/imdb_test.cc.o"
  "CMakeFiles/tests_workloads.dir/workloads/imdb_test.cc.o.d"
  "CMakeFiles/tests_workloads.dir/workloads/ssb_test.cc.o"
  "CMakeFiles/tests_workloads.dir/workloads/ssb_test.cc.o.d"
  "CMakeFiles/tests_workloads.dir/workloads/tpch_test.cc.o"
  "CMakeFiles/tests_workloads.dir/workloads/tpch_test.cc.o.d"
  "tests_workloads"
  "tests_workloads.pdb"
  "tests_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
