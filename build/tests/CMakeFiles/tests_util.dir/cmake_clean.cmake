file(REMOVE_RECURSE
  "CMakeFiles/tests_util.dir/util/expression_test.cc.o"
  "CMakeFiles/tests_util.dir/util/expression_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util/files_test.cc.o"
  "CMakeFiles/tests_util.dir/util/files_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util/fuzz_test.cc.o"
  "CMakeFiles/tests_util.dir/util/fuzz_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util/rng_test.cc.o"
  "CMakeFiles/tests_util.dir/util/rng_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util/strings_test.cc.o"
  "CMakeFiles/tests_util.dir/util/strings_test.cc.o.d"
  "CMakeFiles/tests_util.dir/util/xml_test.cc.o"
  "CMakeFiles/tests_util.dir/util/xml_test.cc.o.d"
  "tests_util"
  "tests_util.pdb"
  "tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
