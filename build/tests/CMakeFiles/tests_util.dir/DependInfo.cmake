
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/expression_test.cc" "tests/CMakeFiles/tests_util.dir/util/expression_test.cc.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/expression_test.cc.o.d"
  "/root/repo/tests/util/files_test.cc" "tests/CMakeFiles/tests_util.dir/util/files_test.cc.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/files_test.cc.o.d"
  "/root/repo/tests/util/fuzz_test.cc" "tests/CMakeFiles/tests_util.dir/util/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/fuzz_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/tests_util.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/strings_test.cc" "tests/CMakeFiles/tests_util.dir/util/strings_test.cc.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/strings_test.cc.o.d"
  "/root/repo/tests/util/xml_test.cc" "tests/CMakeFiles/tests_util.dir/util/xml_test.cc.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/xml_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsynthpp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_dbsynth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
