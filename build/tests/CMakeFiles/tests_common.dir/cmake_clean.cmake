file(REMOVE_RECURSE
  "CMakeFiles/tests_common.dir/common/date_test.cc.o"
  "CMakeFiles/tests_common.dir/common/date_test.cc.o.d"
  "CMakeFiles/tests_common.dir/common/status_test.cc.o"
  "CMakeFiles/tests_common.dir/common/status_test.cc.o.d"
  "CMakeFiles/tests_common.dir/common/types_test.cc.o"
  "CMakeFiles/tests_common.dir/common/types_test.cc.o.d"
  "CMakeFiles/tests_common.dir/common/value_order_property_test.cc.o"
  "CMakeFiles/tests_common.dir/common/value_order_property_test.cc.o.d"
  "CMakeFiles/tests_common.dir/common/value_test.cc.o"
  "CMakeFiles/tests_common.dir/common/value_test.cc.o.d"
  "tests_common"
  "tests_common.pdb"
  "tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
