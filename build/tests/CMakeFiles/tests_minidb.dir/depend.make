# Empty dependencies file for tests_minidb.
# This may be replaced when dependencies are built.
