file(REMOVE_RECURSE
  "CMakeFiles/tests_minidb.dir/minidb/csv_dialect_test.cc.o"
  "CMakeFiles/tests_minidb.dir/minidb/csv_dialect_test.cc.o.d"
  "CMakeFiles/tests_minidb.dir/minidb/csv_test.cc.o"
  "CMakeFiles/tests_minidb.dir/minidb/csv_test.cc.o.d"
  "CMakeFiles/tests_minidb.dir/minidb/persistence_test.cc.o"
  "CMakeFiles/tests_minidb.dir/minidb/persistence_test.cc.o.d"
  "CMakeFiles/tests_minidb.dir/minidb/sql_parser_test.cc.o"
  "CMakeFiles/tests_minidb.dir/minidb/sql_parser_test.cc.o.d"
  "CMakeFiles/tests_minidb.dir/minidb/sql_test.cc.o"
  "CMakeFiles/tests_minidb.dir/minidb/sql_test.cc.o.d"
  "CMakeFiles/tests_minidb.dir/minidb/stats_test.cc.o"
  "CMakeFiles/tests_minidb.dir/minidb/stats_test.cc.o.d"
  "CMakeFiles/tests_minidb.dir/minidb/table_test.cc.o"
  "CMakeFiles/tests_minidb.dir/minidb/table_test.cc.o.d"
  "tests_minidb"
  "tests_minidb.pdb"
  "tests_minidb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
