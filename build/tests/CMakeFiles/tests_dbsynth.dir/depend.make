# Empty dependencies file for tests_dbsynth.
# This may be replaced when dependencies are built.
