
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dbsynth/connection_test.cc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/connection_test.cc.o" "gcc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/connection_test.cc.o.d"
  "/root/repo/tests/dbsynth/histogram_test.cc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/histogram_test.cc.o" "gcc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/histogram_test.cc.o.d"
  "/root/repo/tests/dbsynth/model_builder_test.cc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/model_builder_test.cc.o" "gcc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/model_builder_test.cc.o.d"
  "/root/repo/tests/dbsynth/profiler_test.cc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/profiler_test.cc.o" "gcc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/profiler_test.cc.o.d"
  "/root/repo/tests/dbsynth/query_generator_test.cc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/query_generator_test.cc.o" "gcc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/query_generator_test.cc.o.d"
  "/root/repo/tests/dbsynth/rules_test.cc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/rules_test.cc.o" "gcc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/rules_test.cc.o.d"
  "/root/repo/tests/dbsynth/synthesizer_test.cc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/synthesizer_test.cc.o" "gcc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/synthesizer_test.cc.o.d"
  "/root/repo/tests/dbsynth/translator_test.cc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/translator_test.cc.o" "gcc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/translator_test.cc.o.d"
  "/root/repo/tests/dbsynth/virtual_query_test.cc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/virtual_query_test.cc.o" "gcc" "tests/CMakeFiles/tests_dbsynth.dir/dbsynth/virtual_query_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsynthpp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_dbsynth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
