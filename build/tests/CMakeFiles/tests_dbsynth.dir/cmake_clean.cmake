file(REMOVE_RECURSE
  "CMakeFiles/tests_dbsynth.dir/dbsynth/connection_test.cc.o"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/connection_test.cc.o.d"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/histogram_test.cc.o"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/histogram_test.cc.o.d"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/model_builder_test.cc.o"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/model_builder_test.cc.o.d"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/profiler_test.cc.o"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/profiler_test.cc.o.d"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/query_generator_test.cc.o"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/query_generator_test.cc.o.d"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/rules_test.cc.o"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/rules_test.cc.o.d"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/synthesizer_test.cc.o"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/synthesizer_test.cc.o.d"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/translator_test.cc.o"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/translator_test.cc.o.d"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/virtual_query_test.cc.o"
  "CMakeFiles/tests_dbsynth.dir/dbsynth/virtual_query_test.cc.o.d"
  "tests_dbsynth"
  "tests_dbsynth.pdb"
  "tests_dbsynth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_dbsynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
