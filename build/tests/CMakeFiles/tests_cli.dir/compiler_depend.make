# Empty compiler generated dependencies file for tests_cli.
# This may be replaced when dependencies are built.
