file(REMOVE_RECURSE
  "CMakeFiles/tests_cli.dir/cli/cli_test.cc.o"
  "CMakeFiles/tests_cli.dir/cli/cli_test.cc.o.d"
  "tests_cli"
  "tests_cli.pdb"
  "tests_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
