
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/config_test.cc" "tests/CMakeFiles/tests_core.dir/core/config_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/config_test.cc.o.d"
  "/root/repo/tests/core/dictionary_test.cc" "tests/CMakeFiles/tests_core.dir/core/dictionary_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/dictionary_test.cc.o.d"
  "/root/repo/tests/core/engine_stress_test.cc" "tests/CMakeFiles/tests_core.dir/core/engine_stress_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/engine_stress_test.cc.o.d"
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/tests_core.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/engine_test.cc.o.d"
  "/root/repo/tests/core/generators_test.cc" "tests/CMakeFiles/tests_core.dir/core/generators_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/generators_test.cc.o.d"
  "/root/repo/tests/core/markov_fidelity_test.cc" "tests/CMakeFiles/tests_core.dir/core/markov_fidelity_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/markov_fidelity_test.cc.o.d"
  "/root/repo/tests/core/markov_test.cc" "tests/CMakeFiles/tests_core.dir/core/markov_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/markov_test.cc.o.d"
  "/root/repo/tests/core/output_test.cc" "tests/CMakeFiles/tests_core.dir/core/output_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/output_test.cc.o.d"
  "/root/repo/tests/core/progress_test.cc" "tests/CMakeFiles/tests_core.dir/core/progress_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/progress_test.cc.o.d"
  "/root/repo/tests/core/reference_test.cc" "tests/CMakeFiles/tests_core.dir/core/reference_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/reference_test.cc.o.d"
  "/root/repo/tests/core/session_test.cc" "tests/CMakeFiles/tests_core.dir/core/session_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/session_test.cc.o.d"
  "/root/repo/tests/core/simcluster_test.cc" "tests/CMakeFiles/tests_core.dir/core/simcluster_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/simcluster_test.cc.o.d"
  "/root/repo/tests/core/update_test.cc" "tests/CMakeFiles/tests_core.dir/core/update_test.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/update_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsynthpp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_dbsynth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbsynthpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
