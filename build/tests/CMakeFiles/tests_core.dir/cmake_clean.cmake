file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/config_test.cc.o"
  "CMakeFiles/tests_core.dir/core/config_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/dictionary_test.cc.o"
  "CMakeFiles/tests_core.dir/core/dictionary_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/engine_stress_test.cc.o"
  "CMakeFiles/tests_core.dir/core/engine_stress_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/engine_test.cc.o"
  "CMakeFiles/tests_core.dir/core/engine_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/generators_test.cc.o"
  "CMakeFiles/tests_core.dir/core/generators_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/markov_fidelity_test.cc.o"
  "CMakeFiles/tests_core.dir/core/markov_fidelity_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/markov_test.cc.o"
  "CMakeFiles/tests_core.dir/core/markov_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/output_test.cc.o"
  "CMakeFiles/tests_core.dir/core/output_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/progress_test.cc.o"
  "CMakeFiles/tests_core.dir/core/progress_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/reference_test.cc.o"
  "CMakeFiles/tests_core.dir/core/reference_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/session_test.cc.o"
  "CMakeFiles/tests_core.dir/core/session_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/simcluster_test.cc.o"
  "CMakeFiles/tests_core.dir/core/simcluster_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/update_test.cc.o"
  "CMakeFiles/tests_core.dir/core/update_test.cc.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
