# Empty dependencies file for dbsynthpp.
# This may be replaced when dependencies are built.
