file(REMOVE_RECURSE
  "CMakeFiles/dbsynthpp.dir/dbsynthpp_main.cc.o"
  "CMakeFiles/dbsynthpp.dir/dbsynthpp_main.cc.o.d"
  "dbsynthpp"
  "dbsynthpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsynthpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
