# Empty dependencies file for synthesize_database.
# This may be replaced when dependencies are built.
