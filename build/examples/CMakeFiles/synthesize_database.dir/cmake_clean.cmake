file(REMOVE_RECURSE
  "CMakeFiles/synthesize_database.dir/synthesize_database.cpp.o"
  "CMakeFiles/synthesize_database.dir/synthesize_database.cpp.o.d"
  "synthesize_database"
  "synthesize_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
