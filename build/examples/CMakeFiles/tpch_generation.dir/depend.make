# Empty dependencies file for tpch_generation.
# This may be replaced when dependencies are built.
