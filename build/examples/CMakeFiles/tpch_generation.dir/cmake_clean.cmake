file(REMOVE_RECURSE
  "CMakeFiles/tpch_generation.dir/tpch_generation.cpp.o"
  "CMakeFiles/tpch_generation.dir/tpch_generation.cpp.o.d"
  "tpch_generation"
  "tpch_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
