file(REMOVE_RECURSE
  "CMakeFiles/markov_text_demo.dir/markov_text_demo.cpp.o"
  "CMakeFiles/markov_text_demo.dir/markov_text_demo.cpp.o.d"
  "markov_text_demo"
  "markov_text_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_text_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
