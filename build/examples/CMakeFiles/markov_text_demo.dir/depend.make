# Empty dependencies file for markov_text_demo.
# This may be replaced when dependencies are built.
