# Empty compiler generated dependencies file for model_editing.
# This may be replaced when dependencies are built.
