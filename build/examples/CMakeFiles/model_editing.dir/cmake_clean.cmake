file(REMOVE_RECURSE
  "CMakeFiles/model_editing.dir/model_editing.cpp.o"
  "CMakeFiles/model_editing.dir/model_editing.cpp.o.d"
  "model_editing"
  "model_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
