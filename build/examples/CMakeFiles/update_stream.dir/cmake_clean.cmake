file(REMOVE_RECURSE
  "CMakeFiles/update_stream.dir/update_stream.cpp.o"
  "CMakeFiles/update_stream.dir/update_stream.cpp.o.d"
  "update_stream"
  "update_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
