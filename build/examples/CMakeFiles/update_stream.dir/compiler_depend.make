# Empty compiler generated dependencies file for update_stream.
# This may be replaced when dependencies are built.
