// Demo workflow 3 (paper §5): "how the model can be changed or adapted" —
// serialize the TPC-H configuration, edit it (change the scale factor,
// add a column, refine a correlation), reload and regenerate.
//
//   ./model_editing

#include <cstdio>

#include "core/config.h"
#include "core/generators/generators.h"
#include "core/session.h"
#include "util/files.h"
#include "workloads/tpch.h"

int main() {
  // Start from the generated TPC-H configuration.
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto dir = pdgf::MakeTempDir("model_edit_");
  if (!dir.ok()) return 1;
  std::string original_path = pdgf::JoinPath(*dir, "tpch.xml");
  if (!pdgf::SaveSchemaToFile(schema, original_path).ok()) return 1;
  std::printf("wrote the auto-generated TPC-H model to %s\n",
              original_path.c_str());

  // Edit 1 (API): shrink the scale factor property.
  schema.SetProperty("SF", "0.001");

  // Edit 2 (API): add a column that did not exist in the original model —
  // a loyalty tier correlated with nothing yet.
  {
    pdgf::TableDef* customer = schema.FindTable("customer");
    pdgf::FieldDef tier;
    tier.name = "c_loyalty_tier";
    tier.type = pdgf::DataType::kVarchar;
    std::vector<pdgf::ConditionalGenerator::Branch> branches;
    branches.push_back({0.7, pdgf::GeneratorPtr(new pdgf::StaticValueGenerator(
                                 pdgf::Value::String("BRONZE"), true))});
    branches.push_back({0.25, pdgf::GeneratorPtr(new pdgf::StaticValueGenerator(
                                  pdgf::Value::String("SILVER"), true))});
    branches.push_back({0.05, pdgf::GeneratorPtr(new pdgf::StaticValueGenerator(
                                  pdgf::Value::String("GOLD"), true))});
    tier.generator = pdgf::GeneratorPtr(
        new pdgf::ConditionalGenerator(std::move(branches)));
    customer->fields.push_back(std::move(tier));
  }

  // Edit 3 (XML): the same change, round-tripped through the file format —
  // what a user editing the XML by hand would do.
  std::string edited_path = pdgf::JoinPath(*dir, "tpch_edited.xml");
  if (!pdgf::SaveSchemaToFile(schema, edited_path).ok()) return 1;
  auto reloaded = pdgf::LoadSchemaFromFile(edited_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("edited model reloaded from %s\n", edited_path.c_str());

  // Compare the original and the edited configuration.
  auto original = pdgf::LoadSchemaFromFile(original_path);
  if (!original.ok()) return 1;
  std::printf("\ndifferences vs the original configuration:\n");
  std::printf("  SF property     : %s -> %s\n",
              original->FindProperty("SF")->expression.c_str(),
              reloaded->FindProperty("SF")->expression.c_str());
  std::printf("  customer fields : %zu -> %zu (added c_loyalty_tier)\n",
              original->FindTable("customer")->fields.size(),
              reloaded->FindTable("customer")->fields.size());

  // Regenerate with the edited model and show the new column in action.
  auto session = pdgf::GenerationSession::Create(&*reloaded);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  int customer = reloaded->FindTableIndex("customer");
  std::printf("\ncustomer rows (%llu total at SF 0.001):\n",
              static_cast<unsigned long long>(
                  (*session)->TableRows(customer)));
  for (const auto& row : (*session)->Preview(customer, 5)) {
    std::printf("  %s | %s | %s | %s\n", row[0].c_str(), row[1].c_str(),
                row[6].c_str(), row.back().c_str());
  }

  // Tier distribution check over the whole table.
  int gold = 0, silver = 0, bronze = 0;
  std::vector<pdgf::Value> row;
  uint64_t rows = (*session)->TableRows(customer);
  int tier_field = reloaded->FindTable("customer")->FindFieldIndex(
      "c_loyalty_tier");
  pdgf::Value value;
  for (uint64_t r = 0; r < rows; ++r) {
    (*session)->GenerateField(customer, tier_field, r, 0, &value);
    const std::string& tier = value.string_value();
    if (tier == "GOLD") ++gold;
    if (tier == "SILVER") ++silver;
    if (tier == "BRONZE") ++bronze;
  }
  std::printf("\nloyalty tiers over %llu customers: BRONZE %d, SILVER %d, "
              "GOLD %d\n",
              static_cast<unsigned long long>(rows), bronze, silver, gold);
  return 0;
}
