// Value-level synthesis (the paper's differentiator, §3/§6): train a
// Markov chain on free text, inspect the model, and generate new,
// statistically similar text — deterministically per seed.
//
//   ./markov_text_demo [seed]

#include <cstdio>
#include <cstdlib>

#include "core/text/builtin_dictionaries.h"
#include "core/text/markov_model.h"
#include "util/files.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // Train on the builtin comment corpus (a stand-in for sampling the
  // l_comment column of a real TPC-H database).
  pdgf::MarkovModel model;
  model.AddSample(pdgf::BuiltinCommentCorpus());
  model.Finalize();

  std::printf("trained Markov model:\n");
  std::printf("  vocabulary   : %zu words\n", model.word_count());
  std::printf("  start states : %zu\n", model.start_state_count());
  std::printf("  transitions  : %zu bigrams\n", model.transition_count());
  std::printf(
      "  (the paper's TPC-H comment model: ~1500 words, 95 start states)\n");

  std::printf("\nsome learned transition probabilities:\n");
  for (auto [a, b] : {std::pair<const char*, const char*>{"the", "quick"},
                      {"regular", "deposits"},
                      {"deposits", "haggle"},
                      {"requests", "wake"}}) {
    std::printf("  P(%s | %s) = %.3f\n", b, a,
                model.TransitionProbability(a, b));
  }

  std::printf("\ngenerated comments (seed %llu):\n",
              static_cast<unsigned long long>(seed));
  pdgf::Xorshift64 rng(seed);
  for (int i = 0; i < 8; ++i) {
    std::printf("  %s\n", model.Generate(&rng, 4, 12).c_str());
  }

  // Serialize, reload, regenerate: identical output (this is what the
  // "markov\l_comment_markovSamples.bin" artifacts of Listing 1 contain).
  auto dir = pdgf::MakeTempDir("markov_demo_");
  if (!dir.ok()) return 1;
  std::string path = pdgf::JoinPath(*dir, "comment_markovSamples.bin");
  if (!model.Save(path).ok()) return 1;
  auto loaded = pdgf::MarkovModel::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  pdgf::Xorshift64 rng_a(seed);
  pdgf::Xorshift64 rng_b(seed);
  bool identical = true;
  for (int i = 0; i < 100; ++i) {
    if (model.Generate(&rng_a, 4, 12) != loaded->Generate(&rng_b, 4, 12)) {
      identical = false;
    }
  }
  auto file_size = pdgf::FileSize(path);
  std::printf("\nmodel file: %s (%lld bytes), reload produces %s output\n",
              path.c_str(),
              file_size.ok() ? static_cast<long long>(*file_size) : -1,
              identical ? "identical" : "DIFFERENT (bug!)");
  return identical ? 0 : 1;
}
