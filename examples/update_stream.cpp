// Update generation with PDGF's update black box (Figure 1's "Update
// RNG" level; the machinery behind TPC-DI's incremental loads, which the
// paper's reference [6] describes): abstract time units in which a
// deterministic pseudo-random subset of rows changes its mutable fields.
//
//   ./update_stream [rows] [updates]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "core/generators/generators.h"
#include "core/session.h"
#include "dbsynth/virtual_table.h"

namespace {

pdgf::SchemaDef BuildAccountsModel(const char* rows, const char* updates) {
  pdgf::SchemaDef schema;
  schema.name = "bank";
  schema.seed = 20140101;
  schema.SetProperty("accounts", rows);

  pdgf::TableDef table;
  table.name = "accounts";
  table.size_expression = "${accounts}";
  table.updates_expression = updates;
  table.update_fraction = 0.15;  // 15% of accounts move per time unit

  pdgf::FieldDef id;
  id.name = "account_id";
  id.type = pdgf::DataType::kBigInt;
  id.primary = true;
  id.generator = pdgf::GeneratorPtr(new pdgf::IdGenerator());
  table.fields.push_back(std::move(id));

  pdgf::FieldDef owner;
  owner.name = "owner";
  owner.type = pdgf::DataType::kVarchar;
  owner.generator = pdgf::GeneratorPtr(new pdgf::NameGenerator());
  // Owners never change across updates.
  table.fields.push_back(std::move(owner));

  pdgf::FieldDef balance;
  balance.name = "balance";
  balance.type = pdgf::DataType::kDecimal;
  balance.scale = 2;
  balance.generator =
      pdgf::GeneratorPtr(new pdgf::DoubleGenerator(-500, 25000, 2));
  balance.mutable_across_updates = true;  // redrawn per time unit
  table.fields.push_back(std::move(balance));

  schema.tables.push_back(std::move(table));
  return schema;
}

}  // namespace

int main(int argc, char** argv) {
  const char* rows = argc > 1 ? argv[1] : "1000";
  const char* updates = argc > 2 ? argv[2] : "4";
  pdgf::SchemaDef schema = BuildAccountsModel(rows, updates);
  auto session = pdgf::GenerationSession::Create(&schema);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  uint64_t update_count = (*session)->TableUpdates(0);
  std::printf("base data: %llu accounts, %llu abstract time units\n\n",
              static_cast<unsigned long long>((*session)->TableRows(0)),
              static_cast<unsigned long long>(update_count));

  // Show one account across time: key and owner stay fixed, the balance
  // changes only in the time units that select this row. Pick an account
  // that actually changes at least twice so the trace is interesting.
  uint64_t shown = 0;
  for (uint64_t candidate = 0; candidate < (*session)->TableRows(0);
       ++candidate) {
    int selections = 0;
    for (uint64_t update = 1; update < update_count; ++update) {
      if ((*session)->RowChangesInUpdate(0, candidate, update)) {
        ++selections;
      }
    }
    if (selections >= 2) {
      shown = candidate;
      break;
    }
  }
  std::printf("account %llu over time:\n",
              static_cast<unsigned long long>(shown + 1));
  std::vector<pdgf::Value> row;
  for (uint64_t update = 0; update < update_count; ++update) {
    (*session)->GenerateRow(0, shown, update, &row);
    bool selected = (*session)->RowChangesInUpdate(0, shown, update);
    std::printf("  t=%llu: id=%s owner=\"%s\" balance=%s%s\n",
                static_cast<unsigned long long>(update),
                row[0].ToText().c_str(), row[1].ToText().c_str(),
                row[2].ToText().c_str(),
                update == 0 ? "  (base load)"
                            : (selected ? "  <- changed this unit" : ""));
  }

  // The per-unit update stream: only selected rows, CSV-formatted.
  pdgf::CsvFormatter formatter;
  std::printf("\nupdate stream sizes (15%% expected per unit):\n");
  for (uint64_t update = 1; update < update_count; ++update) {
    auto stream = GenerateTableToString(**session, 0, formatter, update);
    if (!stream.ok()) return 1;
    size_t lines = 0;
    for (char c : *stream) {
      if (c == '\n') ++lines;
    }
    std::printf("  t=%llu: %zu changed rows\n",
                static_cast<unsigned long long>(update), lines);
  }

  // Queries run directly against any time unit's stream, no files needed.
  auto unchanged = dbsynth::ExecuteQueryWithoutData(
      **session, "SELECT COUNT(*), AVG(balance) FROM accounts", 0);
  auto stream_query = dbsynth::ExecuteQueryWithoutData(
      **session, "SELECT COUNT(*), AVG(balance) FROM accounts", 2);
  if (unchanged.ok() && stream_query.ok()) {
    std::printf("\nbase data    : %s", unchanged->ToString().c_str());
    std::printf("update t=2   : %s", stream_query->ToString().c_str());
  }
  return 0;
}
