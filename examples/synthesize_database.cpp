// Demo workflow 2 (paper §5): point DBSynth at a "real" database (the
// IMDb-style demo instance), extract a generation model, regenerate
// synthetic data into a target database, and verify the quality by
// running the same SQL queries on both.
//
//   ./synthesize_database [scale] [sample_fraction]
//
// scale: source database size multiplier (default 1.0).
// sample_fraction: share of rows sampled for dictionaries/Markov chains
// (default 1.0 = full scan; try 0.01 for the fast, less accurate mode).

#include <cstdio>
#include <cstdlib>

#include "core/config.h"
#include "dbsynth/synthesizer.h"
#include "minidb/sql.h"
#include "minidb/stats.h"
#include "workloads/imdb.h"

namespace {

void RunOnBoth(minidb::Database* source, minidb::Database* target,
               const char* sql) {
  std::printf("query: %s\n", sql);
  for (auto [label, db] : {std::pair<const char*, minidb::Database*>(
                               "original ", source),
                           {"synthetic", target}}) {
    auto result = minidb::ExecuteSql(db, sql);
    if (!result.ok()) {
      std::printf("  %s: error %s\n", label,
                  result.status().ToString().c_str());
      continue;
    }
    std::string text = result->ToString();
    // Indent the result block.
    std::printf("  -- %s --\n", label);
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      std::printf("  %.*s\n", static_cast<int>(end - start),
                  text.c_str() + start);
      start = end + 1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  double fraction = argc > 2 ? std::atof(argv[2]) : 1.0;

  // 1. The "customer database" DBSynth knows nothing about.
  minidb::Database source;
  auto populated = workloads::PopulateImdbDatabase(&source, scale);
  if (!populated.ok()) {
    std::fprintf(stderr, "%s\n", populated.ToString().c_str());
    return 1;
  }
  std::printf("source database:\n");
  for (const std::string& table : source.TableNames()) {
    std::printf("  %-14s %8zu rows\n", table.c_str(),
                source.GetTable(table)->row_count());
  }

  // 2. Extract + build + generate + load (Figure 3 end to end).
  dbsynth::MiniDbConnection connection(&source);
  minidb::Database target;
  dbsynth::SynthesizeOptions options;
  if (fraction >= 1.0) {
    options.extraction.sampling.strategy =
        dbsynth::SamplingSpec::Strategy::kFull;
  } else {
    options.extraction.sampling.strategy =
        dbsynth::SamplingSpec::Strategy::kFraction;
    options.extraction.sampling.fraction = fraction;
  }
  auto report = dbsynth::SynthesizeDatabase(&connection, &target, options);
  if (!report.ok()) {
    std::fprintf(stderr, "synthesize: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\nextraction timings (paper §4's final experiment):\n");
  std::printf("  schema info : %8.1f ms\n",
              report->timings.schema_seconds * 1e3);
  std::printf("  table sizes : %8.1f ms\n",
              report->timings.sizes_seconds * 1e3);
  std::printf("  null probs  : %8.1f ms\n",
              report->timings.null_seconds * 1e3);
  std::printf("  min/max     : %8.1f ms\n",
              report->timings.minmax_seconds * 1e3);
  std::printf("  sampling    : %8.1f ms\n",
              report->timings.sampling_seconds * 1e3);
  std::printf("  generate+load: %7.1f ms (%llu rows)\n",
              report->generate_seconds * 1e3,
              static_cast<unsigned long long>(report->rows_loaded));

  std::printf("\ngenerator decisions (rule-based system, §3):\n");
  for (const dbsynth::ModelDecision& decision : report->decisions) {
    std::printf("  %-12s %-18s %-28s %s\n", decision.table.c_str(),
                decision.column.c_str(), decision.generator.c_str(),
                decision.reason.c_str());
  }

  // 3. The generated model is an ordinary PDGF config.
  std::string xml = pdgf::SchemaToXml(report->schema);
  std::printf("\ngenerated model XML (first 800 chars):\n%.800s...\n",
              xml.c_str());

  // 4. Quality check: same SQL on both databases (§5, Figure 12).
  std::printf("\nverification queries:\n");
  RunOnBoth(&source, &target,
            "SELECT COUNT(*), MIN(production_year), MAX(production_year) "
            "FROM title");
  RunOnBoth(&source, &target,
            "SELECT genre, COUNT(*) FROM title GROUP BY genre "
            "ORDER BY genre LIMIT 5");
  RunOnBoth(&source, &target,
            "SELECT role, COUNT(*) FROM cast_info GROUP BY role "
            "ORDER BY role");
  RunOnBoth(&source, &target,
            "SELECT COUNT(*), AVG(rating) FROM movie_rating");
  RunOnBoth(&source, &target,
            "SELECT COUNT(*) FROM title WHERE plot IS NULL");
  return 0;
}
