// Demo workflow 1 (paper §5): generate an industry-standard TPC-H data
// set with PDGF, in multiple output formats, while monitoring progress
// (the library-level equivalent of the Mission Control screens).
//
//   ./tpch_generation [SF] [output_dir]
//
// Defaults: SF = 0.01 (~10 MB), output under a temp directory.

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "core/session.h"
#include "util/files.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  const char* scale_factor = argc > 1 ? argv[1] : "0.01";
  std::string output_dir;
  if (argc > 2) {
    output_dir = argv[2];
  } else {
    auto dir = pdgf::MakeTempDir("tpch_");
    if (!dir.ok()) {
      std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
      return 1;
    }
    output_dir = *dir;
  }

  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> names;
  std::vector<uint64_t> rows;
  uint64_t total_rows = 0;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    names.push_back(schema.tables[t].name);
    rows.push_back((*session)->TableRows(static_cast<int>(t)));
    total_rows += rows.back();
  }
  std::printf("TPC-H SF %s: %llu rows over %zu tables -> %s\n",
              scale_factor, static_cast<unsigned long long>(total_rows),
              schema.tables.size(), output_dir.c_str());

  // CSV with live progress snapshots from a monitoring thread.
  {
    pdgf::ProgressTracker progress(names, rows);
    std::atomic<bool> done{false};
    std::thread monitor([&progress, &done] {
      while (!done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        auto snapshot = progress.TakeSnapshot();
        if (snapshot.fraction < 1.0) {
          std::printf("  [monitor] %5.1f%%  %.1f MB/s\n",
                      snapshot.fraction * 100.0,
                      snapshot.megabytes_per_second);
        }
      }
    });
    pdgf::CsvFormatter csv;
    pdgf::GenerationOptions options;
    options.worker_count = 2;
    options.work_package_rows = 20000;
    auto stats = GenerateToDirectory(**session, csv,
                                     pdgf::JoinPath(output_dir, "csv"),
                                     options, &progress);
    done.store(true);
    monitor.join();
    if (!stats.ok()) {
      std::fprintf(stderr, "csv: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("csv : %7.1f MB in %6.2f s  (%.1f MB/s)\n",
                static_cast<double>(stats->bytes) / (1024 * 1024),
                stats->seconds, stats->megabytes_per_second);
    std::printf("%s",
                pdgf::ProgressTracker::Format(progress.TakeSnapshot())
                    .c_str());
  }

  // The same data set "altered by changing the output format" (§5):
  // JSON and XML renderings of identical values.
  for (const char* format : {"json", "xml"}) {
    auto formatter = pdgf::MakeFormatter(format);
    if (!formatter.ok()) return 1;
    pdgf::GenerationOptions options;
    options.worker_count = 2;
    auto stats =
        GenerateToDirectory(**session, **formatter,
                            pdgf::JoinPath(output_dir, format), options);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s: %s\n", format,
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-4s: %7.1f MB in %6.2f s  (%.1f MB/s)\n", format,
                static_cast<double>(stats->bytes) / (1024 * 1024),
                stats->seconds, stats->megabytes_per_second);
  }

  // Show a couple of generated lineitem rows.
  std::printf("\nlineitem sample:\n");
  int lineitem = schema.FindTableIndex("lineitem");
  for (const auto& row : (*session)->Preview(lineitem, 3)) {
    std::string joined;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) joined += "|";
      joined += row[i];
    }
    std::printf("  %s\n", joined.c_str());
  }
  return 0;
}
