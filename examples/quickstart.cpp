// Quickstart: define a small generation model in code, preview it, and
// generate CSV — the minimal end-to-end use of the PDGF core library.
//
//   ./quickstart [rows]
//
// Builds a "users" table with an id, a semantic name, an email, a signup
// date, a Zipf-skewed plan column and nullable free-text feedback, then
// prints a preview and writes users.csv to a temp directory.

#include <cstdio>
#include <cstdlib>

#include "core/config.h"
#include "core/engine.h"
#include "core/generators/generators.h"
#include "core/session.h"
#include "core/text/builtin_dictionaries.h"
#include "util/files.h"

namespace {

using pdgf::DataType;
using pdgf::FieldDef;
using pdgf::GeneratorPtr;
using pdgf::SchemaDef;
using pdgf::TableDef;

FieldDef MakeField(const char* name, DataType type, GeneratorPtr generator,
                   bool primary = false) {
  FieldDef field;
  field.name = name;
  field.type = type;
  field.primary = primary;
  field.generator = std::move(generator);
  return field;
}

SchemaDef BuildModel() {
  SchemaDef schema;
  schema.name = "quickstart";
  schema.seed = 20150531;
  schema.SetProperty("users", "1000");

  TableDef users;
  users.name = "users";
  users.size_expression = "${users}";
  users.fields.push_back(MakeField("user_id", DataType::kBigInt,
                                   GeneratorPtr(new pdgf::IdGenerator()),
                                   /*primary=*/true));
  users.fields.push_back(MakeField("name", DataType::kVarchar,
                                   GeneratorPtr(new pdgf::NameGenerator())));
  users.fields.push_back(MakeField("email", DataType::kVarchar,
                                   GeneratorPtr(new pdgf::EmailGenerator())));
  users.fields.push_back(MakeField(
      "signup", DataType::kDate,
      GeneratorPtr(new pdgf::DateGenerator(pdgf::Date::FromCivil(2012, 1, 1),
                                           pdgf::Date::FromCivil(2014, 12,
                                                                 31)))));
  // A skewed categorical column: most users are on the free plan.
  auto plans = std::make_shared<pdgf::Dictionary>();
  plans->Add("free", 70);
  plans->Add("pro", 25);
  plans->Add("enterprise", 5);
  plans->Finalize();
  users.fields.push_back(MakeField(
      "plan", DataType::kVarchar,
      GeneratorPtr(new pdgf::DictListGenerator(
          std::move(plans), "", pdgf::DictListGenerator::Method::kCumulative,
          0))));
  // 60% of users never left feedback.
  auto markov =
      pdgf::MarkovChainGenerator::FromCorpus(pdgf::BuiltinCommentCorpus(),
                                             3, 12);
  users.fields.push_back(
      MakeField("feedback", DataType::kVarchar,
                GeneratorPtr(new pdgf::NullGenerator(
                    0.6, std::move(*markov)))));
  schema.tables.push_back(std::move(users));
  return schema;
}

}  // namespace

int main(int argc, char** argv) {
  SchemaDef schema = BuildModel();
  if (argc > 1) {
    schema.SetProperty("users", argv[1]);
  }

  auto session = pdgf::GenerationSession::Create(&schema);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  std::printf("model '%s', %llu rows in table 'users'\n\n",
              schema.name.c_str(),
              static_cast<unsigned long long>((*session)->TableRows(0)));

  // Preview: instant samples of the data (paper §4, "preview generation").
  std::printf("preview (first 5 rows):\n");
  for (const auto& row : (*session)->Preview(0, 5)) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%s", i == 0 ? "  " : " | ", row[i].c_str());
    }
    std::printf("\n");
  }

  // Generate to CSV files.
  auto dir = pdgf::MakeTempDir("quickstart_");
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }
  pdgf::CsvFormatter formatter;
  pdgf::GenerationOptions options;
  options.worker_count = 2;
  auto stats = GenerateToDirectory(**session, formatter, *dir, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %llu rows (%.1f KB) to %s/users.csv in %.3f s\n",
              static_cast<unsigned long long>(stats->rows),
              static_cast<double>(stats->bytes) / 1024.0, dir->c_str(),
              stats->seconds);

  // The model serializes to the Listing-1 XML format.
  std::printf("\nmodel XML (excerpt):\n");
  std::string xml = pdgf::SchemaToXml(schema);
  std::printf("%.600s...\n", xml.c_str());
  return 0;
}
