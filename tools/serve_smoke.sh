#!/usr/bin/env bash
# Tier-1 smoke test for the serve daemon (docs/serve.md): boot it on an
# ephemeral port, run one real job through the `request` verb, scrape
# the metrics endpoint, then shut it down in-band and require a clean
# exit. A hard wall-clock timeout guards every step — a wedged daemon
# must fail the tier, not hang it.
#
#   tools/serve_smoke.sh [path/to/dbsynthpp]

set -euo pipefail

BIN="${1:-./build/tools/dbsynthpp}"
TIMEOUT_BIN="${TIMEOUT_BIN:-timeout}"
STEP_TIMEOUT="${SERVE_SMOKE_TIMEOUT:-60}"

if [[ ! -x "$BIN" ]]; then
  echo "serve_smoke: binary not found: $BIN" >&2
  exit 2
fi

WORK_DIR="$(mktemp -d /tmp/serve_smoke.XXXXXX)"
PORT_FILE="$WORK_DIR/port"
SERVE_LOG="$WORK_DIR/serve.log"
SERVE_PID=""

cleanup() {
  # Belt and braces: the happy path ends the daemon via the in-band
  # shutdown op; this only fires if a step failed mid-way.
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

req() { "$TIMEOUT_BIN" "$STEP_TIMEOUT" "$BIN" request --port-file "$PORT_FILE" "$@"; }

# The daemon blocks until shutdown, so the whole process lives under one
# watchdog; --port-file publishes the ephemeral port once it listens.
"$TIMEOUT_BIN" $((STEP_TIMEOUT * 3)) \
  "$BIN" serve --port 0 --port-file "$PORT_FILE" --max-jobs 2 \
  >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" ]] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve_smoke: daemon died during startup" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "serve_smoke: daemon never published a port" >&2; exit 1; }

# The port file appearing only proves bind(); poll a ping until the
# accept loop actually answers so the first real request cannot race
# daemon startup.
READY=0
for _ in $(seq 1 50); do
  if req --op ping 2>/dev/null | grep -q '"status":"ok"'; then
    READY=1
    break
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve_smoke: daemon died before answering ping" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
[[ "$READY" == 1 ]] || { echo "serve_smoke: daemon never answered ping" >&2; exit 1; }
echo "serve_smoke: daemon up on port $(cat "$PORT_FILE")"

JOB_OUT="$(req --model tpch --sf 0.001 --digests)"
echo "$JOB_OUT" | grep -q "rows" || { echo "serve_smoke: job produced no rows: $JOB_OUT" >&2; exit 1; }
echo "$JOB_OUT" | grep -q "lineitem" || { echo "serve_smoke: job digests missing lineitem" >&2; exit 1; }

METRICS_OUT="$(req --op metrics)"
echo "$METRICS_OUT" | grep -q '"jobs_completed":1' \
  || { echo "serve_smoke: metrics did not record the job: $METRICS_OUT" >&2; exit 1; }
echo "$METRICS_OUT" | grep -q '"schema_version":2' \
  || { echo "serve_smoke: metrics missing embedded schema-v2 report" >&2; exit 1; }

req --op shutdown >/dev/null
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
SERVE_PID=""
if [[ "$SERVE_RC" != 0 ]]; then
  echo "serve_smoke: daemon exited with $SERVE_RC" >&2
  cat "$SERVE_LOG" >&2
  exit 1
fi
grep -q "shut down cleanly" "$SERVE_LOG" \
  || { echo "serve_smoke: daemon did not report a clean shutdown" >&2; exit 1; }

echo "serve_smoke: ok (job + metrics + clean shutdown)"
