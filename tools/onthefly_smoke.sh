#!/usr/bin/env bash
# Tier-1 smoke test for on-the-fly generation (docs/architecture.md §12):
#
#   1. virtual-table SELECTs against a synthetic SF-1000 TPC-H — a PK
#      point query (pushdown: ~1 row generated out of 1.5 B) and a lazy
#      LIMIT scan — must answer in well under a second each,
#   2. the CDC update stream must replay bit-identically: two
#      `dbsynthpp stream` runs of the same invocation print the same
#      digest,
#   3. `verify --stream-golden` must match the committed stream digest
#      fixture (tests/integration/golden/tpch_sf0.01.streams).
#
#   tools/onthefly_smoke.sh [path/to/dbsynthpp]

set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-./build/tools/dbsynthpp}"
TIMEOUT_BIN="${TIMEOUT_BIN:-timeout}"
STEP_TIMEOUT="${ONTHEFLY_SMOKE_TIMEOUT:-60}"

if [[ ! -x "$BIN" ]]; then
  echo "onthefly_smoke: binary not found: $BIN" >&2
  exit 2
fi

run() { "$TIMEOUT_BIN" "$STEP_TIMEOUT" "$BIN" "$@"; }

# 1a. PK pushdown point query: the key inverts to one row ordinal, so
# only that row is ever generated. The 60 s watchdog is the real assert
# — a full scan of 1.5 B orders rows would blow straight through it.
POINT="$(run query --model tpch --sf 1000 \
  "SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderkey = 5999999")"
echo "$POINT" | grep -q "5999999" \
  || { echo "onthefly_smoke: point query missed its row: $POINT" >&2; exit 1; }

# 1b. Lazy LIMIT over virtual SF-1000 lineitem (composite PK, so no
# pushdown): the scan must still stop after the three rows it returns.
LIMITED="$(run query --model tpch --sf 1000 \
  "SELECT l_orderkey, l_quantity FROM lineitem LIMIT 3")"
[[ "$(echo "$LIMITED" | wc -l)" -eq 4 ]] \
  || { echo "onthefly_smoke: LIMIT 3 returned: $LIMITED" >&2; exit 1; }

# 2. Replay determinism: same invocation, twice, identical stream digest.
STREAM_ARGS=(stream --model tpch --sf 0.001 --table orders --snapshot)
FIRST="$(run "${STREAM_ARGS[@]}" --out /dev/null)"
SECOND="$(run "${STREAM_ARGS[@]}" --out /dev/null)"
[[ -n "$FIRST" && "$FIRST" == "$SECOND" ]] \
  || { echo "onthefly_smoke: stream replay diverged:" >&2
       echo "  first:  $FIRST" >&2
       echo "  second: $SECOND" >&2; exit 1; }
echo "$FIRST" | grep -q "digest=" \
  || { echo "onthefly_smoke: stream printed no digest: $FIRST" >&2; exit 1; }

# 3. Committed golden stream digests still hold.
run verify --model tpch --sf 0.01 --quick \
  --stream-golden tests/integration/golden/tpch_sf0.01.streams >/dev/null \
  || { echo "onthefly_smoke: stream golden fixture mismatch" >&2; exit 1; }

echo "onthefly_smoke: ok (virtual SELECT + stream replay + golden digests)"
