#!/usr/bin/env bash
# Full check: tier-1 (default build) plus the sanitizer tiers.
#
#   tools/check.sh            # tier-1 + ASan/UBSan + TSan
#   tools/check.sh --tier1    # tier-1 only
#   tools/check.sh --asan     # ASan/UBSan tier only
#   tools/check.sh --tsan     # TSan tier only
#
# The sanitizer tiers build into build-asan/ and build-tsan/ via the
# CMakePresets.json presets; the TSan tier additionally hammers the
# concurrency-heavy suites (engine, digest parity, cluster) since that
# is where data races would live.

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TIER1=1
RUN_ASAN=1
RUN_TSAN=1
case "${1:-}" in
  --tier1) RUN_ASAN=0; RUN_TSAN=0 ;;
  --asan)  RUN_TIER1=0; RUN_TSAN=0 ;;
  --tsan)  RUN_TIER1=0; RUN_ASAN=0 ;;
  "") ;;
  *) echo "usage: tools/check.sh [--tier1|--asan|--tsan]" >&2; exit 2 ;;
esac

run() { echo "+ $*" >&2; "$@"; }

# Per-test watchdog: the writer-stage/backpressure suites assert
# deadlock-freedom by *completing*, so a hung test must fail loudly
# instead of stalling the whole tier.
CTEST_TIMEOUT=${CTEST_TIMEOUT:-120}

if [[ "$RUN_TIER1" == 1 ]]; then
  echo "=== tier-1: default build + full test suite ==="
  run cmake --preset default
  run cmake --build --preset default -j "$(nproc)"
  run ctest --preset default --timeout "$CTEST_TIMEOUT"
  echo "=== tier-1: SIMD parity suite again under DBSYNTHPP_SIMD=off ==="
  # The full ctest pass above ran with native dispatch (AVX2/NEON where
  # available); re-running the kernel/pipeline parity suites with the
  # scalar fallback forced keeps that path from rotting.
  run env DBSYNTHPP_SIMD=off ctest --preset default \
    --timeout "$CTEST_TIMEOUT" -R "Simd|Batch|FormatRoundtrip"
  echo "=== tier-1: scheduler/engine parity again under DBSYNTHPP_NUMA=off ==="
  # The full pass above ran with the env default (placement on); forcing
  # placement off re-proves the historical no-pinning path still produces
  # identical bytes and keeps it from rotting (the DBSYNTHPP_SIMD=off
  # discipline applied to NUMA).
  run env DBSYNTHPP_NUMA=off ctest --preset default \
    --timeout "$CTEST_TIMEOUT" -R "Schedul|Numa|Topology|Engine"
  echo "=== tier-1: metrics overhead gate (fail if metrics-on costs >10%) ==="
  # Best-of-5 engine runs with metrics off vs. on at a tiny scale factor;
  # exits non-zero if the delta exceeds METRICS_GATE_PCT (default 10).
  run ./build/bench/bench_fig5_scaleup 0.005 --overhead-gate
  echo "=== tier-1: batch pipeline gate (fail if batch regresses below scalar) ==="
  # Interleaved best-of-5 scalar/batch pairs on identical work,
  # self-calibrated against this commit's own scalar pipeline; exits
  # non-zero unless batch rows/s >= BATCH_GATE_X (default 1.0) x scalar.
  run ./build/bench/bench_fig5_scaleup 0.005 --batch-gate
  echo "=== tier-1: async writer gate (fail if async < 1.1x inline on slow sink) ==="
  # Inline vs. async writer stage against a throttled sink, plus the
  # default-scenario regression guard (WRITER_GATE_X / WRITER_REGRESSION_PCT).
  run ./build/bench/bench_fig5_scaleup 0.005 --writer-gate
  echo "=== tier-1: NUMA placement gate (self-calibrating: parity single-node, >=1.1x multi-node) ==="
  # Interleaved numa=off/on pairs under the kNuma scheduler with digest
  # equality asserted; a single-node host proves placement is free, a
  # multi-node host must show the NUMA_GATE_X win (default 1.1x).
  run ./build/bench/bench_fig5_scaleup 0.005 --numa-gate
  echo "=== tier-1: bulk-load gate (paged bulk >= row-at-a-time ingest) ==="
  # Self-calibrated: the same process loads TPC-H through the paged
  # engine both ways and the bulk fast path must not lose to WAL-logged
  # row inserts (LOAD_GATE_X, default 1.0). Also cross-checks that every
  # engine/path combination digests to identical table bytes.
  run ./build/bench/bench_load 0.01 --quick --load-gate
  echo "=== tier-1: serve daemon smoke (job + metrics + clean shutdown) ==="
  run tools/serve_smoke.sh ./build/tools/dbsynthpp
  echo "=== tier-1: on-the-fly smoke (virtual SELECT + stream replay) ==="
  run tools/onthefly_smoke.sh ./build/tools/dbsynthpp
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "=== sanitizer tier: ASan + UBSan ==="
  run cmake --preset asan-ubsan
  run cmake --build --preset asan-ubsan -j "$(nproc)"
  run ctest --preset asan-ubsan --timeout "$CTEST_TIMEOUT"
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "=== sanitizer tier: TSan (concurrency suites) ==="
  run cmake --preset tsan
  run cmake --build --preset tsan -j "$(nproc)" --target \
    tests_core tests_integration tests_cli tests_serve tests_minidb \
    tests_minidb_storage
  run ctest --preset tsan --timeout "$CTEST_TIMEOUT" -R \
    "Engine|Digest|SimCluster|Progress|Determinism|Cli|Metrics|NodeShare|Batch|Schedul|Writer|Serve|Storage|Btree|Wal|Numa|Topology|Cursor|Stream|VirtualCatalog"
fi

echo "all requested tiers passed"
