// The dbsynthpp command-line tool; all logic lives in src/cli (testable).

#include <cstdio>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string output;
  int exit_code = dbsynthpp_cli::RunCli(args, &output);
  std::fputs(output.c_str(), exit_code == 0 ? stdout : stderr);
  return exit_code;
}
