// The dbsynthpp command-line tool; all logic lives in src/cli (testable).

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  // Daemon hardening (`dbsynthpp serve`): a client that disconnects
  // mid-stream must surface as an EPIPE write error the engine aborts
  // on, not a process-killing SIGPIPE. The serve library itself uses
  // MSG_NOSIGNAL per send; this covers any remaining stdio writes to a
  // closed pipe (e.g. `dbsynthpp ... | head`).
  std::signal(SIGPIPE, SIG_IGN);

  std::vector<std::string> args(argv + 1, argv + argc);
  std::string output;
  int exit_code = dbsynthpp_cli::RunCli(args, &output);
  std::fputs(output.c_str(), exit_code == 0 ? stdout : stderr);
  return exit_code;
}
