// Section 4, final experiment — DBSynth metadata extraction timing.
//
// Paper: against a TPC-H SF-1 PostgreSQL database, schema information
// takes 600 ms, table sizes 1.3 s, NULL probabilities 600 ms, min/max
// constraints 10 s, and Markov sampling 0.8 s (0.001% sample) to 200 s
// (100%) — i.e. interactive response except for the scan-heavy phases.
//
// Here the TPC-H data lives in MiniDB (substitution S11) at a scaled-down
// SF; phases are timed separately and sampling is swept across fractions.
// The reproduced shape: schema/sizes/NULL phases are fast and
// size-insensitive; min/max and full sampling dominate and grow with the
// scanned volume.
//
//   ./bench_sec4_metadata_extraction [SF]    (default 0.002)

#include <cstdio>

#include "core/session.h"
#include "dbsynth/profiler.h"
#include "dbsynth/schema_translator.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  const char* scale_factor = argc > 1 ? argv[1] : "0.002";

  // Build the "source database": TPC-H loaded into MiniDB.
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  minidb::Database db;
  if (!dbsynth::CreateTargetSchema(schema, &db).ok()) return 1;
  auto loaded = dbsynth::BulkLoadGeneratedData(**session, &db);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Section 4 metadata-extraction experiment: TPC-H SF %s in "
              "MiniDB (%llu rows)\n\n",
              scale_factor, static_cast<unsigned long long>(*loaded));

  dbsynth::MiniDbConnection connection(&db);

  // Metadata phases (no sampling).
  {
    dbsynth::ExtractionOptions options;
    options.sample_data = false;
    auto profile = ProfileDatabase(&connection, options);
    if (!profile.ok()) return 1;
    std::printf("%-22s %10.1f ms   (paper: 600 ms)\n", "schema information",
                profile->timings.schema_seconds * 1e3);
    std::printf("%-22s %10.1f ms   (paper: 1.3 s)\n", "table sizes",
                profile->timings.sizes_seconds * 1e3);
    std::printf("%-22s %10.1f ms   (paper: 600 ms)\n", "NULL probabilities",
                profile->timings.null_seconds * 1e3);
    std::printf("%-22s %10.1f ms   (paper: 10 s)\n", "min/max constraints",
                profile->timings.minmax_seconds * 1e3);
  }

  // Sampling sweep for the Markov-chain data.
  std::printf("\nMarkov sampling (paper: 0.8 s at 0.001%% .. 200 s at "
              "100%%):\n");
  std::printf("%12s %12s\n", "sample", "duration");
  for (double fraction : {0.0001, 0.001, 0.01, 0.1, 1.0}) {
    dbsynth::ExtractionOptions options;
    options.extract_sizes = false;
    options.extract_null_probabilities = false;
    options.extract_min_max = false;
    if (fraction >= 1.0) {
      options.sampling.strategy = dbsynth::SamplingSpec::Strategy::kFull;
    } else {
      options.sampling.strategy =
          dbsynth::SamplingSpec::Strategy::kFraction;
      options.sampling.fraction = fraction;
    }
    auto profile = ProfileDatabase(&connection, options);
    if (!profile.ok()) return 1;
    std::printf("%11.3f%% %10.1f ms\n", fraction * 100.0,
                profile->timings.sampling_seconds * 1e3);
  }
  std::printf("\nshape check: metadata phases are interactive; scan-bound "
              "phases (min/max, full sampling) dominate\n");
  return 0;
}
