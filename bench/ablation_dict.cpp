// Ablation — dictionary sampling backend (DESIGN.md design choice).
//
// DictListGenerator defaults to binary search over a cumulative weight
// table; Walker's alias method trades two RNG draws for O(1) lookup, and
// uniform sampling is the floor. This bench justifies the default across
// dictionary sizes.

#include <benchmark/benchmark.h>

#include "core/text/dictionary.h"
#include "util/rng.h"

namespace {

pdgf::Dictionary MakeDictionary(int64_t entries) {
  pdgf::Dictionary dictionary;
  pdgf::Xorshift64 rng(11);
  for (int64_t i = 0; i < entries; ++i) {
    dictionary.Add("entry_" + std::to_string(i),
                   1.0 + rng.NextDouble() * 9.0);
  }
  dictionary.Finalize();
  return dictionary;
}

void BM_CumulativeBinarySearch(benchmark::State& state) {
  pdgf::Dictionary dictionary = MakeDictionary(state.range(0));
  pdgf::Xorshift64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dictionary.SampleIndex(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CumulativeBinarySearch)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_AliasMethod(benchmark::State& state) {
  pdgf::Dictionary dictionary = MakeDictionary(state.range(0));
  pdgf::Xorshift64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dictionary.SampleAliasIndex(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasMethod)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Uniform(benchmark::State& state) {
  pdgf::Dictionary dictionary = MakeDictionary(state.range(0));
  pdgf::Xorshift64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dictionary.value(rng.NextBounded(dictionary.size())).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Uniform)->Arg(16)->Arg(65536);

// Zipf overlay used for skewed references.
void BM_ZipfOverlay(benchmark::State& state) {
  pdgf::ZipfDistribution zipf(static_cast<uint64_t>(state.range(0)), 0.9);
  pdgf::Xorshift64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfOverlay)->Arg(4096)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
