// Section 4, in-text claim — recomputing dependent values beats
// re-reading previously generated data.
//
// Paper: "While generating complex values might cost up to 2000 ns, doing
// a single random read will cost ca. 10 ms on disk, which means the
// computational approach is 5000 times faster than an approach that reads
// previously generated data to solve dependencies."
//
// This harness measures the actual cost of a computed reference (PDGF's
// DefaultReferenceGenerator recomputing the referenced field), measures a
// buffered random file read as the best case for a read-based resolver,
// and reports the ratio against both that measurement and the paper's
// 10 ms cold-disk seek model (our container has no raw disk to unmount
// caches on — DESIGN.md substitution).

#include <cstdio>
#include <cstdlib>

#include "core/session.h"
#include "util/files.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "workloads/tpch.h"

int main() {
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", "0.01"}});
  if (!session.ok()) return 1;
  int lineitem = schema.FindTableIndex("lineitem");
  int partkey_field =
      schema.tables[static_cast<size_t>(lineitem)].FindFieldIndex(
          "l_partkey");

  // 1. Computed reference: l_partkey recomputes partsupp.ps_partkey.
  const int kIterations = 200000;
  pdgf::Value value;
  pdgf::Stopwatch stopwatch;
  for (int i = 0; i < kIterations; ++i) {
    (*session)->GenerateField(lineitem, partkey_field,
                              static_cast<uint64_t>(i), 0, &value);
  }
  double compute_ns = stopwatch.ElapsedNanos() /
                      static_cast<double>(kIterations);

  // 2. Read-based resolution, best case: random reads from a previously
  // generated 16 MB file sitting in the page cache.
  auto dir = pdgf::MakeTempDir("compute_vs_read_");
  if (!dir.ok()) return 1;
  std::string path = pdgf::JoinPath(*dir, "generated.dat");
  {
    std::string blob(16 << 20, 'x');
    if (!pdgf::WriteStringToFile(path, blob).ok()) return 1;
  }
  double read_ns = 0;
  {
    FILE* file = fopen(path.c_str(), "rb");
    if (file == nullptr) return 1;
    setvbuf(file, nullptr, _IONBF, 0);  // defeat stdio buffering at least
    pdgf::Xorshift64 rng(5);
    char buffer[16];
    const int kReads = 20000;
    pdgf::Stopwatch read_watch;
    for (int i = 0; i < kReads; ++i) {
      long offset = static_cast<long>(rng.NextBounded((16 << 20) - 16));
      fseek(file, offset, SEEK_SET);
      size_t got = fread(buffer, 1, sizeof(buffer), file);
      if (got == 0) return 1;
    }
    read_ns = read_watch.ElapsedNanos() / static_cast<double>(kReads);
    fclose(file);
  }

  const double kPaperDiskSeekNs = 10e6;  // 10 ms, the paper's figure
  std::printf("Section 4: computed references vs re-reading generated "
              "data\n\n");
  std::printf("computed reference (recompute ps_partkey): %8.0f ns/value\n",
              compute_ns);
  std::printf("random read, page-cache best case        : %8.0f ns/read "
              "(x%.0f slower)\n",
              read_ns, read_ns / compute_ns);
  std::printf("random read, paper's 10 ms disk seek     : %8.0f ns/read "
              "(x%.0f slower; paper: ~5000x)\n",
              kPaperDiskSeekNs, kPaperDiskSeekNs / compute_ns);
  std::printf("\nshape check: computation wins even against a warm page "
              "cache, and by orders of magnitude against disk\n");
  return 0;
}
