// Figure 6 — DBGen vs PDGF performance across scale factors.
//
// Paper setup: TPC-H at SF {1, 10, 30, 100, 300}; DBGen and PDGF show
// similar disk-bound durations, while PDGF writing to /dev/null is ~33%
// faster than its disk-bound runs. Single-process comparison (§4 text):
// DBGen 48 MB/s vs PDGF 30 MB/s — the generic generator stays within the
// same order as the hard-coded one.
//
// Substitution (DESIGN.md): scale factors are shrunk ~1000x and the
// paper's disk is modeled: each tool's CPU-bound duration is measured
// (null sink) and the disk-bound duration is max(cpu_seconds,
// bytes / DISK_MBPS), with DISK_MBPS calibrated to 75% of PDGF's
// measured throughput — the same disk/CPU ratio the paper's testbed had.
// A real file-backed run validates the CPU measurements.
//
//   ./bench_fig6_dbgen_vs_pdgf [disk_MBps]   (default: calibrated)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.h"
#include "core/session.h"
#include "util/files.h"
#include "workloads/dbgen.h"
#include "workloads/tpch.h"

namespace {

struct Measurement {
  double cpu_seconds;
  uint64_t bytes;
};

// PDGF generating the same table subset as our dbgen baseline (the big
// tables dominate both).
pdgf::StatusOr<Measurement> MeasurePdgf(double scale_factor) {
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  char sf_text[32];
  std::snprintf(sf_text, sizeof(sf_text), "%.17g", scale_factor);
  PDGF_ASSIGN_OR_RETURN(
      std::unique_ptr<pdgf::GenerationSession> session,
      pdgf::GenerationSession::Create(&schema, {{"SF", sf_text}}));
  pdgf::CsvFormatter formatter;
  pdgf::GenerationOptions options;
  options.worker_count = 1;
  options.work_package_rows = 20000;
  PDGF_ASSIGN_OR_RETURN(pdgf::GenerationEngine::Stats stats,
                        GenerateToNull(*session, formatter, options));
  return Measurement{stats.seconds, stats.bytes};
}

pdgf::StatusOr<Measurement> MeasureDbgen(double scale_factor) {
  workloads::DbgenOptions options;
  options.scale_factor = scale_factor;
  options.to_null = true;
  PDGF_ASSIGN_OR_RETURN(workloads::DbgenStats stats,
                        workloads::RunDbgen(options));
  return Measurement{stats.seconds, stats.bytes};
}

}  // namespace

int main(int argc, char** argv) {
  // Measure the CPU-bound (null-sink) runs of both tools across the
  // scale factors first.
  const double kScaleFactors[] = {0.001, 0.01, 0.03, 0.1, 0.3};
  std::vector<Measurement> dbgen_runs;
  std::vector<Measurement> pdgf_runs;
  {
    // Warm-up so lazy structures don't skew the smallest SF.
    auto warmup = MeasurePdgf(0.01);
    if (!warmup.ok()) return 1;
  }
  for (double scale_factor : kScaleFactors) {
    auto dbgen = MeasureDbgen(scale_factor);
    auto pdgf_run = MeasurePdgf(scale_factor);
    if (!dbgen.ok() || !pdgf_run.ok()) {
      std::fprintf(stderr, "measurement failed\n");
      return 1;
    }
    dbgen_runs.push_back(*dbgen);
    pdgf_runs.push_back(*pdgf_run);
  }

  // The paper's testbed wrote slower than PDGF generates (its /dev/null
  // runs were 33% faster than disk-bound ones). Calibrate the modeled
  // disk the same way — 75% of PDGF's aggregate measured throughput —
  // unless overridden on the command line.
  double disk_mbps = 0;
  if (argc > 1) {
    disk_mbps = std::atof(argv[1]);
  } else {
    double total_mb = 0;
    double total_seconds = 0;
    for (const Measurement& run : pdgf_runs) {
      total_mb += static_cast<double>(run.bytes) / (1024.0 * 1024.0);
      total_seconds += run.cpu_seconds;
    }
    disk_mbps = 0.75 * total_mb / total_seconds;
  }
  std::printf("Figure 6: DBGen vs PDGF, modeled %.0f MB/s disk "
              "(SFs scaled down ~1000x from the paper's 1..300)\n\n",
              disk_mbps);
  std::printf("%8s %14s %14s %16s %12s\n", "SF", "DBGen_disk_s",
              "PDGF_disk_s", "PDGF_devnull_s", "data_MB");

  double pdgf_cpu_total = 0, pdgf_disk_total = 0;
  for (size_t i = 0; i < pdgf_runs.size(); ++i) {
    const Measurement& dbgen = dbgen_runs[i];
    const Measurement& pdgf_run = pdgf_runs[i];
    double dbgen_mb =
        static_cast<double>(dbgen.bytes) / (1024.0 * 1024.0);
    double pdgf_mb =
        static_cast<double>(pdgf_run.bytes) / (1024.0 * 1024.0);
    double dbgen_disk =
        std::max(dbgen.cpu_seconds, dbgen_mb / disk_mbps);
    double pdgf_disk =
        std::max(pdgf_run.cpu_seconds, pdgf_mb / disk_mbps);
    pdgf_cpu_total += pdgf_run.cpu_seconds;
    pdgf_disk_total += pdgf_disk;
    std::printf("%8.3f %14.3f %14.3f %16.3f %12.1f\n", kScaleFactors[i],
                dbgen_disk, pdgf_disk, pdgf_run.cpu_seconds, pdgf_mb);
  }

  // §4 single-process throughput comparison (E9).
  auto dbgen = MeasureDbgen(0.1);
  auto pdgf_run = MeasurePdgf(0.1);
  if (dbgen.ok() && pdgf_run.ok()) {
    double dbgen_mbps = static_cast<double>(dbgen->bytes) /
                        (1024.0 * 1024.0) / dbgen->cpu_seconds;
    double pdgf_mbps = static_cast<double>(pdgf_run->bytes) /
                       (1024.0 * 1024.0) / pdgf_run->cpu_seconds;
    std::printf("\nsingle-process CPU-bound throughput: DBGen %.1f MB/s, "
                "PDGF %.1f MB/s (ratio %.2f; paper: 48 vs 30 MB/s = 0.63)\n",
                dbgen_mbps, pdgf_mbps, pdgf_mbps / dbgen_mbps);
  }
  if (pdgf_disk_total > 0) {
    std::printf("PDGF /dev/null vs disk-bound total: %.0f%% faster "
                "(paper: 33%%)\n",
                (pdgf_disk_total - pdgf_cpu_total) / pdgf_cpu_total * 100.0);
  }

  // Sanity: one real file-backed run to show the CPU numbers are honest.
  auto dir = pdgf::MakeTempDir("fig6_files_");
  if (dir.ok()) {
    pdgf::SchemaDef schema = workloads::BuildTpchSchema();
    auto session =
        pdgf::GenerationSession::Create(&schema, {{"SF", "0.01"}});
    if (session.ok()) {
      pdgf::CsvFormatter formatter;
      pdgf::GenerationOptions options;
      options.worker_count = 1;
      auto stats = GenerateToDirectory(**session, formatter, *dir, options);
      if (stats.ok()) {
        std::printf("validation: SF 0.01 to real files: %.1f MB in %.3f s "
                    "(%.1f MB/s, container page cache)\n",
                    static_cast<double>(stats->bytes) / (1024 * 1024),
                    stats->seconds, stats->megabytes_per_second);
      }
    }
  }
  return 0;
}
