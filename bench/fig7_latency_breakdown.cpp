// Figure 7 — generation latency broken into its subparts.
//
// Paper: single-threaded per-value cost. A static value (no cache) shows
// the pure system overhead (~50 ns in the paper's Java); a NULL generator
// at 100% NULL adds the wrapper's own cost (~+50 ns); at 0% NULL the
// sub-generator's base time and its value generation are added (~+100 ns),
// for ~200 ns per value in total. C++ absolute numbers are lower; the
// *ordering and additivity* are the reproduced result.

#include <benchmark/benchmark.h>

#include "core/generators/generators.h"

namespace {

using pdgf::DeriveSeed;
using pdgf::GeneratorContext;
using pdgf::Value;

// Pure harness overhead: seed derivation + context construction, the
// fixed per-field cost every measurement below includes.
void BM_ContextSetupOnly(benchmark::State& state) {
  uint64_t row = 0;
  for (auto _ : state) {
    GeneratorContext context(nullptr, 0, row, 0, DeriveSeed(1234, row));
    benchmark::DoNotOptimize(context.field_seed());
    ++row;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContextSetupOnly);

// "Static Value (no Cache)": the generator re-materializes its constant
// every call — base time of a generator invocation.
void BM_StaticValue_NoCache(benchmark::State& state) {
  pdgf::StaticValueGenerator generator(Value::Int(42), /*cache=*/false);
  Value value;
  uint64_t row = 0;
  for (auto _ : state) {
    GeneratorContext context(nullptr, 0, row, 0, DeriveSeed(1234, row));
    generator.Generate(&context, &value);
    benchmark::DoNotOptimize(value);
    ++row;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StaticValue_NoCache);

// Cached static value, for reference (the paper's caching claim).
void BM_StaticValue_Cached(benchmark::State& state) {
  pdgf::StaticValueGenerator generator(Value::Int(42), /*cache=*/true);
  Value value;
  uint64_t row = 0;
  for (auto _ : state) {
    GeneratorContext context(nullptr, 0, row, 0, DeriveSeed(1234, row));
    generator.Generate(&context, &value);
    benchmark::DoNotOptimize(value);
    ++row;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StaticValue_Cached);

// "Null Generator (100% NULL)": wrapper cost on top of the base — the
// inner static generator never runs.
void BM_NullGenerator_100pct(benchmark::State& state) {
  pdgf::NullGenerator generator(
      1.0, pdgf::GeneratorPtr(
               new pdgf::StaticValueGenerator(Value::Int(42), false)));
  Value value;
  uint64_t row = 0;
  for (auto _ : state) {
    GeneratorContext context(nullptr, 0, row, 0, DeriveSeed(1234, row));
    generator.Generate(&context, &value);
    benchmark::DoNotOptimize(value);
    ++row;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NullGenerator_100pct);

// "Null Generator (0% NULL)": wrapper + sub-generator base time + the
// sub-generator's value generation — the full stack of Figure 7.
void BM_NullGenerator_0pct(benchmark::State& state) {
  pdgf::NullGenerator generator(
      0.0, pdgf::GeneratorPtr(
               new pdgf::StaticValueGenerator(Value::Int(42), false)));
  Value value;
  uint64_t row = 0;
  for (auto _ : state) {
    GeneratorContext context(nullptr, 0, row, 0, DeriveSeed(1234, row));
    generator.Generate(&context, &value);
    benchmark::DoNotOptimize(value);
    ++row;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NullGenerator_0pct);

}  // namespace

BENCHMARK_MAIN();
