// Figure 9 — complex / formatted generator latency.
//
// Paper: formatting is the most expensive part of value generation — a
// formatted date ("11/30/2014") costs ~1200 ns (vs ~300 unformatted), and
// a Sequential meta generator concatenating 2 doubles and a long is
// comparable; the most complex values stay under ~2000 ns, and lazy
// formatting ensures the cost is paid once. Reproduced shape: formatted
// and composite generators cost a multiple of the basic ones; NULL(100%)
// is the cheapest; meta-generator stacking adds ~one base-time per level.

#include <benchmark/benchmark.h>

#include "core/generators/generators.h"
#include "core/output/formatter.h"
#include "core/text/builtin_dictionaries.h"

namespace {

using pdgf::DeriveSeed;
using pdgf::GeneratorContext;
using pdgf::GeneratorPtr;
using pdgf::Value;

void RunGenerator(benchmark::State& state, const pdgf::Generator& generator) {
  Value value;
  uint64_t row = 0;
  for (auto _ : state) {
    GeneratorContext context(nullptr, 0, row, 0, DeriveSeed(7, row));
    generator.Generate(&context, &value);
    benchmark::DoNotOptimize(value);
    ++row;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DictList(benchmark::State& state) {
  pdgf::DictListGenerator generator(
      pdgf::FindBuiltinDictionary("first_names"), "first_names",
      pdgf::DictListGenerator::Method::kCumulative, 0);
  RunGenerator(state, generator);
}
BENCHMARK(BM_DictList);

void BM_Null_100pct(benchmark::State& state) {
  pdgf::NullGenerator generator(
      1.0, GeneratorPtr(new pdgf::DictListGenerator(
               pdgf::FindBuiltinDictionary("first_names"), "first_names",
               pdgf::DictListGenerator::Method::kCumulative, 0)));
  RunGenerator(state, generator);
}
BENCHMARK(BM_Null_100pct);

void BM_Null_0pct(benchmark::State& state) {
  pdgf::NullGenerator generator(
      0.0, GeneratorPtr(new pdgf::DictListGenerator(
               pdgf::FindBuiltinDictionary("first_names"), "first_names",
               pdgf::DictListGenerator::Method::kCumulative, 0)));
  RunGenerator(state, generator);
}
BENCHMARK(BM_Null_0pct);

// Eagerly formatted date: "%m/%d/%Y" rendered inside the generator.
void BM_Date_Formatted(benchmark::State& state) {
  pdgf::DateGenerator generator(pdgf::Date::FromCivil(1992, 1, 1),
                                pdgf::Date::FromCivil(1998, 12, 31),
                                "%m/%d/%Y");
  RunGenerator(state, generator);
}
BENCHMARK(BM_Date_Formatted);

// "Sequential (2 double + long)": a formula-like composite value.
void BM_Sequential_2Double_Long(benchmark::State& state) {
  std::vector<GeneratorPtr> children;
  children.push_back(GeneratorPtr(new pdgf::DoubleGenerator(0, 1000)));
  children.push_back(GeneratorPtr(new pdgf::DoubleGenerator(0, 1000)));
  children.push_back(GeneratorPtr(new pdgf::LongGenerator(0, 1000000)));
  pdgf::SequentialGenerator generator(std::move(children), "-", "", "");
  RunGenerator(state, generator);
}
BENCHMARK(BM_Sequential_2Double_Long);

// "Double (4 places)": fixed-point formatting baked into the value.
void BM_Double_4Places(benchmark::State& state) {
  pdgf::DoubleGenerator generator(0.0, 1000.0, 4);
  RunGenerator(state, generator);
}
BENCHMARK(BM_Double_4Places);

// Markov text (the heaviest value family: 1-10 words of chain walking).
void BM_MarkovComment(benchmark::State& state) {
  auto generator = pdgf::MarkovChainGenerator::FromCorpus(
      pdgf::BuiltinCommentCorpus(), 1, 10);
  RunGenerator(state, **generator);
}
BENCHMARK(BM_MarkovComment);

// Lazy formatting at the output layer: generate a DATE value and render
// it through the CSV formatter — the "format once" cost PDGF amortizes.
void BM_Date_LazyFormatViaCsv(benchmark::State& state) {
  pdgf::DateGenerator generator(pdgf::Date::FromCivil(1992, 1, 1),
                                pdgf::Date::FromCivil(1998, 12, 31));
  pdgf::CsvFormatter formatter;
  pdgf::TableDef table;
  table.name = "t";
  pdgf::FieldDef field;
  field.name = "d";
  table.fields.push_back(std::move(field));
  std::vector<Value> row(1);
  std::string buffer;
  uint64_t row_id = 0;
  for (auto _ : state) {
    GeneratorContext context(nullptr, 0, row_id, 0, DeriveSeed(7, row_id));
    generator.Generate(&context, &row[0]);
    buffer.clear();
    formatter.AppendRow(table, row, &buffer);
    benchmark::DoNotOptimize(buffer);
    ++row_id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Date_LazyFormatViaCsv);

}  // namespace

BENCHMARK_MAIN();
