// Figure 8 — basic (unformatted) generator latency.
//
// Paper: picking values from dictionaries, computing random numbers and
// generating random strings all land in a narrow 100-500 ns band; ~200 ns
// is "a good ballpark number for simple values that are not formatted".
// The reproduced result is that every basic generator sits in one small
// band, with strings at the top of it.

#include <benchmark/benchmark.h>

#include "core/generators/generators.h"
#include "core/text/builtin_dictionaries.h"

namespace {

using pdgf::DeriveSeed;
using pdgf::GeneratorContext;
using pdgf::Value;

// Shared measurement loop: evaluate `generator` at consecutive rows.
void RunGenerator(benchmark::State& state, const pdgf::Generator& generator) {
  Value value;
  uint64_t row = 0;
  for (auto _ : state) {
    GeneratorContext context(nullptr, 0, row, 0, DeriveSeed(99, row));
    generator.Generate(&context, &value);
    benchmark::DoNotOptimize(value);
    ++row;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DictList(benchmark::State& state) {
  pdgf::DictListGenerator generator(
      pdgf::FindBuiltinDictionary("first_names"), "first_names",
      pdgf::DictListGenerator::Method::kCumulative, 0);
  RunGenerator(state, generator);
}
BENCHMARK(BM_DictList);

void BM_Long(benchmark::State& state) {
  pdgf::LongGenerator generator(0, 1000000);
  RunGenerator(state, generator);
}
BENCHMARK(BM_Long);

void BM_Double(benchmark::State& state) {
  pdgf::DoubleGenerator generator(0.0, 1000.0);
  RunGenerator(state, generator);
}
BENCHMARK(BM_Double);

void BM_Date(benchmark::State& state) {
  pdgf::DateGenerator generator(pdgf::Date::FromCivil(1992, 1, 1),
                                pdgf::Date::FromCivil(1998, 12, 31));
  RunGenerator(state, generator);
}
BENCHMARK(BM_Date);

void BM_String(benchmark::State& state) {
  pdgf::RandomStringGenerator generator(10, 25);
  RunGenerator(state, generator);
}
BENCHMARK(BM_String);

void BM_Boolean(benchmark::State& state) {
  pdgf::BooleanGenerator generator(0.5);
  RunGenerator(state, generator);
}
BENCHMARK(BM_Boolean);

void BM_Id(benchmark::State& state) {
  pdgf::IdGenerator generator(1, 1);
  RunGenerator(state, generator);
}
BENCHMARK(BM_Id);

}  // namespace

BENCHMARK_MAIN();
