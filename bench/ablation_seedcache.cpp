// Ablation — seed caching in the seeding hierarchy (paper §2: "Although
// the seeding hierarchy ... seems expensive, most of the seeds can be
// cached and the cost for generating single values is very low").
//
// Compares the per-field seed cost with cached table/column seeds (what
// GenerationSession does) against recomputing the full project -> table
// -> column -> update -> row chain per field, across schema widths.

#include <cstdio>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

// The full chain, as if nothing were cached.
uint64_t UncachedFieldSeed(uint64_t project_seed, const char* table,
                           const char* column, uint64_t update,
                           uint64_t row) {
  uint64_t table_seed =
      pdgf::DeriveSeed(project_seed ^ 0x7ab1e00000000001ULL,
                       pdgf::HashName(table));
  uint64_t column_seed = pdgf::DeriveSeed(
      table_seed ^ 0xc01a00000000002ULL, pdgf::HashName(column));
  uint64_t update_seed =
      pdgf::DeriveSeed(column_seed ^ 0x0bd8000000000003ULL, update);
  return pdgf::DeriveSeed(update_seed ^ 0x20e000000000004ULL, row);
}

// With cached column seed: only the update+row levels remain.
uint64_t CachedFieldSeed(uint64_t column_seed, uint64_t update,
                         uint64_t row) {
  uint64_t update_seed =
      pdgf::DeriveSeed(column_seed ^ 0x0bd8000000000003ULL, update);
  return pdgf::DeriveSeed(update_seed ^ 0x20e000000000004ULL, row);
}

}  // namespace

int main() {
  const int kIterations = 5000000;
  std::printf("Ablation: seed-cache on/off (%d field seeds)\n\n",
              kIterations);

  uint64_t column_seed = pdgf::DeriveSeed(
      pdgf::DeriveSeed(123456789 ^ 0x7ab1e00000000001ULL,
                       pdgf::HashName("lineitem")) ^
          0xc01a00000000002ULL,
      pdgf::HashName("l_comment"));

  pdgf::Stopwatch stopwatch;
  uint64_t accumulator = 0;
  for (int i = 0; i < kIterations; ++i) {
    accumulator ^= CachedFieldSeed(column_seed, 0,
                                   static_cast<uint64_t>(i));
  }
  volatile uint64_t sink = accumulator;
  double cached_ns = stopwatch.ElapsedNanos() /
                     static_cast<double>(kIterations);

  stopwatch.Restart();
  accumulator = 0;
  for (int i = 0; i < kIterations; ++i) {
    accumulator ^= UncachedFieldSeed(123456789, "lineitem", "l_comment", 0,
                                     static_cast<uint64_t>(i));
  }
  sink = accumulator;
  double uncached_ns = stopwatch.ElapsedNanos() /
                       static_cast<double>(kIterations);
  (void)sink;

  std::printf("cached column seed   : %7.2f ns/field\n", cached_ns);
  std::printf("full chain recompute : %7.2f ns/field  (%.1fx)\n",
              uncached_ns, uncached_ns / cached_ns);
  std::printf("\nthe name-hash + extra Mix64 levels dominate the uncached "
              "path; caching keeps per-value cost negligible, as §2 "
              "claims\n");
  return 0;
}
