// Ablation — output-system design choices: sorted single-file merge vs
// unsorted writes (paper §4: PDGF "writes sorted output into a single
// file" while DBGen splits per instance), and the work-package size
// trade-off (scheduling overhead vs load balance).
//
//   ./bench_ablation_output [SF]    (default 0.005)

#include <cstdio>

#include "core/engine.h"
#include "core/session.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  const char* scale_factor = argc > 1 ? argv[1] : "0.005";
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
  if (!session.ok()) return 1;
  pdgf::CsvFormatter formatter;

  std::printf("Ablation: output system (TPC-H SF %s, null sink, 2 "
              "workers)\n\n",
              scale_factor);

  std::printf("sorted vs unsorted package delivery:\n");
  std::printf("%10s %12s %14s\n", "mode", "seconds", "throughput");
  for (bool sorted : {true, false}) {
    pdgf::GenerationOptions options;
    options.worker_count = 2;
    options.work_package_rows = 2000;
    options.sorted_output = sorted;
    auto stats = GenerateToNull(**session, formatter, options);
    if (!stats.ok()) return 1;
    std::printf("%10s %12.3f %11.1f MB/s\n", sorted ? "sorted" : "unsorted",
                stats->seconds, stats->megabytes_per_second);
  }

  std::printf("\nwork-package size sweep (sorted):\n");
  std::printf("%12s %12s %14s %10s\n", "rows/pkg", "seconds",
              "throughput", "packages");
  for (uint64_t package_rows : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
    pdgf::GenerationOptions options;
    options.worker_count = 2;
    options.work_package_rows = package_rows;
    auto stats = GenerateToNull(**session, formatter, options);
    if (!stats.ok()) return 1;
    std::printf("%12llu %12.3f %11.1f MB/s %10llu\n",
                static_cast<unsigned long long>(package_rows),
                stats->seconds, stats->megabytes_per_second,
                static_cast<unsigned long long>(stats->packages));
  }
  std::printf("\nexpected: sorting costs little (buffered reordering); "
              "very small packages pay scheduling overhead\n");
  return 0;
}
