// Figure 5 — PDGF TPC-H scale-up performance.
//
// Paper setup: one node, 2 sockets x 8 cores (16 physical cores, 32
// hardware threads); throughput rises linearly up to 16 workers, more
// slowly up to 32, then flattens — with a dip when the worker count
// exactly matches the cores/threads (PDGF's internal scheduling and I/O
// threads compete).
//
// This container has one core, so the worker partitions are executed
// sequentially, each lane's busy time is measured, and the wall clock of
// the paper's 16c/32t node is derived with the simulated-machine model
// (DESIGN.md S20). PDGF's determinism makes lanes independent, so lane
// busy time is hardware-independent up to a constant factor.
//
//   ./bench_fig5_scaleup [SF]     (default 0.01)

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "core/session.h"
#include "core/simcluster.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  const char* scale_factor = argc > 1 ? argv[1] : "0.01";
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  pdgf::CsvFormatter formatter;
  {
    // Warm-up pass so lazy structures are built before timing.
    pdgf::GenerationOptions options;
    options.worker_count = 1;
    auto warmup = GenerateToNull(**session, formatter, options);
    if (!warmup.ok()) return 1;
  }
  pdgf::SimulatedMachine machine;  // 16 cores / 32 threads, the paper node

  std::printf("Figure 5: PDGF TPC-H scale-up (SF %s, simulated 16c/32t "
              "node)\n",
              scale_factor);
  std::printf("%8s %14s %10s\n", "workers", "throughput", "capacity");

  for (int workers : {1, 2, 4, 8, 12, 15, 16, 17, 20, 24, 28, 31, 32, 33,
                      40, 48}) {
    // Measure each worker lane's busy time: lane w generates the w-th of
    // `workers` shares of every table (exactly the rows that worker would
    // own under static partitioning).
    std::vector<double> lane_seconds;
    uint64_t bytes = 0;
    for (int lane = 0; lane < workers; ++lane) {
      pdgf::GenerationOptions options;
      options.worker_count = 1;
      options.node_count = workers;  // reuse node partitioning per lane
      options.node_id = lane;
      options.work_package_rows = 5000;
      auto stats = GenerateToNull(**session, formatter, options);
      if (!stats.ok()) {
        std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
        return 1;
      }
      lane_seconds.push_back(stats->seconds);
      bytes += stats->bytes;
    }
    // TPC-H shares are homogeneous, so work conservation (total busy
    // time over the machine capacity) estimates the wall clock; the
    // longest-lane lower bound of EstimateParallelWallClock is skipped
    // here because single-lane timing jitter on this 1-core container
    // would masquerade as load imbalance.
    double total_busy = 0;
    for (double lane : lane_seconds) total_busy += lane;
    double wall =
        total_busy / pdgf::EffectiveCapacity(machine, workers);
    double throughput = static_cast<double>(bytes) / (1024.0 * 1024.0) /
                        wall;
    std::printf("%8d %11.1f MB/s %10.2f\n", workers, throughput,
                pdgf::EffectiveCapacity(machine, workers));
  }
  std::printf("\npaper shape: linear to 16 cores, sub-linear to 32 HW "
              "threads, dips at exactly 16 and 32 workers, flat beyond\n");
  return 0;
}
