// Figure 5 — PDGF TPC-H scale-up performance.
//
// Paper setup: one node, 2 sockets x 8 cores (16 physical cores, 32
// hardware threads); throughput rises linearly up to 16 workers, more
// slowly up to 32, then flattens — with a dip when the worker count
// exactly matches the cores/threads (PDGF's internal scheduling and I/O
// threads compete).
//
// This container has one core, so the worker partitions are executed
// sequentially, each lane's busy time is measured, and the wall clock of
// the paper's 16c/32t node is derived with the simulated-machine model
// (DESIGN.md S20). PDGF's determinism makes lanes independent, so lane
// busy time is hardware-independent up to a constant factor.
//
//   ./bench_fig5_scaleup [SF] [--quick] [--json FILE] [--overhead-gate]
//                        [--batch-gate]
//
//   SF               scale factor (default 0.01)
//   --quick          worker sweep {1,2,4} instead of the full figure
//   --json FILE      write a BENCH_engine.json baseline: best-of-N
//                    engine run with full per-phase metrics (rows/s,
//                    MB/s, phase breakdown; schema in docs/metrics.md)
//                    plus the scale-up series (throughput_mb_s and
//                    rows_per_sec_batch per worker count)
//   --overhead-gate  run metrics-off vs. metrics-on back to back and
//                    exit 1 if metrics add more than the allowed
//                    overhead (default 10%; env METRICS_GATE_PCT).
//                    Prints machine-readable "metrics_overhead_pct=".
//   --batch-gate     measure the legacy scalar pipeline vs. the batch
//                    pipeline (interleaved best-of-5 pairs, same
//                    process, same commit) and exit 1 if batch rows/s
//                    regresses below scalar rows/s. Self-calibrated:
//                    the scalar baseline is re-measured every run, and
//                    the ratio gate defaults to 1.0x (env BATCH_GATE_X
//                    raises it on quiet hardware). Prints
//                    machine-readable "batch_speedup_x=".
//   --writer-gate    run inline writes vs. the async writer stage
//                    against a throttled (slow) sink, best-of-3 each,
//                    and exit 1 unless async wall clock beats inline by
//                    WRITER_GATE_X (default 1.1x). Also fails if the
//                    async default regresses a NullSink run by more
//                    than WRITER_REGRESSION_PCT (default 5%). Prints
//                    machine-readable "writer_speedup_x=" and
//                    "writer_default_regression_pct=".
//   --numa-gate      self-calibrating NUMA placement gate (interleaved
//                    best-of-3 pairs, numa=off vs numa=on, kNuma
//                    scheduler, peak workers). Digests must be
//                    bit-identical in both modes (hard failure). On a
//                    multi-node host placement must win by NUMA_GATE_X
//                    (default 1.1x); on a single-node host — where every
//                    mode degenerates to the same code path — the two
//                    runs must agree within NUMA_PARITY_PCT (default
//                    25%). Prints machine-readable "numa_speedup_x=".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/topology.h"
#include "core/engine.h"
#include "core/session.h"
#include "core/simcluster.h"
#include "util/files.h"
#include "workloads/tpch.h"

namespace {

// Best-of-N single-worker engine run (min wall clock damps scheduler
// noise on shared containers). Metrics optional.
pdgf::StatusOr<pdgf::GenerationEngine::Stats> BestOfRuns(
    const pdgf::GenerationSession& session,
    const pdgf::RowFormatter& formatter, int repeats, bool metrics,
    bool scalar_pipeline = false, int writer_threads = 1) {
  pdgf::GenerationEngine::Stats best;
  bool have_best = false;
  for (int i = 0; i < repeats; ++i) {
    pdgf::GenerationOptions options;
    options.worker_count = 1;
    options.work_package_rows = 5000;
    options.metrics_enabled = metrics;
    options.scalar_pipeline = scalar_pipeline;
    options.writer_threads = writer_threads;
    auto stats = GenerateToNull(session, formatter, options);
    if (!stats.ok()) return stats.status();
    if (!have_best || stats->seconds < best.seconds) {
      best = *stats;
      have_best = true;
    }
  }
  return best;
}

int RunOverheadGate(const pdgf::GenerationSession& session,
                    const pdgf::RowFormatter& formatter) {
  const char* env = std::getenv("METRICS_GATE_PCT");
  const double allowed_pct = env != nullptr ? std::atof(env) : 10.0;
  const int repeats = 5;
  auto off = BestOfRuns(session, formatter, repeats, /*metrics=*/false);
  auto on = BestOfRuns(session, formatter, repeats, /*metrics=*/true);
  if (!off.ok() || !on.ok()) {
    std::fprintf(stderr, "gate run failed\n");
    return 1;
  }
  double delta_pct =
      off->seconds > 0
          ? (on->seconds - off->seconds) / off->seconds * 100.0
          : 0.0;
  std::printf("metrics_off_seconds=%.6f\n", off->seconds);
  std::printf("metrics_on_seconds=%.6f\n", on->seconds);
  std::printf("metrics_overhead_pct=%.2f\n", delta_pct);
  if (delta_pct > allowed_pct) {
    std::fprintf(stderr,
                 "FAIL: metrics overhead %.2f%% exceeds the %.1f%% gate\n",
                 delta_pct, allowed_pct);
    return 1;
  }
  std::printf("ok: metrics overhead within %.1f%% gate\n", allowed_pct);
  return 0;
}

// Batch-vs-scalar throughput gate (ISSUE 3, recalibrated in ISSUE 6):
// the batched pipeline must not regress below the legacy scalar
// per-row pipeline measured *in the same process on the same commit*.
// The gate is a self-calibrated ratio — scalar is re-measured every
// run, so the bar moves with the machine — and the default threshold
// is 1.0x (no regression) rather than an absolute 1.2x: shared CI
// containers measure the batch win anywhere from ~1.05x to ~1.4x
// depending on neighbours, and an absolute bar either flakes or gates
// nothing. BATCH_GATE_X raises the bar on quiet hardware. Both runs
// produce bit-identical bytes; only the pipeline differs.
int RunBatchGate(const pdgf::GenerationSession& session,
                 const pdgf::RowFormatter& formatter,
                 double* speedup_out = nullptr) {
  const char* env = std::getenv("BATCH_GATE_X");
  const double required = env != nullptr ? std::atof(env) : 1.0;
  const int repeats = 5;
  // Interleave the best-of pairs scalar/batch/scalar/batch rather than
  // running two back-to-back blocks: slow drift in container load then
  // hits both pipelines equally instead of biasing whichever block ran
  // during the quiet stretch. Inline writes (writer_threads = 0): this
  // gate compares the two *generation* pipelines, and on a 1-core
  // container the async writer thread's fixed per-package cost would
  // dilute the measured ratio.
  pdgf::GenerationEngine::Stats scalar_best;
  pdgf::GenerationEngine::Stats batch_best;
  bool have_best = false;
  for (int i = 0; i < repeats; ++i) {
    auto scalar =
        BestOfRuns(session, formatter, /*repeats=*/1, /*metrics=*/false,
                   /*scalar_pipeline=*/true, /*writer_threads=*/0);
    auto batch =
        BestOfRuns(session, formatter, /*repeats=*/1, /*metrics=*/false,
                   /*scalar_pipeline=*/false, /*writer_threads=*/0);
    if (!scalar.ok() || !batch.ok()) {
      std::fprintf(stderr, "gate run failed\n");
      return 1;
    }
    if (!have_best || scalar->seconds < scalar_best.seconds) {
      scalar_best = *scalar;
    }
    if (!have_best || batch->seconds < batch_best.seconds) {
      batch_best = *batch;
    }
    have_best = true;
  }
  const double scalar_rps =
      scalar_best.seconds > 0
          ? static_cast<double>(scalar_best.rows) / scalar_best.seconds
          : 0.0;
  const double batch_rps =
      batch_best.seconds > 0
          ? static_cast<double>(batch_best.rows) / batch_best.seconds
          : 0.0;
  const double speedup = scalar_rps > 0 ? batch_rps / scalar_rps : 0.0;
  if (speedup_out != nullptr) *speedup_out = speedup;
  std::printf("scalar_rows_per_sec=%.0f\n", scalar_rps);
  std::printf("batch_rows_per_sec=%.0f\n", batch_rps);
  std::printf("simd_dispatch=%s\n", pdgf::simd::SimdDispatchName());
  std::printf("batch_speedup_x=%.3f\n", speedup);
  if (speedup < required) {
    std::fprintf(stderr,
                 "FAIL: batch speedup %.3fx below the %.2fx gate\n",
                 speedup, required);
    return 1;
  }
  std::printf("ok: batch pipeline >= %.2fx scalar pipeline\n", required);
  return 0;
}

// Best-of-N run against per-table ThrottledSinks (a deterministic slow
// device); writer_threads selects inline (0) vs. async (>0) delivery.
pdgf::StatusOr<pdgf::GenerationEngine::Stats> BestThrottledRun(
    const pdgf::GenerationSession& session,
    const pdgf::RowFormatter& formatter, int repeats,
    double bytes_per_second, int writer_threads) {
  pdgf::GenerationEngine::Stats best;
  bool have_best = false;
  for (int i = 0; i < repeats; ++i) {
    pdgf::GenerationOptions options;
    options.worker_count = 1;
    options.work_package_rows = 5000;
    options.writer_threads = writer_threads;
    pdgf::SinkFactory factory =
        [bytes_per_second](const pdgf::TableDef&)
        -> pdgf::StatusOr<std::unique_ptr<pdgf::Sink>> {
      return std::unique_ptr<pdgf::Sink>(
          new pdgf::ThrottledSink(bytes_per_second, /*latency_seconds=*/0));
    };
    pdgf::GenerationEngine engine(&session, &formatter, factory, options);
    pdgf::Status status = engine.Run();
    if (!status.ok()) return status;
    if (!have_best || engine.stats().seconds < best.seconds) {
      best = engine.stats();
      have_best = true;
    }
  }
  return best;
}

// Async-writer gate (staged-pipeline tentpole). On a sink slow enough to
// cost about one generation-time of sleep, inline delivery pays
// generate + write serially while the async stage overlaps them, so
// even this 1-core container sees a real wall-clock win (the sink
// sleeps, it does not compute). Also guards the default scenario: the
// async-by-default pipeline must not regress a NullSink run.
int RunWriterGate(const pdgf::GenerationSession& session,
                  const pdgf::RowFormatter& formatter, double* speedup_out,
                  double* regression_out) {
  const char* gate_env = std::getenv("WRITER_GATE_X");
  const double required = gate_env != nullptr ? std::atof(gate_env) : 1.1;
  const char* reg_env = std::getenv("WRITER_REGRESSION_PCT");
  const double allowed_pct = reg_env != nullptr ? std::atof(reg_env) : 5.0;

  // Calibrate the throttle so sink time roughly matches generation time
  // (the regime the async stage is built for: neither side starves).
  auto calibration =
      BestOfRuns(session, formatter, /*repeats=*/3, /*metrics=*/false);
  if (!calibration.ok()) {
    std::fprintf(stderr, "gate calibration failed\n");
    return 1;
  }
  const double bytes_per_second =
      calibration->seconds > 0
          ? static_cast<double>(calibration->bytes) / calibration->seconds
          : 1e9;

  auto inline_run = BestThrottledRun(session, formatter, /*repeats=*/3,
                                     bytes_per_second, /*writer_threads=*/0);
  auto async_run = BestThrottledRun(session, formatter, /*repeats=*/3,
                                    bytes_per_second, /*writer_threads=*/1);
  if (!inline_run.ok() || !async_run.ok()) {
    std::fprintf(stderr, "gate run failed\n");
    return 1;
  }
  const double speedup = async_run->seconds > 0
                             ? inline_run->seconds / async_run->seconds
                             : 0.0;
  std::printf("writer_inline_seconds=%.6f\n", inline_run->seconds);
  std::printf("writer_async_seconds=%.6f\n", async_run->seconds);
  std::printf("writer_speedup_x=%.3f\n", speedup);

  // Default-scenario guard: NullSink, async default vs. forced inline.
  auto null_inline = BestOfRuns(session, formatter, /*repeats=*/5,
                                /*metrics=*/false, /*scalar_pipeline=*/false,
                                /*writer_threads=*/0);
  auto null_async = BestOfRuns(session, formatter, /*repeats=*/5,
                               /*metrics=*/false, /*scalar_pipeline=*/false,
                               /*writer_threads=*/1);
  if (!null_inline.ok() || !null_async.ok()) {
    std::fprintf(stderr, "gate run failed\n");
    return 1;
  }
  const double regression_pct =
      null_inline->seconds > 0
          ? (null_async->seconds - null_inline->seconds) /
                null_inline->seconds * 100.0
          : 0.0;
  std::printf("writer_default_regression_pct=%.2f\n", regression_pct);
  if (speedup_out != nullptr) *speedup_out = speedup;
  if (regression_out != nullptr) *regression_out = regression_pct;

  if (speedup < required) {
    std::fprintf(stderr,
                 "FAIL: async writer speedup %.3fx below the %.2fx gate "
                 "on the throttled sink\n",
                 speedup, required);
    return 1;
  }
  if (regression_pct > allowed_pct) {
    std::fprintf(stderr,
                 "FAIL: async default regresses the NullSink run by "
                 "%.2f%% (allowed %.1f%%)\n",
                 regression_pct, allowed_pct);
    return 1;
  }
  std::printf("ok: async writer >= %.2fx inline on slow sink, default "
              "regression within %.1f%%\n",
              required, allowed_pct);
  return 0;
}

// One NullSink run under a given placement mode; digests on so the gate
// can prove placement never changes the data.
pdgf::StatusOr<pdgf::GenerationEngine::Stats> RunNumaMode(
    const pdgf::GenerationSession& session,
    const pdgf::RowFormatter& formatter, pdgf::NumaMode numa, int workers) {
  pdgf::GenerationOptions options;
  options.worker_count = workers;
  options.work_package_rows = 5000;
  options.scheduler = pdgf::SchedulerKind::kNuma;
  options.numa = numa;
  options.compute_digests = true;
  return GenerateToNull(session, formatter, options);
}

// NUMA placement gate (ISSUE 9 tentpole). Self-calibrating on the host
// it runs on: a multi-node box must show the placement win, a
// single-node box (this CI container) asserts the off/on parity that
// proves the NUMA machinery costs nothing when it cannot help. Both
// hosts assert digest equality — placement must never change bytes.
int RunNumaGate(const pdgf::GenerationSession& session,
                const pdgf::RowFormatter& formatter) {
  const pdgf::Topology& topology = pdgf::Topology::System();
  const bool multi_node = topology.node_count() > 1;
  const char* gate_env = std::getenv("NUMA_GATE_X");
  const double required = gate_env != nullptr ? std::atof(gate_env) : 1.1;
  const char* parity_env = std::getenv("NUMA_PARITY_PCT");
  const double parity_pct =
      parity_env != nullptr ? std::atof(parity_env) : 25.0;
  // Peak workers: every schedulable CPU on a multi-node host (the regime
  // the 2.26 GB/s plateau was measured in); a modest thread count on a
  // single-node host where extra threads only add scheduler noise.
  const int workers =
      multi_node ? topology.cpu_count() : std::min(4, 2 * topology.cpu_count());

  // Interleaved best-of pairs (the batch-gate discipline): container
  // load drift hits both modes equally.
  const int repeats = 3;
  pdgf::GenerationEngine::Stats off_best;
  pdgf::GenerationEngine::Stats on_best;
  std::vector<std::string> off_digests;
  std::vector<std::string> on_digests;
  bool have_best = false;
  for (int i = 0; i < repeats; ++i) {
    auto off = RunNumaMode(session, formatter, pdgf::NumaMode::kOff, workers);
    auto on = RunNumaMode(session, formatter, pdgf::NumaMode::kOn, workers);
    if (!off.ok() || !on.ok()) {
      std::fprintf(stderr, "gate run failed\n");
      return 1;
    }
    if (!have_best || off->seconds < off_best.seconds) off_best = *off;
    if (!have_best || on->seconds < on_best.seconds) on_best = *on;
    have_best = true;
    off_digests.clear();
    on_digests.clear();
    for (const pdgf::TableDigest& d : off->table_digests) {
      off_digests.push_back(d.Hex());
    }
    for (const pdgf::TableDigest& d : on->table_digests) {
      on_digests.push_back(d.Hex());
    }
    if (off_digests != on_digests) {
      std::fprintf(stderr,
                   "FAIL: table digests differ between numa=off and "
                   "numa=on — placement changed the data\n");
      return 1;
    }
  }
  const double speedup =
      on_best.seconds > 0 ? off_best.seconds / on_best.seconds : 0.0;
  std::printf("numa_nodes=%d\n", topology.node_count());
  std::printf("numa_workers=%d\n", workers);
  std::printf("numa_off_seconds=%.6f\n", off_best.seconds);
  std::printf("numa_on_seconds=%.6f\n", on_best.seconds);
  std::printf("numa_speedup_x=%.3f\n", speedup);
  if (multi_node) {
    if (speedup < required) {
      std::fprintf(stderr,
                   "FAIL: NUMA placement speedup %.3fx below the %.2fx "
                   "gate at %d workers on %d nodes\n",
                   speedup, required, workers, topology.node_count());
      return 1;
    }
    std::printf("ok: NUMA placement >= %.2fx at peak workers\n", required);
    return 0;
  }
  const double delta_pct =
      off_best.seconds > 0
          ? (on_best.seconds - off_best.seconds) / off_best.seconds * 100.0
          : 0.0;
  if (delta_pct > parity_pct) {
    std::fprintf(stderr,
                 "FAIL: single-node numa=on costs %.2f%% over numa=off "
                 "(allowed %.1f%%) — placement is not free when it "
                 "cannot help\n",
                 delta_pct, parity_pct);
    return 1;
  }
  std::printf("ok: single-node parity within %.1f%% (digests identical)\n",
              parity_pct);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* scale_factor = "0.01";
  std::string json_path;
  bool quick = false;
  bool overhead_gate = false;
  bool batch_gate = false;
  bool writer_gate = false;
  bool numa_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--overhead-gate") == 0) {
      overhead_gate = true;
    } else if (std::strcmp(argv[i], "--batch-gate") == 0) {
      batch_gate = true;
    } else if (std::strcmp(argv[i], "--writer-gate") == 0) {
      writer_gate = true;
    } else if (std::strcmp(argv[i], "--numa-gate") == 0) {
      numa_gate = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      scale_factor = argv[i];
    }
  }

  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  pdgf::CsvFormatter formatter;
  {
    // Warm-up pass so lazy structures are built before timing.
    pdgf::GenerationOptions options;
    options.worker_count = 1;
    auto warmup = GenerateToNull(**session, formatter, options);
    if (!warmup.ok()) return 1;
  }

  // Bench hygiene (ISSUE 9): every run prints the placement domain the
  // numbers were measured on, so two BENCH_engine.json files from
  // different hosts are never compared blind.
  const pdgf::Topology& topology = pdgf::Topology::System();
  std::printf("topology: %s\n", topology.Describe().c_str());

  if (overhead_gate) {
    return RunOverheadGate(**session, formatter);
  }
  if (batch_gate) {
    return RunBatchGate(**session, formatter);
  }
  if (writer_gate) {
    return RunWriterGate(**session, formatter, nullptr, nullptr);
  }
  if (numa_gate) {
    return RunNumaGate(**session, formatter);
  }

  // The lane timings and the metered baseline below are single-worker
  // measurements on this thread; pin it to node 0's first CPU so
  // cross-node migration cannot smear them. The multi-worker gates above
  // returned already — their spawned workers must inherit the full mask.
  if (topology.can_bind() && !topology.node(0).cpus.empty()) {
    (void)topology.BindCurrentThreadToCpu(topology.node(0).cpus[0]);
  }

  pdgf::SimulatedMachine machine;  // 16 cores / 32 threads, the paper node

  std::printf("Figure 5: PDGF TPC-H scale-up (SF %s, simulated 16c/32t "
              "node)\n",
              scale_factor);
  std::printf("%8s %14s %10s\n", "workers", "throughput", "capacity");

  std::vector<int> worker_counts = {1,  2,  4,  8,  12, 15, 16, 17,
                                    20, 24, 28, 31, 32, 33, 40, 48};
  if (quick) worker_counts = {1, 2, 4};

  std::string scaleup_json;
  double total_busy_seconds = 0;
  for (int workers : worker_counts) {
    // Measure each worker lane's busy time: lane w generates the w-th of
    // `workers` shares of every table (exactly the rows that worker would
    // own under static partitioning).
    std::vector<double> lane_seconds;
    uint64_t bytes = 0;
    uint64_t rows = 0;
    for (int lane = 0; lane < workers; ++lane) {
      pdgf::GenerationOptions options;
      options.worker_count = 1;
      options.node_count = workers;  // reuse node partitioning per lane
      options.node_id = lane;
      options.work_package_rows = 5000;
      auto stats = GenerateToNull(**session, formatter, options);
      if (!stats.ok()) {
        std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
        return 1;
      }
      lane_seconds.push_back(stats->seconds);
      bytes += stats->bytes;
      rows += stats->rows;
    }
    // TPC-H shares are homogeneous, so work conservation (total busy
    // time over the machine capacity) estimates the wall clock; the
    // longest-lane lower bound of EstimateParallelWallClock is skipped
    // here because single-lane timing jitter on this 1-core container
    // would masquerade as load imbalance.
    double total_busy = 0;
    for (double lane : lane_seconds) total_busy += lane;
    total_busy_seconds += total_busy;
    double capacity = pdgf::EffectiveCapacity(machine, workers);
    double wall = total_busy / capacity;
    double throughput =
        static_cast<double>(bytes) / (1024.0 * 1024.0) / wall;
    std::printf("%8d %11.1f MB/s %10.2f\n", workers, throughput, capacity);
    if (!json_path.empty()) {
      if (!scaleup_json.empty()) scaleup_json += ",\n";
      char line[192];
      std::snprintf(line, sizeof(line),
                    "    {\"workers\": %d, \"throughput_mb_s\": %.3f, "
                    "\"rows_per_sec_batch\": %.0f, \"capacity\": %.3f}",
                    workers, throughput,
                    static_cast<double>(rows) / wall, capacity);
      scaleup_json += line;
    }
  }
  std::printf("total_busy_seconds=%.6f\n", total_busy_seconds);

  if (!json_path.empty()) {
    // Baseline: best-of-3 fully metered single-worker run, so future
    // perf PRs have per-phase numbers to beat (ISSUE 2 tentpole).
    auto baseline = BestOfRuns(**session, formatter, 3, /*metrics=*/true);
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
      return 1;
    }
    // Record the async-writer gate measurements alongside the baseline
    // so the slow-sink speedup and default-scenario delta are versioned
    // with the numbers they guard.
    double writer_speedup = 0;
    double writer_regression_pct = 0;
    int gate_result = RunWriterGate(**session, formatter, &writer_speedup,
                                    &writer_regression_pct);
    if (gate_result != 0) return gate_result;
    char writer_json[128];
    std::snprintf(writer_json, sizeof(writer_json),
                  "  \"writer\": {\"slow_sink_speedup_x\": %.3f, "
                  "\"default_regression_pct\": %.2f},\n",
                  writer_speedup, writer_regression_pct);
    // Batch-vs-scalar ratio under the active SIMD dispatch, versioned
    // with the baseline it was measured against (ISSUE 7 acceptance).
    double batch_speedup = 0;
    gate_result = RunBatchGate(**session, formatter, &batch_speedup);
    if (gate_result != 0) return gate_result;
    char simd_json[128];
    std::snprintf(simd_json, sizeof(simd_json),
                  "  \"simd\": {\"dispatch\": \"%s\", "
                  "\"batch_speedup_x\": %.3f},\n",
                  pdgf::simd::SimdDispatchName(), batch_speedup);
    // Per-node series under topology-routed scheduling (kNuma scheduler,
    // numa=on). On a single-node host the series collapses to one node-0
    // row, so the schema is identical across hosts.
    pdgf::GenerationOptions numa_options;
    numa_options.worker_count = 2;
    numa_options.work_package_rows = 5000;
    numa_options.scheduler = pdgf::SchedulerKind::kNuma;
    numa_options.numa = pdgf::NumaMode::kOn;
    numa_options.metrics_enabled = true;
    auto numa_run = GenerateToNull(**session, formatter, numa_options);
    if (!numa_run.ok()) {
      std::fprintf(stderr, "%s\n", numa_run.status().ToString().c_str());
      return 1;
    }
    std::string numa_json = "  \"numa\": {\"mode\": \"on\", \"topology\": \"" +
                            topology.Describe() + "\",\n    \"nodes\": [";
    for (size_t i = 0; i < numa_run->metrics.nodes.size(); ++i) {
      const pdgf::MetricsReport::NodeReport& node =
          numa_run->metrics.nodes[i];
      char node_line[192];
      std::snprintf(node_line, sizeof(node_line),
                    "%s\n      {\"node\": %d, \"workers\": %llu, "
                    "\"rows\": %llu, \"bytes\": %llu, \"packages\": %llu, "
                    "\"steals\": %llu}",
                    i == 0 ? "" : ",", node.node,
                    static_cast<unsigned long long>(node.workers),
                    static_cast<unsigned long long>(node.rows),
                    static_cast<unsigned long long>(node.bytes),
                    static_cast<unsigned long long>(node.packages),
                    static_cast<unsigned long long>(node.steals));
      numa_json += node_line;
    }
    numa_json += "]},\n";
    std::string json = "{\n";
    // Top-level schema_version tracks the embedded metrics report schema
    // (v2 added numa_mode/topology/nodes) so consumers parse both with
    // one version check.
    json += "  \"schema_version\": 2,\n";
    json += "  \"bench\": \"fig5_scaleup\",\n";
    json += "  \"scale_factor\": \"" + std::string(scale_factor) + "\",\n";
    json += "  \"baseline\": " + baseline->metrics.ToJson(false) + ",\n";
    json += writer_json;
    json += simd_json;
    json += numa_json;
    json += "  \"scaleup\": [\n" + scaleup_json + "\n  ]\n}\n";
    pdgf::Status written = pdgf::WriteStringToFile(json_path, json);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("baseline written to %s\n", json_path.c_str());
  }

  std::printf("\npaper shape: linear to 16 cores, sub-linear to 32 HW "
              "threads, dips at exactly 16 and 32 workers, flat beyond\n");
  return 0;
}
