// Figure 5 — PDGF TPC-H scale-up performance.
//
// Paper setup: one node, 2 sockets x 8 cores (16 physical cores, 32
// hardware threads); throughput rises linearly up to 16 workers, more
// slowly up to 32, then flattens — with a dip when the worker count
// exactly matches the cores/threads (PDGF's internal scheduling and I/O
// threads compete).
//
// This container has one core, so the worker partitions are executed
// sequentially, each lane's busy time is measured, and the wall clock of
// the paper's 16c/32t node is derived with the simulated-machine model
// (DESIGN.md S20). PDGF's determinism makes lanes independent, so lane
// busy time is hardware-independent up to a constant factor.
//
//   ./bench_fig5_scaleup [SF] [--quick] [--json FILE] [--overhead-gate]
//                        [--batch-gate]
//
//   SF               scale factor (default 0.01)
//   --quick          worker sweep {1,2,4} instead of the full figure
//   --json FILE      write a BENCH_engine.json baseline: best-of-N
//                    engine run with full per-phase metrics (rows/s,
//                    MB/s, phase breakdown; schema in docs/metrics.md)
//                    plus the scale-up series (throughput_mb_s and
//                    rows_per_sec_batch per worker count)
//   --overhead-gate  run metrics-off vs. metrics-on back to back and
//                    exit 1 if metrics add more than the allowed
//                    overhead (default 10%; env METRICS_GATE_PCT).
//                    Prints machine-readable "metrics_overhead_pct=".
//   --batch-gate     run the legacy scalar pipeline vs. the batch
//                    pipeline back to back (best-of-5 each) and exit 1
//                    unless batch rows/s >= 1.2x scalar rows/s (env
//                    BATCH_GATE_X overrides the factor). Prints
//                    machine-readable "batch_speedup_x=".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/session.h"
#include "core/simcluster.h"
#include "util/files.h"
#include "workloads/tpch.h"

namespace {

// Best-of-N single-worker engine run (min wall clock damps scheduler
// noise on shared containers). Metrics optional.
pdgf::StatusOr<pdgf::GenerationEngine::Stats> BestOfRuns(
    const pdgf::GenerationSession& session,
    const pdgf::RowFormatter& formatter, int repeats, bool metrics,
    bool scalar_pipeline = false) {
  pdgf::GenerationEngine::Stats best;
  bool have_best = false;
  for (int i = 0; i < repeats; ++i) {
    pdgf::GenerationOptions options;
    options.worker_count = 1;
    options.work_package_rows = 5000;
    options.metrics_enabled = metrics;
    options.scalar_pipeline = scalar_pipeline;
    auto stats = GenerateToNull(session, formatter, options);
    if (!stats.ok()) return stats.status();
    if (!have_best || stats->seconds < best.seconds) {
      best = *stats;
      have_best = true;
    }
  }
  return best;
}

int RunOverheadGate(const pdgf::GenerationSession& session,
                    const pdgf::RowFormatter& formatter) {
  const char* env = std::getenv("METRICS_GATE_PCT");
  const double allowed_pct = env != nullptr ? std::atof(env) : 10.0;
  const int repeats = 5;
  auto off = BestOfRuns(session, formatter, repeats, /*metrics=*/false);
  auto on = BestOfRuns(session, formatter, repeats, /*metrics=*/true);
  if (!off.ok() || !on.ok()) {
    std::fprintf(stderr, "gate run failed\n");
    return 1;
  }
  double delta_pct =
      off->seconds > 0
          ? (on->seconds - off->seconds) / off->seconds * 100.0
          : 0.0;
  std::printf("metrics_off_seconds=%.6f\n", off->seconds);
  std::printf("metrics_on_seconds=%.6f\n", on->seconds);
  std::printf("metrics_overhead_pct=%.2f\n", delta_pct);
  if (delta_pct > allowed_pct) {
    std::fprintf(stderr,
                 "FAIL: metrics overhead %.2f%% exceeds the %.1f%% gate\n",
                 delta_pct, allowed_pct);
    return 1;
  }
  std::printf("ok: metrics overhead within %.1f%% gate\n", allowed_pct);
  return 0;
}

// Batch-vs-scalar throughput gate (ISSUE 3): the batched pipeline must
// beat the legacy scalar per-row pipeline by at least BATCH_GATE_X
// (default 1.2x) in rows/s on identical work. Both runs produce
// bit-identical bytes; only the pipeline differs.
int RunBatchGate(const pdgf::GenerationSession& session,
                 const pdgf::RowFormatter& formatter) {
  const char* env = std::getenv("BATCH_GATE_X");
  const double required = env != nullptr ? std::atof(env) : 1.2;
  const int repeats = 5;
  auto scalar =
      BestOfRuns(session, formatter, repeats, /*metrics=*/false,
                 /*scalar_pipeline=*/true);
  auto batch = BestOfRuns(session, formatter, repeats, /*metrics=*/false,
                          /*scalar_pipeline=*/false);
  if (!scalar.ok() || !batch.ok()) {
    std::fprintf(stderr, "gate run failed\n");
    return 1;
  }
  const double scalar_rps =
      scalar->seconds > 0
          ? static_cast<double>(scalar->rows) / scalar->seconds
          : 0.0;
  const double batch_rps =
      batch->seconds > 0 ? static_cast<double>(batch->rows) / batch->seconds
                         : 0.0;
  const double speedup = scalar_rps > 0 ? batch_rps / scalar_rps : 0.0;
  std::printf("scalar_rows_per_sec=%.0f\n", scalar_rps);
  std::printf("batch_rows_per_sec=%.0f\n", batch_rps);
  std::printf("batch_speedup_x=%.3f\n", speedup);
  if (speedup < required) {
    std::fprintf(stderr,
                 "FAIL: batch speedup %.3fx below the %.2fx gate\n",
                 speedup, required);
    return 1;
  }
  std::printf("ok: batch pipeline >= %.2fx scalar pipeline\n", required);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* scale_factor = "0.01";
  std::string json_path;
  bool quick = false;
  bool overhead_gate = false;
  bool batch_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--overhead-gate") == 0) {
      overhead_gate = true;
    } else if (std::strcmp(argv[i], "--batch-gate") == 0) {
      batch_gate = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      scale_factor = argv[i];
    }
  }

  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  pdgf::CsvFormatter formatter;
  {
    // Warm-up pass so lazy structures are built before timing.
    pdgf::GenerationOptions options;
    options.worker_count = 1;
    auto warmup = GenerateToNull(**session, formatter, options);
    if (!warmup.ok()) return 1;
  }

  if (overhead_gate) {
    return RunOverheadGate(**session, formatter);
  }
  if (batch_gate) {
    return RunBatchGate(**session, formatter);
  }

  pdgf::SimulatedMachine machine;  // 16 cores / 32 threads, the paper node

  std::printf("Figure 5: PDGF TPC-H scale-up (SF %s, simulated 16c/32t "
              "node)\n",
              scale_factor);
  std::printf("%8s %14s %10s\n", "workers", "throughput", "capacity");

  std::vector<int> worker_counts = {1,  2,  4,  8,  12, 15, 16, 17,
                                    20, 24, 28, 31, 32, 33, 40, 48};
  if (quick) worker_counts = {1, 2, 4};

  std::string scaleup_json;
  double total_busy_seconds = 0;
  for (int workers : worker_counts) {
    // Measure each worker lane's busy time: lane w generates the w-th of
    // `workers` shares of every table (exactly the rows that worker would
    // own under static partitioning).
    std::vector<double> lane_seconds;
    uint64_t bytes = 0;
    uint64_t rows = 0;
    for (int lane = 0; lane < workers; ++lane) {
      pdgf::GenerationOptions options;
      options.worker_count = 1;
      options.node_count = workers;  // reuse node partitioning per lane
      options.node_id = lane;
      options.work_package_rows = 5000;
      auto stats = GenerateToNull(**session, formatter, options);
      if (!stats.ok()) {
        std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
        return 1;
      }
      lane_seconds.push_back(stats->seconds);
      bytes += stats->bytes;
      rows += stats->rows;
    }
    // TPC-H shares are homogeneous, so work conservation (total busy
    // time over the machine capacity) estimates the wall clock; the
    // longest-lane lower bound of EstimateParallelWallClock is skipped
    // here because single-lane timing jitter on this 1-core container
    // would masquerade as load imbalance.
    double total_busy = 0;
    for (double lane : lane_seconds) total_busy += lane;
    total_busy_seconds += total_busy;
    double capacity = pdgf::EffectiveCapacity(machine, workers);
    double wall = total_busy / capacity;
    double throughput =
        static_cast<double>(bytes) / (1024.0 * 1024.0) / wall;
    std::printf("%8d %11.1f MB/s %10.2f\n", workers, throughput, capacity);
    if (!json_path.empty()) {
      if (!scaleup_json.empty()) scaleup_json += ",\n";
      char line[192];
      std::snprintf(line, sizeof(line),
                    "    {\"workers\": %d, \"throughput_mb_s\": %.3f, "
                    "\"rows_per_sec_batch\": %.0f, \"capacity\": %.3f}",
                    workers, throughput,
                    static_cast<double>(rows) / wall, capacity);
      scaleup_json += line;
    }
  }
  std::printf("total_busy_seconds=%.6f\n", total_busy_seconds);

  if (!json_path.empty()) {
    // Baseline: best-of-3 fully metered single-worker run, so future
    // perf PRs have per-phase numbers to beat (ISSUE 2 tentpole).
    auto baseline = BestOfRuns(**session, formatter, 3, /*metrics=*/true);
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
      return 1;
    }
    std::string json = "{\n";
    json += "  \"schema_version\": 1,\n";
    json += "  \"bench\": \"fig5_scaleup\",\n";
    json += "  \"scale_factor\": \"" + std::string(scale_factor) + "\",\n";
    json += "  \"baseline\": " + baseline->metrics.ToJson(false) + ",\n";
    json += "  \"scaleup\": [\n" + scaleup_json + "\n  ]\n}\n";
    pdgf::Status written = pdgf::WriteStringToFile(json_path, json);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("baseline written to %s\n", json_path.c_str());
  }

  std::printf("\npaper shape: linear to 16 cores, sub-linear to 32 HW "
              "threads, dips at exactly 16 and 32 workers, flat beyond\n");
  return 0;
}
