// Extension experiment — cost of computed references by chain depth.
//
// PDGF resolves a foreign key by *recomputing* the referenced field
// (paper §4/§6). When references chain (grandchild -> child -> parent),
// resolution recurses; this bench quantifies the per-level cost and shows
// it stays linear in depth — i.e. even deep dependency chains remain
// thousands of times cheaper than one disk read.

#include <benchmark/benchmark.h>

#include "core/generators/generators.h"
#include "core/session.h"

namespace {

using pdgf::DataType;
using pdgf::FieldDef;
using pdgf::GeneratorPtr;
using pdgf::SchemaDef;
using pdgf::TableDef;

// t0 has an Id column; t1 references t0; t2 references t1; ...
SchemaDef MakeChain(int depth) {
  SchemaDef schema;
  schema.name = "chain";
  schema.seed = 12;
  for (int level = 0; level <= depth; ++level) {
    TableDef table;
    table.name = "t" + std::to_string(level);
    table.size_expression = "100000";
    FieldDef field;
    field.name = "v" + std::to_string(level);
    field.type = DataType::kBigInt;
    if (level == 0) {
      field.generator = GeneratorPtr(new pdgf::IdGenerator());
    } else {
      field.generator = GeneratorPtr(new pdgf::DefaultReferenceGenerator(
          "t" + std::to_string(level - 1),
          "v" + std::to_string(level - 1)));
    }
    table.fields.push_back(std::move(field));
    schema.tables.push_back(std::move(table));
  }
  return schema;
}

void BM_ReferenceChain(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  SchemaDef schema = MakeChain(depth);
  auto session = pdgf::GenerationSession::Create(&schema);
  if (!session.ok()) {
    state.SkipWithError("session failed");
    return;
  }
  pdgf::Value value;
  uint64_t row = 0;
  for (auto _ : state) {
    (*session)->GenerateField(depth, 0, row % 100000, 0, &value);
    benchmark::DoNotOptimize(value);
    ++row;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReferenceChain)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
