// Extension experiment — data-skew variations of the Star Schema
// Benchmark (the paper's reference [19], implemented on PDGF): how the
// reference and value distributions of the lineorder fact table change
// across the uniform / skewed-references / skewed-values variants, and
// what that does to a Q1-style query's selectivity.
//
//   ./bench_ext_ssb_skew [SF]    (default 0.01)

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/session.h"
#include "dbsynth/virtual_table.h"
#include "workloads/ssb.h"

namespace {

const char* VariantName(workloads::SsbSkew skew) {
  switch (skew) {
    case workloads::SsbSkew::kUniform:
      return "uniform";
    case workloads::SsbSkew::kSkewedReferences:
      return "skewed-refs";
    case workloads::SsbSkew::kSkewedValues:
      return "skewed-vals";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const char* scale_factor = argc > 1 ? argv[1] : "0.01";
  std::printf("SSB skew variations [19] at SF %s\n\n", scale_factor);
  std::printf("%-12s %14s %14s %16s %14s\n", "variant", "top1_cust_%",
              "top10_cust_%", "disc_mode_share", "q1_rows_%");

  for (workloads::SsbSkew skew :
       {workloads::SsbSkew::kUniform,
        workloads::SsbSkew::kSkewedReferences,
        workloads::SsbSkew::kSkewedValues}) {
    pdgf::SchemaDef schema = workloads::BuildSsbSchema(skew);
    auto session =
        pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
    if (!session.ok()) {
      std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
      return 1;
    }
    int lineorder = schema.FindTableIndex("lineorder");
    int cust_field = schema.tables[static_cast<size_t>(lineorder)]
                         .FindFieldIndex("lo_custkey");
    int discount_field = schema.tables[static_cast<size_t>(lineorder)]
                             .FindFieldIndex("lo_discount");
    uint64_t rows = (*session)->TableRows(lineorder);

    std::map<int64_t, int> customer_counts;
    std::map<std::string, int> discount_counts;
    pdgf::Value value;
    for (uint64_t r = 0; r < rows; ++r) {
      (*session)->GenerateField(lineorder, cust_field, r, 0, &value);
      ++customer_counts[value.int_value()];
      (*session)->GenerateField(lineorder, discount_field, r, 0, &value);
      ++discount_counts[value.ToText()];
    }
    std::vector<int> customer_sorted;
    customer_sorted.reserve(customer_counts.size());
    for (const auto& [key, count] : customer_counts) {
      customer_sorted.push_back(count);
    }
    std::sort(customer_sorted.rbegin(), customer_sorted.rend());
    double top1 = customer_sorted.empty()
                      ? 0
                      : 100.0 * customer_sorted[0] / rows;
    double top10 = 0;
    for (size_t i = 0; i < customer_sorted.size() && i < 10; ++i) {
      top10 += customer_sorted[i];
    }
    top10 = 100.0 * top10 / rows;
    int discount_mode = 0;
    for (const auto& [key, count] : discount_counts) {
      discount_mode = std::max(discount_mode, count);
    }

    // SSB Q1.1's predicate selectivity under each variant.
    auto q1 = dbsynth::ExecuteQueryWithoutData(
        **session,
        "SELECT COUNT(*) FROM lineorder WHERE lo_discount BETWEEN 1 AND 3 "
        "AND lo_quantity < 25");
    double q1_share =
        q1.ok() ? 100.0 * q1->At(0, "count").AsDouble() / rows : -1;

    std::printf("%-12s %13.2f%% %13.2f%% %15.2f%% %13.2f%%\n",
                VariantName(skew), top1, top10,
                100.0 * discount_mode / rows, q1_share);
  }
  std::printf(
      "\nexpected: uniform spreads references evenly and Q1 selects "
      "~11%% (3/11 discounts x ~48%% quantities); skewed variants "
      "concentrate the fact table and shift selectivities\n");
  return 0;
}
