// Figure 4 — PDGF BigBench scale-out performance.
//
// Paper setup: a BigBench data set (SF 5000, 4.4 TB) generated on a
// 24-node shared-nothing cluster; throughput scales linearly in the node
// count and duration drops as 1/nodes.
//
// This harness reproduces the *shape* on one machine (DESIGN.md
// substitution S20): PDGF's meta-scheduler assigns each simulated node a
// contiguous share of every table; shares exchange no data, so each
// node's busy time is measured by actually generating its share
// (single-threaded, null sink) and the cluster wall clock is the slowest
// node. Throughput = total bytes / wall clock.
//
//   ./bench_fig4_scaleout [SF] [--quick] [--json FILE]
//
//   SF            scale factor (default 0.5)
//   --quick       node sweep {1,2,4} instead of the full figure
//   --json FILE   write a BENCH_scaleout.json baseline: best-of-3
//                 single-node engine run with full per-phase metrics
//                 plus the scale-out series, in the same shape as
//                 bench_fig5_scaleup --json (schema in docs/metrics.md)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/session.h"
#include "core/simcluster.h"
#include "util/files.h"
#include "util/stopwatch.h"
#include "workloads/bigbench.h"

namespace {

// Best-of-N single-worker metered run for the committed baseline (min
// wall clock damps scheduler noise on shared containers).
pdgf::StatusOr<pdgf::GenerationEngine::Stats> BestOfRuns(
    const pdgf::GenerationSession& session,
    const pdgf::RowFormatter& formatter, int repeats) {
  pdgf::GenerationEngine::Stats best;
  bool have_best = false;
  for (int i = 0; i < repeats; ++i) {
    pdgf::GenerationOptions options;
    options.worker_count = 1;
    options.work_package_rows = 5000;
    options.metrics_enabled = true;
    auto stats = GenerateToNull(session, formatter, options);
    if (!stats.ok()) return stats.status();
    if (!have_best || stats->seconds < best.seconds) {
      best = *stats;
      have_best = true;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* scale_factor = "0.5";
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      scale_factor = argv[i];
    }
  }
  pdgf::SchemaDef schema = workloads::BuildBigBenchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  pdgf::CsvFormatter formatter;

  // Warm-up: one full pass so lazy structures (Zipf tables, Markov
  // models) are built before timing starts.
  {
    pdgf::GenerationOptions options;
    options.worker_count = 1;
    auto warmup = GenerateToNull(**session, formatter, options);
    if (!warmup.ok()) return 1;
  }

  std::printf("Figure 4: PDGF BigBench scale-out (SF %s, simulated "
              "shared-nothing cluster)\n",
              scale_factor);
  std::printf("%6s %12s %14s %10s %12s\n", "nodes", "duration_s",
              "throughput", "speedup", "node_max_s");

  double total_mb = 0;
  double base_wall = 0;
  std::vector<int> node_counts = {1, 2, 4, 8, 12, 16, 20, 24};
  if (quick) node_counts = {1, 2, 4};
  std::string scaleout_json;
  for (int nodes : node_counts) {
    std::vector<double> node_seconds;
    uint64_t bytes = 0;
    for (int node = 0; node < nodes; ++node) {
      pdgf::GenerationOptions options;
      options.worker_count = 1;
      options.node_count = nodes;
      options.node_id = node;
      options.work_package_rows = 5000;
      auto stats = GenerateToNull(**session, formatter, options);
      if (!stats.ok()) {
        std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
        return 1;
      }
      node_seconds.push_back(stats->seconds);
      bytes += stats->bytes;
    }
    // Node shares are equal by construction, so the mean busy time is
    // the faithful per-node wall clock; single-run jitter on this 1-core
    // container would otherwise masquerade as cluster imbalance. The max
    // is printed alongside as a diagnostic.
    double total_busy = 0;
    for (double node : node_seconds) total_busy += node;
    double wall = total_busy / static_cast<double>(nodes);
    double slowest = pdgf::EstimateClusterWallClock(node_seconds);
    total_mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
    if (nodes == 1) base_wall = wall;
    std::printf("%6d %12.3f %11.1f MB/s %9.2fx %12.3f\n", nodes, wall,
                total_mb / wall, base_wall / wall, slowest);
    if (!json_path.empty()) {
      if (!scaleout_json.empty()) scaleout_json += ",\n";
      char line[192];
      std::snprintf(line, sizeof(line),
                    "    {\"nodes\": %d, \"duration_s\": %.3f, "
                    "\"throughput_mb_s\": %.3f, \"speedup_x\": %.3f, "
                    "\"node_max_s\": %.3f}",
                    nodes, wall, total_mb / wall, base_wall / wall,
                    slowest);
      scaleout_json += line;
    }
  }
  std::printf("\ntotal data set: %.1f MB per run; paper shape: linear "
              "throughput growth, duration ~ 1/nodes\n",
              total_mb);

  if (!json_path.empty()) {
    auto baseline = BestOfRuns(**session, formatter, 3);
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
      return 1;
    }
    std::string json = "{\n";
    json += "  \"schema_version\": 1,\n";
    json += "  \"bench\": \"fig4_scaleout\",\n";
    json += "  \"scale_factor\": \"" + std::string(scale_factor) + "\",\n";
    json += "  \"baseline\": " + baseline->metrics.ToJson(false) + ",\n";
    json += "  \"scaleout\": [\n" + scaleout_json + "\n  ]\n}\n";
    pdgf::Status written = pdgf::WriteStringToFile(json_path, json);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("baseline written to %s\n", json_path.c_str());
  }
  return 0;
}
