// Extension experiment — output-format cost at macro scale: the same
// TPC-H rows rendered as CSV, TSV, JSON, XML and SQL. Complements the
// Figure-9 microbenchmarks: formatting dominates value generation, and
// verbose formats pay proportionally to their byte volume.
//
//   ./bench_ext_formats [SF]    (default 0.005)

#include <cstdio>

#include "core/engine.h"
#include "core/session.h"
#include "workloads/tpch.h"

int main(int argc, char** argv) {
  const char* scale_factor = argc > 1 ? argv[1] : "0.005";
  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  // Warm-up.
  {
    pdgf::CsvFormatter formatter;
    pdgf::GenerationOptions options;
    auto warmup = GenerateToNull(**session, formatter, options);
    if (!warmup.ok()) return 1;
  }

  std::printf("Output formats over TPC-H SF %s (null sink, 1 worker)\n\n",
              scale_factor);
  std::printf("%6s %12s %12s %14s %14s\n", "format", "seconds", "MB",
              "MB/s", "Mrows/s");
  for (const char* name : {"csv", "tsv", "json", "xml", "sql"}) {
    auto formatter = pdgf::MakeFormatter(name);
    if (!formatter.ok()) return 1;
    pdgf::GenerationOptions options;
    options.worker_count = 1;
    auto stats = GenerateToNull(**session, **formatter, options);
    if (!stats.ok()) return 1;
    std::printf("%6s %12.3f %12.1f %14.1f %14.2f\n", name, stats->seconds,
                static_cast<double>(stats->bytes) / (1024 * 1024),
                stats->megabytes_per_second,
                static_cast<double>(stats->rows) / 1e6 / stats->seconds);
  }
  std::printf(
      "\nexpected: rows/s drops with format verbosity (JSON/XML emit "
      "field names per row); bytes/s stays in one band because "
      "formatting, not value computation, is the bottleneck\n");
  return 0;
}
