// Bulk-load fast path vs. row-at-a-time ingest (docs/minidb.md §bulk).
//
// Generates a TPC-H database at the given scale factor and loads it into
// MiniDB four ways:
//
//   heap/rows    Insert() per row into the in-memory heap engine
//   heap/bulk    BulkLoad* path into the heap engine (plain appends)
//   paged/rows   Insert() per row into the paged engine (WAL-logged)
//   paged/bulk   BulkLoad* path into the paged engine: sequential page
//                fills, WAL bypassed, PK indexes built bottom-up
//
// Every variant must produce byte-identical CSV digests — the harness
// exits non-zero on divergence, so it doubles as a cross-engine parity
// check on real generated data.
//
// usage: ./bench_load [SF] [--quick] [--json FILE] [--load-gate]
//
//   --json FILE    write the BENCH_load.json artifact
//   --load-gate    self-calibrated CI gate: the paged bulk path must
//                  reach LOAD_GATE_X (default 1.0) x the paged
//                  row-at-a-time throughput, measured interleaved on
//                  this machine. Exits non-zero when it does not.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/session.h"
#include "dbsynth/schema_translator.h"
#include "minidb/csv.h"
#include "minidb/database.h"
#include "util/files.h"
#include "util/hash.h"
#include "util/stopwatch.h"
#include "workloads/tpch.h"

namespace {

struct LoadResult {
  std::string label;
  minidb::EngineKind engine = minidb::EngineKind::kHeap;
  bool bulk = false;
  uint64_t rows = 0;
  double seconds = 0;           // best of N
  std::string digest;           // folded per-table CSV digests
};

// One load run: fresh database, load, digest, drop (dropping paged
// tables deletes their .pages/.wal files so repetitions start cold).
pdgf::StatusOr<LoadResult> RunOnce(const pdgf::GenerationSession& session,
                                   minidb::EngineKind kind, bool bulk,
                                   const std::string& data_dir) {
  LoadResult result;
  result.engine = kind;
  result.bulk = bulk;
  minidb::EngineConfig config;
  config.kind = kind;
  config.data_dir = data_dir;
  minidb::Database database(config);
  PDGF_RETURN_IF_ERROR(
      dbsynth::CreateTargetSchema(session.schema(), &database));
  pdgf::Stopwatch clock;
  PDGF_ASSIGN_OR_RETURN(
      result.rows, bulk ? dbsynth::FastLoadGeneratedData(session, &database)
                        : dbsynth::BulkLoadGeneratedData(session, &database));
  PDGF_RETURN_IF_ERROR(database.CheckpointAll());
  result.seconds = clock.ElapsedSeconds();
  // Fold the per-table CSV digests into one parity fingerprint.
  pdgf::Digest128 folded{};
  for (const std::string& name : database.TableNames()) {
    pdgf::Digest128 digest =
        pdgf::Hash128Bytes(minidb::TableToCsv(*database.GetTable(name)));
    folded.lo ^= digest.lo;
    folded.hi ^= digest.hi;
  }
  result.digest = folded.Hex();
  for (const std::string& name : database.TableNames()) {
    PDGF_RETURN_IF_ERROR(database.DropTable(name));
  }
  return result;
}

pdgf::StatusOr<LoadResult> RunBestOf(const pdgf::GenerationSession& session,
                                     const char* label,
                                     minidb::EngineKind kind, bool bulk,
                                     const std::string& data_dir,
                                     int repetitions) {
  LoadResult best;
  for (int i = 0; i < repetitions; ++i) {
    PDGF_ASSIGN_OR_RETURN(LoadResult run,
                          RunOnce(session, kind, bulk, data_dir));
    if (i == 0 || run.seconds < best.seconds) best = run;
  }
  best.label = label;
  return best;
}

double EnvGateFactor() {
  const char* env = std::getenv("LOAD_GATE_X");
  if (env == nullptr || *env == '\0') return 1.0;
  return std::atof(env);
}

}  // namespace

int main(int argc, char** argv) {
  const char* scale_factor = "0.01";
  std::string json_path;
  bool gate = false;
  int repetitions = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      repetitions = 1;
    } else if (std::strcmp(argv[i], "--load-gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (argv[i][0] != '-') {
      scale_factor = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [SF] [--quick] [--json FILE] [--load-gate]\n",
                   argv[0]);
      return 2;
    }
  }

  pdgf::SchemaDef schema = workloads::BuildTpchSchema();
  auto session =
      pdgf::GenerationSession::Create(&schema, {{"SF", scale_factor}});
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  auto data_dir = pdgf::MakeTempDir("bench_load_");
  if (!data_dir.ok()) {
    std::fprintf(stderr, "tempdir: %s\n",
                 data_dir.status().ToString().c_str());
    return 1;
  }
  // The loaded CSV volume is identical across variants; measure it once
  // from row-count x estimated row bytes for the MB/s columns.
  double total_mb = 0;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    total_mb += static_cast<double>(
                    (*session)->TableRows(static_cast<int>(t))) *
                (*session)->EstimateRowBytes(static_cast<int>(t)) /
                (1024.0 * 1024.0);
  }

  std::printf("MiniDB load paths, TPC-H SF %s (best of %d)\n\n",
              scale_factor, repetitions);
  struct Variant {
    const char* label;
    minidb::EngineKind kind;
    bool bulk;
  };
  // Interleaving note: the gate compares paged/rows vs paged/bulk from
  // the same process a few seconds apart; best-of-N already absorbs
  // scheduler noise at these run lengths.
  const Variant variants[] = {
      {"heap/rows", minidb::EngineKind::kHeap, false},
      {"heap/bulk", minidb::EngineKind::kHeap, true},
      {"paged/rows", minidb::EngineKind::kPaged, false},
      {"paged/bulk", minidb::EngineKind::kPaged, true},
  };
  std::vector<LoadResult> results;
  for (const Variant& variant : variants) {
    auto result = RunBestOf(**session, variant.label, variant.kind,
                            variant.bulk, *data_dir, repetitions);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", variant.label,
                   result.status().ToString().c_str());
      return 1;
    }
    results.push_back(*result);
    std::printf("  %-12s %10llu rows  %8.3f s  %9.0f rows/s  %7.1f MB/s\n",
                result->label.c_str(),
                static_cast<unsigned long long>(result->rows),
                result->seconds,
                static_cast<double>(result->rows) / result->seconds,
                total_mb / result->seconds);
  }

  // Parity: every variant's folded digest must match heap/rows.
  for (const LoadResult& result : results) {
    if (result.digest != results[0].digest) {
      std::printf("\nFAIL: %s digest %s != %s digest %s\n",
                  result.label.c_str(), result.digest.c_str(),
                  results[0].label.c_str(), results[0].digest.c_str());
      return 1;
    }
  }
  std::printf("\nparity ok: all variants digest to %s\n",
              results[0].digest.c_str());

  const LoadResult& paged_rows = results[2];
  const LoadResult& paged_bulk = results[3];
  double speedup = paged_rows.seconds / paged_bulk.seconds;
  std::printf("paged bulk speedup over row-at-a-time: %.2fx\n", speedup);

  if (!json_path.empty()) {
    std::string json = "{\n";
    json += "  \"schema_version\": 1,\n";
    json += "  \"bench\": \"bench_load\",\n";
    json += "  \"scale_factor\": \"" + std::string(scale_factor) + "\",\n";
    json += "  \"repetitions\": " + std::to_string(repetitions) + ",\n";
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "  \"paged_bulk_speedup_x\": %.3f,\n", speedup);
    json += buffer;
    json += "  \"variants\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const LoadResult& result = results[i];
      std::snprintf(
          buffer, sizeof(buffer),
          "    {\"name\": \"%s\", \"rows\": %llu, \"seconds\": %.6f, "
          "\"rows_per_second\": %.0f, \"mb_per_second\": %.2f, "
          "\"digest\": \"%s\"}%s\n",
          result.label.c_str(),
          static_cast<unsigned long long>(result.rows), result.seconds,
          static_cast<double>(result.rows) / result.seconds,
          total_mb / result.seconds, result.digest.c_str(),
          i + 1 < results.size() ? "," : "");
      json += buffer;
    }
    json += "  ]\n}\n";
    pdgf::Status written = pdgf::WriteStringToFile(json_path, json);
    if (!written.ok()) {
      std::fprintf(stderr, "write %s: %s\n", json_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("baseline written to %s\n", json_path.c_str());
  }

  if (gate) {
    double factor = EnvGateFactor();
    if (speedup < factor) {
      std::printf(
          "\nGATE FAILED: paged bulk is %.2fx row-at-a-time, needs >= "
          "%.2fx (LOAD_GATE_X)\n",
          speedup, factor);
      return 1;
    }
    std::printf("gate ok: paged bulk %.2fx >= %.2fx row-at-a-time\n",
                speedup, factor);
  }
  return 0;
}
