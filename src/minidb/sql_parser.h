#ifndef DBSYNTHPP_MINIDB_SQL_PARSER_H_
#define DBSYNTHPP_MINIDB_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "minidb/sql_ast.h"

namespace minidb {

// Parses one SQL statement (an optional trailing ';' is accepted).
pdgf::StatusOr<Statement> ParseSql(std::string_view sql);

// Parses a ';'-separated script into statements; empty statements are
// skipped.
pdgf::StatusOr<std::vector<Statement>> ParseSqlScript(std::string_view sql);

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_SQL_PARSER_H_
