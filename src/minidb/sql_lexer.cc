#include "minidb/sql_lexer.h"

#include <cctype>

namespace minidb {

pdgf::StatusOr<std::vector<Token>> LexSql(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          Token{TokenKind::kIdentifier,
                std::string(sql.substr(start, i - start)), start});
      continue;
    }
    // Quoted identifiers.
    if (c == '"') {
      ++i;
      std::string text;
      while (i < sql.size() && sql[i] != '"') {
        text.push_back(sql[i]);
        ++i;
      }
      if (i >= sql.size()) {
        return pdgf::ParseError("unterminated quoted identifier");
      }
      ++i;
      tokens.push_back(Token{TokenKind::kIdentifier, std::move(text), start});
      continue;
    }
    // Numbers (including leading '.', exponents, and signs are handled by
    // the parser as unary minus).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
              ((sql[i] == '+' || sql[i] == '-') && i > start &&
               (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        ++i;
      }
      tokens.push_back(Token{TokenKind::kNumber,
                             std::string(sql.substr(start, i - start)),
                             start});
      continue;
    }
    // String literals with '' escaping.
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (i >= sql.size()) {
        return pdgf::ParseError("unterminated string literal");
      }
      ++i;
      tokens.push_back(Token{TokenKind::kString, std::move(text), start});
      continue;
    }
    // Multi-char operators.
    if (c == '<' || c == '>' || c == '!') {
      std::string text(1, c);
      if (i + 1 < sql.size() &&
          (sql[i + 1] == '=' || (c == '<' && sql[i + 1] == '>'))) {
        text.push_back(sql[i + 1]);
        i += 2;
      } else {
        ++i;
      }
      tokens.push_back(Token{TokenKind::kSymbol, std::move(text), start});
      continue;
    }
    // Single-char symbols.
    if (c == '(' || c == ')' || c == ',' || c == ';' || c == '*' ||
        c == '=' || c == '.' || c == '-' || c == '+' || c == '/') {
      tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return pdgf::ParseError(std::string("unexpected character '") + c +
                            "' in SQL at offset " + std::to_string(i));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", sql.size()});
  return tokens;
}

}  // namespace minidb
