#ifndef DBSYNTHPP_MINIDB_TABLE_H_
#define DBSYNTHPP_MINIDB_TABLE_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "minidb/catalog.h"

namespace minidb {

using Row = std::vector<pdgf::Value>;

// Coerces `value` to the storage representation of `column` (int widths
// collapse to kInt, FLOAT to kDouble, DECIMAL rescaled to the column
// scale, CHAR padded semantics are left to clients). Returns an error on
// incompatible kinds or NOT NULL violations.
pdgf::StatusOr<pdgf::Value> CoerceValue(const ColumnDef& column,
                                        const pdgf::Value& value);

// Row storage for one table: an append-only heap of typed rows.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }

  size_t row_count() const { return rows_.size(); }

  // Validates arity, NOT NULL constraints and type-coerces each cell.
  pdgf::Status Insert(Row row);
  // Appends without validation (bulk load fast path; caller guarantees
  // rows are already coerced).
  void InsertUnchecked(Row row) { rows_.push_back(std::move(row)); }

  const Row& row(size_t index) const { return rows_[index]; }
  // Mutable access for UPDATE execution. Callers must keep the schema's
  // invariants (use CoerceValue for assigned cells).
  Row* MutableRow(size_t index) { return &rows_[index]; }
  // Removes the rows at `sorted_indices` (ascending, in-range).
  void EraseRows(const std::vector<size_t>& sorted_indices);

  // Invokes `visitor` for each row; stops early when it returns false.
  void Scan(const std::function<bool(const Row&)>& visitor) const;

  void Clear() { rows_.clear(); }
  void Reserve(size_t rows) { rows_.reserve(rows); }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
};

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_TABLE_H_
