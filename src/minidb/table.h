#ifndef DBSYNTHPP_MINIDB_TABLE_H_
#define DBSYNTHPP_MINIDB_TABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "minidb/catalog.h"
#include "minidb/storage/engine.h"

namespace minidb {

// Coerces `value` to the storage representation of `column` (int widths
// collapse to kInt, FLOAT to kDouble, DECIMAL rescaled to the column
// scale, CHAR padded semantics are left to clients). Returns an error on
// incompatible kinds or NOT NULL violations.
pdgf::StatusOr<pdgf::Value> CoerceValue(const ColumnDef& column,
                                        const pdgf::Value& value);

// One table: schema plus a row-storage engine. The default engine is the
// in-memory heap; Database wires in the paged (durable) engine when
// configured. Either way, rows are addressed by logical ordinal and
// scans visit insertion order, so the two engines produce byte-identical
// CSV dumps and digests.
class Table {
 public:
  explicit Table(TableSchema schema)
      : schema_(std::move(schema)),
        engine_(std::make_unique<storage::HeapEngine>()) {}
  Table(TableSchema schema, std::unique_ptr<storage::TableEngine> engine)
      : schema_(std::move(schema)), engine_(std::move(engine)) {}

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }

  size_t row_count() const { return engine_->row_count(); }

  // Validates arity, NOT NULL constraints and type-coerces each cell.
  pdgf::Status Insert(Row row);
  // Appends without validation (bulk/CSV fast path; caller guarantees
  // rows are already coerced to storage kinds).
  pdgf::Status InsertUnchecked(Row row) {
    return engine_->Append(std::move(row));
  }

  // The row at `index` (< row_count). For engines without stable row
  // references the bytes land in a per-table scratch row, so the
  // reference is only valid until the next row()/Scan call on this
  // table.
  const Row& row(size_t index) const;

  // Copies the row at `ordinal` into `out`.
  pdgf::Status ReadRow(size_t ordinal, Row* out) const {
    return engine_->ReadRow(ordinal, out);
  }
  // Replaces the row at `ordinal`. Cells must already be coerced (use
  // CoerceValue for assigned cells — UPDATE execution does).
  pdgf::Status WriteRow(size_t ordinal, const Row& row) {
    return engine_->WriteRow(ordinal, row);
  }
  // Removes the rows at `sorted_ordinals` (ascending, in-range).
  pdgf::Status EraseRows(const std::vector<size_t>& sorted_ordinals) {
    return engine_->EraseRows(sorted_ordinals);
  }

  // Invokes `visitor` for each row; stops early when it returns false.
  // Storage errors end the scan early (durable engines surface them
  // through explicit ReadRow/Checkpoint calls instead).
  void Scan(const std::function<bool(const Row&)>& visitor) const {
    (void)engine_->Scan(visitor);
  }

  pdgf::Status Clear() { return engine_->Clear(); }
  void Reserve(size_t rows) { engine_->Reserve(rows); }

  // Flushes a durable engine's state to disk (no-op for the heap).
  pdgf::Status Checkpoint() { return engine_->Checkpoint(); }

  // ---- Primary-key point lookups ----

  // The column ordinal a storage engine can index: a single-column
  // integer-family (SMALLINT/INTEGER/BIGINT/DATE) primary key. -1 when
  // the schema has no such key.
  static int IndexableKeyColumn(const TableSchema& schema);

  bool HasPkIndex() const { return engine_->HasPkIndex(); }
  // Appends every row whose PK equals `key` to `rows`.
  pdgf::Status PkLookup(int64_t key, std::vector<Row>* rows) const {
    return engine_->PkLookup(key, rows);
  }

  // ---- Bulk-load fast path ----
  // Streams pre-coerced rows through the engine's cheapest insert path
  // (sequential page fills, WAL bypassed, index built at Finish). The
  // heap engine degrades to plain appends.
  pdgf::Status BulkLoadBegin() { return engine_->BulkLoadBegin(); }
  pdgf::Status BulkLoadAppend(Row row) {
    return engine_->BulkLoadAppend(std::move(row));
  }
  pdgf::Status BulkLoadFinish() { return engine_->BulkLoadFinish(); }

  storage::TableEngine* engine() { return engine_.get(); }
  const storage::TableEngine* engine() const { return engine_.get(); }

 private:
  TableSchema schema_;
  std::unique_ptr<storage::TableEngine> engine_;
  mutable Row scratch_;  // row() fallback for paged engines
};

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_TABLE_H_
