#include "minidb/sql.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>

#include "minidb/sql_parser.h"
#include "util/strings.h"

namespace minidb {

using pdgf::Status;
using pdgf::StatusOr;
using pdgf::Value;

namespace {

// Feeds pre-materialized rows (index point-lookup hits) through the
// SELECT pipeline.
class VectorRowSource final : public RowSource {
 public:
  VectorRowSource(const TableSchema* schema, const std::vector<Row>* rows)
      : schema_(schema), rows_(rows) {}

  const TableSchema& schema() const override { return *schema_; }
  void Scan(
      const std::function<bool(const Row&)>& visitor) const override {
    for (const Row& row : *rows_) {
      if (!visitor(row)) return;
    }
  }

 private:
  const TableSchema* schema_;
  const std::vector<Row>* rows_;
};

// SELECT pipeline view over a virtual table's [first, last) row window.
class VirtualRowSource final : public RowSource {
 public:
  VirtualRowSource(const VirtualTable* table, uint64_t first, uint64_t last)
      : table_(table), first_(first), last_(last) {}

  const TableSchema& schema() const override { return table_->schema(); }
  void Scan(
      const std::function<bool(const Row&)>& visitor) const override {
    table_->ScanRange(first_, last_, visitor);
  }

 private:
  const VirtualTable* table_;
  uint64_t first_;
  uint64_t last_;
};

// Derives the inclusive key interval a condition implies for an integer
// primary-key column; false when the condition does not constrain it.
bool KeyIntervalFor(const ColumnDef& column, const Condition& condition,
                    int64_t* lo, int64_t* hi) {
  *lo = std::numeric_limits<int64_t>::min();
  *hi = std::numeric_limits<int64_t>::max();
  Value literal = condition.operand;
  StatusOr<Value> coerced = CoerceValue(column, literal);
  if (coerced.ok()) literal = *coerced;
  int64_t key;
  if (!storage::ExtractIndexKey(literal, &key)) return false;
  switch (condition.op) {
    case Condition::Op::kEq:
      *lo = *hi = key;
      return true;
    case Condition::Op::kLe:
      *hi = key;
      return true;
    case Condition::Op::kLt:
      if (key == std::numeric_limits<int64_t>::min()) return false;
      *hi = key - 1;
      return true;
    case Condition::Op::kGe:
      *lo = key;
      return true;
    case Condition::Op::kGt:
      if (key == std::numeric_limits<int64_t>::max()) return false;
      *lo = key + 1;
      return true;
    case Condition::Op::kBetween: {
      Value upper = condition.operand2;
      StatusOr<Value> coerced_upper = CoerceValue(column, upper);
      if (coerced_upper.ok()) upper = *coerced_upper;
      int64_t upper_key;
      if (!storage::ExtractIndexKey(upper, &upper_key)) return false;
      *lo = key;
      *hi = upper_key;
      return true;
    }
    default:
      return false;
  }
}

// Evaluates one condition against a row; `index` is the pre-resolved
// column position of condition.column.
StatusOr<bool> EvalCondition(const TableSchema& schema, const Row& row,
                             const Condition& condition, int index) {
  const Value& value = row[static_cast<size_t>(index)];
  switch (condition.op) {
    case Condition::Op::kIsNull:
      return value.is_null();
    case Condition::Op::kIsNotNull:
      return !value.is_null();
    default:
      break;
  }
  if (value.is_null()) return false;  // SQL three-valued logic: unknown
  // Coerce the literal to the column type for sane comparisons
  // (e.g. date strings against DATE columns).
  const ColumnDef& column = schema.columns[static_cast<size_t>(index)];
  Value literal = condition.operand;
  StatusOr<Value> coerced = CoerceValue(column, literal);
  if (coerced.ok()) literal = *coerced;
  switch (condition.op) {
    case Condition::Op::kEq:
      return value.Compare(literal) == 0;
    case Condition::Op::kNe:
      return value.Compare(literal) != 0;
    case Condition::Op::kLt:
      return value.Compare(literal) < 0;
    case Condition::Op::kLe:
      return value.Compare(literal) <= 0;
    case Condition::Op::kGt:
      return value.Compare(literal) > 0;
    case Condition::Op::kGe:
      return value.Compare(literal) >= 0;
    case Condition::Op::kBetween: {
      Value upper = condition.operand2;
      StatusOr<Value> coerced_upper = CoerceValue(column, upper);
      if (coerced_upper.ok()) upper = *coerced_upper;
      return value.Compare(literal) >= 0 && value.Compare(upper) <= 0;
    }
    case Condition::Op::kLike:
    case Condition::Op::kNotLike: {
      if (condition.operand.kind() != Value::Kind::kString) {
        return pdgf::InvalidArgumentError("LIKE pattern must be a string");
      }
      std::string text = value.kind() == Value::Kind::kString
                             ? value.string_value()
                             : value.ToText();
      bool match = LikeMatch(text, condition.operand.string_value());
      return condition.op == Condition::Op::kLike ? match : !match;
    }
    case Condition::Op::kIsNull:
    case Condition::Op::kIsNotNull:
      break;  // handled above
  }
  return false;
}

// Accumulates one aggregate over a group.
struct AggregateState {
  uint64_t count = 0;
  double sum = 0;
  bool has_value = false;
  Value min;
  Value max;
  std::unordered_set<uint64_t> distinct_hashes;

  void Accumulate(const SelectItem& item, const Row& row, int column_index) {
    if (item.count_star) {
      ++count;
      return;
    }
    const Value& value = row[static_cast<size_t>(column_index)];
    if (value.is_null()) return;  // SQL aggregates skip NULLs
    if (item.distinct) {
      if (!distinct_hashes.insert(value.Hash()).second) return;
    }
    ++count;
    sum += value.AsDouble();
    if (!has_value || value.Compare(min) < 0) min = value;
    if (!has_value || value.Compare(max) > 0) max = value;
    has_value = true;
  }

  Value Result(const SelectItem& item) const {
    switch (item.aggregate) {
      case AggregateFunction::kCount:
        return Value::Int(static_cast<int64_t>(count));
      case AggregateFunction::kSum:
        return has_value ? Value::Double(sum) : Value::Null();
      case AggregateFunction::kAvg:
        return has_value
                   ? Value::Double(sum / static_cast<double>(count))
                   : Value::Null();
      case AggregateFunction::kMin:
        return has_value ? min : Value::Null();
      case AggregateFunction::kMax:
        return has_value ? max : Value::Null();
      case AggregateFunction::kNone:
        break;
    }
    return Value::Null();
  }
};

StatusOr<ResultSet> ExecuteSelectImpl(const RowSource& source,
                                      const SelectStatement& statement) {
  const TableSchema& schema = source.schema();

  bool any_aggregate = false;
  for (const SelectItem& item : statement.items) {
    if (item.aggregate != AggregateFunction::kNone) any_aggregate = true;
  }
  bool grouped = !statement.group_by.empty();
  if (grouped && !any_aggregate) {
    return pdgf::InvalidArgumentError(
        "GROUP BY requires aggregate select items");
  }

  // Expand '*' and resolve column indices.
  std::vector<SelectItem> items;
  for (const SelectItem& item : statement.items) {
    if (item.star) {
      if (any_aggregate) {
        return pdgf::InvalidArgumentError("cannot mix * with aggregates");
      }
      for (const ColumnDef& column : schema.columns) {
        SelectItem expanded;
        expanded.column = column.name;
        items.push_back(std::move(expanded));
      }
    } else {
      items.push_back(item);
    }
  }
  std::vector<int> item_columns(items.size(), -1);
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].count_star) continue;
    item_columns[i] = schema.FindColumn(items[i].column);
    if (item_columns[i] < 0) {
      return pdgf::NotFoundError("unknown column '" + items[i].column + "'");
    }
    if (grouped && items[i].aggregate == AggregateFunction::kNone &&
        !pdgf::EqualsIgnoreCase(items[i].column, statement.group_by)) {
      return pdgf::InvalidArgumentError(
          "non-aggregate select item '" + items[i].column +
          "' must be the GROUP BY column");
    }
  }
  int group_column = -1;
  if (grouped) {
    group_column = schema.FindColumn(statement.group_by);
    if (group_column < 0) {
      return pdgf::NotFoundError("unknown GROUP BY column '" +
                                 statement.group_by + "'");
    }
  }

  ResultSet result;
  for (const SelectItem& item : items) {
    result.columns.push_back(item.DisplayName());
  }

  // Resolve WHERE columns once; FindColumn in the per-row path would
  // dominate scan cost.
  std::vector<int> condition_columns(statement.conditions.size());
  for (size_t i = 0; i < statement.conditions.size(); ++i) {
    condition_columns[i] =
        schema.FindColumn(statement.conditions[i].column);
    if (condition_columns[i] < 0) {
      return pdgf::NotFoundError("unknown column '" +
                                 statement.conditions[i].column +
                                 "' in WHERE");
    }
  }

  // ORDER BY may name a table column absent from the projection; carry it
  // as a hidden trailing column and strip it after sorting.
  bool hidden_order_column = false;
  if (!statement.order_by.empty() && !any_aggregate) {
    bool in_output = false;
    for (size_t i = 0; i < items.size(); ++i) {
      if (pdgf::EqualsIgnoreCase(result.columns[i], statement.order_by) ||
          pdgf::EqualsIgnoreCase(items[i].column, statement.order_by)) {
        in_output = true;
        break;
      }
    }
    if (!in_output) {
      int column = schema.FindColumn(statement.order_by);
      if (column < 0) {
        return pdgf::NotFoundError("unknown ORDER BY column '" +
                                   statement.order_by + "'");
      }
      SelectItem hidden;
      hidden.column = statement.order_by;
      items.push_back(std::move(hidden));
      item_columns.push_back(column);
      hidden_order_column = true;
    }
  }

  // Scan with filtering.
  Status scan_error;
  if (!any_aggregate) {
    source.Scan([&](const Row& row) {
      for (size_t ci = 0; ci < statement.conditions.size(); ++ci) {
        StatusOr<bool> match = EvalCondition(
            schema, row, statement.conditions[ci], condition_columns[ci]);
        if (!match.ok()) {
          scan_error = match.status();
          return false;
        }
        if (!*match) return true;
      }
      Row out;
      out.reserve(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        out.push_back(row[static_cast<size_t>(item_columns[i])]);
      }
      result.rows.push_back(std::move(out));
      // Fast path: ORDER BY absent and LIMIT reached.
      if (statement.order_by.empty() && statement.limit >= 0 &&
          result.rows.size() >= static_cast<size_t>(statement.limit)) {
        return false;
      }
      return true;
    });
    if (!scan_error.ok()) return scan_error;
  } else {
    // Aggregation, optionally grouped. Group keys keep first-seen order.
    std::map<std::string, size_t> group_index;
    std::vector<Value> group_keys;
    std::vector<std::vector<AggregateState>> groups;
    if (!grouped) {
      // Global aggregation: one pre-allocated group, no keying per row.
      groups.emplace_back(items.size());
      group_keys.push_back(Value::Null());
    }
    auto group_for = [&](const Row& row) -> std::vector<AggregateState>& {
      if (!grouped) return groups[0];
      const Value& value = row[static_cast<size_t>(group_column)];
      std::string key = value.is_null() ? "\x01NULL" : value.ToText();
      if (value.kind() == Value::Kind::kString) key.insert(0, "s:");
      auto it = group_index.find(key);
      if (it == group_index.end()) {
        it = group_index.emplace(std::move(key), groups.size()).first;
        groups.emplace_back(items.size());
        group_keys.push_back(value);
      }
      return groups[it->second];
    };
    source.Scan([&](const Row& row) {
      for (size_t ci = 0; ci < statement.conditions.size(); ++ci) {
        StatusOr<bool> match = EvalCondition(
            schema, row, statement.conditions[ci], condition_columns[ci]);
        if (!match.ok()) {
          scan_error = match.status();
          return false;
        }
        if (!*match) return true;
      }
      std::vector<AggregateState>& states = group_for(row);
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].aggregate != AggregateFunction::kNone) {
          states[i].Accumulate(items[i], row, item_columns[i]);
        }
      }
      return true;
    });
    if (!scan_error.ok()) return scan_error;
    if (groups.empty() && !grouped) {
      // Global aggregate over an empty input still yields one row.
      groups.emplace_back(items.size());
      group_keys.push_back(Value::Null());
    }
    for (size_t g = 0; g < groups.size(); ++g) {
      Row out;
      out.reserve(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].aggregate == AggregateFunction::kNone) {
          out.push_back(group_keys[g]);
        } else {
          out.push_back(groups[g][i].Result(items[i]));
        }
      }
      result.rows.push_back(std::move(out));
    }
  }

  // ORDER BY an output column (or the hidden trailing sort column).
  if (!statement.order_by.empty()) {
    int order_index = -1;
    if (hidden_order_column) {
      order_index = static_cast<int>(items.size()) - 1;
    }
    for (size_t i = 0;
         order_index < 0 && i < result.columns.size(); ++i) {
      if (pdgf::EqualsIgnoreCase(result.columns[i], statement.order_by) ||
          (i < items.size() &&
           pdgf::EqualsIgnoreCase(items[i].column, statement.order_by))) {
        order_index = static_cast<int>(i);
        break;
      }
    }
    if (order_index < 0) {
      return pdgf::NotFoundError("unknown ORDER BY column '" +
                                 statement.order_by + "'");
    }
    bool desc = statement.order_desc;
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [order_index, desc](const Row& a, const Row& b) {
                       int cmp = a[static_cast<size_t>(order_index)].Compare(
                           b[static_cast<size_t>(order_index)]);
                       return desc ? cmp > 0 : cmp < 0;
                     });
  }
  if (statement.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(statement.limit)) {
    result.rows.resize(static_cast<size_t>(statement.limit));
  }
  if (hidden_order_column) {
    for (Row& row : result.rows) {
      row.pop_back();
    }
  }
  return result;
}

}  // namespace

std::string SelectItem::DisplayName() const {
  if (!alias.empty()) return alias;
  switch (aggregate) {
    case AggregateFunction::kNone:
      return column;
    case AggregateFunction::kCount:
      if (count_star) return "count";
      return distinct ? "count_distinct_" + column : "count_" + column;
    case AggregateFunction::kSum:
      return "sum_" + column;
    case AggregateFunction::kAvg:
      return "avg_" + column;
    case AggregateFunction::kMin:
      return "min_" + column;
    case AggregateFunction::kMax:
      return "max_" + column;
  }
  return column;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative matcher with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string ResultSet::ToString() const {
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> rendered;
  for (size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].size();
  }
  for (const Row& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size() && i < columns.size(); ++i) {
      std::string text = row[i].is_null() ? "NULL" : row[i].ToText();
      widths[i] = std::max(widths[i], text.size());
      line.push_back(std::move(text));
    }
    rendered.push_back(std::move(line));
  }
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    out += pdgf::StrPrintf("%-*s", static_cast<int>(widths[i]) + 2,
                           columns[i].c_str());
  }
  out.push_back('\n');
  for (const auto& line : rendered) {
    for (size_t i = 0; i < line.size(); ++i) {
      out += pdgf::StrPrintf("%-*s", static_cast<int>(widths[i]) + 2,
                             line[i].c_str());
    }
    out.push_back('\n');
  }
  return out;
}

pdgf::Value ResultSet::At(size_t row, std::string_view column) const {
  if (row >= rows.size()) return Value::Null();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (pdgf::EqualsIgnoreCase(columns[i], column)) {
      return i < rows[row].size() ? rows[row][i] : Value::Null();
    }
  }
  return Value::Null();
}

pdgf::StatusOr<ResultSet> ExecuteSelectOnSource(
    const RowSource& source, const SelectStatement& statement) {
  return ExecuteSelectImpl(source, statement);
}

pdgf::StatusOr<ResultSet> ExecuteSelectOnVirtualTable(
    const VirtualTable& table, const SelectStatement& statement) {
  const TableSchema& schema = table.schema();
  uint64_t first = 0;
  uint64_t last = table.row_count();
  // PK-predicate pushdown: every condition on the single integer primary
  // key that the module can invert narrows the generated window — a
  // point query against a never-materialized SF-1000 table touches one
  // row. Conditions still run per scanned row, so semantics match a full
  // scan exactly; an uninvertible module just scans [0, row_count).
  const int pk_column = Table::IndexableKeyColumn(schema);
  if (pk_column >= 0) {
    for (const Condition& condition : statement.conditions) {
      if (schema.FindColumn(condition.column) != pk_column) continue;
      int64_t lo, hi;
      if (!KeyIntervalFor(schema.columns[static_cast<size_t>(pk_column)],
                          condition, &lo, &hi)) {
        continue;
      }
      uint64_t condition_first = 0;
      uint64_t condition_last = 0;
      if (!table.KeyRangeToRows(lo, hi, &condition_first, &condition_last)) {
        continue;
      }
      if (condition_first > first) first = condition_first;
      if (condition_last < last) last = condition_last;
    }
    if (first > last) first = last;
  }
  VirtualRowSource source(&table, first, last);
  return ExecuteSelectImpl(source, statement);
}

pdgf::StatusOr<ResultSet> ExecuteSqlOnSource(const RowSource& source,
                                             std::string_view sql) {
  PDGF_ASSIGN_OR_RETURN(Statement statement, ParseSql(sql));
  const auto* select = std::get_if<SelectStatement>(&statement);
  if (select == nullptr) {
    return pdgf::InvalidArgumentError(
        "only SELECT statements can run on a row source");
  }
  return ExecuteSelectImpl(source, *select);
}

pdgf::StatusOr<ResultSet> ExecuteStatement(Database* database,
                                           const Statement& statement) {
  ResultSet result;
  if (const auto* create = std::get_if<CreateTableStatement>(&statement)) {
    PDGF_RETURN_IF_ERROR(database->CreateTable(create->schema));
    return result;
  }
  if (const auto* create_virtual =
          std::get_if<CreateVirtualTableStatement>(&statement)) {
    PDGF_RETURN_IF_ERROR(database->CreateVirtualTable(
        create_virtual->table, create_virtual->module, create_virtual->args));
    return result;
  }
  if (const auto* drop = std::get_if<DropTableStatement>(&statement)) {
    PDGF_RETURN_IF_ERROR(database->DropTable(drop->table));
    return result;
  }
  if (const auto* insert = std::get_if<InsertStatement>(&statement)) {
    Table* table = database->GetTable(insert->table);
    if (table == nullptr) {
      if (database->GetVirtualTable(insert->table) != nullptr) {
        return pdgf::InvalidArgumentError("virtual table '" + insert->table +
                                          "' is read-only");
      }
      return pdgf::NotFoundError("table '" + insert->table +
                                 "' does not exist");
    }
    for (const std::vector<Value>& row : insert->rows) {
      PDGF_RETURN_IF_ERROR(table->Insert(row));
    }
    result.affected_rows = insert->rows.size();
    return result;
  }
  if (const auto* update = std::get_if<UpdateStatement>(&statement)) {
    Table* table = database->GetTable(update->table);
    if (table == nullptr) {
      if (database->GetVirtualTable(update->table) != nullptr) {
        return pdgf::InvalidArgumentError("virtual table '" + update->table +
                                          "' is read-only");
      }
      return pdgf::NotFoundError("table '" + update->table +
                                 "' does not exist");
    }
    const TableSchema& schema = table->schema();
    // Resolve SET targets and coerce the assigned literals once.
    std::vector<int> set_columns(update->columns.size());
    std::vector<Value> set_values(update->values.size());
    for (size_t i = 0; i < update->columns.size(); ++i) {
      set_columns[i] = schema.FindColumn(update->columns[i]);
      if (set_columns[i] < 0) {
        return pdgf::NotFoundError("unknown column '" + update->columns[i] +
                                   "' in SET");
      }
      PDGF_ASSIGN_OR_RETURN(
          set_values[i],
          CoerceValue(schema.columns[static_cast<size_t>(set_columns[i])],
                      update->values[i]));
    }
    std::vector<int> condition_columns(update->conditions.size());
    for (size_t i = 0; i < update->conditions.size(); ++i) {
      condition_columns[i] =
          schema.FindColumn(update->conditions[i].column);
      if (condition_columns[i] < 0) {
        return pdgf::NotFoundError("unknown column '" +
                                   update->conditions[i].column +
                                   "' in WHERE");
      }
    }
    // Read-modify-write per ordinal: works identically for the heap and
    // the paged engine (which may relocate a grown record — the row
    // keeps its ordinal, so scan order is unchanged).
    Row current;
    for (size_t r = 0; r < table->row_count(); ++r) {
      PDGF_RETURN_IF_ERROR(table->ReadRow(r, &current));
      bool matches = true;
      for (size_t ci = 0; ci < update->conditions.size() && matches; ++ci) {
        PDGF_ASSIGN_OR_RETURN(
            matches, EvalCondition(schema, current, update->conditions[ci],
                                   condition_columns[ci]));
      }
      if (!matches) continue;
      for (size_t i = 0; i < set_columns.size(); ++i) {
        current[static_cast<size_t>(set_columns[i])] = set_values[i];
      }
      PDGF_RETURN_IF_ERROR(table->WriteRow(r, current));
      ++result.affected_rows;
    }
    return result;
  }
  if (const auto* erase = std::get_if<DeleteStatement>(&statement)) {
    Table* table = database->GetTable(erase->table);
    if (table == nullptr) {
      if (database->GetVirtualTable(erase->table) != nullptr) {
        return pdgf::InvalidArgumentError("virtual table '" + erase->table +
                                          "' is read-only");
      }
      return pdgf::NotFoundError("table '" + erase->table +
                                 "' does not exist");
    }
    const TableSchema& schema = table->schema();
    std::vector<int> condition_columns(erase->conditions.size());
    for (size_t i = 0; i < erase->conditions.size(); ++i) {
      condition_columns[i] = schema.FindColumn(erase->conditions[i].column);
      if (condition_columns[i] < 0) {
        return pdgf::NotFoundError("unknown column '" +
                                   erase->conditions[i].column +
                                   "' in WHERE");
      }
    }
    std::vector<size_t> doomed;
    Row current;
    for (size_t r = 0; r < table->row_count(); ++r) {
      PDGF_RETURN_IF_ERROR(table->ReadRow(r, &current));
      bool matches = true;
      for (size_t ci = 0; ci < erase->conditions.size() && matches; ++ci) {
        PDGF_ASSIGN_OR_RETURN(
            matches, EvalCondition(schema, current, erase->conditions[ci],
                                   condition_columns[ci]));
      }
      if (matches) doomed.push_back(r);
    }
    PDGF_RETURN_IF_ERROR(table->EraseRows(doomed));
    result.affected_rows = doomed.size();
    return result;
  }
  if (const auto* select = std::get_if<SelectStatement>(&statement)) {
    const Table* table = database->GetTable(select->table);
    if (table == nullptr) {
      const VirtualTable* virtual_table =
          database->GetVirtualTable(select->table);
      if (virtual_table != nullptr) {
        return ExecuteSelectOnVirtualTable(*virtual_table, *select);
      }
      return pdgf::NotFoundError("table '" + select->table +
                                 "' does not exist");
    }
    // Point-lookup fast path: an equality condition on an indexed
    // primary key resolves through the B+ tree instead of a full scan.
    // The matched rows still run through the normal SELECT pipeline
    // (projection, remaining conditions, aggregates), so semantics are
    // unchanged; with more than one index hit (duplicate keys are legal
    // in the tree) we fall back to the scan to keep row order exact.
    if (table->HasPkIndex()) {
      int pk_column = Table::IndexableKeyColumn(table->schema());
      for (const Condition& condition : select->conditions) {
        if (condition.op != Condition::Op::kEq) continue;
        if (table->schema().FindColumn(condition.column) != pk_column) {
          continue;
        }
        StatusOr<Value> literal = CoerceValue(
            table->schema().columns[static_cast<size_t>(pk_column)],
            condition.operand);
        int64_t key;
        if (!literal.ok() ||
            !storage::ExtractIndexKey(*literal, &key)) {
          break;
        }
        std::vector<Row> matches;
        PDGF_RETURN_IF_ERROR(table->PkLookup(key, &matches));
        if (matches.size() > 1) break;
        VectorRowSource source(&table->schema(), &matches);
        return ExecuteSelectImpl(source, *select);
      }
    }
    TableRowSource source(table);
    return ExecuteSelectImpl(source, *select);
  }
  return pdgf::InternalError("unhandled statement kind");
}

pdgf::StatusOr<ResultSet> ExecuteSql(Database* database,
                                     std::string_view sql) {
  PDGF_ASSIGN_OR_RETURN(Statement statement, ParseSql(sql));
  return ExecuteStatement(database, statement);
}

pdgf::StatusOr<std::vector<ResultSet>> ExecuteSqlScript(
    Database* database, std::string_view sql) {
  PDGF_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                        ParseSqlScript(sql));
  std::vector<ResultSet> results;
  for (const Statement& statement : statements) {
    PDGF_ASSIGN_OR_RETURN(ResultSet result,
                          ExecuteStatement(database, statement));
    results.push_back(std::move(result));
  }
  return results;
}

std::string BuildCreateTableSql(const TableSchema& schema) {
  std::string sql = "CREATE TABLE " + schema.name + " (";
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    const ColumnDef& column = schema.columns[i];
    if (i > 0) sql += ", ";
    sql += column.name;
    sql.push_back(' ');
    sql += pdgf::DataTypeName(column.type);
    if (column.type == pdgf::DataType::kDecimal) {
      sql += pdgf::StrPrintf("(%d,%d)", column.size > 0 ? column.size : 15,
                             column.scale);
    } else if ((column.type == pdgf::DataType::kChar ||
                column.type == pdgf::DataType::kVarchar) &&
               column.size > 0) {
      sql += pdgf::StrPrintf("(%d)", column.size);
    }
    if (column.primary_key) {
      sql += " PRIMARY KEY";
    } else if (!column.nullable) {
      sql += " NOT NULL";
    }
    if (column.is_foreign_key()) {
      sql += " REFERENCES " + column.ref_table + "(" + column.ref_column + ")";
    }
  }
  sql += ")";
  return sql;
}

}  // namespace minidb
