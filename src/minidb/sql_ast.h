#ifndef DBSYNTHPP_MINIDB_SQL_AST_H_
#define DBSYNTHPP_MINIDB_SQL_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "common/value.h"
#include "minidb/catalog.h"

namespace minidb {

// Statement ASTs for the supported SQL subset:
//   CREATE TABLE t (col TYPE[(n[,s])] [NOT NULL] [PRIMARY KEY]
//                   [REFERENCES t2(c2)], ...)
//   CREATE VIRTUAL TABLE t USING module(arg[, arg...])
//   DROP TABLE t
//   INSERT INTO t VALUES (lit, ...)[, (lit, ...)]...
//   SELECT */items FROM t [WHERE cond [AND cond]...] [GROUP BY col]
//          [ORDER BY item [ASC|DESC]] [LIMIT n]
// with items: col | COUNT(*) | COUNT([DISTINCT] col) | SUM/AVG/MIN/MAX(col).

struct CreateTableStatement {
  TableSchema schema;
};

// CREATE VIRTUAL TABLE t USING module(arg[, arg...]) — a catalog entry
// whose rows a registered module computes on demand. Arguments are kept
// as raw texts (string quotes resolved); their meaning belongs to the
// module.
struct CreateVirtualTableStatement {
  std::string table;
  std::string module;
  std::vector<std::string> args;
};

struct DropTableStatement {
  std::string table;
};

struct InsertStatement {
  std::string table;
  std::vector<std::vector<pdgf::Value>> rows;
};

struct UpdateStatement {
  std::string table;
  // Parallel lists: SET column = literal assignments.
  std::vector<std::string> columns;
  std::vector<pdgf::Value> values;
  std::vector<struct Condition> conditions;  // conjunctive WHERE
};

struct DeleteStatement {
  std::string table;
  std::vector<struct Condition> conditions;
};

enum class AggregateFunction { kNone, kCount, kSum, kAvg, kMin, kMax };

struct SelectItem {
  bool star = false;                // "*" (only without aggregates)
  AggregateFunction aggregate = AggregateFunction::kNone;
  bool count_star = false;          // COUNT(*)
  bool distinct = false;            // COUNT(DISTINCT col)
  std::string column;               // source column (when not star/count*)
  std::string alias;                // output name

  std::string DisplayName() const;
};

struct Condition {
  enum class Op {
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kIsNull,
    kIsNotNull,
    kBetween,
    kLike,
    kNotLike,
  };

  std::string column;
  Op op = Op::kEq;
  pdgf::Value operand;   // unused for IS [NOT] NULL
  pdgf::Value operand2;  // BETWEEN upper bound
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  std::vector<Condition> conditions;  // conjunctive
  std::string group_by;               // empty = none
  std::string order_by;               // output-column name; empty = none
  bool order_desc = false;
  int64_t limit = -1;                 // -1 = no limit
};

using Statement =
    std::variant<CreateTableStatement, CreateVirtualTableStatement,
                 DropTableStatement, InsertStatement, UpdateStatement,
                 DeleteStatement, SelectStatement>;

// Matches SQL LIKE patterns: '%' any run, '_' any single char.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_SQL_AST_H_
