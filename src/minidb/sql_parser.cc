#include "minidb/sql_parser.h"

#include <cstdlib>

#include "minidb/sql_lexer.h"
#include "util/strings.h"

namespace minidb {
namespace {

using pdgf::EqualsIgnoreCase;
using pdgf::Status;
using pdgf::StatusOr;
using pdgf::Value;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement() {
    if (IsKeyword("CREATE")) return ParseCreateTable();
    if (IsKeyword("DROP")) return ParseDropTable();
    if (IsKeyword("INSERT")) return ParseInsert();
    if (IsKeyword("UPDATE")) return ParseUpdate();
    if (IsKeyword("DELETE")) return ParseDelete();
    if (IsKeyword("SELECT")) return ParseSelect();
    return Error("expected CREATE, DROP, INSERT, UPDATE, DELETE or SELECT");
  }

  StatusOr<Statement> ParseFull() {
    PDGF_ASSIGN_OR_RETURN(Statement statement, ParseStatement());
    ConsumeSymbol(";");
    if (!AtEnd()) return Error("unexpected input after statement");
    return statement;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  bool AtEnd() const { return Current().kind == TokenKind::kEnd; }

  Status Error(const std::string& message) const {
    return pdgf::ParseError("SQL: " + message + " near '" + Current().text +
                            "' (offset " +
                            std::to_string(Current().offset) + ")");
  }

  bool IsKeyword(std::string_view keyword) const {
    return Current().kind == TokenKind::kIdentifier &&
           EqualsIgnoreCase(Current().text, keyword);
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (IsKeyword(keyword)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!ConsumeKeyword(keyword)) {
      return Error("expected " + std::string(keyword));
    }
    return Status::Ok();
  }

  bool IsSymbol(std::string_view symbol) const {
    return Current().kind == TokenKind::kSymbol && Current().text == symbol;
  }

  bool ConsumeSymbol(std::string_view symbol) {
    if (IsSymbol(symbol)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (!ConsumeSymbol(symbol)) {
      return Error("expected '" + std::string(symbol) + "'");
    }
    return Status::Ok();
  }

  StatusOr<std::string> ExpectIdentifier() {
    if (Current().kind != TokenKind::kIdentifier) {
      return Error("expected identifier");
    }
    std::string text = Current().text;
    ++pos_;
    return text;
  }

  // Parses a literal: number (optional unary minus), string, NULL,
  // TRUE/FALSE, or DATE 'yyyy-mm-dd'.
  StatusOr<Value> ParseLiteral() {
    if (ConsumeKeyword("NULL")) return Value::Null();
    if (ConsumeKeyword("TRUE")) return Value::Bool(true);
    if (ConsumeKeyword("FALSE")) return Value::Bool(false);
    if (ConsumeKeyword("DATE")) {
      if (Current().kind != TokenKind::kString) {
        return Error("expected date string after DATE");
      }
      PDGF_ASSIGN_OR_RETURN(pdgf::Date date,
                            pdgf::Date::Parse(Current().text));
      ++pos_;
      return Value::FromDate(date);
    }
    bool negative = false;
    if (ConsumeSymbol("-")) negative = true;
    if (Current().kind == TokenKind::kNumber) {
      const std::string& text = Current().text;
      Value value;
      if (text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos &&
          text.find('E') == std::string::npos) {
        int64_t v = std::strtoll(text.c_str(), nullptr, 10);
        value = Value::Int(negative ? -v : v);
      } else {
        double v = std::strtod(text.c_str(), nullptr);
        value = Value::Double(negative ? -v : v);
      }
      ++pos_;
      return value;
    }
    if (negative) return Error("expected number after '-'");
    if (Current().kind == TokenKind::kString) {
      Value value = Value::String(Current().text);
      ++pos_;
      return value;
    }
    return Error("expected literal");
  }

  // CREATE VIRTUAL TABLE t USING module[(arg[, arg...])]; arguments are
  // identifiers, numbers or quoted strings, kept as raw text for the
  // module to interpret.
  StatusOr<Statement> ParseCreateVirtualTable() {
    PDGF_RETURN_IF_ERROR(ExpectKeyword("VIRTUAL"));
    PDGF_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateVirtualTableStatement statement;
    PDGF_ASSIGN_OR_RETURN(statement.table, ExpectIdentifier());
    PDGF_RETURN_IF_ERROR(ExpectKeyword("USING"));
    PDGF_ASSIGN_OR_RETURN(statement.module, ExpectIdentifier());
    if (ConsumeSymbol("(")) {
      if (!ConsumeSymbol(")")) {
        while (true) {
          if (Current().kind != TokenKind::kIdentifier &&
              Current().kind != TokenKind::kNumber &&
              Current().kind != TokenKind::kString) {
            return Error("expected a module argument");
          }
          statement.args.push_back(Current().text);
          ++pos_;
          if (!ConsumeSymbol(",")) break;
        }
        PDGF_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
    }
    return Statement(std::move(statement));
  }

  StatusOr<Statement> ParseCreateTable() {
    PDGF_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    if (IsKeyword("VIRTUAL")) return ParseCreateVirtualTable();
    PDGF_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateTableStatement statement;
    PDGF_ASSIGN_OR_RETURN(statement.schema.name, ExpectIdentifier());
    PDGF_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      // Table-level PRIMARY KEY (col[, col...]).
      if (IsKeyword("PRIMARY")) {
        ++pos_;
        PDGF_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        PDGF_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          PDGF_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
          int index = statement.schema.FindColumn(column);
          if (index < 0) return Error("unknown PRIMARY KEY column " + column);
          statement.schema.columns[static_cast<size_t>(index)].primary_key =
              true;
          statement.schema.columns[static_cast<size_t>(index)].nullable =
              false;
          if (!ConsumeSymbol(",")) break;
        }
        PDGF_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        ColumnDef column;
        PDGF_ASSIGN_OR_RETURN(column.name, ExpectIdentifier());
        PDGF_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
        // Two-word types: DOUBLE PRECISION / CHARACTER VARYING.
        if (EqualsIgnoreCase(type_name, "DOUBLE") && IsKeyword("PRECISION")) {
          ++pos_;
          type_name = "DOUBLE PRECISION";
        } else if (EqualsIgnoreCase(type_name, "CHARACTER") &&
                   IsKeyword("VARYING")) {
          ++pos_;
          type_name = "CHARACTER VARYING";
        }
        PDGF_ASSIGN_OR_RETURN(column.type, pdgf::ParseDataType(type_name));
        if (ConsumeSymbol("(")) {
          if (Current().kind != TokenKind::kNumber) {
            return Error("expected size");
          }
          column.size = std::atoi(Current().text.c_str());
          ++pos_;
          if (ConsumeSymbol(",")) {
            if (Current().kind != TokenKind::kNumber) {
              return Error("expected scale");
            }
            column.scale = std::atoi(Current().text.c_str());
            ++pos_;
          }
          PDGF_RETURN_IF_ERROR(ExpectSymbol(")"));
        }
        // Column constraints, any order.
        while (true) {
          if (ConsumeKeyword("NOT")) {
            PDGF_RETURN_IF_ERROR(ExpectKeyword("NULL"));
            column.nullable = false;
            continue;
          }
          if (ConsumeKeyword("PRIMARY")) {
            PDGF_RETURN_IF_ERROR(ExpectKeyword("KEY"));
            column.primary_key = true;
            column.nullable = false;
            continue;
          }
          if (ConsumeKeyword("REFERENCES")) {
            PDGF_ASSIGN_OR_RETURN(column.ref_table, ExpectIdentifier());
            PDGF_RETURN_IF_ERROR(ExpectSymbol("("));
            PDGF_ASSIGN_OR_RETURN(column.ref_column, ExpectIdentifier());
            PDGF_RETURN_IF_ERROR(ExpectSymbol(")"));
            continue;
          }
          break;
        }
        statement.schema.columns.push_back(std::move(column));
      }
      if (!ConsumeSymbol(",")) break;
    }
    PDGF_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Statement(std::move(statement));
  }

  StatusOr<Statement> ParseDropTable() {
    PDGF_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    PDGF_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    DropTableStatement statement;
    PDGF_ASSIGN_OR_RETURN(statement.table, ExpectIdentifier());
    return Statement(std::move(statement));
  }

  StatusOr<Statement> ParseInsert() {
    PDGF_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    PDGF_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement statement;
    PDGF_ASSIGN_OR_RETURN(statement.table, ExpectIdentifier());
    PDGF_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      PDGF_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> row;
      while (true) {
        PDGF_ASSIGN_OR_RETURN(Value value, ParseLiteral());
        row.push_back(std::move(value));
        if (!ConsumeSymbol(",")) break;
      }
      PDGF_RETURN_IF_ERROR(ExpectSymbol(")"));
      statement.rows.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    return Statement(std::move(statement));
  }

  StatusOr<Statement> ParseUpdate() {
    PDGF_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    UpdateStatement statement;
    PDGF_ASSIGN_OR_RETURN(statement.table, ExpectIdentifier());
    PDGF_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      PDGF_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      PDGF_RETURN_IF_ERROR(ExpectSymbol("="));
      PDGF_ASSIGN_OR_RETURN(Value value, ParseLiteral());
      statement.columns.push_back(std::move(column));
      statement.values.push_back(std::move(value));
      if (!ConsumeSymbol(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      while (true) {
        PDGF_ASSIGN_OR_RETURN(Condition condition, ParseCondition());
        statement.conditions.push_back(std::move(condition));
        if (!ConsumeKeyword("AND")) break;
      }
    }
    return Statement(std::move(statement));
  }

  StatusOr<Statement> ParseDelete() {
    PDGF_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    PDGF_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStatement statement;
    PDGF_ASSIGN_OR_RETURN(statement.table, ExpectIdentifier());
    if (ConsumeKeyword("WHERE")) {
      while (true) {
        PDGF_ASSIGN_OR_RETURN(Condition condition, ParseCondition());
        statement.conditions.push_back(std::move(condition));
        if (!ConsumeKeyword("AND")) break;
      }
    }
    return Statement(std::move(statement));
  }

  StatusOr<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (ConsumeSymbol("*")) {
      item.star = true;
      return item;
    }
    static constexpr struct {
      const char* name;
      AggregateFunction func;
    } kAggregates[] = {
        {"COUNT", AggregateFunction::kCount},
        {"SUM", AggregateFunction::kSum},
        {"AVG", AggregateFunction::kAvg},
        {"MIN", AggregateFunction::kMin},
        {"MAX", AggregateFunction::kMax},
    };
    for (const auto& aggregate : kAggregates) {
      if (IsKeyword(aggregate.name) && pos_ + 1 < tokens_.size() &&
          tokens_[pos_ + 1].Is(TokenKind::kSymbol, "(")) {
        pos_ += 2;
        item.aggregate = aggregate.func;
        if (item.aggregate == AggregateFunction::kCount &&
            ConsumeSymbol("*")) {
          item.count_star = true;
        } else {
          if (ConsumeKeyword("DISTINCT")) item.distinct = true;
          PDGF_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
        }
        PDGF_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (ConsumeKeyword("AS")) {
          PDGF_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        }
        return item;
      }
    }
    PDGF_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
    if (ConsumeKeyword("AS")) {
      PDGF_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
    }
    return item;
  }

  StatusOr<Condition> ParseCondition() {
    Condition condition;
    PDGF_ASSIGN_OR_RETURN(condition.column, ExpectIdentifier());
    if (ConsumeKeyword("IS")) {
      if (ConsumeKeyword("NOT")) {
        PDGF_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        condition.op = Condition::Op::kIsNotNull;
      } else {
        PDGF_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        condition.op = Condition::Op::kIsNull;
      }
      return condition;
    }
    if (ConsumeKeyword("BETWEEN")) {
      condition.op = Condition::Op::kBetween;
      PDGF_ASSIGN_OR_RETURN(condition.operand, ParseLiteral());
      PDGF_RETURN_IF_ERROR(ExpectKeyword("AND"));
      PDGF_ASSIGN_OR_RETURN(condition.operand2, ParseLiteral());
      return condition;
    }
    bool negated = ConsumeKeyword("NOT");
    if (ConsumeKeyword("LIKE")) {
      condition.op =
          negated ? Condition::Op::kNotLike : Condition::Op::kLike;
      PDGF_ASSIGN_OR_RETURN(condition.operand, ParseLiteral());
      return condition;
    }
    if (negated) return Error("expected LIKE after NOT");
    if (Current().kind != TokenKind::kSymbol) {
      return Error("expected comparison operator");
    }
    const std::string& op = Current().text;
    if (op == "=") {
      condition.op = Condition::Op::kEq;
    } else if (op == "<>" || op == "!=") {
      condition.op = Condition::Op::kNe;
    } else if (op == "<") {
      condition.op = Condition::Op::kLt;
    } else if (op == "<=") {
      condition.op = Condition::Op::kLe;
    } else if (op == ">") {
      condition.op = Condition::Op::kGt;
    } else if (op == ">=") {
      condition.op = Condition::Op::kGe;
    } else {
      return Error("unknown operator '" + op + "'");
    }
    ++pos_;
    PDGF_ASSIGN_OR_RETURN(condition.operand, ParseLiteral());
    return condition;
  }

  StatusOr<Statement> ParseSelect() {
    PDGF_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStatement statement;
    while (true) {
      PDGF_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      statement.items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    PDGF_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PDGF_ASSIGN_OR_RETURN(statement.table, ExpectIdentifier());
    if (ConsumeKeyword("WHERE")) {
      while (true) {
        PDGF_ASSIGN_OR_RETURN(Condition condition, ParseCondition());
        statement.conditions.push_back(std::move(condition));
        if (!ConsumeKeyword("AND")) break;
      }
    }
    if (ConsumeKeyword("GROUP")) {
      PDGF_RETURN_IF_ERROR(ExpectKeyword("BY"));
      PDGF_ASSIGN_OR_RETURN(statement.group_by, ExpectIdentifier());
    }
    if (ConsumeKeyword("ORDER")) {
      PDGF_RETURN_IF_ERROR(ExpectKeyword("BY"));
      PDGF_ASSIGN_OR_RETURN(statement.order_by, ExpectIdentifier());
      if (ConsumeKeyword("DESC")) {
        statement.order_desc = true;
      } else {
        ConsumeKeyword("ASC");
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Current().kind != TokenKind::kNumber) {
        return Error("expected LIMIT count");
      }
      statement.limit = std::strtoll(Current().text.c_str(), nullptr, 10);
      ++pos_;
    }
    return Statement(std::move(statement));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

pdgf::StatusOr<Statement> ParseSql(std::string_view sql) {
  PDGF_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  return parser.ParseFull();
}

pdgf::StatusOr<std::vector<Statement>> ParseSqlScript(std::string_view sql) {
  // Split on ';' outside string literals.
  std::vector<Statement> statements;
  std::string current;
  bool in_string = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      std::string_view piece = pdgf::StripWhitespace(current);
      if (!piece.empty()) {
        PDGF_ASSIGN_OR_RETURN(Statement statement, ParseSql(piece));
        statements.push_back(std::move(statement));
      }
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  std::string_view piece = pdgf::StripWhitespace(current);
  if (!piece.empty()) {
    PDGF_ASSIGN_OR_RETURN(Statement statement, ParseSql(piece));
    statements.push_back(std::move(statement));
  }
  return statements;
}

}  // namespace minidb
