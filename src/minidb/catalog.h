#ifndef DBSYNTHPP_MINIDB_CATALOG_H_
#define DBSYNTHPP_MINIDB_CATALOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace minidb {

// Column metadata, including the constraint information DBSynth's model
// creation consumes (paper §3: schema information, referential-integrity
// constraints, NULL-ability).
struct ColumnDef {
  std::string name;
  pdgf::DataType type = pdgf::DataType::kVarchar;
  int size = 0;   // CHAR/VARCHAR length or numeric display width
  int scale = 2;  // DECIMAL scale
  bool nullable = true;
  bool primary_key = false;
  std::string ref_table;   // non-empty if this column REFERENCES
  std::string ref_column;

  bool is_foreign_key() const { return !ref_table.empty(); }
};

// Table metadata.
struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;

  // Index of the column with `column_name` (case-insensitive), or -1.
  int FindColumn(std::string_view column_name) const;
  const ColumnDef* FindColumnDef(std::string_view column_name) const;
};

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_CATALOG_H_
