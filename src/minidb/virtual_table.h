#ifndef DBSYNTHPP_MINIDB_VIRTUAL_TABLE_H_
#define DBSYNTHPP_MINIDB_VIRTUAL_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "minidb/catalog.h"
#include "minidb/storage/record.h"

namespace minidb {

// A catalog entry whose rows are computed on demand instead of stored:
// the target of CREATE VIRTUAL TABLE name USING module(args...). SELECT
// scans it lazily through ScanRange, so a virtual table of any size
// costs only the rows a query actually touches. MiniDB defines the
// interface; modules (e.g. the dbsynth generator module) provide the
// rows — minidb itself never depends on a generator.
class VirtualTable {
 public:
  virtual ~VirtualTable() = default;

  VirtualTable(const VirtualTable&) = delete;
  VirtualTable& operator=(const VirtualTable&) = delete;

  virtual const TableSchema& schema() const = 0;
  virtual uint64_t row_count() const = 0;

  // Streams rows [first_row, last_row) — clamped to the table — in row
  // order, invoking `visitor` per row; stops early when it returns
  // false. This is the row-range pushdown surface: SELECT narrows the
  // window before scanning.
  virtual void ScanRange(
      uint64_t first_row, uint64_t last_row,
      const std::function<bool(const Row&)>& visitor) const = 0;

  // Maps the inclusive primary-key interval [min_key, max_key] to the
  // row-ordinal range [*first, *last) containing exactly the rows whose
  // key falls inside it (possibly empty). Returns false when the module
  // cannot prove the inversion — the caller then scans the full range
  // and filters. Only meaningful for single-column integer-family PKs.
  virtual bool KeyRangeToRows(int64_t min_key, int64_t max_key,
                              uint64_t* first, uint64_t* last) const {
    (void)min_key;
    (void)max_key;
    (void)first;
    (void)last;
    return false;
  }

 protected:
  VirtualTable() = default;
};

// Builds one virtual table from the CREATE VIRTUAL TABLE argument list
// (raw argument texts, string quotes resolved).
using VirtualTableFactory =
    std::function<pdgf::StatusOr<std::unique_ptr<VirtualTable>>(
        const std::string& table_name, const std::vector<std::string>& args)>;

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_VIRTUAL_TABLE_H_
