#ifndef DBSYNTHPP_MINIDB_SQL_LEXER_H_
#define DBSYNTHPP_MINIDB_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace minidb {

// SQL token kinds. Keywords are delivered as kIdentifier; the parser
// matches them case-insensitively.
enum class TokenKind {
  kIdentifier,
  kNumber,   // integer or decimal literal text
  kString,   // contents with '' unescaped
  kSymbol,   // one of ( ) , ; * = . or the multi-char <= >= <> != < >
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset;  // byte offset in the input, for error messages

  bool Is(TokenKind k, std::string_view t) const {
    return kind == k && text == t;
  }
};

// Tokenizes `sql`. Handles line comments (--), quoted identifiers
// ("name"), string literals with doubled quotes, and numeric literals.
pdgf::StatusOr<std::vector<Token>> LexSql(std::string_view sql);

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_SQL_LEXER_H_
