#ifndef DBSYNTHPP_MINIDB_SQL_H_
#define DBSYNTHPP_MINIDB_SQL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "minidb/database.h"
#include "minidb/sql_ast.h"

namespace minidb {

// The result of executing one statement. DDL/DML statements produce no
// columns and set `affected_rows`; SELECT fills columns and rows.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  uint64_t affected_rows = 0;

  // Renders an aligned ASCII table (NULL shown as "NULL").
  std::string ToString() const;

  // Value at (row, column-name); NULL Value when out of range.
  pdgf::Value At(size_t row, std::string_view column) const;
};

// Abstract row stream for SELECT execution. A real Table is one source;
// virtual sources (e.g. rows computed on the fly by a data generator)
// implement the same interface, which is what enables executing queries
// "without ever generating the data" (paper §6).
class RowSource {
 public:
  virtual ~RowSource() = default;

  RowSource(const RowSource&) = delete;
  RowSource& operator=(const RowSource&) = delete;

  virtual const TableSchema& schema() const = 0;
  // Invokes `visitor` per row; stops early when it returns false.
  virtual void Scan(
      const std::function<bool(const Row&)>& visitor) const = 0;

 protected:
  RowSource() = default;
};

// A RowSource view over a stored table (non-owning).
class TableRowSource final : public RowSource {
 public:
  explicit TableRowSource(const Table* table) : table_(table) {}

  const TableSchema& schema() const override { return table_->schema(); }
  void Scan(
      const std::function<bool(const Row&)>& visitor) const override {
    table_->Scan(visitor);
  }

 private:
  const Table* table_;
};

// Executes a parsed SELECT against an arbitrary row source. The
// statement's FROM name is not checked against the source.
pdgf::StatusOr<ResultSet> ExecuteSelectOnSource(
    const RowSource& source, const SelectStatement& statement);

// Executes a parsed SELECT against a virtual table, pushing row-range
// and primary-key predicates down into the scan window when the module
// can invert keys to row ordinals (VirtualTable::KeyRangeToRows). The
// conditions are still evaluated per row, so results are identical to a
// full scan — the pushdown only shrinks the generated window.
pdgf::StatusOr<ResultSet> ExecuteSelectOnVirtualTable(
    const VirtualTable& table, const SelectStatement& statement);

// Parses `sql` (must be a single SELECT) and executes it on `source`.
pdgf::StatusOr<ResultSet> ExecuteSqlOnSource(const RowSource& source,
                                             std::string_view sql);

// Parses and executes a single SQL statement against `database`.
pdgf::StatusOr<ResultSet> ExecuteSql(Database* database,
                                     std::string_view sql);

// Executes a ';'-separated script; stops at the first error.
pdgf::StatusOr<std::vector<ResultSet>> ExecuteSqlScript(Database* database,
                                                        std::string_view sql);

// Executes an already-parsed statement.
pdgf::StatusOr<ResultSet> ExecuteStatement(Database* database,
                                           const Statement& statement);

// Renders a CREATE TABLE statement for `schema` (used by the DBSynth
// schema translator and by tests).
std::string BuildCreateTableSql(const TableSchema& schema);

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_SQL_H_
