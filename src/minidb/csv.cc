#include "minidb/csv.h"

#include <algorithm>

#include "util/files.h"

namespace minidb {

using pdgf::Status;
using pdgf::StatusOr;
using pdgf::Value;

namespace {

// Splits one CSV record honoring quoting. Returns false at end of input.
// `pos` advances past the record's newline.
bool NextRecord(std::string_view text, size_t* pos,
                const CsvOptions& options,
                std::vector<std::pair<std::string, bool>>* cells) {
  if (*pos >= text.size()) return false;
  cells->clear();
  std::string cell;
  bool quoted = false;       // current cell was quoted
  bool in_quotes = false;
  while (*pos < text.size()) {
    char c = text[*pos];
    if (in_quotes) {
      if (c == options.quote) {
        if (*pos + 1 < text.size() && text[*pos + 1] == options.quote) {
          cell.push_back(options.quote);
          *pos += 2;
          continue;
        }
        in_quotes = false;
        ++*pos;
        continue;
      }
      cell.push_back(c);
      ++*pos;
      continue;
    }
    if (c == options.quote && cell.empty()) {
      in_quotes = true;
      quoted = true;
      ++*pos;
      continue;
    }
    if (c == options.delimiter) {
      cells->emplace_back(std::move(cell), quoted);
      cell.clear();
      quoted = false;
      ++*pos;
      continue;
    }
    if (c == '\n') {
      ++*pos;
      break;
    }
    if (c == '\r') {
      ++*pos;
      continue;
    }
    cell.push_back(c);
    ++*pos;
  }
  cells->emplace_back(std::move(cell), quoted);
  return true;
}

}  // namespace

StatusOr<uint64_t> LoadCsvIntoTable(std::string_view text, Table* table,
                                    const CsvOptions& options) {
  const TableSchema& schema = table->schema();
  size_t pos = 0;
  std::vector<std::pair<std::string, bool>> cells;
  uint64_t loaded = 0;
  bool skip_header = options.has_header;
  while (NextRecord(text, &pos, options, &cells)) {
    if (skip_header) {
      skip_header = false;
      continue;
    }
    // A trailing empty record (e.g. final newline) is skipped.
    if (cells.size() == 1 && cells[0].first.empty() && pos >= text.size()) {
      break;
    }
    if (cells.size() != schema.columns.size()) {
      return pdgf::ParseError(
          "CSV row " + std::to_string(loaded + 1) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(schema.columns.size()));
    }
    Row row;
    row.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      const auto& [cell_text, quoted] = cells[i];
      const ColumnDef& column = schema.columns[i];
      if (!quoted && cell_text == options.null_marker && column.nullable) {
        row.push_back(Value::Null());
        continue;
      }
      StatusOr<Value> value =
          Value::ParseAs(column.type, cell_text, column.scale);
      if (!value.ok()) {
        return Status(value.status().code(),
                      "CSV row " + std::to_string(loaded + 1) + ", column " +
                          column.name + ": " + value.status().message());
      }
      row.push_back(std::move(*value));
    }
    // Every cell above came out of ParseAs with the column's declared
    // type (and scale), i.e. it is already in storage representation —
    // re-validating through Insert's CoerceValue pass would be pure
    // overhead, so take the unchecked path.
    PDGF_RETURN_IF_ERROR(table->InsertUnchecked(std::move(row)));
    ++loaded;
  }
  return loaded;
}

StatusOr<uint64_t> LoadCsvFileIntoTable(const std::string& path, Table* table,
                                        const CsvOptions& options) {
  PDGF_ASSIGN_OR_RETURN(std::string contents, pdgf::ReadFileToString(path));
  // Cheap row-count estimate: newlines. Over-counts quoted embedded
  // newlines and the header, which only makes the reserve generous.
  size_t estimate = static_cast<size_t>(
      std::count(contents.begin(), contents.end(), '\n'));
  table->Reserve(table->row_count() + estimate);
  return LoadCsvIntoTable(contents, table, options);
}

std::string TableToCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  table.Scan([&](const Row& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      if (row[i].is_null()) {
        out.append(options.null_marker);
        continue;
      }
      if (row[i].kind() == Value::Kind::kString) {
        const std::string& text = row[i].string_value();
        bool needs_quoting =
            text.find(options.delimiter) != std::string::npos ||
            text.find(options.quote) != std::string::npos ||
            text.find('\n') != std::string::npos ||
            (!options.null_marker.empty() && text == options.null_marker);
        if (needs_quoting) {
          out.push_back(options.quote);
          for (char c : text) {
            if (c == options.quote) out.push_back(options.quote);
            out.push_back(c);
          }
          out.push_back(options.quote);
          continue;
        }
      }
      row[i].AppendText(&out);
    }
    out.push_back('\n');
    return true;
  });
  return out;
}

}  // namespace minidb
