#ifndef DBSYNTHPP_MINIDB_STATS_H_
#define DBSYNTHPP_MINIDB_STATS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "minidb/table.h"

namespace minidb {

// Equi-width histogram over a numeric/date column's value range.
struct Histogram {
  double min = 0;
  double max = 0;
  std::vector<uint64_t> buckets;
  uint64_t total = 0;

  double BucketWidth() const {
    return buckets.empty()
               ? 0
               : (max - min) / static_cast<double>(buckets.size());
  }
  // Fraction of values in bucket `i`.
  double Fraction(size_t i) const {
    return total == 0 ? 0
                      : static_cast<double>(buckets[i]) /
                            static_cast<double>(total);
  }
};

// The per-column statistics DBSynth extracts from the source database
// (paper §3: min/max constraints, histograms, NULL probabilities, and
// "statistic information collected by the database system").
struct ColumnStats {
  std::string column;
  pdgf::DataType type = pdgf::DataType::kVarchar;
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  uint64_t distinct_count = 0;  // exact (hash-set based)
  pdgf::Value min;              // NULL when the column is all-NULL
  pdgf::Value max;
  double mean = 0;              // numeric/date columns
  bool has_histogram = false;
  Histogram histogram;
  // Most frequent values with counts, descending (text columns).
  std::vector<std::pair<std::string, uint64_t>> top_values;
  double avg_length = 0;  // text columns
  double max_word_count = 0;  // text columns: max whitespace tokens
  double avg_word_count = 0;

  double null_fraction() const {
    return row_count == 0 ? 0
                          : static_cast<double>(null_count) /
                                static_cast<double>(row_count);
  }
};

struct TableStats {
  std::string table;
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats* FindColumn(std::string_view name) const;
};

// Scans the table once and computes all column statistics ("ANALYZE").
TableStats AnalyzeTable(const Table& table, int histogram_buckets = 32,
                        int top_k = 20);

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_STATS_H_
