#ifndef DBSYNTHPP_MINIDB_PERSISTENCE_H_
#define DBSYNTHPP_MINIDB_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "minidb/csv.h"
#include "minidb/database.h"

namespace minidb {

// Directory-based persistence: a database serializes to
//
//   <directory>/schema.sql    CREATE TABLE script, FK targets first
//   <directory>/<table>.csv   one data file per table
//
// — exactly the layout the dbsynthpp CLI's `extract --csv-dir` consumes,
// so a saved database can be re-profiled, shipped, or diffed as text.

// Default CSV dialect for persistence: '|' separated with "\N" NULLs
// (NULL must be distinguishable from the empty string to round-trip).
CsvOptions PersistenceCsvOptions();

// Writes `database` to `directory` (created if missing; existing files
// are overwritten).
pdgf::Status SaveDatabase(const Database& database,
                          const std::string& directory,
                          const CsvOptions& options = PersistenceCsvOptions());

// Reads a database previously written by SaveDatabase. Tables listed in
// schema.sql without a data file load empty.
pdgf::StatusOr<Database> LoadDatabase(
    const std::string& directory,
    const CsvOptions& options = PersistenceCsvOptions());

// Same, but the loaded tables are backed by `engine` (e.g. the paged
// engine with a data directory). An engine data dir that already holds
// table files recovers those rows first; CSV data then appends, so pair
// a fresh data dir with a CSV load.
pdgf::StatusOr<Database> LoadDatabase(const std::string& directory,
                                      const CsvOptions& options,
                                      EngineConfig engine);

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_PERSISTENCE_H_
