#include "minidb/database.h"

#include "util/strings.h"

namespace minidb {

pdgf::Status Database::CreateTable(TableSchema schema) {
  if (schema.name.empty()) {
    return pdgf::InvalidArgumentError("table name must not be empty");
  }
  if (GetTable(schema.name) != nullptr) {
    return pdgf::AlreadyExistsError("table '" + schema.name +
                                    "' already exists");
  }
  if (schema.columns.empty()) {
    return pdgf::InvalidArgumentError("table '" + schema.name +
                                      "' has no columns");
  }
  for (const ColumnDef& column : schema.columns) {
    if (!column.is_foreign_key()) continue;
    const Table* target = GetTable(column.ref_table);
    if (target == nullptr) {
      return pdgf::NotFoundError("foreign key target table '" +
                                 column.ref_table + "' does not exist");
    }
    if (target->schema().FindColumn(column.ref_column) < 0) {
      return pdgf::NotFoundError("foreign key target column '" +
                                 column.ref_table + "." + column.ref_column +
                                 "' does not exist");
    }
  }
  tables_.push_back(std::make_unique<Table>(std::move(schema)));
  return pdgf::Status::Ok();
}

pdgf::Status Database::DropTable(const std::string& name) {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (pdgf::EqualsIgnoreCase(tables_[i]->name(), name)) {
      tables_.erase(tables_.begin() + static_cast<long>(i));
      return pdgf::Status::Ok();
    }
  }
  return pdgf::NotFoundError("table '" + name + "' does not exist");
}

Table* Database::GetTable(std::string_view name) {
  for (const auto& table : tables_) {
    if (pdgf::EqualsIgnoreCase(table->name(), name)) return table.get();
  }
  return nullptr;
}

const Table* Database::GetTable(std::string_view name) const {
  for (const auto& table : tables_) {
    if (pdgf::EqualsIgnoreCase(table->name(), name)) return table.get();
  }
  return nullptr;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& table : tables_) {
    names.push_back(table->name());
  }
  return names;
}

}  // namespace minidb
