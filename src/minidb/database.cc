#include "minidb/database.h"

#include "util/files.h"
#include "util/strings.h"

namespace minidb {

pdgf::StatusOr<EngineKind> ParseEngineKind(std::string_view text) {
  if (text == "heap") return EngineKind::kHeap;
  if (text == "paged") return EngineKind::kPaged;
  return pdgf::InvalidArgumentError("unknown engine '" + std::string(text) +
                                    "' (expected heap or paged)");
}

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHeap:
      return "heap";
    case EngineKind::kPaged:
      return "paged";
  }
  return "unknown";
}

std::string Database::TableBasePath(const std::string& name) const {
  return pdgf::JoinPath(config_.data_dir, pdgf::AsciiLower(name));
}

pdgf::Status Database::CreateTable(TableSchema schema) {
  if (schema.name.empty()) {
    return pdgf::InvalidArgumentError("table name must not be empty");
  }
  if (GetTable(schema.name) != nullptr ||
      GetVirtualTable(schema.name) != nullptr) {
    return pdgf::AlreadyExistsError("table '" + schema.name +
                                    "' already exists");
  }
  if (schema.columns.empty()) {
    return pdgf::InvalidArgumentError("table '" + schema.name +
                                      "' has no columns");
  }
  for (const ColumnDef& column : schema.columns) {
    if (!column.is_foreign_key()) continue;
    const Table* target = GetTable(column.ref_table);
    if (target == nullptr) {
      return pdgf::NotFoundError("foreign key target table '" +
                                 column.ref_table + "' does not exist");
    }
    if (target->schema().FindColumn(column.ref_column) < 0) {
      return pdgf::NotFoundError("foreign key target column '" +
                                 column.ref_table + "." + column.ref_column +
                                 "' does not exist");
    }
  }
  if (config_.kind == EngineKind::kPaged) {
    if (config_.data_dir.empty()) {
      return pdgf::InvalidArgumentError(
          "the paged engine needs a data directory");
    }
    PDGF_RETURN_IF_ERROR(pdgf::MakeDirectories(config_.data_dir));
    int pk_column = Table::IndexableKeyColumn(schema);
    PDGF_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::PagedEngine> engine,
        storage::PagedEngine::Open(TableBasePath(schema.name), pk_column,
                                   config_.storage));
    tables_.push_back(
        std::make_unique<Table>(std::move(schema), std::move(engine)));
    return pdgf::Status::Ok();
  }
  tables_.push_back(std::make_unique<Table>(std::move(schema)));
  return pdgf::Status::Ok();
}

pdgf::Status Database::DropTable(const std::string& name) {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (pdgf::EqualsIgnoreCase(tables_[i]->name(), name)) {
      std::string base = TableBasePath(tables_[i]->name());
      tables_.erase(tables_.begin() + static_cast<long>(i));
      if (config_.kind == EngineKind::kPaged) {
        // The engine (and its fds) died with the table; remove the files.
        (void)pdgf::RemoveFile(base + ".pages");
        (void)pdgf::RemoveFile(base + ".wal");
      }
      return pdgf::Status::Ok();
    }
  }
  for (size_t i = 0; i < virtual_tables_.size(); ++i) {
    if (pdgf::EqualsIgnoreCase(virtual_tables_[i].name, name)) {
      virtual_tables_.erase(virtual_tables_.begin() + static_cast<long>(i));
      return pdgf::Status::Ok();
    }
  }
  return pdgf::NotFoundError("table '" + name + "' does not exist");
}

void Database::RegisterVirtualModule(const std::string& name,
                                     VirtualTableFactory factory) {
  modules_[pdgf::AsciiLower(name)] = std::move(factory);
}

pdgf::Status Database::CreateVirtualTable(
    const std::string& table_name, const std::string& module,
    const std::vector<std::string>& args) {
  if (table_name.empty()) {
    return pdgf::InvalidArgumentError("table name must not be empty");
  }
  if (GetTable(table_name) != nullptr ||
      GetVirtualTable(table_name) != nullptr) {
    return pdgf::AlreadyExistsError("table '" + table_name +
                                    "' already exists");
  }
  auto it = modules_.find(pdgf::AsciiLower(module));
  if (it == modules_.end()) {
    return pdgf::NotFoundError("no virtual table module named '" + module +
                               "' is registered");
  }
  PDGF_ASSIGN_OR_RETURN(std::unique_ptr<VirtualTable> table,
                        it->second(table_name, args));
  if (table == nullptr) {
    return pdgf::InternalError("module '" + module +
                               "' returned no virtual table");
  }
  virtual_tables_.push_back({table_name, std::move(table)});
  return pdgf::Status::Ok();
}

const VirtualTable* Database::GetVirtualTable(std::string_view name) const {
  for (const NamedVirtualTable& entry : virtual_tables_) {
    if (pdgf::EqualsIgnoreCase(entry.name, name)) return entry.table.get();
  }
  return nullptr;
}

Table* Database::GetTable(std::string_view name) {
  for (const auto& table : tables_) {
    if (pdgf::EqualsIgnoreCase(table->name(), name)) return table.get();
  }
  return nullptr;
}

const Table* Database::GetTable(std::string_view name) const {
  for (const auto& table : tables_) {
    if (pdgf::EqualsIgnoreCase(table->name(), name)) return table.get();
  }
  return nullptr;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size() + virtual_tables_.size());
  for (const auto& table : tables_) {
    names.push_back(table->name());
  }
  for (const NamedVirtualTable& entry : virtual_tables_) {
    names.push_back(entry.name);
  }
  return names;
}

pdgf::Status Database::CheckpointAll() {
  for (const auto& table : tables_) {
    PDGF_RETURN_IF_ERROR(table->Checkpoint());
  }
  return pdgf::Status::Ok();
}

}  // namespace minidb
