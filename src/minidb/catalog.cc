#include "minidb/catalog.h"

#include "util/strings.h"

namespace minidb {

int TableSchema::FindColumn(std::string_view column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (pdgf::EqualsIgnoreCase(columns[i].name, column_name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const ColumnDef* TableSchema::FindColumnDef(
    std::string_view column_name) const {
  int index = FindColumn(column_name);
  return index < 0 ? nullptr : &columns[static_cast<size_t>(index)];
}

}  // namespace minidb
