#include "minidb/stats.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace minidb {

using pdgf::Value;

const ColumnStats* TableStats::FindColumn(std::string_view name) const {
  for (const ColumnStats& column : columns) {
    if (pdgf::EqualsIgnoreCase(column.column, name)) return &column;
  }
  return nullptr;
}

TableStats AnalyzeTable(const Table& table, int histogram_buckets,
                        int top_k) {
  const TableSchema& schema = table.schema();
  TableStats stats;
  stats.table = schema.name;
  stats.row_count = table.row_count();

  size_t column_count = schema.columns.size();
  std::vector<ColumnStats> columns(column_count);
  std::vector<std::unordered_set<uint64_t>> distinct(column_count);
  std::vector<double> sums(column_count, 0);
  std::vector<double> length_sums(column_count, 0);
  std::vector<double> word_sums(column_count, 0);
  std::vector<std::unordered_map<std::string, uint64_t>> value_counts(
      column_count);

  for (size_t c = 0; c < column_count; ++c) {
    columns[c].column = schema.columns[c].name;
    columns[c].type = schema.columns[c].type;
    columns[c].row_count = stats.row_count;
  }

  bool numericish[64] = {};
  for (size_t c = 0; c < column_count && c < 64; ++c) {
    numericish[c] = pdgf::IsNumericType(schema.columns[c].type) ||
                    schema.columns[c].type == pdgf::DataType::kDate;
  }

  // Pass 1: everything except histograms (which need min/max first).
  table.Scan([&](const Row& row) {
    for (size_t c = 0; c < column_count; ++c) {
      const Value& value = row[c];
      ColumnStats& cs = columns[c];
      if (value.is_null()) {
        ++cs.null_count;
        continue;
      }
      distinct[c].insert(value.Hash());
      if (cs.min.is_null() || value.Compare(cs.min) < 0) cs.min = value;
      if (cs.max.is_null() || value.Compare(cs.max) > 0) cs.max = value;
      if (c < 64 && numericish[c]) {
        sums[c] += value.AsDouble();
      }
      if (value.kind() == Value::Kind::kString) {
        const std::string& text = value.string_value();
        length_sums[c] += static_cast<double>(text.size());
        // Count whitespace-separated words.
        size_t words = 0;
        bool in_word = false;
        for (char ch : text) {
          if (ch == ' ' || ch == '\t') {
            in_word = false;
          } else if (!in_word) {
            in_word = true;
            ++words;
          }
        }
        cs.max_word_count =
            std::max(cs.max_word_count, static_cast<double>(words));
        word_sums[c] += static_cast<double>(words);
        // Track value frequencies for top-k (bounded: stop adding new
        // keys past a cap to bound memory; counts for seen keys stay
        // exact, which suffices for dictionary-ish columns).
        auto& counts = value_counts[c];
        auto it = counts.find(text);
        if (it != counts.end()) {
          ++it->second;
        } else if (counts.size() < 100000) {
          counts.emplace(text, 1);
        }
      }
    }
    return true;
  });

  for (size_t c = 0; c < column_count; ++c) {
    ColumnStats& cs = columns[c];
    cs.distinct_count = distinct[c].size();
    uint64_t non_null = cs.row_count - cs.null_count;
    if (non_null > 0 && c < 64 && numericish[c]) {
      cs.mean = sums[c] / static_cast<double>(non_null);
    }
    if (non_null > 0 && pdgf::IsTextType(cs.type)) {
      cs.avg_length = length_sums[c] / static_cast<double>(non_null);
      cs.avg_word_count = word_sums[c] / static_cast<double>(non_null);
    }
    // Top-k most frequent text values.
    if (!value_counts[c].empty()) {
      std::vector<std::pair<std::string, uint64_t>> pairs(
          value_counts[c].begin(), value_counts[c].end());
      std::sort(pairs.begin(), pairs.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      if (static_cast<int>(pairs.size()) > top_k) {
        pairs.resize(static_cast<size_t>(top_k));
      }
      cs.top_values = std::move(pairs);
    }
  }

  // Pass 2: histograms for numeric/date columns with a real range.
  if (histogram_buckets > 0) {
    for (size_t c = 0; c < column_count && c < 64; ++c) {
      ColumnStats& cs = columns[c];
      if (!numericish[c] || cs.min.is_null()) continue;
      double lo = cs.min.AsDouble();
      double hi = cs.max.AsDouble();
      if (hi <= lo) continue;
      cs.has_histogram = true;
      cs.histogram.min = lo;
      cs.histogram.max = hi;
      cs.histogram.buckets.assign(static_cast<size_t>(histogram_buckets), 0);
    }
    table.Scan([&](const Row& row) {
      for (size_t c = 0; c < column_count && c < 64; ++c) {
        ColumnStats& cs = columns[c];
        if (!cs.has_histogram || row[c].is_null()) continue;
        double v = row[c].AsDouble();
        double fraction =
            (v - cs.histogram.min) / (cs.histogram.max - cs.histogram.min);
        size_t bucket = static_cast<size_t>(
            fraction * static_cast<double>(cs.histogram.buckets.size()));
        if (bucket >= cs.histogram.buckets.size()) {
          bucket = cs.histogram.buckets.size() - 1;
        }
        ++cs.histogram.buckets[bucket];
        ++cs.histogram.total;
      }
      return true;
    });
  }

  stats.columns = std::move(columns);
  return stats;
}

}  // namespace minidb
