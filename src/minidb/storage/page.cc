#include "minidb/storage/page.h"

#include <cstring>
#include <vector>

namespace minidb {
namespace storage {

// Page layout:
//   [0..2)  uint16 slot_count
//   [2..4)  uint16 free_start (first unused byte of the record area)
//   [4..8)  reserved
//   [8..free_start)              record bytes
//   [kPageSize - 4*slot_count .. kPageSize)  slot directory, entry i at
//       kPageSize - 4*(i+1): {uint16 offset, uint16 length}
namespace {
constexpr size_t kHeaderSize = 8;
constexpr size_t kSlotEntrySize = 4;

uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

void SlottedPage::Init() {
  std::memset(data_, 0, kPageSize);
  set_slot_count(0);
  set_free_start(static_cast<uint16_t>(kHeaderSize));
}

uint16_t SlottedPage::slot_count() const { return LoadU16(data_); }
uint16_t SlottedPage::free_start() const { return LoadU16(data_ + 2); }
void SlottedPage::set_slot_count(uint16_t v) { StoreU16(data_, v); }
void SlottedPage::set_free_start(uint16_t v) { StoreU16(data_ + 2, v); }

size_t SlottedPage::SlotEntryPos(uint16_t slot) const {
  return kPageSize - kSlotEntrySize * (static_cast<size_t>(slot) + 1);
}

uint16_t SlottedPage::SlotOffset(uint16_t slot) const {
  return LoadU16(data_ + SlotEntryPos(slot));
}

uint16_t SlottedPage::SlotLength(uint16_t slot) const {
  return LoadU16(data_ + SlotEntryPos(slot) + 2);
}

void SlottedPage::SetSlot(uint16_t slot, uint16_t offset, uint16_t length) {
  StoreU16(data_ + SlotEntryPos(slot), offset);
  StoreU16(data_ + SlotEntryPos(slot) + 2, length);
}

bool SlottedPage::IsLive(uint16_t slot) const {
  return slot < slot_count() && SlotOffset(slot) != 0;
}

uint16_t SlottedPage::live_count() const {
  uint16_t live = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != 0) ++live;
  }
  return live;
}

std::string_view SlottedPage::Read(uint16_t slot) const {
  if (!IsLive(slot)) return {};
  return std::string_view(data_ + SlotOffset(slot), SlotLength(slot));
}

size_t SlottedPage::FreeSpace() const {
  // Live bytes if the record area were fully compacted.
  size_t live_bytes = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != 0) live_bytes += SlotLength(s);
  }
  size_t directory = kSlotEntrySize * static_cast<size_t>(slot_count());
  size_t used = kHeaderSize + live_bytes + directory;
  if (used >= kPageSize) return 0;
  size_t free = kPageSize - used;
  // A fresh insert may also need a new slot entry; be conservative and
  // always charge one (tombstone reuse only makes this cheaper).
  return free > kSlotEntrySize ? free - kSlotEntrySize : 0;
}

void SlottedPage::Compact() {
  struct Live {
    uint16_t slot;
    uint16_t offset;
    uint16_t length;
  };
  std::vector<Live> live;
  live.reserve(slot_count());
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != 0) live.push_back({s, SlotOffset(s), SlotLength(s)});
  }
  // Records are packed in their current physical order; a temporary copy
  // keeps overlapping moves safe.
  std::vector<char> scratch(kPageSize);
  uint16_t write = static_cast<uint16_t>(kHeaderSize);
  for (const Live& record : live) {
    std::memcpy(scratch.data() + write, data_ + record.offset, record.length);
    SetSlot(record.slot, write, record.length);
    write = static_cast<uint16_t>(write + record.length);
  }
  std::memcpy(data_ + kHeaderSize, scratch.data() + kHeaderSize,
              write - kHeaderSize);
  set_free_start(write);
}

int SlottedPage::Insert(std::string_view record) {
  if (record.size() > kMaxRecord) return -1;
  // Reuse the first tombstone slot, if any.
  int slot = -1;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) == 0) {
      slot = s;
      break;
    }
  }
  size_t new_entry = slot < 0 ? kSlotEntrySize : 0;
  size_t directory_low =
      kPageSize - kSlotEntrySize * static_cast<size_t>(slot_count()) -
      new_entry;
  if (free_start() + record.size() > directory_low) {
    // Contiguous free space is short; compaction may still make room.
    size_t live_bytes = 0;
    for (uint16_t s = 0; s < slot_count(); ++s) {
      if (SlotOffset(s) != 0) live_bytes += SlotLength(s);
    }
    if (kHeaderSize + live_bytes + record.size() > directory_low) return -1;
    Compact();
  }
  uint16_t offset = free_start();
  std::memcpy(data_ + offset, record.data(), record.size());
  set_free_start(static_cast<uint16_t>(offset + record.size()));
  if (slot < 0) {
    slot = slot_count();
    set_slot_count(static_cast<uint16_t>(slot_count() + 1));
  }
  SetSlot(static_cast<uint16_t>(slot), offset,
          static_cast<uint16_t>(record.size()));
  return slot;
}

bool SlottedPage::Update(uint16_t slot, std::string_view record) {
  if (!IsLive(slot) || record.size() > kMaxRecord) return false;
  uint16_t offset = SlotOffset(slot);
  uint16_t length = SlotLength(slot);
  if (record.size() <= length) {
    std::memcpy(data_ + offset, record.data(), record.size());
    SetSlot(slot, offset, static_cast<uint16_t>(record.size()));
    return true;
  }
  // Grow: tombstone the old copy, then re-insert (compacts as needed).
  SetSlot(slot, 0, 0);
  size_t directory_low =
      kPageSize - kSlotEntrySize * static_cast<size_t>(slot_count());
  size_t live_bytes = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != 0) live_bytes += SlotLength(s);
  }
  if (kHeaderSize + live_bytes + record.size() > directory_low) {
    SetSlot(slot, offset, length);  // roll back; caller relocates
    return false;
  }
  if (free_start() + record.size() > directory_low) Compact();
  uint16_t new_offset = free_start();
  std::memcpy(data_ + new_offset, record.data(), record.size());
  set_free_start(static_cast<uint16_t>(new_offset + record.size()));
  SetSlot(slot, new_offset, static_cast<uint16_t>(record.size()));
  return true;
}

void SlottedPage::Erase(uint16_t slot) {
  if (slot >= slot_count()) return;
  SetSlot(slot, 0, 0);
}

}  // namespace storage
}  // namespace minidb
