#include "minidb/storage/paged_engine.h"

#include <algorithm>
#include <cstring>

namespace minidb {
namespace storage {

namespace {

constexpr char kMetaMagic[8] = {'M', 'D', 'B', 'P', 'A', 'G', 'E', '1'};
constexpr PageId kMetaPage = 0;

// Meta page field offsets.
constexpr size_t kMetaEpoch = 8;
constexpr size_t kMetaRowCount = 16;
constexpr size_t kMetaNextFree = 24;
constexpr size_t kMetaBtreeRoot = 28;
constexpr size_t kMetaDirHead = 32;
constexpr size_t kMetaFillPage = 36;
constexpr size_t kMetaPkEnabled = 40;

// Directory page: u32 next, u32 count, then {u32 page, u16 slot} entries.
constexpr size_t kDirHeader = 8;
constexpr size_t kDirEntrySize = 6;
constexpr size_t kDirCapacity = (kPageSize - kDirHeader) / kDirEntrySize;

template <typename T>
T ReadAt(const char* page, size_t offset) {
  T v;
  std::memcpy(&v, page + offset, sizeof(T));
  return v;
}

template <typename T>
void WriteAt(char* page, size_t offset, T v) {
  std::memcpy(page + offset, &v, sizeof(T));
}

}  // namespace

PagedEngine::PagedEngine(std::string base_path, int pk_column,
                         StorageOptions options)
    : base_path_(std::move(base_path)),
      page_path_(base_path_ + ".pages"),
      wal_path_(base_path_ + ".wal"),
      pk_column_(pk_column),
      options_(options) {
  if (options_.checkpoint_dirty_pages == 0) {
    options_.checkpoint_dirty_pages = 1;
  }
}

pdgf::StatusOr<std::unique_ptr<PagedEngine>> PagedEngine::Open(
    const std::string& base_path, int pk_column,
    const StorageOptions& options) {
  std::unique_ptr<PagedEngine> engine(
      new PagedEngine(base_path, pk_column, options));
  PDGF_ASSIGN_OR_RETURN(engine->pager_, Pager::Open(engine->page_path_));
  engine->pool_ = std::make_unique<BufferPool>(engine->pager_.get(),
                                               options.pool_pages);
  PDGF_RETURN_IF_ERROR(engine->Initialize(
      /*fresh=*/engine->pager_->page_count() == 0));
  return engine;
}

pdgf::Status PagedEngine::Initialize(bool fresh) {
  if (fresh) {
    tree_ = std::make_unique<BTree>(pool_.get(), this, kInvalidPage);
    PDGF_ASSIGN_OR_RETURN(wal_, Wal::Open(wal_path_, epoch_));
    // A leftover log from a deleted page file would replay nonsense.
    PDGF_RETURN_IF_ERROR(wal_->Reset(epoch_));
    // Stamp the meta page so the file is never open-but-unformatted.
    return Checkpoint();
  }
  PDGF_RETURN_IF_ERROR(LoadMetaAndDirectory());
  tree_ = std::make_unique<BTree>(pool_.get(), this, dir_tree_root_);
  return RecoverFromWal();
}

pdgf::Status PagedEngine::LoadMetaAndDirectory() {
  char meta[kPageSize];
  PDGF_RETURN_IF_ERROR(pager_->Read(kMetaPage, meta));
  if (std::memcmp(meta, kMetaMagic, sizeof(kMetaMagic)) != 0) {
    return pdgf::InternalError("page file " + page_path_ +
                               " has a corrupt meta page");
  }
  epoch_ = ReadAt<uint64_t>(meta, kMetaEpoch);
  uint64_t row_count = ReadAt<uint64_t>(meta, kMetaRowCount);
  next_free_page_ = ReadAt<PageId>(meta, kMetaNextFree);
  dir_tree_root_ = ReadAt<PageId>(meta, kMetaBtreeRoot);
  dir_head_ = ReadAt<PageId>(meta, kMetaDirHead);
  fill_page_ = ReadAt<PageId>(meta, kMetaFillPage);
  pk_index_enabled_ = ReadAt<uint8_t>(meta, kMetaPkEnabled) != 0;

  directory_.clear();
  directory_.reserve(row_count);
  PageId dir_page = dir_head_;
  while (dir_page != kInvalidPage) {
    PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(dir_page));
    const char* page = ref.data();
    PageId next = ReadAt<PageId>(page, 0);
    uint32_t count = ReadAt<uint32_t>(page, 4);
    if (count > kDirCapacity) {
      return pdgf::InternalError("corrupt directory page in " + page_path_);
    }
    for (uint32_t i = 0; i < count; ++i) {
      size_t at = kDirHeader + i * kDirEntrySize;
      directory_.push_back(
          Rid{ReadAt<PageId>(page, at), ReadAt<uint16_t>(page, at + 4)});
    }
    dir_page = next;
  }
  if (directory_.size() != row_count) {
    return pdgf::InternalError(
        "directory row count mismatch in " + page_path_ + ": meta says " +
        std::to_string(row_count) + ", directory holds " +
        std::to_string(directory_.size()));
  }
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::RecoverFromWal() {
  PDGF_ASSIGN_OR_RETURN(Wal::ReplayLog log, Wal::ReadLog(wal_path_));
  PDGF_ASSIGN_OR_RETURN(wal_, Wal::Open(wal_path_, epoch_));
  if (log.epoch != epoch_) {
    // Stale log: the crash landed between the meta-page write and the
    // log rewrite of a checkpoint. The page file already has everything.
    return wal_->Reset(epoch_);
  }
  if (log.tail_torn) {
    PDGF_RETURN_IF_ERROR(wal_->TruncateTo(log.valid_bytes));
  }
  replaying_ = true;
  logging_ = false;
  pdgf::Status status = pdgf::Status::Ok();
  Row row;
  for (const Wal::Record& record : log.records) {
    switch (record.op) {
      case Wal::Op::kInsert: {
        status = DeserializeRow(record.payload, &row);
        if (status.ok()) status = ApplyAppend(record.payload, row);
        break;
      }
      case Wal::Op::kUpdate: {
        uint64_t ordinal;
        std::string_view rest;
        status = DecodeOrdinal(record.payload, &ordinal, &rest);
        if (status.ok()) status = DeserializeRow(rest, &row);
        if (status.ok()) {
          status = ApplyWrite(static_cast<size_t>(ordinal), rest, row);
        }
        break;
      }
      case Wal::Op::kErase: {
        std::vector<size_t> ordinals;
        status = DecodeOrdinals(record.payload, &ordinals);
        if (status.ok()) status = ApplyErase(ordinals);
        break;
      }
      case Wal::Op::kClear:
        status = ApplyClear();
        break;
    }
    if (!status.ok()) break;
  }
  replaying_ = false;
  logging_ = true;
  if (status.ok()) wal_records_ = log.records.size();
  return status;
}

pdgf::StatusOr<PageId> PagedEngine::AllocatePage() {
  if (next_free_page_ == kInvalidPage) {
    return pdgf::ResourceExhaustedError("page file " + page_path_ +
                                        " is full");
  }
  return next_free_page_++;
}

pdgf::StatusOr<Rid> PagedEngine::PlaceRecord(std::string_view record) {
  if (record.size() > SlottedPage::kMaxRecord) {
    return pdgf::InvalidArgumentError(
        "record of " + std::to_string(record.size()) +
        " bytes exceeds the page capacity of " +
        std::to_string(SlottedPage::kMaxRecord));
  }
  if (fill_page_ != kInvalidPage) {
    PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(fill_page_));
    SlottedPage page(ref.data());
    int slot = page.Insert(record);
    if (slot >= 0) {
      ref.MarkDirty();
      return Rid{fill_page_, static_cast<uint16_t>(slot)};
    }
  }
  PDGF_ASSIGN_OR_RETURN(PageId id, AllocatePage());
  PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Create(id));
  SlottedPage page(ref.data());
  page.Init();
  int slot = page.Insert(record);
  if (slot < 0) {
    return pdgf::InternalError("record does not fit an empty page");
  }
  ref.MarkDirty();
  fill_page_ = id;
  return Rid{id, static_cast<uint16_t>(slot)};
}

pdgf::Status PagedEngine::IndexInsert(const Row& row, Rid rid) {
  if (!HasPkIndex()) return pdgf::Status::Ok();
  int64_t key;
  if (pk_column_ >= static_cast<int>(row.size()) ||
      !ExtractIndexKey(row[static_cast<size_t>(pk_column_)], &key)) {
    DisableIndex();
    return pdgf::Status::Ok();
  }
  return tree_->Insert(key, rid);
}

pdgf::Status PagedEngine::IndexErase(const Row& row, Rid rid) {
  if (!HasPkIndex()) return pdgf::Status::Ok();
  int64_t key;
  if (pk_column_ >= static_cast<int>(row.size()) ||
      !ExtractIndexKey(row[static_cast<size_t>(pk_column_)], &key)) {
    return pdgf::Status::Ok();
  }
  return tree_->Delete(key, rid).status();
}

void PagedEngine::DisableIndex() {
  pk_index_enabled_ = false;
  tree_ = std::make_unique<BTree>(pool_.get(), this, kInvalidPage);
}

pdgf::Status PagedEngine::ApplyAppend(std::string_view record,
                                      const Row& row) {
  PDGF_ASSIGN_OR_RETURN(Rid rid, PlaceRecord(record));
  directory_.push_back(rid);
  return IndexInsert(row, rid);
}

pdgf::Status PagedEngine::ApplyWrite(size_t ordinal,
                                     std::string_view record,
                                     const Row& row) {
  if (ordinal >= directory_.size()) {
    return pdgf::OutOfRangeError("update ordinal " +
                                 std::to_string(ordinal) + " out of range");
  }
  Rid rid = directory_[ordinal];
  Row old_row;
  if (HasPkIndex()) {
    PDGF_RETURN_IF_ERROR(ReadRow(ordinal, &old_row));
  }
  bool in_place = false;
  {
    PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(rid.page));
    SlottedPage page(ref.data());
    if (record.size() <= SlottedPage::kMaxRecord &&
        page.Update(rid.slot, record)) {
      in_place = true;
    } else {
      page.Erase(rid.slot);
    }
    ref.MarkDirty();
  }
  Rid new_rid = rid;
  if (!in_place) {
    PDGF_ASSIGN_OR_RETURN(new_rid, PlaceRecord(record));
    directory_[ordinal] = new_rid;
  }
  if (HasPkIndex()) {
    PDGF_RETURN_IF_ERROR(IndexErase(old_row, rid));
    PDGF_RETURN_IF_ERROR(IndexInsert(row, new_rid));
  }
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::ApplyErase(
    const std::vector<size_t>& sorted_ordinals) {
  if (sorted_ordinals.empty()) return pdgf::Status::Ok();
  if (sorted_ordinals.back() >= directory_.size()) {
    return pdgf::OutOfRangeError("erase ordinal out of range");
  }
  Row old_row;
  for (size_t ordinal : sorted_ordinals) {
    Rid rid = directory_[ordinal];
    if (HasPkIndex()) {
      PDGF_RETURN_IF_ERROR(ReadRow(ordinal, &old_row));
      PDGF_RETURN_IF_ERROR(IndexErase(old_row, rid));
    }
    PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(rid.page));
    SlottedPage(ref.data()).Erase(rid.slot);
    ref.MarkDirty();
  }
  // Compact the directory over the gaps in one pass.
  size_t write = sorted_ordinals.front();
  size_t next_to_skip = 0;
  for (size_t read = write; read < directory_.size(); ++read) {
    if (next_to_skip < sorted_ordinals.size() &&
        sorted_ordinals[next_to_skip] == read) {
      ++next_to_skip;
      continue;
    }
    directory_[write++] = directory_[read];
  }
  directory_.resize(write);
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::ApplyClear() {
  directory_.clear();
  fill_page_ = kInvalidPage;
  // Old data and index pages are orphaned (the allocator watermark never
  // rewinds, so their ids are not reused and stale pool frames are
  // harmless). A bad-key disabled index becomes rebuildable again.
  pk_index_enabled_ = pk_column_ >= 0;
  tree_ = std::make_unique<BTree>(pool_.get(), this, kInvalidPage);
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::Append(Row row) {
  if (bulk_mode_) {
    return pdgf::FailedPreconditionError(
        "Append during an active bulk load");
  }
  record_buf_.clear();
  SerializeRow(row, &record_buf_);
  if (logging_) {
    PDGF_RETURN_IF_ERROR(wal_->Append(Wal::Op::kInsert, record_buf_));
    ++wal_records_;
  }
  PDGF_RETURN_IF_ERROR(ApplyAppend(record_buf_, row));
  return MaybeAutoCheckpoint();
}

pdgf::Status PagedEngine::ReadRow(size_t ordinal, Row* out) const {
  if (ordinal >= directory_.size()) {
    return pdgf::OutOfRangeError("row ordinal " + std::to_string(ordinal) +
                                 " out of range");
  }
  Rid rid = directory_[ordinal];
  PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(rid.page));
  SlottedPage page(ref.data());
  if (!page.IsLive(rid.slot)) {
    return pdgf::InternalError("directory points at a tombstone");
  }
  return DeserializeRow(page.Read(rid.slot), out);
}

pdgf::Status PagedEngine::WriteRow(size_t ordinal, const Row& row) {
  if (bulk_mode_) {
    return pdgf::FailedPreconditionError(
        "WriteRow during an active bulk load");
  }
  record_buf_.clear();
  SerializeRow(row, &record_buf_);
  if (logging_) {
    std::string payload;
    EncodeOrdinal(ordinal, &payload);
    payload.append(record_buf_);
    PDGF_RETURN_IF_ERROR(wal_->Append(Wal::Op::kUpdate, payload));
    ++wal_records_;
  }
  PDGF_RETURN_IF_ERROR(ApplyWrite(ordinal, record_buf_, row));
  return MaybeAutoCheckpoint();
}

pdgf::Status PagedEngine::EraseRows(
    const std::vector<size_t>& sorted_ordinals) {
  if (bulk_mode_) {
    return pdgf::FailedPreconditionError(
        "EraseRows during an active bulk load");
  }
  if (sorted_ordinals.empty()) return pdgf::Status::Ok();
  if (logging_) {
    std::string payload;
    EncodeOrdinals(sorted_ordinals, &payload);
    PDGF_RETURN_IF_ERROR(wal_->Append(Wal::Op::kErase, payload));
    ++wal_records_;
  }
  PDGF_RETURN_IF_ERROR(ApplyErase(sorted_ordinals));
  return MaybeAutoCheckpoint();
}

pdgf::Status PagedEngine::Clear() {
  if (bulk_mode_) {
    return pdgf::FailedPreconditionError(
        "Clear during an active bulk load");
  }
  if (logging_) {
    PDGF_RETURN_IF_ERROR(wal_->Append(Wal::Op::kClear, {}));
    ++wal_records_;
  }
  return ApplyClear();
}

pdgf::Status PagedEngine::Scan(
    const std::function<bool(const Row&)>& visitor) const {
  for (size_t ordinal = 0; ordinal < directory_.size(); ++ordinal) {
    PDGF_RETURN_IF_ERROR(ReadRow(ordinal, &scratch_));
    if (!visitor(scratch_)) break;
  }
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::PkLookup(int64_t key,
                                   std::vector<Row>* rows) const {
  if (!HasPkIndex()) {
    return pdgf::FailedPreconditionError(
        "table has no usable primary-key index");
  }
  PDGF_ASSIGN_OR_RETURN(std::vector<Rid> rids, tree_->Lookup(key));
  for (const Rid& rid : rids) {
    PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(rid.page));
    SlottedPage page(ref.data());
    if (!page.IsLive(rid.slot)) {
      return pdgf::InternalError("index points at a tombstone");
    }
    Row row;
    PDGF_RETURN_IF_ERROR(DeserializeRow(page.Read(rid.slot), &row));
    rows->push_back(std::move(row));
  }
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::WriteDirectoryPages(PageId* head) {
  *head = kInvalidPage;
  if (directory_.empty()) return pdgf::Status::Ok();
  // Build back-to-front so each page can name its successor.
  size_t chunks = (directory_.size() + kDirCapacity - 1) / kDirCapacity;
  for (size_t chunk = chunks; chunk-- > 0;) {
    size_t start = chunk * kDirCapacity;
    size_t count = std::min(kDirCapacity, directory_.size() - start);
    PDGF_ASSIGN_OR_RETURN(PageId id, AllocatePage());
    PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Create(id));
    char* page = ref.data();
    WriteAt<PageId>(page, 0, *head);
    WriteAt<uint32_t>(page, 4, static_cast<uint32_t>(count));
    for (size_t i = 0; i < count; ++i) {
      size_t at = kDirHeader + i * kDirEntrySize;
      WriteAt<PageId>(page, at, directory_[start + i].page);
      WriteAt<uint16_t>(page, at + 4, directory_[start + i].slot);
    }
    ref.MarkDirty();
    *head = id;
  }
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::WriteMetaPage() {
  char meta[kPageSize];
  std::memset(meta, 0, kPageSize);
  std::memcpy(meta, kMetaMagic, sizeof(kMetaMagic));
  WriteAt<uint64_t>(meta, kMetaEpoch, epoch_);
  WriteAt<uint64_t>(meta, kMetaRowCount, directory_.size());
  WriteAt<PageId>(meta, kMetaNextFree, next_free_page_);
  WriteAt<PageId>(meta, kMetaBtreeRoot, tree_->root());
  WriteAt<PageId>(meta, kMetaDirHead, dir_head_);
  WriteAt<PageId>(meta, kMetaFillPage, fill_page_);
  WriteAt<uint8_t>(meta, kMetaPkEnabled, pk_index_enabled_ ? 1 : 0);
  return pager_->Write(kMetaPage, meta);
}

pdgf::Status PagedEngine::Checkpoint() {
  if (bulk_mode_) {
    return pdgf::FailedPreconditionError(
        "Checkpoint during an active bulk load");
  }
  // Old directory pages are orphaned; the fresh chain is written first,
  // flushed with every other dirty page, and only then named by the meta
  // page — a crash at any point recovers either the old checkpoint (plus
  // WAL) or the new one.
  PDGF_RETURN_IF_ERROR(WriteDirectoryPages(&dir_head_));
  PDGF_RETURN_IF_ERROR(pool_->FlushAll());
  ++epoch_;
  PDGF_RETURN_IF_ERROR(WriteMetaPage());
  PDGF_RETURN_IF_ERROR(wal_->Reset(epoch_));
  wal_records_ = 0;
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::MaybeAutoCheckpoint() {
  if (replaying_ || bulk_mode_) return pdgf::Status::Ok();
  if (pool_->dirty_count() < options_.checkpoint_dirty_pages) {
    return pdgf::Status::Ok();
  }
  return Checkpoint();
}

pdgf::Status PagedEngine::BulkLoadBegin() {
  if (bulk_mode_) {
    return pdgf::FailedPreconditionError("bulk load already active");
  }
  // Checkpoint first: the meta page then names the pre-load state, so a
  // crash anywhere inside the (WAL-bypassed) load recovers to it.
  PDGF_RETURN_IF_ERROR(Checkpoint());
  bulk_mode_ = true;
  logging_ = false;
  pool_->set_allow_dirty_eviction(true);
  bulk_had_tree_ = tree_->root() != kInvalidPage;
  bulk_keys_.clear();
  if (bulk_buffer_ == nullptr) {
    bulk_buffer_ = std::make_unique<char[]>(kPageSize);
  }
  bulk_page_ = kInvalidPage;
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::BulkLoadAppend(Row row) {
  if (!bulk_mode_) {
    return pdgf::FailedPreconditionError("bulk load is not active");
  }
  record_buf_.clear();
  SerializeRow(row, &record_buf_);
  if (record_buf_.size() > SlottedPage::kMaxRecord) {
    return pdgf::InvalidArgumentError(
        "record of " + std::to_string(record_buf_.size()) +
        " bytes exceeds the page capacity of " +
        std::to_string(SlottedPage::kMaxRecord));
  }
  SlottedPage page(bulk_buffer_.get());
  if (bulk_page_ == kInvalidPage) {
    PDGF_ASSIGN_OR_RETURN(bulk_page_, AllocatePage());
    page.Init();
  }
  int slot = page.Insert(record_buf_);
  if (slot < 0) {
    // Full page: stream it straight through the pager (no WAL, no pool —
    // the id is fresh so nothing can be caching it) and start the next.
    PDGF_RETURN_IF_ERROR(pager_->Write(bulk_page_, bulk_buffer_.get()));
    PDGF_ASSIGN_OR_RETURN(bulk_page_, AllocatePage());
    page.Init();
    slot = page.Insert(record_buf_);
    if (slot < 0) {
      return pdgf::InternalError("record does not fit an empty page");
    }
  }
  Rid rid{bulk_page_, static_cast<uint16_t>(slot)};
  directory_.push_back(rid);
  if (HasPkIndex()) {
    int64_t key;
    if (pk_column_ >= static_cast<int>(row.size()) ||
        !ExtractIndexKey(row[static_cast<size_t>(pk_column_)], &key)) {
      DisableIndex();
      bulk_keys_.clear();
    } else {
      bulk_keys_.push_back({key, rid});
    }
  }
  return pdgf::Status::Ok();
}

pdgf::Status PagedEngine::BulkLoadFinish() {
  if (!bulk_mode_) {
    return pdgf::FailedPreconditionError("bulk load is not active");
  }
  if (bulk_page_ != kInvalidPage) {
    PDGF_RETURN_IF_ERROR(pager_->Write(bulk_page_, bulk_buffer_.get()));
    // Later appends keep filling the final, partially-filled page.
    fill_page_ = bulk_page_;
    bulk_page_ = kInvalidPage;
  }
  if (HasPkIndex() && !bulk_keys_.empty()) {
    if (!bulk_had_tree_) {
      // Generators emit primary keys in order; verify instead of trust,
      // and fall back to a stable sort (preserves per-key insertion
      // order) before the bottom-up build.
      if (!std::is_sorted(bulk_keys_.begin(), bulk_keys_.end(),
                          [](const BTreeEntry& a, const BTreeEntry& b) {
                            return a.key < b.key;
                          })) {
        std::stable_sort(bulk_keys_.begin(), bulk_keys_.end(),
                         [](const BTreeEntry& a, const BTreeEntry& b) {
                           return a.key < b.key;
                         });
      }
      PDGF_RETURN_IF_ERROR(tree_->BulkBuild(bulk_keys_));
    } else {
      // Loading into a non-empty table: extend the existing tree.
      for (const BTreeEntry& entry : bulk_keys_) {
        PDGF_RETURN_IF_ERROR(tree_->Insert(entry.key, entry.rid));
      }
    }
  }
  bulk_keys_.clear();
  bulk_keys_.shrink_to_fit();
  bulk_mode_ = false;
  logging_ = true;
  pool_->set_allow_dirty_eviction(false);
  return Checkpoint();
}

}  // namespace storage
}  // namespace minidb
