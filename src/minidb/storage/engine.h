#ifndef DBSYNTHPP_MINIDB_STORAGE_ENGINE_H_
#define DBSYNTHPP_MINIDB_STORAGE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "minidb/storage/record.h"

namespace minidb {
namespace storage {

// Extracts the index key for a primary-key cell. Only the integer family
// maps onto B+ tree keys: kInt directly, kDate as days-since-epoch.
// Returns false for every other kind (including NULL).
bool ExtractIndexKey(const pdgf::Value& value, int64_t* key);

// Row storage behind one Table. Rows are addressed by their logical
// ordinal (0..row_count), which is stable across engines: ordinal order
// IS insertion order, so scans over either engine visit identical rows
// in identical positions and digests/CSV dumps match byte for byte.
//
// All rows handed to an engine are already coerced to the schema's
// storage kinds (Table validates before calling Append).
class TableEngine {
 public:
  virtual ~TableEngine() = default;

  virtual size_t row_count() const = 0;

  // Appends an already-coerced row at ordinal row_count().
  virtual pdgf::Status Append(Row row) = 0;

  // Copies the row at `ordinal` into `out`.
  virtual pdgf::Status ReadRow(size_t ordinal, Row* out) const = 0;

  // Replaces the row at `ordinal` (UPDATE execution).
  virtual pdgf::Status WriteRow(size_t ordinal, const Row& row) = 0;

  // Removes the rows at `sorted_ordinals` (ascending, in-range);
  // surviving rows keep their relative order and compact downwards.
  virtual pdgf::Status EraseRows(
      const std::vector<size_t>& sorted_ordinals) = 0;

  virtual pdgf::Status Clear() = 0;

  virtual void Reserve(size_t rows) = 0;

  // Visits rows in ordinal order; stops early when the visitor returns
  // false. The Row reference is only valid during the call.
  virtual pdgf::Status Scan(
      const std::function<bool(const Row&)>& visitor) const = 0;

  // Zero-copy peek at a stored row, or nullptr when the engine cannot
  // hand out stable references (paged). Table falls back to ReadRow.
  virtual const Row* PeekRow(size_t ordinal) const {
    (void)ordinal;
    return nullptr;
  }

  // ---- Primary-key index (optional capability) ----

  virtual bool HasPkIndex() const { return false; }

  // Appends every row whose PK equals `key` to `rows`.
  virtual pdgf::Status PkLookup(int64_t key, std::vector<Row>* rows) const {
    (void)key;
    (void)rows;
    return pdgf::UnimplementedError("engine has no primary-key index");
  }

  // ---- Durability (no-ops for volatile engines) ----

  virtual pdgf::Status Checkpoint() { return pdgf::Status::Ok(); }

  // ---- Bulk-load fast path ----
  //
  // Begin/Append*/Finish stream pre-coerced rows through the engine's
  // cheapest insert path (sequential page fills, WAL bypassed, index
  // built bottom-up at Finish). Between Begin and Finish no other
  // mutation or read may run. Volatile engines degrade to Append.

  virtual pdgf::Status BulkLoadBegin() { return pdgf::Status::Ok(); }
  virtual pdgf::Status BulkLoadAppend(Row row) { return Append(std::move(row)); }
  virtual pdgf::Status BulkLoadFinish() { return pdgf::Status::Ok(); }
};

// The original engine: an append-only std::vector of rows.
class HeapEngine : public TableEngine {
 public:
  HeapEngine() = default;

  size_t row_count() const override { return rows_.size(); }
  pdgf::Status Append(Row row) override;
  pdgf::Status ReadRow(size_t ordinal, Row* out) const override;
  pdgf::Status WriteRow(size_t ordinal, const Row& row) override;
  pdgf::Status EraseRows(
      const std::vector<size_t>& sorted_ordinals) override;
  pdgf::Status Clear() override;
  void Reserve(size_t rows) override { rows_.reserve(rows); }
  pdgf::Status Scan(
      const std::function<bool(const Row&)>& visitor) const override;
  const Row* PeekRow(size_t ordinal) const override {
    return ordinal < rows_.size() ? &rows_[ordinal] : nullptr;
  }

 private:
  std::vector<Row> rows_;
};

}  // namespace storage
}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_STORAGE_ENGINE_H_
