#include "minidb/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/files.h"
#include "util/hash.h"

namespace minidb {
namespace storage {

namespace {

constexpr char kMagic[8] = {'M', 'D', 'B', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderSize = 16;  // magic + epoch
constexpr size_t kRecordHeader = 13;  // u32 length + u64 checksum + u8 op

uint64_t Checksum(uint8_t op, std::string_view payload) {
  std::string bytes;
  bytes.reserve(payload.size() + 1);
  bytes.push_back(static_cast<char>(op));
  bytes.append(payload);
  return pdgf::Hash128Bytes(bytes, /*seed=*/0x57414c31).lo;
}

pdgf::Status WriteFully(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return pdgf::IoError(std::string("WAL write failed: ") +
                           std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return pdgf::Status::Ok();
}

template <typename T>
void AppendRaw(T v, std::string* out) {
  char buffer[sizeof(T)];
  std::memcpy(buffer, &v, sizeof(T));
  out->append(buffer, sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view bytes, size_t* pos, T* v) {
  if (*pos + sizeof(T) > bytes.size()) return false;
  std::memcpy(v, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

pdgf::StatusOr<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                               uint64_t epoch) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC | O_APPEND,
                  0644);
  if (fd < 0) {
    return pdgf::IoError("cannot open WAL " + path + ": " +
                         std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  std::unique_ptr<Wal> wal(new Wal(fd, path, epoch));
  if (size < static_cast<off_t>(kHeaderSize)) {
    PDGF_RETURN_IF_ERROR(wal->Reset(epoch));
    return wal;
  }
  // Keep the existing epoch from the file header.
  char header[kHeaderSize];
  ssize_t n = ::pread(fd, header, kHeaderSize, 0);
  if (n != static_cast<ssize_t>(kHeaderSize) ||
      std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    PDGF_RETURN_IF_ERROR(wal->Reset(epoch));
    return wal;
  }
  uint64_t file_epoch;
  std::memcpy(&file_epoch, header + sizeof(kMagic), sizeof(file_epoch));
  wal->epoch_ = file_epoch;
  return wal;
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

pdgf::Status Wal::Append(Op op, std::string_view payload) {
  std::string record;
  record.reserve(kRecordHeader + payload.size());
  AppendRaw(static_cast<uint32_t>(payload.size()), &record);
  AppendRaw(Checksum(static_cast<uint8_t>(op), payload), &record);
  record.push_back(static_cast<char>(op));
  record.append(payload);
  return WriteFully(fd_, record.data(), record.size());
}

pdgf::Status Wal::Reset(uint64_t epoch) {
  if (::ftruncate(fd_, 0) != 0) {
    return pdgf::IoError("cannot truncate WAL " + path_ + ": " +
                         std::strerror(errno));
  }
  // O_APPEND writes always land at the (now zero) end.
  std::string header(kMagic, sizeof(kMagic));
  AppendRaw(epoch, &header);
  PDGF_RETURN_IF_ERROR(WriteFully(fd_, header.data(), header.size()));
  epoch_ = epoch;
  return pdgf::Status::Ok();
}

pdgf::Status Wal::TruncateTo(uint64_t valid_bytes) {
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
    return pdgf::IoError("cannot truncate WAL " + path_ + ": " +
                         std::strerror(errno));
  }
  return pdgf::Status::Ok();
}

pdgf::StatusOr<Wal::ReplayLog> Wal::ReadLog(const std::string& path) {
  ReplayLog log;
  if (!pdgf::PathExists(path)) return log;
  PDGF_ASSIGN_OR_RETURN(std::string contents, pdgf::ReadFileToString(path));
  if (contents.size() < kHeaderSize ||
      std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    log.tail_torn = !contents.empty();
    return log;
  }
  std::memcpy(&log.epoch, contents.data() + sizeof(kMagic),
              sizeof(log.epoch));
  size_t pos = kHeaderSize;
  log.valid_bytes = pos;
  while (pos < contents.size()) {
    size_t record_start = pos;
    uint32_t length;
    uint64_t checksum;
    std::string_view view(contents);
    if (!ReadRaw(view, &pos, &length) || !ReadRaw(view, &pos, &checksum) ||
        pos >= contents.size() || pos + 1 + length > contents.size()) {
      log.tail_torn = true;
      break;
    }
    uint8_t op = static_cast<uint8_t>(contents[pos++]);
    std::string_view payload(contents.data() + pos, length);
    pos += length;
    if (Checksum(op, payload) != checksum || op < 1 || op > 4) {
      log.tail_torn = true;
      pos = record_start;
      break;
    }
    log.records.push_back(
        {static_cast<Op>(op), std::string(payload)});
    log.valid_bytes = pos;
  }
  return log;
}

void EncodeOrdinal(uint64_t ordinal, std::string* out) {
  AppendRaw(ordinal, out);
}

void EncodeOrdinals(const std::vector<size_t>& ordinals, std::string* out) {
  AppendRaw(static_cast<uint64_t>(ordinals.size()), out);
  for (size_t ordinal : ordinals) {
    AppendRaw(static_cast<uint64_t>(ordinal), out);
  }
}

pdgf::Status DecodeOrdinal(std::string_view payload, uint64_t* ordinal,
                           std::string_view* rest) {
  size_t pos = 0;
  if (!ReadRaw(payload, &pos, ordinal)) {
    return pdgf::ParseError("WAL record missing ordinal");
  }
  *rest = payload.substr(pos);
  return pdgf::Status::Ok();
}

pdgf::Status DecodeOrdinals(std::string_view payload,
                            std::vector<size_t>* ordinals) {
  size_t pos = 0;
  uint64_t count;
  if (!ReadRaw(payload, &pos, &count) ||
      payload.size() - pos < count * sizeof(uint64_t)) {
    return pdgf::ParseError("WAL erase record truncated");
  }
  ordinals->clear();
  ordinals->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t ordinal;
    ReadRaw(payload, &pos, &ordinal);
    ordinals->push_back(static_cast<size_t>(ordinal));
  }
  return pdgf::Status::Ok();
}

}  // namespace storage
}  // namespace minidb
