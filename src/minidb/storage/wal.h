#ifndef DBSYNTHPP_MINIDB_STORAGE_WAL_H_
#define DBSYNTHPP_MINIDB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace minidb {
namespace storage {

// A redo-only write-ahead log for one table.
//
// File layout:
//   header   "MDBWAL01" (8 bytes) + uint64 epoch
//   records  uint32 payload length, uint64 checksum, uint8 op, payload
//
// The checksum covers op + payload. Every record is appended (and
// reaches the OS via write(2)) BEFORE the corresponding page mutation is
// applied, and dirty pages are retained in the buffer pool until a
// checkpoint flushes them and rewrites the log with a bumped epoch — so
// the page file always holds exactly the state of the last checkpoint
// and recovery is: load the checkpoint, then replay the log in order.
//
// Replay tolerates a torn tail: a record that is truncated, or whose
// checksum does not match (a torn in-place write), ends replay at the
// last fully durable operation. A log whose epoch does not match the
// page file's epoch is stale (the crash hit between the meta-page write
// and the log rewrite of a checkpoint) and is ignored entirely.
class Wal {
 public:
  enum class Op : uint8_t {
    kInsert = 1,  // payload: serialized row
    kUpdate = 2,  // payload: uint64 ordinal + serialized row
    kErase = 3,   // payload: uint64 count + count x uint64 ordinals
    kClear = 4,   // payload: empty
  };

  struct Record {
    Op op;
    std::string payload;
  };

  struct ReplayLog {
    uint64_t epoch = 0;
    std::vector<Record> records;
    // Bytes of the file covered by the header + intact records; anything
    // past this offset is a torn tail.
    uint64_t valid_bytes = 0;
    bool tail_torn = false;
  };

  // Opens the log for appending, creating it (with `epoch`) if absent.
  // An existing file keeps its contents; call Reset() to start a new
  // epoch after a checkpoint.
  static pdgf::StatusOr<std::unique_ptr<Wal>> Open(const std::string& path,
                                                   uint64_t epoch);

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one redo record and pushes it to the OS.
  pdgf::Status Append(Op op, std::string_view payload);

  // Truncates the log and writes a fresh header for `epoch` (checkpoint).
  pdgf::Status Reset(uint64_t epoch);

  // Drops any torn tail so future appends extend the intact prefix.
  pdgf::Status TruncateTo(uint64_t valid_bytes);

  uint64_t epoch() const { return epoch_; }

  // Parses a log file without opening it for writing.
  static pdgf::StatusOr<ReplayLog> ReadLog(const std::string& path);

 private:
  Wal(int fd, std::string path, uint64_t epoch)
      : fd_(fd), path_(std::move(path)), epoch_(epoch) {}

  int fd_;
  std::string path_;
  uint64_t epoch_;
};

// Payload builders/parsers shared by the engine and the replay path.
void EncodeOrdinal(uint64_t ordinal, std::string* out);
void EncodeOrdinals(const std::vector<size_t>& ordinals, std::string* out);
pdgf::Status DecodeOrdinal(std::string_view payload, uint64_t* ordinal,
                           std::string_view* rest);
pdgf::Status DecodeOrdinals(std::string_view payload,
                            std::vector<size_t>* ordinals);

}  // namespace storage
}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_STORAGE_WAL_H_
