#ifndef DBSYNTHPP_MINIDB_STORAGE_PAGE_H_
#define DBSYNTHPP_MINIDB_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace minidb {
namespace storage {

// All on-disk structures are built from fixed 4KB pages.
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

// A record's physical address: page + slot within the page's directory.
struct Rid {
  PageId page = kInvalidPage;
  uint16_t slot = 0;

  bool operator==(const Rid& other) const {
    return page == other.page && slot == other.slot;
  }
  bool operator!=(const Rid& other) const { return !(*this == other); }
};

// A slotted heap page: records grow upward from the 8-byte header, the
// slot directory grows downward from the page end. Each slot entry holds
// {offset, length}; offset 0 marks a tombstone (no record ever starts at
// offset 0, which is inside the header). Erased record space is
// reclaimed lazily by Compact() when an insert or grow-in-place would
// otherwise fail.
//
// The class is a non-owning view over a kPageSize byte buffer (a buffer
// pool frame); it holds no state of its own.
class SlottedPage {
 public:
  // Largest record one empty page can hold.
  static constexpr size_t kMaxRecord = kPageSize - 8 - 4;

  explicit SlottedPage(char* data) : data_(data) {}

  // Formats a fresh page (zero slots, empty record area).
  void Init();

  uint16_t slot_count() const;
  // Live (non-tombstone) records on the page.
  uint16_t live_count() const;
  // Bytes available for one more record including its new slot entry
  // (after compaction; tombstone slots are reusable for free).
  size_t FreeSpace() const;

  // Appends a record, reusing a tombstone slot when one exists. Returns
  // the slot index, or -1 when the record cannot fit even after
  // compaction.
  int Insert(std::string_view record);

  // Replaces the record in `slot`. Shrinking always succeeds in place;
  // growing succeeds if the page can fit the new length (possibly after
  // compaction). Returns false when the record must be relocated to
  // another page.
  bool Update(uint16_t slot, std::string_view record);

  // Marks the slot as a tombstone. Space is reclaimed lazily.
  void Erase(uint16_t slot);

  // The record bytes at `slot` (empty view for tombstones).
  std::string_view Read(uint16_t slot) const;

  bool IsLive(uint16_t slot) const;

 private:
  // Header field accessors (all little-endian, memcpy for alignment).
  uint16_t free_start() const;
  void set_slot_count(uint16_t v);
  void set_free_start(uint16_t v);

  uint16_t SlotOffset(uint16_t slot) const;
  uint16_t SlotLength(uint16_t slot) const;
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t length);
  // Position of slot entry `slot` within the page (entries grow down
  // from the end).
  size_t SlotEntryPos(uint16_t slot) const;

  // Moves all live records to the front of the record area, updating
  // their slot offsets; tombstone slots are kept (their indices are
  // stable RIDs).
  void Compact();

  char* data_;
};

}  // namespace storage
}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_STORAGE_PAGE_H_
