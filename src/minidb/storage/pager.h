#ifndef DBSYNTHPP_MINIDB_STORAGE_PAGER_H_
#define DBSYNTHPP_MINIDB_STORAGE_PAGER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "minidb/storage/page.h"

namespace minidb {
namespace storage {

// Disk I/O for one table file: a flat array of kPageSize pages addressed
// by PageId, accessed with positioned reads/writes so no seek state is
// shared. The pager knows nothing about page contents; the engine's meta
// page (page 0) carries all structure.
class Pager {
 public:
  // Opens (creating if absent) the page file at `path`.
  static pdgf::StatusOr<std::unique_ptr<Pager>> Open(const std::string& path);

  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Reads page `id` into `out` (kPageSize bytes). Reading a page past
  // the current end of file is an error.
  pdgf::Status Read(PageId id, char* out) const;

  // Writes page `id` from `data`, extending the file as needed.
  pdgf::Status Write(PageId id, const char* data);

  // Pages currently backed by the file (from its size).
  uint64_t page_count() const { return page_count_; }

  const std::string& path() const { return path_; }

 private:
  Pager(int fd, std::string path, uint64_t page_count)
      : fd_(fd), path_(std::move(path)), page_count_(page_count) {}

  int fd_;
  std::string path_;
  uint64_t page_count_;
};

}  // namespace storage
}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_STORAGE_PAGER_H_
