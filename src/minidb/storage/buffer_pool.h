#ifndef DBSYNTHPP_MINIDB_STORAGE_BUFFER_POOL_H_
#define DBSYNTHPP_MINIDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "minidb/storage/page.h"
#include "minidb/storage/pager.h"

namespace minidb {
namespace storage {

class BufferPool;

// A pinned page handle: the frame stays resident while any PageRef to it
// is alive. Move-only; the destructor unpins. Call MarkDirty() after
// mutating the bytes so write-back knows about the change.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  char* data() const { return data_; }
  PageId id() const { return id_; }
  void MarkDirty();
  bool valid() const { return pool_ != nullptr; }
  // Unpins early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, PageId id, char* data)
      : pool_(pool), id_(id), data_(data) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  char* data_ = nullptr;
  bool dirty_ = false;
};

// An LRU page cache over one Pager. Frames are pinned by PageRef while
// in use; unpinned clean frames are evicted least-recently-used when the
// pool is at capacity.
//
// Write-back policy: dirty frames are normally retained in memory until
// FlushAll() — the engine's checkpoint — so the file always holds
// exactly the last checkpoint state and the redo WAL replays onto it
// cleanly (no-steal). During WAL-bypassed bulk loads the engine flips
// set_allow_dirty_eviction(true) and eviction writes dirty LRU pages
// back directly, which is what lets an initial load stream gigabytes
// through a small pool. If every frame is dirty or pinned and dirty
// eviction is off, the pool grows past capacity and records the
// overflow; the engine reacts by checkpointing (see
// StorageOptions::checkpoint_dirty_pages).
//
// Not thread-safe, matching Database's single-connection contract.
class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins page `id`, reading it from disk on a miss.
  pdgf::StatusOr<PageRef> Fetch(PageId id);

  // Pins a zero-initialized frame for a brand-new page (no disk read).
  // The frame starts dirty — a new page must reach disk eventually.
  pdgf::StatusOr<PageRef> Create(PageId id);

  // Writes every dirty frame back. Frames stay cached (now clean).
  pdgf::Status FlushAll();

  // Drops all frames without writing anything (table Clear/destroy).
  // Must not be called with live pins.
  void DiscardAll();

  void set_allow_dirty_eviction(bool allow) {
    allow_dirty_eviction_ = allow;
  }

  size_t dirty_count() const { return dirty_count_; }
  size_t frame_count() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }

  // Observability counters (reset never).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t writebacks() const { return writebacks_; }
  uint64_t overflows() const { return overflows_; }

 private:
  friend class PageRef;

  struct Frame {
    PageId id = kInvalidPage;
    int pins = 0;
    bool dirty = false;
    uint64_t tick = 0;
    std::unique_ptr<char[]> data;
  };

  void Unpin(PageId id, bool dirty);
  // Finds a frame slot for a new page, evicting if at capacity.
  pdgf::StatusOr<size_t> AcquireFrame();
  pdgf::StatusOr<PageRef> PinNew(PageId id, bool read_from_disk);

  Pager* pager_;
  size_t capacity_;
  bool allow_dirty_eviction_ = false;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> index_;
  size_t dirty_count_ = 0;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t writebacks_ = 0;
  uint64_t overflows_ = 0;
};

}  // namespace storage
}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_STORAGE_BUFFER_POOL_H_
