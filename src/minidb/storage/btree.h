#ifndef DBSYNTHPP_MINIDB_STORAGE_BTREE_H_
#define DBSYNTHPP_MINIDB_STORAGE_BTREE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "minidb/storage/buffer_pool.h"
#include "minidb/storage/page.h"

namespace minidb {
namespace storage {

// Supplies fresh page ids to the tree; implemented by the engine, which
// owns the page-allocation watermark in its meta page.
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;
  virtual pdgf::StatusOr<PageId> AllocatePage() = 0;
};

struct BTreeEntry {
  int64_t key;
  Rid rid;
};

// A paged B+ tree keyed by int64 (integer-family primary keys: smallint,
// integer, bigint, and date as days-since-epoch). Values are record ids.
// Duplicates are allowed; leaves are chained for range scans; deletes
// never merge nodes (the generator workload is append-heavy, underfull
// leaves are reclaimed on the next bulk rebuild).
//
// Node layout (raw 4 KiB pages, not slotted):
//   leaf      u8 type=1, u16 count at 2, u32 next_leaf at 4,
//             entries {i64 key, u32 page, u16 slot} from byte 16
//   internal  u8 type=2, u16 key count at 2, u32 child[0] at 4,
//             entries {i64 key, u32 child[i+1]} from byte 16
// An internal key k[i] is the smallest key of child[i+1]'s subtree.
class BTree {
 public:
  // Wraps an existing tree rooted at `root` (kInvalidPage = empty).
  BTree(BufferPool* pool, PageAllocator* allocator, PageId root);

  PageId root() const { return root_; }

  // Inserts one entry (duplicates append after the existing run).
  pdgf::Status Insert(int64_t key, Rid rid);

  // Removes the entry matching (key, rid); returns false when absent.
  pdgf::StatusOr<bool> Delete(int64_t key, Rid rid);

  // Collects every rid stored under `key`, in insertion order.
  pdgf::StatusOr<std::vector<Rid>> Lookup(int64_t key) const;

  // Builds a fresh tree bottom-up from key-sorted entries and returns
  // its root (kInvalidPage when `entries` is empty). The previous root,
  // if any, is orphaned — callers checkpoint afterwards.
  pdgf::Status BulkBuild(const std::vector<BTreeEntry>& entries);

  class Iterator {
   public:
    // Yields entries with key <= high_key in key order; returns false at
    // the end. Copies one leaf at a time so no pin outlives a call.
    bool Next(BTreeEntry* out);
    pdgf::Status status() const { return status_; }

   private:
    friend class BTree;
    Iterator(BufferPool* pool, PageId leaf, size_t pos, int64_t high_key);
    pdgf::Status LoadLeaf(PageId leaf);

    BufferPool* pool_;
    std::vector<BTreeEntry> current_;
    size_t pos_ = 0;
    PageId next_leaf_ = kInvalidPage;
    int64_t high_key_;
    pdgf::Status status_;
  };

  // Positions an iterator at the first entry with key >= low_key; the
  // iterator stops after the last entry with key <= high_key.
  pdgf::StatusOr<Iterator> Seek(int64_t low_key, int64_t high_key) const;

 private:
  // Finds the leaf that may hold the first occurrence of `key`.
  pdgf::StatusOr<PageId> DescendToLeaf(int64_t key) const;

  pdgf::StatusOr<PageId> NewLeaf();
  pdgf::StatusOr<PageId> NewInternal(PageId leftmost_child);

  BufferPool* pool_;
  PageAllocator* allocator_;
  PageId root_;
};

}  // namespace storage
}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_STORAGE_BTREE_H_
