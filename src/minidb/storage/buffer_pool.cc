#include "minidb/storage/buffer_pool.h"

#include <cstring>

namespace minidb {
namespace storage {

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

void PageRef::MarkDirty() { dirty_ = true; }

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages > 0 ? capacity_pages : 1) {}

BufferPool::~BufferPool() = default;

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  Frame& frame = frames_[it->second];
  if (frame.pins > 0) --frame.pins;
  if (dirty && !frame.dirty) {
    frame.dirty = true;
    ++dirty_count_;
  }
  frame.tick = ++tick_;
}

pdgf::StatusOr<size_t> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    size_t slot = free_frames_.back();
    free_frames_.pop_back();
    return slot;
  }
  if (frames_.size() < capacity_) {
    frames_.emplace_back();
    frames_.back().data = std::make_unique<char[]>(kPageSize);
    return frames_.size() - 1;
  }
  // At capacity: evict the LRU unpinned clean frame; failing that, the
  // LRU unpinned dirty frame when dirty eviction is allowed.
  size_t best_clean = frames_.size();
  size_t best_dirty = frames_.size();
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    if (frame.pins > 0) continue;
    if (!frame.dirty) {
      if (best_clean == frames_.size() ||
          frame.tick < frames_[best_clean].tick) {
        best_clean = i;
      }
    } else if (allow_dirty_eviction_) {
      if (best_dirty == frames_.size() ||
          frame.tick < frames_[best_dirty].tick) {
        best_dirty = i;
      }
    }
  }
  size_t victim = best_clean != frames_.size() ? best_clean : best_dirty;
  if (victim == frames_.size()) {
    // Everything is pinned or dirty-retained: grow past capacity rather
    // than fail; the engine checkpoints on dirty pressure.
    ++overflows_;
    frames_.emplace_back();
    frames_.back().data = std::make_unique<char[]>(kPageSize);
    return frames_.size() - 1;
  }
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    PDGF_RETURN_IF_ERROR(pager_->Write(frame.id, frame.data.get()));
    ++writebacks_;
    frame.dirty = false;
    --dirty_count_;
  }
  index_.erase(frame.id);
  ++evictions_;
  return victim;
}

pdgf::StatusOr<PageRef> BufferPool::PinNew(PageId id, bool read_from_disk) {
  PDGF_ASSIGN_OR_RETURN(size_t slot, AcquireFrame());
  Frame& frame = frames_[slot];
  frame.id = id;
  frame.pins = 1;
  frame.dirty = false;
  frame.tick = ++tick_;
  if (read_from_disk) {
    pdgf::Status read = pager_->Read(id, frame.data.get());
    if (!read.ok()) {
      frame.id = kInvalidPage;
      frame.pins = 0;
      free_frames_.push_back(slot);
      return read;
    }
  } else {
    std::memset(frame.data.get(), 0, kPageSize);
    frame.dirty = true;
    ++dirty_count_;
  }
  index_[id] = slot;
  return PageRef(this, id, frame.data.get());
}

pdgf::StatusOr<PageRef> BufferPool::Fetch(PageId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++hits_;
    Frame& frame = frames_[it->second];
    ++frame.pins;
    frame.tick = ++tick_;
    return PageRef(this, id, frame.data.get());
  }
  ++misses_;
  return PinNew(id, /*read_from_disk=*/true);
}

pdgf::StatusOr<PageRef> BufferPool::Create(PageId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    // Re-creating a cached page (e.g. after Clear reuses ids): reset it.
    Frame& frame = frames_[it->second];
    std::memset(frame.data.get(), 0, kPageSize);
    if (!frame.dirty) {
      frame.dirty = true;
      ++dirty_count_;
    }
    ++frame.pins;
    frame.tick = ++tick_;
    return PageRef(this, id, frame.data.get());
  }
  ++misses_;
  return PinNew(id, /*read_from_disk=*/false);
}

pdgf::Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.id == kInvalidPage || !frame.dirty) continue;
    PDGF_RETURN_IF_ERROR(pager_->Write(frame.id, frame.data.get()));
    ++writebacks_;
    frame.dirty = false;
  }
  dirty_count_ = 0;
  return pdgf::Status::Ok();
}

void BufferPool::DiscardAll() {
  frames_.clear();
  free_frames_.clear();
  index_.clear();
  dirty_count_ = 0;
}

}  // namespace storage
}  // namespace minidb
