#include "minidb/storage/btree.h"

#include <algorithm>
#include <cstring>

namespace minidb {
namespace storage {

namespace {

constexpr uint8_t kLeafNode = 1;
constexpr uint8_t kInternalNode = 2;
constexpr size_t kNodeHeader = 16;
constexpr size_t kLeafEntrySize = 14;      // i64 key + u32 page + u16 slot
constexpr size_t kInternalEntrySize = 12;  // i64 key + u32 child
constexpr size_t kLeafCapacity = (kPageSize - kNodeHeader) / kLeafEntrySize;
constexpr size_t kInternalCapacity =
    (kPageSize - kNodeHeader) / kInternalEntrySize;

template <typename T>
T ReadAt(const char* page, size_t offset) {
  T v;
  std::memcpy(&v, page + offset, sizeof(T));
  return v;
}

template <typename T>
void WriteAt(char* page, size_t offset, T v) {
  std::memcpy(page + offset, &v, sizeof(T));
}

uint8_t NodeType(const char* page) { return ReadAt<uint8_t>(page, 0); }
uint16_t NodeCount(const char* page) { return ReadAt<uint16_t>(page, 2); }
void SetNodeCount(char* page, uint16_t count) { WriteAt(page, 2, count); }

PageId NextLeaf(const char* page) { return ReadAt<PageId>(page, 4); }
void SetNextLeaf(char* page, PageId next) { WriteAt(page, 4, next); }

size_t LeafOffset(size_t i) { return kNodeHeader + i * kLeafEntrySize; }
int64_t LeafKey(const char* page, size_t i) {
  return ReadAt<int64_t>(page, LeafOffset(i));
}
Rid LeafRid(const char* page, size_t i) {
  return Rid{ReadAt<PageId>(page, LeafOffset(i) + 8),
             ReadAt<uint16_t>(page, LeafOffset(i) + 12)};
}
void SetLeafEntry(char* page, size_t i, int64_t key, Rid rid) {
  WriteAt(page, LeafOffset(i), key);
  WriteAt(page, LeafOffset(i) + 8, rid.page);
  WriteAt(page, LeafOffset(i) + 12, rid.slot);
}

size_t InternalOffset(size_t i) {
  return kNodeHeader + i * kInternalEntrySize;
}
int64_t InternalKey(const char* page, size_t i) {
  return ReadAt<int64_t>(page, InternalOffset(i));
}
// Child i sits left of key i; child 0 lives in the header.
PageId InternalChild(const char* page, size_t i) {
  if (i == 0) return ReadAt<PageId>(page, 4);
  return ReadAt<PageId>(page, InternalOffset(i - 1) + 8);
}
void SetInternalEntry(char* page, size_t i, int64_t key, PageId child) {
  WriteAt(page, InternalOffset(i), key);
  WriteAt(page, InternalOffset(i) + 8, child);
}
void SetLeftmostChild(char* page, PageId child) { WriteAt(page, 4, child); }

// First index in the leaf with key >= `key`.
size_t LeafLowerBound(const char* page, int64_t key) {
  size_t lo = 0, hi = NodeCount(page);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First index in the leaf with key > `key`.
size_t LeafUpperBound(const char* page, int64_t key) {
  size_t lo = 0, hi = NodeCount(page);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKey(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child to descend into for the FIRST occurrence of `key`: the leftmost
// subtree whose key range may contain it.
size_t RouteLower(const char* page, int64_t key) {
  size_t count = NodeCount(page);
  size_t lo = 0, hi = count;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (InternalKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;  // child index == first key index with k >= key
}

// Child to descend into for inserting `key` after any existing run.
size_t RouteUpper(const char* page, int64_t key) {
  size_t count = NodeCount(page);
  size_t lo = 0, hi = count;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (InternalKey(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void InitLeaf(char* page) {
  std::memset(page, 0, kPageSize);
  WriteAt<uint8_t>(page, 0, kLeafNode);
  SetNextLeaf(page, kInvalidPage);
}

void InitInternal(char* page, PageId leftmost_child) {
  std::memset(page, 0, kPageSize);
  WriteAt<uint8_t>(page, 0, kInternalNode);
  SetLeftmostChild(page, leftmost_child);
}

}  // namespace

BTree::BTree(BufferPool* pool, PageAllocator* allocator, PageId root)
    : pool_(pool), allocator_(allocator), root_(root) {}

pdgf::StatusOr<PageId> BTree::NewLeaf() {
  PDGF_ASSIGN_OR_RETURN(PageId id, allocator_->AllocatePage());
  PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Create(id));
  InitLeaf(ref.data());
  ref.MarkDirty();
  return id;
}

pdgf::StatusOr<PageId> BTree::NewInternal(PageId leftmost_child) {
  PDGF_ASSIGN_OR_RETURN(PageId id, allocator_->AllocatePage());
  PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Create(id));
  InitInternal(ref.data(), leftmost_child);
  ref.MarkDirty();
  return id;
}

pdgf::StatusOr<PageId> BTree::DescendToLeaf(int64_t key) const {
  PageId current = root_;
  while (true) {
    PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(current));
    if (NodeType(ref.data()) == kLeafNode) return current;
    current = InternalChild(ref.data(), RouteLower(ref.data(), key));
  }
}

pdgf::Status BTree::Insert(int64_t key, Rid rid) {
  if (root_ == kInvalidPage) {
    PDGF_ASSIGN_OR_RETURN(root_, NewLeaf());
  }
  // Descend with the insert (upper-bound) routing, remembering the path.
  struct PathStep {
    PageId page;
    size_t child_index;
  };
  std::vector<PathStep> path;
  PageId current = root_;
  while (true) {
    PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(current));
    if (NodeType(ref.data()) == kLeafNode) break;
    size_t child = RouteUpper(ref.data(), key);
    path.push_back({current, child});
    current = InternalChild(ref.data(), child);
  }

  // Insert into the leaf, splitting if full.
  int64_t promoted_key = 0;
  PageId promoted_child = kInvalidPage;
  {
    PDGF_ASSIGN_OR_RETURN(PageRef leaf, pool_->Fetch(current));
    char* page = leaf.data();
    size_t count = NodeCount(page);
    size_t pos = LeafUpperBound(page, key);
    if (count < kLeafCapacity) {
      std::memmove(page + LeafOffset(pos + 1), page + LeafOffset(pos),
                   (count - pos) * kLeafEntrySize);
      SetLeafEntry(page, pos, key, rid);
      SetNodeCount(page, static_cast<uint16_t>(count + 1));
      leaf.MarkDirty();
      return pdgf::Status::Ok();
    }
    // Split: left keeps the first half, right takes the rest.
    PDGF_ASSIGN_OR_RETURN(PageId right_id, NewLeaf());
    PDGF_ASSIGN_OR_RETURN(PageRef right, pool_->Fetch(right_id));
    char* right_page = right.data();
    size_t split = count / 2;
    size_t moved = count - split;
    std::memcpy(right_page + LeafOffset(0), page + LeafOffset(split),
                moved * kLeafEntrySize);
    SetNodeCount(right_page, static_cast<uint16_t>(moved));
    SetNextLeaf(right_page, NextLeaf(page));
    SetNodeCount(page, static_cast<uint16_t>(split));
    SetNextLeaf(page, right_id);
    // Insert into whichever half owns the position.
    if (pos <= split) {
      size_t left_count = split;
      std::memmove(page + LeafOffset(pos + 1), page + LeafOffset(pos),
                   (left_count - pos) * kLeafEntrySize);
      SetLeafEntry(page, pos, key, rid);
      SetNodeCount(page, static_cast<uint16_t>(left_count + 1));
    } else {
      size_t rpos = pos - split;
      std::memmove(right_page + LeafOffset(rpos + 1),
                   right_page + LeafOffset(rpos),
                   (moved - rpos) * kLeafEntrySize);
      SetLeafEntry(right_page, rpos, key, rid);
      SetNodeCount(right_page, static_cast<uint16_t>(moved + 1));
    }
    leaf.MarkDirty();
    right.MarkDirty();
    promoted_key = LeafKey(right_page, 0);
    promoted_child = right_id;
  }

  // Bubble the split up the recorded path.
  while (promoted_child != kInvalidPage) {
    if (path.empty()) {
      PDGF_ASSIGN_OR_RETURN(PageId new_root, NewInternal(root_));
      PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(new_root));
      SetInternalEntry(ref.data(), 0, promoted_key, promoted_child);
      SetNodeCount(ref.data(), 1);
      ref.MarkDirty();
      root_ = new_root;
      return pdgf::Status::Ok();
    }
    PathStep step = path.back();
    path.pop_back();
    PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(step.page));
    char* page = ref.data();
    size_t count = NodeCount(page);
    size_t pos = step.child_index;  // new key lands right of this child
    if (count < kInternalCapacity) {
      std::memmove(page + InternalOffset(pos + 1),
                   page + InternalOffset(pos),
                   (count - pos) * kInternalEntrySize);
      SetInternalEntry(page, pos, promoted_key, promoted_child);
      SetNodeCount(page, static_cast<uint16_t>(count + 1));
      ref.MarkDirty();
      return pdgf::Status::Ok();
    }
    // Split the internal node: the middle key moves up, it does not stay.
    PDGF_ASSIGN_OR_RETURN(PageId right_id,
                          NewInternal(/*leftmost_child=*/kInvalidPage));
    PDGF_ASSIGN_OR_RETURN(PageRef right, pool_->Fetch(right_id));
    char* right_page = right.data();
    // Materialize keys/children with the pending entry applied, then
    // redistribute. count+1 keys, count+2 children.
    std::vector<int64_t> keys;
    std::vector<PageId> children;
    keys.reserve(count + 1);
    children.reserve(count + 2);
    children.push_back(InternalChild(page, 0));
    for (size_t i = 0; i < count; ++i) {
      keys.push_back(InternalKey(page, i));
      children.push_back(InternalChild(page, i + 1));
    }
    keys.insert(keys.begin() + static_cast<ptrdiff_t>(pos), promoted_key);
    children.insert(children.begin() + static_cast<ptrdiff_t>(pos) + 1,
                    promoted_child);
    size_t mid = keys.size() / 2;
    int64_t up_key = keys[mid];
    // Left: keys[0..mid), children[0..mid]; right: keys(mid..), the rest.
    SetLeftmostChild(page, children[0]);
    for (size_t i = 0; i < mid; ++i) {
      SetInternalEntry(page, i, keys[i], children[i + 1]);
    }
    SetNodeCount(page, static_cast<uint16_t>(mid));
    SetLeftmostChild(right_page, children[mid + 1]);
    size_t right_count = keys.size() - mid - 1;
    for (size_t i = 0; i < right_count; ++i) {
      SetInternalEntry(right_page, i, keys[mid + 1 + i],
                       children[mid + 2 + i]);
    }
    SetNodeCount(right_page, static_cast<uint16_t>(right_count));
    ref.MarkDirty();
    right.MarkDirty();
    promoted_key = up_key;
    promoted_child = right_id;
  }
  return pdgf::Status::Ok();
}

pdgf::StatusOr<bool> BTree::Delete(int64_t key, Rid rid) {
  if (root_ == kInvalidPage) return false;
  PDGF_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key));
  while (leaf_id != kInvalidPage) {
    PDGF_ASSIGN_OR_RETURN(PageRef leaf, pool_->Fetch(leaf_id));
    char* page = leaf.data();
    size_t count = NodeCount(page);
    size_t pos = LeafLowerBound(page, key);
    for (; pos < count; ++pos) {
      if (LeafKey(page, pos) != key) return false;
      if (LeafRid(page, pos) == rid) {
        std::memmove(page + LeafOffset(pos), page + LeafOffset(pos + 1),
                     (count - pos - 1) * kLeafEntrySize);
        SetNodeCount(page, static_cast<uint16_t>(count - 1));
        leaf.MarkDirty();
        return true;
      }
    }
    leaf_id = NextLeaf(page);  // run may continue in the next leaf
  }
  return false;
}

pdgf::StatusOr<std::vector<Rid>> BTree::Lookup(int64_t key) const {
  std::vector<Rid> rids;
  if (root_ == kInvalidPage) return rids;
  PDGF_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key));
  while (leaf_id != kInvalidPage) {
    PDGF_ASSIGN_OR_RETURN(PageRef leaf, pool_->Fetch(leaf_id));
    const char* page = leaf.data();
    size_t count = NodeCount(page);
    size_t pos = LeafLowerBound(page, key);
    for (; pos < count; ++pos) {
      if (LeafKey(page, pos) != key) return rids;
      rids.push_back(LeafRid(page, pos));
    }
    leaf_id = NextLeaf(page);
  }
  return rids;
}

BTree::Iterator::Iterator(BufferPool* pool, PageId leaf, size_t pos,
                          int64_t high_key)
    : pool_(pool), pos_(pos), high_key_(high_key) {
  status_ = LoadLeaf(leaf);
}

pdgf::Status BTree::Iterator::LoadLeaf(PageId leaf) {
  current_.clear();
  next_leaf_ = kInvalidPage;
  if (leaf == kInvalidPage) return pdgf::Status::Ok();
  PDGF_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(leaf));
  const char* page = ref.data();
  size_t count = NodeCount(page);
  current_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    current_.push_back({LeafKey(page, i), LeafRid(page, i)});
  }
  next_leaf_ = NextLeaf(page);
  return pdgf::Status::Ok();
}

bool BTree::Iterator::Next(BTreeEntry* out) {
  while (status_.ok()) {
    if (pos_ < current_.size()) {
      if (current_[pos_].key > high_key_) return false;
      *out = current_[pos_++];
      return true;
    }
    if (next_leaf_ == kInvalidPage) return false;
    status_ = LoadLeaf(next_leaf_);
    pos_ = 0;
  }
  return false;
}

pdgf::StatusOr<BTree::Iterator> BTree::Seek(int64_t low_key,
                                            int64_t high_key) const {
  if (root_ == kInvalidPage) {
    return Iterator(pool_, kInvalidPage, 0, high_key);
  }
  PDGF_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(low_key));
  PDGF_ASSIGN_OR_RETURN(PageRef leaf, pool_->Fetch(leaf_id));
  size_t pos = LeafLowerBound(leaf.data(), low_key);
  leaf.Release();
  Iterator it(pool_, leaf_id, pos, high_key);
  if (!it.status().ok()) return it.status();
  return it;
}

pdgf::Status BTree::BulkBuild(const std::vector<BTreeEntry>& entries) {
  root_ = kInvalidPage;
  if (entries.empty()) return pdgf::Status::Ok();

  struct LevelEntry {
    int64_t min_key;
    PageId page;
  };
  std::vector<LevelEntry> level;

  // Fill leaves sequentially and chain them.
  PageId prev_leaf = kInvalidPage;
  for (size_t start = 0; start < entries.size(); start += kLeafCapacity) {
    size_t count = std::min(kLeafCapacity, entries.size() - start);
    PDGF_ASSIGN_OR_RETURN(PageId leaf_id, NewLeaf());
    PDGF_ASSIGN_OR_RETURN(PageRef leaf, pool_->Fetch(leaf_id));
    char* page = leaf.data();
    for (size_t i = 0; i < count; ++i) {
      const BTreeEntry& e = entries[start + i];
      SetLeafEntry(page, i, e.key, e.rid);
    }
    SetNodeCount(page, static_cast<uint16_t>(count));
    leaf.MarkDirty();
    if (prev_leaf != kInvalidPage) {
      PDGF_ASSIGN_OR_RETURN(PageRef prev, pool_->Fetch(prev_leaf));
      SetNextLeaf(prev.data(), leaf_id);
      prev.MarkDirty();
    }
    prev_leaf = leaf_id;
    level.push_back({entries[start].key, leaf_id});
  }

  // Build internal levels until one node remains.
  while (level.size() > 1) {
    std::vector<LevelEntry> parents;
    // A parent holds up to kInternalCapacity keys = capacity+1 children.
    const size_t fanout = kInternalCapacity + 1;
    for (size_t start = 0; start < level.size(); start += fanout) {
      size_t group = std::min(fanout, level.size() - start);
      PDGF_ASSIGN_OR_RETURN(PageId node_id,
                            NewInternal(level[start].page));
      PDGF_ASSIGN_OR_RETURN(PageRef node, pool_->Fetch(node_id));
      char* page = node.data();
      for (size_t i = 1; i < group; ++i) {
        SetInternalEntry(page, i - 1, level[start + i].min_key,
                         level[start + i].page);
      }
      SetNodeCount(page, static_cast<uint16_t>(group - 1));
      node.MarkDirty();
      parents.push_back({level[start].min_key, node_id});
    }
    level = std::move(parents);
  }
  root_ = level.front().page;
  return pdgf::Status::Ok();
}

}  // namespace storage
}  // namespace minidb
