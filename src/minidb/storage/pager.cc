#include "minidb/storage/pager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace minidb {
namespace storage {

pdgf::StatusOr<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return pdgf::IoError("cannot open page file " + path + ": " +
                         std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    return pdgf::IoError("cannot stat page file " + path + ": " +
                         std::strerror(saved));
  }
  uint64_t pages = static_cast<uint64_t>(st.st_size) / kPageSize;
  return std::unique_ptr<Pager>(new Pager(fd, path, pages));
}

Pager::~Pager() {
  if (fd_ >= 0) ::close(fd_);
}

pdgf::Status Pager::Read(PageId id, char* out) const {
  if (id >= page_count_) {
    return pdgf::OutOfRangeError("page " + std::to_string(id) +
                                 " past end of " + path_);
  }
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, out + done, kPageSize - done,
                        static_cast<off_t>(id) * kPageSize + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return pdgf::IoError("pread failed on " + path_ + ": " +
                           std::strerror(errno));
    }
    if (n == 0) {
      return pdgf::IoError("short read of page " + std::to_string(id) +
                           " from " + path_);
    }
    done += static_cast<size_t>(n);
  }
  return pdgf::Status::Ok();
}

pdgf::Status Pager::Write(PageId id, const char* data) {
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pwrite(fd_, data + done, kPageSize - done,
                         static_cast<off_t>(id) * kPageSize + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return pdgf::IoError("pwrite failed on " + path_ + ": " +
                           std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  if (static_cast<uint64_t>(id) + 1 > page_count_) {
    page_count_ = static_cast<uint64_t>(id) + 1;
  }
  return pdgf::Status::Ok();
}

}  // namespace storage
}  // namespace minidb
