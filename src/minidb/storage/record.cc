#include "minidb/storage/record.h"

#include <cstring>

namespace minidb {
namespace storage {

using pdgf::Value;

namespace {

enum Tag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagDouble = 3,
  kTagDecimal = 4,
  kTagString = 5,
  kTagDate = 6,
};

template <typename T>
void AppendRaw(T v, std::string* out) {
  char buffer[sizeof(T)];
  std::memcpy(buffer, &v, sizeof(T));
  out->append(buffer, sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view bytes, size_t* pos, T* v) {
  if (*pos + sizeof(T) > bytes.size()) return false;
  std::memcpy(v, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

void SerializeRow(const Row& row, std::string* out) {
  AppendRaw(static_cast<uint16_t>(row.size()), out);
  for (const Value& value : row) {
    switch (value.kind()) {
      case Value::Kind::kNull:
        out->push_back(static_cast<char>(kTagNull));
        break;
      case Value::Kind::kBool:
        out->push_back(static_cast<char>(kTagBool));
        out->push_back(value.bool_value() ? 1 : 0);
        break;
      case Value::Kind::kInt:
        out->push_back(static_cast<char>(kTagInt));
        AppendRaw(value.int_value(), out);
        break;
      case Value::Kind::kDouble:
        out->push_back(static_cast<char>(kTagDouble));
        AppendRaw(value.double_value(), out);
        break;
      case Value::Kind::kDecimal:
        out->push_back(static_cast<char>(kTagDecimal));
        AppendRaw(value.decimal_unscaled(), out);
        out->push_back(static_cast<char>(value.decimal_scale()));
        break;
      case Value::Kind::kString: {
        out->push_back(static_cast<char>(kTagString));
        const std::string& text = value.string_value();
        AppendRaw(static_cast<uint32_t>(text.size()), out);
        out->append(text);
        break;
      }
      case Value::Kind::kDate:
        out->push_back(static_cast<char>(kTagDate));
        AppendRaw(
            static_cast<int32_t>(value.date_value().days_since_epoch()),
            out);
        break;
    }
  }
}

size_t SerializedRowSize(const Row& row) {
  size_t size = sizeof(uint16_t);
  for (const Value& value : row) {
    size += 1;  // tag
    switch (value.kind()) {
      case Value::Kind::kNull:
        break;
      case Value::Kind::kBool:
        size += 1;
        break;
      case Value::Kind::kInt:
      case Value::Kind::kDouble:
        size += 8;
        break;
      case Value::Kind::kDecimal:
        size += 9;
        break;
      case Value::Kind::kString:
        size += 4 + value.string_value().size();
        break;
      case Value::Kind::kDate:
        size += 4;
        break;
    }
  }
  return size;
}

pdgf::Status DeserializeRow(std::string_view bytes, Row* out) {
  size_t pos = 0;
  uint16_t cells = 0;
  if (!ReadRaw(bytes, &pos, &cells)) {
    return pdgf::ParseError("record truncated: missing cell count");
  }
  // Keep existing Value slots (and their string capacity) where possible.
  out->resize(cells);
  for (uint16_t c = 0; c < cells; ++c) {
    Value& value = (*out)[c];
    if (pos >= bytes.size()) {
      return pdgf::ParseError("record truncated: missing cell tag");
    }
    uint8_t tag = static_cast<uint8_t>(bytes[pos++]);
    bool ok = true;
    switch (tag) {
      case kTagNull:
        value.SetNull();
        break;
      case kTagBool: {
        if (pos >= bytes.size()) {
          ok = false;
          break;
        }
        value.SetBool(bytes[pos++] != 0);
        break;
      }
      case kTagInt: {
        int64_t v;
        ok = ReadRaw(bytes, &pos, &v);
        if (ok) value.SetInt(v);
        break;
      }
      case kTagDouble: {
        double v;
        ok = ReadRaw(bytes, &pos, &v);
        if (ok) value.SetDouble(v);
        break;
      }
      case kTagDecimal: {
        int64_t unscaled;
        ok = ReadRaw(bytes, &pos, &unscaled) && pos < bytes.size();
        if (ok) {
          int scale = static_cast<int8_t>(bytes[pos++]);
          value.SetDecimal(unscaled, scale);
        }
        break;
      }
      case kTagString: {
        uint32_t length;
        ok = ReadRaw(bytes, &pos, &length) &&
             pos + length <= bytes.size();
        if (ok) {
          value.SetString(std::string_view(bytes.data() + pos, length));
          pos += length;
        }
        break;
      }
      case kTagDate: {
        int32_t days;
        ok = ReadRaw(bytes, &pos, &days);
        if (ok) value.SetDate(pdgf::Date(days));
        break;
      }
      default:
        return pdgf::ParseError("record holds unknown cell tag " +
                                   std::to_string(tag));
    }
    if (!ok) return pdgf::ParseError("record truncated inside a cell");
  }
  if (pos != bytes.size()) {
    return pdgf::ParseError("record has trailing bytes");
  }
  return pdgf::Status::Ok();
}

}  // namespace storage
}  // namespace minidb
