#ifndef DBSYNTHPP_MINIDB_STORAGE_RECORD_H_
#define DBSYNTHPP_MINIDB_STORAGE_RECORD_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace minidb {

using Row = std::vector<pdgf::Value>;

namespace storage {

// Typed record serialization: one coerced Row <-> a byte string stored
// in a slotted page (and in WAL redo records). The encoding is
// self-describing per cell — a 1-byte kind tag followed by the payload —
// so a deserialized Row reproduces the original Value kinds (and decimal
// scales) exactly; round-tripping is byte-stable, which is what keeps
// paged-engine table digests identical to the heap engine's.
//
// Record layout: uint16 cell count, then one encoded cell per column.
// Cell encodings (little-endian):
//   kNull     tag 0
//   kBool     tag 1, 1 byte
//   kInt      tag 2, int64
//   kDouble   tag 3, 8 raw bytes
//   kDecimal  tag 4, int64 unscaled + int8 scale
//   kString   tag 5, uint32 length + bytes
//   kDate     tag 6, int32 days-since-epoch

// Appends the serialized form of `row` to `out`.
void SerializeRow(const Row& row, std::string* out);

// Exact number of bytes SerializeRow would append (cheap; no copies).
size_t SerializedRowSize(const Row& row);

// Parses a serialized record. `out` is cleared first; its Values reuse
// their string buffers across calls (scan hot path).
pdgf::Status DeserializeRow(std::string_view bytes, Row* out);

}  // namespace storage
}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_STORAGE_RECORD_H_
