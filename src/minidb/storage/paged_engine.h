#ifndef DBSYNTHPP_MINIDB_STORAGE_PAGED_ENGINE_H_
#define DBSYNTHPP_MINIDB_STORAGE_PAGED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "minidb/storage/btree.h"
#include "minidb/storage/buffer_pool.h"
#include "minidb/storage/engine.h"
#include "minidb/storage/page.h"
#include "minidb/storage/pager.h"
#include "minidb/storage/wal.h"

namespace minidb {
namespace storage {

struct StorageOptions {
  // Buffer pool capacity in 4 KiB pages (soft: the pool grows past it
  // when every frame is pinned or dirty-retained).
  size_t pool_pages = 256;
  // Auto-checkpoint once this many dirty pages accumulate; keeps the
  // no-steal pool's memory bounded between explicit checkpoints.
  size_t checkpoint_dirty_pages = 192;
};

// The durable table engine: rows live in slotted pages behind an LRU
// buffer pool, mutations are redo-logged to a WAL before they touch a
// page, and an optional B+ tree indexes an integer-family primary key.
//
// Files (per table): <base>.pages and <base>.wal.
//
// Page 0 is the meta page:
//   "MDBPAGE1" magic, u64 epoch, u64 row_count, u32 next_free_page,
//   u32 btree_root, u32 dir_head, u32 fill_page, u8 pk_index_enabled
// The meta page is written LAST during a checkpoint, after every dirty
// page has been flushed, so it atomically names the checkpoint state;
// the WAL is then rewritten with the bumped epoch. A WAL whose epoch
// differs from the meta page's is stale and ignored on open.
//
// The logical row order (ordinal -> rid) is kept in an in-memory
// directory and persisted to a chain of directory pages at checkpoint.
// Ordinal order is insertion order, which is what keeps scans — and
// therefore CSV dumps and table digests — byte-identical to the heap
// engine, even when an UPDATE relocates a grown record.
class PagedEngine : public TableEngine, public PageAllocator {
 public:
  // Opens (or creates) the table files rooted at `base_path`. When the
  // page file already exists, recovers: loads the checkpointed state and
  // replays the WAL, truncating any torn tail. `pk_column` is the
  // column ordinal of a single-column integer-family primary key, or -1
  // for no index.
  static pdgf::StatusOr<std::unique_ptr<PagedEngine>> Open(
      const std::string& base_path, int pk_column,
      const StorageOptions& options);

  ~PagedEngine() override = default;

  // TableEngine:
  size_t row_count() const override { return directory_.size(); }
  pdgf::Status Append(Row row) override;
  pdgf::Status ReadRow(size_t ordinal, Row* out) const override;
  pdgf::Status WriteRow(size_t ordinal, const Row& row) override;
  pdgf::Status EraseRows(
      const std::vector<size_t>& sorted_ordinals) override;
  pdgf::Status Clear() override;
  void Reserve(size_t rows) override { directory_.reserve(rows); }
  pdgf::Status Scan(
      const std::function<bool(const Row&)>& visitor) const override;
  bool HasPkIndex() const override {
    return pk_column_ >= 0 && pk_index_enabled_;
  }
  pdgf::Status PkLookup(int64_t key,
                        std::vector<Row>* rows) const override;
  pdgf::Status Checkpoint() override;
  pdgf::Status BulkLoadBegin() override;
  pdgf::Status BulkLoadAppend(Row row) override;
  pdgf::Status BulkLoadFinish() override;

  // PageAllocator:
  pdgf::StatusOr<PageId> AllocatePage() override;

  // Introspection (tests, metrics).
  const BufferPool& pool() const { return *pool_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t wal_records() const { return wal_records_; }
  const std::string& page_path() const { return page_path_; }
  const std::string& wal_path() const { return wal_path_; }

 private:
  PagedEngine(std::string base_path, int pk_column, StorageOptions options);

  pdgf::Status Initialize(bool fresh);
  pdgf::Status LoadMetaAndDirectory();
  pdgf::Status RecoverFromWal();

  // Mutation bodies shared by the public methods and WAL replay (replay
  // calls them with logging_ off).
  pdgf::Status ApplyAppend(std::string_view record, const Row& row);
  pdgf::Status ApplyWrite(size_t ordinal, std::string_view record,
                          const Row& row);
  pdgf::Status ApplyErase(const std::vector<size_t>& sorted_ordinals);
  pdgf::Status ApplyClear();

  // Places a record on the current fill page, opening a new one when it
  // does not fit. Returns the record's rid.
  pdgf::StatusOr<Rid> PlaceRecord(std::string_view record);

  pdgf::Status IndexInsert(const Row& row, Rid rid);
  pdgf::Status IndexErase(const Row& row, Rid rid);
  // Drops the index (a PK value that cannot be keyed showed up). The
  // disabled flag persists in the meta page; Clear() re-enables.
  void DisableIndex();

  pdgf::Status WriteMetaPage();
  pdgf::Status WriteDirectoryPages(PageId* head);
  pdgf::Status MaybeAutoCheckpoint();

  std::string base_path_;
  std::string page_path_;
  std::string wal_path_;
  int pk_column_;
  StorageOptions options_;

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BTree> tree_;

  std::vector<Rid> directory_;  // ordinal -> rid, insertion order
  uint64_t epoch_ = 1;
  PageId next_free_page_ = 1;  // page 0 is the meta page
  PageId fill_page_ = kInvalidPage;
  PageId dir_head_ = kInvalidPage;
  PageId dir_tree_root_ = kInvalidPage;  // checkpointed root (open path)
  bool pk_index_enabled_ = true;
  bool logging_ = true;    // off during replay and bulk load
  bool replaying_ = false;
  bool bulk_mode_ = false;
  uint64_t wal_records_ = 0;

  // Bulk-load state: records are packed into this local buffer and
  // written straight through the pager, bypassing pool and WAL.
  std::unique_ptr<char[]> bulk_buffer_;
  PageId bulk_page_ = kInvalidPage;
  std::vector<BTreeEntry> bulk_keys_;
  bool bulk_had_tree_ = false;

  mutable Row scratch_;      // scan/read decode buffer
  std::string record_buf_;   // serialization buffer reused per mutation
};

}  // namespace storage
}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_STORAGE_PAGED_ENGINE_H_
