#include "minidb/storage/engine.h"

namespace minidb {
namespace storage {

bool ExtractIndexKey(const pdgf::Value& value, int64_t* key) {
  switch (value.kind()) {
    case pdgf::Value::Kind::kInt:
      *key = value.int_value();
      return true;
    case pdgf::Value::Kind::kDate:
      *key = value.date_value().days_since_epoch();
      return true;
    default:
      return false;
  }
}

pdgf::Status HeapEngine::Append(Row row) {
  rows_.push_back(std::move(row));
  return pdgf::Status::Ok();
}

pdgf::Status HeapEngine::ReadRow(size_t ordinal, Row* out) const {
  if (ordinal >= rows_.size()) {
    return pdgf::OutOfRangeError("row ordinal " + std::to_string(ordinal) +
                                 " out of range");
  }
  *out = rows_[ordinal];
  return pdgf::Status::Ok();
}

pdgf::Status HeapEngine::WriteRow(size_t ordinal, const Row& row) {
  if (ordinal >= rows_.size()) {
    return pdgf::OutOfRangeError("row ordinal " + std::to_string(ordinal) +
                                 " out of range");
  }
  rows_[ordinal] = row;
  return pdgf::Status::Ok();
}

pdgf::Status HeapEngine::EraseRows(
    const std::vector<size_t>& sorted_ordinals) {
  if (sorted_ordinals.empty()) return pdgf::Status::Ok();
  if (sorted_ordinals.back() >= rows_.size()) {
    return pdgf::OutOfRangeError("erase ordinal out of range");
  }
  // Single compaction pass: copy surviving rows over the gaps.
  size_t write = sorted_ordinals.front();
  size_t next_to_skip = 0;
  for (size_t read = write; read < rows_.size(); ++read) {
    if (next_to_skip < sorted_ordinals.size() &&
        sorted_ordinals[next_to_skip] == read) {
      ++next_to_skip;
      continue;
    }
    rows_[write++] = std::move(rows_[read]);
  }
  rows_.resize(write);
  return pdgf::Status::Ok();
}

pdgf::Status HeapEngine::Clear() {
  rows_.clear();
  return pdgf::Status::Ok();
}

pdgf::Status HeapEngine::Scan(
    const std::function<bool(const Row&)>& visitor) const {
  for (const Row& row : rows_) {
    if (!visitor(row)) break;
  }
  return pdgf::Status::Ok();
}

}  // namespace storage
}  // namespace minidb
