#ifndef DBSYNTHPP_MINIDB_DATABASE_H_
#define DBSYNTHPP_MINIDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "minidb/storage/paged_engine.h"
#include "minidb/table.h"
#include "minidb/virtual_table.h"

namespace minidb {

// Which row-storage engine Database wires into new tables.
enum class EngineKind {
  kHeap,   // in-memory std::vector rows (the default)
  kPaged,  // 4 KiB slotted pages + WAL + B+ tree PK index, on disk
};

// Strict parse of an --engine flag value ("heap" | "paged").
pdgf::StatusOr<EngineKind> ParseEngineKind(std::string_view text);
const char* EngineKindName(EngineKind kind);

struct EngineConfig {
  EngineKind kind = EngineKind::kHeap;
  // Directory holding per-table .pages/.wal files (paged only; created
  // on demand).
  std::string data_dir;
  storage::StorageOptions storage;
};

// An embedded relational database. Stands in for the JDBC-reachable
// PostgreSQL/MySQL instances of the paper (DESIGN.md substitution S11):
// it exposes exactly the surface DBSynth profiles — catalog metadata
// with PK/FK constraints, scans for sampling, and a SQL subset for
// DDL/DML/verification queries. Row storage is pluggable per
// EngineConfig: fully in-memory, or durable slotted pages behind a
// buffer pool with WAL crash recovery.
//
// Not thread-safe; callers serialize access (DBSynth and the examples
// use a single connection).
class Database {
 public:
  Database() = default;
  explicit Database(EngineConfig config) : config_(std::move(config)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const EngineConfig& config() const { return config_; }

  // Creates a table; fails on duplicates or FK targets that don't exist.
  // With the paged engine this opens (and, when files already exist,
  // recovers) the table's on-disk state.
  pdgf::Status CreateTable(TableSchema schema);
  // Drops the table; a paged table's data files are deleted too.
  pdgf::Status DropTable(const std::string& name);

  // nullptr when absent (name match is case-insensitive).
  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  // Virtual tables (CREATE VIRTUAL TABLE name USING module(args...)).
  // A module is registered once by name; creation instantiates one
  // VirtualTable through its factory. Virtual names share the stored
  // tables' namespace, and DropTable works on either kind.
  void RegisterVirtualModule(const std::string& name,
                             VirtualTableFactory factory);
  pdgf::Status CreateVirtualTable(const std::string& table_name,
                                  const std::string& module,
                                  const std::vector<std::string>& args);
  // nullptr when absent (case-insensitive; stored tables not included).
  const VirtualTable* GetVirtualTable(std::string_view name) const;

  // Stored then virtual table names, each in creation order.
  std::vector<std::string> TableNames() const;
  size_t table_count() const {
    return tables_.size() + virtual_tables_.size();
  }

  // Checkpoints every table (durable engines flush; heap is a no-op).
  pdgf::Status CheckpointAll();

 private:
  // <data_dir>/<lowercased name> — the base for .pages/.wal files.
  std::string TableBasePath(const std::string& name) const;

  EngineConfig config_;
  // Creation-ordered list; lookups scan (table counts are small).
  std::vector<std::unique_ptr<Table>> tables_;
  struct NamedVirtualTable {
    std::string name;
    std::unique_ptr<VirtualTable> table;
  };
  std::vector<NamedVirtualTable> virtual_tables_;
  std::map<std::string, VirtualTableFactory> modules_;  // lower-cased name
};

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_DATABASE_H_
