#ifndef DBSYNTHPP_MINIDB_DATABASE_H_
#define DBSYNTHPP_MINIDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "minidb/table.h"

namespace minidb {

// An embedded, in-memory relational database. Stands in for the JDBC-
// reachable PostgreSQL/MySQL instances of the paper (DESIGN.md
// substitution S11): it exposes exactly the surface DBSynth profiles —
// catalog metadata with PK/FK constraints, scans for sampling, and a SQL
// subset for DDL/DML/verification queries.
//
// Not thread-safe; callers serialize access (DBSynth and the examples
// use a single connection).
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Creates a table; fails on duplicates or FK targets that don't exist.
  pdgf::Status CreateTable(TableSchema schema);
  pdgf::Status DropTable(const std::string& name);

  // nullptr when absent (name match is case-insensitive).
  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  // Table names in creation order.
  std::vector<std::string> TableNames() const;
  size_t table_count() const { return tables_.size(); }

 private:
  // Creation-ordered list; lookups scan (table counts are small).
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_DATABASE_H_
