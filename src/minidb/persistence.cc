#include "minidb/persistence.h"

#include <vector>

#include "minidb/sql.h"
#include "util/files.h"
#include "util/strings.h"

namespace minidb {

CsvOptions PersistenceCsvOptions() {
  CsvOptions options;
  options.delimiter = '|';
  options.null_marker = "\\N";
  return options;
}

pdgf::Status SaveDatabase(const Database& database,
                          const std::string& directory,
                          const CsvOptions& options) {
  PDGF_RETURN_IF_ERROR(pdgf::MakeDirectories(directory));

  // DDL in dependency order: a table is emitted once every FK target of
  // it has been emitted (self-references allowed).
  std::vector<const Table*> pending;
  for (const std::string& name : database.TableNames()) {
    pending.push_back(database.GetTable(name));
  }
  std::vector<const Table*> ordered;
  auto emitted = [&ordered](const std::string& name) {
    for (const Table* table : ordered) {
      if (pdgf::EqualsIgnoreCase(table->name(), name)) return true;
    }
    return false;
  };
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      bool ready = true;
      for (const ColumnDef& column : pending[i]->schema().columns) {
        if (column.is_foreign_key() && !emitted(column.ref_table) &&
            !pdgf::EqualsIgnoreCase(column.ref_table, pending[i]->name())) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      ordered.push_back(pending[i]);
      pending.erase(pending.begin() + static_cast<long>(i));
      progressed = true;
      break;
    }
    if (!progressed) {
      return pdgf::FailedPreconditionError(
          "cyclic foreign keys; cannot order schema.sql");
    }
  }

  std::string ddl;
  for (const Table* table : ordered) {
    ddl += BuildCreateTableSql(table->schema());
    ddl += ";\n";
  }
  PDGF_RETURN_IF_ERROR(pdgf::WriteStringToFile(
      pdgf::JoinPath(directory, "schema.sql"), ddl));

  for (const Table* table : ordered) {
    PDGF_RETURN_IF_ERROR(pdgf::WriteStringToFile(
        pdgf::JoinPath(directory, table->name() + ".csv"),
        TableToCsv(*table, options)));
  }
  return pdgf::Status::Ok();
}

pdgf::StatusOr<Database> LoadDatabase(const std::string& directory,
                                      const CsvOptions& options) {
  return LoadDatabase(directory, options, EngineConfig{});
}

pdgf::StatusOr<Database> LoadDatabase(const std::string& directory,
                                      const CsvOptions& options,
                                      EngineConfig engine) {
  PDGF_ASSIGN_OR_RETURN(
      std::string ddl,
      pdgf::ReadFileToString(pdgf::JoinPath(directory, "schema.sql")));
  Database database(std::move(engine));
  {
    auto created = ExecuteSqlScript(&database, ddl);
    if (!created.ok()) return created.status();
  }
  for (const std::string& name : database.TableNames()) {
    std::string path = pdgf::JoinPath(directory, name + ".csv");
    if (!pdgf::PathExists(path)) continue;  // schema-only table
    PDGF_ASSIGN_OR_RETURN(
        uint64_t loaded,
        LoadCsvFileIntoTable(path, database.GetTable(name), options));
    (void)loaded;
  }
  return database;
}

}  // namespace minidb
