#ifndef DBSYNTHPP_MINIDB_CSV_H_
#define DBSYNTHPP_MINIDB_CSV_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "minidb/database.h"

namespace minidb {

// CSV import/export: the bulk-load path between PDGF output and MiniDB
// ("the data can be loaded into the target database ... using a bulk
// load option", paper §3).

struct CsvOptions {
  char delimiter = '|';
  char quote = '"';
  // Unquoted cells equal to this marker load as NULL.
  std::string null_marker;
  bool has_header = false;
};

// Parses `text` and appends the rows to `table`, coercing cells to the
// column types. Returns the number of rows loaded.
pdgf::StatusOr<uint64_t> LoadCsvIntoTable(std::string_view text, Table* table,
                                          const CsvOptions& options = {});

// Loads a CSV file into `table`.
pdgf::StatusOr<uint64_t> LoadCsvFileIntoTable(const std::string& path,
                                              Table* table,
                                              const CsvOptions& options = {});

// Renders the table as CSV (no header).
std::string TableToCsv(const Table& table, const CsvOptions& options = {});

}  // namespace minidb

#endif  // DBSYNTHPP_MINIDB_CSV_H_
