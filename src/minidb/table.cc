#include "minidb/table.h"

#include <cmath>

namespace minidb {

using pdgf::DataType;
using pdgf::Value;

pdgf::StatusOr<Value> CoerceValue(const ColumnDef& column,
                                  const Value& value) {
  if (value.is_null()) {
    if (!column.nullable) {
      return pdgf::InvalidArgumentError("NULL in NOT NULL column '" +
                                        column.name + "'");
    }
    return Value::Null();
  }
  switch (column.type) {
    case DataType::kBoolean:
      switch (value.kind()) {
        case Value::Kind::kBool:
          return value;
        case Value::Kind::kInt:
          return Value::Bool(value.int_value() != 0);
        default:
          break;
      }
      break;
    case DataType::kSmallInt:
    case DataType::kInteger:
    case DataType::kBigInt:
      switch (value.kind()) {
        case Value::Kind::kInt:
          return value;
        case Value::Kind::kBool:
          return Value::Int(value.bool_value() ? 1 : 0);
        case Value::Kind::kDouble:
        case Value::Kind::kDecimal:
          return Value::Int(value.AsInt());
        default:
          break;
      }
      break;
    case DataType::kFloat:
    case DataType::kDouble:
      switch (value.kind()) {
        case Value::Kind::kDouble:
          return value;
        case Value::Kind::kInt:
        case Value::Kind::kDecimal:
          return Value::Double(value.AsDouble());
        default:
          break;
      }
      break;
    case DataType::kDecimal:
      switch (value.kind()) {
        case Value::Kind::kDecimal:
          if (value.decimal_scale() == column.scale) return value;
          return Value::Decimal(
              static_cast<int64_t>(
                  std::llround(value.AsDouble() *
                               std::pow(10.0, column.scale))),
              column.scale);
        case Value::Kind::kInt:
        case Value::Kind::kDouble:
          return Value::Decimal(
              static_cast<int64_t>(
                  std::llround(value.AsDouble() *
                               std::pow(10.0, column.scale))),
              column.scale);
        default:
          break;
      }
      break;
    case DataType::kChar:
    case DataType::kVarchar:
      if (value.kind() == Value::Kind::kString) return value;
      // Any scalar renders to text.
      return Value::String(value.ToText());
    case DataType::kDate:
      switch (value.kind()) {
        case Value::Kind::kDate:
          return value;
        case Value::Kind::kString: {
          PDGF_ASSIGN_OR_RETURN(pdgf::Date date,
                                pdgf::Date::Parse(value.string_value()));
          return Value::FromDate(date);
        }
        default:
          break;
      }
      break;
  }
  return pdgf::InvalidArgumentError(
      "cannot store a value of this kind in column '" + column.name +
      "' of type " + pdgf::DataTypeName(column.type));
}

pdgf::Status Table::Insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    return pdgf::InvalidArgumentError(
        "row arity " + std::to_string(row.size()) + " != column count " +
        std::to_string(schema_.columns.size()) + " for table '" +
        schema_.name + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    PDGF_ASSIGN_OR_RETURN(row[i], CoerceValue(schema_.columns[i], row[i]));
  }
  return engine_->Append(std::move(row));
}

const Row& Table::row(size_t index) const {
  if (const Row* peek = engine_->PeekRow(index)) return *peek;
  (void)engine_->ReadRow(index, &scratch_);
  return scratch_;
}

int Table::IndexableKeyColumn(const TableSchema& schema) {
  int pk_column = -1;
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    if (!schema.columns[i].primary_key) continue;
    if (pk_column >= 0) return -1;  // composite key: not indexable
    pk_column = static_cast<int>(i);
  }
  if (pk_column < 0) return -1;
  switch (schema.columns[static_cast<size_t>(pk_column)].type) {
    case DataType::kSmallInt:
    case DataType::kInteger:
    case DataType::kBigInt:
    case DataType::kDate:
      return pk_column;
    default:
      return -1;  // only the integer family maps onto B+ tree keys
  }
}

}  // namespace minidb
