#include "minidb/table.h"

#include <cmath>

namespace minidb {

using pdgf::DataType;
using pdgf::Value;

pdgf::StatusOr<Value> CoerceValue(const ColumnDef& column,
                                  const Value& value) {
  if (value.is_null()) {
    if (!column.nullable) {
      return pdgf::InvalidArgumentError("NULL in NOT NULL column '" +
                                        column.name + "'");
    }
    return Value::Null();
  }
  switch (column.type) {
    case DataType::kBoolean:
      switch (value.kind()) {
        case Value::Kind::kBool:
          return value;
        case Value::Kind::kInt:
          return Value::Bool(value.int_value() != 0);
        default:
          break;
      }
      break;
    case DataType::kSmallInt:
    case DataType::kInteger:
    case DataType::kBigInt:
      switch (value.kind()) {
        case Value::Kind::kInt:
          return value;
        case Value::Kind::kBool:
          return Value::Int(value.bool_value() ? 1 : 0);
        case Value::Kind::kDouble:
        case Value::Kind::kDecimal:
          return Value::Int(value.AsInt());
        default:
          break;
      }
      break;
    case DataType::kFloat:
    case DataType::kDouble:
      switch (value.kind()) {
        case Value::Kind::kDouble:
          return value;
        case Value::Kind::kInt:
        case Value::Kind::kDecimal:
          return Value::Double(value.AsDouble());
        default:
          break;
      }
      break;
    case DataType::kDecimal:
      switch (value.kind()) {
        case Value::Kind::kDecimal:
          if (value.decimal_scale() == column.scale) return value;
          return Value::Decimal(
              static_cast<int64_t>(
                  std::llround(value.AsDouble() *
                               std::pow(10.0, column.scale))),
              column.scale);
        case Value::Kind::kInt:
        case Value::Kind::kDouble:
          return Value::Decimal(
              static_cast<int64_t>(
                  std::llround(value.AsDouble() *
                               std::pow(10.0, column.scale))),
              column.scale);
        default:
          break;
      }
      break;
    case DataType::kChar:
    case DataType::kVarchar:
      if (value.kind() == Value::Kind::kString) return value;
      // Any scalar renders to text.
      return Value::String(value.ToText());
    case DataType::kDate:
      switch (value.kind()) {
        case Value::Kind::kDate:
          return value;
        case Value::Kind::kString: {
          PDGF_ASSIGN_OR_RETURN(pdgf::Date date,
                                pdgf::Date::Parse(value.string_value()));
          return Value::FromDate(date);
        }
        default:
          break;
      }
      break;
  }
  return pdgf::InvalidArgumentError(
      "cannot store a value of this kind in column '" + column.name +
      "' of type " + pdgf::DataTypeName(column.type));
}

pdgf::Status Table::Insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    return pdgf::InvalidArgumentError(
        "row arity " + std::to_string(row.size()) + " != column count " +
        std::to_string(schema_.columns.size()) + " for table '" +
        schema_.name + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    PDGF_ASSIGN_OR_RETURN(row[i], CoerceValue(schema_.columns[i], row[i]));
  }
  rows_.push_back(std::move(row));
  return pdgf::Status::Ok();
}

void Table::EraseRows(const std::vector<size_t>& sorted_indices) {
  if (sorted_indices.empty()) return;
  // Single compaction pass: copy surviving rows over the gaps.
  size_t write = sorted_indices.front();
  size_t next_to_skip = 0;
  for (size_t read = write; read < rows_.size(); ++read) {
    if (next_to_skip < sorted_indices.size() &&
        sorted_indices[next_to_skip] == read) {
      ++next_to_skip;
      continue;
    }
    rows_[write++] = std::move(rows_[read]);
  }
  rows_.resize(write);
}

void Table::Scan(const std::function<bool(const Row&)>& visitor) const {
  for (const Row& row : rows_) {
    if (!visitor(row)) return;
  }
}

}  // namespace minidb
