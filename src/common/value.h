#ifndef DBSYNTHPP_COMMON_VALUE_H_
#define DBSYNTHPP_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/date.h"
#include "common/status.h"
#include "common/types.h"

namespace pdgf {

// A dynamically typed cell value: the unit of data exchanged between
// generators, formatters, MiniDB and DBSynth.
//
// Layout note: all storage members are plain fields (no union / variant)
// so a Value can be reused row after row without reallocating its string
// buffer — generation reuses one row of Values per worker, which is what
// keeps per-value cost in the nanosecond range (paper §4).
class Value {
 public:
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kInt,      // SMALLINT/INTEGER/BIGINT payloads
    kDouble,   // FLOAT/DOUBLE payloads
    kDecimal,  // fixed point: unscaled int64 + decimal scale
    kString,   // CHAR/VARCHAR payloads
    kDate,
  };

  // Default: NULL.
  Value() : kind_(Kind::kNull), scale_(0), int_(0), double_(0) {}

  Value(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(const Value&) = default;
  Value& operator=(Value&&) = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Double(double v);
  // A fixed-point value: `unscaled` * 10^-`scale`, e.g. (12345, 2) == 123.45.
  static Value Decimal(int64_t unscaled, int scale);
  static Value String(std::string v);
  static Value String(std::string_view v);
  static Value String(const char* v) { return String(std::string_view(v)); }
  static Value FromDate(Date d);

  // In-place setters (preserve the string buffer's capacity).
  void SetNull() { kind_ = Kind::kNull; }
  void SetBool(bool v) {
    kind_ = Kind::kBool;
    int_ = v ? 1 : 0;
  }
  void SetInt(int64_t v) {
    kind_ = Kind::kInt;
    int_ = v;
  }
  void SetDouble(double v) {
    kind_ = Kind::kDouble;
    double_ = v;
  }
  void SetDecimal(int64_t unscaled, int scale) {
    kind_ = Kind::kDecimal;
    int_ = unscaled;
    scale_ = static_cast<int8_t>(scale);
  }
  void SetString(std::string_view v) {
    kind_ = Kind::kString;
    string_.assign(v.data(), v.size());
  }
  void SetStringMove(std::string&& v) {
    kind_ = Kind::kString;
    string_ = std::move(v);
  }
  void SetDate(Date d) {
    kind_ = Kind::kDate;
    int_ = d.days_since_epoch();
  }
  // Exposes the string buffer for direct appends; sets kind to kString and
  // clears previous content.
  std::string* MutableString() {
    kind_ = Kind::kString;
    string_.clear();
    return &string_;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Typed accessors; behaviour is undefined unless kind() matches.
  bool bool_value() const { return int_ != 0; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  int64_t decimal_unscaled() const { return int_; }
  int decimal_scale() const { return scale_; }
  const std::string& string_value() const { return string_; }
  Date date_value() const { return Date(int_); }

  // Numeric view: int/bool/date as their integer, decimal scaled, double
  // as-is. Returns 0.0 for NULL and strings.
  double AsDouble() const;
  // Integer view with truncation for doubles/decimals; 0 for NULL/strings.
  int64_t AsInt() const;

  // Canonical text rendering: "NULL" distinct from empty string is NOT
  // produced here — NULL renders as "" and callers that need an explicit
  // marker must check is_null(). Doubles use shortest round-trip via %.17g
  // trimmed; decimals render with their scale; dates as ISO.
  std::string ToText() const;
  // Appends ToText() rendering to `out` without intermediate allocations.
  void AppendText(std::string* out) const;

  // Parses `text` as a value of `type` ("" and "NULL" are not special —
  // use the nullable-aware helpers in CSV / SQL layers for that).
  static StatusOr<Value> ParseAs(DataType type, std::string_view text,
                                 int decimal_scale = 2);

  // Total-order comparison used by MiniDB ORDER BY and min/max statistics:
  // NULL sorts first, then all numeric kinds (by numeric value; dates and
  // booleans count as numeric), then strings (lexicographically). Ranking
  // the kind classes keeps the order transitive across mixed kinds.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Stable 64-bit hash (for distinct counting and dictionaries).
  uint64_t Hash() const;

 private:
  Kind kind_;
  int8_t scale_;  // decimal scale, only meaningful for kDecimal
  int64_t int_;
  double double_;
  std::string string_;
};

// Formatting kernels shared by Value::AppendText and the batch output
// kernels (CsvFormatter::AppendBatch). All use std::to_chars — no
// snprintf, no locale, no per-call allocation — and render byte-identical
// text to the historical snprintf paths.

// Renders an int64 in decimal, appending to `out`.
void AppendIntText(int64_t v, std::string* out);
// Renders a double like ToText() does (shortest rendering from the
// precision ladder {6, 15, 17} that round-trips), appending to `out`.
void AppendDoubleText(double v, std::string* out);
// Renders a decimal (`unscaled` * 10^-`scale`), appending to `out`.
void AppendDecimalText(int64_t unscaled, int scale, std::string* out);

}  // namespace pdgf

#endif  // DBSYNTHPP_COMMON_VALUE_H_
