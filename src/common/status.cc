#include "common/status.h"

namespace pdgf {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

}  // namespace pdgf
