#ifndef DBSYNTHPP_COMMON_TYPES_H_
#define DBSYNTHPP_COMMON_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace pdgf {

// SQL-92 column types supported throughout the project (PDGF models,
// MiniDB catalogs, DBSynth extraction). The numeric family is collapsed
// onto the widest representation of each kind.
enum class DataType {
  kBoolean,
  kSmallInt,   // 16 bit
  kInteger,    // 32 bit
  kBigInt,     // 64 bit
  kFloat,      // stored as double
  kDouble,
  kDecimal,    // fixed point, precision/scale tracked per column
  kChar,       // fixed length
  kVarchar,
  kDate,
};

// Returns the canonical SQL name, e.g. "BIGINT", "VARCHAR".
const char* DataTypeName(DataType type);

// Parses a SQL type name (case-insensitive). Accepts the canonical names
// plus common aliases: INT, INT2/4/8, REAL, NUMERIC, TEXT, CHARACTER,
// "CHARACTER VARYING", "DOUBLE PRECISION".
StatusOr<DataType> ParseDataType(std::string_view name);

// True for SMALLINT/INTEGER/BIGINT.
bool IsIntegerType(DataType type);
// True for FLOAT/DOUBLE/DECIMAL.
bool IsFloatingType(DataType type);
// True for any numeric type (integer or floating).
bool IsNumericType(DataType type);
// True for CHAR/VARCHAR.
bool IsTextType(DataType type);

}  // namespace pdgf

#endif  // DBSYNTHPP_COMMON_TYPES_H_
