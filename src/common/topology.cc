#include "common/topology.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pdgf {

const char* NumaModeName(NumaMode mode) {
  switch (mode) {
    case NumaMode::kOff:
      return "off";
    case NumaMode::kOn:
      return "on";
    case NumaMode::kInterleave:
      return "interleave";
  }
  return "off";
}

StatusOr<NumaMode> ParseNumaMode(const std::string& name) {
  if (name == "off") return NumaMode::kOff;
  if (name == "on") return NumaMode::kOn;
  if (name == "interleave") return NumaMode::kInterleave;
  return InvalidArgumentError("unknown numa mode '" + name +
                              "': expected 'off', 'on' or 'interleave'");
}

NumaMode ActiveNumaMode() {
  // -1 = not yet resolved; benign first-use race recomputes the same
  // value (the DBSYNTHPP_SIMD discipline).
  static std::atomic<int> g_mode{-1};
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    const char* env = std::getenv("DBSYNTHPP_NUMA");
    NumaMode resolved = NumaMode::kOn;
    if (env != nullptr) {
      auto parsed = ParseNumaMode(env);
      // Unrecognized values mean "best placement", like DBSYNTHPP_SIMD.
      if (parsed.ok()) resolved = *parsed;
    }
    mode = static_cast<int>(resolved);
    g_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<NumaMode>(mode);
}

int AffinityCpuCount() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    int count = CPU_COUNT(&mask);
    if (count > 0) return count;
  }
#endif
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

StatusOr<std::vector<int>> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  // Trim trailing whitespace/newline the sysfs files carry.
  std::string trimmed = text;
  while (!trimmed.empty() &&
         (trimmed.back() == '\n' || trimmed.back() == '\r' ||
          trimmed.back() == ' ')) {
    trimmed.pop_back();
  }
  if (trimmed.empty()) return cpus;  // a memory-only node: no CPUs
  const std::string& s = trimmed;
  const size_t n = s.size();
  size_t i = 0;
  auto read_int = [&](int* out) -> bool {
    size_t start = i;
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
    if (i == start || i - start > 9) return false;
    *out = std::atoi(s.substr(start, i - start).c_str());
    return true;
  };
  while (i < n) {
    int begin = 0;
    if (!read_int(&begin)) {
      return InvalidArgumentError("malformed cpulist '" + trimmed + "'");
    }
    int end = begin;
    if (i < n && s[i] == '-') {
      ++i;
      if (!read_int(&end) || end < begin) {
        return InvalidArgumentError("malformed cpulist '" + trimmed + "'");
      }
    }
    for (int cpu = begin; cpu <= end; ++cpu) cpus.push_back(cpu);
    if (i < n) {
      if (s[i] != ',') {
        return InvalidArgumentError("malformed cpulist '" + trimmed + "'");
      }
      ++i;
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

namespace {

// Reads one small sysfs file; empty optional on failure.
bool ReadSmallFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Single synthetic node covering the whole affinity mask (non-NUMA
// hosts, non-Linux builds, unreadable sysfs).
std::vector<TopologyNode> SyntheticSingleNode() {
  TopologyNode node;
  node.node_id = 0;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &mask)) node.cpus.push_back(cpu);
    }
  }
#endif
  if (node.cpus.empty()) {
    int count = AffinityCpuCount();
    for (int cpu = 0; cpu < count; ++cpu) node.cpus.push_back(cpu);
  }
  return {node};
}

}  // namespace

Topology Topology::Detect() {
  Topology topology;
#if defined(__linux__)
  cpu_set_t affinity;
  CPU_ZERO(&affinity);
  const bool have_affinity =
      sched_getaffinity(0, sizeof(affinity), &affinity) == 0;

  std::string online;
  if (have_affinity &&
      ReadSmallFile("/sys/devices/system/node/online", &online)) {
    auto node_ids = ParseCpuList(online);
    if (node_ids.ok()) {
      for (int id : *node_ids) {
        std::string cpulist;
        if (!ReadSmallFile("/sys/devices/system/node/node" +
                               std::to_string(id) + "/cpulist",
                           &cpulist)) {
          continue;
        }
        auto cpus = ParseCpuList(cpulist);
        if (!cpus.ok()) continue;
        TopologyNode node;
        node.node_id = id;
        for (int cpu : *cpus) {
          if (cpu < CPU_SETSIZE && CPU_ISSET(cpu, &affinity)) {
            node.cpus.push_back(cpu);
          }
        }
        // Memory-only nodes and nodes fully outside the cpuset cannot
        // host threads; drop them so every listed node is schedulable.
        if (!node.cpus.empty()) topology.nodes_.push_back(std::move(node));
      }
    }
  }
  topology.can_bind_ = have_affinity;
#endif
  if (topology.nodes_.empty()) {
    topology.nodes_ = SyntheticSingleNode();
  }
  for (const TopologyNode& node : topology.nodes_) {
    topology.cpu_count_ += static_cast<int>(node.cpus.size());
  }
  return topology;
}

const Topology& Topology::System() {
  static const Topology* system = new Topology(Detect());
  return *system;
}

Topology Topology::ForTest(std::vector<std::vector<int>> node_cpus) {
  Topology topology;
  for (size_t n = 0; n < node_cpus.size(); ++n) {
    TopologyNode node;
    node.node_id = static_cast<int>(n);
    node.cpus = std::move(node_cpus[n]);
    topology.cpu_count_ += static_cast<int>(node.cpus.size());
    topology.nodes_.push_back(std::move(node));
  }
  if (topology.nodes_.empty()) {
    topology.nodes_.push_back(TopologyNode{});
  }
  topology.can_bind_ = false;
  return topology;
}

std::vector<int> Topology::WorkersPerNode(int worker_count) const {
  if (worker_count < 0) worker_count = 0;
  const int nodes = node_count();
  std::vector<int> per_node(static_cast<size_t>(nodes), 0);
  if (nodes == 0) return per_node;
  // Proportional contiguous split by CPU share: node i's worker block is
  // [floor(W * cum_i / total), floor(W * cum_{i+1} / total)). Falls back
  // to an even split when the CPU counts are degenerate (all zero).
  int64_t total_cpus = 0;
  for (const TopologyNode& node : nodes_) {
    total_cpus += static_cast<int64_t>(node.cpus.size());
  }
  int64_t cumulative = 0;
  int64_t previous_bound = 0;
  for (int n = 0; n < nodes; ++n) {
    cumulative += total_cpus > 0
                      ? static_cast<int64_t>(nodes_[static_cast<size_t>(n)]
                                                 .cpus.size())
                      : 1;
    const int64_t denominator = total_cpus > 0 ? total_cpus : nodes;
    int64_t bound = static_cast<int64_t>(worker_count) * cumulative /
                    denominator;
    per_node[static_cast<size_t>(n)] =
        static_cast<int>(bound - previous_bound);
    previous_bound = bound;
  }
  return per_node;
}

int Topology::NodeForWorker(int worker, int worker_count) const {
  if (worker_count < 1) worker_count = 1;
  if (worker < 0) worker = 0;
  if (worker >= worker_count) worker = worker_count - 1;
  std::vector<int> per_node = WorkersPerNode(worker_count);
  int begin = 0;
  for (size_t n = 0; n < per_node.size(); ++n) {
    int end = begin + per_node[n];
    if (worker < end) return static_cast<int>(n);
    begin = end;
  }
  // Rounding drift assigns stragglers to the last node with CPUs.
  return node_count() - 1;
}

Status Topology::BindCurrentThread(int node) const {
  if (node < 0 || node >= node_count()) {
    return InvalidArgumentError("no topology node " + std::to_string(node));
  }
  if (!can_bind_) return Status::Ok();
#if defined(__linux__)
  const TopologyNode& target = nodes_[static_cast<size_t>(node)];
  if (target.cpus.empty()) return Status::Ok();
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (int cpu : target.cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &mask);
  }
  // Best effort: a cpuset shrinking between detection and bind must not
  // fail the run — placement is an optimization, never a correctness
  // requirement.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask);
#endif
  return Status::Ok();
}

Status Topology::BindCurrentThreadToCpu(int cpu) const {
  if (!can_bind_) return Status::Ok();
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) {
    return InvalidArgumentError("cpu id out of range: " +
                                std::to_string(cpu));
  }
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpu, &mask);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask);
#else
  (void)cpu;
#endif
  return Status::Ok();
}

std::string Topology::Describe() const {
  std::string out = std::to_string(node_count()) + " node" +
                    (node_count() == 1 ? "" : "s") + ":";
  for (const TopologyNode& node : nodes_) {
    out += " node" + std::to_string(node.node_id) + " cpus";
    // Compress ascending runs back into the sysfs range style.
    size_t i = 0;
    bool first = true;
    while (i < node.cpus.size()) {
      size_t j = i;
      while (j + 1 < node.cpus.size() &&
             node.cpus[j + 1] == node.cpus[j] + 1) {
        ++j;
      }
      out += first ? " " : ",";
      first = false;
      out += std::to_string(node.cpus[i]);
      if (j > i) out += "-" + std::to_string(node.cpus[j]);
      i = j + 1;
    }
    if (node.cpus.empty()) out += " none";
  }
  return out;
}

}  // namespace pdgf
