#ifndef DBSYNTHPP_COMMON_DATE_H_
#define DBSYNTHPP_COMMON_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace pdgf {

// A calendar date stored as days since the civil epoch 1970-01-01
// (negative for earlier dates). Conversion uses Howard Hinnant's civil
// calendar algorithms, exact over the proleptic Gregorian calendar.
class Date {
 public:
  // Default: the epoch, 1970-01-01.
  Date() : days_(0) {}
  explicit Date(int64_t days_since_epoch) : days_(days_since_epoch) {}

  // Builds a date from a civil year/month/day triple. Does not validate;
  // out-of-range month/day values are normalized by the day arithmetic
  // (e.g. month 13 rolls into the next year). Use IsValidCivil to check.
  static Date FromCivil(int year, int month, int day);

  // True if (year, month, day) denotes an actual calendar day.
  static bool IsValidCivil(int year, int month, int day);

  // Parses "YYYY-MM-DD". Returns an error for malformed or invalid dates.
  static StatusOr<Date> Parse(std::string_view text);

  int64_t days_since_epoch() const { return days_; }

  // Civil components.
  int year() const;
  int month() const;   // 1..12
  int day() const;     // 1..31
  int day_of_week() const;  // 0 = Sunday .. 6 = Saturday

  // ISO "YYYY-MM-DD".
  std::string ToString() const;

  // Appends the ISO rendering to `out` without allocating: the kernel
  // behind ToString and the batch CSV date fast path. Byte-identical to
  // snprintf("%04d-%02d-%02d") including negative years (the sign counts
  // toward the 4-character pad, as with printf's "%04d").
  void AppendIso(std::string* out) const;

  // Formats with a strftime-like subset: %Y %m %d %y plus literal chars.
  // E.g. "%m/%d/%Y" -> "11/30/2014" (the paper's Figure 9 date format).
  std::string Format(std::string_view format) const;

  Date AddDays(int64_t days) const { return Date(days_ + days); }

  bool operator==(const Date& other) const { return days_ == other.days_; }
  bool operator!=(const Date& other) const { return days_ != other.days_; }
  bool operator<(const Date& other) const { return days_ < other.days_; }
  bool operator<=(const Date& other) const { return days_ <= other.days_; }
  bool operator>(const Date& other) const { return days_ > other.days_; }
  bool operator>=(const Date& other) const { return days_ >= other.days_; }

 private:
  int64_t days_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_COMMON_DATE_H_
