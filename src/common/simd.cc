#include "common/simd.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <string_view>

namespace pdgf {
namespace simd {
namespace {

bool Avx2Supported() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool NeonSupported() {
#if defined(__aarch64__)
  return true;  // NEON is baseline on aarch64.
#else
  return false;
#endif
}

SimdLevel DetectLevel() {
  const char* env = std::getenv("DBSYNTHPP_SIMD");
  std::string_view mode = env != nullptr ? env : "";
  if (mode == "off" || mode == "scalar") return SimdLevel::kScalar;
  if (mode == "avx2") {
    return Avx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  }
  if (mode == "neon") {
    return NeonSupported() ? SimdLevel::kNeon : SimdLevel::kScalar;
  }
  // "", "native", or anything unrecognized: best available.
  if (Avx2Supported()) return SimdLevel::kAvx2;
  if (NeonSupported()) return SimdLevel::kNeon;
  return SimdLevel::kScalar;
}

// -1 = not yet detected. Relaxed loads on the hot path compile to a
// plain move; the benign first-use race recomputes the same value.
std::atomic<int> g_level{-1};

}  // namespace

SimdLevel ActiveSimdLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(DetectLevel());
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

const char* SimdDispatchName() {
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

bool SimdLevelSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
      return Avx2Supported();
    case SimdLevel::kNeon:
      return NeonSupported();
  }
  return false;
}

SimdLevel SetSimdLevelForTesting(SimdLevel level) {
  SimdLevel previous = ActiveSimdLevel();
  if (!SimdLevelSupported(level)) level = SimdLevel::kScalar;
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return previous;
}

size_t FormatUint64Text(uint64_t v, char* out) {
#if defined(__x86_64__) || defined(_M_X64)
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    return internal::FormatUint64TextAvx2(v, out);
  }
#endif
  auto result = std::to_chars(out, out + 20, v);
  return static_cast<size_t>(result.ptr - out);
}

size_t FormatInt64Text(int64_t v, char* out) {
  if (v < 0) {
    *out = '-';
    uint64_t magnitude = 0ULL - static_cast<uint64_t>(v);
    return 1 + FormatUint64Text(magnitude, out + 1);
  }
  return FormatUint64Text(static_cast<uint64_t>(v), out);
}

size_t FormatIsoDateText(int year, int month, int day, char* out) {
#if defined(__x86_64__) || defined(_M_X64)
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    return internal::FormatIsoDateTextAvx2(year, month, day, out);
  }
#else
  (void)year;
  (void)month;
  (void)day;
  (void)out;
#endif
  return 0;  // scalar dispatch: caller renders via its legacy path.
}

}  // namespace simd
}  // namespace pdgf
