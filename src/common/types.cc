#include "common/types.h"

#include <algorithm>
#include <cctype>

namespace pdgf {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBoolean:
      return "BOOLEAN";
    case DataType::kSmallInt:
      return "SMALLINT";
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kBigInt:
      return "BIGINT";
    case DataType::kFloat:
      return "FLOAT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kDecimal:
      return "DECIMAL";
    case DataType::kChar:
      return "CHAR";
    case DataType::kVarchar:
      return "VARCHAR";
    case DataType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

StatusOr<DataType> ParseDataType(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // Strip a parenthesized size suffix, e.g. "VARCHAR(44)".
  size_t paren = upper.find('(');
  if (paren != std::string::npos) {
    upper = upper.substr(0, paren);
  }
  // Trim surrounding whitespace.
  size_t begin = upper.find_first_not_of(" \t");
  size_t end = upper.find_last_not_of(" \t");
  if (begin == std::string::npos) {
    return ParseError("empty type name");
  }
  upper = upper.substr(begin, end - begin + 1);

  if (upper == "BOOLEAN" || upper == "BOOL") return DataType::kBoolean;
  if (upper == "SMALLINT" || upper == "INT2") return DataType::kSmallInt;
  if (upper == "INTEGER" || upper == "INT" || upper == "INT4") {
    return DataType::kInteger;
  }
  if (upper == "BIGINT" || upper == "INT8") return DataType::kBigInt;
  if (upper == "FLOAT" || upper == "REAL") return DataType::kFloat;
  if (upper == "DOUBLE" || upper == "DOUBLE PRECISION") {
    return DataType::kDouble;
  }
  if (upper == "DECIMAL" || upper == "NUMERIC") return DataType::kDecimal;
  if (upper == "CHAR" || upper == "CHARACTER") return DataType::kChar;
  if (upper == "VARCHAR" || upper == "CHARACTER VARYING" || upper == "TEXT") {
    return DataType::kVarchar;
  }
  if (upper == "DATE") return DataType::kDate;
  return ParseError("unknown SQL type: '" + std::string(name) + "'");
}

bool IsIntegerType(DataType type) {
  return type == DataType::kSmallInt || type == DataType::kInteger ||
         type == DataType::kBigInt;
}

bool IsFloatingType(DataType type) {
  return type == DataType::kFloat || type == DataType::kDouble ||
         type == DataType::kDecimal;
}

bool IsNumericType(DataType type) {
  return IsIntegerType(type) || IsFloatingType(type);
}

bool IsTextType(DataType type) {
  return type == DataType::kChar || type == DataType::kVarchar;
}

}  // namespace pdgf
