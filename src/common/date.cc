#include "common/date.h"

#include <cstdio>
#include <cstdlib>

#include "common/simd.h"

namespace pdgf {
namespace {

// Howard Hinnant's days_from_civil: days since 1970-01-01 for a civil date.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

// Howard Hinnant's civil_from_days.
void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;              // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                        // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                             // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

}  // namespace

Date Date::FromCivil(int year, int month, int day) {
  return Date(DaysFromCivil(year, static_cast<unsigned>(month),
                            static_cast<unsigned>(day)));
}

bool Date::IsValidCivil(int year, int month, int day) {
  return month >= 1 && month <= 12 && day >= 1 &&
         day <= DaysInMonth(year, month);
}

StatusOr<Date> Date::Parse(std::string_view text) {
  int year = 0;
  int month = 0;
  int day = 0;
  // Expected layout: YYYY-MM-DD (4+ digit year allowed, '-' separated).
  size_t first_dash = text.find('-', 1);  // skip a potential leading '-'.
  if (first_dash == std::string_view::npos) {
    return ParseError("not a date: '" + std::string(text) + "'");
  }
  size_t second_dash = text.find('-', first_dash + 1);
  if (second_dash == std::string_view::npos) {
    return ParseError("not a date: '" + std::string(text) + "'");
  }
  auto parse_int = [](std::string_view s, int* out) {
    if (s.empty()) return false;
    size_t i = 0;
    bool negative = false;
    if (s[0] == '-') {
      negative = true;
      i = 1;
      if (s.size() == 1) return false;
    }
    int64_t v = 0;
    for (; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9') return false;
      v = v * 10 + (s[i] - '0');
      if (v > 1000000) return false;
    }
    *out = static_cast<int>(negative ? -v : v);
    return true;
  };
  if (!parse_int(text.substr(0, first_dash), &year) ||
      !parse_int(text.substr(first_dash + 1, second_dash - first_dash - 1),
                 &month) ||
      !parse_int(text.substr(second_dash + 1), &day)) {
    return ParseError("not a date: '" + std::string(text) + "'");
  }
  if (!IsValidCivil(year, month, day)) {
    return ParseError("invalid calendar day: '" + std::string(text) + "'");
  }
  return Date::FromCivil(year, month, day);
}

int Date::year() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return y;
}

int Date::month() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return m;
}

int Date::day() const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  return d;
}

int Date::day_of_week() const {
  // 1970-01-01 was a Thursday (4).
  int64_t dow = (days_ + 4) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

namespace {

// Appends `v` zero-padded to `width` total characters, replicating
// printf("%0*d"): for negative values the '-' counts toward the width
// ("%04d" of -5 is "-005").
void AppendPadded(int v, int width, std::string* out) {
  char digits[12];
  int n = 0;
  bool negative = v < 0;
  unsigned magnitude = negative ? 0u - static_cast<unsigned>(v)
                                : static_cast<unsigned>(v);
  do {
    digits[n++] = static_cast<char>('0' + magnitude % 10);
    magnitude /= 10;
  } while (magnitude != 0);
  if (negative) out->push_back('-');
  int pad = width - n - (negative ? 1 : 0);
  for (; pad > 0; --pad) out->push_back('0');
  while (n > 0) out->push_back(digits[--n]);
}

}  // namespace

void Date::AppendIso(std::string* out) const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  // AVX2 dispatch renders the common 0000..9999 window in one fixed
  // 10-byte kernel; out-of-window years (and scalar dispatch) take the
  // padded scalar path. Both are byte-identical to "%04d-%02d-%02d".
  char buffer[10];
  if (simd::FormatIsoDateText(y, m, d, buffer) == 10) {
    out->append(buffer, 10);
    return;
  }
  AppendPadded(y, 4, out);
  out->push_back('-');
  AppendPadded(m, 2, out);
  out->push_back('-');
  AppendPadded(d, 2, out);
}

std::string Date::ToString() const {
  std::string out;
  out.reserve(10);
  AppendIso(&out);
  return out;
}

std::string Date::Format(std::string_view format) const {
  int y, m, d;
  CivilFromDays(days_, &y, &m, &d);
  std::string result;
  result.reserve(format.size() + 8);
  char buffer[16];
  for (size_t i = 0; i < format.size(); ++i) {
    if (format[i] != '%' || i + 1 >= format.size()) {
      result.push_back(format[i]);
      continue;
    }
    ++i;
    switch (format[i]) {
      case 'Y':
        std::snprintf(buffer, sizeof(buffer), "%04d", y);
        result += buffer;
        break;
      case 'y':
        std::snprintf(buffer, sizeof(buffer), "%02d", ((y % 100) + 100) % 100);
        result += buffer;
        break;
      case 'm':
        std::snprintf(buffer, sizeof(buffer), "%02d", m);
        result += buffer;
        break;
      case 'd':
        std::snprintf(buffer, sizeof(buffer), "%02d", d);
        result += buffer;
        break;
      case '%':
        result.push_back('%');
        break;
      default:
        // Unknown directive: emit verbatim so mistakes are visible.
        result.push_back('%');
        result.push_back(format[i]);
        break;
    }
  }
  return result;
}

}  // namespace pdgf
