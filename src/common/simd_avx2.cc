// AVX2 text-formatting kernels. This translation unit is the only one in
// dbsynthpp_common compiled with -mavx2 (see src/CMakeLists.txt); callers
// reach it exclusively through the runtime dispatch in simd.cc, so these
// instructions never execute on a CPU without AVX2.
#include "common/simd.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstring>

namespace pdgf {
namespace simd {
namespace internal {
namespace {

// Writes the 8 zero-padded decimal digits of v (v < 10^8) to out[0..8).
//
// Lane plan (64-bit lanes): q = [v, v/10^2, v/10^4, v/10^6] via one
// multiply-high per lane (magic constants valid for the full uint32
// range), digit pairs p_i = q_i - 100*q_{i+1}, then tens/ones per pair
// with the (p*205)>>11 reciprocal (exact for p <= 1028). One shuffle
// gathers the 8 ASCII bytes most-significant-first.
inline void Digits8Avx2(uint32_t v, char* out) {
  const __m256i vv = _mm256_set1_epi64x(static_cast<long long>(v));
  const __m256i magic =
      _mm256_setr_epi64x(1, 1374389535LL, 3518437209LL, 1125899907LL);
  const __m256i shift = _mm256_setr_epi64x(0, 37, 45, 50);
  const __m256i q =
      _mm256_srlv_epi64(_mm256_mul_epu32(vv, magic), shift);
  // qnext = [q1, q2, q3, 0]
  __m256i qnext = _mm256_permute4x64_epi64(q, _MM_SHUFFLE(3, 3, 2, 1));
  qnext = _mm256_blend_epi32(qnext, _mm256_setzero_si256(), 0xC0);
  const __m256i p = _mm256_sub_epi64(
      q, _mm256_mul_epu32(qnext, _mm256_set1_epi64x(100)));
  const __m256i tens = _mm256_srli_epi64(
      _mm256_mul_epu32(p, _mm256_set1_epi64x(205)), 11);
  const __m256i ones =
      _mm256_sub_epi64(p, _mm256_mul_epu32(tens, _mm256_set1_epi64x(10)));
  __m256i bytes = _mm256_or_si256(tens, _mm256_slli_epi64(ones, 8));
  bytes = _mm256_add_epi8(bytes, _mm256_set1_epi8('0'));
  // Per 128-bit half, gather [tens_hi, ones_hi, tens_lo, ones_lo]:
  // bytes 8,9 (upper 64-bit lane) then 0,1 (lower lane).
  const __m256i gather = _mm256_setr_epi8(
      8, 9, 0, 1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
      8, 9, 0, 1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i shuffled = _mm256_shuffle_epi8(bytes, gather);
  const uint32_t low4 =
      static_cast<uint32_t>(_mm256_extract_epi32(shuffled, 0));
  const uint32_t high4 =
      static_cast<uint32_t>(_mm256_extract_epi32(shuffled, 4));
  std::memcpy(out, &high4, 4);      // digits 1..4 (pairs p3, p2)
  std::memcpy(out + 4, &low4, 4);   // digits 5..8 (pairs p1, p0)
}

inline size_t DigitCount8(uint32_t v) {
  if (v >= 10000) {
    if (v >= 1000000) return v >= 10000000 ? 8 : 7;
    return v >= 100000 ? 6 : 5;
  }
  if (v >= 100) return v >= 1000 ? 4 : 3;
  return v >= 10 ? 2 : 1;
}

}  // namespace

size_t FormatUint64TextAvx2(uint64_t v, char* out) {
  if (v < 100000000ULL) {
    char digits[8];
    const uint32_t v32 = static_cast<uint32_t>(v);
    Digits8Avx2(v32, digits);
    const size_t len = DigitCount8(v32);
    std::memcpy(out, digits + (8 - len), len);
    return len;
  }
  if (v < 10000000000000000ULL) {
    const uint64_t high = v / 100000000ULL;  // < 10^8
    const uint32_t low = static_cast<uint32_t>(v % 100000000ULL);
    const size_t len = FormatUint64TextAvx2(high, out);
    Digits8Avx2(low, out + len);
    return len + 8;
  }
  uint32_t top = static_cast<uint32_t>(v / 10000000000000000ULL);  // <= 1844
  const uint64_t rest = v % 10000000000000000ULL;
  char digits[4];
  size_t len = 0;
  do {
    digits[len++] = static_cast<char>('0' + top % 10);
    top /= 10;
  } while (top != 0);
  for (size_t i = 0; i < len; ++i) out[i] = digits[len - 1 - i];
  Digits8Avx2(static_cast<uint32_t>(rest / 100000000ULL), out + len);
  Digits8Avx2(static_cast<uint32_t>(rest % 100000000ULL), out + len + 8);
  return len + 16;
}

size_t FormatIsoDateTextAvx2(int year, int month, int day, char* out) {
  if (year < 0 || year > 9999 || month < 0 || month > 99 || day < 0 ||
      day > 99) {
    return 0;  // outside the fixed-width window; caller falls back.
  }
  // Lanes = the four digit pairs [year/100, year%100, month, day].
  const __m256i p = _mm256_setr_epi64x(year / 100, year % 100, month, day);
  const __m256i tens = _mm256_srli_epi64(
      _mm256_mul_epu32(p, _mm256_set1_epi64x(205)), 11);
  const __m256i ones =
      _mm256_sub_epi64(p, _mm256_mul_epu32(tens, _mm256_set1_epi64x(10)));
  __m256i bytes = _mm256_or_si256(tens, _mm256_slli_epi64(ones, 8));
  bytes = _mm256_add_epi8(bytes, _mm256_set1_epi8('0'));
  // Per half, most-significant pair first: bytes 0,1 then 8,9.
  const __m256i gather = _mm256_setr_epi8(
      0, 1, 8, 9, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
      0, 1, 8, 9, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i shuffled = _mm256_shuffle_epi8(bytes, gather);
  const uint32_t year_bytes =
      static_cast<uint32_t>(_mm256_extract_epi32(shuffled, 0));
  const uint32_t md_bytes =
      static_cast<uint32_t>(_mm256_extract_epi32(shuffled, 4));
  char md[4];
  std::memcpy(md, &md_bytes, 4);
  std::memcpy(out, &year_bytes, 4);
  out[4] = '-';
  out[5] = md[0];
  out[6] = md[1];
  out[7] = '-';
  out[8] = md[2];
  out[9] = md[3];
  return 10;
}

}  // namespace internal
}  // namespace simd
}  // namespace pdgf

#endif  // x86-64
