#ifndef DBSYNTHPP_COMMON_SIMD_H_
#define DBSYNTHPP_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace pdgf {
namespace simd {

// Runtime SIMD dispatch for the generation hot path. One process-wide
// level is detected at first use: AVX2 on x86-64 when the CPU has it,
// NEON on aarch64 (baseline), portable scalar everywhere else. The
// DBSYNTHPP_SIMD environment variable overrides detection:
//
//   off | scalar   force the portable scalar kernels
//   avx2           AVX2 if compiled in and the CPU supports it, else scalar
//   neon           NEON if this is an aarch64 build, else scalar
//   native         best available (same as unset)
//
// Every SIMD kernel is bit-identical to its scalar twin — the level
// changes instruction selection, never bytes. tests/core/simd_test.cc
// asserts kernel-level and pipeline-level parity across levels.
enum class SimdLevel { kScalar = 0, kAvx2 = 1, kNeon = 2 };

// The level every kernel dispatches on. Detected once, then cached.
SimdLevel ActiveSimdLevel();

// "scalar" | "avx2" | "neon" — reported in MetricsReport::simd_dispatch.
const char* SimdDispatchName();

// True if `level` can execute on this build + CPU.
bool SimdLevelSupported(SimdLevel level);

// Test hook: force the dispatch level in-process; returns the previous
// level. Forcing an unsupported level degrades to scalar. Call before
// generation threads start — the level is read lock-free on hot paths.
SimdLevel SetSimdLevelForTesting(SimdLevel level);

// ---------------------------------------------------------------------
// Formatting kernels (SIMD-assisted under AVX2, std::to_chars otherwise).
// All outputs are byte-identical to std::to_chars / printf references;
// tests/core/simd_test.cc proves it per level.

// Decimal digits of `v`, no sign, no padding. Writes at most 20 bytes.
size_t FormatUint64Text(uint64_t v, char* out);

// Like std::to_chars(int64_t): optional '-', then digits. At most 21 bytes.
size_t FormatInt64Text(int64_t v, char* out);

// "YYYY-MM-DD" with printf("%04d-%02d-%02d") semantics. Handles the
// common window 0 <= year <= 9999, 0 <= month, day <= 99: writes exactly
// 10 bytes and returns 10. Outside the window (or on scalar dispatch)
// returns 0 and the caller takes its legacy path.
size_t FormatIsoDateText(int year, int month, int day, char* out);

namespace internal {
#if defined(__x86_64__) || defined(_M_X64)
size_t FormatUint64TextAvx2(uint64_t v, char* out);
size_t FormatIsoDateTextAvx2(int year, int month, int day, char* out);
#endif
}  // namespace internal

}  // namespace simd
}  // namespace pdgf

#endif  // DBSYNTHPP_COMMON_SIMD_H_
