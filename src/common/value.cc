#include "common/value.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/simd.h"

namespace pdgf {
namespace {

// 64-bit avalanche mixer (splitmix64 finalizer).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashBytes(const char* data, size_t size) {
  // FNV-1a with a 64-bit finishing mix.
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char buffer[32];
  if (text.size() >= sizeof(buffer)) return false;
  std::memcpy(buffer, text.data(), text.size());
  buffer[text.size()] = '\0';
  char* end = nullptr;
  long long v = std::strtoll(buffer, &end, 10);
  if (errno != 0 || end != buffer + text.size()) return false;
  *out = v;
  return true;
}

bool ParseDoubleText(std::string_view text, double* out) {
  if (text.empty()) return false;
  char buffer[64];
  if (text.size() >= sizeof(buffer)) return false;
  std::memcpy(buffer, text.data(), text.size());
  buffer[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buffer, &end);
  if (errno != 0 || end != buffer + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

void AppendIntText(int64_t v, std::string* out) {
  // simd::FormatInt64Text: std::to_chars on scalar dispatch, the AVX2
  // digit-pair kernel otherwise — byte-identical either way, and both an
  // order of magnitude cheaper than snprintf("%lld") in the hot path.
  char buffer[24];
  out->append(buffer, simd::FormatInt64Text(v, buffer));
}

void AppendDoubleText(double v, std::string* out) {
  char buffer[40];
  // Shortest representation that round-trips: try increasing precision.
  // std::to_chars(general, p) is specified to produce the same bytes as
  // snprintf("%.*g", p) — the historical rendering — so replacing the
  // snprintf/strtod pair with to_chars/from_chars changes no output.
  for (int precision = 6; precision <= 17;
       precision += precision < 15 ? 9 : 2) {
    auto result = std::to_chars(buffer, buffer + sizeof(buffer), v,
                                std::chars_format::general, precision);
    double parsed = 0;
    auto from = std::from_chars(buffer, result.ptr, parsed);
    bool roundtrips = from.ec == std::errc() && parsed == v;
    if (!roundtrips && from.ec == std::errc::result_out_of_range) {
      // Some libcs flag subnormal parses as out-of-range while still
      // producing the correctly rounded value; the legacy strtod ladder
      // ignored errno, so mirror that: re-parse with strtod and accept
      // when the value round-trips. (buffer has headroom: the longest
      // %.17g rendering is 24 chars, so the NUL never overruns.)
      *result.ptr = '\0';
      roundtrips = std::strtod(buffer, nullptr) == v;
    }
    if (roundtrips || precision >= 17) {
      out->append(buffer, result.ptr);
      return;
    }
  }
}

void AppendDecimalText(int64_t unscaled, int scale, std::string* out) {
  if (scale <= 0) {
    AppendIntText(unscaled, out);
    return;
  }
  bool negative = unscaled < 0;
  uint64_t magnitude = negative ? 0ULL - static_cast<uint64_t>(unscaled)
                                : static_cast<uint64_t>(unscaled);
  uint64_t pow10 = 1;
  for (int i = 0; i < scale; ++i) pow10 *= 10;
  uint64_t whole = magnitude / pow10;
  uint64_t frac = magnitude % pow10;
  // "<sign><whole>.<frac zero-padded to scale digits>" via the digit
  // kernel, byte-identical to the historical "%s%llu.%0*llu" rendering.
  if (negative) out->push_back('-');
  char buffer[24];
  out->append(buffer, simd::FormatUint64Text(whole, buffer));
  out->push_back('.');
  const size_t digits = simd::FormatUint64Text(frac, buffer);
  if (digits < static_cast<size_t>(scale)) {
    out->append(static_cast<size_t>(scale) - digits, '0');
  }
  out->append(buffer, digits);
}

Value Value::Bool(bool v) {
  Value value;
  value.SetBool(v);
  return value;
}

Value Value::Int(int64_t v) {
  Value value;
  value.SetInt(v);
  return value;
}

Value Value::Double(double v) {
  Value value;
  value.SetDouble(v);
  return value;
}

Value Value::Decimal(int64_t unscaled, int scale) {
  Value value;
  value.SetDecimal(unscaled, scale);
  return value;
}

Value Value::String(std::string v) {
  Value value;
  value.SetStringMove(std::move(v));
  return value;
}

Value Value::String(std::string_view v) {
  Value value;
  value.SetString(v);
  return value;
}

Value Value::FromDate(Date d) {
  Value value;
  value.SetDate(d);
  return value;
}

double Value::AsDouble() const {
  switch (kind_) {
    case Kind::kNull:
    case Kind::kString:
      return 0.0;
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kDate:
      return static_cast<double>(int_);
    case Kind::kDouble:
      return double_;
    case Kind::kDecimal: {
      double divisor = 1.0;
      for (int i = 0; i < scale_; ++i) divisor *= 10.0;
      return static_cast<double>(int_) / divisor;
    }
  }
  return 0.0;
}

int64_t Value::AsInt() const {
  switch (kind_) {
    case Kind::kNull:
    case Kind::kString:
      return 0;
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kDate:
      return int_;
    case Kind::kDouble:
      return static_cast<int64_t>(double_);
    case Kind::kDecimal: {
      int64_t divisor = 1;
      for (int i = 0; i < scale_; ++i) divisor *= 10;
      return int_ / divisor;
    }
  }
  return 0;
}

void Value::AppendText(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      return;
    case Kind::kBool:
      out->append(int_ != 0 ? "true" : "false");
      return;
    case Kind::kInt:
      AppendIntText(int_, out);
      return;
    case Kind::kDouble:
      AppendDoubleText(double_, out);
      return;
    case Kind::kDecimal:
      AppendDecimalText(int_, scale_, out);
      return;
    case Kind::kString:
      out->append(string_);
      return;
    case Kind::kDate:
      Date(int_).AppendIso(out);
      return;
  }
}

std::string Value::ToText() const {
  std::string out;
  AppendText(&out);
  return out;
}

StatusOr<Value> Value::ParseAs(DataType type, std::string_view text,
                               int decimal_scale) {
  switch (type) {
    case DataType::kBoolean: {
      if (text == "true" || text == "TRUE" || text == "t" || text == "1") {
        return Value::Bool(true);
      }
      if (text == "false" || text == "FALSE" || text == "f" || text == "0") {
        return Value::Bool(false);
      }
      return ParseError("not a boolean: '" + std::string(text) + "'");
    }
    case DataType::kSmallInt:
    case DataType::kInteger:
    case DataType::kBigInt: {
      int64_t v = 0;
      if (!ParseInt64(text, &v)) {
        return ParseError("not an integer: '" + std::string(text) + "'");
      }
      return Value::Int(v);
    }
    case DataType::kFloat:
    case DataType::kDouble: {
      double v = 0;
      if (!ParseDoubleText(text, &v)) {
        return ParseError("not a double: '" + std::string(text) + "'");
      }
      return Value::Double(v);
    }
    case DataType::kDecimal: {
      double v = 0;
      if (!ParseDoubleText(text, &v)) {
        return ParseError("not a decimal: '" + std::string(text) + "'");
      }
      double pow10 = 1.0;
      for (int i = 0; i < decimal_scale; ++i) pow10 *= 10.0;
      return Value::Decimal(static_cast<int64_t>(std::llround(v * pow10)),
                            decimal_scale);
    }
    case DataType::kChar:
    case DataType::kVarchar:
      return Value::String(text);
    case DataType::kDate: {
      PDGF_ASSIGN_OR_RETURN(Date d, Date::Parse(text));
      return Value::FromDate(d);
    }
  }
  return ParseError("unsupported type");
}

int Value::Compare(const Value& other) const {
  if (kind_ == Kind::kNull || other.kind_ == Kind::kNull) {
    if (kind_ == other.kind_) return 0;
    return kind_ == Kind::kNull ? -1 : 1;
  }
  bool this_text = kind_ == Kind::kString;
  bool other_text = other.kind_ == Kind::kString;
  if (this_text && other_text) {
    int cmp = string_.compare(other.string_);
    return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  if (this_text != other_text) {
    // Mixed string/number: rank by kind class (numbers sort before
    // strings, as in SQLite). Comparing renderings instead would break
    // transitivity ("10" < "2" textually but 10 > 2 numerically).
    return this_text ? 1 : -1;
  }
  // Both numeric-like (bool/int/double/decimal/date).
  if ((kind_ == Kind::kInt || kind_ == Kind::kBool || kind_ == Kind::kDate) &&
      (other.kind_ == Kind::kInt || other.kind_ == Kind::kBool ||
       other.kind_ == Kind::kDate)) {
    if (int_ < other.int_) return -1;
    if (int_ > other.int_) return 1;
    return 0;
  }
  double lhs = AsDouble();
  double rhs = other.AsDouble();
  if (lhs < rhs) return -1;
  if (lhs > rhs) return 1;
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) {
    // Numeric kinds may still be equal across representations.
    if (is_null() || other.is_null()) return false;
    if (kind_ == Kind::kString || other.kind_ == Kind::kString) return false;
    return Compare(other) == 0;
  }
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kDate:
      return int_ == other.int_;
    case Kind::kDouble:
      return double_ == other.double_;
    case Kind::kDecimal:
      return int_ == other.int_ && scale_ == other.scale_;
    case Kind::kString:
      return string_ == other.string_;
  }
  return false;
}

uint64_t Value::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x5d5d5d5d5d5d5d5dULL;
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kDate:
      return Mix64(static_cast<uint64_t>(int_) ^
                   (static_cast<uint64_t>(kind_) << 56));
    case Kind::kDouble: {
      uint64_t bits;
      std::memcpy(&bits, &double_, sizeof(bits));
      return Mix64(bits ^ 0xd0d0d0d0ULL);
    }
    case Kind::kDecimal:
      return Mix64(static_cast<uint64_t>(int_) * 31 +
                   static_cast<uint64_t>(scale_));
    case Kind::kString:
      return HashBytes(string_.data(), string_.size());
  }
  return 0;
}

}  // namespace pdgf
