#ifndef DBSYNTHPP_COMMON_STATUS_H_
#define DBSYNTHPP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace pdgf {

// Error codes used across the project. Modeled after the usual canonical
// code set; only the codes the project actually raises are defined.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
  kParseError,
  kResourceExhausted,  // admission control: a bounded queue/pool is full
  kCancelled,          // the caller (or a peer) cancelled the operation
};

// Returns a stable human-readable name ("InvalidArgument", ...) for `code`.
const char* StatusCodeName(StatusCode code);

// A lightweight status type: either OK or an error code plus message.
// Used instead of exceptions for all expected failure paths (bad config,
// malformed SQL, missing files, ...).
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);
Status ParseError(std::string message);
Status ResourceExhaustedError(std::string message);
Status CancelledError(std::string message);

// Minimal StatusOr: holds either a value or an error status. The value is
// only accessible when `ok()`.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(const T& value) : value_(value) {}          // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates an error status out of the current function.
#define PDGF_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::pdgf::Status pdgf_status_internal = (expr);    \
    if (!pdgf_status_internal.ok()) {                \
      return pdgf_status_internal;                   \
    }                                                \
  } while (false)

// Evaluates a StatusOr expression, propagating errors and otherwise
// assigning the contained value to `lhs`.
#define PDGF_ASSIGN_OR_RETURN(lhs, expr)             \
  PDGF_ASSIGN_OR_RETURN_IMPL_(                       \
      PDGF_STATUS_CONCAT_(status_or_, __LINE__), lhs, expr)

#define PDGF_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr)  \
  auto var = (expr);                                 \
  if (!var.ok()) {                                   \
    return var.status();                             \
  }                                                  \
  lhs = std::move(var).value()

#define PDGF_STATUS_CONCAT_(a, b) PDGF_STATUS_CONCAT_IMPL_(a, b)
#define PDGF_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace pdgf

#endif  // DBSYNTHPP_COMMON_STATUS_H_
