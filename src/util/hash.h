#ifndef DBSYNTHPP_UTIL_HASH_H_
#define DBSYNTHPP_UTIL_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace pdgf {

// Determinism-proof hashing (ISSUE 1). The paper's central claim is that
// generation is a pure function of the hierarchical seed; these digests
// turn that claim into a checkable invariant: any two runs of the same
// model — regardless of worker count, node partitioning or sink mode —
// must produce identical per-table digests, and a committed "golden"
// digest pins the output of a model across refactors of RNG mixing, seed
// derivation, expression evaluation and formatting.

// A 128-bit digest value (two 64-bit halves).
struct Digest128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const Digest128& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const Digest128& other) const { return !(*this == other); }

  // 32 lower-case hex characters (hi first).
  std::string Hex() const;
  // Parses the Hex() rendering.
  static StatusOr<Digest128> FromHex(std::string_view hex);
};

// Order-SENSITIVE streaming hash over a byte stream. Chunking-invariant:
// the digest depends only on the concatenated bytes, not on how they were
// split across Update() calls — required because the engine delivers the
// same file contents in different Write() granularities depending on the
// work-package size. Used by DigestingSink to checksum sorted-sink files.
class ByteStreamHash {
 public:
  ByteStreamHash() = default;

  void Update(std::string_view data);
  // May be called repeatedly; does not reset state.
  Digest128 Finish() const;

  uint64_t length() const { return length_; }

 private:
  void AbsorbWord(uint64_t word);

  uint64_t h1_ = 0x6a09e667f3bcc908ULL;  // sqrt(2), sqrt(3) fractional bits
  uint64_t h2_ = 0xbb67ae8584caa73bULL;
  uint64_t length_ = 0;
  // Partial word carried between Update() calls (length_ % 8 bytes).
  uint64_t pending_ = 0;
};

// One-shot convenience over ByteStreamHash with a seed prefix.
Digest128 Hash128Bytes(std::string_view data, uint64_t seed = 0);

// An order-INSENSITIVE, mergeable per-table digest: per-row 128-bit
// hashes combined commutatively (wrapping sums + xor folds) plus row and
// byte counts and one commutative checksum per column. Two digests are
// equal iff every accumulator matches, so a single flipped byte, a
// dropped/duplicated row, or a row generated at the wrong index is
// detected, while the order in which rows (or whole partitions) were
// produced does not matter. Merge() is commutative and associative with
// the default-constructed digest as identity — per-worker and per-node
// partial digests can be merged in any join order.
class TableDigest {
 public:
  TableDigest() = default;

  // Folds one generated row: `row_index` is the global 0-based row
  // number, `row_bytes` the formatter's rendering, `values` the typed
  // field values (drives the per-column checksums).
  void AddRow(uint64_t row_index, std::string_view row_bytes,
              const std::vector<Value>& values);

  // Decomposed accumulation for the batch pipeline (every accumulator is
  // commutative, so the row-byte and column-value contributions may
  // arrive in any order and any interleaving):
  //   AddRow(i, bytes, values) == AddRowBytes(i, bytes)
  //                               + AddColumnValue(c, values[c]) for all c
  // AddRowBytes folds the rendered bytes (seeded by the global row index)
  // and bumps the row/byte counts; AddColumnValue folds one typed cell
  // into column `column`'s checksum. The engine calls AddRowBytes per
  // formatted row span and AddColumnValue column-major over a RowBatch.
  void AddRowBytes(uint64_t row_index, std::string_view row_bytes);
  void AddColumnValue(size_t column, const Value& value);

  // Commutative, associative combine of two partial digests.
  void Merge(const TableDigest& other);

  uint64_t rows() const { return rows_; }
  uint64_t bytes() const { return bytes_; }
  const std::vector<uint64_t>& column_checksums() const {
    return column_sums_;
  }

  // Folds every accumulator (row hashes, counts, column checksums) into
  // one 128-bit value — the unit stored in golden fixtures.
  Digest128 Value128() const;
  std::string Hex() const { return Value128().Hex(); }

  // Wire serialization of the FULL accumulator state (not the folded
  // Value128, which cannot be merged): lets partial digests cross a
  // process or socket boundary and be Merge()d on the other side — the
  // serve daemon ships per-shard digest states to clients this way.
  // Format: "1:<rows>:<bytes>:<sum_lo>:<sum_hi>:<xor_lo>:<xor_hi>:
  // <col0>,<col1>,..." with all numbers in lower-case hex; the leading
  // "1" is the format version. DeserializeState(SerializeState()) == *this.
  std::string SerializeState() const;
  static StatusOr<TableDigest> DeserializeState(std::string_view text);

  bool operator==(const TableDigest& other) const;
  bool operator!=(const TableDigest& other) const {
    return !(*this == other);
  }

 private:
  uint64_t rows_ = 0;
  uint64_t bytes_ = 0;
  uint64_t sum_lo_ = 0;  // wrapping sum of per-row hash halves
  uint64_t sum_hi_ = 0;
  uint64_t xor_lo_ = 0;  // xor fold of per-row hash halves
  uint64_t xor_hi_ = 0;
  std::vector<uint64_t> column_sums_;  // wrapping per-column value sums
};

// One line of a digest fixture ("golden" file): a table's name, row and
// byte counts, and folded digest.
struct TableDigestEntry {
  std::string table;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  std::string hex;  // Digest128::Hex()

  bool operator==(const TableDigestEntry& other) const {
    return table == other.table && rows == other.rows &&
           bytes == other.bytes && hex == other.hex;
  }
};

// Serializes entries as the fixture format: '#' comment lines plus one
// "<table>\t<rows>\t<bytes>\t<hex>" line per table. `header_comment` (may
// be empty) is emitted as leading comment lines.
std::string FormatDigestFixture(const std::vector<TableDigestEntry>& entries,
                                const std::string& header_comment = "");

// Parses the FormatDigestFixture format; unknown/malformed lines fail.
StatusOr<std::vector<TableDigestEntry>> ParseDigestFixture(
    std::string_view contents);

}  // namespace pdgf

#endif  // DBSYNTHPP_UTIL_HASH_H_
