#ifndef DBSYNTHPP_UTIL_STOPWATCH_H_
#define DBSYNTHPP_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace pdgf {

// Monotonic wall-clock stopwatch used by the benchmark harnesses and
// progress monitoring.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_UTIL_STOPWATCH_H_
