#ifndef DBSYNTHPP_UTIL_FILES_H_
#define DBSYNTHPP_UTIL_FILES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pdgf {

// POSIX file helpers. <filesystem> is deliberately avoided (style-guide
// disallowed feature); this project only needs flat path handling.

// Reads a whole file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Writes (create/truncate) `contents` to `path`.
Status WriteStringToFile(const std::string& path, std::string_view contents);

// Creates a directory and any missing parents (mkdir -p).
Status MakeDirectories(const std::string& path);

// True if the path exists (any file type).
bool PathExists(const std::string& path);

// File size in bytes, or an error.
StatusOr<int64_t> FileSize(const std::string& path);

// Deletes a file; missing files are not an error.
Status RemoveFile(const std::string& path);

// Joins two path fragments with exactly one '/'.
std::string JoinPath(std::string_view a, std::string_view b);

// Returns a fresh subdirectory under the system temp dir; the directory
// is created. `prefix` becomes part of the name.
StatusOr<std::string> MakeTempDir(const std::string& prefix);

}  // namespace pdgf

#endif  // DBSYNTHPP_UTIL_FILES_H_
